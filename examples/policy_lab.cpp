/**
 * @file
 * Policy lab: explore scheduler x eviction-policy combinations on a
 * custom workload through the low-level API (building an engine by
 * hand rather than through the System facade). Useful as a template
 * for experimenting with new policies.
 */

#include <cstdio>
#include <memory>

#include "chameleon/cache_manager.h"
#include "chameleon/mlq_scheduler.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "predict/length_predictor.h"
#include "serving/engine.h"
#include "serving/fifo_scheduler.h"
#include "serving/sjf_scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "simkit/simulator.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

/** Build an engine with an arbitrary scheduler/adapter-manager combo. */
struct Lab
{
    sim::Simulator simulator;
    predict::LengthPredictor predictor{0.8};
    std::unique_ptr<serving::ServingEngine> engine;

    Lab(const model::AdapterPool &pool, const char *scheduler,
        const char *adapters, const char *eviction)
    {
        serving::EngineConfig cfg;
        cfg.model = model::llama7B();
        cfg.gpu = model::a40();

        std::unique_ptr<serving::Scheduler> sched;
        if (std::string(scheduler) == "fifo") {
            sched = std::make_unique<serving::FifoScheduler>();
        } else if (std::string(scheduler) == "sjf") {
            sched = std::make_unique<serving::SjfScheduler>(
                /*agingPerSecond=*/2.0);
        } else {
            core::MlqConfig mcfg;
            mcfg.kvBytesPerToken = cfg.model.kvBytesPerToken();
            mcfg.totalTokens =
                (cfg.gpu.memBytes - cfg.model.weightsBytes() -
                 cfg.workspacePerGpu) /
                mcfg.kvBytesPerToken;
            sched = std::make_unique<core::MlqScheduler>(mcfg, &pool);
            cfg.predictedReservation = true;
        }

        engine = std::make_unique<serving::ServingEngine>(
            simulator, cfg, &pool, std::move(sched), &predictor);

        if (std::string(adapters) == "slora") {
            engine->setAdapterManager(
                std::make_unique<serving::SLoraAdapterManager>(
                    pool, engine->memory(), engine->pcieLink()));
        } else {
            core::CacheConfig ccfg;
            ccfg.evictionPolicy = eviction;
            engine->setAdapterManager(std::make_unique<core::CacheManager>(
                pool, engine->memory(), engine->pcieLink(),
                engine->costModel(), ccfg));
        }
    }
};

} // namespace

int
main()
{
    model::AdapterPool pool(model::llama7B(), 100);
    auto wl = workload::splitwiseLike();
    wl.rps = 9.0;
    wl.durationSeconds = 180.0;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    struct Combo
    {
        const char *label;
        const char *scheduler;
        const char *adapters;
        const char *eviction;
    };
    const Combo combos[] = {
        {"fifo + discard", "fifo", "slora", "-"},
        {"sjf(aged) + discard", "sjf", "slora", "-"},
        {"fifo + cache/lru", "fifo", "cache", "lru"},
        {"mlq + cache/lru", "mlq", "cache", "lru"},
        {"mlq + cache/gdsf", "mlq", "cache", "gdsf"},
        {"mlq + cache/chameleon", "mlq", "cache", "chameleon"},
    };

    std::printf("workload: %zu requests at %.1f RPS\n\n", trace.size(),
                trace.meanRps());
    std::printf("%-24s %9s %9s %9s %9s\n", "combination", "p50TTFT",
                "p99TTFT", "p99E2E", "hit%");
    for (const auto &combo : combos) {
        Lab lab(pool, combo.scheduler, combo.adapters, combo.eviction);
        lab.engine->submitTrace(trace);
        lab.simulator.run();
        lab.engine->finalize();
        const auto &stats = lab.engine->stats();
        std::printf("%-24s %8.3fs %8.3fs %8.2fs %8.1f%%\n", combo.label,
                    stats.ttft.p50(), stats.ttft.p99(), stats.e2e.p99(),
                    100.0 * stats.cacheHitRate());
    }
    return 0;
}
