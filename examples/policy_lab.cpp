/**
 * @file
 * Policy lab: explore scheduler x adapter-management x eviction
 * combinations on a common workload through the SystemSpec API — the
 * combinations the old closed system enum could not express.
 *
 * Three ways to describe a system are shown:
 *  1. registry names with the composition grammar ("chameleon+lru",
 *     "slora+cache"),
 *  2. fluent spec builders (withScheduler/withEviction/withPrefetch),
 *  3. registering a custom spec under its own name and running it by
 *     that name like any built-in.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "workload/trace_gen.h"

using namespace chameleon;

int
main()
{
    model::AdapterPool pool(model::llama7B(), 100);
    auto wl = workload::splitwiseLike();
    wl.rps = 9.0;
    wl.durationSeconds = 180.0;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    auto &registry = core::SystemRegistry::global();

    // A custom spec: SJF admission with anti-starvation aging over the
    // chameleon cache — not a paper system, but one line to describe.
    core::SystemSpec agedSjf = registry.lookup("chameleon-nosched");
    agedSjf.scheduler.policy = core::SchedulerPolicy::Sjf;
    agedSjf.scheduler.sjfAgingPerSecond = 2.0;
    registry.add("sjf-aged+cache", agedSjf,
                 "custom: aged SJF over the chameleon cache");

    // Fluent composition of another custom point in the policy space.
    core::SystemSpec gdsfPrefetch =
        registry.lookup("chameleon")
            .withEviction(core::EvictionKind::Gdsf)
            .withPrefetch(/*topK=*/16)
            .named("gdsf+wide-prefetch");

    const std::vector<std::string> names{
        "slora",            // FIFO + discard-on-idle (registry preset)
        "slora+cache",      // FIFO + chameleon cache (composed)
        "sjf-aged+cache",   // custom registered above
        "chameleon+lru",    // MLQ + cache, LRU eviction (composed)
        "chameleon+gdsf",   // MLQ + cache, GDSF eviction (composed)
        "chameleon",        // the full paper system
    };

    std::printf("workload: %zu requests at %.1f RPS\n\n", trace.size(),
                trace.meanRps());
    std::printf("%-24s %9s %9s %9s %9s\n", "system", "p50TTFT",
                "p99TTFT", "p99E2E", "hit%");
    auto report = [&](const core::SystemSpec &spec) {
        const auto result = core::runSpec(spec, &pool, trace);
        std::printf("%-24s %8.3fs %8.3fs %8.2fs %8.1f%%\n",
                    spec.name.c_str(), result.stats.ttft.p50(),
                    result.stats.ttft.p99(), result.stats.e2e.p99(),
                    100.0 * result.cacheHitRate);
    };
    for (const auto &name : names) {
        auto spec = registry.lookup(name);
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
        report(spec);
    }
    gdsfPrefetch.engine.model = model::llama7B();
    gdsfPrefetch.engine.gpu = model::a40();
    report(gdsfPrefetch);
    return 0;
}
