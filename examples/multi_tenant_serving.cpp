/**
 * @file
 * Multi-tenant serving: the scenario from the paper's introduction.
 *
 * One Llama-7B deployment serves three downstream task families behind
 * task-specific LoRA adapters:
 *  - chatbot      : many short conversational exchanges (rank-8/16),
 *  - coding       : medium prompts, long completions (rank-64/128),
 *  - summarization: long prompts, short outputs (rank-32).
 *
 * The example builds one merged trace, serves it with S-LoRA and with
 * Chameleon, and reports per-tenant latency so the head-of-line and
 * adapter-loading effects are visible per task class.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/stats.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

struct Tenant
{
    std::string name;
    double rps;
    workload::LengthDist input;
    workload::LengthDist output;
    /** Adapter ids (into the shared pool) owned by this tenant. */
    std::vector<model::AdapterId> adapters;
};

/** Merge per-tenant traces into one arrival-ordered stream. */
workload::Trace
mergeTraces(const std::vector<workload::Trace> &parts)
{
    std::vector<workload::Request> all;
    for (const auto &part : parts) {
        all.insert(all.end(), part.requests().begin(),
                   part.requests().end());
    }
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  return a.arrival < b.arrival;
              });
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i].id = static_cast<workload::RequestId>(i);
    return workload::Trace(std::move(all));
}

} // namespace

int
main()
{
    // Shared adapter pool: ranks grouped per tenant task requirements.
    std::vector<int> ranks;
    std::vector<Tenant> tenants{
        {"chatbot", 5.0, {24.0, 0.7, 4, 256}, {32.0, 0.7, 2, 256}, {}},
        {"coding", 2.5, {64.0, 0.8, 8, 512}, {96.0, 0.8, 8, 512}, {}},
        {"summarize", 1.5, {192.0, 0.6, 32, 768}, {24.0, 0.5, 2, 128}, {}},
    };
    auto add_adapters = [&](Tenant &t, int count, int rank) {
        for (int i = 0; i < count; ++i) {
            t.adapters.push_back(
                static_cast<model::AdapterId>(ranks.size()));
            ranks.push_back(rank);
        }
    };
    add_adapters(tenants[0], 20, 8);
    add_adapters(tenants[0], 10, 16);
    add_adapters(tenants[1], 8, 64);
    add_adapters(tenants[1], 4, 128);
    add_adapters(tenants[2], 8, 32);
    model::AdapterPool pool(model::llama7B(), ranks);

    // Per-tenant arrival streams with tenant-specific length profiles.
    std::vector<workload::Trace> parts;
    std::map<model::AdapterId, std::string> owner;
    std::uint64_t seed = 7;
    for (const auto &tenant : tenants) {
        workload::TraceGenConfig cfg;
        cfg.rps = tenant.rps;
        cfg.durationSeconds = 240.0;
        cfg.input = tenant.input;
        cfg.output = tenant.output;
        cfg.numAdapters = 0; // adapters assigned below
        cfg.seed = seed++;
        workload::TraceGenerator gen(cfg, nullptr);
        auto trace = gen.generate();
        // Assign this tenant's adapters round-robin (popular first).
        std::vector<workload::Request> reqs = trace.requests();
        sim::Rng rng(seed * 77);
        sim::PowerLawSampler pop(tenant.adapters.size(), 1.2);
        for (auto &r : reqs)
            r.adapter = tenant.adapters[pop.sample(rng)];
        for (auto id : tenant.adapters)
            owner[id] = tenant.name;
        parts.push_back(workload::Trace(std::move(reqs)));
    }
    const auto trace = mergeTraces(parts);
    std::printf("merged trace: %zu requests, %.1f RPS across %zu tenants, "
                "%d adapters\n\n",
                trace.size(), trace.meanRps(), tenants.size(), pool.size());

    auto configure = [](core::SystemSpec &spec) {
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
    };

    for (const char *name : {"slora", "chameleon"}) {
        const auto result = core::runSystem(name, configure, &pool, trace);
        std::printf("--- %s ---\n", name);
        std::map<std::string, sim::PercentileTracker> ttft, e2e;
        for (const auto &rec : result.stats.records) {
            const auto &tenant = owner[rec.adapter];
            ttft[tenant].add(sim::toSeconds(rec.ttft));
            e2e[tenant].add(sim::toSeconds(rec.e2e));
        }
        std::printf("%-12s %8s %10s %10s %10s\n", "tenant", "reqs",
                    "p50TTFT", "p99TTFT", "p99E2E");
        for (const auto &tenant : tenants) {
            auto &t = ttft[tenant.name];
            std::printf("%-12s %8zu %9.3fs %9.3fs %9.2fs\n",
                        tenant.name.c_str(), t.count(), t.p50(), t.p99(),
                        e2e[tenant.name].p99());
        }
        std::printf("cache hit rate %.1f%%, PCIe %.1f GB\n\n",
                    100.0 * result.cacheHitRate,
                    static_cast<double>(result.pcieBytes) / 1e9);
    }
    return 0;
}
