/**
 * @file
 * Capacity planner: how many GPUs does a target load need?
 *
 * Sweeps offered load on one engine to find the highest RPS that keeps
 * P99 TTFT within the SLO (the paper's throughput definition, §5.2.2),
 * for both S-LoRA and Chameleon, then derives the replica count needed
 * for a target aggregate load. Demonstrates the sweep/SLO helpers of
 * the public API.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/slo.h"
#include "workload/trace_gen.h"

using namespace chameleon;

int
main(int argc, char **argv)
{
    const double target_rps = argc > 1 ? std::atof(argv[1]) : 100.0;

    model::AdapterPool pool(model::llama7B(), 100);
    const auto &registry = core::SystemRegistry::global();
    auto specFor = [&registry](const char *name) {
        auto spec = registry.lookup(name);
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
        return spec;
    };
    const auto slora = specFor("slora");
    const auto cham = specFor("chameleon");

    auto wl = workload::splitwiseLike();
    wl.durationSeconds = 200.0;

    // SLO from a medium-load trace (5x mean isolated latency).
    wl.rps = 8.0;
    workload::TraceGenerator slo_gen(wl, &pool);
    model::CostModel cost(slora.engine.model, slora.engine.gpu);
    const double slo =
        sim::toSeconds(serving::computeSlo(slo_gen.generate(), cost, &pool));
    std::printf("TTFT SLO: %.2f s; target aggregate load: %.0f RPS\n\n",
                slo, target_rps);

    std::printf("%8s %14s %14s\n", "rps", "S-LoRA p99(s)", "Cham p99(s)");
    std::vector<std::pair<double, double>> slora_curve, cham_curve;
    for (double rps = 5.0; rps <= 13.0; rps += 1.0) {
        wl.rps = rps;
        workload::TraceGenerator gen(wl, &pool);
        const auto trace = gen.generate();
        const double s =
            core::runSpec(slora, &pool, trace).stats.ttft.p99();
        const double c =
            core::runSpec(cham, &pool, trace).stats.ttft.p99();
        slora_curve.emplace_back(rps, s);
        cham_curve.emplace_back(rps, c);
        std::printf("%8.1f %14.2f %14.2f\n", rps, s, c);
    }

    const double slora_knee = serving::throughputKnee(slora_curve, slo);
    const double cham_knee = serving::throughputKnee(cham_curve, slo);
    std::printf("\nper-GPU sustainable load: S-LoRA %.2f RPS, "
                "Chameleon %.2f RPS (%.2fx)\n",
                slora_knee, cham_knee, cham_knee / slora_knee);

    const int slora_gpus =
        static_cast<int>(std::ceil(target_rps / slora_knee));
    const int cham_gpus =
        static_cast<int>(std::ceil(target_rps / cham_knee));
    std::printf("A40 GPUs for %.0f RPS: S-LoRA %d, Chameleon %d "
                "(%d fewer)\n",
                target_rps, slora_gpus, cham_gpus,
                slora_gpus - cham_gpus);
    return 0;
}
