/**
 * @file
 * Cluster routing: serve one skewed multi-adapter trace with a 4-replica
 * Chameleon cluster under each dispatch policy, then ride out a bursty
 * trace with the predictor-driven autoscaler.
 *
 * Demonstrates the cluster-level effects the routing subsystem adds
 * on top of the paper's §4.4 data parallelism:
 *  - adapter-affinity dispatch partitions the replicated adapter caches
 *    (higher hit rate, less adapter PCIe traffic than round-robin);
 *  - autoscaling absorbs bursts with extra replicas instead of queueing;
 *  - heterogeneous fleets: on a mixed A100/A40 deployment,
 *    capacity-aware routing places work where the hardware can absorb
 *    it (per-replica finished counts track the service-rate ratio).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/example_cluster_routing [replicas]
 */

#include <cstdio>
#include <cstdlib>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "routing/router.h"
#include "workload/trace_gen.h"

using namespace chameleon;

int
main(int argc, char **argv)
{
    const int replicas = argc > 1 ? std::atoi(argv[1]) : 4;

    model::AdapterPool pool(model::llama7B(), 200);
    auto spec = core::SystemRegistry::global().lookup("chameleon");
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    spec.cluster.replicas = replicas;

    // A skewed (power-law) adapter-popularity trace sized so each
    // replica sees the paper's medium load.
    auto wl = workload::splitwiseLike();
    wl.numAdapters = 200;
    wl.rps = 8.5 * replicas;
    wl.durationSeconds = 150.0;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    std::printf("trace: %zu requests at %.1f RPS over %d replicas\n\n",
                trace.size(), trace.meanRps(), replicas);

    // 1. Same trace, every dispatch policy.
    std::printf("%-15s %9s %9s %10s %8s\n", "router", "p50TTFT",
                "p99TTFT", "fetches", "hitRate");
    for (const auto policy : {routing::RouterPolicy::RoundRobin,
                              routing::RouterPolicy::JoinShortestQueue,
                              routing::RouterPolicy::PowerOfTwoChoices,
                              routing::RouterPolicy::AdapterAffinity,
                              routing::RouterPolicy::AdapterAffinityCacheAware}) {
        spec.cluster.router = policy;
        const auto result = core::runSpec(spec, &pool, trace);
        std::printf("%-15s %8.3fs %8.3fs %10lld %7.1f%%\n",
                    routing::routerPolicyName(policy),
                    result.stats.ttft.p50(), result.stats.ttft.p99(),
                    static_cast<long long>(result.pcieTransfers),
                    100.0 * result.cacheHitRate);
    }

    // 2. Bursty arrivals (§3.1) against the autoscaler: start at two
    //    replicas and let the forecast grow the cluster into bursts.
    wl.burstMultiplier = 4.0;
    wl.burstPeriodSeconds = 60.0;
    wl.burstDurationSeconds = 15.0;
    wl.rps = 8.5 * 2;
    workload::TraceGenerator burstGen(wl, &pool);
    const auto burstTrace = burstGen.generate();

    spec.cluster.router = routing::RouterPolicy::AdapterAffinity;
    spec.cluster.replicas = 2;
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.minReplicas = 2;
    spec.cluster.autoscaler.maxReplicas =
        static_cast<std::size_t>(replicas * 2);
    spec.cluster.autoscaler.replicaServiceRps = 8.5;
    const auto scaled = core::runSpec(spec, &pool, burstTrace);
    std::printf("\nautoscaled burst run: p99 TTFT %.3f s, %zu peak "
                "replicas (%lld up / %lld down), per-replica finished:",
                scaled.stats.ttft.p99(), scaled.peakReplicas,
                static_cast<long long>(scaled.scaleUps),
                static_cast<long long>(scaled.scaleDowns));
    for (const auto finished : scaled.perReplicaFinished)
        std::printf(" %lld", static_cast<long long>(finished));
    std::printf("\n");

    // 3. A heterogeneous fleet: half the replicas upgraded to A100s.
    //    Routing weights queue depths by each replica's nominal
    //    service rate, so the A100s absorb the larger share.
    std::vector<model::GpuSpec> gpus;
    if (!model::tryFleetByName("a100-48x2+a40x2", &gpus)) {
        std::fprintf(stderr, "bad fleet preset; expected %s\n",
                     model::fleetGrammarHelp().c_str());
        return 1;
    }
    auto hetero = core::SystemRegistry::global().lookup("chameleon");
    hetero.engine.model = model::llama7B();
    hetero.engine.gpu = model::a40();
    hetero.withFleet(gpus, routing::RouterPolicy::PowerOfTwoChoices);
    const auto mixed = core::runSpec(hetero, &pool, trace);
    std::printf("\nmixed a100-48x2+a40x2 fleet (p2c): p99 TTFT %.3f s\n",
                mixed.stats.ttft.p99());
    for (std::size_t i = 0; i < mixed.perReplicaFinished.size(); ++i) {
        std::printf("  replica %zu: %lld finished at %.2f req/s "
                    "nominal\n",
                    i,
                    static_cast<long long>(mixed.perReplicaFinished[i]),
                    mixed.perReplicaServiceRate[i]);
    }
    return 0;
}
