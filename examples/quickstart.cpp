/**
 * @file
 * Quickstart: serve a synthetic multi-adapter workload with S-LoRA and
 * with Chameleon, and compare latency/throughput metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [rps]
 */

#include <cstdio>
#include <cstdlib>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/slo.h"
#include "workload/trace_gen.h"

using namespace chameleon;

int
main(int argc, char **argv)
{
    const double rps = argc > 1 ? std::atof(argv[1]) : 9.0;

    // 1. Describe the deployment: Llama-7B on one A40 GPU with 100 LoRA
    //    adapters of ranks 8..128 (the paper's §5.1 configuration).
    model::AdapterPool pool(model::llama7B(), 100);

    // Hardware applied to every spec we run below.
    auto configure = [](core::SystemSpec &spec) {
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
    };

    // 2. Generate a Splitwise-like trace: Poisson arrivals, heavy-tailed
    //    lengths, power-law adapter popularity.
    auto wl = workload::splitwiseLike();
    wl.rps = rps;
    wl.durationSeconds = 180.0;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    // 3. The paper's SLO: 5x the mean run-alone latency.
    model::CostModel cost(model::llama7B(), model::a40());
    const auto slo = serving::computeSlo(trace, cost, &pool);
    std::printf("trace: %zu requests at %.1f RPS, TTFT SLO %.2f s\n",
                trace.size(), trace.meanRps(), sim::toSeconds(slo));

    // 4. Run both systems on the identical trace, selected by name
    //    from the system registry.
    std::printf("%-22s %9s %9s %9s %9s %8s %8s\n", "system", "p50TTFT",
                "p99TTFT", "p99TBT", "p99E2E", "hitRate", "done");
    for (const char *name : {"slora", "chameleon"}) {
        const auto result = core::runSystem(name, configure, &pool, trace);
        const auto &s = result.stats;
        std::printf("%-22s %8.3fs %8.3fs %7.1fms %8.3fs %7.1f%% %8lld\n",
                    name, s.ttft.p50(), s.ttft.p99(),
                    s.tbt.p99(), s.e2e.p99(), 100.0 * result.cacheHitRate,
                    static_cast<long long>(s.finished));
    }
    return 0;
}
