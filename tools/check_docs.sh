#!/usr/bin/env bash
# Docs-freshness check (run by CI).
#
# 1. The preset table in src/chameleon/README.md must list exactly the
#    systems `chameleon_sim --list-systems` reports — a preset added or
#    renamed without a docs update fails the build.
# 2. docs/ARCHITECTURE.md and bench/README.md must exist and be linked
#    from the root README.
#
# Usage: tools/check_docs.sh <chameleon_sim-binary> <repo-root>
set -euo pipefail

bin="${1:?usage: check_docs.sh <chameleon_sim-binary> <repo-root>}"
root="${2:?usage: check_docs.sh <chameleon_sim-binary> <repo-root>}"

fail=0

registry_names=$("$bin" --list-systems |
    awk '/^registered systems:/{f=1; next} /^$/{f=0} f{print $1}' |
    sort)

doc_names=$(awk '/<!-- preset-table:begin -->/{f=1; next}
                 /<!-- preset-table:end -->/{f=0}
                 f && /^\| `/ {gsub(/[|` ]/, "", $2); print $2}' \
        "$root/src/chameleon/README.md" | sort)

if [ "$registry_names" != "$doc_names" ]; then
    echo "FAIL: src/chameleon/README.md preset table is out of sync" \
         "with --list-systems:"
    diff <(echo "$registry_names") <(echo "$doc_names") |
        sed 's/^</  only in registry: /; s/^>/  only in README:   /' |
        grep -v '^---' || true
    fail=1
fi

for doc in docs/ARCHITECTURE.md bench/README.md; do
    if [ ! -f "$root/$doc" ]; then
        echo "FAIL: $doc is missing"
        fail=1
    elif ! grep -q "$doc" "$root/README.md"; then
        echo "FAIL: $doc is not linked from the root README"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "docs freshness OK ($(echo "$registry_names" | wc -l) presets" \
     "documented)"
