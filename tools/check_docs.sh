#!/usr/bin/env bash
# Docs-freshness check (run by CI).
#
# 1. The preset table in src/chameleon/README.md must list exactly the
#    systems `chameleon_sim --list-systems` reports — a preset added or
#    renamed without a docs update fails the build.
# 2. The spec-keys schema table in src/chameleon/README.md must list
#    exactly the keys `chameleon_sim --dump-config` emits (plus rows
#    marked parse-only) — a spec knob added without a docs update
#    fails the build.
# 3. docs/ARCHITECTURE.md and bench/README.md must exist and be linked
#    from the root README.
# 4. With a chameleon_sweep binary given, the shipped example sweeps
#    must still expand (`--dry-run` smoke, hetero fleet included).
#
# Usage: tools/check_docs.sh <chameleon_sim-binary> <repo-root> \
#            [chameleon_sweep-binary]
set -euo pipefail

bin="${1:?usage: check_docs.sh <chameleon_sim-binary> <repo-root>}"
root="${2:?usage: check_docs.sh <chameleon_sim-binary> <repo-root>}"
sweep_bin="${3:-}"

fail=0

registry_names=$("$bin" --list-systems |
    awk '/^registered systems:/{f=1; next} /^$/{f=0} f{print $1}' |
    sort)

doc_names=$(awk '/<!-- preset-table:begin -->/{f=1; next}
                 /<!-- preset-table:end -->/{f=0}
                 f && /^\| `/ {gsub(/[|` ]/, "", $2); print $2}' \
        "$root/src/chameleon/README.md" | sort)

if [ "$registry_names" != "$doc_names" ]; then
    echo "FAIL: src/chameleon/README.md preset table is out of sync" \
         "with --list-systems:"
    diff <(echo "$registry_names") <(echo "$doc_names") |
        sed 's/^</  only in registry: /; s/^>/  only in README:   /' |
        grep -v '^---' || true
    fail=1
fi

# --- spec-keys table vs the keys --dump-config actually emits -------
# The dump is pretty-printed one key per line at 2-space indentation,
# so an indent-depth stack flattens it to dotted paths portably.
dump_keys=$("$bin" --dump-config | awk '
    /^[[:space:]]*"[^"]+":/ {
        line = $0
        n = 0
        while (substr(line, n + 1, 1) == " ") n++
        depth = n / 2
        key = line
        sub(/^[[:space:]]*"/, "", key)
        sub(/".*$/, "", key)
        stack[depth] = key
        path = stack[1]
        for (i = 2; i <= depth; i++) path = path "." stack[i]
        print path
    }' | sort)

table_keys=$(awk '/<!-- spec-keys:begin -->/{f=1; next}
                  /<!-- spec-keys:end -->/{f=0}
                  f && /^\| `/ && !/parse-only/ \
                      {gsub(/[|` ]/, "", $2); print $2}' \
        "$root/src/chameleon/README.md" | sort)

if [ "$dump_keys" != "$table_keys" ]; then
    echo "FAIL: src/chameleon/README.md spec-keys table is out of sync" \
         "with --dump-config:"
    diff <(echo "$dump_keys") <(echo "$table_keys") |
        sed 's/^</  only in --dump-config: /; s/^>/  only in README:      /' |
        grep -v '^---' || true
    fail=1
fi

for doc in docs/ARCHITECTURE.md bench/README.md; do
    if [ ! -f "$root/$doc" ]; then
        echo "FAIL: $doc is missing"
        fail=1
    elif ! grep -q "$doc" "$root/README.md"; then
        echo "FAIL: $doc is not linked from the root README"
        fail=1
    fi
done

# --- shipped sweep examples still expand (dry-run smoke) ------------
if [ -n "$sweep_bin" ]; then
    for sweep_json in "$root"/examples/sweeps/*.json; do
        if ! "$sweep_bin" --dry-run --config "$sweep_json" > /dev/null
        then
            echo "FAIL: $sweep_json does not expand" \
                 "(chameleon_sweep --dry-run)"
            fail=1
        fi
    done
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "docs freshness OK ($(echo "$registry_names" | wc -l) presets," \
     "$(echo "$dump_keys" | wc -l) spec keys documented)"
