/**
 * @file
 * chameleon_sweep — run a whole scenario grid from one JSON file.
 *
 * Loads a SweepSpec (src/sweep/README.md documents the grammar),
 * expands it into cells (systems and/or a base+modifier cross-product,
 * crossed with load / replica / router axes), runs every cell through
 * the core Runner, prints a summary table, and writes one consolidated
 * BenchJson. Per-cell seeds derive from the sweep seed, so the same
 * file + seed reproduces the identical document at any --threads.
 *
 * Examples:
 *   chameleon_sweep --config examples/sweeps/minimal.json
 *   chameleon_sweep --config examples/sweeps/fig17_policy_grid.json
 *   chameleon_sweep --config sweep.json --dry-run     # list the cells
 *   chameleon_sweep --config sweep.json --threads 8 --out grid.json
 *
 * Regression gate (--baseline): compare this run's document against a
 * previously committed one, row-aligned (see sweep/baseline_diff.h).
 * A per-cell event_hash mismatch or a structural difference exits 1 —
 * the simulation is no longer deterministic against the baseline;
 * numeric drift beyond 5% with identical hashes only warns.
 *
 *   chameleon_sweep --config sweep.json --baseline bench/baselines/old.json
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "simkit/flags.h"
#include "sweep/baseline_diff.h"
#include "sweep/sweep_runner.h"
#include "tool_io.h"

using namespace chameleon;

int
main(int argc, char **argv)
{
    sim::FlagSet flags("chameleon_sweep");
    auto *config = flags.addString(
        "config", "", "sweep JSON file (\"-\" reads stdin); required");
    auto *out = flags.addString(
        "out", "", "override the BenchJson output path");
    auto *threads = flags.addInt(
        "threads", 0, "override worker threads (0 = use the file's)");
    auto *dry_run = flags.addBool(
        "dry-run", false, "expand and list the cells without running");
    auto *metrics_dir = flags.addString(
        "metrics-dir", "",
        "also dump each cell's metrics snapshot as "
        "DIR/metrics_cell<N>.json (N = cell index in the grid order)");
    auto *baseline = flags.addString(
        "baseline", "",
        "compare against this BenchJson document, row-aligned: "
        "event-hash or structural mismatches fail (exit 1), numeric "
        "drift > 5% warns");
    if (!flags.parse(argc, argv))
        return 2;

    if (config->empty()) {
        std::fprintf(stderr,
                     "chameleon_sweep: --config is required\n%s",
                     flags.usage().c_str());
        return 2;
    }

    std::string error;
    auto spec = sweep::sweepFromJson(
        tools::readAll(*config, "chameleon_sweep"), &error);
    if (!spec.has_value()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    if (!out->empty())
        spec->output = *out;
    if (*threads < 0) {
        // A negative override silently falling back to the file's
        // value would misread as a valid run of the requested count.
        std::fprintf(stderr,
                     "chameleon_sweep: --threads must be >= 1 "
                     "(0 = use the file's)\n");
        return 2;
    }
    if (*threads > 0)
        spec->threads = static_cast<int>(*threads);

    // Expand up front so an invalid grid is a clean error (exit 2),
    // not a CHM_CHECK abort out of the runner's constructor.
    auto cells = sweep::expandSweep(*spec, &error);
    if (!cells.has_value()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }

    if (*dry_run) {
        std::printf("sweep %s: %zu cells\n", spec->name.c_str(),
                    cells->size());
        std::printf("%-32s %8s %9s %-16s %-15s %9s %-9s %12s\n",
                    "system", "rps", "replicas", "fleet", "router",
                    "autoscale", "migration", "trace_seed");
        for (const auto &cell : *cells) {
            std::printf("%-32s %8.2f %9d %-16s %-15s %9s %-9s %12llu\n",
                        cell.system.c_str(), cell.rps, cell.replicaCount,
                        cell.fleet.empty() ? "-" : cell.fleet.c_str(),
                        cell.router.c_str(),
                        cell.autoscale ? "on" : "off",
                        cell.migration.c_str(),
                        static_cast<unsigned long long>(cell.traceSeed));
        }
        return 0;
    }

    sweep::SweepRunner runner(std::move(*spec));
    std::printf("sweep %s: %zu cells, %d thread%s, %s workload, "
                "%d adapters\n\n",
                runner.spec().name.c_str(), runner.cells().size(),
                runner.spec().threads,
                runner.spec().threads == 1 ? "" : "s",
                runner.spec().workload.preset.c_str(),
                runner.spec().workload.adapters);

    const auto results = runner.run();

    std::printf("%-32s %8s %9s %-15s %9s %12s %12s %7s\n", "system",
                "rps", "replicas", "router", "finished", "p50ttft(s)",
                "p99ttft(s)", "hit%");
    for (const auto &result : results) {
        const auto &cell = result.cell;
        const auto &s = result.report.stats;
        std::printf("%-32s %8.2f %9d %-15s %9lld %12.3f %12.3f %6.1f%%\n",
                    cell.system.c_str(), cell.rps, cell.replicaCount,
                    cell.router.c_str(),
                    static_cast<long long>(s.finished), s.ttft.p50(),
                    s.ttft.p99(), 100.0 * result.report.cacheHitRate);
    }

    sweep::BenchJson json(runner.spec().name);
    sweep::SweepRunner::appendRows(json, results);
    json.write(runner.spec().outputPath());

    if (!baseline->empty()) {
        std::string parseError;
        const auto baseDoc = sim::parseJson(
            tools::readAll(*baseline, "chameleon_sweep"), &parseError);
        if (!baseDoc.has_value()) {
            std::fprintf(stderr, "chameleon_sweep: --baseline %s: %s\n",
                         baseline->c_str(), parseError.c_str());
            return 2;
        }
        const auto curDoc = sim::parseJson(json.toString());
        CHM_CHECK(curDoc.has_value(),
                  "sweep output is not valid JSON");
        const auto diff =
            sweep::diffAgainstBaseline(*curDoc, *baseDoc, 0.05);
        for (const auto &problem : diff.structural)
            std::fprintf(stderr, "baseline: FAIL %s\n", problem.c_str());
        for (const auto &m : diff.hashMismatches) {
            std::fprintf(stderr,
                         "baseline: FAIL row %zu: event_hash %s -> %s "
                         "(event stream diverged from the baseline)\n",
                         m.row, m.baseline.c_str(), m.current.c_str());
        }
        for (const auto &m : diff.drifts) {
            std::fprintf(stderr,
                         "baseline: warn row %zu: %s drifted %s -> %s\n",
                         m.row, m.key.c_str(), m.baseline.c_str(),
                         m.current.c_str());
        }
        if (!diff.passed()) {
            std::fprintf(stderr,
                         "baseline: %zu structural problem(s), %zu hash "
                         "mismatch(es) against %s\n",
                         diff.structural.size(),
                         diff.hashMismatches.size(), baseline->c_str());
            return 1;
        }
        std::printf("\nbaseline: OK — %zu rows match %s (%zu numeric "
                    "drift warning%s)\n",
                    json.rowCount(), baseline->c_str(),
                    diff.drifts.size(),
                    diff.drifts.size() == 1 ? "" : "s");
    }

    if (!metrics_dir->empty()) {
        std::filesystem::create_directories(*metrics_dir);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto path = std::filesystem::path(*metrics_dir) /
                              ("metrics_cell" + std::to_string(i) +
                               ".json");
            std::ofstream outFile(path);
            CHM_CHECK(outFile.good(), "cannot open " << path.string());
            outFile << results[i].report.metrics.dump() << '\n';
        }
        std::printf("\nper-cell metrics written to %s/metrics_cell"
                    "<0..%zu>.json\n",
                    metrics_dir->c_str(), results.size() - 1);
    }
    return 0;
}
