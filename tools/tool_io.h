/**
 * @file
 * Shared helpers for the CLI tools (chameleon_sim, chameleon_sweep).
 */

#ifndef CHAMELEON_TOOLS_TOOL_IO_H
#define CHAMELEON_TOOLS_TOOL_IO_H

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace chameleon::tools {

/**
 * Slurp a whole file, or stdin when `path` is "-". An unreadable file
 * is a usage error: prints to stderr and exits 2 (the same exit code
 * the tools use for bad flags and bad configs).
 */
inline std::string
readAll(const std::string &path, const char *program)
{
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        return buffer.str();
    }
    std::ifstream in(path);
    if (!in.good()) {
        std::fprintf(stderr, "%s: cannot open %s\n", program,
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace chameleon::tools

#endif // CHAMELEON_TOOLS_TOOL_IO_H
