/**
 * @file
 * chameleon_sim — the command-line driver for the simulator.
 *
 * Builds a serving system from flags, generates (or loads) a trace,
 * runs it, and prints a full report: latency percentiles, throughput,
 * cache/PCIe statistics, and GPU utilisation. Optionally exports
 * per-request records and the trace itself as CSV for offline
 * analysis.
 *
 * --system accepts any registered name (see --list-systems) or a
 * composed variant like "chameleon+gdsf+prefetch" — base system plus
 * one modifier per policy axis.
 *
 * Examples:
 *   chameleon_sim --list-systems
 *   chameleon_sim --system chameleon --rps 9 --duration 300
 *   chameleon_sim --system slora+sjf --model llama-13b --gpu a100 \
 *       --mem-gib 80 --adapters 200 --records-csv out.csv
 *   chameleon_sim --system chameleon-gdsf --replicas 4 --router affinity \
 *       --rps 34 --autoscale
 *   chameleon_sim --system chameleon --fleet a100x2+a40x2 --router p2c \
 *       --rps 30
 *   chameleon_sim --system chameleon --fleet a100-48x1+a40x1 --autoscale \
 *       --autoscale-boot-ms 8000 --autoscale-up-policy fastest \
 *       --autoscale-alpha 0.2 --rps 24
 *   chameleon_sim --system chameleon --replicas 4 --router affinity \
 *       --rps 30 --trace-out trace.json --metrics-out metrics.json
 *   chameleon_sim --system chameleon+wfq --tenants 4 --tenant-storm 8 \
 *       --rps 12
 *
 * In --system mode, --seed drives the trace generator, the
 * output-length predictor, and the router's sampling stream, so a
 * cluster run is reproducible from its command line alone.
 *
 * Any run is also reproducible from a file: --dump-config prints the
 * fully resolved SystemSpec as JSON and exits, and --config file.json
 * ("-" = stdin) loads a spec from such a file instead of --system +
 * hardware flags. `chameleon_sim --dump-config | chameleon_sim
 * --config -` re-runs the identical system. In --config mode the
 * predictor and router seeds are the file's (that is what makes the
 * round-trip bit-identical); --seed, --rps, --duration, --adapters,
 * and --workload shape only the generated trace.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "chameleon/spec_json.h"
#include "chameleon/system.h"
#include "fabric/cache_fabric.h"
#include "tool_io.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "routing/router.h"
#include "serving/slo.h"
#include "simkit/flags.h"
#include "simkit/log.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

void
listSystems()
{
    const auto &registry = core::SystemRegistry::global();
    std::printf("registered systems:\n");
    for (const auto &name : registry.names()) {
        std::printf("  %-24s %s\n", name.c_str(),
                    registry.description(name).c_str());
    }
    std::printf("\ncompose variants as base+modifier, e.g. "
                "\"chameleon+gdsf+prefetch\"; modifiers:\n ");
    for (const auto &mod : core::SystemRegistry::modifierHelp())
        std::printf(" %s", mod.c_str());
    std::printf("\n");
}

void
writeRecordsCsv(const std::string &path,
                const std::vector<serving::RequestRecord> &records)
{
    std::ofstream out(path);
    CHM_CHECK(out.good(), "cannot open " << path);
    out << "id,arrival_s,input,output,adapter,rank,ttft_s,e2e_s,"
           "queue_delay_s,adapter_stall_ms,wrs,queue,squashes,preempts\n";
    for (const auto &r : records) {
        out << r.id << ',' << sim::toSeconds(r.arrival) << ','
            << r.inputTokens << ',' << r.outputTokens << ',' << r.adapter
            << ',' << r.rank << ',' << sim::toSeconds(r.ttft) << ','
            << sim::toSeconds(r.e2e) << ',' << sim::toSeconds(r.queueDelay)
            << ',' << sim::toMillis(r.adapterStall) << ',' << r.wrs << ','
            << r.queueIndex << ',' << r.squashCount << ','
            << r.preemptCount << '\n';
    }
}

/** Was --name (or --name=value) given explicitly on the command line? */
bool
flagGiven(int argc, char **argv, const std::string &name)
{
    const std::string plain = "--" + name;
    const std::string assign = plain + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == plain || arg.rfind(assign, 0) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::FlagSet flags("chameleon_sim");
    auto *system = flags.addString("system", "chameleon",
                                   "serving system (see --list-systems)");
    auto *config_file = flags.addString(
        "config", "",
        "load the system spec from a JSON file (\"-\" = stdin) instead "
        "of --system + hardware flags");
    auto *dump_config = flags.addBool(
        "dump-config", false,
        "print the resolved system spec as JSON and exit");
    auto *list_systems = flags.addBool(
        "list-systems", false,
        "print the system registry (names + composition grammar)");
    auto *model_name = flags.addString("model", "llama-7b",
                                       "base model preset");
    auto *gpu_name = flags.addString("gpu", "a40", "gpu preset: a40|a100");
    auto *mem_gib = flags.addInt("mem-gib", 0,
                                 "a100 memory GiB (24/48/80; 0 = default)");
    auto *tp = flags.addInt("tp", 1, "tensor-parallel degree");
    auto *adapters = flags.addInt("adapters", 100,
                                  "number of LoRA adapters (0 = base only)");
    auto *rps = flags.addDouble("rps", 8.0, "offered load, requests/s");
    auto *duration = flags.addDouble("duration", 300.0,
                                     "trace duration, seconds");
    auto *seed = flags.addInt("seed", 42, "workload seed");
    auto *workload_name = flags.addString(
        "workload", "splitwise", "trace preset: splitwise|wildchat|lmsys");
    auto *tenants = flags.addInt(
        "tenants", 1,
        "split the workload across this many equal-share tenants "
        "(wfq/drr schedulers weight them; 1 = anonymous single tenant)");
    auto *tenant_storm = flags.addDouble(
        "tenant-storm", 1.0,
        "noisy neighbour: tenant 0 bursts to this multiple of its share "
        "for the middle half of the trace (requires > 1 tenant)");
    auto *slo_multiplier = flags.addDouble(
        "slo-multiplier", 5.0,
        "TTFT SLO as a multiple of the mean isolated latency "
        "(0 disables SLO reporting)");
    auto *acc = flags.addDouble("predictor-acc", 0.8,
                                "output-length predictor accuracy");
    auto *replicas = flags.addInt("replicas", 1,
                                  "data-parallel engine replicas");
    auto *fleet = flags.addString(
        "fleet", "",
        "heterogeneous replica fleet, e.g. a40x4 or a100x2+a40x2 "
        "(defines the replica count; per-replica GPUs override --gpu)");
    auto *router = flags.addString(
        "router", "jsq",
        "cluster dispatch policy: "
        "rr|jsq|p2c|affinity|affinity-cache|affinity-dir");
    auto *migration = flags.addString(
        "migration", "off",
        "cache-fabric peer migration triggers: "
        "off|scale-up|drain|remap|all");
    auto *topology = flags.addString(
        "topology", "pcie",
        "peer-link preset migrations travel over: pcie|nvlink");
    auto *fabric_top_k = flags.addInt(
        "fabric-top-k", 4,
        "hot adapters considered per migration trigger");
    auto *autoscale = flags.addBool(
        "autoscale", false, "enable predictor-driven replica autoscaling");
    auto *min_replicas = flags.addInt("min-replicas", 1,
                                      "autoscaler lower bound");
    auto *max_replicas = flags.addInt("max-replicas", 8,
                                      "autoscaler upper bound");
    auto *replica_rps = flags.addDouble(
        "replica-rps", 8.0,
        "service capacity of one base-engine replica for the "
        "autoscaler forecast");
    auto *boot_ms = flags.addDouble(
        "autoscale-boot-ms", 0.0,
        "replica cold-start boot constant, ms (adds the weight-load "
        "time from the cost model; 0 = instant scale-ups)");
    auto *up_policy = flags.addString(
        "autoscale-up-policy", "default",
        "engine config a scale-up instantiates: default|cheapest|fastest");
    auto *measured_alpha = flags.addDouble(
        "autoscale-alpha", 0.0,
        "EWMA weight of measured per-replica service rates blended "
        "into the routing weights (0 = static nominal weights)");
    auto *demand_source = flags.addString(
        "autoscale-demand-source", "nominal",
        "rate estimate behind the autoscaler capacity signals: "
        "nominal|measured (measured needs --autoscale-alpha > 0)");
    auto *boot_horizon = flags.addBool(
        "autoscale-boot-horizon", false,
        "stretch the forecast horizon to at least the next replica's "
        "boot time, so scale-ups land before the forecasted load");
    auto *slo_admission = flags.addBool(
        "slo-admission", false,
        "steer SLO-critical tenants (slo multiplier < 1) to the "
        "fastest effective-rate replica before the routing policy");
    auto *trace_in = flags.addString("trace", "",
                                     "load trace from CSV instead");
    auto *save_trace = flags.addString("save-trace", "",
                                       "write the generated trace as CSV");
    auto *records_csv = flags.addString("records-csv", "",
                                        "write per-request records as CSV");
    auto *trace_out = flags.addString(
        "trace-out", "",
        "write a Chrome trace-event JSON of the run (open in Perfetto "
        "or chrome://tracing)");
    auto *metrics_out = flags.addString(
        "metrics-out", "",
        "write the hierarchical metrics snapshot as JSON");
    auto *log_level = flags.addString(
        "log-level", "warn",
        "stderr log threshold: error|warn|info|debug|trace");
    if (!flags.parse(argc, argv))
        return 2;

    sim::LogLevel level;
    if (!sim::logLevelByName(*log_level, &level)) {
        std::fprintf(stderr, "unknown --log-level '%s'; known: %s\n",
                     log_level->c_str(), sim::logLevelNames());
        return 2;
    }
    sim::setLogLevel(level);

    if (*list_systems) {
        listSystems();
        // Listing alone is a complete command; only continue into a
        // simulation when one was explicitly requested via --system.
        bool systemRequested = false;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--system" || arg.rfind("--system=", 0) == 0)
                systemRequested = true;
        }
        if (!systemRequested)
            return 0;
        std::printf("\n");
    }

    core::SystemSpec spec;
    if (!config_file->empty()) {
        // The file is the single source of truth for the system; a
        // spec-axis flag beside it would be silently ignored, which
        // would misread as a run of the flagged configuration.
        for (const char *conflicting :
             {"system", "model", "gpu", "mem-gib", "tp", "predictor-acc",
              "replicas", "fleet", "router", "autoscale", "min-replicas",
              "max-replicas", "replica-rps", "autoscale-boot-ms",
              "autoscale-up-policy", "autoscale-alpha",
              "autoscale-demand-source", "autoscale-boot-horizon",
              "slo-admission", "tenants",
              "migration", "topology", "fabric-top-k"}) {
            CHM_CHECK(!flagGiven(argc, argv, conflicting),
                      "--" << conflicting
                           << " conflicts with --config; edit the "
                              "config file instead (workload flags "
                              "--rps/--duration/--seed/--adapters/"
                              "--workload still apply)");
        }
        std::string config_error;
        auto parsed = core::specFromJson(
            tools::readAll(*config_file, "chameleon_sim"), &config_error);
        if (!parsed.has_value()) {
            std::fprintf(stderr, "%s\n", config_error.c_str());
            return 2;
        }
        spec = *parsed;
    } else {
        std::string lookup_error;
        auto found = core::SystemRegistry::global().find(*system,
                                                         &lookup_error);
        if (!found.has_value()) {
            std::fprintf(stderr, "%s\n", lookup_error.c_str());
            return 2;
        }
        spec = *found;

        spec.engine.model = model::modelByName(*model_name);
        if (*gpu_name == "a40") {
            spec.engine.gpu = model::a40();
            CHM_CHECK(*mem_gib == 0,
                      "--mem-gib applies to --gpu a100 only");
        } else if (*gpu_name == "a100") {
            spec.engine.gpu = model::a100(
                *mem_gib == 0 ? 80 : static_cast<int>(*mem_gib));
        } else {
            CHM_FATAL("unknown --gpu: " << *gpu_name);
        }
        spec.engine.tpDegree = static_cast<int>(*tp);
        spec.predictor.accuracy = *acc;
        spec.predictor.seed = static_cast<std::uint64_t>(*seed);

        CHM_CHECK(*tenants >= 1, "--tenants must be >= 1");
        spec.tenancy.tenants = static_cast<int>(*tenants);

        CHM_CHECK(*replicas >= 1, "--replicas must be >= 1");
        spec.cluster.replicas = static_cast<int>(*replicas);
        if (!fleet->empty()) {
            // A fleet defines the replica count; a --replicas beside it
            // would silently lose to one of the two.
            if (flagGiven(argc, argv, "replicas")) {
                std::fprintf(stderr,
                             "--replicas conflicts with --fleet; the "
                             "fleet preset already defines the replica "
                             "count\n");
                return 2;
            }
            std::vector<model::GpuSpec> gpus;
            if (!model::tryFleetByName(*fleet, &gpus)) {
                std::fprintf(stderr,
                             "unknown --fleet '%s'; expected %s\n",
                             fleet->c_str(),
                             model::fleetGrammarHelp().c_str());
                return 2;
            }
            spec.cluster.replicas = static_cast<int>(gpus.size());
            spec.cluster.replicaEngines =
                serving::fleetEngines(spec.engine, gpus);
        }
        if (!routing::routerPolicyByName(*router, &spec.cluster.router)) {
            std::fprintf(stderr,
                         "unknown --router '%s'; known: %s\n",
                         router->c_str(), routing::routerPolicyNames());
            return 2;
        }
        spec.cluster.routerConfig.seed = static_cast<std::uint64_t>(*seed);
        spec.cluster.autoscale = *autoscale;
        spec.cluster.autoscaler.minReplicas =
            static_cast<std::size_t>(*min_replicas);
        spec.cluster.autoscaler.maxReplicas =
            static_cast<std::size_t>(*max_replicas);
        spec.cluster.autoscaler.replicaServiceRps = *replica_rps;
        spec.cluster.autoscaler.bootMs = *boot_ms;
        if (!routing::scaleUpPolicyByName(
                *up_policy, &spec.cluster.autoscaler.scaleUpPolicy)) {
            std::fprintf(stderr,
                         "unknown --autoscale-up-policy '%s'; known: %s\n",
                         up_policy->c_str(),
                         routing::scaleUpPolicyNames());
            return 2;
        }
        spec.cluster.autoscaler.measuredRateAlpha = *measured_alpha;
        if (!routing::demandSourceByName(
                *demand_source, &spec.cluster.autoscaler.demandSource)) {
            std::fprintf(stderr,
                         "unknown --autoscale-demand-source '%s'; "
                         "known: %s\n",
                         demand_source->c_str(),
                         routing::demandSourceNames());
            return 2;
        }
        spec.cluster.autoscaler.bootAwareHorizon = *boot_horizon;
        spec.cluster.routerConfig.sloAdmission = *slo_admission;
        if (!fabric::migrationPolicyByName(*migration,
                                           &spec.fabric.migration)) {
            std::fprintf(stderr,
                         "unknown --migration '%s'; known: %s\n",
                         migration->c_str(),
                         fabric::migrationPolicyNames());
            return 2;
        }
        if (!fabric::topologyByName(*topology, &spec.fabric.topology)) {
            std::fprintf(stderr,
                         "unknown --topology '%s'; known: %s\n",
                         topology->c_str(), fabric::topologyNames());
            return 2;
        }
        CHM_CHECK(*fabric_top_k >= 1, "--fabric-top-k must be >= 1");
        spec.fabric.topK = static_cast<std::size_t>(*fabric_top_k);
        // Cluster-only flags silently doing nothing would misread as a
        // valid run of the requested policy.
        CHM_CHECK(spec.cluster.replicas > 1 || spec.cluster.autoscale ||
                      *router == "jsq",
                  "--router requires --replicas > 1 or --autoscale");
        CHM_CHECK(spec.cluster.autoscale ||
                      (*min_replicas == 1 && *max_replicas == 8 &&
                       *replica_rps == 8.0 && *boot_ms == 0.0 &&
                       *up_policy == "default" && *measured_alpha == 0.0 &&
                       *demand_source == "nominal" && !*boot_horizon),
                  "--min-replicas/--max-replicas/--replica-rps/"
                  "--autoscale-boot-ms/--autoscale-up-policy/"
                  "--autoscale-alpha/--autoscale-demand-source/"
                  "--autoscale-boot-horizon require --autoscale");
        CHM_CHECK(spec.fabric.migration == fabric::MigrationPolicy::Off ||
                      spec.cluster.replicas > 1 || spec.cluster.autoscale,
                  "--migration needs peers: --replicas > 1 or "
                  "--autoscale");
        CHM_CHECK(spec.fabric.enabled() ||
                      (*topology == "pcie" && *fabric_top_k == 4),
                  "--topology/--fabric-top-k require --migration");
    }
    const bool clusterRun =
        spec.cluster.replicas > 1 || spec.cluster.autoscale;

    CHM_CHECK(*tenant_storm >= 1.0,
              "--tenant-storm must be >= 1 (1 disables the storm)");
    CHM_CHECK(*tenant_storm <= 1.0 || spec.tenancy.tenants > 1,
              "--tenant-storm needs more than one tenant (--tenants, or "
              "the config file's tenancy.tenants); a storm is one tenant "
              "bursting against the others");
    CHM_CHECK(*slo_multiplier >= 0.0,
              "--slo-multiplier must be >= 0 (0 disables SLO reporting)");

    if (*dump_config) {
        // The resolved spec alone reproduces this system: pipe it back
        // through --config - for a bit-identical seeded run.
        std::fputs(core::specToJson(spec).c_str(), stdout);
        return 0;
    }

    std::unique_ptr<model::AdapterPool> pool;
    if (*adapters > 0) {
        pool = std::make_unique<model::AdapterPool>(
            spec.engine.model, static_cast<int>(*adapters));
    }

    workload::Trace trace;
    if (!trace_in->empty()) {
        trace = workload::Trace::loadCsv(*trace_in);
    } else {
        workload::TraceGenConfig wl;
        if (*workload_name == "splitwise")
            wl = workload::splitwiseLike();
        else if (*workload_name == "wildchat")
            wl = workload::wildchatLike();
        else if (*workload_name == "lmsys")
            wl = workload::lmsysLike();
        else
            CHM_FATAL("unknown --workload: " << *workload_name);
        wl.rps = *rps;
        wl.durationSeconds = *duration;
        wl.numAdapters = static_cast<int>(*adapters);
        wl.seed = static_cast<std::uint64_t>(*seed);
        wl.numTenants = spec.tenancy.tenants;
        if (*tenant_storm > 1.0) {
            // Tenant 0 bursts for the middle half of the trace, leaving
            // clean head/tail windows for comparison.
            wl.stormTenant = 0;
            wl.stormMultiplier = *tenant_storm;
            wl.stormStartSeconds = 0.25 * wl.durationSeconds;
            wl.stormEndSeconds = 0.75 * wl.durationSeconds;
        }
        workload::TraceGenerator gen(wl, pool.get());
        trace = gen.generate();
    }
    if (!save_trace->empty())
        trace.saveCsv(*save_trace);

    model::CostModel cost(spec.engine.model, spec.engine.gpu,
                          spec.engine.tpDegree, spec.engine.cost);
    const double slo =
        *slo_multiplier > 0.0
            ? sim::toSeconds(serving::computeSlo(trace, cost, pool.get(),
                                                 *slo_multiplier))
            : 0.0;

    std::printf("system      : %s (scheduler %s, adapters %s"
                "%s%s)\n",
                spec.name.c_str(),
                core::schedulerPolicyName(spec.scheduler.policy),
                core::adapterPolicyName(spec.adapters.policy),
                spec.adapters.policy ==
                        core::AdapterPolicy::ChameleonCache
                    ? ", eviction "
                    : "",
                spec.adapters.policy ==
                        core::AdapterPolicy::ChameleonCache
                    ? core::evictionPolicyName(spec.adapters.eviction)
                    : "");
    std::printf("deployment  : %s on %s x%d, %lld adapters\n",
                spec.engine.model.name.c_str(),
                spec.engine.gpu.name.c_str(), spec.engine.tpDegree,
                static_cast<long long>(*adapters));
    if (clusterRun) {
        std::printf("cluster     : %d replicas, %s routing%s%s%s%s\n",
                    spec.cluster.replicas,
                    routing::routerPolicyName(spec.cluster.router),
                    spec.cluster.routerConfig.sloAdmission
                        ? " + slo admission"
                        : "",
                    spec.cluster.autoscale ? ", autoscaling" : "",
                    spec.cluster.autoscaler.demandSource ==
                            routing::DemandSource::Measured
                        ? " on measured demand"
                        : "",
                    spec.cluster.autoscaler.bootAwareHorizon
                        ? ", boot-aware horizon"
                        : "");
        if (!spec.cluster.replicaEngines.empty()) {
            std::printf("fleet       :");
            for (const auto &engine : spec.cluster.replicaEngines)
                std::printf(" %s", engine.gpu.name.c_str());
            std::printf("\n");
        }
        if (spec.fabricEnabled()) {
            std::printf("fabric      : migration %s over %s, top-%zu "
                        "hot adapters\n",
                        fabric::migrationPolicyName(spec.fabric.migration),
                        fabric::topologyName(spec.fabric.topology),
                        spec.fabric.topK);
        }
    }
    std::printf("trace       : %zu requests, %.2f RPS, %.0f s\n",
                trace.size(), trace.meanRps(),
                sim::toSeconds(trace.duration()));
    if (spec.tenancy.tenants > 1) {
        std::printf("tenants     : %d equal-share", spec.tenancy.tenants);
        if (*tenant_storm > 1.0)
            std::printf(", tenant 0 storming at %gx mid-trace",
                        *tenant_storm);
        std::printf("\n");
    }
    if (*slo_multiplier > 0.0) {
        std::printf("TTFT SLO    : %.2f s (%gx mean isolated latency)\n\n",
                    slo, *slo_multiplier);
    } else {
        std::printf("TTFT SLO    : disabled (--slo-multiplier 0)\n\n");
    }

    core::Runner runner(spec, pool.get());
    runner.setSloMultiplier(*slo_multiplier);
    obs::TraceRecorder recorder;
    if (!trace_out->empty())
        runner.setTraceRecorder(&recorder);
    const core::RunReport report = runner.run(trace);
    const auto &s = report.stats;

    std::printf("finished    : %lld / %lld (%lld preempts, %lld squashes, "
                "%lld bypasses, %.1f%% cache hits)\n",
                static_cast<long long>(s.finished),
                static_cast<long long>(s.submitted),
                static_cast<long long>(s.preemptions),
                static_cast<long long>(s.squashes),
                static_cast<long long>(s.bypasses),
                100.0 * s.cacheHitRate());
    std::printf("TTFT        : p50 %.3f s, p90 %.3f s, p99 %.3f s%s\n",
                s.ttft.p50(), s.ttft.p90(), s.ttft.p99(),
                *slo_multiplier <= 0.0  ? ""
                : s.ttft.p99() <= slo ? "  (meets SLO)"
                                      : "  (VIOLATES SLO)");
    std::printf("TBT         : p50 %.1f ms, p99 %.1f ms\n", s.tbt.p50(),
                s.tbt.p99());
    std::printf("E2E         : p50 %.2f s, p99 %.2f s\n", s.e2e.p50(),
                s.e2e.p99());
    std::printf("queue delay : p50 %.3f s, p99 %.3f s\n", s.queueDelay.p50(),
                s.queueDelay.p99());
    std::printf("load stall  : mean %.2f ms, p99 %.2f ms\n",
                s.loadStall.mean(), s.loadStall.p99());
    std::printf("adapters    : hit rate %.1f%%, %lld evictions\n",
                100.0 * report.cacheHitRate,
                static_cast<long long>(report.cacheEvictions));
    if (report.sloAttainment >= 0.0) {
        std::printf("SLO         : %.1f%% of requests met the %.2f s "
                    "TTFT SLO\n",
                    100.0 * report.sloAttainment, report.sloSeconds);
    }
    if (report.tenants.size() > 1) {
        std::printf("fairness    : Jain index %.4f over per-tenant "
                    "weighted service\n",
                    report.fairnessIndex);
        for (const auto &t : report.tenants) {
            std::printf("tenant %-5d: %lld finished, TTFT p50 %.3f s "
                        "p99 %.3f s, E2E p99 %.2f s, slowdown mean %.2f "
                        "p99 %.2f",
                        t.tenant, static_cast<long long>(t.finished),
                        t.p50TtftSeconds, t.p99TtftSeconds,
                        t.p99E2eSeconds, t.meanSlowdown, t.p99Slowdown);
            if (t.sloAttainment >= 0.0)
                std::printf(", SLO %.1f%%", 100.0 * t.sloAttainment);
            std::printf("\n");
        }
    }
    if (clusterRun) {
        // Per-link rate/utilisation is not meaningful summed over
        // replicas; report totals only.
        std::printf("PCIe        : %.2f GB, %lld transfers across replicas\n",
                    static_cast<double>(report.pcieBytes) / 1e9,
                    static_cast<long long>(report.pcieTransfers));
    } else {
        std::printf("PCIe        : %.2f GB total, %.1f MB/s mean, "
                    "utilisation %.1f%%\n",
                    static_cast<double>(report.pcieBytes) / 1e9,
                    report.pcieMeanBytesPerSec / 1e6,
                    100.0 * report.pcieUtilisation);
    }
    const double elapsed =
        std::max(1e-9, sim::toSeconds(trace.duration()));
    std::printf("engine      : %lld iterations, busy %.1f s, mean batch "
                "%.1f, %.0f prefill tok/s, %.0f decode tok/s\n",
                static_cast<long long>(s.iterations),
                sim::toSeconds(s.busyTime),
                s.iterations ? static_cast<double>(s.batchSizeAccum) /
                                   static_cast<double>(s.iterations)
                             : 0.0,
                static_cast<double>(s.prefillTokens) / elapsed,
                static_cast<double>(s.decodeTokens) / elapsed);
    if (report.mlqQueues > 0)
        std::printf("scheduler   : %d MLQ queues\n", report.mlqQueues);
    if (clusterRun) {
        std::printf("replicas    : %zu built, %zu active at end, "
                    "%lld scale-ups, %lld scale-downs\n",
                    report.peakReplicas, report.finalActiveReplicas,
                    static_cast<long long>(report.scaleUps),
                    static_cast<long long>(report.scaleDowns));
        std::printf("per-replica :");
        for (const auto finished : report.perReplicaFinished)
            std::printf(" %lld", static_cast<long long>(finished));
        std::printf(" finished\n");
        std::printf("svc rate    :");
        for (const double rate : report.perReplicaServiceRate)
            std::printf(" %.2f", rate);
        std::printf(" req/s nominal (routing weights)\n");
        if (report.perReplicaEffectiveRate !=
            report.perReplicaServiceRate) {
            std::printf("measured    :");
            for (const double rate : report.perReplicaEffectiveRate)
                std::printf(" %.2f", rate);
            std::printf(" req/s EWMA (weights in effect)\n");
        }
        if (report.bootEvents > 0) {
            std::printf("cold start  : %lld boots, %.2f s total boot "
                        "time, %lld requests dispatched while booting\n",
                        static_cast<long long>(report.bootEvents),
                        report.totalBootSeconds,
                        static_cast<long long>(
                            report.requestsDelayedByBoot));
        }
        if (report.fabricEnabled) {
            std::printf("fabric      : %lld migrations, %.2f GB over "
                        "%lld peer transfers\n",
                        static_cast<long long>(report.fabricMigrations),
                        static_cast<double>(report.fabricPeerBytes) / 1e9,
                        static_cast<long long>(
                            report.fabricPeerTransfers));
        }
    }

    if (!records_csv->empty()) {
        writeRecordsCsv(*records_csv, s.records);
        std::printf("\nper-request records written to %s\n",
                    records_csv->c_str());
    }
    if (!trace_out->empty()) {
        recorder.writeJson(*trace_out);
        std::printf("\ntrace (%zu events) written to %s — open in "
                    "Perfetto or chrome://tracing\n",
                    recorder.size(), trace_out->c_str());
    }
    if (!metrics_out->empty()) {
        std::ofstream out(*metrics_out);
        CHM_CHECK(out.good(), "cannot open " << *metrics_out);
        out << report.metrics.dump() << '\n';
        std::printf("metrics snapshot written to %s\n",
                    metrics_out->c_str());
    }
    return 0;
}
