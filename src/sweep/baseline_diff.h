/**
 * @file
 * Row-aligned BenchJson baseline comparison (chameleon_sweep
 * --baseline, and the CI perf/determinism gate built on it).
 *
 * Two sweep documents from the same sweep JSON + seed are comparable
 * row by row: expandSweep emits cells in a deterministic grid order
 * and the runner stores results at their cell index, so row i of the
 * current document and row i of the baseline describe the same cell.
 * The comparison distinguishes three severities:
 *
 *   structural      row counts differ, a cell's identity fields
 *                   (system, rps, replicas, fleet, router, autoscale,
 *                   trace_seed) moved, or the column sets diverge.
 *                   The documents are not the same sweep — fatal.
 *   hash mismatch   a cell's event_hash differs: the simulation
 *                   dispatched a different event stream for the same
 *                   spec + seed. Determinism regression — fatal.
 *   numeric drift   a metric moved by more than the relative
 *                   tolerance while the event stream stayed
 *                   identical. With equal hashes the simulation
 *                   behaved identically, so drift beyond tolerance
 *                   can only come from post-simulation accounting —
 *                   reported as a warning.
 */

#ifndef CHAMELEON_SWEEP_BASELINE_DIFF_H
#define CHAMELEON_SWEEP_BASELINE_DIFF_H

#include <cstddef>
#include <string>
#include <vector>

#include "simkit/json.h"

namespace chameleon::sweep {

/** Outcome of one row-aligned baseline comparison. */
struct BaselineDiff
{
    /** One diverging field of one row. */
    struct Mismatch
    {
        std::size_t row = 0;
        std::string key;
        std::string baseline; // literal as printed in the document
        std::string current;
    };

    /** Document-shape problems (fatal; human-readable messages). */
    std::vector<std::string> structural;
    /** event_hash / identity-string divergences (fatal). */
    std::vector<Mismatch> hashMismatches;
    /** Numeric fields beyond the relative tolerance (warnings). */
    std::vector<Mismatch> drifts;

    /** No structural problems and no hash mismatches (drift alone
     * does not fail the gate). */
    bool
    passed() const
    {
        return structural.empty() && hashMismatches.empty();
    }
};

/**
 * Compare `current` against `baseline` (both parsed BenchJson
 * documents: {"benchmark": ..., "rows": [...]}), aligning rows by
 * index. Numeric fields drift-check against `relTolerance`
 * (|cur - base| > relTolerance x |base|; an exact-zero baseline
 * drifts on any change); string fields — event_hash and the cell
 * identity columns — must match exactly.
 */
BaselineDiff diffAgainstBaseline(const sim::JsonValue &current,
                                 const sim::JsonValue &baseline,
                                 double relTolerance = 0.05);

} // namespace chameleon::sweep

#endif // CHAMELEON_SWEEP_BASELINE_DIFF_H
