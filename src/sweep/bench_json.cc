#include "sweep/bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "simkit/check.h"
#include "simkit/json.h"

namespace chameleon::sweep {

BenchJson::BenchJson(std::string benchmarkName)
    : name_(std::move(benchmarkName))
{
}

BenchJson &
BenchJson::row()
{
    rows_.emplace_back();
    return *this;
}

BenchJson &
BenchJson::field(const std::string &key, bool value)
{
    CHM_CHECK(!rows_.empty(), "field() before row()");
    rows_.back().push_back(Field{key, value ? "true" : "false"});
    return *this;
}

BenchJson &
BenchJson::field(const std::string &key, double value)
{
    CHM_CHECK(!rows_.empty(), "field() before row()");
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    if (std::isfinite(value))
        os << value;
    else
        os << "null"; // JSON has no NaN/Inf
    rows_.back().push_back(Field{key, os.str()});
    return *this;
}

BenchJson &
BenchJson::field(const std::string &key, std::int64_t value)
{
    CHM_CHECK(!rows_.empty(), "field() before row()");
    rows_.back().push_back(Field{key, std::to_string(value)});
    return *this;
}

BenchJson &
BenchJson::field(const std::string &key, std::uint64_t value)
{
    CHM_CHECK(!rows_.empty(), "field() before row()");
    rows_.back().push_back(Field{key, std::to_string(value)});
    return *this;
}

BenchJson &
BenchJson::field(const std::string &key, const std::string &value)
{
    CHM_CHECK(!rows_.empty(), "field() before row()");
    rows_.back().push_back(Field{key, sim::jsonQuote(value)});
    return *this;
}

std::string
BenchJson::toString() const
{
    std::ostringstream out;
    out << "{\n  \"benchmark\": " << sim::jsonQuote(name_)
        << ",\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        out << "    {";
        for (std::size_t f = 0; f < rows_[r].size(); ++f) {
            out << sim::jsonQuote(rows_[r][f].key) << ": "
                << rows_[r][f].literal;
            if (f + 1 < rows_[r].size())
                out << ", ";
        }
        out << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    return out.str();
}

void
BenchJson::write(const std::string &path) const
{
    std::ofstream out(path);
    CHM_CHECK(out.good(), "cannot open " << path);
    out << toString();
    out.flush();
    CHM_CHECK(out.good(), "write failed for " << path);
    std::printf("\nmachine-readable results written to %s\n",
                path.c_str());
}

} // namespace chameleon::sweep
