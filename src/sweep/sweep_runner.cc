#include "sweep/sweep_runner.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "simkit/check.h"
#include "workload/trace_gen.h"

namespace chameleon::sweep {

namespace {

/**
 * Event hashes travel as fixed-width hex strings, not JSON numbers: a
 * 64-bit hash round-trips a double-based JSON parser lossily, and the
 * --baseline gate compares these fields exactly.
 */
std::string
hashLiteral(std::uint64_t hash)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec))
{
    std::string error;
    auto cells = expandSweep(spec_, &error);
    CHM_CHECK(cells.has_value(), error);
    cells_ = std::move(*cells);

    if (spec_.workload.adapters > 0) {
        pool_ = std::make_unique<model::AdapterPool>(
            spec_.engine.model, spec_.workload.adapters);
    }

    // One trace per distinct (rps, seed) pair, indexed by
    // SweepCell::traceIndex (expandSweep allocated the indices).
    std::size_t traceCount = 0;
    for (const auto &cell : cells_)
        traceCount = std::max(traceCount, cell.traceIndex + 1);
    traces_.resize(traceCount);
    std::vector<bool> built(traceCount, false);
    for (const auto &cell : cells_) {
        if (built[cell.traceIndex])
            continue;
        workload::TraceGenerator gen(
            cellTraceConfig(spec_, cell.rps, cell.traceSeed),
            pool_.get());
        traces_[cell.traceIndex] = gen.generate();
        built[cell.traceIndex] = true;
    }
}

SweepRunner::~SweepRunner() = default;

std::vector<CellResult>
SweepRunner::run() const
{
    std::vector<CellResult> results(cells_.size());

    // Each cell is a self-contained simulation (own Simulator, engines,
    // RNG streams) over shared read-only traces and pool, so cells can
    // run concurrently; results land at their cell index, keeping the
    // output order (and the emitted BenchJson) thread-count-invariant.
    auto runRange = [this, &results](std::atomic<std::size_t> &next) {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cells_.size())
                return;
            const SweepCell &cell = cells_[i];
            core::Runner runner(cell.spec, pool_.get());
            // A tenant storm only discriminates between schedulers
            // while its backlog is contended — a full drain finishes
            // every request under any policy and converges the
            // fairness index to the trace's demand mix — so storm
            // cells measure under the same bounded window as
            // bench/fig29_fairness.
            const sim::SimTime drainWindow =
                spec_.workload.tenantStorm > 1.0 ? 30 * sim::kSec
                                                 : 3600 * sim::kSec;
            results[i] = CellResult{
                cell, runner.run(traces_[cell.traceIndex],
                                 drainWindow)};
        }
    };

    std::atomic<std::size_t> next{0};
    const int workers = std::min<int>(
        std::max(1, spec_.threads), static_cast<int>(cells_.size()));
    if (workers <= 1) {
        runRange(next);
        return results;
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        threads.emplace_back([&] { runRange(next); });
    for (auto &t : threads)
        t.join();
    return results;
}

void
SweepRunner::appendRows(BenchJson &json,
                        const std::vector<CellResult> &results)
{
    for (const auto &result : results) {
        const auto &cell = result.cell;
        const auto &report = result.report;
        const auto &s = report.stats;
        json.row()
            .field("system", cell.system)
            .field("rps", cell.rps)
            .field("replicas", static_cast<std::int64_t>(cell.replicaCount))
            .field("fleet", cell.fleet)
            .field("router", cell.router)
            .field("autoscale", cell.autoscale)
            .field("demand_source",
                   std::string(routing::demandSourceName(
                       cell.spec.cluster.autoscaler.demandSource)))
            .field("boot_aware_horizon",
                   cell.spec.cluster.autoscaler.bootAwareHorizon)
            .field("slo_admission", cell.sloAdmission)
            .field("migration", cell.migration)
            .field("topology", cell.topology)
            .field("trace_seed", cell.traceSeed)
            .field("submitted", s.submitted)
            .field("finished", s.finished)
            .field("preemptions", s.preemptions)
            .field("p50_ttft_s", s.ttft.p50())
            .field("p90_ttft_s", s.ttft.p90())
            .field("p99_ttft_s", s.ttft.p99())
            .field("p50_tbt_ms", s.tbt.p50())
            .field("p99_tbt_ms", s.tbt.p99())
            .field("p50_e2e_s", s.e2e.p50())
            .field("p99_e2e_s", s.e2e.p99())
            .field("p99_queue_delay_s", s.queueDelay.p99())
            .field("mean_load_stall_ms", s.loadStall.mean())
            .field("cache_hit_rate", report.cacheHitRate)
            .field("cache_evictions", report.cacheEvictions)
            .field("adapter_pcie_fetches", report.pcieTransfers)
            .field("adapter_pcie_gb",
                   static_cast<double>(report.pcieBytes) / 1e9)
            .field("mlq_queues", static_cast<std::int64_t>(report.mlqQueues))
            .field("peak_replicas",
                   static_cast<std::int64_t>(report.peakReplicas))
            .field("scale_ups", report.scaleUps)
            .field("scale_downs", report.scaleDowns)
            .field("boot_events", report.bootEvents)
            .field("total_boot_s", report.totalBootSeconds)
            .field("requests_delayed_by_boot",
                   report.requestsDelayedByBoot)
            .field("fabric_migrations", report.fabricMigrations)
            .field("fabric_peer_gb",
                   static_cast<double>(report.fabricPeerBytes) / 1e9)
            .field("fairness_index", report.fairnessIndex)
            .field("slo_attainment", report.sloAttainment)
            .field("event_hash", hashLiteral(report.eventHash));
    }
}

BenchJson
SweepRunner::runToBenchJson() const
{
    BenchJson json(spec_.name);
    appendRows(json, run());
    return json;
}

} // namespace chameleon::sweep
