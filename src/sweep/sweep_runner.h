/**
 * @file
 * SweepRunner: execute a SweepSpec grid into one consolidated report.
 *
 * Expands the sweep (sweep_spec.h), generates the shared traces (one
 * per load-axis entry, seeded `seed + loadIndex` so every system at a
 * load sees identical arrivals), runs each cell through the existing
 * core::Runner, and emits one BenchJson with a row per cell. Cells are
 * independent simulations, so the runner can execute them on a thread
 * pool (spec.threads); results are reported in cell order regardless
 * of scheduling, and every per-cell seed is derived from the sweep
 * seed, so the same sweep JSON + seed produces a byte-identical
 * BenchJson at any thread count (tests/sweep_test.cc asserts this).
 *
 * bench/fig17_cache_policies and bench/fig26_routing are thin wrappers
 * over this class; tools/chameleon_sweep.cc drives it from a JSON file.
 */

#ifndef CHAMELEON_SWEEP_SWEEP_RUNNER_H
#define CHAMELEON_SWEEP_SWEEP_RUNNER_H

#include <memory>
#include <vector>

#include "chameleon/system.h"
#include "sweep/bench_json.h"
#include "sweep/sweep_spec.h"
#include "workload/trace.h"

namespace chameleon::sweep {

/** One executed cell: its descriptor plus the full run report. */
struct CellResult
{
    SweepCell cell;
    core::RunReport report;
};

/** Executes one SweepSpec; reusable for repeated runs. */
class SweepRunner
{
  public:
    /**
     * Expands the sweep, builds the adapter pool, and generates the
     * shared traces. Fails fast (CHM_FATAL) on an invalid sweep; use
     * expandSweep() directly for recoverable validation.
     */
    explicit SweepRunner(SweepSpec spec);
    ~SweepRunner();

    const SweepSpec &spec() const { return spec_; }
    const std::vector<SweepCell> &cells() const { return cells_; }
    const workload::Trace &trace(std::size_t index) const
    {
        return traces_[index];
    }
    const model::AdapterPool *pool() const { return pool_.get(); }

    /**
     * Run every cell (spec.threads workers; 1 = serial) and return the
     * results in cell order.
     */
    std::vector<CellResult> run() const;

    /** Append one consolidated row per result to `json`. */
    static void appendRows(BenchJson &json,
                           const std::vector<CellResult> &results);

    /** run() + appendRows() into a document named after the sweep. */
    BenchJson runToBenchJson() const;

  private:
    SweepSpec spec_;
    std::unique_ptr<model::AdapterPool> pool_;
    std::vector<SweepCell> cells_;
    std::vector<workload::Trace> traces_;
};

} // namespace chameleon::sweep

#endif // CHAMELEON_SWEEP_SWEEP_RUNNER_H
