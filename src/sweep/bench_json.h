/**
 * @file
 * Machine-readable benchmark output (BENCH_<name>.json).
 *
 * Accumulates flat rows of fields and prints
 * {"benchmark": ..., "rows": [...]} so the perf trajectory of a bench
 * or sweep can be tracked across commits. Lived in bench/bench_util
 * until the sweep subsystem needed to emit consolidated documents from
 * library code; bench::BenchJson remains as an alias.
 */

#ifndef CHAMELEON_SWEEP_BENCH_JSON_H
#define CHAMELEON_SWEEP_BENCH_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace chameleon::sweep {

/** Row-oriented benchmark result document. */
class BenchJson
{
  public:
    explicit BenchJson(std::string benchmarkName);

    /** Start a new row; subsequent field() calls fill it. */
    BenchJson &row();

    BenchJson &field(const std::string &key, bool value);
    BenchJson &field(const std::string &key, double value);
    BenchJson &field(const std::string &key, std::int64_t value);
    /** Full uint64 range (seeds print unsigned, not wrapped). */
    BenchJson &field(const std::string &key, std::uint64_t value);
    BenchJson &field(const std::string &key, const std::string &value);
    /** Literals stay strings (not bools) despite the bool overload. */
    BenchJson &field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    std::size_t rowCount() const { return rows_.size(); }

    /**
     * The complete document text. Deterministic: same rows in the same
     * order print byte-identically (the sweep determinism tests assert
     * exactly this).
     */
    std::string toString() const;

    /** Write the document; fails hard if the path cannot be opened. */
    void write(const std::string &path) const;

  private:
    struct Field
    {
        std::string key;
        std::string literal; // already JSON-encoded
    };

    std::string name_;
    std::vector<std::vector<Field>> rows_;
};

} // namespace chameleon::sweep

#endif // CHAMELEON_SWEEP_BENCH_JSON_H
