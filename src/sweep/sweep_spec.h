/**
 * @file
 * SweepSpec: a declarative grid of scenarios over the system registry.
 *
 * The paper's evaluation is a grid — systems x loads x traces x
 * policies. A SweepSpec names one such grid: an explicit list of
 * registry system names, and/or a cross-product built from a base
 * system and axes of registry modifier tokens (the same `base+mod`
 * grammar the CLI accepts), crossed with load (rps), replica-count
 * (or heterogeneous fleet-preset), and router axes. expandSweep()
 * resolves it into concrete SweepCells
 * — one fully validated core::SystemSpec per grid cell — which the
 * SweepRunner (sweep_runner.h) executes into one consolidated
 * BenchJson.
 *
 * Loaded from JSON (sweepFromJson; grammar documented in
 * src/sweep/README.md):
 *
 *   {
 *     "name": "fig17_policy_grid",
 *     "seed": 42,
 *     "systems": ["slora"],
 *     "grid": {
 *       "base": "chameleon",
 *       "axes": [["paper", "lru", "fairshare", "gdsf"]]
 *     },
 *     "loads": [8.0],
 *     "workload": {"preset": "splitwise", "duration_s": 300,
 *                  "adapters": 200},
 *     "engine": {"workspace_per_gpu": 25769803776}
 *   }
 *
 * Determinism: the trace of load-axis index i is generated with seed
 * `seed + i` (every system at that load runs the identical trace);
 * router sampling streams are seeded with `seed`. Same sweep JSON +
 * seed => identical cells, traces, and BenchJson, asserted by
 * tests/sweep_test.cc.
 */

#ifndef CHAMELEON_SWEEP_SWEEP_SPEC_H
#define CHAMELEON_SWEEP_SWEEP_SPEC_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chameleon/system_spec.h"
#include "workload/trace_gen.h"

namespace chameleon::sweep {

/** The paper testbed's hardware (Llama-7B on an A40): the default
 * engine template of a SweepSpec, for the C++ and JSON paths alike. */
serving::EngineConfig paperTestbedEngine();

/** Workload template shared by every cell (rps comes per cell). */
struct SweepWorkload
{
    /** Trace preset: splitwise | wildchat | lmsys. */
    std::string preset = "splitwise";
    double durationSeconds = 120.0;
    /** Adapter-pool size (0 = base-only workload). */
    int adapters = 100;
    /** "" keeps the preset's default; else uniform | powerlaw. */
    std::string adapterPopularity;
    /**
     * Periodic burstiness overrides (see TraceGenConfig); unset keeps
     * the preset's defaults (splitwise/wildchat ship bursty, §3.1).
     */
    std::optional<double> burstMultiplier;
    std::optional<double> burstPeriodSeconds;
    std::optional<double> burstDurationSeconds;
    /**
     * Tenant axis of the workload: > 1 splits the offered load across
     * this many equal-share tenants (per-tenant arrival processes, see
     * TraceGenConfig). Also stamped onto every cell's
     * spec.tenancy.tenants so WFQ/DRR cells see the declared count.
     */
    int tenants = 1;
    /**
     * Noisy-neighbour storm: tenant 0 bursts to this multiple of its
     * share for the middle half of the trace (<= 1 disables). Requires
     * tenants > 1. Storm cells run under a bounded 30 s drain window
     * (the fig29 convention) so the fairness index measures who gets
     * served while the backlog is contended; a full drain would
     * converge every scheduler to the trace's demand mix.
     */
    double tenantStorm = 1.0;
};

/** The sweep description; see file comment for the JSON grammar. */
struct SweepSpec
{
    std::string name = "sweep";

    /** Explicit registry names ("chameleon", "slora+sjf", ...). */
    std::vector<std::string> systems;
    /** Cross-product base; "" disables the grid. */
    std::string gridBase;
    /** One modifier-token list per axis; cells take one from each. */
    std::vector<std::vector<std::string>> gridAxes;

    /** Load axis (rps); empty means one load at 8.0. */
    std::vector<double> loads;
    /** Multiply each load by the cell's replica count (fig26-style). */
    bool rpsPerReplica = false;
    /** Replica-count axis; empty means {1}. */
    std::vector<int> replicas;
    /**
     * Heterogeneous-fleet axis: model::tryFleetByName presets
     * ("a40x4", "a100x2+a40x2", ...). Each entry becomes one axis
     * value whose cells deploy that GPU mix (per-replica engines =
     * the engine template with the preset's GPUs; replica count = the
     * fleet size). Mutually exclusive with the `replicas` axis — a
     * fleet already fixes the count. Empty = homogeneous sweep.
     */
    std::vector<std::string> fleets;
    /** Router axis (rr|jsq|p2c|affinity|affinity-cache); empty = jsq. */
    std::vector<std::string> routers;
    /**
     * Autoscale axis: each entry is one axis value (cells with `true`
     * enable predictor-driven autoscaling under the `autoscaler`
     * template below). Empty = {false} — a fixed-size sweep. The
     * fig26 autoscale on/off section is exactly `[false, true]`.
     */
    std::vector<bool> autoscale;
    /** Autoscaler template stamped onto every autoscaling cell. */
    routing::AutoscalerConfig autoscaler{};
    /**
     * SLO-admission axis: cells with `true` wrap the router so
     * SLO-critical tenants (tenancy slo multiplier < 1) steer to the
     * fastest effective-rate replica. Empty = {false}.
     */
    std::vector<bool> sloAdmission;
    /**
     * Cache-fabric migration axis (off|scale-up|drain|remap|all);
     * empty = {"off"} — no fabric unless the router axis asks for
     * affinity-dir. Each entry becomes one axis value stamped onto
     * spec.fabric.migration.
     */
    std::vector<std::string> migrations;
    /** Peer-topology axis (pcie|nvlink); empty = {"pcie"}. */
    std::vector<std::string> topologies;
    /** Fabric template stamped onto every cell (migration/topology
     * come from the axes above). */
    core::FabricSpec fabric{};

    SweepWorkload workload;
    /** Hardware template stamped onto every cell. */
    serving::EngineConfig engine = paperTestbedEngine();
    /** Output-length predictor template stamped onto every cell. */
    core::PredictorSpec predictor;

    /** Master seed: traces derive per-load, routers use it directly. */
    std::uint64_t seed = 42;
    /** Worker threads for the runner (1 = serial). */
    int threads = 1;
    /** BenchJson output path; "" = "BENCH_<name>.json". */
    std::string output;

    /** The resolved output path. */
    std::string outputPath() const;
};

/** One concrete grid cell with its fully resolved system spec. */
struct SweepCell
{
    std::string system;
    double rps = 0.0;
    int replicaCount = 1;
    /** Fleet-preset name of the cell ("" on homogeneous sweeps). */
    std::string fleet;
    std::string router;
    /** Autoscale-axis value of the cell. */
    bool autoscale = false;
    /** SLO-admission-axis value of the cell. */
    bool sloAdmission = false;
    /** Migration-axis value of the cell ("off" on non-fabric sweeps). */
    std::string migration = "off";
    /** Topology-axis value of the cell. */
    std::string topology = "pcie";
    /** Index of the shared trace this cell runs (SweepRunner). */
    std::size_t traceIndex = 0;
    /** Seed the cell's trace is generated with. */
    std::uint64_t traceSeed = 0;
    core::SystemSpec spec;
};

/**
 * Parse a sweep description from JSON text. Strict keys with
 * offending-key error messages, like core::specFromJson. The default
 * engine template is the paper testbed (Llama-7B on an A40).
 */
std::optional<SweepSpec> sweepFromJson(const std::string &text,
                                       std::string *error = nullptr);

/**
 * Expand the spec into concrete cells: (systems + grid cross-product)
 * x loads x replicas x routers x autoscale, in that nesting order
 * (system outermost). Resolves every system name through the global
 * registry and validates every cell spec; returns std::nullopt with an
 * actionable message naming the offending cell on failure.
 */
std::optional<std::vector<SweepCell>> expandSweep(
    const SweepSpec &spec, std::string *error = nullptr);

/** The trace-generator configuration of load-axis entry `rps`. */
workload::TraceGenConfig cellTraceConfig(const SweepSpec &spec, double rps,
                                         std::uint64_t traceSeed);

} // namespace chameleon::sweep

#endif // CHAMELEON_SWEEP_SWEEP_SPEC_H
