#include "sweep/sweep_spec.h"

#include <limits>
#include <sstream>

#include "chameleon/spec_json.h"
#include "chameleon/system_registry.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "routing/router.h"
#include "simkit/json.h"

namespace chameleon::sweep {

using sim::JsonValue;

serving::EngineConfig
paperTestbedEngine()
{
    serving::EngineConfig engine;
    engine.model = model::llama7B();
    engine.gpu = model::a40();
    return engine;
}

std::string
SweepSpec::outputPath() const
{
    return output.empty() ? "BENCH_" + name + ".json" : output;
}

namespace {

bool
stringList(sim::JsonObjectReader &r, const std::string &key,
           std::vector<std::string> *out, bool allowEmpty = true)
{
    const JsonValue *v = r.child(key);
    if (v == nullptr)
        return r.ok();
    if (!v->isArray())
        return r.fail(key, "expects an array of strings");
    if (!allowEmpty && v->items().empty())
        return r.fail(key, "must not be an empty array (omit the key "
                           "to use the default)");
    out->clear();
    for (const auto &item : v->items()) {
        if (!item.isString())
            return r.fail(key, "expects an array of strings");
        out->push_back(item.asString());
    }
    return true;
}

bool
doubleList(sim::JsonObjectReader &r, const std::string &key,
           std::vector<double> *out)
{
    const JsonValue *v = r.child(key);
    if (v == nullptr)
        return r.ok();
    if (!v->isArray())
        return r.fail(key, "expects an array of numbers");
    if (v->items().empty())
        return r.fail(key, "must not be an empty array (omit the key "
                           "to use the default)");
    out->clear();
    for (const auto &item : v->items()) {
        if (!item.isNumber())
            return r.fail(key, "expects an array of numbers");
        out->push_back(item.asNumber());
    }
    return true;
}

bool
intList(sim::JsonObjectReader &r, const std::string &key,
        std::vector<int> *out)
{
    const JsonValue *v = r.child(key);
    if (v == nullptr)
        return r.ok();
    if (!v->isArray())
        return r.fail(key, "expects an array of integers");
    if (v->items().empty())
        return r.fail(key, "must not be an empty array (omit the key "
                           "to use the default)");
    out->clear();
    for (const auto &item : v->items()) {
        if (!item.isNumber() || !item.isIntegral() ||
            item.isUnsignedIntegral())
            return r.fail(key, "expects an array of integers");
        if (item.asInt() < std::numeric_limits<int>::min() ||
            item.asInt() > std::numeric_limits<int>::max())
            return r.fail(key, "has an entry out of 32-bit range");
        out->push_back(static_cast<int>(item.asInt()));
    }
    return true;
}

bool
boolList(sim::JsonObjectReader &r, const std::string &key,
         std::vector<bool> *out)
{
    const JsonValue *v = r.child(key);
    if (v == nullptr)
        return r.ok();
    if (!v->isArray())
        return r.fail(key, "expects an array of booleans");
    if (v->items().empty())
        return r.fail(key, "must not be an empty array (omit the key "
                           "to use the default)");
    out->clear();
    for (const auto &item : v->items()) {
        if (!item.isBool())
            return r.fail(key, "expects an array of booleans");
        out->push_back(item.asBool());
    }
    return true;
}

bool
workloadFromJson(const JsonValue &v, SweepWorkload *out,
                 std::string *error)
{
    sim::JsonObjectReader r(v, "workload", error);
    r.getString("preset", &out->preset);
    r.getDouble("duration_s", &out->durationSeconds);
    r.getInt("adapters", &out->adapters);
    r.getString("adapter_popularity", &out->adapterPopularity);
    auto getOptDouble = [&r](const char *key,
                             std::optional<double> *slot) {
        const JsonValue *v = r.child(key);
        if (v == nullptr)
            return r.ok();
        if (!v->isNumber())
            return r.fail(key, "expects a number");
        *slot = v->asNumber();
        return true;
    };
    getOptDouble("burst_multiplier", &out->burstMultiplier);
    getOptDouble("burst_period_s", &out->burstPeriodSeconds);
    getOptDouble("burst_duration_s", &out->burstDurationSeconds);
    r.getInt("tenants", &out->tenants);
    r.getDouble("tenant_storm", &out->tenantStorm);
    if (!r.finish())
        return false;
    if (out->tenants < 1) {
        return r.fail("tenants", "must be >= 1 (1 = the anonymous "
                                 "single-tenant default)");
    }
    if (out->tenantStorm > 1.0 && out->tenants < 2) {
        return r.fail("tenant_storm",
                      "needs \"tenants\" >= 2; a storm is one tenant "
                      "bursting against the others");
    }
    if (out->preset != "splitwise" && out->preset != "wildchat" &&
        out->preset != "lmsys") {
        return r.fail("preset", "unknown value \"" + out->preset +
                                    "\"; known: splitwise, wildchat, "
                                    "lmsys");
    }
    if (!out->adapterPopularity.empty() &&
        out->adapterPopularity != "uniform" &&
        out->adapterPopularity != "powerlaw") {
        return r.fail("adapter_popularity",
                      "unknown value \"" + out->adapterPopularity +
                          "\"; known: uniform, powerlaw");
    }
    return true;
}

bool
gridFromJson(const JsonValue &v, SweepSpec *out, std::string *error)
{
    sim::JsonObjectReader r(v, "grid", error);
    r.getString("base", &out->gridBase);
    const JsonValue *axes = r.child("axes");
    if (axes != nullptr) {
        if (!axes->isArray())
            return r.fail("axes", "expects an array of token arrays");
        for (std::size_t i = 0; i < axes->items().size(); ++i) {
            const JsonValue &axis = axes->items()[i];
            std::ostringstream key;
            key << "axes[" << i << "]";
            if (!axis.isArray() || axis.items().empty())
                return r.fail(key.str(),
                              "expects a non-empty array of modifier "
                              "tokens");
            std::vector<std::string> tokens;
            for (const auto &token : axis.items()) {
                if (!token.isString())
                    return r.fail(key.str(),
                                  "expects modifier-token strings");
                tokens.push_back(token.asString());
            }
            out->gridAxes.push_back(std::move(tokens));
        }
    }
    if (!r.finish())
        return false;
    if (out->gridBase.empty())
        return r.fail("base", "is required when \"grid\" is present");
    return true;
}

} // namespace

std::optional<SweepSpec>
sweepFromJson(const std::string &text, std::string *error)
{
    std::string parseError;
    auto doc = sim::parseJson(text, &parseError);
    if (!doc.has_value()) {
        if (error != nullptr)
            *error = "sweep json: " + parseError;
        return std::nullopt;
    }

    SweepSpec spec; // engine already defaults to the paper testbed

    auto failure = [error]() -> std::optional<SweepSpec> {
        if (error != nullptr && error->rfind("sweep json:", 0) != 0)
            *error = "sweep json: " + *error;
        return std::nullopt;
    };

    sim::JsonObjectReader r(*doc, "", error);
    r.getString("name", &spec.name);
    stringList(r, "systems", &spec.systems);
    if (const JsonValue *g = r.child("grid")) {
        if (!gridFromJson(*g, &spec, error))
            return failure();
    }
    doubleList(r, "loads", &spec.loads);
    r.getBool("rps_per_replica", &spec.rpsPerReplica);
    intList(r, "replicas", &spec.replicas);
    stringList(r, "fleets", &spec.fleets,
               /*allowEmpty=*/false);
    stringList(r, "routers", &spec.routers,
               /*allowEmpty=*/false);
    if (!boolList(r, "autoscale", &spec.autoscale))
        return failure();
    if (const JsonValue *a = r.child("autoscaler")) {
        if (!core::autoscalerFromJson(*a, "autoscaler", &spec.autoscaler,
                                      error))
            return failure();
    }
    if (!boolList(r, "slo_admission", &spec.sloAdmission))
        return failure();
    stringList(r, "migrations", &spec.migrations,
               /*allowEmpty=*/false);
    stringList(r, "topologies", &spec.topologies,
               /*allowEmpty=*/false);
    if (const JsonValue *f = r.child("fabric")) {
        if (!core::fabricFromJson(*f, "fabric", &spec.fabric, error))
            return failure();
    }
    if (const JsonValue *w = r.child("workload")) {
        if (!workloadFromJson(*w, &spec.workload, error))
            return failure();
    }
    if (const JsonValue *e = r.child("engine")) {
        if (!core::engineFromJson(*e, "engine", &spec.engine, error))
            return failure();
    }
    if (const JsonValue *p = r.child("predictor")) {
        if (!core::predictorFromJson(*p, "predictor", &spec.predictor,
                                     error))
            return failure();
    }
    r.getUint64("seed", &spec.seed);
    r.getInt("threads", &spec.threads);
    r.getString("output", &spec.output);
    if (!r.finish())
        return failure();

    if (spec.systems.empty() && spec.gridBase.empty()) {
        if (error != nullptr)
            *error = "sweep json: nothing to run; give \"systems\" "
                     "and/or a \"grid\"";
        return std::nullopt;
    }
    if (!spec.fleets.empty() && !spec.replicas.empty()) {
        if (error != nullptr)
            *error = "sweep json: \"fleets\" conflicts with "
                     "\"replicas\"; a fleet preset already fixes each "
                     "cell's replica count";
        return std::nullopt;
    }
    if (spec.threads < 1) {
        if (error != nullptr)
            *error = "sweep json: \"threads\" must be >= 1";
        return std::nullopt;
    }
    for (const double rps : spec.loads) {
        if (rps <= 0.0) {
            if (error != nullptr)
                *error = "sweep json: \"loads\" entries must be > 0";
            return std::nullopt;
        }
    }
    if (spec.workload.durationSeconds <= 0.0) {
        if (error != nullptr)
            *error = "sweep json: \"workload.duration_s\" must be > 0";
        return std::nullopt;
    }
    if (spec.workload.adapters < 0) {
        // A negative count would silently run base-only and misread
        // as a valid sweep with empty cache columns.
        if (error != nullptr)
            *error = "sweep json: \"workload.adapters\" must be >= 0 "
                     "(0 = base-only workload)";
        return std::nullopt;
    }
    return spec;
}

workload::TraceGenConfig
cellTraceConfig(const SweepSpec &spec, double rps, std::uint64_t traceSeed)
{
    workload::TraceGenConfig wl;
    if (spec.workload.preset == "wildchat")
        wl = workload::wildchatLike();
    else if (spec.workload.preset == "lmsys")
        wl = workload::lmsysLike();
    else
        wl = workload::splitwiseLike();
    wl.rps = rps;
    wl.durationSeconds = spec.workload.durationSeconds;
    wl.numAdapters = spec.workload.adapters;
    if (spec.workload.adapterPopularity == "uniform")
        wl.adapterPopularity = workload::Popularity::Uniform;
    else if (spec.workload.adapterPopularity == "powerlaw")
        wl.adapterPopularity = workload::Popularity::PowerLaw;
    if (spec.workload.burstMultiplier.has_value())
        wl.burstMultiplier = *spec.workload.burstMultiplier;
    if (spec.workload.burstPeriodSeconds.has_value())
        wl.burstPeriodSeconds = *spec.workload.burstPeriodSeconds;
    if (spec.workload.burstDurationSeconds.has_value())
        wl.burstDurationSeconds = *spec.workload.burstDurationSeconds;
    wl.numTenants = spec.workload.tenants;
    if (spec.workload.tenantStorm > 1.0) {
        // The noisy neighbour: tenant 0 bursts for the middle half of
        // the trace, leaving clean head/tail windows for comparison.
        wl.stormTenant = 0;
        wl.stormMultiplier = spec.workload.tenantStorm;
        wl.stormStartSeconds = 0.25 * wl.durationSeconds;
        wl.stormEndSeconds = 0.75 * wl.durationSeconds;
    }
    wl.seed = traceSeed;
    return wl;
}

std::optional<std::vector<SweepCell>>
expandSweep(const SweepSpec &spec, std::string *error)
{
    const auto &registry = core::SystemRegistry::global();

    // The system axis: explicit names first, then the grid product in
    // row-major order (later axes vary fastest).
    std::vector<std::string> systems = spec.systems;
    if (!spec.gridBase.empty()) {
        std::vector<std::string> combos{spec.gridBase};
        for (const auto &axis : spec.gridAxes) {
            std::vector<std::string> next;
            next.reserve(combos.size() * axis.size());
            for (const auto &prefix : combos) {
                for (const auto &token : axis)
                    next.push_back(prefix + "+" + token);
            }
            combos = std::move(next);
        }
        systems.insert(systems.end(), combos.begin(), combos.end());
    }

    const std::vector<double> loads =
        spec.loads.empty() ? std::vector<double>{8.0} : spec.loads;
    const std::vector<std::string> routerAxis =
        spec.routers.empty() ? std::vector<std::string>{"jsq"}
                             : spec.routers;
    const std::vector<bool> autoscaleAxis =
        spec.autoscale.empty() ? std::vector<bool>{false}
                               : spec.autoscale;
    const std::vector<bool> sloAdmissionAxis =
        spec.sloAdmission.empty() ? std::vector<bool>{false}
                                  : spec.sloAdmission;

    // The fabric axes: migration policies and peer topologies, each
    // resolved through the fabric registries up front so an unknown
    // name fails once with the valid options, not per cell.
    struct MigrationAxisValue
    {
        std::string name;
        fabric::MigrationPolicy policy = fabric::MigrationPolicy::Off;
    };
    std::vector<MigrationAxisValue> migrationAxis;
    for (const auto &name :
         spec.migrations.empty() ? std::vector<std::string>{"off"}
                                 : spec.migrations) {
        MigrationAxisValue value;
        value.name = name;
        if (!fabric::migrationPolicyByName(name, &value.policy)) {
            if (error != nullptr)
                *error = "sweep migrations: unknown policy \"" + name +
                         "\"; known: " + fabric::migrationPolicyNames();
            return std::nullopt;
        }
        migrationAxis.push_back(std::move(value));
    }
    struct TopologyAxisValue
    {
        std::string name;
        fabric::TopologyKind kind = fabric::TopologyKind::PciePeer;
    };
    std::vector<TopologyAxisValue> topologyAxis;
    for (const auto &name :
         spec.topologies.empty() ? std::vector<std::string>{"pcie"}
                                 : spec.topologies) {
        TopologyAxisValue value;
        value.name = name;
        if (!fabric::topologyByName(name, &value.kind)) {
            if (error != nullptr)
                *error = "sweep topologies: unknown topology \"" + name +
                         "\"; known: " + fabric::topologyNames();
            return std::nullopt;
        }
        topologyAxis.push_back(std::move(value));
    }

    // The deployment axis: either homogeneous replica counts or
    // heterogeneous fleet presets (mutually exclusive — a fleet
    // already fixes each cell's replica count and GPU mix).
    struct Deployment
    {
        int replicas = 1;
        std::string fleet;
        std::vector<serving::EngineConfig> engines;
    };
    std::vector<Deployment> deployAxis;
    if (!spec.fleets.empty()) {
        if (!spec.replicas.empty()) {
            if (error != nullptr)
                *error = "sweep fleets: conflicts with the \"replicas\" "
                         "axis; a fleet preset already fixes each "
                         "cell's replica count";
            return std::nullopt;
        }
        for (const auto &name : spec.fleets) {
            std::vector<model::GpuSpec> gpus;
            if (!model::tryFleetByName(name, &gpus)) {
                if (error != nullptr)
                    *error = "sweep fleets: unknown fleet preset \"" +
                             name + "\"; expected " +
                             model::fleetGrammarHelp();
                return std::nullopt;
            }
            Deployment deployment;
            deployment.replicas = static_cast<int>(gpus.size());
            deployment.fleet = name;
            deployment.engines = serving::fleetEngines(spec.engine, gpus);
            deployAxis.push_back(std::move(deployment));
        }
    } else {
        const std::vector<int> replicaAxis =
            spec.replicas.empty() ? std::vector<int>{1} : spec.replicas;
        for (const int count : replicaAxis)
            deployAxis.push_back(Deployment{count, "", {}});
    }

    std::vector<SweepCell> cells;
    // Cells at the same load (and replica count, when rps_per_replica
    // scales the trace) share one trace so systems compare on identical
    // arrivals; key -> index into the runner's trace table.
    std::vector<std::pair<double, std::uint64_t>> traceKeys;
    for (const auto &system : systems) {
        std::string lookupError;
        const auto base = registry.find(system, &lookupError);
        if (!base.has_value()) {
            if (error != nullptr)
                *error = "sweep system \"" + system +
                         "\": " + lookupError;
            return std::nullopt;
        }
        for (std::size_t li = 0; li < loads.size(); ++li) {
            for (const Deployment &deployment : deployAxis) {
                const int replicaCount = deployment.replicas;
                for (const auto &router : routerAxis) {
                  for (const bool autoscale : autoscaleAxis) {
                   for (const bool sloAdmission : sloAdmissionAxis) {
                   for (const auto &migration : migrationAxis) {
                    for (const auto &topology : topologyAxis) {
                    SweepCell cell;
                    cell.system = system;
                    cell.replicaCount = replicaCount;
                    cell.fleet = deployment.fleet;
                    cell.router = router;
                    cell.autoscale = autoscale;
                    cell.sloAdmission = sloAdmission;
                    cell.migration = migration.name;
                    cell.topology = topology.name;
                    cell.rps = spec.rpsPerReplica
                                   ? loads[li] * replicaCount
                                   : loads[li];
                    cell.traceSeed =
                        spec.seed + static_cast<std::uint64_t>(li);

                    cell.spec = *base;
                    cell.spec.engine = spec.engine;
                    cell.spec.predictor = spec.predictor;
                    cell.spec.tenancy.tenants = spec.workload.tenants;
                    cell.spec.cluster.replicas = replicaCount;
                    cell.spec.cluster.replicaEngines =
                        deployment.engines;
                    if (!routing::routerPolicyByName(
                            router, &cell.spec.cluster.router)) {
                        if (error != nullptr)
                            *error = "sweep routers: unknown policy \"" +
                                     router + "\"; known: " +
                                     routing::routerPolicyNames();
                        return std::nullopt;
                    }
                    cell.spec.cluster.routerConfig.seed = spec.seed;
                    cell.spec.cluster.routerConfig.sloAdmission =
                        sloAdmission;
                    cell.spec.cluster.autoscale = autoscale;
                    if (autoscale)
                        cell.spec.cluster.autoscaler = spec.autoscaler;
                    cell.spec.fabric = spec.fabric;
                    cell.spec.fabric.migration = migration.policy;
                    cell.spec.fabric.topology = topology.kind;

                    const auto problems = cell.spec.validate();
                    if (!problems.empty()) {
                        if (error != nullptr) {
                            std::ostringstream os;
                            os << "sweep cell \"" << system << "\" (rps "
                               << cell.rps << ", replicas "
                               << replicaCount;
                            if (!cell.fleet.empty())
                                os << ", fleet " << cell.fleet;
                            os << ", router " << router;
                            if (autoscale)
                                os << ", autoscale";
                            if (sloAdmission)
                                os << ", slo-admission";
                            if (cell.migration != "off")
                                os << ", migration " << cell.migration;
                            os << ") is invalid:";
                            for (const auto &p : problems)
                                os << "\n  - " << p;
                            *error = os.str();
                        }
                        return std::nullopt;
                    }

                    const std::pair<double, std::uint64_t> key{
                        cell.rps, cell.traceSeed};
                    std::size_t index = traceKeys.size();
                    for (std::size_t i = 0; i < traceKeys.size(); ++i) {
                        if (traceKeys[i] == key) {
                            index = i;
                            break;
                        }
                    }
                    if (index == traceKeys.size())
                        traceKeys.push_back(key);
                    cell.traceIndex = index;
                    cells.push_back(std::move(cell));
                    }
                   }
                   }
                  }
                }
            }
        }
    }
    return cells;
}

} // namespace chameleon::sweep
