#include "sweep/baseline_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace chameleon::sweep {

namespace {

/** Cell-identity columns: equal indices must describe the same cell. */
bool
isIdentityKey(const std::string &key)
{
    static const char *const kIdentity[] = {
        "system",    "rps",      "replicas",   "fleet",
        "router",    "autoscale", "migration", "topology",
        "trace_seed"};
    return std::any_of(std::begin(kIdentity), std::end(kIdentity),
                       [&](const char *k) { return key == k; });
}

/** Scalar literal for messages (strings unquoted, numbers as dumped). */
std::string
literal(const sim::JsonValue &v)
{
    return v.isString() ? v.asString() : v.dump();
}

bool
numbersDrifted(const sim::JsonValue &base, const sim::JsonValue &cur,
               double relTolerance)
{
    const double b = base.asNumber();
    const double c = cur.asNumber();
    if (b == c)
        return false;
    if (b == 0.0)
        return true; // an exact-zero baseline drifts on any change
    return std::abs(c - b) > relTolerance * std::abs(b);
}

const sim::JsonValue *
rowsOf(const sim::JsonValue &doc, const char *which,
       BaselineDiff &diff)
{
    if (!doc.isObject()) {
        diff.structural.push_back(std::string(which) +
                                  " document is not a JSON object");
        return nullptr;
    }
    const sim::JsonValue *rows = doc.find("rows");
    if (rows == nullptr || !rows->isArray()) {
        diff.structural.push_back(std::string(which) +
                                  " document has no \"rows\" array");
        return nullptr;
    }
    return rows;
}

} // namespace

BaselineDiff
diffAgainstBaseline(const sim::JsonValue &current,
                    const sim::JsonValue &baseline, double relTolerance)
{
    BaselineDiff diff;
    const sim::JsonValue *curRows = rowsOf(current, "current", diff);
    const sim::JsonValue *baseRows = rowsOf(baseline, "baseline", diff);
    if (curRows == nullptr || baseRows == nullptr)
        return diff;

    if (curRows->items().size() != baseRows->items().size()) {
        diff.structural.push_back(
            "row count: baseline has " +
            std::to_string(baseRows->items().size()) + ", current has " +
            std::to_string(curRows->items().size()) +
            " (different sweep grid — regenerate the baseline)");
        return diff;
    }

    for (std::size_t i = 0; i < curRows->items().size(); ++i) {
        const sim::JsonValue &cur = curRows->items()[i];
        const sim::JsonValue &base = baseRows->items()[i];
        if (!cur.isObject() || !base.isObject()) {
            diff.structural.push_back("row " + std::to_string(i) +
                                      " is not a JSON object");
            continue;
        }
        for (const auto &[key, baseValue] : base.members()) {
            const sim::JsonValue *curValue = cur.find(key);
            if (curValue == nullptr) {
                diff.structural.push_back(
                    "row " + std::to_string(i) + ": column \"" + key +
                    "\" only in the baseline (column set changed — "
                    "regenerate the baseline)");
                continue;
            }
            BaselineDiff::Mismatch m{i, key, literal(baseValue),
                                     literal(*curValue)};
            if (key == "event_hash") {
                if (baseValue.asString() != curValue->asString())
                    diff.hashMismatches.push_back(std::move(m));
            } else if (isIdentityKey(key)) {
                if (baseValue.dump() != curValue->dump()) {
                    diff.structural.push_back(
                        "row " + std::to_string(i) + ": identity \"" +
                        key + "\" moved (" + m.baseline + " -> " +
                        m.current + ") — rows are not aligned");
                }
            } else if (baseValue.isNumber() && curValue->isNumber()) {
                if (numbersDrifted(baseValue, *curValue, relTolerance))
                    diff.drifts.push_back(std::move(m));
            } else if (baseValue.dump() != curValue->dump()) {
                diff.drifts.push_back(std::move(m));
            }
        }
        for (const auto &[key, value] : cur.members()) {
            (void)value;
            if (base.find(key) == nullptr) {
                diff.structural.push_back(
                    "row " + std::to_string(i) + ": column \"" + key +
                    "\" only in the current document (column set "
                    "changed — regenerate the baseline)");
            }
        }
    }
    return diff;
}

} // namespace chameleon::sweep
