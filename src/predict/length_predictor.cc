#include "predict/length_predictor.h"

#include <algorithm>

#include "simkit/check.h"
#include "simkit/rng.h"

namespace chameleon::predict {

LengthPredictor::LengthPredictor(double accuracy, std::uint64_t seed)
    : accuracy_(accuracy), seed_(seed)
{
    CHM_CHECK(accuracy >= 0.0 && accuracy <= 1.0,
              "accuracy must be a probability, got " << accuracy);
}

std::int64_t
LengthPredictor::bucketMidpoint(std::int64_t tokens)
{
    CHM_CHECK(tokens >= 0, "negative token count");
    // Power-of-two buckets: [1,2), [2,4), [4,8), ... midpoint = 1.5*lo.
    std::int64_t lo = 1;
    while (lo * 2 <= tokens)
        lo *= 2;
    return lo + lo / 2;
}

std::int64_t
LengthPredictor::predict(const workload::Request &req) const
{
    // Deterministic per-request stream: the same request always gets the
    // same prediction, regardless of how many times it is consulted.
    sim::Rng rng(seed_ ^ (static_cast<std::uint64_t>(req.id) * 0x9E3779B9ull));
    if (rng.nextDouble() < accuracy_)
        return bucketMidpoint(req.outputTokens);
    // Mispredict: off by a factor of 2..8 in either direction, mimicking
    // the proxy model's confusion with neighbouring buckets.
    const int shift = 1 + static_cast<int>(rng.nextBelow(3));
    const bool over = rng.nextBelow(2) == 0;
    const std::int64_t wrong =
        over ? req.outputTokens << shift
             : std::max<std::int64_t>(1, req.outputTokens >> shift);
    return bucketMidpoint(wrong);
}

} // namespace chameleon::predict
