#include "predict/load_predictor.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::predict {

using sim::SimTime;

HistogramLoadPredictor::HistogramLoadPredictor(double windowSeconds)
    : window_(sim::fromSeconds(windowSeconds))
{
    CHM_CHECK(window_ > 0, "window must be positive");
}

void
HistogramLoadPredictor::expire(History &h, SimTime now) const
{
    auto &v = h.arrivals;
    const SimTime cutoff = now - window_;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [cutoff](SimTime t) { return t < cutoff; }),
            v.end());
}

void
HistogramLoadPredictor::recordArrival(model::AdapterId id, SimTime t)
{
    auto &h = history_[id];
    expire(h, t);
    h.arrivals.push_back(t);
    h.lastArrival = t;
}

double
HistogramLoadPredictor::hotness(model::AdapterId id, SimTime now) const
{
    auto it = history_.find(id);
    if (it == history_.end())
        return 0.0;
    expire(it->second, now);
    const auto &arrivals = it->second.arrivals;
    if (arrivals.empty())
        return 0.0;
    // Median inter-arrival gap inside the window.
    SimTime median_gap = window_;
    if (arrivals.size() >= 2) {
        std::vector<SimTime> gaps;
        gaps.reserve(arrivals.size() - 1);
        for (std::size_t i = 1; i < arrivals.size(); ++i)
            gaps.push_back(arrivals[i] - arrivals[i - 1]);
        std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                         gaps.end());
        median_gap = std::max<SimTime>(gaps[gaps.size() / 2], 1);
    }
    const SimTime since = now - arrivals.back();
    // Count in window = base hotness; decay once the silence exceeds the
    // typical gap (bursts have ended; cf. keep-alive windows in [48]).
    const double decay =
        1.0 / (1.0 + static_cast<double>(since) /
                         static_cast<double>(median_gap));
    return static_cast<double>(arrivals.size()) * decay;
}

std::vector<model::AdapterId>
HistogramLoadPredictor::hottest(SimTime now, std::size_t k) const
{
    std::vector<std::pair<double, model::AdapterId>> scored;
    scored.reserve(history_.size());
    for (const auto &[id, h] : history_) {
        const double score = hotness(id, now);
        if (score > 0.0)
            scored.emplace_back(score, id);
    }
    std::sort(scored.begin(), scored.end(), [](const auto &a, const auto &b) {
        return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    std::vector<model::AdapterId> out;
    for (std::size_t i = 0; i < scored.size() && i < k; ++i)
        out.push_back(scored[i].second);
    return out;
}

} // namespace chameleon::predict
