#include "predict/load_predictor.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::predict {

using sim::SimTime;

HistogramLoadPredictor::HistogramLoadPredictor(double windowSeconds)
    : window_(sim::fromSeconds(windowSeconds))
{
    CHM_CHECK(window_ > 0, "window must be positive");
}

void
HistogramLoadPredictor::expire(History &h, SimTime now) const
{
    auto &v = h.arrivals;
    const SimTime cutoff = now - window_;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [cutoff](SimTime t) { return t < cutoff; }),
            v.end());
}

void
HistogramLoadPredictor::recordArrival(model::AdapterId id, SimTime t)
{
    auto &h = history_[id];
    expire(h, t);
    h.arrivals.push_back(t);
    h.lastArrival = t;
}

double
HistogramLoadPredictor::hotness(model::AdapterId id, SimTime now) const
{
    auto it = history_.find(id);
    if (it == history_.end())
        return 0.0;
    expire(it->second, now);
    const auto &arrivals = it->second.arrivals;
    if (arrivals.empty())
        return 0.0;
    // Median inter-arrival gap inside the window.
    SimTime median_gap = window_;
    if (arrivals.size() >= 2) {
        std::vector<SimTime> gaps;
        gaps.reserve(arrivals.size() - 1);
        for (std::size_t i = 1; i < arrivals.size(); ++i)
            gaps.push_back(arrivals[i] - arrivals[i - 1]);
        std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                         gaps.end());
        median_gap = std::max<SimTime>(gaps[gaps.size() / 2], 1);
    }
    const SimTime since = now - arrivals.back();
    // Count in window = base hotness; decay once the silence exceeds the
    // typical gap (bursts have ended; cf. keep-alive windows in [48]).
    const double decay =
        1.0 / (1.0 + static_cast<double>(since) /
                         static_cast<double>(median_gap));
    return static_cast<double>(arrivals.size()) * decay;
}

LoadForecaster::LoadForecaster(double windowSeconds)
    : window_(sim::fromSeconds(windowSeconds))
{
    CHM_CHECK(window_ > 0, "window must be positive");
}

void
LoadForecaster::expire(SimTime now) const
{
    const SimTime cutoff = now - window_;
    while (!arrivals_.empty() && arrivals_.front() < cutoff)
        arrivals_.pop_front();
}

void
LoadForecaster::recordArrival(SimTime t)
{
    CHM_CHECK(arrivals_.empty() || t >= arrivals_.back(),
              "arrivals must be recorded in time order");
    if (firstArrival_ == sim::kTimeNever)
        firstArrival_ = t;
    expire(t);
    arrivals_.push_back(t);
}

sim::SimTime
LoadForecaster::observedSpan(SimTime now) const
{
    // Until one full window has elapsed, rates must be normalised by
    // the observed span, not the window — otherwise a fresh forecaster
    // underestimates a burst by elapsed/window exactly when the
    // proactive scale-up signal matters most.
    if (firstArrival_ == sim::kTimeNever)
        return window_;
    const SimTime elapsed = std::max<SimTime>(now - firstArrival_, sim::kSec);
    return std::min(window_, elapsed);
}

double
LoadForecaster::currentRps(SimTime now) const
{
    expire(now);
    return static_cast<double>(arrivals_.size()) /
           sim::toSeconds(observedSpan(now));
}

double
LoadForecaster::forecastRps(SimTime now, double horizonSeconds) const
{
    const double rate = currentRps(now); // expires the window

    if (arrivals_.size() < 4)
        return rate;
    // Split the observed span into halves and difference their rates
    // to get a slope in (requests/s) per second.
    const SimTime span = observedSpan(now);
    const double halfSeconds = sim::toSeconds(span) / 2.0;
    if (halfSeconds < 1.0)
        return rate;
    const SimTime mid = now - span / 2;
    std::size_t recent = 0;
    for (auto it = arrivals_.rbegin();
         it != arrivals_.rend() && *it >= mid; ++it)
        ++recent;
    const double recentRate = static_cast<double>(recent) / halfSeconds;
    const double olderRate =
        static_cast<double>(arrivals_.size() - recent) / halfSeconds;
    const double slope = (recentRate - olderRate) / halfSeconds;
    // `rate` is the span average, i.e. the instantaneous rate at the
    // span midpoint under a linear ramp — extrapolate from there, not
    // from `now`, or a building burst is underestimated by slope*span/2.
    const double fromMidpoint =
        sim::toSeconds(span) / 2.0 + horizonSeconds;
    return std::max(0.0, rate + slope * fromMidpoint);
}

std::vector<model::AdapterId>
HistogramLoadPredictor::hottest(SimTime now, std::size_t k) const
{
    std::vector<std::pair<double, model::AdapterId>> scored;
    scored.reserve(history_.size());
    for (const auto &[id, h] : history_) {
        const double score = hotness(id, now);
        if (score > 0.0)
            scored.emplace_back(score, id);
    }
    std::sort(scored.begin(), scored.end(), [](const auto &a, const auto &b) {
        return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    std::vector<model::AdapterId> out;
    for (std::size_t i = 0; i < scored.size() && i < k; ++i)
        out.push_back(scored[i].second);
    return out;
}

} // namespace chameleon::predict
