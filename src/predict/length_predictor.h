/**
 * @file
 * Output-length prediction.
 *
 * The paper uses an open-source BERT-based proxy model [46] with ~80%
 * measured accuracy, and its §5.4.1 sensitivity study replaces it with an
 * accuracy-parameterised oracle. We implement that oracle directly:
 * with probability `accuracy` the predictor returns the request's true
 * length bucket; otherwise it returns a plausible but wrong bucket.
 * Predictions are deterministic per request id so every scheduler
 * consults a consistent value.
 */

#ifndef CHAMELEON_PREDICT_LENGTH_PREDICTOR_H
#define CHAMELEON_PREDICT_LENGTH_PREDICTOR_H

#include <cstdint>

#include "predict/output_predictor.h"
#include "workload/request.h"

namespace chameleon::predict {

/** Accuracy-parameterised bucketed output-length predictor. */
class LengthPredictor : public OutputPredictor
{
  public:
    /**
     * @param accuracy probability a prediction hits the true bucket
     * @param seed stream seed (mixed with the request id per call)
     */
    explicit LengthPredictor(double accuracy = 0.8,
                             std::uint64_t seed = 0xC0FFEE);

    const char *name() const override { return "bert-proxy"; }

    /** Predicted output length in tokens for the request. */
    std::int64_t predict(const workload::Request &req) const override;

    double accuracy() const { return accuracy_; }

    /**
     * Bucket a length: buckets are powers of two, mirroring the proxy
     * model's classification head. Returns the bucket midpoint.
     */
    static std::int64_t bucketMidpoint(std::int64_t tokens);

  private:
    double accuracy_;
    std::uint64_t seed_;
};

} // namespace chameleon::predict

#endif // CHAMELEON_PREDICT_LENGTH_PREDICTOR_H
