/**
 * @file
 * Histogram-based future-load prediction for adapter prefetching.
 *
 * Implements the serverless keep-alive idea of Shahrad et al. [48] that
 * §4.2.3 borrows: per adapter, track a histogram of inter-arrival times;
 * an adapter is predicted "hot" when the elapsed time since its last use
 * is still inside the mass of its inter-arrival distribution, i.e. more
 * arrivals are likely soon. The Chameleon prefetcher asks for the top-K
 * hot adapters that are not resident and prefetches them off the
 * critical path.
 */

#ifndef CHAMELEON_PREDICT_LOAD_PREDICTOR_H
#define CHAMELEON_PREDICT_LOAD_PREDICTOR_H

#include <deque>
#include <unordered_map>
#include <vector>

#include "model/adapter.h"
#include "simkit/time.h"

namespace chameleon::predict {

/** Per-adapter inter-arrival histogram predictor. */
class HistogramLoadPredictor
{
  public:
    /**
     * @param windowSeconds history horizon; arrivals older than this no
     *        longer contribute to an adapter's hotness
     */
    explicit HistogramLoadPredictor(double windowSeconds = 120.0);

    /** Record an arrival for an adapter at time t. */
    void recordArrival(model::AdapterId id, sim::SimTime t);

    /**
     * Probability-like hotness score at time `now`: arrival count inside
     * the window, damped by the time since the last arrival relative to
     * the adapter's median inter-arrival gap.
     */
    double hotness(model::AdapterId id, sim::SimTime now) const;

    /** Adapters ranked by hotness, highest first, top `k`. */
    std::vector<model::AdapterId> hottest(sim::SimTime now,
                                          std::size_t k) const;

  private:
    struct History
    {
        std::vector<sim::SimTime> arrivals; // ring of recent arrivals
        sim::SimTime lastArrival = sim::kTimeNever;
    };

    void expire(History &h, sim::SimTime now) const;

    sim::SimTime window_;
    mutable std::unordered_map<model::AdapterId, History> history_;
};

/**
 * Aggregate arrival-rate forecaster for cluster autoscaling.
 *
 * Tracks all arrivals (regardless of adapter) in a sliding window and
 * estimates the current request rate plus a linear trend by comparing
 * the recent half of the window against the older half. The forecast
 * extrapolates that trend over a horizon, so a building burst raises
 * the predicted rate before queues have fully formed — the signal the
 * routing autoscaler combines with queue-depth watermarks.
 */
class LoadForecaster
{
  public:
    /** @param windowSeconds sliding estimation window */
    explicit LoadForecaster(double windowSeconds = 60.0);

    /** Record one request arrival at time t (non-decreasing). */
    void recordArrival(sim::SimTime t);

    /** Smoothed arrival rate over the window at `now`, requests/s. */
    double currentRps(sim::SimTime now) const;

    /**
     * Rate extrapolated `horizonSeconds` ahead using the window trend.
     * Never negative; equals currentRps when the trend is flat or the
     * window holds too few arrivals to estimate a slope.
     */
    double forecastRps(sim::SimTime now, double horizonSeconds) const;

    /** Arrivals currently inside the window. */
    std::size_t windowCount() const { return arrivals_.size(); }

  private:
    void expire(sim::SimTime now) const;
    /** min(window, time since first arrival): rate normalisation. */
    sim::SimTime observedSpan(sim::SimTime now) const;

    sim::SimTime window_;
    sim::SimTime firstArrival_ = sim::kTimeNever;
    mutable std::deque<sim::SimTime> arrivals_;
};

} // namespace chameleon::predict

#endif // CHAMELEON_PREDICT_LOAD_PREDICTOR_H
