#include "predict/history_predictor.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"

namespace chameleon::predict {

HistoryLengthPredictor::HistoryLengthPredictor(double alpha,
                                               std::int64_t coldDefault)
    : alpha_(alpha), coldDefault_(coldDefault)
{
    CHM_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    CHM_CHECK(coldDefault > 0, "cold default must be positive");
}

std::int64_t
HistoryLengthPredictor::predict(const workload::Request &req) const
{
    auto it = perAdapter_.find(req.adapter);
    if (it != perAdapter_.end())
        return std::max<std::int64_t>(1, std::llround(it->second));
    if (haveGlobal_)
        return std::max<std::int64_t>(1, std::llround(globalEwma_));
    return coldDefault_;
}

void
HistoryLengthPredictor::observe(const workload::Request &req)
{
    const auto actual = static_cast<double>(req.outputTokens);
    if (!haveGlobal_) {
        globalEwma_ = actual;
        haveGlobal_ = true;
    } else {
        globalEwma_ = (1.0 - alpha_) * globalEwma_ + alpha_ * actual;
    }
    auto [it, inserted] = perAdapter_.try_emplace(req.adapter, actual);
    if (!inserted)
        it->second = (1.0 - alpha_) * it->second + alpha_ * actual;
    ++observations_;
}

} // namespace chameleon::predict
