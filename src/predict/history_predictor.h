/**
 * @file
 * History-based output-length prediction.
 *
 * A practical alternative to the BERT proxy model: per-adapter
 * exponentially-weighted moving averages of observed output lengths
 * (requests to the same fine-tuned task tend to have similar response
 * lengths), with a global fallback for cold adapters. Purely online:
 * no offline model, no inference cost.
 */

#ifndef CHAMELEON_PREDICT_HISTORY_PREDICTOR_H
#define CHAMELEON_PREDICT_HISTORY_PREDICTOR_H

#include <unordered_map>

#include "predict/output_predictor.h"

namespace chameleon::predict {

/** Per-adapter EWMA predictor with global fallback. */
class HistoryLengthPredictor : public OutputPredictor
{
  public:
    /**
     * @param alpha EWMA weight of the newest observation
     * @param coldDefault prediction before any observation exists
     */
    explicit HistoryLengthPredictor(double alpha = 0.2,
                                    std::int64_t coldDefault = 64);

    const char *name() const override { return "history-ewma"; }

    std::int64_t predict(const workload::Request &req) const override;
    void observe(const workload::Request &req) override;

    /** Observations recorded so far. */
    std::int64_t observations() const { return observations_; }

  private:
    double alpha_;
    std::int64_t coldDefault_;
    double globalEwma_ = 0.0;
    bool haveGlobal_ = false;
    std::unordered_map<model::AdapterId, double> perAdapter_;
    std::int64_t observations_ = 0;
};

} // namespace chameleon::predict

#endif // CHAMELEON_PREDICT_HISTORY_PREDICTOR_H
