/**
 * @file
 * Output-length predictor interface.
 *
 * The scheduler consults predict() when a request arrives; the engine
 * calls observe() when a request completes, letting history-based
 * predictors learn online. The BERT-proxy-style accuracy-knob
 * predictor (length_predictor.h) ignores observations.
 */

#ifndef CHAMELEON_PREDICT_OUTPUT_PREDICTOR_H
#define CHAMELEON_PREDICT_OUTPUT_PREDICTOR_H

#include <cstdint>

#include "workload/request.h"

namespace chameleon::predict {

/** Interface for output-length prediction. */
class OutputPredictor
{
  public:
    virtual ~OutputPredictor() = default;

    /** Predictor name for reports. */
    virtual const char *name() const = 0;

    /** Predicted output length in tokens for an arriving request. */
    virtual std::int64_t predict(const workload::Request &req) const = 0;

    /** Completion feedback (actual output length now known). */
    virtual void observe(const workload::Request &req) { (void)req; }
};

} // namespace chameleon::predict

#endif // CHAMELEON_PREDICT_OUTPUT_PREDICTOR_H
