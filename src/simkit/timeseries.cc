#include "simkit/timeseries.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::sim {

std::vector<TimePoint>
TimeSeries::downsample(std::size_t n) const
{
    CHM_CHECK(n > 0, "downsample target must be positive");
    if (points_.size() <= n)
        return points_;
    std::vector<TimePoint> out;
    out.reserve(n);
    const double stride =
        static_cast<double>(points_.size()) / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(
            static_cast<double>(i) * stride);
        out.push_back(points_[std::min(idx, points_.size() - 1)]);
    }
    return out;
}

WindowedPercentiles::WindowedPercentiles(SimTime window) : window_(window)
{
    CHM_CHECK(window > 0, "window must be positive");
}

void
WindowedPercentiles::record(SimTime t, double value)
{
    windows_[t / window_].add(value);
}

std::vector<TimePoint>
WindowedPercentiles::series(double percentile) const
{
    std::vector<TimePoint> out;
    out.reserve(windows_.size());
    for (const auto &[idx, tracker] : windows_)
        out.push_back({idx * window_, tracker.percentile(percentile)});
    return out;
}

WindowedSum::WindowedSum(SimTime window) : window_(window)
{
    CHM_CHECK(window > 0, "window must be positive");
}

void
WindowedSum::record(SimTime t, double value)
{
    const std::int64_t idx = t / window_;
    if (windows_.empty() || windows_.back().first != idx) {
        CHM_CHECK(windows_.empty() || idx > windows_.back().first,
                  "samples must arrive in time order");
        windows_.emplace_back(idx, 0.0);
    }
    windows_.back().second += value;
}

std::vector<TimePoint>
WindowedSum::ratePerSecond() const
{
    std::vector<TimePoint> out;
    out.reserve(windows_.size());
    const double secs = toSeconds(window_);
    for (const auto &[idx, sum] : windows_)
        out.push_back({idx * window_, sum / secs});
    return out;
}

double
WindowedSum::meanRate() const
{
    if (windows_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &[idx, sum] : windows_)
        total += sum;
    return total / (toSeconds(window_) * static_cast<double>(windows_.size()));
}

double
WindowedSum::maxRate() const
{
    double best = 0.0;
    for (const auto &[idx, sum] : windows_)
        best = std::max(best, sum / toSeconds(window_));
    return best;
}

} // namespace chameleon::sim
