/**
 * @file
 * Assertion and fatal-error helpers.
 *
 * CHM_CHECK fires on internal invariant violations (simulator bugs) and
 * aborts; CHM_FATAL reports unrecoverable user/configuration errors.
 * Both print file:line and a formatted message. Modeled on the
 * panic()/fatal() split used by gem5.
 */

#ifndef CHAMELEON_SIMKIT_CHECK_H
#define CHAMELEON_SIMKIT_CHECK_H

#include <sstream>
#include <string>

namespace chameleon::sim {

/** Abort with an internal-error message; never returns. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit with a user-error message; never returns. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

} // namespace chameleon::sim

/** Internal invariant check: aborts with a message when cond is false. */
#define CHM_CHECK(cond, msg)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream chm_oss_;                                      \
            chm_oss_ << "check failed: " #cond " — " << msg;                  \
            ::chameleon::sim::panicImpl(__FILE__, __LINE__, chm_oss_.str());  \
        }                                                                     \
    } while (0)

/** Unconditional internal error. */
#define CHM_PANIC(msg)                                                        \
    do {                                                                      \
        std::ostringstream chm_oss_;                                          \
        chm_oss_ << msg;                                                      \
        ::chameleon::sim::panicImpl(__FILE__, __LINE__, chm_oss_.str());      \
    } while (0)

/** Unrecoverable configuration/user error. */
#define CHM_FATAL(msg)                                                        \
    do {                                                                      \
        std::ostringstream chm_oss_;                                          \
        chm_oss_ << msg;                                                      \
        ::chameleon::sim::fatalImpl(__FILE__, __LINE__, chm_oss_.str());      \
    } while (0)

#endif // CHAMELEON_SIMKIT_CHECK_H
