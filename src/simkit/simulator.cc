#include "simkit/simulator.h"

#include <utility>

#include "simkit/check.h"

namespace chameleon::sim {

EventId
Simulator::scheduleAt(SimTime t, std::function<void()> fn)
{
    CHM_CHECK(t >= now_, "cannot schedule in the past: t=" << t
                         << " now=" << now_);
    EventId id;
    if (!freeSlots_.empty()) {
        id = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        id = slots_.size();
        slots_.emplace_back();
    }
    slots_[id].fn = std::move(fn);
    slots_[id].live = true;
    ++pendingLive_;
    queue_.push(Scheduled{t, nextSeq_++, id});
    return id;
}

EventId
Simulator::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    CHM_CHECK(delay >= 0, "negative delay " << delay);
    return scheduleAt(now_ + delay, std::move(fn));
}

bool
Simulator::cancel(EventId id)
{
    if (id >= slots_.size() || !slots_[id].live)
        return false;
    slots_[id].live = false;
    slots_[id].fn = nullptr;
    --pendingLive_;
    // The queue entry stays and is skipped at dispatch time.
    return true;
}

void
Simulator::dispatchNext()
{
    const Scheduled top = queue_.top();
    queue_.pop();
    if (top.id >= slots_.size() || !slots_[top.id].live) {
        // Cancelled entry; slot already recycled or dead.
        if (top.id < slots_.size() && !slots_[top.id].live &&
            !slots_[top.id].fn) {
            freeSlots_.push_back(top.id);
            slots_[top.id].fn = [] {}; // poison against double-free
        }
        return;
    }
    CHM_CHECK(top.time >= now_, "event queue time went backwards");
    now_ = top.time;
    auto fn = std::move(slots_[top.id].fn);
    slots_[top.id].live = false;
    slots_[top.id].fn = nullptr;
    --pendingLive_;
    freeSlots_.push_back(top.id);
    ++dispatched_;
    fn();
}

void
Simulator::run()
{
    while (!queue_.empty())
        dispatchNext();
}

void
Simulator::runUntil(SimTime deadline)
{
    while (!queue_.empty() && queue_.top().time <= deadline)
        dispatchNext();
    if (now_ < deadline)
        now_ = deadline;
}

} // namespace chameleon::sim
