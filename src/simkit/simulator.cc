#include "simkit/simulator.h"

#include <utility>

#include "simkit/check.h"

namespace chameleon::sim {

EventId
Simulator::scheduleImpl(SimTime t, EventFn &&fn)
{
    CHM_CHECK(t >= now_, "cannot schedule in the past: t=" << t << " ("
                         << toSeconds(t) << " s) now=" << now_ << " ("
                         << toSeconds(now_) << " s)");
    EventId id;
    if (lastFreed_ != kNoSlot) {
        id = lastFreed_;
        lastFreed_ = kNoSlot;
    } else if (!freeSlots_.empty()) {
        id = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        if ((slotCount_ & (kSlotBlock - 1)) == 0) {
            slotBlocks_.push_back(std::make_unique<SlotBlock>());
            blockPtrs_.push_back(slotBlocks_.back()->data());
            blockTable_ = blockPtrs_.data();
        }
        id = slotCount_++;
    }
    Slot &s = slot(id);
    s.fn = std::move(fn);
    s.state = SlotState::Live;
    ++pendingLive_;
    queue_.push(EventKey{t, nextSeq_++, id});
    return id;
}

EventId
Simulator::scheduleAfter(SimTime delay, EventFn fn)
{
    CHM_CHECK(delay >= 0, "negative delay " << delay);
    return scheduleImpl(now_ + delay, std::move(fn));
}

bool
Simulator::cancel(EventId id)
{
    if (id >= slotCount_ || slot(id).state != SlotState::Live)
        return false;
    Slot &s = slot(id);
    s.state = SlotState::Cancelled;
    s.fn = nullptr;
    --pendingLive_;
    // The queue entry stays and is skipped at dispatch time.
    return true;
}

void
Simulator::dispatchNext()
{
    const EventKey top = queue_.popFront();
    Slot &s = slot(top.id);
    if (s.state != SlotState::Live) {
        // Cancelled entry: the skip is where the id gets recycled.
        if (s.state == SlotState::Cancelled) {
            s.state = SlotState::Free;
            freeSlots_.push_back(top.id);
        }
        return;
    }
    CHM_CHECK(top.time >= now_, "event queue time went backwards");
    now_ = top.time;
    // Slots have stable addresses, so the closure runs in place — no
    // move-out copy. Freeing the state first makes a self-cancel a
    // no-op, and the id joins freeSlots_ only after the call returns,
    // so an event scheduled from inside the closure can never reuse
    // (and overwrite) the slot of the closure that is running.
    s.state = SlotState::Free;
    --pendingLive_;
    ++dispatched_;
    s.fn();
    s.fn = nullptr;
    // Park the id for the schedule call the closure most likely just
    // made a sibling of; only a second consecutive dispatch without a
    // schedule in between spills to the freeSlots_ vector.
    if (lastFreed_ != kNoSlot)
        freeSlots_.push_back(lastFreed_);
    lastFreed_ = top.id;
}

void
Simulator::run()
{
    while (!queue_.empty())
        dispatchNext();
}

void
Simulator::runUntil(SimTime deadline)
{
    while (!queue_.empty() && queue_.top().time <= deadline)
        dispatchNext();
    if (now_ < deadline)
        now_ = deadline;
}

} // namespace chameleon::sim
