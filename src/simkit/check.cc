#include "simkit/check.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace chameleon::sim {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

} // namespace chameleon::sim
