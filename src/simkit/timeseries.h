/**
 * @file
 * Windowed time-series recorders.
 *
 * Used for figure reproductions that plot a metric over elapsed time
 * (memory usage, windowed P99 TTFT, PCIe bandwidth per window).
 */

#ifndef CHAMELEON_SIMKIT_TIMESERIES_H
#define CHAMELEON_SIMKIT_TIMESERIES_H

#include <map>
#include <vector>

#include "simkit/stats.h"
#include "simkit/time.h"

namespace chameleon::sim {

/** A (time, value) sample pair. */
struct TimePoint
{
    SimTime time;
    double value;
};

/** Plain time-series of point samples (e.g., instantaneous memory usage). */
class TimeSeries
{
  public:
    void record(SimTime t, double value) { points_.push_back({t, value}); }

    const std::vector<TimePoint> &points() const { return points_; }
    bool empty() const { return points_.empty(); }

    /** Downsample to at most n points by striding (for table output). */
    std::vector<TimePoint> downsample(std::size_t n) const;

  private:
    std::vector<TimePoint> points_;
};

/**
 * Tumbling-window percentile series.
 *
 * Samples falling in the same fixed window are aggregated; a window's
 * percentile can be queried after the series is finalised. Used to plot
 * e.g. P99 TTFT over elapsed time (paper Figs. 15 and 19).
 */
class WindowedPercentiles
{
  public:
    explicit WindowedPercentiles(SimTime window);

    /** Record a sample stamped at time t (any order). */
    void record(SimTime t, double value);

    /** One output row per non-empty window: (window start, percentile). */
    std::vector<TimePoint> series(double percentile) const;

    SimTime window() const { return window_; }

  private:
    SimTime window_;
    std::map<std::int64_t, PercentileTracker> windows_;
};

/**
 * Tumbling-window accumulator (sum per window).
 *
 * Used for rate metrics such as PCIe bytes transferred per second.
 */
class WindowedSum
{
  public:
    explicit WindowedSum(SimTime window);

    void record(SimTime t, double value);

    /** One row per window: (window start, sum / window length in seconds). */
    std::vector<TimePoint> ratePerSecond() const;

    /** Mean of per-window rates; 0 when empty. */
    double meanRate() const;

    /** Max of per-window rates; 0 when empty. */
    double maxRate() const;

  private:
    SimTime window_;
    std::vector<std::pair<std::int64_t, double>> windows_;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_TIMESERIES_H
