#include "simkit/log.h"

#include <cstdio>

namespace chameleon::sim {

namespace {
LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Info: return "INFO";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

bool
logLevelByName(const std::string &name, LogLevel *out)
{
    if (name == "error")
        *out = LogLevel::Error;
    else if (name == "warn")
        *out = LogLevel::Warn;
    else if (name == "info")
        *out = LogLevel::Info;
    else if (name == "debug")
        *out = LogLevel::Debug;
    else if (name == "trace")
        *out = LogLevel::Trace;
    else
        return false;
    return true;
}

const char *
logLevelNames()
{
    return "error, warn, info, debug, trace";
}

} // namespace chameleon::sim
