/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The Simulator owns the virtual clock and a priority queue of scheduled
 * callbacks. Events at the same timestamp fire in scheduling order
 * (stable FIFO tie-break via a sequence number) so runs are deterministic.
 */

#ifndef CHAMELEON_SIMKIT_SIMULATOR_H
#define CHAMELEON_SIMKIT_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simkit/time.h"

namespace chameleon::sim {

/** Handle for cancelling a scheduled event. */
using EventId = std::uint64_t;

/**
 * Event-driven simulation engine.
 *
 * Components schedule closures at absolute or relative virtual times and
 * the kernel dispatches them in timestamp order. There is no threading:
 * everything runs on the caller's thread inside run().
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule a callback at absolute time t (must be >= now). */
    EventId scheduleAt(SimTime t, std::function<void()> fn);

    /** Schedule a callback delay microseconds from now. */
    EventId scheduleAfter(SimTime delay, std::function<void()> fn);

    /** Cancel a pending event; returns false if already fired/cancelled. */
    bool cancel(EventId id);

    /** Dispatch events until the queue empties. */
    void run();

    /**
     * Dispatch events with timestamps <= deadline; the clock ends at
     * max(now, deadline) even if the queue empties earlier.
     */
    void runUntil(SimTime deadline);

    /** Number of events dispatched so far. */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Pending (non-cancelled) event count. */
    std::size_t pendingEvents() const { return pendingLive_; }

  private:
    struct Scheduled
    {
        SimTime time;
        std::uint64_t seq;
        EventId id;

        bool
        operator>(const Scheduled &o) const
        {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    void dispatchNext();

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t pendingLive_ = 0;
    std::priority_queue<Scheduled, std::vector<Scheduled>,
                        std::greater<Scheduled>> queue_;
    // Callback slots keyed by EventId; live=false marks cancellation.
    struct Slot
    {
        std::function<void()> fn;
        bool live = false;
    };
    std::vector<Slot> slots_;
    std::vector<EventId> freeSlots_;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_SIMULATOR_H
