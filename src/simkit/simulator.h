/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The Simulator owns the virtual clock and a calendar queue
 * (event_queue.h) of scheduled callbacks. Events at the same timestamp
 * fire in scheduling order (stable FIFO tie-break via a sequence
 * number) so runs are deterministic. Callbacks are stored as
 * sim::EventFn — a small-buffer move-only callable — in block-allocated
 * slots with stable addresses, so scheduling the hot-path closures
 * never touches the heap and never relocates pending events.
 */

#ifndef CHAMELEON_SIMKIT_SIMULATOR_H
#define CHAMELEON_SIMKIT_SIMULATOR_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "simkit/event_fn.h"
#include "simkit/event_queue.h"
#include "simkit/time.h"

namespace chameleon::sim {

/** Handle for cancelling a scheduled event. */
using EventId = std::uint64_t;

/**
 * Event-driven simulation engine.
 *
 * Components schedule closures at absolute or relative virtual times and
 * the kernel dispatches them in timestamp order. There is no threading:
 * everything runs on the caller's thread inside run().
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Schedule a callback at absolute time t (must be >= now). */
    EventId
    scheduleAt(SimTime t, EventFn fn)
    {
        return scheduleImpl(t, std::move(fn));
    }

    /** Schedule a callback delay microseconds from now. */
    EventId scheduleAfter(SimTime delay, EventFn fn);

    /** Cancel a pending event; returns false if already fired/cancelled. */
    bool cancel(EventId id);

    /** Dispatch events until the queue empties. */
    void run();

    /**
     * Dispatch events with timestamps <= deadline; the clock ends at
     * max(now, deadline) even if the queue empties earlier.
     */
    void runUntil(SimTime deadline);

    /** Number of events dispatched so far. */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Pending (non-cancelled) event count. */
    std::size_t pendingEvents() const { return pendingLive_; }

  private:
    void dispatchNext();

    EventId scheduleImpl(SimTime t, EventFn &&fn);

    /**
     * A slot cycles Free -> Live (scheduled) -> Free (dispatched), or
     * Live -> Cancelled -> Free: a cancelled event's queue entry stays
     * behind and is skipped at dispatch time, and only that skip may
     * recycle the id — recycling at cancel would let a new event alias
     * the stale queue entry.
     */
    enum class SlotState : std::uint8_t { Free, Live, Cancelled };

    struct Slot
    {
        EventFn fn;
        SlotState state = SlotState::Free;
    };

    // Slots live in fixed blocks so growing never relocates pending
    // EventFns (a vector realloc would move every live closure).
    static constexpr int kSlotBlockBits = 12;
    static constexpr std::size_t kSlotBlock = std::size_t{1}
                                              << kSlotBlockBits;
    using SlotBlock = std::array<Slot, kSlotBlock>;

    /** Sentinel for lastFreed_: no id parked. */
    static constexpr EventId kNoSlot = ~EventId{0};

    Slot &
    slot(EventId id)
    {
        return blockTable_[id >> kSlotBlockBits]
                          [id & (kSlotBlock - 1)];
    }

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t pendingLive_ = 0;
    CalendarQueue queue_;
    std::vector<std::unique_ptr<SlotBlock>> slotBlocks_;
    /** Raw mirror of slotBlocks_, with blockTable_ caching its
     * data() (refreshed whenever a block is added), so slot() is
     * two loads with no smart-pointer or bounds-check hops. */
    std::vector<Slot *> blockPtrs_;
    Slot **blockTable_ = nullptr;
    std::size_t slotCount_ = 0;
    std::vector<EventId> freeSlots_;
    /** The id freed by the latest dispatch, parked in a register
     * slot: the dispatch -> schedule ping-pong of event chains
     * recycles it without touching the freeSlots_ vector. */
    EventId lastFreed_ = kNoSlot;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_SIMULATOR_H
