/**
 * @file
 * Deterministic random number generation.
 *
 * All simulator randomness flows from seeded xoshiro256** streams so runs
 * are bit-for-bit reproducible across platforms (std:: distributions are
 * not portable across standard libraries, so we implement our own in
 * distributions.h on top of this engine).
 */

#ifndef CHAMELEON_SIMKIT_RNG_H
#define CHAMELEON_SIMKIT_RNG_H

#include <cstdint>

namespace chameleon::sim {

/**
 * One-shot SplitMix64 mix: advance x by the golden-gamma increment and
 * finalise. The shared stateless mixer behind Rng seeding, hash rings,
 * and seeded sampling — keep every user on this single copy.
 */
std::uint64_t mix64(std::uint64_t x);

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Satisfies the C++ UniformRandomBitGenerator concept. Seeding runs the
 * seed through SplitMix64 so that small consecutive seeds yield
 * uncorrelated streams.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t nextBelow(std::uint64_t n);

    /**
     * Derive an independent child stream.
     *
     * Each call yields a differently-seeded generator; used to give every
     * simulator component its own stream so adding a consumer does not
     * perturb the draws seen by others.
     */
    Rng split();

  private:
    std::uint64_t state_[4];
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_RNG_H
