/**
 * @file
 * Simulation time representation.
 *
 * All simulation timestamps and durations are integral microseconds
 * (SimTime). Integral time keeps event ordering exact and makes runs
 * bit-for-bit reproducible; helpers convert to/from floating-point
 * seconds and milliseconds at the API boundary.
 */

#ifndef CHAMELEON_SIMKIT_TIME_H
#define CHAMELEON_SIMKIT_TIME_H

#include <cstdint>

namespace chameleon::sim {

/** Simulation time in microseconds since simulation start. */
using SimTime = std::int64_t;

/** Sentinel for "no time" / unset timestamps. */
constexpr SimTime kTimeNever = -1;

/** One microsecond. */
constexpr SimTime kUsec = 1;
/** One millisecond in SimTime units. */
constexpr SimTime kMsec = 1000;
/** One second in SimTime units. */
constexpr SimTime kSec = 1000 * 1000;

/** Convert floating-point seconds to SimTime (rounds to nearest usec). */
constexpr SimTime
fromSeconds(double s)
{
    return static_cast<SimTime>(s * static_cast<double>(kSec) + 0.5);
}

/** Convert floating-point milliseconds to SimTime. */
constexpr SimTime
fromMillis(double ms)
{
    return static_cast<SimTime>(ms * static_cast<double>(kMsec) + 0.5);
}

/** Convert SimTime to floating-point seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert SimTime to floating-point milliseconds. */
constexpr double
toMillis(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_TIME_H
