/**
 * @file
 * Move-only callable for the simulator's schedule path.
 *
 * std::function heap-allocates for any capture beyond ~two words, and
 * the kernel's hot closures are bigger than that (the engine's
 * finishIteration event captures this + a duration + two vectors —
 * 64 bytes). EventFn keeps a 64-byte inline buffer so every closure on
 * the simulation hot path is stored in place; larger captures fall
 * back to the heap. Move-only (closures may own resources); invoking
 * an empty EventFn is undefined.
 */

#ifndef CHAMELEON_SIMKIT_EVENT_FN_H
#define CHAMELEON_SIMKIT_EVENT_FN_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace chameleon::sim {

class EventFn
{
  public:
    /** Inline capture budget; sized for the engine's largest closure. */
    static constexpr std::size_t kInlineBytes = 64;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT: implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_.buf))
                Fn(std::forward<F>(f));
            ops_ = &InlineModel<Fn>::ops;
        } else {
            storage_.ptr = new Fn(std::forward<F>(f));
            ops_ = &HeapModel<Fn>::ops;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(*this); }

    /** Whether this closure fit the inline buffer (tests/benches). */
    bool inlined() const { return ops_ != nullptr && ops_->inlined; }

  private:
    struct Ops
    {
        void (*invoke)(EventFn &);
        /** Move the callable into dst's raw storage, destroy src's. */
        void (*relocate)(EventFn &dst, EventFn &src);
        void (*destroy)(EventFn &);
        bool inlined;
        /** Relocation is a raw storage copy: trivially copyable
         * inline callables, and heap callables (pointer move). */
        bool trivialRelocate;
        /** Destruction is a no-op (trivially destructible inline
         * callables), so reset() can skip the indirect call. */
        bool trivialDestroy;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    struct InlineModel
    {
        static Fn *
        get(EventFn &e)
        {
            return std::launder(reinterpret_cast<Fn *>(e.storage_.buf));
        }
        static void invoke(EventFn &e) { (*get(e))(); }
        static void
        relocate(EventFn &dst, EventFn &src)
        {
            ::new (static_cast<void *>(dst.storage_.buf))
                Fn(std::move(*get(src)));
            get(src)->~Fn();
        }
        static void destroy(EventFn &e) { get(e)->~Fn(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, true,
                                 std::is_trivially_copyable_v<Fn>,
                                 std::is_trivially_destructible_v<Fn>};
    };

    template <typename Fn>
    struct HeapModel
    {
        static Fn *get(EventFn &e) { return static_cast<Fn *>(e.storage_.ptr); }
        static void invoke(EventFn &e) { (*get(e))(); }
        static void
        relocate(EventFn &dst, EventFn &src)
        {
            dst.storage_.ptr = src.storage_.ptr;
        }
        static void destroy(EventFn &e) { delete get(e); }
        static constexpr Ops ops{&invoke, &relocate, &destroy, false,
                                 true, false};
    };

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            if (!ops_->trivialDestroy)
                ops_->destroy(*this);
            ops_ = nullptr;
        }
    }

    void
    moveFrom(EventFn &other) noexcept
    {
        if (other.ops_ != nullptr) {
            // Most hot-path closures (pointers + integers) relocate
            // as a raw 64-byte copy, skipping the indirect call.
            if (other.ops_->trivialRelocate)
                storage_ = other.storage_;
            else
                other.ops_->relocate(*this, other);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    union Storage
    {
        alignas(std::max_align_t) unsigned char buf[kInlineBytes];
        void *ptr;
    };

    const Ops *ops_ = nullptr;
    Storage storage_;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_EVENT_FN_H
