#include "simkit/event_queue.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::sim {

CalendarQueue::CalendarQueue() : buckets_(kBucketCount) {}

void
CalendarQueue::pushNear(const EventKey &key, std::uint64_t bucket)
{
    auto &slot = buckets_[bucket & kBucketMask];
    if (bucket == curBucket_ && curSorted_) {
        // The cursor bucket is kept sorted latest-first so pops are
        // plain pop_backs; a late insert finds its place with one
        // binary search (buckets hold a handful of events).
        slot.insert(std::upper_bound(slot.begin(), slot.end(), key,
                                     EventAfter{}),
                    key);
    } else {
        slot.push_back(key);
    }
    ++nearCount_;
}

void
CalendarQueue::push(const EventKey &key)
{
    // The kernel never schedules into the past, so bucketOf(key.time)
    // >= the bucket that produced `now`. The cursor, however, may
    // already have advanced past empty buckets inside settle(); such a
    // key still belongs "now or later" and joins the cursor bucket,
    // where (time, seq) ordering places it correctly.
    std::uint64_t bucket = bucketOf(key.time);
    if (bucket < curBucket_)
        bucket = curBucket_;
    if (bucket < curBucket_ + kBucketCount) {
        pushNear(key, bucket);
    } else {
        if (farSorted_.empty() ||
            !EventAfter{}(farSorted_.back(), key)) {
            farSorted_.push_back(key);
        } else {
            farHeap_.push_back(key);
            std::push_heap(farHeap_.begin(), farHeap_.end(),
                           EventAfter{});
        }
        if (bucket < nextFarBucket_)
            nextFarBucket_ = bucket;
    }
    ++size_;
}

void
CalendarQueue::refreshNextFar()
{
    nextFarBucket_ = ~std::uint64_t{0};
    if (!farSorted_.empty())
        nextFarBucket_ = bucketOf(farSorted_.front().time);
    if (!farHeap_.empty()) {
        const std::uint64_t b = bucketOf(farHeap_.front().time);
        if (b < nextFarBucket_)
            nextFarBucket_ = b;
    }
}

void
CalendarQueue::migrateFar()
{
    const std::uint64_t windowEnd = curBucket_ + kBucketCount;
    while (!farSorted_.empty() &&
           bucketOf(farSorted_.front().time) < windowEnd) {
        const EventKey key = farSorted_.front();
        farSorted_.pop_front();
        pushNear(key, bucketOf(key.time));
    }
    while (!farHeap_.empty() &&
           bucketOf(farHeap_.front().time) < windowEnd) {
        const EventKey key = farHeap_.front();
        std::pop_heap(farHeap_.begin(), farHeap_.end(), EventAfter{});
        farHeap_.pop_back();
        pushNear(key, bucketOf(key.time));
    }
    refreshNextFar();
}

void
CalendarQueue::settle()
{
    CHM_CHECK(size_ > 0, "top/pop on an empty event queue");
    while (true) {
        if (nextFarBucket_ < curBucket_ + kBucketCount)
            migrateFar();
        auto &slot = buckets_[curBucket_ & kBucketMask];
        if (!slot.empty()) {
            if (!curSorted_) {
                // Latest-first, so the next event to fire sits at the
                // back: top() is a back() read and pop() a pop_back.
                // (time, seq) is a strict total order, so this sort
                // yields the same dispatch stream a heap would.
                std::sort(slot.begin(), slot.end(), EventAfter{});
                curSorted_ = true;
            }
            return;
        }
        curSorted_ = false;
        if (nearCount_ > 0) {
            ++curBucket_;
            continue;
        }
        // The ring is empty; jump the cursor to the earliest far
        // event's bucket and let migration refill the window.
        CHM_CHECK(nextFarBucket_ != ~std::uint64_t{0},
                  "event queue lost track of its size");
        curBucket_ = nextFarBucket_;
    }
}

const EventKey &
CalendarQueue::top()
{
    settle();
    return buckets_[curBucket_ & kBucketMask].back();
}

void
CalendarQueue::pop()
{
    settle();
    buckets_[curBucket_ & kBucketMask].pop_back();
    --nearCount_;
    --size_;
}

EventKey
CalendarQueue::popFront()
{
    settle();
    auto &slot = buckets_[curBucket_ & kBucketMask];
    const EventKey key = slot.back();
    slot.pop_back();
    --nearCount_;
    --size_;
    return key;
}

} // namespace chameleon::sim
