#include "simkit/distributions.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"

namespace chameleon::sim {

double
sampleExponential(Rng &rng, double rate)
{
    CHM_CHECK(rate > 0, "exponential rate must be positive, got " << rate);
    double u;
    do {
        u = rng.nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
sampleNormal(Rng &rng)
{
    // Box–Muller; we deliberately discard the second variate to keep the
    // sampler stateless (reproducibility across call sites matters more
    // than a factor of two in speed here).
    double u1;
    do {
        u1 = rng.nextDouble();
    } while (u1 <= 0.0);
    const double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

double
sampleLognormal(Rng &rng, double mu, double sigma)
{
    CHM_CHECK(sigma >= 0, "lognormal sigma must be non-negative");
    return std::exp(mu + sigma * sampleNormal(rng));
}

double
sampleBoundedPareto(Rng &rng, double alpha, double lo, double hi)
{
    CHM_CHECK(alpha > 0 && lo > 0 && hi > lo,
              "bounded Pareto requires alpha>0, 0<lo<hi");
    const double u = rng.nextDouble();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

PowerLawSampler::PowerLawSampler(std::size_t n, double alpha)
{
    CHM_CHECK(n > 0, "power-law sampler needs at least one element");
    pmf_.resize(n);
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        pmf_[k] = 1.0 / std::pow(static_cast<double>(k + 1), alpha);
        total += pmf_[k];
    }
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        pmf_[k] /= total;
        acc += pmf_[k];
        cdf_[k] = acc;
    }
    cdf_.back() = 1.0;
}

std::size_t
PowerLawSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
PowerLawSampler::probability(std::size_t k) const
{
    CHM_CHECK(k < pmf_.size(), "index out of range");
    return pmf_[k];
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights)
{
    CHM_CHECK(!weights.empty(), "discrete sampler needs weights");
    double total = 0.0;
    for (double w : weights) {
        CHM_CHECK(w >= 0, "weights must be non-negative");
        total += w;
    }
    CHM_CHECK(total > 0, "weights must not all be zero");
    cdf_.resize(weights.size());
    double acc = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k) {
        acc += weights[k] / total;
        cdf_[k] = acc;
    }
    cdf_.back() = 1.0;
}

std::size_t
DiscreteSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace chameleon::sim
