/**
 * @file
 * Minimal JSON document model: parse, inspect, print.
 *
 * Backs spec serialisation (core::specToJson/specFromJson) and the
 * sweep-spec loader. Deliberately tiny — objects preserve insertion
 * order (so dumps are stable and diffable), numbers remember whether
 * they were written as integers (so 64-bit seeds round-trip exactly),
 * and parse errors carry line/column. Not a general-purpose library.
 */

#ifndef CHAMELEON_SIMKIT_JSON_H
#define CHAMELEON_SIMKIT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace chameleon::sim {

/** One JSON value; objects keep their members in insertion order. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default; // null

    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double value);
    static JsonValue makeInt(std::int64_t value);
    /** Full uint64 range (values above int64 max print unsigned). */
    static JsonValue makeUint64(std::uint64_t value);
    static JsonValue makeString(std::string value);
    static JsonValue makeArray();
    static JsonValue makeObject();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; only valid for the matching kind. */
    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    /** The integral value; exact when the literal had no '.'/exponent. */
    std::int64_t asInt() const { return int_; }
    /** The integral bits as uint64 (exact for unsigned literals). */
    std::uint64_t asUint64() const
    {
        return static_cast<std::uint64_t>(int_);
    }
    /** Was the number written as an integer literal? */
    bool isIntegral() const { return isNumber() && integral_; }
    /** Integer literal above int64 max (bits live in asUint64()). */
    bool isUnsignedIntegral() const { return isIntegral() && unsigned_; }
    const std::string &asString() const { return string_; }

    /** Array elements (valid for arrays). */
    const std::vector<JsonValue> &items() const { return items_; }
    std::vector<JsonValue> &items() { return items_; }

    /** Object members in insertion order (valid for objects). */
    const std::vector<Member> &members() const { return members_; }

    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Append to an array. */
    void push(JsonValue value);
    /** Append a member to an object (no duplicate check). */
    void set(const std::string &key, JsonValue value);

    /** Human-readable kind name for error messages. */
    static const char *kindName(Kind kind);

    /**
     * Pretty-print with 2-space indentation. Integer-literal numbers
     * print as integers; other doubles with max_digits10 precision so
     * every value round-trips through parse() bit-exactly.
     */
    std::string dump() const;

  private:
    void dumpTo(std::string &out, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::int64_t int_ = 0;
    bool integral_ = false;
    bool unsigned_ = false;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/**
 * Parse a complete JSON document. On failure returns std::nullopt and
 * fills `error` (when non-null) with "line L, column C: problem".
 * Duplicate object keys are rejected. "//" line comments are allowed
 * anywhere whitespace is (so annotated config files parse verbatim);
 * dump() never emits them.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/** `s` as a double-quoted JSON string literal (escapes applied). */
std::string jsonQuote(const std::string &s);

/**
 * Strict partial reader over one JSON object: getters apply present
 * keys onto caller-owned defaults (absent keys leave the default
 * untouched), type mismatches fail with the full key path, and
 * finish() rejects any key no getter consumed — so typos like
 * "scheduler.polcy" are named instead of silently ignored.
 */
class JsonObjectReader
{
  public:
    /**
     * @param value the object to read (non-objects fail immediately)
     * @param path dotted prefix for error key paths ("" at the root)
     * @param error sink for the first failure message (nullable)
     */
    JsonObjectReader(const JsonValue &value, std::string path,
                     std::string *error);

    bool ok() const { return ok_; }

    /** Getters: absent key = keep default; wrong type = fail. */
    bool getBool(const std::string &key, bool *out);
    bool getDouble(const std::string &key, double *out);
    bool getInt64(const std::string &key, std::int64_t *out);
    bool getInt(const std::string &key, int *out);
    /** Rejects negative values. */
    bool getSize(const std::string &key, std::size_t *out);
    bool getUint64(const std::string &key, std::uint64_t *out);
    bool getString(const std::string &key, std::string *out);

    /** Parse a named enum via `byName`; lists `known` on failure. */
    template <typename Enum, typename ByName>
    bool getEnum(const std::string &key, Enum *out, ByName byName,
                 const std::string &known)
    {
        const JsonValue *v = consume(key);
        if (v == nullptr)
            return ok_;
        if (!v->isString())
            return fail(key, typeMessage("a string", *v));
        if (!byName(v->asString(), out))
            return fail(key, "unknown value \"" + v->asString() +
                                 "\"; known: " + known);
        return true;
    }

    /** Fetch a raw member (marks it consumed); nullptr when absent. */
    const JsonValue *child(const std::string &key);

    /** Report an error against `path.key`; returns false. */
    bool fail(const std::string &key, const std::string &message);

    /** Reject every key no getter consumed. */
    bool finish();

    /** The dotted path of `key` under this reader. */
    std::string pathOf(const std::string &key) const;

  private:
    static std::string typeMessage(const std::string &want,
                                   const JsonValue &v);

    const JsonValue *consume(const std::string &key);

    const JsonValue &value_;
    std::string path_;
    std::string *error_;
    bool ok_ = true;
    std::vector<std::string> consumed_;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_JSON_H
