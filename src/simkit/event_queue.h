/**
 * @file
 * Two-level bucketed calendar queue for the simulation kernel.
 *
 * The simulator's previous std::priority_queue paid O(log n) per
 * schedule and per pop with n = every pending event — including the
 * whole not-yet-arrived tail of a trace. This queue splits pending
 * events by horizon:
 *
 *   near future   a ring of kBucketCount buckets, each covering
 *                 kBucketWidth microseconds of virtual time. Events
 *                 land in their bucket with a push_back; only the
 *                 bucket under the cursor is sorted (lazily,
 *                 latest-first, when the cursor reaches it), so
 *                 scheduling into the near window is O(1), popping is
 *                 a pop_back, and the sort costs O(b log b) once per
 *                 bucket with b the *bucket* occupancy, not the queue
 *                 size.
 *   far future    events beyond the ring's window. Monotone pushes
 *                 (trace arrivals are generated in nondecreasing time
 *                 order) append to a sorted deque in O(1); the rare
 *                 out-of-order far push goes to a small binary heap.
 *                 Far events migrate into the ring — once — as the
 *                 cursor window advances over them.
 *
 * Ordering is exactly the kernel's contract: globally by (time, seq)
 * with seq the schedule-order sequence number, i.e. a stable FIFO
 * tie-break at equal timestamps. Because (time, seq) is a strict total
 * order, sorted-bucket pops are deterministic regardless of internal
 * layout, so the dispatch stream is bit-identical to the priority_queue it
 * replaced (asserted by tests/event_queue_test.cc property tests and
 * the golden-trace pins).
 *
 * Cancellation stays in the Simulator (slot liveness checked at
 * dispatch); the queue only orders (time, seq, id) keys.
 */

#ifndef CHAMELEON_SIMKIT_EVENT_QUEUE_H
#define CHAMELEON_SIMKIT_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "simkit/time.h"

namespace chameleon::sim {

/** One scheduled-event key: dispatch orders by (time, seq). */
struct EventKey
{
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
};

/** Comparator: a fires after b (std:: heap algos' "less important"). */
struct EventAfter
{
    bool
    operator()(const EventKey &a, const EventKey &b) const
    {
        return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
};

class CalendarQueue
{
  public:
    CalendarQueue();

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Insert a key; time must be >= the last popped key's time. */
    void push(const EventKey &key);

    /** The (time, seq)-minimal key; queue must be non-empty. Not
     * const: positions the cursor (amortised O(1)). */
    const EventKey &top();

    /** Remove the minimal key; queue must be non-empty. */
    void pop();

    /** top() and pop() fused into one cursor settle (the dispatch
     * loop's fast path); queue must be non-empty. */
    EventKey popFront();

  private:
    // 2048 buckets x 1024 us: a ~2.1 s near window. Iteration-scale
    // events (micro/milliseconds ahead) stay O(1); trace arrivals
    // seconds-to-hours out take the far path.
    static constexpr int kWidthBits = 10;
    static constexpr int kBucketBits = 11;
    static constexpr std::size_t kBucketCount = std::size_t{1}
                                                << kBucketBits;
    static constexpr std::uint64_t kBucketMask = kBucketCount - 1;

    std::uint64_t
    bucketOf(SimTime t) const
    {
        return static_cast<std::uint64_t>(t) >> kWidthBits;
    }

    /** Advance the cursor to the bucket holding the minimal key and
     * sort it latest-first; requires size_ > 0. */
    void settle();

    /** Pull far events whose bucket entered the cursor window. */
    void migrateFar();

    /** Recompute nextFarBucket_ from the far containers' heads. */
    void refreshNextFar();

    void pushNear(const EventKey &key, std::uint64_t bucket);

    std::vector<std::vector<EventKey>> buckets_;
    /** Absolute bucket number under the cursor. */
    std::uint64_t curBucket_ = 0;
    /** Is buckets_[curBucket_ & mask] currently sorted latest-first? */
    bool curSorted_ = false;
    /** Events stored in the ring. */
    std::size_t nearCount_ = 0;
    /** Far events pushed in nondecreasing (time, seq) order. */
    std::deque<EventKey> farSorted_;
    /** Far events that arrived out of order (rare). */
    std::vector<EventKey> farHeap_;
    /** Bucket of the earliest far event (UINT64_MAX when none), so
     * settle() decides "anything to migrate?" with one compare
     * instead of inspecting both far containers every pop. */
    std::uint64_t nextFarBucket_ = ~std::uint64_t{0};
    std::size_t size_ = 0;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_EVENT_QUEUE_H
