/**
 * @file
 * Minimal command-line flag parsing for the tools and examples.
 *
 * Supports --name value and --name=value forms, typed registration
 * with defaults, and generated usage text. Deliberately tiny; not a
 * general-purpose library.
 */

#ifndef CHAMELEON_SIMKIT_FLAGS_H
#define CHAMELEON_SIMKIT_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chameleon::sim {

/** Registry of typed command-line flags. */
class FlagSet
{
  public:
    explicit FlagSet(std::string programName);

    /** Register flags; the returned pointer stays owned by the set. */
    std::string *addString(const std::string &name, std::string def,
                           const std::string &help);
    double *addDouble(const std::string &name, double def,
                      const std::string &help);
    std::int64_t *addInt(const std::string &name, std::int64_t def,
                         const std::string &help);
    bool *addBool(const std::string &name, bool def,
                  const std::string &help);

    /**
     * Parse argv. Returns false (after printing usage) on unknown flags,
     * malformed values, or --help.
     */
    bool parse(int argc, char **argv);

    /** Usage text. */
    std::string usage() const;

  private:
    enum class Type { String, Double, Int, Bool };

    struct Flag
    {
        Type type;
        std::string help;
        std::string defaultText;
        // Exactly one is active, per type.
        std::string stringValue;
        double doubleValue = 0.0;
        std::int64_t intValue = 0;
        bool boolValue = false;
    };

    bool setValue(Flag &flag, const std::string &text);

    std::string program_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_FLAGS_H
