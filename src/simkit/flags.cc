#include "simkit/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "simkit/check.h"

namespace chameleon::sim {

FlagSet::FlagSet(std::string programName) : program_(std::move(programName))
{
}

std::string *
FlagSet::addString(const std::string &name, std::string def,
                   const std::string &help)
{
    CHM_CHECK(!flags_.count(name), "duplicate flag --" << name);
    Flag flag;
    flag.type = Type::String;
    flag.help = help;
    flag.defaultText = def;
    flag.stringValue = std::move(def);
    order_.push_back(name);
    return &flags_.emplace(name, std::move(flag)).first->second.stringValue;
}

double *
FlagSet::addDouble(const std::string &name, double def,
                   const std::string &help)
{
    CHM_CHECK(!flags_.count(name), "duplicate flag --" << name);
    Flag flag;
    flag.type = Type::Double;
    flag.help = help;
    std::ostringstream oss;
    oss << def;
    flag.defaultText = oss.str();
    flag.doubleValue = def;
    order_.push_back(name);
    return &flags_.emplace(name, std::move(flag)).first->second.doubleValue;
}

std::int64_t *
FlagSet::addInt(const std::string &name, std::int64_t def,
                const std::string &help)
{
    CHM_CHECK(!flags_.count(name), "duplicate flag --" << name);
    Flag flag;
    flag.type = Type::Int;
    flag.help = help;
    flag.defaultText = std::to_string(def);
    flag.intValue = def;
    order_.push_back(name);
    return &flags_.emplace(name, std::move(flag)).first->second.intValue;
}

bool *
FlagSet::addBool(const std::string &name, bool def, const std::string &help)
{
    CHM_CHECK(!flags_.count(name), "duplicate flag --" << name);
    Flag flag;
    flag.type = Type::Bool;
    flag.help = help;
    flag.defaultText = def ? "true" : "false";
    flag.boolValue = def;
    order_.push_back(name);
    return &flags_.emplace(name, std::move(flag)).first->second.boolValue;
}

bool
FlagSet::setValue(Flag &flag, const std::string &text)
{
    char *end = nullptr;
    switch (flag.type) {
      case Type::String:
        flag.stringValue = text;
        return true;
      case Type::Double:
        flag.doubleValue = std::strtod(text.c_str(), &end);
        return end && *end == '\0' && !text.empty();
      case Type::Int:
        flag.intValue = std::strtoll(text.c_str(), &end, 10);
        return end && *end == '\0' && !text.empty();
      case Type::Bool:
        if (text == "true" || text == "1") {
            flag.boolValue = true;
            return true;
        }
        if (text == "false" || text == "0") {
            flag.boolValue = false;
            return true;
        }
        return false;
    }
    return false;
}

bool
FlagSet::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stderr);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected argument: %s\n%s",
                         arg.c_str(), usage().c_str());
            return false;
        }
        arg = arg.substr(2);
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            have_value = true;
        }
        auto it = flags_.find(arg);
        if (it == flags_.end()) {
            std::fprintf(stderr, "unknown flag: --%s\n%s", arg.c_str(),
                         usage().c_str());
            return false;
        }
        if (!have_value) {
            if (it->second.type == Type::Bool) {
                value = "true"; // bare --flag enables booleans
                have_value = true;
            } else if (i + 1 < argc) {
                value = argv[++i];
                have_value = true;
            }
        }
        if (!have_value || !setValue(it->second, value)) {
            std::fprintf(stderr, "bad value for --%s\n%s", arg.c_str(),
                         usage().c_str());
            return false;
        }
    }
    return true;
}

std::string
FlagSet::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program_ << " [flags]\n";
    for (const auto &name : order_) {
        const Flag &flag = flags_.at(name);
        oss << "  --" << name << " (default: " << flag.defaultText
            << ")\n      " << flag.help << "\n";
    }
    return oss.str();
}

} // namespace chameleon::sim
