/**
 * @file
 * Statistics collection: online moments, percentile sampling, histograms.
 *
 * Percentiles are computed from the full sample vector (experiments here
 * involve at most a few hundred thousand samples per metric, so exact
 * percentiles are affordable and avoid sketch-approximation artifacts in
 * the reproduced tail-latency figures).
 */

#ifndef CHAMELEON_SIMKIT_STATS_H
#define CHAMELEON_SIMKIT_STATS_H

#include <cstddef>
#include <utility>
#include <vector>

namespace chameleon::sim {

/** Streaming mean/variance/min/max accumulator (Welford). */
class OnlineStats
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Exact percentile tracker over all added samples.
 *
 * Samples are kept unsorted and sorted lazily on query; queries between
 * inserts re-sort only when dirty.
 */
class PercentileTracker
{
  public:
    void add(double x);

    /** Percentile in [0, 100]; linear interpolation between ranks. */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }

    double mean() const;
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** CDF as (value, cumulative fraction) pairs over sorted samples. */
    std::vector<std::pair<double, double>> cdf() const;

    /** All samples, sorted ascending. */
    const std::vector<double> &sorted() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-width histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const { return binLow(i + 1); }
    std::size_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_STATS_H
