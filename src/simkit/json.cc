#include "simkit/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace chameleon::sim {

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    // A whole double prints nicer (and round-trips) as an integer.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.0e15) {
        v.int_ = static_cast<std::int64_t>(value);
        v.integral_ = true;
    }
    return v;
}

JsonValue
JsonValue::makeInt(std::int64_t value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = static_cast<double>(value);
    v.int_ = value;
    v.integral_ = true;
    return v;
}

JsonValue
JsonValue::makeUint64(std::uint64_t value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = static_cast<double>(value);
    v.int_ = static_cast<std::int64_t>(value);
    v.integral_ = true;
    v.unsigned_ = v.int_ < 0; // above int64 max: print via asUint64()
    return v;
}

JsonValue
JsonValue::makeString(std::string value)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(value);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

void
JsonValue::push(JsonValue value)
{
    items_.push_back(std::move(value));
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    members_.emplace_back(key, std::move(value));
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, const JsonValue &v)
{
    if (v.isUnsignedIntegral()) {
        out += std::to_string(v.asUint64());
        return;
    }
    if (v.isIntegral()) {
        out += std::to_string(v.asInt());
        return;
    }
    if (!std::isfinite(v.asNumber())) {
        out += "null"; // JSON has no NaN/Inf
        return;
    }
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v.asNumber();
    out += os.str();
}

void
appendIndent(std::string &out, int depth)
{
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int depth) const
{
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Number: appendNumber(out, *this); break;
      case Kind::String: appendEscaped(out, string_); break;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        // Arrays of scalars stay on one line; nested structures indent.
        bool scalarOnly = true;
        for (const auto &item : items_) {
            if (item.isArray() || item.isObject())
                scalarOnly = false;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (!scalarOnly) {
                out.push_back('\n');
                appendIndent(out, depth + 1);
            }
            items_[i].dumpTo(out, depth + 1);
            if (i + 1 < items_.size())
                out += scalarOnly ? ", " : ",";
        }
        if (!scalarOnly) {
            out.push_back('\n');
            appendIndent(out, depth);
        }
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            appendIndent(out, depth + 1);
            appendEscaped(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpTo(out, depth + 1);
            if (i + 1 < members_.size())
                out.push_back(',');
            out.push_back('\n');
        }
        appendIndent(out, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out.push_back('\n');
    return out;
}

// ---------------------------------------------------------------------
// Parser: recursive descent with line/column error reporting.
// ---------------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue> parse(std::string *error)
    {
        JsonValue value;
        if (!parseValue(&value))
            goto fail;
        skipWhitespace();
        if (pos_ != text_.size()) {
            fail("trailing content after the JSON document");
            goto fail;
        }
        return value;
      fail:
        if (error != nullptr)
            *error = error_;
        return std::nullopt;
    }

  private:
    bool fail(const std::string &message)
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream os;
        os << "line " << line << ", column " << col << ": " << message;
        error_ = os.str();
        return false;
    }

    void skipWhitespace()
    {
        // "//" line comments count as whitespace, so config files
        // (spec and sweep JSONs) can be annotated in place — the
        // schema docs show jsonc examples that then parse verbatim.
        // Dumps never emit comments, so round-trips are unaffected.
        while (pos_ < text_.size()) {
            if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            } else if (text_[pos_] == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    bool atEnd() { return pos_ >= text_.size(); }
    char peek() { return text_[pos_]; }

    bool expect(char c)
    {
        if (atEnd() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool parseValue(JsonValue *out)
    {
        skipWhitespace();
        if (atEnd())
            return fail("unexpected end of input");
        const char c = peek();
        if (c == '{' || c == '[') {
            // Recursive descent: bound the nesting so hostile input
            // gets the clean error path, not a stack overflow.
            if (depth_ >= kMaxDepth)
                return fail("nesting deeper than 128 levels");
            ++depth_;
            const bool ok =
                c == '{' ? parseObject(out) : parseArray(out);
            --depth_;
            return ok;
        }
        if (c == '"')
            return parseString(out);
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            *out = JsonValue::makeBool(true);
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            *out = JsonValue::makeBool(false);
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            *out = JsonValue();
            return true;
        }
        return fail("unexpected character '" + std::string(1, c) + "'");
    }

    bool parseObject(JsonValue *out)
    {
        ++pos_; // '{'
        *out = JsonValue::makeObject();
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            JsonValue key;
            if (atEnd() || peek() != '"')
                return fail("expected a quoted object key");
            if (!parseString(&key))
                return false;
            if (out->find(key.asString()) != nullptr)
                return fail("duplicate key \"" + key.asString() + "\"");
            skipWhitespace();
            if (!expect(':'))
                return false;
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->set(key.asString(), std::move(value));
            skipWhitespace();
            if (!atEnd() && peek() == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    bool parseArray(JsonValue *out)
    {
        ++pos_; // '['
        *out = JsonValue::makeArray();
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->push(std::move(value));
            skipWhitespace();
            if (!atEnd() && peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool parseHex4(unsigned *out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        *out = code;
        return true;
    }

    static void appendUtf8(std::string &s, unsigned code)
    {
        if (code < 0x80) {
            s.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            s.push_back(static_cast<char>(0xF0 | (code >> 18)));
            s.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    bool parseString(JsonValue *out)
    {
        ++pos_; // '"'
        std::string s;
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c != '\\') {
                s.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': s.push_back('"'); break;
              case '\\': s.push_back('\\'); break;
              case '/': s.push_back('/'); break;
              case 'n': s.push_back('\n'); break;
              case 't': s.push_back('\t'); break;
              case 'r': s.push_back('\r'); break;
              case 'b': s.push_back('\b'); break;
              case 'f': s.push_back('\f'); break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(&code))
                    return false;
                // Surrogate pairs combine into one supplementary code
                // point; a lone surrogate would emit invalid UTF-8.
                if (code >= 0xDC00 && code <= 0xDFFF)
                    return fail("unpaired low \\u surrogate");
                if (code >= 0xD800 && code <= 0xDBFF) {
                    if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u')
                        return fail("unpaired high \\u surrogate");
                    pos_ += 2;
                    unsigned low = 0;
                    if (!parseHex4(&low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("invalid \\u surrogate pair");
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                }
                appendUtf8(s, code);
                break;
              }
              default:
                return fail(std::string("unknown escape '\\") + e + "'");
            }
        }
        *out = JsonValue::makeString(std::move(s));
        return true;
    }

    bool parseNumber(JsonValue *out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        bool integral = true;
        while (!atEnd()) {
            const char c = peek();
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string literal = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(literal.c_str(), &end);
        if (end == literal.c_str() || *end != '\0') {
            pos_ = start;
            return fail("malformed number '" + literal + "'");
        }
        if (!std::isfinite(value)) {
            // An overflowing literal silently becoming inf would dump
            // as null and break the advertised round-trip.
            pos_ = start;
            return fail("number '" + literal + "' is out of range");
        }
        if (integral) {
            // Exact 64-bit round-trip for seeds and byte counts —
            // negatives through int64, positives through the full
            // uint64 range; beyond that strtoll/strtoull would
            // silently saturate, so reject instead of running a
            // different value than written.
            errno = 0;
            if (literal[0] == '-') {
                const long long exact =
                    std::strtoll(literal.c_str(), nullptr, 10);
                if (errno == ERANGE) {
                    pos_ = start;
                    return fail("integer '" + literal +
                                "' is out of 64-bit range");
                }
                *out = JsonValue::makeInt(
                    static_cast<std::int64_t>(exact));
            } else {
                const unsigned long long exact =
                    std::strtoull(literal.c_str(), nullptr, 10);
                if (errno == ERANGE) {
                    pos_ = start;
                    return fail("integer '" + literal +
                                "' is out of 64-bit range");
                }
                *out = JsonValue::makeUint64(
                    static_cast<std::uint64_t>(exact));
            }
        } else {
            *out = JsonValue::makeNumber(value);
        }
        return true;
    }

    static constexpr int kMaxDepth = 128;

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    Parser parser(text);
    return parser.parse(error);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    appendEscaped(out, s);
    return out;
}

// ---------------------------------------------------------------------
// JsonObjectReader.
// ---------------------------------------------------------------------

JsonObjectReader::JsonObjectReader(const JsonValue &value,
                                   std::string path, std::string *error)
    : value_(value), path_(std::move(path)), error_(error)
{
    if (!value_.isObject()) {
        fail("", std::string("expects an object, got ") +
                     JsonValue::kindName(value_.kind()));
    }
}

bool
JsonObjectReader::getBool(const std::string &key, bool *out)
{
    const JsonValue *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isBool())
        return fail(key, typeMessage("a bool", *v));
    *out = v->asBool();
    return true;
}

bool
JsonObjectReader::getDouble(const std::string &key, double *out)
{
    const JsonValue *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isNumber())
        return fail(key, typeMessage("a number", *v));
    *out = v->asNumber();
    return true;
}

bool
JsonObjectReader::getInt64(const std::string &key, std::int64_t *out)
{
    const JsonValue *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isNumber() || !v->isIntegral())
        return fail(key, typeMessage("an integer", *v));
    if (v->isUnsignedIntegral())
        return fail(key, "is out of range for a signed 64-bit integer");
    *out = v->asInt();
    return true;
}

bool
JsonObjectReader::getInt(const std::string &key, int *out)
{
    std::int64_t wide = *out;
    if (!getInt64(key, &wide))
        return false;
    if (wide < std::numeric_limits<int>::min() ||
        wide > std::numeric_limits<int>::max())
        return fail(key, "is out of range for a 32-bit integer");
    *out = static_cast<int>(wide);
    return true;
}

bool
JsonObjectReader::getSize(const std::string &key, std::size_t *out)
{
    std::int64_t wide = static_cast<std::int64_t>(*out);
    if (!getInt64(key, &wide))
        return false;
    if (wide < 0)
        return fail(key, "must be non-negative");
    *out = static_cast<std::size_t>(wide);
    return true;
}

bool
JsonObjectReader::getUint64(const std::string &key, std::uint64_t *out)
{
    const JsonValue *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isNumber() || !v->isIntegral())
        return fail(key, typeMessage("an integer", *v));
    if (v->asInt() < 0 && !v->isUnsignedIntegral())
        return fail(key, "must be non-negative");
    *out = v->asUint64();
    return true;
}

bool
JsonObjectReader::getString(const std::string &key, std::string *out)
{
    const JsonValue *v = consume(key);
    if (v == nullptr)
        return ok_;
    if (!v->isString())
        return fail(key, typeMessage("a string", *v));
    *out = v->asString();
    return true;
}

const JsonValue *
JsonObjectReader::child(const std::string &key)
{
    return consume(key);
}

bool
JsonObjectReader::fail(const std::string &key, const std::string &message)
{
    if (ok_ && error_ != nullptr)
        *error_ = "\"" + pathOf(key) + "\" " + message;
    ok_ = false;
    return false;
}

bool
JsonObjectReader::finish()
{
    if (!ok_)
        return false;
    for (const auto &[key, value] : value_.members()) {
        bool seen = false;
        for (const auto &c : consumed_)
            seen = seen || c == key;
        if (!seen)
            return fail(key, "is not a recognised key");
    }
    return true;
}

std::string
JsonObjectReader::pathOf(const std::string &key) const
{
    if (key.empty())
        return path_;
    return path_.empty() ? key : path_ + "." + key;
}

std::string
JsonObjectReader::typeMessage(const std::string &want, const JsonValue &v)
{
    return "expects " + want + ", got " + JsonValue::kindName(v.kind());
}

const JsonValue *
JsonObjectReader::consume(const std::string &key)
{
    if (!ok_ || !value_.isObject())
        return nullptr;
    consumed_.push_back(key);
    return value_.find(key);
}

} // namespace chameleon::sim
