/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * Logging is off by default (level Warn) so benchmark output stays clean;
 * tests and examples can raise the level for debugging. All output goes
 * to stderr so that bench table output on stdout remains machine-parsable.
 */

#ifndef CHAMELEON_SIMKIT_LOG_H
#define CHAMELEON_SIMKIT_LOG_H

#include <sstream>
#include <string>

namespace chameleon::sim {

/** Severity levels, increasing verbosity. */
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/** Set the global log threshold; messages above it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Emit a message at the given level (used by the macros below). */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Parse a level from its lowercase name ("error", "warn", "info",
 * "debug", "trace"). Returns false (out untouched) on unknown names.
 */
bool logLevelByName(const std::string &name, LogLevel *out);

/** The names logLevelByName accepts, for flag help/error messages. */
const char *logLevelNames();

} // namespace chameleon::sim

#define CHM_LOG(level, msg)                                                   \
    do {                                                                      \
        if (static_cast<int>(level) <=                                        \
            static_cast<int>(::chameleon::sim::logLevel())) {                 \
            std::ostringstream chm_log_oss_;                                  \
            chm_log_oss_ << msg;                                              \
            ::chameleon::sim::logMessage(level, chm_log_oss_.str());          \
        }                                                                     \
    } while (0)

#define CHM_ERROR(msg) CHM_LOG(::chameleon::sim::LogLevel::Error, msg)
#define CHM_WARN(msg) CHM_LOG(::chameleon::sim::LogLevel::Warn, msg)
#define CHM_INFO(msg) CHM_LOG(::chameleon::sim::LogLevel::Info, msg)
#define CHM_DEBUG(msg) CHM_LOG(::chameleon::sim::LogLevel::Debug, msg)
#define CHM_TRACE(msg) CHM_LOG(::chameleon::sim::LogLevel::Trace, msg)

#endif // CHAMELEON_SIMKIT_LOG_H
