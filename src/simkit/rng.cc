#include "simkit/rng.h"

#include "simkit/check.h"

namespace chameleon::sim {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    const std::uint64_t z = mix64(x);
    x += 0x9E3779B97F4A7C15ull;
    return z;
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBelow(std::uint64_t n)
{
    CHM_CHECK(n > 0, "nextBelow requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~0ull - n + 1) % n;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % n;
    }
}

Rng
Rng::split()
{
    return Rng((*this)());
}

} // namespace chameleon::sim
