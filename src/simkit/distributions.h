/**
 * @file
 * Portable random distributions used by the workload generator.
 *
 * Implemented on top of Rng rather than <random> distributions so that
 * trace generation is reproducible across standard libraries.
 */

#ifndef CHAMELEON_SIMKIT_DISTRIBUTIONS_H
#define CHAMELEON_SIMKIT_DISTRIBUTIONS_H

#include <cstdint>
#include <vector>

#include "simkit/rng.h"

namespace chameleon::sim {

/** Exponential variate with the given rate (events per unit). */
double sampleExponential(Rng &rng, double rate);

/** Lognormal variate with the given log-space mean and sigma. */
double sampleLognormal(Rng &rng, double mu, double sigma);

/** Standard normal variate (Box–Muller, one value per call). */
double sampleNormal(Rng &rng);

/** Bounded Pareto variate on [lo, hi] with tail index alpha. */
double sampleBoundedPareto(Rng &rng, double alpha, double lo, double hi);

/**
 * Discrete power-law (Zipf-like) sampler over {0, .., n-1}.
 *
 * P(k) proportional to 1 / (k + 1)^alpha. Precomputes the CDF so draws are
 * O(log n). alpha = 0 degenerates to the uniform distribution.
 */
class PowerLawSampler
{
  public:
    PowerLawSampler(std::size_t n, double alpha);

    /** Draw an index in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of index k. */
    double probability(std::size_t k) const;

    std::size_t size() const { return pmf_.size(); }

  private:
    std::vector<double> pmf_;
    std::vector<double> cdf_;
};

/**
 * Sampler over arbitrary discrete weights (normalised internally).
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(std::vector<double> weights);

    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace chameleon::sim

#endif // CHAMELEON_SIMKIT_DISTRIBUTIONS_H
