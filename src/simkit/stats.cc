#include "simkit/stats.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"

namespace chameleon::sim {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
OnlineStats::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
OnlineStats::max() const
{
    return count_ ? max_ : 0.0;
}

void
PercentileTracker::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

const std::vector<double> &
PercentileTracker::sorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_;
}

double
PercentileTracker::percentile(double p) const
{
    CHM_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    const auto &s = sorted();
    if (s.empty())
        return 0.0;
    if (s.size() == 1)
        return s[0];
    const double rank = (p / 100.0) * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= s.size())
        return s.back();
    return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>>
PercentileTracker::cdf() const
{
    const auto &s = sorted();
    std::vector<std::pair<double, double>> out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        out.emplace_back(
            s[i], static_cast<double>(i + 1) / static_cast<double>(s.size()));
    }
    return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    CHM_CHECK(hi > lo, "histogram range must be non-empty");
    CHM_CHECK(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

} // namespace chameleon::sim
