/**
 * @file
 * Cluster-wide adapter residency directory (ROADMAP open item 4).
 *
 * One map, adapter -> {replica, tier, refcount, last-use}, kept
 * coherent by the cache managers' residency callbacks
 * (serving::ResidencyEvents): every load start/complete, eviction,
 * acquire, and release on any replica lands here at the instant it
 * happens, so the directory never disagrees with the per-replica cache
 * contents (the fabric test suite churns exactly this invariant). Two
 * consumers read it:
 *
 *  - the `affinity-dir` router, which replaces the cache-aware O(n)
 *    residency scan with one directory lookup per decision;
 *  - the migration planner (CacheFabric), which needs "who holds this
 *    adapter" and "what is hot" to move weights replica-to-replica.
 *
 * Heat is directory-global: per adapter, a monotone use count plus the
 * last acquire time. hottest() orders by (uses desc, last-use desc, id
 * asc) — fully deterministic, no decayed floats, so migration plans
 * are reproducible across runs and thread counts.
 *
 * All containers are ordered maps: iteration order is part of the
 * deterministic event-stream contract.
 */

#ifndef CHAMELEON_FABRIC_RESIDENCY_DIRECTORY_H
#define CHAMELEON_FABRIC_RESIDENCY_DIRECTORY_H

#include <cstdint>
#include <map>
#include <vector>

#include "model/adapter.h"
#include "serving/adapter_manager.h"
#include "simkit/time.h"

namespace chameleon::fabric {

/** Residency tier of one (adapter, replica) holding. */
enum class Tier {
    Loading,  ///< Transfer in flight (host or peer).
    Resident, ///< Usable now.
};

/** Adapter -> per-replica holdings + global heat, callback-coherent. */
class ResidencyDirectory : public serving::ResidencyEvents
{
  public:
    /** One replica's holding of one adapter. */
    struct Holding
    {
        Tier tier = Tier::Loading;
        /** Mirror of the cache manager's running refcount. */
        int refcount = 0;
        /** Last acquire on this replica (0 = never acquired). */
        sim::SimTime lastUse = 0;
    };

    // --- serving::ResidencyEvents (the coherence feed) ---
    void onLoadStart(int replica, model::AdapterId id) override;
    void onLoadComplete(int replica, model::AdapterId id) override;
    void onEvict(int replica, model::AdapterId id) override;
    void onAcquire(int replica, model::AdapterId id,
                   sim::SimTime now) override;
    void onRelease(int replica, model::AdapterId id) override;

    // --- lookups (all deterministic) ---
    /** Is the adapter Resident on `replica` right now? */
    bool isResident(model::AdapterId id, std::size_t replica) const;

    /** The holding, or nullptr when the replica holds nothing. */
    const Holding *holding(model::AdapterId id, std::size_t replica) const;

    /**
     * Engine indices of every replica holding `id` Resident, ascending,
     * into `out` (cleared first; reused buffer — no per-lookup allocs
     * on the routing path).
     */
    void residentReplicas(model::AdapterId id,
                          std::vector<std::size_t> *out) const;

    /** Does `replica` hold `id` at all (Loading counts)? */
    bool holds(model::AdapterId id, std::size_t replica) const;

    /** Holdings (Loading or Resident) currently on `replica`. */
    std::size_t replicaEntryCount(std::size_t replica) const;

    /**
     * The k globally hottest adapters ever acquired, ordered by
     * (uses desc, last-use desc, id asc).
     */
    std::vector<model::AdapterId> hottest(std::size_t k) const;

    /** The k hottest adapters currently Resident on `replica` with no
     * running references (idle cache contents — the movable set). */
    std::vector<model::AdapterId> hottestIdleOn(std::size_t replica,
                                                std::size_t k) const;

    /** Total (adapter, replica) holdings across the cluster. */
    std::size_t totalEntries() const;

  private:
    struct AdapterInfo
    {
        /** replica -> holding; ordered so iteration is deterministic. */
        std::map<int, Holding> holders;
        /** Lifetime acquire count (global heat). */
        std::int64_t uses = 0;
        /** Last acquire anywhere (heat tiebreaker). */
        sim::SimTime lastUse = 0;
    };

    std::vector<model::AdapterId>
    hotSort(std::vector<model::AdapterId> ids, std::size_t k) const;

    std::map<model::AdapterId, AdapterInfo> adapters_;
    std::map<int, std::int64_t> perReplicaEntries_;
};

} // namespace chameleon::fabric

#endif // CHAMELEON_FABRIC_RESIDENCY_DIRECTORY_H
