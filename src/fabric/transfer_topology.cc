#include "fabric/transfer_topology.h"

#include "simkit/check.h"

namespace chameleon::fabric {

const char *
topologyName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::PciePeer: return "pcie";
      case TopologyKind::NvLink: return "nvlink";
    }
    return "?";
}

bool
topologyByName(const std::string &name, TopologyKind *out)
{
    if (name == "pcie" || name == "pcie-peer")
        *out = TopologyKind::PciePeer;
    else if (name == "nvlink")
        *out = TopologyKind::NvLink;
    else
        return false;
    return true;
}

const char *
topologyNames()
{
    return "pcie, nvlink";
}

namespace {

/** Effective bandwidth of the preset, bytes/second. */
double
presetBandwidth(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::PciePeer: return 24e9;
      case TopologyKind::NvLink: return 240e9;
    }
    CHM_PANIC("unknown topology kind");
}

/** Per-transfer setup latency of the preset. */
sim::SimTime
presetLatency(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::PciePeer: return 100; // 100 us P2P setup
      case TopologyKind::NvLink: return 20;    // 20 us mesh hop
    }
    CHM_PANIC("unknown topology kind");
}

} // namespace

TransferTopology::TransferTopology(sim::Simulator &simulator,
                                   TopologyKind kind)
    : sim_(simulator), kind_(kind), bytesPerSecond_(presetBandwidth(kind)),
      latency_(presetLatency(kind))
{
}

gpu::PeerLink &
TransferTopology::link(std::size_t src, std::size_t dst)
{
    CHM_CHECK(src != dst, "peer link endpoints must differ");
    auto &slot = links_[{src, dst}];
    if (slot == nullptr) {
        slot = std::make_unique<gpu::PeerLink>(sim_, bytesPerSecond_,
                                               latency_);
    }
    return *slot;
}

sim::SimTime
TransferTopology::earliestCompletion(std::size_t src, std::size_t dst,
                                     std::int64_t bytes)
{
    return link(src, dst).earliestCompletion(bytes);
}

sim::SimTime
TransferTopology::transfer(std::size_t src, std::size_t dst,
                           std::int64_t bytes)
{
    const sim::SimTime done = link(src, dst).reserve(bytes);
    peerBytes_ += bytes;
    ++peerTransfers_;
    return done;
}

} // namespace chameleon::fabric
