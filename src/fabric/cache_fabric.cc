#include "fabric/cache_fabric.h"

#include <algorithm>

#include "obs/trace_recorder.h"
#include "simkit/check.h"

namespace chameleon::fabric {

using model::AdapterId;

const char *
migrationPolicyName(MigrationPolicy policy)
{
    switch (policy) {
      case MigrationPolicy::Off: return "off";
      case MigrationPolicy::ScaleUp: return "scale-up";
      case MigrationPolicy::Drain: return "drain";
      case MigrationPolicy::Remap: return "remap";
      case MigrationPolicy::All: return "all";
    }
    return "?";
}

bool
migrationPolicyByName(const std::string &name, MigrationPolicy *out)
{
    if (name == "off")
        *out = MigrationPolicy::Off;
    else if (name == "scale-up")
        *out = MigrationPolicy::ScaleUp;
    else if (name == "drain")
        *out = MigrationPolicy::Drain;
    else if (name == "remap")
        *out = MigrationPolicy::Remap;
    else if (name == "all")
        *out = MigrationPolicy::All;
    else
        return false;
    return true;
}

const char *
migrationPolicyNames()
{
    return "off, scale-up, drain, remap, all";
}

CacheFabric::CacheFabric(sim::Simulator &simulator,
                         const model::AdapterPool &pool,
                         FabricConfig config)
    : sim_(simulator), pool_(pool), config_(config),
      topology_(simulator, config.topology)
{
    CHM_CHECK(config_.topK >= 1, "fabric topK must be >= 1");
}

void
CacheFabric::attachReplica(std::size_t index,
                           serving::AdapterManager &manager)
{
    const auto [it, inserted] = managers_.emplace(index, &manager);
    (void)it;
    CHM_CHECK(inserted,
              "replica " << index << " attached to the fabric twice");
    manager.setResidencyListener(&directory_, static_cast<int>(index));
}

bool
CacheFabric::triggers(MigrationPolicy trigger) const
{
    return config_.migration == trigger ||
           config_.migration == MigrationPolicy::All;
}

bool
CacheFabric::pickSource(AdapterId id, std::size_t dst,
                        std::size_t *src) const
{
    std::vector<std::size_t> holders;
    directory_.residentReplicas(id, &holders);
    for (const std::size_t holder : holders) {
        if (holder == dst)
            continue;
        if (managers_.find(holder) == managers_.end())
            continue; // not an attached endpoint (shouldn't happen)
        *src = holder;
        return true; // holders ascend: lowest index, deterministic
    }
    return false;
}

bool
CacheFabric::pickDestination(AdapterId id,
                             const std::vector<std::size_t> &active,
                             std::size_t exclude, std::size_t *dst) const
{
    bool found = false;
    std::size_t best = 0;
    std::size_t bestEntries = 0;
    for (const std::size_t replica : active) {
        if (replica == exclude)
            continue;
        if (managers_.find(replica) == managers_.end())
            continue;
        if (directory_.holds(id, replica))
            continue; // already there (or inbound): nothing to move
        const std::size_t entries = directory_.replicaEntryCount(replica);
        if (!found || entries < bestEntries) {
            found = true;
            best = replica;
            bestEntries = entries;
        }
    }
    if (found)
        *dst = best;
    return found;
}

bool
CacheFabric::migrate(AdapterId id, std::size_t src, std::size_t dst,
                     sim::SimTime now)
{
    CHM_CHECK(src != dst, "migration endpoints must differ");
    auto it = managers_.find(dst);
    CHM_CHECK(it != managers_.end(),
              "migration to unattached replica " << dst);
    if (directory_.holds(id, dst))
        return false; // resident or already inbound
    const std::int64_t bytes = pool_.spec(id).bytes;
    // Quote the peer link first, then let the destination decide; only
    // an accepted admit reserves the link, so a declined migration
    // leaves the topology untouched. Nothing runs between quote and
    // reserve, hence the reservation lands at the quoted time.
    const sim::SimTime eta = topology_.earliestCompletion(src, dst, bytes);
    const sim::SimTime admitted = it->second->peerAdmit(id, eta, now);
    if (admitted == sim::kTimeNever)
        return false; // destination under memory pressure
    topology_.transfer(src, dst, bytes);
    ++migrations_;
    if (trace_ != nullptr) {
        trace_->complete(obs::kClusterPid, obs::Lane::Control, "migrate",
                         now, admitted - now,
                         {{"adapter", id},
                          {"src", src},
                          {"dst", dst},
                          {"bytes", bytes}});
    }
    return true;
}

void
CacheFabric::onScaleUp(std::size_t index, sim::SimTime now)
{
    if (!triggers(MigrationPolicy::ScaleUp))
        return;
    // Warm the booting replica with the cluster's hottest adapters;
    // peer transfers overlap the cold-start boot window, so by the
    // time the replica is routable its cache already holds them.
    for (const AdapterId id : directory_.hottest(config_.topK)) {
        std::size_t src;
        if (pickSource(id, index, &src))
            migrate(id, src, index, now);
    }
}

void
CacheFabric::onDrain(std::size_t index,
                     const std::vector<std::size_t> &active,
                     sim::SimTime now)
{
    if (!triggers(MigrationPolicy::Drain))
        return;
    // The drained replica's warm cache would otherwise only survive a
    // later reactivation; push its hottest idle entries to the active
    // replica least likely to hold them already.
    for (const AdapterId id :
         directory_.hottestIdleOn(index, config_.topK)) {
        std::size_t dst;
        if (pickDestination(id, active, index, &dst))
            migrate(id, index, dst, now);
    }
}

void
CacheFabric::onRemap(const std::vector<std::size_t> &active,
                     sim::SimTime now)
{
    if (!triggers(MigrationPolicy::Remap))
        return;
    if (active.empty())
        return;
    // After a routable-set change the hash ring re-homes adapters; make
    // sure each globally hot adapter keeps at least one *active*
    // holder (its residency may be stranded on drained replicas).
    for (const AdapterId id : directory_.hottest(config_.topK)) {
        bool activeHolder = false;
        for (const std::size_t replica : active) {
            if (directory_.holds(id, replica)) {
                activeHolder = true;
                break;
            }
        }
        if (activeHolder)
            continue;
        std::size_t dst;
        constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);
        if (!pickDestination(id, active, kNoExclude, &dst))
            continue;
        std::size_t src;
        if (pickSource(id, dst, &src))
            migrate(id, src, dst, now);
    }
}

} // namespace chameleon::fabric
