/**
 * @file
 * Inter-replica transfer topology (the fabric's interconnect model).
 *
 * Models the links adapter weights migrate over when they move
 * replica-to-replica instead of host-to-device: one gpu::PeerLink per
 * ordered (src, dst) replica pair, created lazily, all from one preset
 * (bandwidth + per-transfer latency). Two presets cover the fleets the
 * paper's hardware offers:
 *
 *   pcie    P2P over the PCIe switch fabric — ~24 GB/s effective,
 *           ~100 us setup. The default; every multi-GPU host has it.
 *   nvlink  NVLink mesh — ~240 GB/s effective, ~20 us setup.
 *
 * Per-pair FIFO queueing means concurrent migrations into the same
 * booting replica serialise per source but parallelise across sources,
 * which is how real P2P DMA behaves. Counters aggregate across pairs
 * for the `fabric.peer_*` metrics.
 */

#ifndef CHAMELEON_FABRIC_TRANSFER_TOPOLOGY_H
#define CHAMELEON_FABRIC_TRANSFER_TOPOLOGY_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "gpu/peer_link.h"
#include "simkit/simulator.h"
#include "simkit/time.h"

namespace chameleon::fabric {

/** Interconnect presets the fabric can migrate over. */
enum class TopologyKind {
    PciePeer, ///< P2P over the PCIe switch (~24 GB/s, ~100 us setup).
    NvLink,   ///< NVLink mesh (~240 GB/s, ~20 us setup).
};

/** Canonical short name (also accepted by topologyByName). */
const char *topologyName(TopologyKind kind);

/** Parse a topology name; returns false on unknown names. */
bool topologyByName(const std::string &name, TopologyKind *out);

/** Comma-separated topology names, for error messages. */
const char *topologyNames();

/** Lazily built per-ordered-pair peer links from one preset. */
class TransferTopology
{
  public:
    explicit TransferTopology(sim::Simulator &simulator,
                              TopologyKind kind = TopologyKind::PciePeer);

    TopologyKind kind() const { return kind_; }
    double bytesPerSecond() const { return bytesPerSecond_; }
    sim::SimTime latency() const { return latency_; }

    /** The FIFO link carrying src -> dst transfers (created lazily). */
    gpu::PeerLink &link(std::size_t src, std::size_t dst);

    /** Completion time of a src -> dst transfer submitted now. */
    sim::SimTime earliestCompletion(std::size_t src, std::size_t dst,
                                    std::int64_t bytes);

    /** Reserve the src -> dst link; returns the completion time. */
    sim::SimTime transfer(std::size_t src, std::size_t dst,
                          std::int64_t bytes);

    /** Peer traffic aggregated over every pair. */
    std::int64_t peerBytes() const { return peerBytes_; }
    std::int64_t peerTransfers() const { return peerTransfers_; }

  private:
    sim::Simulator &sim_;
    TopologyKind kind_;
    double bytesPerSecond_;
    sim::SimTime latency_;
    std::map<std::pair<std::size_t, std::size_t>,
             std::unique_ptr<gpu::PeerLink>>
        links_;
    std::int64_t peerBytes_ = 0;
    std::int64_t peerTransfers_ = 0;
};

} // namespace chameleon::fabric

#endif // CHAMELEON_FABRIC_TRANSFER_TOPOLOGY_H
