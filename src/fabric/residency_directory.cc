#include "fabric/residency_directory.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::fabric {

using model::AdapterId;

void
ResidencyDirectory::onLoadStart(int replica, AdapterId id)
{
    AdapterInfo &info = adapters_[id];
    const auto [it, inserted] = info.holders.emplace(replica, Holding{});
    (void)it;
    CHM_CHECK(inserted, "load start for adapter " << id << " on replica "
                            << replica << " which already holds it");
    ++perReplicaEntries_[replica];
}

void
ResidencyDirectory::onLoadComplete(int replica, AdapterId id)
{
    auto ait = adapters_.find(id);
    CHM_CHECK(ait != adapters_.end(),
              "load complete for unknown adapter " << id);
    auto hit = ait->second.holders.find(replica);
    CHM_CHECK(hit != ait->second.holders.end(),
              "load complete for adapter " << id
                                           << " not held by replica "
                                           << replica);
    CHM_CHECK(hit->second.tier == Tier::Loading,
              "load complete for adapter " << id << " on replica "
                                           << replica
                                           << " which is not loading");
    hit->second.tier = Tier::Resident;
}

void
ResidencyDirectory::onEvict(int replica, AdapterId id)
{
    auto ait = adapters_.find(id);
    CHM_CHECK(ait != adapters_.end(), "evict of unknown adapter " << id);
    auto hit = ait->second.holders.find(replica);
    CHM_CHECK(hit != ait->second.holders.end(),
              "evict of adapter " << id << " not held by replica "
                                  << replica);
    CHM_CHECK(hit->second.refcount == 0,
              "evict of adapter " << id << " on replica " << replica
                                  << " with " << hit->second.refcount
                                  << " running references");
    ait->second.holders.erase(hit);
    --perReplicaEntries_[replica];
    // The AdapterInfo stays: heat survives eviction (a re-loaded hot
    // adapter is still hot).
}

void
ResidencyDirectory::onAcquire(int replica, AdapterId id, sim::SimTime now)
{
    auto ait = adapters_.find(id);
    CHM_CHECK(ait != adapters_.end(),
              "acquire of unknown adapter " << id);
    auto hit = ait->second.holders.find(replica);
    CHM_CHECK(hit != ait->second.holders.end(),
              "acquire of adapter " << id << " not held by replica "
                                    << replica);
    ++hit->second.refcount;
    hit->second.lastUse = now;
    ++ait->second.uses;
    ait->second.lastUse = now;
}

void
ResidencyDirectory::onRelease(int replica, AdapterId id)
{
    auto ait = adapters_.find(id);
    CHM_CHECK(ait != adapters_.end(),
              "release of unknown adapter " << id);
    auto hit = ait->second.holders.find(replica);
    CHM_CHECK(hit != ait->second.holders.end(),
              "release of adapter " << id << " not held by replica "
                                    << replica);
    // Refcounts never go negative: a double release dies here before
    // the directory can disagree with the cache (death-tested).
    CHM_CHECK(hit->second.refcount > 0,
              "release without acquire for adapter "
                  << id << " on replica " << replica);
    --hit->second.refcount;
}

bool
ResidencyDirectory::isResident(AdapterId id, std::size_t replica) const
{
    const Holding *h = holding(id, replica);
    return h != nullptr && h->tier == Tier::Resident;
}

const ResidencyDirectory::Holding *
ResidencyDirectory::holding(AdapterId id, std::size_t replica) const
{
    auto ait = adapters_.find(id);
    if (ait == adapters_.end())
        return nullptr;
    auto hit = ait->second.holders.find(static_cast<int>(replica));
    return hit == ait->second.holders.end() ? nullptr : &hit->second;
}

void
ResidencyDirectory::residentReplicas(AdapterId id,
                                     std::vector<std::size_t> *out) const
{
    out->clear();
    auto ait = adapters_.find(id);
    if (ait == adapters_.end())
        return;
    for (const auto &[replica, h] : ait->second.holders) {
        if (h.tier == Tier::Resident)
            out->push_back(static_cast<std::size_t>(replica));
    }
}

bool
ResidencyDirectory::holds(AdapterId id, std::size_t replica) const
{
    return holding(id, replica) != nullptr;
}

std::size_t
ResidencyDirectory::replicaEntryCount(std::size_t replica) const
{
    auto it = perReplicaEntries_.find(static_cast<int>(replica));
    if (it == perReplicaEntries_.end())
        return 0;
    CHM_CHECK(it->second >= 0, "negative entry count for replica "
                                   << replica);
    return static_cast<std::size_t>(it->second);
}

std::vector<AdapterId>
ResidencyDirectory::hotSort(std::vector<AdapterId> ids,
                            std::size_t k) const
{
    std::sort(ids.begin(), ids.end(),
              [this](AdapterId a, AdapterId b) {
                  const AdapterInfo &ia = adapters_.at(a);
                  const AdapterInfo &ib = adapters_.at(b);
                  if (ia.uses != ib.uses)
                      return ia.uses > ib.uses;
                  if (ia.lastUse != ib.lastUse)
                      return ia.lastUse > ib.lastUse;
                  return a < b;
              });
    if (ids.size() > k)
        ids.resize(k);
    return ids;
}

std::vector<AdapterId>
ResidencyDirectory::hottest(std::size_t k) const
{
    std::vector<AdapterId> ids;
    for (const auto &[id, info] : adapters_) {
        if (info.uses > 0)
            ids.push_back(id);
    }
    return hotSort(std::move(ids), k);
}

std::vector<AdapterId>
ResidencyDirectory::hottestIdleOn(std::size_t replica,
                                  std::size_t k) const
{
    std::vector<AdapterId> ids;
    for (const auto &[id, info] : adapters_) {
        auto hit = info.holders.find(static_cast<int>(replica));
        if (hit == info.holders.end())
            continue;
        if (hit->second.tier == Tier::Resident &&
            hit->second.refcount == 0) {
            ids.push_back(id);
        }
    }
    return hotSort(std::move(ids), k);
}

std::size_t
ResidencyDirectory::totalEntries() const
{
    std::size_t total = 0;
    for (const auto &[id, info] : adapters_)
        total += info.holders.size();
    return total;
}

} // namespace chameleon::fabric
