/**
 * @file
 * The cache fabric: residency directory + peer-to-peer migration.
 *
 * Ties the cluster's per-replica adapter caches into one fabric. The
 * ResidencyDirectory (kept coherent by cache-manager callbacks) gives
 * routers true cache-hit routing; the TransferTopology models the
 * peer links hot adapters migrate over when the cluster changes shape:
 *
 *   scale-up  a freshly built replica warms the cluster's top-k hot
 *             adapters from peer caches instead of host PCIe, wired in
 *             parallel with its serving::ColdStartModel boot window;
 *   drain     a drained replica pushes its hottest idle cache entries
 *             to the active replica least likely to hold them, so the
 *             warm state survives the scale-down;
 *   remap     after the routable set changes (ring remap), the top-k
 *             hot adapters each get at least one active holder.
 *
 * A migration is: pick a Resident source holder, reserve the (src,
 * dst) peer link, and peerAdmit the weights at the destination cache
 * manager — which flips them Resident at the transfer's completion
 * through the calendar queue, so every migration orders by (time,
 * seq) like any other event. Destinations decline under memory
 * pressure (watermark-respecting), in which case nothing is reserved.
 *
 * With MigrationPolicy::Off and no directory-backed router the Runner
 * never constructs a fabric, so non-migrating runs execute the
 * pre-fabric event streams byte-for-byte (the golden pins hold).
 */

#ifndef CHAMELEON_FABRIC_CACHE_FABRIC_H
#define CHAMELEON_FABRIC_CACHE_FABRIC_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fabric/residency_directory.h"
#include "fabric/transfer_topology.h"
#include "model/adapter.h"
#include "serving/adapter_manager.h"
#include "simkit/simulator.h"

namespace chameleon::obs {
class TraceRecorder;
}

namespace chameleon::fabric {

/** Which cluster reshapes trigger peer migration. */
enum class MigrationPolicy {
    Off,     ///< No migration (and no fabric unless a router needs it).
    ScaleUp, ///< Peer-warm freshly built replicas only.
    Drain,   ///< Push a drained replica's hot cache to survivors only.
    Remap,   ///< Re-home hot adapters after routable-set changes only.
    All,     ///< Every trigger.
};

/** Canonical short name (also accepted by migrationPolicyByName). */
const char *migrationPolicyName(MigrationPolicy policy);

/** Parse a policy name; returns false on unknown names. */
bool migrationPolicyByName(const std::string &name, MigrationPolicy *out);

/** Comma-separated policy names, for error messages. */
const char *migrationPolicyNames();

/** Fabric knobs (mirrored by core::FabricSpec / spec JSON). */
struct FabricConfig
{
    MigrationPolicy migration = MigrationPolicy::Off;
    TopologyKind topology = TopologyKind::PciePeer;
    /** Hot adapters considered per migration trigger. */
    std::size_t topK = 4;
};

/** Cluster-wide residency directory + migration planner. */
class CacheFabric
{
  public:
    CacheFabric(sim::Simulator &simulator, const model::AdapterPool &pool,
                FabricConfig config);

    const FabricConfig &config() const { return config_; }
    ResidencyDirectory &directory() { return directory_; }
    const ResidencyDirectory &directory() const { return directory_; }
    TransferTopology &topology() { return topology_; }

    /**
     * Wire replica `index`'s adapter manager into the directory and
     * register it as a migration endpoint. The cluster calls this for
     * every engine it builds, before the engine serves anything.
     */
    void attachReplica(std::size_t index,
                       serving::AdapterManager &manager);

    // --- cluster lifecycle hooks (DataParallelCluster calls these) ---
    /** A scale-up built replica `index`: peer-warm the global top-k. */
    void onScaleUp(std::size_t index, sim::SimTime now);
    /** Replica `index` drained; `active` are the routable engine
     * indices after the drain. Pushes its hot idle cache out. */
    void onDrain(std::size_t index,
                 const std::vector<std::size_t> &active, sim::SimTime now);
    /** The routable set changed (ring remap): ensure each globally hot
     * adapter has at least one active holder. */
    void onRemap(const std::vector<std::size_t> &active, sim::SimTime now);

    /** Migrations actually started (declined admits excluded). */
    std::int64_t migrations() const { return migrations_; }
    /** Peer traffic the migrations moved. */
    std::int64_t peerBytes() const { return topology_.peerBytes(); }
    std::int64_t peerTransfers() const
    {
        return topology_.peerTransfers();
    }

    /** Record migration spans on the cluster Control lane. */
    void setTraceRecorder(obs::TraceRecorder *recorder)
    {
        trace_ = recorder;
    }

  private:
    bool triggers(MigrationPolicy trigger) const;
    /** Move `id` from `src` to `dst` if dst lacks it and admits it. */
    bool migrate(model::AdapterId id, std::size_t src, std::size_t dst,
                 sim::SimTime now);
    /** Lowest-index Resident holder of `id`, excluding `dst`. */
    bool pickSource(model::AdapterId id, std::size_t dst,
                    std::size_t *src) const;
    /** Active replica with the fewest directory entries not holding
     * `id` (ties to the lowest engine index). */
    bool pickDestination(model::AdapterId id,
                         const std::vector<std::size_t> &active,
                         std::size_t exclude, std::size_t *dst) const;

    sim::Simulator &sim_;
    const model::AdapterPool &pool_;
    FabricConfig config_;
    ResidencyDirectory directory_;
    TransferTopology topology_;
    /** engine index -> manager (migration endpoints). */
    std::map<std::size_t, serving::AdapterManager *> managers_;
    std::int64_t migrations_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
};

} // namespace chameleon::fabric

#endif // CHAMELEON_FABRIC_CACHE_FABRIC_H
