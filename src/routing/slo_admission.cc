#include "routing/slo_admission.h"

#include <limits>

#include "obs/trace_recorder.h"
#include "simkit/check.h"
#include "simkit/simulator.h"

namespace chameleon::routing {

SloAdmissionRouter::SloAdmissionRouter(std::unique_ptr<Router> inner,
                                       std::vector<double> sloMultipliers)
    : inner_(std::move(inner)),
      sloMultipliers_(std::move(sloMultipliers))
{
    CHM_CHECK(inner_ != nullptr, "slo admission needs a base policy");
    for (const double m : sloMultipliers_)
        CHM_CHECK(m > 0.0, "slo multipliers must be > 0");
}

bool
SloAdmissionRouter::sloCritical(workload::TenantId tenant) const
{
    if (tenant < 0 ||
        tenant >= static_cast<workload::TenantId>(sloMultipliers_.size()))
        return false; // beyond the table: the default multiplier, 1.0
    return sloMultipliers_[static_cast<std::size_t>(tenant)] < 1.0;
}

std::size_t
SloAdmissionRouter::route(const workload::Request &request,
                          const ClusterView &view)
{
    if (!sloCritical(request.tenant))
        return inner_->route(request, view);

    const std::size_t n = view.replicaCount();
    CHM_CHECK(n > 0, "routing with no active replicas");
    // Fastest effective-rate replica; among equally fast ones take the
    // shorter capacity-normalised queue, then the lower index — the
    // same deterministic tie-breaks the load-comparing policies use.
    const std::vector<double> &weights = view.serviceWeights();
    std::size_t best = 0;
    double bestWeight = -std::numeric_limits<double>::infinity();
    double bestLoad = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
        const double weight = weights[i];
        if (weight < bestWeight)
            continue;
        const double load =
            static_cast<double>(view.outstanding(i)) / weight;
        if (weight > bestWeight || load < bestLoad) {
            best = i;
            bestWeight = weight;
            bestLoad = load;
        }
    }
    ++steered_;
    if (trace_ != nullptr) {
        trace_->instant(obs::kClusterPid, obs::Lane::Control,
                        "route_slo", clock_->now(),
                        {{"request", request.id},
                         {"tenant", request.tenant},
                         {"replica", best}});
    }
    return best;
}

void
SloAdmissionRouter::onReplicaCountChanged(std::size_t activeReplicas)
{
    inner_->onReplicaCountChanged(activeReplicas);
}

void
SloAdmissionRouter::setTraceRecorder(obs::TraceRecorder *recorder,
                                     const sim::Simulator *clock)
{
    Router::setTraceRecorder(recorder, clock);
    inner_->setTraceRecorder(recorder, clock);
}

} // namespace chameleon::routing
