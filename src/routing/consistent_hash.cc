#include "routing/consistent_hash.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"
#include "simkit/rng.h"

namespace chameleon::routing {

ConsistentHashRing::ConsistentHashRing(int virtualNodes)
    : virtualNodes_(virtualNodes)
{
    CHM_CHECK(virtualNodes >= 1, "ring needs at least one virtual node");
}

void
ConsistentHashRing::addReplica(std::size_t replica, double weight)
{
    CHM_CHECK(weight > 0.0, "ring weight must be positive, got " << weight);
    if (contains(replica))
        return;
    const auto at =
        std::lower_bound(members_.begin(), members_.end(), replica);
    weights_.insert(weights_.begin() + (at - members_.begin()), weight);
    members_.insert(at, replica);
    // A fractional weight keeps a prefix of the replica's weight-1.0
    // points (point hashes depend only on (replica, vnode)), so
    // re-weighting a replica never moves another replica's keys.
    const int points = std::max(
        1, static_cast<int>(std::lround(virtualNodes_ * weight)));
    ring_.reserve(ring_.size() + static_cast<std::size_t>(points));
    for (int v = 0; v < points; ++v) {
        // Point hashes depend only on (replica, vnode), so a replica's
        // points are identical no matter when it joins the ring. The
        // double mix with a salt domain-separates ring points from key
        // hashes — without it, small integer keys (adapter ids) can
        // land exactly on a replica's points and all collapse onto it.
        const std::uint64_t h = sim::mix64(
            sim::mix64((static_cast<std::uint64_t>(replica) << 32) |
                      static_cast<std::uint64_t>(v)) ^
            0x5851F42D4C957F2Dull);
        ring_.push_back(Point{h, replica});
    }
    std::sort(ring_.begin(), ring_.end());
}

void
ConsistentHashRing::removeReplica(std::size_t replica)
{
    auto it = std::lower_bound(members_.begin(), members_.end(), replica);
    if (it == members_.end() || *it != replica)
        return;
    weights_.erase(weights_.begin() + (it - members_.begin()));
    members_.erase(it);
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [replica](const Point &p) {
                                   return p.replica == replica;
                               }),
                ring_.end());
}

void
ConsistentHashRing::resize(std::size_t count)
{
    while (!members_.empty() && members_.back() >= count)
        removeReplica(members_.back());
    for (std::size_t i = 0; i < count; ++i)
        addReplica(i);
}

void
ConsistentHashRing::resizeWeighted(const std::vector<double> &weights)
{
    while (!members_.empty() && members_.back() >= weights.size())
        removeReplica(members_.back());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto it =
            std::lower_bound(members_.begin(), members_.end(), i);
        if (it != members_.end() && *it == i) {
            if (weights_[static_cast<std::size_t>(
                    it - members_.begin())] == weights[i])
                continue; // unchanged: keep the exact ring points
            removeReplica(i);
        }
        addReplica(i, weights[i]);
    }
}

bool
ConsistentHashRing::contains(std::size_t replica) const
{
    return std::binary_search(members_.begin(), members_.end(), replica);
}

std::size_t
ConsistentHashRing::owner(std::uint64_t key) const
{
    CHM_CHECK(!ring_.empty(), "lookup on an empty ring");
    const std::uint64_t h = sim::mix64(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t v) { return p.hash < v; });
    if (it == ring_.end())
        it = ring_.begin(); // wrap around
    return it->replica;
}

std::vector<std::size_t>
ConsistentHashRing::preferenceList(std::uint64_t key,
                                   std::size_t count) const
{
    CHM_CHECK(!ring_.empty(), "lookup on an empty ring");
    count = std::min(count, members_.size());
    std::vector<std::size_t> out;
    out.reserve(count);
    const std::uint64_t h = sim::mix64(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t v) { return p.hash < v; });
    for (std::size_t step = 0; step < ring_.size() && out.size() < count;
         ++step, ++it) {
        if (it == ring_.end())
            it = ring_.begin();
        if (std::find(out.begin(), out.end(), it->replica) == out.end())
            out.push_back(it->replica);
    }
    return out;
}

} // namespace chameleon::routing
