#include "routing/consistent_hash.h"

#include <algorithm>

#include "simkit/check.h"
#include "simkit/rng.h"

namespace chameleon::routing {

ConsistentHashRing::ConsistentHashRing(int virtualNodes)
    : virtualNodes_(virtualNodes)
{
    CHM_CHECK(virtualNodes >= 1, "ring needs at least one virtual node");
}

void
ConsistentHashRing::addReplica(std::size_t replica)
{
    if (contains(replica))
        return;
    members_.insert(
        std::lower_bound(members_.begin(), members_.end(), replica),
        replica);
    ring_.reserve(ring_.size() + static_cast<std::size_t>(virtualNodes_));
    for (int v = 0; v < virtualNodes_; ++v) {
        // Point hashes depend only on (replica, vnode), so a replica's
        // points are identical no matter when it joins the ring. The
        // double mix with a salt domain-separates ring points from key
        // hashes — without it, small integer keys (adapter ids) can
        // land exactly on a replica's points and all collapse onto it.
        const std::uint64_t h = sim::mix64(
            sim::mix64((static_cast<std::uint64_t>(replica) << 32) |
                      static_cast<std::uint64_t>(v)) ^
            0x5851F42D4C957F2Dull);
        ring_.push_back(Point{h, replica});
    }
    std::sort(ring_.begin(), ring_.end());
}

void
ConsistentHashRing::removeReplica(std::size_t replica)
{
    auto it = std::lower_bound(members_.begin(), members_.end(), replica);
    if (it == members_.end() || *it != replica)
        return;
    members_.erase(it);
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [replica](const Point &p) {
                                   return p.replica == replica;
                               }),
                ring_.end());
}

void
ConsistentHashRing::resize(std::size_t count)
{
    while (!members_.empty() && members_.back() >= count)
        removeReplica(members_.back());
    for (std::size_t i = 0; i < count; ++i)
        addReplica(i);
}

bool
ConsistentHashRing::contains(std::size_t replica) const
{
    return std::binary_search(members_.begin(), members_.end(), replica);
}

std::size_t
ConsistentHashRing::owner(std::uint64_t key) const
{
    CHM_CHECK(!ring_.empty(), "lookup on an empty ring");
    const std::uint64_t h = sim::mix64(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t v) { return p.hash < v; });
    if (it == ring_.end())
        it = ring_.begin(); // wrap around
    return it->replica;
}

std::vector<std::size_t>
ConsistentHashRing::preferenceList(std::uint64_t key,
                                   std::size_t count) const
{
    CHM_CHECK(!ring_.empty(), "lookup on an empty ring");
    count = std::min(count, members_.size());
    std::vector<std::size_t> out;
    out.reserve(count);
    const std::uint64_t h = sim::mix64(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t v) { return p.hash < v; });
    for (std::size_t step = 0; step < ring_.size() && out.size() < count;
         ++step, ++it) {
        if (it == ring_.end())
            it = ring_.begin();
        if (std::find(out.begin(), out.end(), it->replica) == out.end())
            out.push_back(it->replica);
    }
    return out;
}

} // namespace chameleon::routing
