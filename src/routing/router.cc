#include "routing/router.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "obs/trace_recorder.h"
#include "routing/consistent_hash.h"
#include "simkit/check.h"
#include "simkit/rng.h"
#include "simkit/simulator.h"

namespace chameleon::routing {

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::RoundRobin: return "rr";
      case RouterPolicy::JoinShortestQueue: return "jsq";
      case RouterPolicy::PowerOfTwoChoices: return "p2c";
      case RouterPolicy::AdapterAffinity: return "affinity";
      case RouterPolicy::AdapterAffinityCacheAware: return "affinity-cache";
      case RouterPolicy::AdapterAffinityDirectory: return "affinity-dir";
    }
    return "?";
}

const char *
routerPolicyNames()
{
    return "rr, jsq, p2c, affinity, affinity-cache, affinity-dir";
}

bool
routerPolicyByName(const std::string &name, RouterPolicy *out)
{
    if (name == "rr" || name == "round-robin")
        *out = RouterPolicy::RoundRobin;
    else if (name == "jsq")
        *out = RouterPolicy::JoinShortestQueue;
    else if (name == "p2c")
        *out = RouterPolicy::PowerOfTwoChoices;
    else if (name == "affinity")
        *out = RouterPolicy::AdapterAffinity;
    else if (name == "affinity-cache")
        *out = RouterPolicy::AdapterAffinityCacheAware;
    else if (name == "affinity-dir")
        *out = RouterPolicy::AdapterAffinityDirectory;
    else
        return false;
    return true;
}

namespace {

/**
 * Capacity-normalised queue depth: outstanding requests divided by the
 * replica's service weight, so a queued request on a half-speed
 * replica counts like two on a full-speed one. With homogeneous
 * weights (exactly 1.0) this is the plain outstanding count and every
 * comparison below reduces to the unweighted policy.
 */
double
weightedLoad(const ClusterView &view, const std::vector<double> &weights,
             std::size_t i)
{
    return static_cast<double>(view.outstanding(i)) / weights[i];
}

/**
 * One dispatch decision's flattened load view. Outstanding counts and
 * weights are read once per replica into a reused buffer, so policies
 * that compare loads several times per decision (the affinity router's
 * residency scan + spill walk + fallback) stop re-querying the view.
 * Nothing dispatches between the snapshot and the decision, and every
 * entry is computed with the exact expression the per-call path used,
 * so decisions are bit-identical.
 */
class LoadSnapshot
{
  public:
    void
    refresh(const ClusterView &view)
    {
        const std::vector<double> &weights = view.serviceWeights();
        const std::size_t n = weights.size();
        loads_.resize(n);
        totalOutstanding_ = 0;
        totalWeight_ = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::int64_t out = view.outstanding(i);
            totalOutstanding_ += out;
            totalWeight_ += weights[i];
            loads_[i] = static_cast<double>(out) / weights[i];
        }
    }

    double load(std::size_t i) const { return loads_[i]; }

    /** Least-loaded replica; ties to the lowest index (deterministic). */
    std::size_t
    leastLoaded() const
    {
        std::size_t best = 0;
        double bestLoad = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < loads_.size(); ++i) {
            if (loads_[i] < bestLoad) {
                best = i;
                bestLoad = loads_[i];
            }
        }
        return best;
    }

    /** Weighted cluster-mean load (spill-bound numerator/denominator). */
    double
    meanLoad() const
    {
        return static_cast<double>(totalOutstanding_) / totalWeight_;
    }

  private:
    std::vector<double> loads_;
    std::int64_t totalOutstanding_ = 0;
    double totalWeight_ = 0.0;
};

class RoundRobinRouter final : public Router
{
  public:
    const char *name() const override { return "rr"; }

    std::size_t
    route(const workload::Request &, const ClusterView &view) override
    {
        const std::size_t n = view.replicaCount();
        CHM_CHECK(n > 0, "routing with no active replicas");
        const std::size_t pick = next_ % n;
        next_ = (pick + 1) % n;
        return pick;
    }

    void
    onReplicaCountChanged(std::size_t active) override
    {
        if (active > 0)
            next_ %= active;
    }

  private:
    std::size_t next_ = 0;
};

class JoinShortestQueueRouter final : public Router
{
  public:
    const char *name() const override { return "jsq"; }

    std::size_t
    route(const workload::Request &, const ClusterView &view) override
    {
        CHM_CHECK(view.replicaCount() > 0, "routing with no active replicas");
        snapshot_.refresh(view);
        return snapshot_.leastLoaded();
    }

  private:
    LoadSnapshot snapshot_; // reused across decisions (no per-dispatch allocs)
};

class PowerOfTwoChoicesRouter final : public Router
{
  public:
    // The seed is remixed so the sampling stream is decorrelated from
    // other components seeded with the same user-facing value (the
    // trace generator feeds sim::Rng the raw seed).
    explicit PowerOfTwoChoicesRouter(std::uint64_t seed)
        : rng_(sim::mix64(seed ^ 0x726F757465720000ull)) // "router"
    {
    }

    const char *name() const override { return "p2c"; }

    std::size_t
    route(const workload::Request &, const ClusterView &view) override
    {
        const std::size_t n = view.replicaCount();
        CHM_CHECK(n > 0, "routing with no active replicas");
        if (n == 1)
            return 0;
        std::size_t a = rng_.nextBelow(n);
        std::size_t b = rng_.nextBelow(n - 1);
        if (b >= a)
            ++b; // second draw over the remaining n-1 replicas
        // Two probes only — the whole point of p2c is O(1) decisions,
        // so no full snapshot; the weight vector is the cached one.
        const std::vector<double> &weights = view.serviceWeights();
        const double loadA = weightedLoad(view, weights, a);
        const double loadB = weightedLoad(view, weights, b);
        if (loadA == loadB)
            return std::min(a, b);
        return loadA < loadB ? a : b;
    }

  private:
    sim::Rng rng_;
};

class AdapterAffinityRouter final : public Router
{
  public:
    /** How the router learns residency before falling back to the
     * hash ring: not at all, by scanning every replica's cache, or by
     * one residency-directory lookup. */
    enum class Mode { Hash, Scan, Directory };

    AdapterAffinityRouter(const RouterConfig &config, Mode mode)
        : config_(config), mode_(mode), ring_(config.virtualNodes)
    {
    }

    const char *
    name() const override
    {
        switch (mode_) {
          case Mode::Hash: return "affinity";
          case Mode::Scan: return "affinity-cache";
          case Mode::Directory: return "affinity-dir";
        }
        return "?";
    }

    std::size_t
    route(const workload::Request &request,
          const ClusterView &view) override
    {
        const std::size_t n = view.replicaCount();
        CHM_CHECK(n > 0, "routing with no active replicas");
        if (ringDirty_ || ring_.replicaCount() != n)
            syncRing(view, n);
        snapshot_.refresh(view);
        // Base-model requests have no affinity; balance them.
        if (request.adapter == model::kNoAdapter)
            return snapshot_.leastLoaded();

        const double limit = spillLimit();
        if (mode_ == Mode::Directory) {
            // True cache-hit routing: one directory lookup yields the
            // holders; pick the least loaded under the spill bound.
            // Same decision the Scan mode reaches by interrogating all
            // n replicas, at O(holders) per request.
            view.residentReplicas(request.adapter, &holders_);
            std::size_t best = n;
            double bestLoad = std::numeric_limits<double>::infinity();
            for (const std::size_t i : holders_) {
                if (i >= n)
                    continue; // stale view index: never dispatch to it
                const double load = snapshot_.load(i);
                if (load < bestLoad) {
                    best = i;
                    bestLoad = load;
                }
            }
            if (best < n && bestLoad <= limit) {
                if (trace_ != nullptr) {
                    trace_->instant(obs::kClusterPid,
                                    obs::Lane::Control,
                                    "route_dir_hit", clock_->now(),
                                    {{"adapter", request.adapter},
                                     {"replica", best}});
                }
                return best;
            }
        } else if (mode_ == Mode::Scan) {
            // A replica that already holds the adapter serves it with
            // zero loading cost even if the hash owner differs (e.g.
            // residency left over from spillover or a ring resize).
            std::size_t best = n;
            double bestLoad = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < n; ++i) {
                if (!view.adapterResident(i, request.adapter))
                    continue;
                const double load = snapshot_.load(i);
                if (load < bestLoad) {
                    best = i;
                    bestLoad = load;
                }
            }
            if (best < n && bestLoad <= limit) {
                if (trace_ != nullptr) {
                    trace_->instant(obs::kClusterPid,
                                    obs::Lane::Control,
                                    "route_cache_hit", clock_->now(),
                                    {{"adapter", request.adapter},
                                     {"replica", best}});
                }
                return best;
            }
        }
        // Hash path: the owner serves unless overloaded (the common
        // case — avoid materialising the preference list for it).
        const auto key = static_cast<std::uint64_t>(request.adapter);
        const std::size_t owner = ring_.owner(key);
        if (snapshot_.load(owner) <= limit)
            return owner;
        // Spillover: walk the owner's ring successors.
        const auto prefs = ring_.preferenceList(key, n);
        for (const std::size_t replica : prefs) {
            if (snapshot_.load(replica) <= limit) {
                if (trace_ != nullptr) {
                    trace_->instant(obs::kClusterPid,
                                    obs::Lane::Control, "route_spill",
                                    clock_->now(),
                                    {{"adapter", request.adapter},
                                     {"owner", owner},
                                     {"replica", replica}});
                }
                return replica;
            }
        }
        // Everything is overloaded; degrade to least-loaded.
        const std::size_t fallback = snapshot_.leastLoaded();
        if (trace_ != nullptr) {
            trace_->instant(obs::kClusterPid, obs::Lane::Control,
                            "route_spill", clock_->now(),
                            {{"adapter", request.adapter},
                             {"owner", owner},
                             {"replica", fallback}});
        }
        return fallback;
    }

    void
    onReplicaCountChanged(std::size_t active) override
    {
        // The ring rebuild needs the new replicas' service weights,
        // which only the ClusterView carries; defer to the next route.
        (void)active;
        ringDirty_ = true;
    }

  private:
    /**
     * Rebuild the ring over the active set, each replica's
     * virtual-node share scaled by its service weight so faster
     * replicas own proportionally more adapters. Unchanged replicas
     * keep their exact ring points (resizeWeighted is incremental).
     */
    void
    syncRing(const ClusterView &view, std::size_t n)
    {
        (void)n;
        ring_.resizeWeighted(view.serviceWeights());
        ringDirty_ = false;
    }

    /**
     * Bounded-load spill threshold in capacity-normalised queue depth:
     * spillLoadFactor x the weighted cluster-mean load (total
     * outstanding over total service weight) plus spillMargin. With
     * homogeneous weights this is exactly the unweighted mean-based
     * bound.
     */
    double
    spillLimit() const
    {
        return config_.spillLoadFactor * snapshot_.meanLoad() +
               static_cast<double>(config_.spillMargin);
    }

    RouterConfig config_;
    Mode mode_;
    ConsistentHashRing ring_;
    bool ringDirty_ = false;
    LoadSnapshot snapshot_; // reused across decisions
    std::vector<std::size_t> holders_; // directory-lookup scratch
};

} // namespace

std::unique_ptr<Router>
makeRouter(RouterPolicy policy, const RouterConfig &config)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RouterPolicy::JoinShortestQueue:
        return std::make_unique<JoinShortestQueueRouter>();
      case RouterPolicy::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoChoicesRouter>(config.seed);
      case RouterPolicy::AdapterAffinity:
        return std::make_unique<AdapterAffinityRouter>(
            config, AdapterAffinityRouter::Mode::Hash);
      case RouterPolicy::AdapterAffinityCacheAware:
        return std::make_unique<AdapterAffinityRouter>(
            config, AdapterAffinityRouter::Mode::Scan);
      case RouterPolicy::AdapterAffinityDirectory:
        return std::make_unique<AdapterAffinityRouter>(
            config, AdapterAffinityRouter::Mode::Directory);
    }
    CHM_PANIC("unknown router policy");
}

bool
operator==(const RouterConfig &a, const RouterConfig &b)
{
    return a.seed == b.seed && a.virtualNodes == b.virtualNodes &&
           a.spillLoadFactor == b.spillLoadFactor &&
           a.spillMargin == b.spillMargin &&
           a.sloAdmission == b.sloAdmission;
}

} // namespace chameleon::routing
