#include "routing/router.h"

#include <algorithm>
#include <limits>

#include "routing/consistent_hash.h"
#include "simkit/check.h"
#include "simkit/rng.h"

namespace chameleon::routing {

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::RoundRobin: return "rr";
      case RouterPolicy::JoinShortestQueue: return "jsq";
      case RouterPolicy::PowerOfTwoChoices: return "p2c";
      case RouterPolicy::AdapterAffinity: return "affinity";
      case RouterPolicy::AdapterAffinityCacheAware: return "affinity-cache";
    }
    return "?";
}

const char *
routerPolicyNames()
{
    return "rr, jsq, p2c, affinity, affinity-cache";
}

bool
routerPolicyByName(const std::string &name, RouterPolicy *out)
{
    if (name == "rr" || name == "round-robin")
        *out = RouterPolicy::RoundRobin;
    else if (name == "jsq")
        *out = RouterPolicy::JoinShortestQueue;
    else if (name == "p2c")
        *out = RouterPolicy::PowerOfTwoChoices;
    else if (name == "affinity")
        *out = RouterPolicy::AdapterAffinity;
    else if (name == "affinity-cache")
        *out = RouterPolicy::AdapterAffinityCacheAware;
    else
        return false;
    return true;
}

namespace {

/** Least-loaded replica; ties go to the lowest index (deterministic). */
std::size_t
leastLoaded(const ClusterView &view)
{
    const std::size_t n = view.replicaCount();
    std::size_t best = 0;
    std::int64_t bestLoad = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t load = view.outstanding(i);
        if (load < bestLoad) {
            best = i;
            bestLoad = load;
        }
    }
    return best;
}

class RoundRobinRouter final : public Router
{
  public:
    const char *name() const override { return "rr"; }

    std::size_t
    route(const workload::Request &, const ClusterView &view) override
    {
        const std::size_t n = view.replicaCount();
        CHM_CHECK(n > 0, "routing with no active replicas");
        const std::size_t pick = next_ % n;
        next_ = (pick + 1) % n;
        return pick;
    }

    void
    onReplicaCountChanged(std::size_t active) override
    {
        if (active > 0)
            next_ %= active;
    }

  private:
    std::size_t next_ = 0;
};

class JoinShortestQueueRouter final : public Router
{
  public:
    const char *name() const override { return "jsq"; }

    std::size_t
    route(const workload::Request &, const ClusterView &view) override
    {
        CHM_CHECK(view.replicaCount() > 0, "routing with no active replicas");
        return leastLoaded(view);
    }
};

class PowerOfTwoChoicesRouter final : public Router
{
  public:
    // The seed is remixed so the sampling stream is decorrelated from
    // other components seeded with the same user-facing value (the
    // trace generator feeds sim::Rng the raw seed).
    explicit PowerOfTwoChoicesRouter(std::uint64_t seed)
        : rng_(sim::mix64(seed ^ 0x726F757465720000ull)) // "router"
    {
    }

    const char *name() const override { return "p2c"; }

    std::size_t
    route(const workload::Request &, const ClusterView &view) override
    {
        const std::size_t n = view.replicaCount();
        CHM_CHECK(n > 0, "routing with no active replicas");
        if (n == 1)
            return 0;
        std::size_t a = rng_.nextBelow(n);
        std::size_t b = rng_.nextBelow(n - 1);
        if (b >= a)
            ++b; // second draw over the remaining n-1 replicas
        if (view.outstanding(a) == view.outstanding(b))
            return std::min(a, b);
        return view.outstanding(a) < view.outstanding(b) ? a : b;
    }

  private:
    sim::Rng rng_;
};

class AdapterAffinityRouter final : public Router
{
  public:
    AdapterAffinityRouter(const RouterConfig &config, bool cacheAware)
        : config_(config), cacheAware_(cacheAware),
          ring_(config.virtualNodes)
    {
    }

    const char *
    name() const override
    {
        return cacheAware_ ? "affinity-cache" : "affinity";
    }

    std::size_t
    route(const workload::Request &request,
          const ClusterView &view) override
    {
        const std::size_t n = view.replicaCount();
        CHM_CHECK(n > 0, "routing with no active replicas");
        if (ring_.replicaCount() != n)
            ring_.resize(n);
        // Base-model requests have no affinity; balance them.
        if (request.adapter == model::kNoAdapter)
            return leastLoaded(view);

        const std::int64_t limit = spillLimit(view, n);
        if (cacheAware_) {
            // A replica that already holds the adapter serves it with
            // zero loading cost even if the hash owner differs (e.g.
            // residency left over from spillover or a ring resize).
            std::size_t best = n;
            std::int64_t bestLoad =
                std::numeric_limits<std::int64_t>::max();
            for (std::size_t i = 0; i < n; ++i) {
                if (!view.adapterResident(i, request.adapter))
                    continue;
                const std::int64_t load = view.outstanding(i);
                if (load < bestLoad) {
                    best = i;
                    bestLoad = load;
                }
            }
            if (best < n && bestLoad <= limit)
                return best;
        }
        // Hash path: the owner serves unless overloaded (the common
        // case — avoid materialising the preference list for it).
        const auto key = static_cast<std::uint64_t>(request.adapter);
        const std::size_t owner = ring_.owner(key);
        if (view.outstanding(owner) <= limit)
            return owner;
        // Spillover: walk the owner's ring successors.
        const auto prefs = ring_.preferenceList(key, n);
        for (const std::size_t replica : prefs) {
            if (view.outstanding(replica) <= limit)
                return replica;
        }
        // Everything is overloaded; degrade to least-loaded.
        return leastLoaded(view);
    }

    void
    onReplicaCountChanged(std::size_t active) override
    {
        if (active > 0)
            ring_.resize(active);
    }

  private:
    std::int64_t
    spillLimit(const ClusterView &view, std::size_t n) const
    {
        std::int64_t total = 0;
        for (std::size_t i = 0; i < n; ++i)
            total += view.outstanding(i);
        const double mean =
            static_cast<double>(total) / static_cast<double>(n);
        return static_cast<std::int64_t>(config_.spillLoadFactor * mean) +
               config_.spillMargin;
    }

    RouterConfig config_;
    bool cacheAware_;
    ConsistentHashRing ring_;
};

} // namespace

std::unique_ptr<Router>
makeRouter(RouterPolicy policy, const RouterConfig &config)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RouterPolicy::JoinShortestQueue:
        return std::make_unique<JoinShortestQueueRouter>();
      case RouterPolicy::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoChoicesRouter>(config.seed);
      case RouterPolicy::AdapterAffinity:
        return std::make_unique<AdapterAffinityRouter>(config, false);
      case RouterPolicy::AdapterAffinityCacheAware:
        return std::make_unique<AdapterAffinityRouter>(config, true);
    }
    CHM_PANIC("unknown router policy");
}

bool
operator==(const RouterConfig &a, const RouterConfig &b)
{
    return a.seed == b.seed && a.virtualNodes == b.virtualNodes &&
           a.spillLoadFactor == b.spillLoadFactor &&
           a.spillMargin == b.spillMargin;
}

} // namespace chameleon::routing
