/**
 * @file
 * Cluster routing: pluggable global dispatch policies (§4.4 extended).
 *
 * The paper's data-parallel evaluation uses a global round-robin/JSQ
 * dispatcher over replicas with fully replicated adapter caches. This
 * subsystem generalises that into a `Router` interface consulted once
 * per arriving request. Policies only observe the cluster through the
 * read-only `ClusterView`, so they are testable without engines and
 * reusable by any dispatcher.
 *
 * Policies:
 *  - RoundRobin: cycle through active replicas.
 *  - JoinShortestQueue: fewest outstanding requests; ties broken
 *    deterministically by lowest replica index.
 *  - PowerOfTwoChoices: sample two distinct replicas from a seeded
 *    stream, take the less loaded one (Mitzenmacher); near-JSQ balance
 *    at O(1) cost and without herd behaviour.
 *  - AdapterAffinity: consistent hashing over adapter ids with
 *    load-aware spillover, optionally cache-aware (prefer replicas
 *    whose adapter cache already holds the request's adapter). Turns N
 *    replicated caches into an effectively partitioned cache and
 *    eliminates repeated PCIe loads of the same hot adapter on every
 *    replica.
 *
 * All load-comparing policies are capacity-aware: queue depths are
 * divided by ClusterView::serviceWeight before comparison, and the
 * affinity ring gives each replica a virtual-node share proportional
 * to its weight, so a heterogeneous fleet (mixed A40/A100 replicas)
 * places work where the hardware can absorb it. With the default
 * weight of 1.0 everywhere, every decision is identical to the
 * unweighted policy.
 */

#ifndef CHAMELEON_ROUTING_ROUTER_H
#define CHAMELEON_ROUTING_ROUTER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/adapter.h"
#include "workload/request.h"

namespace chameleon::obs {
class TraceRecorder;
}
namespace chameleon::sim {
class Simulator;
}

namespace chameleon::routing {

/** Read-only view of the dispatchable replicas, indexed [0, count). */
class ClusterView
{
  public:
    virtual ~ClusterView() = default;

    /** Number of replicas eligible for dispatch (the active set). */
    virtual std::size_t replicaCount() const = 0;

    /** Outstanding (submitted - finished) requests on replica i. */
    virtual std::int64_t outstanding(std::size_t i) const = 0;

    /** Is the adapter resident in replica i's cache right now? */
    virtual bool adapterResident(std::size_t i,
                                 model::AdapterId id) const = 0;

    /**
     * View indices of every replica whose cache holds `id` resident,
     * ascending, into `out` (cleared first). The directory-backed
     * affinity policy reads this instead of scanning adapterResident
     * over all replicas: views with a residency directory answer in
     * O(holders) per decision. The default derives it from
     * adapterResident — same truth, scan cost — so any view supports
     * the policy.
     */
    virtual void
    residentReplicas(model::AdapterId id,
                     std::vector<std::size_t> *out) const
    {
        out->clear();
        for (std::size_t i = 0; i < replicaCount(); ++i) {
            if (adapterResident(i, id))
                out->push_back(i);
        }
    }

    /**
     * Relative service rate of replica i, normalised so the fastest
     * replica is 1.0. Capacity-aware policies divide queue depths by
     * this weight (one queued request on a half-speed replica counts
     * like two on a full-speed one) and scale the affinity ring's
     * virtual-node share by it. Homogeneous clusters return exactly
     * 1.0 everywhere, which reduces every weighted comparison to the
     * unweighted one — the default for simple views.
     */
    virtual double serviceWeight(std::size_t i) const
    {
        (void)i;
        return 1.0;
    }

    /**
     * The whole weight vector, indexed [0, replicaCount()). Every
     * load-comparing policy reads weights once per replica per
     * decision, so views on the dispatch path override this with a
     * cached vector (DataParallelCluster invalidates on resize and
     * measured-rate updates); the default rebuilds from
     * serviceWeight(i) into a reused scratch buffer. Entries are
     * exactly serviceWeight(i) — same doubles, same divisions — so
     * switching a policy to the vector cannot move a routing decision.
     */
    virtual const std::vector<double> &
    serviceWeights() const
    {
        weightScratch_.resize(replicaCount());
        for (std::size_t i = 0; i < weightScratch_.size(); ++i)
            weightScratch_[i] = serviceWeight(i);
        return weightScratch_;
    }

  private:
    mutable std::vector<double> weightScratch_;
};

/** Selectable dispatch policies. */
enum class RouterPolicy {
    RoundRobin,
    JoinShortestQueue,
    PowerOfTwoChoices,
    AdapterAffinity,
    AdapterAffinityCacheAware,
    /** Affinity with true cache-hit routing: residency comes from the
     * cluster residency directory (ClusterView::residentReplicas, one
     * lookup) instead of the cache-aware per-replica scan. Requires a
     * view backed by the cache fabric's directory to beat the scan;
     * decisions are identical where both see the same residency. */
    AdapterAffinityDirectory,
};

/** Canonical short name (also accepted by routerPolicyByName). */
const char *routerPolicyName(RouterPolicy policy);

/** Parse a policy name; returns false on unknown names. */
bool routerPolicyByName(const std::string &name, RouterPolicy *out);

/** Comma-separated policy names, for error messages. */
const char *routerPolicyNames();

/** Knobs shared by the stochastic and affinity policies. */
struct RouterConfig
{
    /** Seed for the PowerOfTwoChoices sampling stream. */
    std::uint64_t seed = 42;
    /** Virtual nodes per replica on the affinity hash ring. */
    int virtualNodes = 64;
    /**
     * Load-aware spillover: the affinity owner is rejected when its
     * queue exceeds spillLoadFactor x the cluster-mean queue plus
     * spillMargin, and the request walks the ring's preference list
     * instead (bounded-load consistent hashing, cf. Mirrokni et al.).
     * The bound trades cache locality against queue imbalance: loose
     * bounds approach pure hashing (max locality, worst tail), tight
     * bounds approach JSQ (min locality).
     */
    double spillLoadFactor = 1.0;
    std::int64_t spillMargin = 3;
    /**
     * Wrap the policy in the SLO-aware admission decorator
     * (routing/slo_admission.h): requests of SLO-critical tenants
     * (slo_multiplier < 1.0) are steered to the fastest effective-rate
     * replica instead of going through the wrapped policy. Off (the
     * default) leaves every decision to the base policy, bit-identically.
     */
    bool sloAdmission = false;
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const RouterConfig &a, const RouterConfig &b);
inline bool operator!=(const RouterConfig &a, const RouterConfig &b)
{
    return !(a == b);
}

/** A global dispatch policy: picks one replica per arriving request. */
class Router
{
  public:
    virtual ~Router() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the replica for `request` among `view.replicaCount()`
     * active replicas. Must return an index in [0, count).
     */
    virtual std::size_t route(const workload::Request &request,
                              const ClusterView &view) = 0;

    /**
     * The active replica set changed (autoscaling); the active set is
     * always the prefix [0, activeReplicas). Stateful policies resync
     * internal structures (hash ring, cursors) here.
     */
    virtual void
    onReplicaCountChanged(std::size_t activeReplicas)
    {
        (void)activeReplicas;
    }

    /**
     * Attach the span recorder for routing-decision instants. route()
     * has no time argument, so the clock rides along for timestamps;
     * policies that emit nothing simply never read the members. Null
     * (the default) disables emission. Virtual so decorating routers
     * (SloAdmissionRouter) can propagate the recorder to the policy
     * they wrap.
     */
    virtual void setTraceRecorder(obs::TraceRecorder *recorder,
                                  const sim::Simulator *clock)
    {
        trace_ = recorder;
        clock_ = clock;
    }

  protected:
    obs::TraceRecorder *trace_ = nullptr;
    const sim::Simulator *clock_ = nullptr;
};

/** Build a router for the policy. */
std::unique_ptr<Router> makeRouter(RouterPolicy policy,
                                   const RouterConfig &config = {});

} // namespace chameleon::routing

#endif // CHAMELEON_ROUTING_ROUTER_H
