/**
 * @file
 * Consistent hashing over replica indices.
 *
 * The AdapterAffinity router maps each adapter id onto a hash ring so
 * that (a) the same adapter is always dispatched to the same replica,
 * turning N replicated adapter caches into an effectively partitioned
 * cache, and (b) adding or draining a replica remaps only the ~1/N of
 * adapters adjacent to the moved ring points — the rest of the cluster
 * keeps its warm caches. Virtual nodes smooth the per-replica share.
 */

#ifndef CHAMELEON_ROUTING_CONSISTENT_HASH_H
#define CHAMELEON_ROUTING_CONSISTENT_HASH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chameleon::routing {

/** A hash ring of replica indices with virtual nodes. */
class ConsistentHashRing
{
  public:
    /**
     * @param virtualNodes ring points per replica; more points smooth
     *        the load split at the cost of lookup-table size
     */
    explicit ConsistentHashRing(int virtualNodes = 64);

    /**
     * Add a replica's virtual nodes; no-op if already present (even
     * with a different weight — remove first to re-weight). `weight`
     * scales the replica's virtual-node count (capacity-aware rings
     * pass the replica's relative service rate): a replica gets
     * max(1, round(virtualNodes * weight)) points. A weight-w
     * replica's points are a prefix of its weight-1.0 points, so
     * weighting never moves another replica's keys.
     */
    void addReplica(std::size_t replica, double weight = 1.0);

    /** Remove a replica's virtual nodes; no-op if absent. */
    void removeReplica(std::size_t replica);

    /** Replace the member set with exactly {0, .., count-1}. */
    void resize(std::size_t count);

    /**
     * Replace the member set with {0, .., weights.size()-1}, replica
     * i weighted by weights[i]. Rebuilds only replicas whose weight
     * changed, so repeated calls with the same weights are no-ops and
     * unchanged replicas keep their exact ring points.
     */
    void resizeWeighted(const std::vector<double> &weights);

    bool contains(std::size_t replica) const;
    std::size_t replicaCount() const { return members_.size(); }
    bool empty() const { return ring_.empty(); }

    /** Replica owning `key` (first ring point clockwise of its hash). */
    std::size_t owner(std::uint64_t key) const;

    /**
     * The first `count` *distinct* replicas clockwise of `key`'s hash:
     * the owner followed by its successors. Used for load-aware
     * spillover — requests that cannot go to the owner walk this list
     * so spilled load lands deterministically.
     */
    std::vector<std::size_t> preferenceList(std::uint64_t key,
                                            std::size_t count) const;

  private:
    struct Point
    {
        std::uint64_t hash;
        std::size_t replica;

        bool
        operator<(const Point &o) const
        {
            // Tie-break on replica so the ring order is total and
            // identical across add/remove histories.
            return hash != o.hash ? hash < o.hash : replica < o.replica;
        }
    };

    int virtualNodes_;
    std::vector<Point> ring_;      // sorted by (hash, replica)
    std::vector<std::size_t> members_; // sorted replica indices
    std::vector<double> weights_;  // aligned with members_
};

} // namespace chameleon::routing

#endif // CHAMELEON_ROUTING_CONSISTENT_HASH_H
