/**
 * @file
 * SLO-aware admission: steer latency-critical tenants to fast replicas.
 *
 * The tenancy layer marks some tenants SLO-critical by giving them a
 * TTFT SLO multiplier below 1.0 (TenancySpec::sloMultipliers) — their
 * deadline is a fraction of the global SLO, so a dispatch to a slow or
 * degraded replica eats most of their budget before the first token.
 * The engine-local schedulers cannot repair a bad placement; admission
 * is the only point where the deadline can still steer the decision.
 *
 * SloAdmissionRouter is a decorator over any base routing policy:
 * requests of SLO-critical tenants go to the replica with the highest
 * effective service rate (ClusterView::serviceWeight — the measured,
 * staleness-floored rate when measurement is live, the nominal
 * estimate otherwise), ties broken by the lower capacity-normalised
 * queue and then the lower index; everything else falls through to the
 * wrapped policy untouched. With no SLO-critical tenant in the
 * multiplier table the decorator never intercepts and every decision
 * is bit-identical to the bare policy.
 */

#ifndef CHAMELEON_ROUTING_SLO_ADMISSION_H
#define CHAMELEON_ROUTING_SLO_ADMISSION_H

#include <memory>
#include <vector>

#include "routing/router.h"

namespace chameleon::routing {

/** Decorator routing SLO-critical tenants to the fastest replicas. */
class SloAdmissionRouter final : public Router
{
  public:
    /**
     * @param inner the base policy non-critical requests fall through
     *        to (takes ownership)
     * @param sloMultipliers per-tenant TTFT SLO scales, indexed by
     *        tenant id; missing entries default to 1.0. A tenant is
     *        SLO-critical iff its multiplier is < 1.0.
     */
    SloAdmissionRouter(std::unique_ptr<Router> inner,
                       std::vector<double> sloMultipliers);

    const char *name() const override { return "slo-admission"; }

    std::size_t route(const workload::Request &request,
                      const ClusterView &view) override;

    void onReplicaCountChanged(std::size_t activeReplicas) override;

    /** Propagates to the wrapped policy as well. */
    void setTraceRecorder(obs::TraceRecorder *recorder,
                          const sim::Simulator *clock) override;

    const Router &inner() const { return *inner_; }

    /** Dispatches intercepted for SLO-critical tenants so far. */
    std::int64_t steered() const { return steered_; }

  private:
    bool sloCritical(workload::TenantId tenant) const;

    std::unique_ptr<Router> inner_;
    std::vector<double> sloMultipliers_;
    std::int64_t steered_ = 0;
};

} // namespace chameleon::routing

#endif // CHAMELEON_ROUTING_SLO_ADMISSION_H
