/**
 * @file
 * Predictor-driven replica autoscaling.
 *
 * Pure decision logic for scaling a data-parallel cluster at simulation
 * time: the owning dispatcher reports arrivals and periodically asks for
 * the target active-replica count. Two signals are combined:
 *
 *  - queue-depth watermarks — the mean outstanding requests per active
 *    replica crossing the high (low) watermark votes to scale up
 *    (down); this reacts to load that has already queued;
 *  - a predict::LoadForecaster arrival-rate forecast — the predicted
 *    rate over the horizon, divided by the per-replica service
 *    capacity, gives a demand in replicas; this reacts to a building
 *    burst *before* the queues form (the same idea as §4.2.3's
 *    predictive prefetch, applied to capacity instead of adapters).
 *
 * Scale-up follows max(demand, +1 step) immediately after the up
 * cooldown; scale-down requires the low signal to persist for
 * `downCooldownPeriods` consecutive evaluations, then drains one
 * replica at a time so a lull does not collapse the cluster.
 *
 * Heterogeneous fleets: `replicaServiceRps` rates the *reference*
 * replica (the spec's base engine); every replica contributes to
 * capacity in proportion to its nominal service rate over the
 * reference's (its capacity factor — see CapacitySignals). Demand is
 * computed in reference-replica units and compared against the active
 * set's *aggregate* capacity factor, so two half-speed replicas absorb
 * the same forecast as one reference replica. On a homogeneous fleet
 * every factor is exactly 1.0 and the arithmetic reduces bit-for-bit
 * to the scalar form used before capacity factors existed.
 */

#ifndef CHAMELEON_ROUTING_AUTOSCALER_H
#define CHAMELEON_ROUTING_AUTOSCALER_H

#include <cstdint>
#include <string>

#include "predict/load_predictor.h"
#include "simkit/time.h"

namespace chameleon::obs {
class TraceRecorder;
}

namespace chameleon::routing {

/**
 * Which engine configuration a scale-up instantiates when the cluster
 * has a catalogue of candidate configs (a heterogeneous fleet).
 */
enum class ScaleUpPolicy {
    /** The engine factory's default for the next replica index (the
     * pre-catalogue behaviour; homogeneous fleets always use this). */
    Default,
    /** Lowest-capacity candidate whose rate still covers the forecast
     * shortfall (cheapest-that-meets-forecast; falls back to the
     * fastest candidate when none suffices alone). */
    Cheapest,
    /** Highest-capacity candidate, unconditionally. */
    Fastest,
};

/** Canonical short name (also accepted by scaleUpPolicyByName). */
const char *scaleUpPolicyName(ScaleUpPolicy policy);

/** Parse a policy name; returns false on unknown names. */
bool scaleUpPolicyByName(const std::string &name, ScaleUpPolicy *out);

/** Comma-separated policy names, for error messages. */
const char *scaleUpPolicyNames();

/**
 * Which per-replica service-rate estimate the cluster folds into the
 * CapacitySignals it hands each evaluation.
 */
enum class DemandSource {
    /** Static nominal rates (serving::nominalServiceRate) — the
     * pre-closed-loop behaviour, and the only option when measured
     * rates are disabled. */
    Nominal,
    /** Blended effective rates: the measured completion-rate EWMA
     * (serving::MeasuredRate) when measured_rate_alpha > 0, nominal
     * otherwise — demand-in-reference-units then tracks *achieved*
     * throughput, so a degraded fleet scales up earlier. */
    Measured,
};

/** Canonical short name (also accepted by demandSourceByName). */
const char *demandSourceName(DemandSource source);

/** Parse a demand-source name; returns false on unknown names. */
bool demandSourceByName(const std::string &name, DemandSource *out);

/** Comma-separated demand-source names, for error messages. */
const char *demandSourceNames();

/** Watermarks, bounds and cadence of the autoscaler. */
struct AutoscalerConfig
{
    std::size_t minReplicas = 1;
    std::size_t maxReplicas = 8;
    /** Evaluation cadence, seconds of simulation time. */
    double evalPeriodSeconds = 5.0;
    /** Scale up when mean outstanding per replica exceeds this. */
    double highWatermark = 24.0;
    /** Eligible to scale down when it drops below this. */
    double lowWatermark = 4.0;
    /** Forecast horizon handed to the LoadForecaster. */
    double forecastHorizonSeconds = 15.0;
    /** Sliding window of the arrival-rate forecaster, seconds. */
    double forecastWindowSeconds = 60.0;
    /**
     * Sustainable request rate of one *reference* replica (the base
     * engine), requests/s; converts the forecasted arrival rate into a
     * demand in reference-replica units. 0 disables the forecast
     * signal and leaves only the watermarks.
     */
    double replicaServiceRps = 0.0;
    /** Evaluations that must pass between consecutive scale-ups. */
    int upCooldownPeriods = 1;
    /** Consecutive low evaluations required before draining one. */
    int downCooldownPeriods = 3;
    /**
     * Cold-start boot constant, milliseconds: process start + runtime
     * init paid by every *newly built* replica on top of its weight
     * load (serving::ColdStartModel). 0 disables the cold-start model
     * entirely — scale-ups activate instantly, the pre-cold-start
     * behaviour pinned by tests/golden_trace_test.cc.
     */
    double bootMs = 0.0;
    /** Which candidate engine config a scale-up instantiates. */
    ScaleUpPolicy scaleUpPolicy = ScaleUpPolicy::Default;
    /**
     * EWMA weight of each newly observed per-replica completion rate
     * (serving::MeasuredRate), blended into the routing weights
     * (ClusterView::serviceWeight) so they self-correct under
     * load-dependent batching/cache effects. 0 disables measurement —
     * weights stay the static nominal estimates, bit-identically.
     */
    double measuredRateAlpha = 0.0;
    /**
     * Which rate estimate feeds the capacity factors the cluster
     * reports (CapacitySignals). Nominal keeps the static estimates —
     * bit-identical decisions; Measured uses the effective (measured
     * when alpha > 0) rates, so capacity tracks achieved throughput.
     */
    DemandSource demandSource = DemandSource::Nominal;
    /**
     * Stretch the forecast horizon to at least the boot time of the
     * replica the scale-up policy would actually add
     * (CapacitySignals::nextReplicaBootSeconds), so a scale-up is
     * triggered early enough for the new replica to finish booting
     * before the forecasted load lands — closing the fig28 race. Off
     * (the default) keeps the static forecast_horizon_s.
     */
    bool bootAwareHorizon = false;
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const AutoscalerConfig &a, const AutoscalerConfig &b);
inline bool operator!=(const AutoscalerConfig &a, const AutoscalerConfig &b)
{
    return !(a == b);
}

/**
 * Capacity of the active set in reference-replica units, supplied by
 * the cluster each evaluation. A replica's capacity factor is its
 * nominal service rate divided by the reference (base-engine) rate;
 * homogeneous fleets pass exactly 1.0 per replica.
 */
struct CapacitySignals
{
    /** Sum of the active (and still-booting) replicas' factors. */
    double activeCapacityFactor = 0.0;
    /** Factor of the replica the next scale-up step would add. */
    double nextReplicaFactor = 1.0;
    /**
     * Boot latency of that same next replica, seconds: the remaining
     * boot of a drained-mid-boot reactivation, or ColdStartModel
     * weight-load + boot_ms for a fresh build. 0 while the cold-start
     * model is disabled. Only read when
     * AutoscalerConfig::bootAwareHorizon is on.
     */
    double nextReplicaBootSeconds = 0.0;
};

/** Decides the target active-replica count; owns the forecaster. */
class Autoscaler
{
  public:
    explicit Autoscaler(AutoscalerConfig config);

    /** Report one request arrival (feeds the forecaster). */
    void onArrival(sim::SimTime now);

    /**
     * One evaluation: given the current active count and the total
     * outstanding requests across active replicas, return the new
     * target count in [minReplicas, maxReplicas]. The homogeneous
     * convenience form — equivalent to capacity factors of exactly
     * 1.0 per replica.
     */
    std::size_t evaluate(std::size_t activeReplicas,
                         std::int64_t totalOutstanding, sim::SimTime now);

    /** Heterogeneity-aware evaluation (see CapacitySignals). */
    std::size_t evaluate(std::size_t activeReplicas,
                         std::int64_t totalOutstanding, sim::SimTime now,
                         const CapacitySignals &capacity);

    /**
     * Forecast demand of the last evaluation, in reference-replica
     * units (0 while the forecast signal is disabled). The cluster's
     * scale-up policy sizes "cheapest that meets the forecast" from
     * the shortfall demand - activeCapacityFactor.
     */
    double lastForecastDemand() const { return lastDemand_; }

    const AutoscalerConfig &config() const { return config_; }
    const predict::LoadForecaster &forecaster() const { return forecast_; }
    std::int64_t scaleUps() const { return scaleUps_; }
    std::int64_t scaleDowns() const { return scaleDowns_; }

    /** Record an "autoscale_eval" instant (demand vs capacity, target)
     * per evaluation; null (the default) disables emission. */
    void setTraceRecorder(obs::TraceRecorder *recorder)
    {
        trace_ = recorder;
    }

  private:
    obs::TraceRecorder *trace_ = nullptr;
    AutoscalerConfig config_;
    predict::LoadForecaster forecast_;
    int sinceUp_ = 1 << 20;   // evaluations since the last scale-up
    int lowStreak_ = 0;       // consecutive below-low evaluations
    double lastDemand_ = 0.0; // forecast demand, reference units
    std::int64_t scaleUps_ = 0;
    std::int64_t scaleDowns_ = 0;
};

} // namespace chameleon::routing

#endif // CHAMELEON_ROUTING_AUTOSCALER_H
