/**
 * @file
 * Predictor-driven replica autoscaling.
 *
 * Pure decision logic for scaling a data-parallel cluster at simulation
 * time: the owning dispatcher reports arrivals and periodically asks for
 * the target active-replica count. Two signals are combined:
 *
 *  - queue-depth watermarks — the mean outstanding requests per active
 *    replica crossing the high (low) watermark votes to scale up
 *    (down); this reacts to load that has already queued;
 *  - a predict::LoadForecaster arrival-rate forecast — the predicted
 *    rate over the horizon, divided by the per-replica service
 *    capacity, gives a demand in replicas; this reacts to a building
 *    burst *before* the queues form (the same idea as §4.2.3's
 *    predictive prefetch, applied to capacity instead of adapters).
 *
 * Scale-up follows max(demand, +1 step) immediately after the up
 * cooldown; scale-down requires the low signal to persist for
 * `downCooldownPeriods` consecutive evaluations, then drains one
 * replica at a time so a lull does not collapse the cluster.
 */

#ifndef CHAMELEON_ROUTING_AUTOSCALER_H
#define CHAMELEON_ROUTING_AUTOSCALER_H

#include <cstdint>

#include "predict/load_predictor.h"
#include "simkit/time.h"

namespace chameleon::routing {

/** Watermarks, bounds and cadence of the autoscaler. */
struct AutoscalerConfig
{
    std::size_t minReplicas = 1;
    std::size_t maxReplicas = 8;
    /** Evaluation cadence, seconds of simulation time. */
    double evalPeriodSeconds = 5.0;
    /** Scale up when mean outstanding per replica exceeds this. */
    double highWatermark = 24.0;
    /** Eligible to scale down when it drops below this. */
    double lowWatermark = 4.0;
    /** Forecast horizon handed to the LoadForecaster. */
    double forecastHorizonSeconds = 15.0;
    /** Sliding window of the arrival-rate forecaster, seconds. */
    double forecastWindowSeconds = 60.0;
    /**
     * Sustainable request rate of one replica, requests/s; converts the
     * forecasted arrival rate into a replica demand. 0 disables the
     * forecast signal and leaves only the watermarks.
     */
    double replicaServiceRps = 0.0;
    /** Evaluations that must pass between consecutive scale-ups. */
    int upCooldownPeriods = 1;
    /** Consecutive low evaluations required before draining one. */
    int downCooldownPeriods = 3;
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const AutoscalerConfig &a, const AutoscalerConfig &b);
inline bool operator!=(const AutoscalerConfig &a, const AutoscalerConfig &b)
{
    return !(a == b);
}

/** Decides the target active-replica count; owns the forecaster. */
class Autoscaler
{
  public:
    explicit Autoscaler(AutoscalerConfig config);

    /** Report one request arrival (feeds the forecaster). */
    void onArrival(sim::SimTime now);

    /**
     * One evaluation: given the current active count and the total
     * outstanding requests across active replicas, return the new
     * target count in [minReplicas, maxReplicas].
     */
    std::size_t evaluate(std::size_t activeReplicas,
                         std::int64_t totalOutstanding, sim::SimTime now);

    const AutoscalerConfig &config() const { return config_; }
    const predict::LoadForecaster &forecaster() const { return forecast_; }
    std::int64_t scaleUps() const { return scaleUps_; }
    std::int64_t scaleDowns() const { return scaleDowns_; }

  private:
    AutoscalerConfig config_;
    predict::LoadForecaster forecast_;
    int sinceUp_ = 1 << 20;   // evaluations since the last scale-up
    int lowStreak_ = 0;       // consecutive below-low evaluations
    std::int64_t scaleUps_ = 0;
    std::int64_t scaleDowns_ = 0;
};

} // namespace chameleon::routing

#endif // CHAMELEON_ROUTING_AUTOSCALER_H
