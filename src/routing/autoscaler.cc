#include "routing/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"

namespace chameleon::routing {

Autoscaler::Autoscaler(AutoscalerConfig config)
    : config_(config),
      forecast_(config.forecastWindowSeconds)
{
    CHM_CHECK(config_.minReplicas >= 1, "need at least one replica");
    CHM_CHECK(config_.maxReplicas >= config_.minReplicas,
              "maxReplicas < minReplicas");
    CHM_CHECK(config_.lowWatermark < config_.highWatermark,
              "watermarks must satisfy low < high");
}

void
Autoscaler::onArrival(sim::SimTime now)
{
    forecast_.recordArrival(now);
}

std::size_t
Autoscaler::evaluate(std::size_t activeReplicas,
                     std::int64_t totalOutstanding, sim::SimTime now)
{
    activeReplicas = std::clamp(activeReplicas, config_.minReplicas,
                                config_.maxReplicas);
    ++sinceUp_;

    const double perReplica =
        static_cast<double>(totalOutstanding) /
        static_cast<double>(activeReplicas);

    // Forecast signal: replicas demanded by the predicted arrival rate.
    std::size_t demand = 0;
    if (config_.replicaServiceRps > 0.0) {
        const double rps = forecast_.forecastRps(
            now, config_.forecastHorizonSeconds);
        demand = static_cast<std::size_t>(
            std::ceil(rps / config_.replicaServiceRps));
    }

    const bool queueHigh = perReplica > config_.highWatermark;
    const bool demandHigh = demand > activeReplicas;
    if ((queueHigh || demandHigh) && sinceUp_ >= config_.upCooldownPeriods &&
        activeReplicas < config_.maxReplicas) {
        std::size_t target = activeReplicas + 1;
        if (demandHigh)
            target = std::max(target, demand);
        target = std::min(target, config_.maxReplicas);
        sinceUp_ = 0;
        lowStreak_ = 0;
        ++scaleUps_;
        return target;
    }

    // Scale down only when both signals agree the cluster is oversized
    // and the condition persists.
    const bool queueLow = perReplica < config_.lowWatermark;
    const bool demandLow =
        config_.replicaServiceRps <= 0.0 || demand < activeReplicas;
    if (queueLow && demandLow && activeReplicas > config_.minReplicas) {
        if (++lowStreak_ >= config_.downCooldownPeriods) {
            lowStreak_ = 0;
            ++scaleDowns_;
            return activeReplicas - 1;
        }
    } else {
        lowStreak_ = 0;
    }
    return activeReplicas;
}

bool
operator==(const AutoscalerConfig &a, const AutoscalerConfig &b)
{
    return a.minReplicas == b.minReplicas &&
           a.maxReplicas == b.maxReplicas &&
           a.evalPeriodSeconds == b.evalPeriodSeconds &&
           a.highWatermark == b.highWatermark &&
           a.lowWatermark == b.lowWatermark &&
           a.forecastHorizonSeconds == b.forecastHorizonSeconds &&
           a.forecastWindowSeconds == b.forecastWindowSeconds &&
           a.replicaServiceRps == b.replicaServiceRps &&
           a.upCooldownPeriods == b.upCooldownPeriods &&
           a.downCooldownPeriods == b.downCooldownPeriods;
}

} // namespace chameleon::routing
