#include "routing/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "obs/trace_recorder.h"
#include "simkit/check.h"

namespace chameleon::routing {

const char *
scaleUpPolicyName(ScaleUpPolicy policy)
{
    switch (policy) {
      case ScaleUpPolicy::Default: return "default";
      case ScaleUpPolicy::Cheapest: return "cheapest";
      case ScaleUpPolicy::Fastest: return "fastest";
    }
    return "?";
}

bool
scaleUpPolicyByName(const std::string &name, ScaleUpPolicy *out)
{
    if (name == "default")
        *out = ScaleUpPolicy::Default;
    else if (name == "cheapest")
        *out = ScaleUpPolicy::Cheapest;
    else if (name == "fastest")
        *out = ScaleUpPolicy::Fastest;
    else
        return false;
    return true;
}

const char *
scaleUpPolicyNames()
{
    return "default, cheapest, fastest";
}

const char *
demandSourceName(DemandSource source)
{
    switch (source) {
      case DemandSource::Nominal: return "nominal";
      case DemandSource::Measured: return "measured";
    }
    return "?";
}

bool
demandSourceByName(const std::string &name, DemandSource *out)
{
    if (name == "nominal")
        *out = DemandSource::Nominal;
    else if (name == "measured")
        *out = DemandSource::Measured;
    else
        return false;
    return true;
}

const char *
demandSourceNames()
{
    return "nominal, measured";
}

Autoscaler::Autoscaler(AutoscalerConfig config)
    : config_(config),
      forecast_(config.forecastWindowSeconds)
{
    CHM_CHECK(config_.minReplicas >= 1, "need at least one replica");
    CHM_CHECK(config_.maxReplicas >= config_.minReplicas,
              "maxReplicas < minReplicas");
    CHM_CHECK(config_.lowWatermark < config_.highWatermark,
              "watermarks must satisfy low < high");
    CHM_CHECK(config_.bootMs >= 0.0, "bootMs must be >= 0");
    CHM_CHECK(config_.measuredRateAlpha >= 0.0 &&
                  config_.measuredRateAlpha <= 1.0,
              "measuredRateAlpha must be within [0, 1]");
}

void
Autoscaler::onArrival(sim::SimTime now)
{
    forecast_.recordArrival(now);
}

std::size_t
Autoscaler::evaluate(std::size_t activeReplicas,
                     std::int64_t totalOutstanding, sim::SimTime now)
{
    // Homogeneous: every replica is the reference replica. Passing
    // exact small integers through the capacity arithmetic keeps the
    // decisions bit-identical to the historical scalar form.
    CapacitySignals capacity;
    capacity.activeCapacityFactor = static_cast<double>(
        std::clamp(activeReplicas, config_.minReplicas,
                   config_.maxReplicas));
    capacity.nextReplicaFactor = 1.0;
    return evaluate(activeReplicas, totalOutstanding, now, capacity);
}

std::size_t
Autoscaler::evaluate(std::size_t activeReplicas,
                     std::int64_t totalOutstanding, sim::SimTime now,
                     const CapacitySignals &capacity)
{
    // The raw count is what the cluster actually provisioned; the
    // clamped copy drives the decision arithmetic. Tracing both makes
    // min/max saturation visible in Perfetto instead of silently
    // reporting the clamped value as if it were the fleet's state.
    const std::size_t rawActive = activeReplicas;
    activeReplicas = std::clamp(activeReplicas, config_.minReplicas,
                                config_.maxReplicas);
    ++sinceUp_;

    const double perReplica =
        static_cast<double>(totalOutstanding) /
        static_cast<double>(activeReplicas);

    // Every return funnels through here so the trace sees each
    // evaluation's inputs and verdict, not just the scale events.
    const auto decided = [&](std::size_t target) {
        if (trace_ != nullptr) {
            trace_->instant(obs::kClusterPid, obs::Lane::Control,
                            "autoscale_eval", now,
                            {{"active", activeReplicas},
                             {"raw_active", rawActive},
                             {"target", target},
                             {"outstanding", totalOutstanding},
                             {"demand", lastDemand_},
                             {"capacity",
                              capacity.activeCapacityFactor},
                             {"next_factor",
                              capacity.nextReplicaFactor}});
        }
        return target;
    };

    // Forecast signal: demand in reference-replica units (the scalar
    // replicaServiceRps rates the reference replica; the active set's
    // aggregate capacity factor says how many reference replicas the
    // fleet currently amounts to). With the boot-aware horizon, look
    // ahead at least as far as the next replica's boot latency: a
    // scale-up decided now only delivers capacity after the boot, so a
    // shorter horizon always loses the race against a building burst.
    double demand = 0.0;
    if (config_.replicaServiceRps > 0.0) {
        double horizon = config_.forecastHorizonSeconds;
        if (config_.bootAwareHorizon) {
            horizon =
                std::max(horizon, capacity.nextReplicaBootSeconds);
        }
        const double rps = forecast_.forecastRps(now, horizon);
        demand = std::ceil(rps / config_.replicaServiceRps);
    }
    lastDemand_ = demand;

    const bool queueHigh = perReplica > config_.highWatermark;
    const bool demandHigh = demand > capacity.activeCapacityFactor;
    if ((queueHigh || demandHigh) && sinceUp_ >= config_.upCooldownPeriods &&
        activeReplicas < config_.maxReplicas) {
        std::size_t target = activeReplicas + 1;
        if (demandHigh) {
            // Cover the shortfall with replicas of the capacity the
            // scale-up policy would add (exactly demand - active
            // replicas when every factor is 1.0).
            const double shortfall =
                demand - capacity.activeCapacityFactor;
            const double nextFactor =
                capacity.nextReplicaFactor > 0.0
                    ? capacity.nextReplicaFactor
                    : 1.0;
            const double extra = std::ceil(shortfall / nextFactor);
            if (extra > 0.0) {
                target = std::max(
                    target,
                    activeReplicas + static_cast<std::size_t>(extra));
            }
        }
        target = std::min(target, config_.maxReplicas);
        sinceUp_ = 0;
        lowStreak_ = 0;
        ++scaleUps_;
        return decided(target);
    }

    // Scale down only when both signals agree the cluster is oversized
    // and the condition persists.
    const bool queueLow = perReplica < config_.lowWatermark;
    const bool demandLow = config_.replicaServiceRps <= 0.0 ||
                           demand < capacity.activeCapacityFactor;
    if (queueLow && demandLow && activeReplicas > config_.minReplicas) {
        if (++lowStreak_ >= config_.downCooldownPeriods) {
            lowStreak_ = 0;
            ++scaleDowns_;
            return decided(activeReplicas - 1);
        }
    } else {
        lowStreak_ = 0;
    }
    return decided(activeReplicas);
}

bool
operator==(const AutoscalerConfig &a, const AutoscalerConfig &b)
{
    return a.minReplicas == b.minReplicas &&
           a.maxReplicas == b.maxReplicas &&
           a.evalPeriodSeconds == b.evalPeriodSeconds &&
           a.highWatermark == b.highWatermark &&
           a.lowWatermark == b.lowWatermark &&
           a.forecastHorizonSeconds == b.forecastHorizonSeconds &&
           a.forecastWindowSeconds == b.forecastWindowSeconds &&
           a.replicaServiceRps == b.replicaServiceRps &&
           a.upCooldownPeriods == b.upCooldownPeriods &&
           a.downCooldownPeriods == b.downCooldownPeriods &&
           a.bootMs == b.bootMs && a.scaleUpPolicy == b.scaleUpPolicy &&
           a.measuredRateAlpha == b.measuredRateAlpha &&
           a.demandSource == b.demandSource &&
           a.bootAwareHorizon == b.bootAwareHorizon;
}

} // namespace chameleon::routing
