/**
 * @file
 * Analytical GPU execution cost model.
 *
 * Converts batch composition into virtual execution times. Calibrated
 * against the paper's own single-request measurements (Fig. 2: TTFT of
 * 74/78/88/107/144 ms for adapter ranks 8..128 on Llama-7B/A40 with a
 * 96-token "medium" input); see DESIGN.md §3 for the fit.
 *
 * Structure:
 *  - prefill: compute-bound, FLOPs / effective-FLOP-rate per token.
 *  - LoRA prefill overhead (MBGMM kernel): fixed gather/launch cost plus
 *    an inefficiency multiplier over the theoretical adapter FLOPs. The
 *    paper (and dLoRA Fig. 5) observe the decoupled adapter matmuls cost
 *    far more than their FLOP share; the multiplier captures that.
 *  - decode: memory-bound, weight-shard read + per-request KV reads, plus
 *    the MBGMV adapter overhead.
 *  - adapter transfer: PCIe setup + bytes/bandwidth, plus a per-extra-rank
 *    synchronisation cost under tensor parallelism (§3.2, Fig. 5).
 */

#ifndef CHAMELEON_MODEL_COST_MODEL_H
#define CHAMELEON_MODEL_COST_MODEL_H

#include <cstdint>
#include <vector>

#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/time.h"

namespace chameleon::model {

/**
 * The "medium input" size of the paper's Fig. 2 single-request study,
 * back-solved from the published TTFT numbers under the calibrated
 * cost parameters below.
 */
constexpr std::int64_t kMediumInputTokens = 142;

/** Tunable calibration constants (defaults fit the A40/Llama-7B data). */
struct CostParams
{
    /** Fraction of peak FLOPs achieved by dense prefill GEMMs. */
    double computeUtil = 0.80;
    /** Fraction of peak HBM bandwidth achieved by decode reads. */
    double memUtil = 0.80;
    /** Fixed per-prefill overhead (scheduling, kernel launches), ms. */
    double prefillFixedMs = 0.5;
    /** MBGMM fixed cost per prefill invocation touching adapters, ms. */
    double mbgmmFixedMs = 4.3;
    /** Multiplier on theoretical LoRA FLOP time (kernel inefficiency). */
    double loraIneff = 40.0;
    /** Fixed per-decode-iteration overhead, ms. */
    double decodeFixedMs = 1.0;
    /** Per-running-request decode overhead (attention launch), us. */
    double decodeReqUs = 50.0;
    /** MBGMV fixed cost per decode iteration touching adapters, ms. */
    double mbgmvFixedMs = 1.0;
    /** Per-request per-iteration adapter cost, us per unit rank. */
    double decodeRankUs = 3.0;
    /** Adapter-load synchronisation per extra tensor-parallel rank, ms. */
    double tpSyncMs = 10.0;
    /** Parallel-efficiency loss per doubling of TP degree. */
    double tpEffLossPerLog2 = 0.15;
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const CostParams &a, const CostParams &b);
inline bool operator!=(const CostParams &a, const CostParams &b)
{
    return !(a == b);
}

/** One running request's contribution to a decode iteration. */
struct DecodeSlot
{
    /** KV-cache tokens read this iteration (prompt + generated so far). */
    std::int64_t kvTokens = 0;
    /** LoRA rank, or 0 for base-only requests. */
    int rank = 0;
};

/**
 * Cost model for one execution engine (a GPU or TP group of GPUs).
 */
class CostModel
{
  public:
    CostModel(ModelSpec model, GpuSpec gpu, int tpDegree = 1,
              CostParams params = CostParams{});

    const ModelSpec &model() const { return model_; }
    const GpuSpec &gpu() const { return gpu_; }
    int tpDegree() const { return tp_; }
    const CostParams &params() const { return params_; }

    /** Effective FLOP rate across the TP group (peak * util * eff). */
    double effectiveFlops() const;

    /** Effective aggregate HBM bandwidth across the TP group. */
    double effectiveMemBandwidth() const;

    /** Base-model prefill compute time for a token count. */
    sim::SimTime prefillTime(std::int64_t tokens) const;

    /** MBGMM adapter overhead for prefilling tokens with a given rank. */
    sim::SimTime adapterPrefillTime(int rank, std::int64_t tokens) const;

    /**
     * Combined prefill step time for a set of (tokens, rank) requests
     * prefilled together in one iteration. The MBGMM fixed cost is paid
     * once per invocation, the per-token terms sum.
     */
    sim::SimTime prefillStepTime(
        const std::vector<std::pair<std::int64_t, int>> &reqs) const;

    /** One decode iteration over the given batch composition. */
    sim::SimTime decodeIterTime(const std::vector<DecodeSlot> &batch) const;

    /**
     * Host->GPU transfer time for an adapter of the given byte size,
     * including per-transfer setup and TP synchronisation. This is the
     * service time used by the PCIe link model; queueing is on top.
     */
    sim::SimTime adapterLoadTime(std::int64_t bytes) const;

    /** TTFT of a lone request on an idle engine (Fig. 2/3 conditions). */
    sim::SimTime isolatedTtft(std::int64_t inputTokens, int rank,
                              std::int64_t adapterBytes,
                              bool includeLoad) const;

    /**
     * End-to-end latency of a lone request on an idle engine; the
     * slowdown-denominator of §3.3.
     */
    sim::SimTime isolatedE2e(std::int64_t inputTokens,
                             std::int64_t outputTokens, int rank,
                             std::int64_t adapterBytes,
                             bool includeLoad) const;

  private:
    double tpEfficiency() const;

    ModelSpec model_;
    GpuSpec gpu_;
    int tp_;
    CostParams params_;
};

} // namespace chameleon::model

#endif // CHAMELEON_MODEL_COST_MODEL_H
