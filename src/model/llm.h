/**
 * @file
 * Base LLM descriptors.
 *
 * Only the quantities that drive serving decisions are modeled: parameter
 * count (weight bytes, prefill FLOPs), layer/hidden geometry (LoRA adapter
 * sizes), and KV-cache bytes per token. Presets cover the models used in
 * the paper's evaluation (Llama-7B/13B/30B/70B, §5.1/§5.5).
 */

#ifndef CHAMELEON_MODEL_LLM_H
#define CHAMELEON_MODEL_LLM_H

#include <cstdint>
#include <string>

namespace chameleon::model {

/**
 * Static description of a base LLM.
 *
 * All byte quantities assume fp16 weights and KV entries, matching the
 * paper's testbed configuration.
 */
struct ModelSpec
{
    std::string name;
    /** Transformer layer count. */
    int layers = 0;
    /** Model (embedding) dimension. */
    int hidden = 0;
    /**
     * Key/value projection width. Equal to hidden for multi-head
     * attention; smaller for grouped-query attention (Llama-70B).
     */
    int kvHidden = 0;
    /** Total parameter count. */
    double params = 0.0;

    /** Weight footprint in bytes (fp16). */
    std::int64_t weightsBytes() const;

    /** KV-cache bytes required per cached token (fp16 K and V). */
    std::int64_t kvBytesPerToken() const;

    /**
     * LoRA parameter count per unit rank per layer, summing the A and B
     * matrices of the four attention projections (q, k, v, o). For MHA
     * this is 8 * hidden; GQA shrinks the k/v output dimensions.
     */
    std::int64_t loraDimsPerLayer() const;

    /** Forward-pass FLOPs per token (approximately 2 * params). */
    double flopsPerToken() const { return 2.0 * params; }
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const ModelSpec &a, const ModelSpec &b);
inline bool operator!=(const ModelSpec &a, const ModelSpec &b)
{
    return !(a == b);
}

/** Llama-7B (32 layers, hidden 4096, MHA). */
ModelSpec llama7B();
/** Llama-13B (40 layers, hidden 5120, MHA). */
ModelSpec llama13B();
/** Llama-30B (60 layers, hidden 6656, MHA). */
ModelSpec llama30B();
/** Llama-70B (80 layers, hidden 8192, GQA with 1024-wide KV). */
ModelSpec llama70B();

/** Look up a preset by name; fatal on unknown names. */
ModelSpec modelByName(const std::string &name);

/** Non-fatal preset lookup; returns false on unknown names. */
bool tryModelByName(const std::string &name, ModelSpec *out);

/** Comma-separated preset names, for error messages. */
const char *modelPresetNames();

} // namespace chameleon::model

#endif // CHAMELEON_MODEL_LLM_H
