/**
 * @file
 * GPU hardware descriptors (A40 / A100 presets per §5.1/§5.5).
 */

#ifndef CHAMELEON_MODEL_GPU_SPEC_H
#define CHAMELEON_MODEL_GPU_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace chameleon::model {

/** Static description of one GPU. */
struct GpuSpec
{
    std::string name;
    /** Dense fp16 peak throughput, FLOP/s. */
    double fp16Flops = 0.0;
    /** HBM bandwidth, bytes/s. */
    double memBandwidth = 0.0;
    /** Device memory capacity, bytes. */
    std::int64_t memBytes = 0;
    /** Effective host->device PCIe bandwidth, bytes/s. */
    double pcieBandwidth = 0.0;
    /** Fixed per-transfer setup latency, seconds (driver + pinning). */
    double pcieSetupSeconds = 0.0;
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const GpuSpec &a, const GpuSpec &b);
inline bool operator!=(const GpuSpec &a, const GpuSpec &b)
{
    return !(a == b);
}

/** NVIDIA A40, 48 GB (the paper's primary testbed). */
GpuSpec a40();

/** NVIDIA A100 with a configurable memory capacity in GiB (24/48/80). */
GpuSpec a100(int memGiB = 80);

/**
 * Non-fatal preset lookup for "a40", "a100" (= 80 GiB), or
 * "a100-<24|48|80>"; returns false on unknown names. One source of
 * truth for every GPU-name parser (spec JSON, tools).
 */
bool tryGpuByName(const std::string &name, GpuSpec *out);

/** Comma-separated preset names, for error messages. */
const char *gpuPresetNames();

/**
 * Parse a fleet preset — the GPU mix of a heterogeneous replica set —
 * into one GpuSpec per replica, in order. Grammar:
 *
 *   <gpu>x<count>[+<gpu>x<count>...]
 *
 * where <gpu> is any tryGpuByName preset, so "a40x4" is four A40
 * replicas and "a100x2+a40x2" is two A100-80G replicas followed by two
 * A40s. Returns false on unknown GPU names, malformed terms, or a
 * non-positive count. One source of truth for every fleet parser
 * (spec JSON "cluster.fleet", sweep "fleets" axis, chameleon_sim
 * --fleet).
 */
bool tryFleetByName(const std::string &name, std::vector<GpuSpec> *out);

/** One-line fleet grammar + known GPUs, for error messages. */
std::string fleetGrammarHelp();

} // namespace chameleon::model

#endif // CHAMELEON_MODEL_GPU_SPEC_H
