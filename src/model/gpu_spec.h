/**
 * @file
 * GPU hardware descriptors (A40 / A100 presets per §5.1/§5.5).
 */

#ifndef CHAMELEON_MODEL_GPU_SPEC_H
#define CHAMELEON_MODEL_GPU_SPEC_H

#include <cstdint>
#include <string>

namespace chameleon::model {

/** Static description of one GPU. */
struct GpuSpec
{
    std::string name;
    /** Dense fp16 peak throughput, FLOP/s. */
    double fp16Flops = 0.0;
    /** HBM bandwidth, bytes/s. */
    double memBandwidth = 0.0;
    /** Device memory capacity, bytes. */
    std::int64_t memBytes = 0;
    /** Effective host->device PCIe bandwidth, bytes/s. */
    double pcieBandwidth = 0.0;
    /** Fixed per-transfer setup latency, seconds (driver + pinning). */
    double pcieSetupSeconds = 0.0;
};

/** NVIDIA A40, 48 GB (the paper's primary testbed). */
GpuSpec a40();

/** NVIDIA A100 with a configurable memory capacity in GiB (24/48/80). */
GpuSpec a100(int memGiB = 80);

} // namespace chameleon::model

#endif // CHAMELEON_MODEL_GPU_SPEC_H
