#include "model/gpu_spec.h"

#include <cstdlib>

#include "simkit/check.h"

namespace chameleon::model {

namespace {
constexpr std::int64_t kGiB = 1024ll * 1024 * 1024;
} // namespace

GpuSpec
a40()
{
    GpuSpec g;
    g.name = "a40-48g";
    g.fp16Flops = 37.4e12;
    g.memBandwidth = 696e9;
    g.memBytes = 48 * kGiB;
    // Effective host link throughput calibrated so a rank-128 Llama-7B
    // adapter (268 MB) loads in ~25.5 ms, matching the paper's Fig. 2
    // loading share (17.5% of a 144 ms TTFT).
    g.pcieBandwidth = 10.5e9;
    g.pcieSetupSeconds = 0.3e-3;
    return g;
}

GpuSpec
a100(int memGiB)
{
    CHM_CHECK(memGiB == 24 || memGiB == 48 || memGiB == 80,
              "paper uses A100 configured with 24/48/80 GiB, got " << memGiB);
    GpuSpec g;
    g.name = "a100-" + std::to_string(memGiB) + "g";
    g.fp16Flops = 312e12;
    g.memBandwidth = 2000e9;
    g.memBytes = static_cast<std::int64_t>(memGiB) * kGiB;
    g.pcieBandwidth = 25e9;
    g.pcieSetupSeconds = 0.2e-3;
    return g;
}

bool
operator==(const GpuSpec &a, const GpuSpec &b)
{
    return a.name == b.name && a.fp16Flops == b.fp16Flops &&
           a.memBandwidth == b.memBandwidth && a.memBytes == b.memBytes &&
           a.pcieBandwidth == b.pcieBandwidth &&
           a.pcieSetupSeconds == b.pcieSetupSeconds;
}

bool
tryGpuByName(const std::string &name, GpuSpec *out)
{
    if (name == "a40") {
        *out = a40();
        return true;
    }
    if (name == "a100") {
        *out = a100(80);
        return true;
    }
    if (name.rfind("a100-", 0) == 0) {
        char *end = nullptr;
        const int gib =
            static_cast<int>(std::strtol(name.c_str() + 5, &end, 10));
        // Trailing garbage ("a100-48GB") must not parse as a100-48.
        if (*end == '\0' && (gib == 24 || gib == 48 || gib == 80)) {
            *out = a100(gib);
            return true;
        }
    }
    return false;
}

const char *
gpuPresetNames()
{
    return "a40, a100, a100-24, a100-48, a100-80";
}

bool
tryFleetByName(const std::string &name, std::vector<GpuSpec> *out)
{
    if (name.empty())
        return false;
    std::vector<GpuSpec> fleet;
    std::size_t start = 0;
    while (start <= name.size()) {
        const std::size_t plus = name.find('+', start);
        const std::string term =
            name.substr(start, plus == std::string::npos
                                   ? std::string::npos
                                   : plus - start);
        // The count is the suffix after the *last* 'x', so GPU names
        // may themselves contain an 'x' without breaking the grammar.
        const std::size_t x = term.rfind('x');
        if (x == std::string::npos || x == 0 || x + 1 >= term.size())
            return false;
        GpuSpec gpu;
        if (!tryGpuByName(term.substr(0, x), &gpu))
            return false;
        char *end = nullptr;
        const std::string countText = term.substr(x + 1);
        const long count = std::strtol(countText.c_str(), &end, 10);
        if (*end != '\0' || count < 1 || count > 1024)
            return false;
        for (long i = 0; i < count; ++i)
            fleet.push_back(gpu);
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    *out = std::move(fleet);
    return true;
}

std::string
fleetGrammarHelp()
{
    return std::string("<gpu>x<count> terms joined by '+' (e.g. "
                       "\"a40x4\", \"a100x2+a40x2\"); gpus: ") +
           gpuPresetNames();
}

} // namespace chameleon::model
