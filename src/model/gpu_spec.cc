#include "model/gpu_spec.h"

#include <cstdlib>

#include "simkit/check.h"

namespace chameleon::model {

namespace {
constexpr std::int64_t kGiB = 1024ll * 1024 * 1024;
} // namespace

GpuSpec
a40()
{
    GpuSpec g;
    g.name = "a40-48g";
    g.fp16Flops = 37.4e12;
    g.memBandwidth = 696e9;
    g.memBytes = 48 * kGiB;
    // Effective host link throughput calibrated so a rank-128 Llama-7B
    // adapter (268 MB) loads in ~25.5 ms, matching the paper's Fig. 2
    // loading share (17.5% of a 144 ms TTFT).
    g.pcieBandwidth = 10.5e9;
    g.pcieSetupSeconds = 0.3e-3;
    return g;
}

GpuSpec
a100(int memGiB)
{
    CHM_CHECK(memGiB == 24 || memGiB == 48 || memGiB == 80,
              "paper uses A100 configured with 24/48/80 GiB, got " << memGiB);
    GpuSpec g;
    g.name = "a100-" + std::to_string(memGiB) + "g";
    g.fp16Flops = 312e12;
    g.memBandwidth = 2000e9;
    g.memBytes = static_cast<std::int64_t>(memGiB) * kGiB;
    g.pcieBandwidth = 25e9;
    g.pcieSetupSeconds = 0.2e-3;
    return g;
}

bool
operator==(const GpuSpec &a, const GpuSpec &b)
{
    return a.name == b.name && a.fp16Flops == b.fp16Flops &&
           a.memBandwidth == b.memBandwidth && a.memBytes == b.memBytes &&
           a.pcieBandwidth == b.pcieBandwidth &&
           a.pcieSetupSeconds == b.pcieSetupSeconds;
}

bool
tryGpuByName(const std::string &name, GpuSpec *out)
{
    if (name == "a40") {
        *out = a40();
        return true;
    }
    if (name == "a100") {
        *out = a100(80);
        return true;
    }
    if (name.rfind("a100-", 0) == 0) {
        char *end = nullptr;
        const int gib =
            static_cast<int>(std::strtol(name.c_str() + 5, &end, 10));
        // Trailing garbage ("a100-48GB") must not parse as a100-48.
        if (*end == '\0' && (gib == 24 || gib == 48 || gib == 80)) {
            *out = a100(gib);
            return true;
        }
    }
    return false;
}

const char *
gpuPresetNames()
{
    return "a40, a100, a100-24, a100-48, a100-80";
}

} // namespace chameleon::model
