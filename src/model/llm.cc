#include "model/llm.h"

#include "simkit/check.h"

namespace chameleon::model {

std::int64_t
ModelSpec::weightsBytes() const
{
    return static_cast<std::int64_t>(params * 2.0);
}

std::int64_t
ModelSpec::kvBytesPerToken() const
{
    // K and V, one vector of kvHidden per layer, fp16.
    return static_cast<std::int64_t>(2) * layers * kvHidden * 2;
}

std::int64_t
ModelSpec::loraDimsPerLayer() const
{
    // LoRA pairs (A: in x r, B: r x out) on q, k, v, o projections.
    // Per unit rank: q -> hidden + hidden, k -> hidden + kvHidden,
    // v -> hidden + kvHidden, o -> hidden + hidden.
    return static_cast<std::int64_t>(6) * hidden + 2 * kvHidden;
}

ModelSpec
llama7B()
{
    return ModelSpec{"llama-7b", 32, 4096, 4096, 6.74e9};
}

ModelSpec
llama13B()
{
    return ModelSpec{"llama-13b", 40, 5120, 5120, 13.0e9};
}

ModelSpec
llama30B()
{
    return ModelSpec{"llama-30b", 60, 6656, 6656, 32.5e9};
}

ModelSpec
llama70B()
{
    return ModelSpec{"llama-70b", 80, 8192, 1024, 68.9e9};
}

bool
tryModelByName(const std::string &name, ModelSpec *out)
{
    if (name == "llama-7b")
        *out = llama7B();
    else if (name == "llama-13b")
        *out = llama13B();
    else if (name == "llama-30b")
        *out = llama30B();
    else if (name == "llama-70b")
        *out = llama70B();
    else
        return false;
    return true;
}

const char *
modelPresetNames()
{
    return "llama-7b, llama-13b, llama-30b, llama-70b";
}

ModelSpec
modelByName(const std::string &name)
{
    ModelSpec spec;
    if (!tryModelByName(name, &spec)) {
        CHM_FATAL("unknown model preset: " << name << " (known: "
                                           << modelPresetNames() << ")");
    }
    return spec;
}

bool
operator==(const ModelSpec &a, const ModelSpec &b)
{
    return a.name == b.name && a.layers == b.layers &&
           a.hidden == b.hidden && a.kvHidden == b.kvHidden &&
           a.params == b.params;
}

} // namespace chameleon::model
