#include "model/llm.h"

#include "simkit/check.h"

namespace chameleon::model {

std::int64_t
ModelSpec::weightsBytes() const
{
    return static_cast<std::int64_t>(params * 2.0);
}

std::int64_t
ModelSpec::kvBytesPerToken() const
{
    // K and V, one vector of kvHidden per layer, fp16.
    return static_cast<std::int64_t>(2) * layers * kvHidden * 2;
}

std::int64_t
ModelSpec::loraDimsPerLayer() const
{
    // LoRA pairs (A: in x r, B: r x out) on q, k, v, o projections.
    // Per unit rank: q -> hidden + hidden, k -> hidden + kvHidden,
    // v -> hidden + kvHidden, o -> hidden + hidden.
    return static_cast<std::int64_t>(6) * hidden + 2 * kvHidden;
}

ModelSpec
llama7B()
{
    return ModelSpec{"llama-7b", 32, 4096, 4096, 6.74e9};
}

ModelSpec
llama13B()
{
    return ModelSpec{"llama-13b", 40, 5120, 5120, 13.0e9};
}

ModelSpec
llama30B()
{
    return ModelSpec{"llama-30b", 60, 6656, 6656, 32.5e9};
}

ModelSpec
llama70B()
{
    return ModelSpec{"llama-70b", 80, 8192, 1024, 68.9e9};
}

ModelSpec
modelByName(const std::string &name)
{
    if (name == "llama-7b")
        return llama7B();
    if (name == "llama-13b")
        return llama13B();
    if (name == "llama-30b")
        return llama30B();
    if (name == "llama-70b")
        return llama70B();
    CHM_FATAL("unknown model preset: " << name);
}

} // namespace chameleon::model
