/**
 * @file
 * LoRA adapter descriptors and adapter pools.
 *
 * An adapter is identified by a dense integer id and characterised by its
 * rank; its byte footprint follows from the base model geometry. The
 * AdapterPool builds the evaluation configuration of §5.1: Na adapters,
 * ranks drawn from {8, 16, 32, 64, 128} with equal counts per rank.
 */

#ifndef CHAMELEON_MODEL_ADAPTER_H
#define CHAMELEON_MODEL_ADAPTER_H

#include <cstdint>
#include <vector>

#include "model/llm.h"

namespace chameleon::model {

/** Dense adapter identifier; kNoAdapter means a base-model-only request. */
using AdapterId = std::int32_t;
constexpr AdapterId kNoAdapter = -1;

/** Static description of one LoRA adapter. */
struct AdapterSpec
{
    AdapterId id = kNoAdapter;
    int rank = 0;
    /** Host->GPU transfer size (fp16 A/B matrices over all layers). */
    std::int64_t bytes = 0;
};

/** Adapter byte footprint for a rank on a given base model. */
std::int64_t adapterBytes(const ModelSpec &model, int rank);

/** The rank set used throughout the paper's evaluation. */
const std::vector<int> &paperRanks();

/**
 * A fixed catalogue of adapters for one serving deployment.
 *
 * Ranks are assigned round-robin over the rank set so each rank gets
 * an equal share of adapters (§5.1).
 */
class AdapterPool
{
  public:
    /** Build a pool of count adapters over the given base model. */
    AdapterPool(const ModelSpec &model, int count);

    /** Build a pool with an explicit rank list (one entry per adapter). */
    AdapterPool(const ModelSpec &model, const std::vector<int> &ranks);

    const AdapterSpec &spec(AdapterId id) const;
    int size() const { return static_cast<int>(specs_.size()); }

    /** Largest adapter byte size in the pool (WRS normalisation). */
    std::int64_t maxBytes() const { return maxBytes_; }
    /** Largest rank in the pool. */
    int maxRank() const { return maxRank_; }

    const std::vector<AdapterSpec> &specs() const { return specs_; }

  private:
    std::vector<AdapterSpec> specs_;
    std::int64_t maxBytes_ = 0;
    int maxRank_ = 0;
};

} // namespace chameleon::model

#endif // CHAMELEON_MODEL_ADAPTER_H
