#include "model/cost_model.h"

#include <cmath>

#include "simkit/check.h"

namespace chameleon::model {

using sim::SimTime;

CostModel::CostModel(ModelSpec model, GpuSpec gpu, int tpDegree,
                     CostParams params)
    : model_(std::move(model)), gpu_(std::move(gpu)), tp_(tpDegree),
      params_(params)
{
    CHM_CHECK(tp_ >= 1 && (tp_ & (tp_ - 1)) == 0,
              "TP degree must be a power of two, got " << tp_);
}

double
CostModel::tpEfficiency() const
{
    const double log2tp = std::log2(static_cast<double>(tp_));
    const double eff = 1.0 - params_.tpEffLossPerLog2 * log2tp;
    return eff > 0.1 ? eff : 0.1;
}

double
CostModel::effectiveFlops() const
{
    return gpu_.fp16Flops * params_.computeUtil * tp_ * tpEfficiency();
}

double
CostModel::effectiveMemBandwidth() const
{
    return gpu_.memBandwidth * params_.memUtil * tp_ * tpEfficiency();
}

SimTime
CostModel::prefillTime(std::int64_t tokens) const
{
    CHM_CHECK(tokens >= 0, "negative token count");
    const double secs =
        static_cast<double>(tokens) * model_.flopsPerToken() /
        effectiveFlops();
    return sim::fromSeconds(secs);
}

SimTime
CostModel::adapterPrefillTime(int rank, std::int64_t tokens) const
{
    if (rank <= 0 || tokens <= 0)
        return 0;
    // Theoretical extra FLOPs of the decoupled LoRA matmuls, inflated by
    // the measured MBGMM kernel inefficiency, plus the fixed gather cost.
    const double lora_flops =
        2.0 * static_cast<double>(model_.loraDimsPerLayer()) * rank *
        model_.layers * static_cast<double>(tokens);
    const double secs =
        params_.loraIneff * lora_flops / effectiveFlops() +
        params_.mbgmmFixedMs * 1e-3;
    return sim::fromSeconds(secs);
}

SimTime
CostModel::prefillStepTime(
    const std::vector<std::pair<std::int64_t, int>> &reqs) const
{
    SimTime total = sim::fromMillis(params_.prefillFixedMs);
    bool any_adapter = false;
    std::int64_t tokens = 0;
    for (const auto &[tok, rank] : reqs) {
        tokens += tok;
        if (rank > 0) {
            // Per-request variable part only; fixed MBGMM cost added once.
            total += adapterPrefillTime(rank, tok) -
                     sim::fromMillis(params_.mbgmmFixedMs);
            any_adapter = true;
        }
    }
    total += prefillTime(tokens);
    if (any_adapter)
        total += sim::fromMillis(params_.mbgmmFixedMs);
    return total;
}

SimTime
CostModel::decodeIterTime(const std::vector<DecodeSlot> &batch) const
{
    if (batch.empty())
        return 0;
    const double bw = effectiveMemBandwidth();
    // Weight shards are read once per iteration, in parallel across the
    // TP group (each rank streams its own 1/tp of the weights).
    double secs = static_cast<double>(model_.weightsBytes()) / tp_ /
                  (gpu_.memBandwidth * params_.memUtil);
    secs += params_.decodeFixedMs * 1e-3;
    bool any_adapter = false;
    std::int64_t kv_bytes = 0;
    for (const auto &slot : batch) {
        kv_bytes += slot.kvTokens * model_.kvBytesPerToken();
        secs += params_.decodeReqUs * 1e-6;
        if (slot.rank > 0) {
            any_adapter = true;
            secs += params_.decodeRankUs * 1e-6 * slot.rank;
        }
    }
    secs += static_cast<double>(kv_bytes) / bw;
    if (any_adapter)
        secs += params_.mbgmvFixedMs * 1e-3;
    return sim::fromSeconds(secs);
}

SimTime
CostModel::adapterLoadTime(std::int64_t bytes) const
{
    CHM_CHECK(bytes > 0, "adapter transfer needs positive size");
    double secs = gpu_.pcieSetupSeconds +
                  static_cast<double>(bytes) / gpu_.pcieBandwidth;
    // Under TP each rank receives its partition and the group synchronises
    // before the adapter is usable (§3.2).
    secs += params_.tpSyncMs * 1e-3 * (tp_ - 1);
    return sim::fromSeconds(secs);
}

SimTime
CostModel::isolatedTtft(std::int64_t inputTokens, int rank,
                        std::int64_t adapterBytes, bool includeLoad) const
{
    SimTime t = sim::fromMillis(params_.prefillFixedMs) +
                prefillTime(inputTokens) +
                adapterPrefillTime(rank, inputTokens);
    if (includeLoad && rank > 0)
        t += adapterLoadTime(adapterBytes);
    return t;
}

SimTime
CostModel::isolatedE2e(std::int64_t inputTokens, std::int64_t outputTokens,
                       int rank, std::int64_t adapterBytes,
                       bool includeLoad) const
{
    SimTime t = isolatedTtft(inputTokens, rank, adapterBytes, includeLoad);
    // First output token is produced by the prefill step itself; the
    // remaining outputTokens-1 come from single-request decode iterations
    // with a growing KV footprint.
    for (std::int64_t i = 1; i < outputTokens; ++i) {
        DecodeSlot slot{inputTokens + i, rank};
        t += decodeIterTime({slot});
    }
    return t;
}

bool
operator==(const CostParams &a, const CostParams &b)
{
    return a.computeUtil == b.computeUtil && a.memUtil == b.memUtil &&
           a.prefillFixedMs == b.prefillFixedMs &&
           a.mbgmmFixedMs == b.mbgmmFixedMs && a.loraIneff == b.loraIneff &&
           a.decodeFixedMs == b.decodeFixedMs &&
           a.decodeReqUs == b.decodeReqUs &&
           a.mbgmvFixedMs == b.mbgmvFixedMs &&
           a.decodeRankUs == b.decodeRankUs && a.tpSyncMs == b.tpSyncMs &&
           a.tpEffLossPerLog2 == b.tpEffLossPerLog2;
}

} // namespace chameleon::model
