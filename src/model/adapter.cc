#include "model/adapter.h"

#include "simkit/check.h"

namespace chameleon::model {

std::int64_t
adapterBytes(const ModelSpec &model, int rank)
{
    CHM_CHECK(rank > 0, "adapter rank must be positive");
    // fp16: 2 bytes per parameter.
    return model.loraDimsPerLayer() * rank * model.layers * 2;
}

const std::vector<int> &
paperRanks()
{
    static const std::vector<int> ranks{8, 16, 32, 64, 128};
    return ranks;
}

AdapterPool::AdapterPool(const ModelSpec &model, int count)
{
    CHM_CHECK(count > 0, "adapter pool must be non-empty");
    const auto &ranks = paperRanks();
    std::vector<int> assigned;
    assigned.reserve(count);
    // Equal number of adapters per rank (paper §5.1: Na/5 per rank),
    // grouped so adapters [0, Na/5) are rank 8, the next block rank 16...
    for (int i = 0; i < count; ++i) {
        const auto bucket =
            static_cast<std::size_t>(i) * ranks.size() /
            static_cast<std::size_t>(count);
        assigned.push_back(ranks[bucket]);
    }
    *this = AdapterPool(model, assigned);
}

AdapterPool::AdapterPool(const ModelSpec &model, const std::vector<int> &ranks)
{
    CHM_CHECK(!ranks.empty(), "adapter pool must be non-empty");
    specs_.reserve(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        AdapterSpec spec;
        spec.id = static_cast<AdapterId>(i);
        spec.rank = ranks[i];
        spec.bytes = adapterBytes(model, ranks[i]);
        maxBytes_ = std::max(maxBytes_, spec.bytes);
        maxRank_ = std::max(maxRank_, spec.rank);
        specs_.push_back(spec);
    }
}

const AdapterSpec &
AdapterPool::spec(AdapterId id) const
{
    CHM_CHECK(id >= 0 && id < size(), "adapter id out of range: " << id);
    return specs_[static_cast<std::size_t>(id)];
}

} // namespace chameleon::model
