/**
 * @file
 * Baseline adapter management: the S-LoRA policy.
 *
 * Keeps the base model resident and fetches adapters on demand; issues
 * asynchronous prefetches for the adapters of queued requests; discards
 * an adapter from GPU memory as soon as no running or queued request
 * references it (Fig. 1, §2). No idle caching — the behaviour Chameleon
 * argues against.
 */

#ifndef CHAMELEON_SERVING_SLORA_ADAPTER_MANAGER_H
#define CHAMELEON_SERVING_SLORA_ADAPTER_MANAGER_H

#include <unordered_map>

#include "gpu/gpu_memory.h"
#include "gpu/pcie_link.h"
#include "serving/adapter_manager.h"

namespace chameleon::serving {

/** Fetch-on-demand + queue-prefetch + discard-on-idle. */
class SLoraAdapterManager : public AdapterManager
{
  public:
    /**
     * @param pool adapter catalogue
     * @param mem engine memory accountant
     * @param link host->GPU transfer queue
     * @param prefetchEnabled issue async prefetches for queued requests
     */
    SLoraAdapterManager(const model::AdapterPool &pool, gpu::GpuMemory &mem,
                        gpu::PcieLink &link, bool prefetchEnabled = true);

    const char *name() const override { return "slora"; }

    bool isResident(model::AdapterId id) const override;
    sim::SimTime acquire(model::AdapterId id, sim::SimTime now) override;
    void release(model::AdapterId id) override;
    bool canMakeResident(model::AdapterId id) const override;
    void onRequestQueued(model::AdapterId id, sim::SimTime now) override;
    void onRequestDequeued(model::AdapterId id) override;
    void onSchedulingCycle(const std::vector<model::AdapterId> &queued,
                           sim::SimTime now) override;
    bool tryFreeMemory(std::int64_t bytes) override;

    std::int64_t hits() const override { return hits_; }
    std::int64_t misses() const override { return misses_; }
    std::int64_t cachedBytes() const override { return 0; }

  private:
    enum class State { NotResident, Loading, Resident };

    struct Entry
    {
        State state = State::NotResident;
        int runningRc = 0;
        int queuedRc = 0;
        sim::SimTime readyAt = 0;
    };

    Entry &entry(model::AdapterId id);
    const Entry *find(model::AdapterId id) const;
    /** Start a transfer if memory allows; returns completion or Never. */
    sim::SimTime startLoad(model::AdapterId id, Entry &e, bool prefetch);
    /** Free the adapter when wholly unreferenced. */
    void maybeDiscard(model::AdapterId id, Entry &e);

    const model::AdapterPool &pool_;
    gpu::GpuMemory &mem_;
    gpu::PcieLink &link_;
    bool prefetchEnabled_;
    std::unordered_map<model::AdapterId, Entry> entries_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_SLORA_ADAPTER_MANAGER_H
