/**
 * @file
 * Service-level-objective helpers.
 *
 * The paper sets the SLO to 5x the average request execution time in a
 * low-load system (§5.1) and defines throughput as the highest load a
 * system sustains without violating the P99 TTFT SLO (§5.2.2).
 */

#ifndef CHAMELEON_SERVING_SLO_H
#define CHAMELEON_SERVING_SLO_H

#include "model/adapter.h"
#include "model/cost_model.h"
#include "serving/metrics.h"
#include "simkit/time.h"
#include "workload/trace.h"

namespace chameleon::serving {

/**
 * Mean isolated (run-alone) end-to-end latency over a trace, from the
 * cost model; the basis of both the SLO and per-request slowdowns.
 */
sim::SimTime meanIsolatedE2e(const workload::Trace &trace,
                             const model::CostModel &cost,
                             const model::AdapterPool *pool);

/** Paper SLO: multiplier (default 5) times the mean isolated latency. */
sim::SimTime computeSlo(const workload::Trace &trace,
                        const model::CostModel &cost,
                        const model::AdapterPool *pool,
                        double multiplier = 5.0);

/** Per-request slowdown samples: observed E2E / isolated E2E (§3.3). */
sim::PercentileTracker slowdowns(const std::vector<RequestRecord> &records,
                                 const model::CostModel &cost,
                                 const model::AdapterPool *pool);

/**
 * Throughput knee: the largest load (from an ascending (rps, p99Ttft)
 * series) whose P99 TTFT stays at or under the SLO. Interpolates
 * linearly between the last compliant and first violating point.
 */
double throughputKnee(const std::vector<std::pair<double, double>> &rpsToP99,
                      double sloSeconds);

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_SLO_H
