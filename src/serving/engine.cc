#include "serving/engine.h"

#include <algorithm>
#include <utility>

#include "simkit/check.h"
#include "simkit/log.h"

namespace chameleon::serving {

using sim::SimTime;

namespace {
/** Initial iteration-time guess before any iteration has run. */
constexpr double kInitIterUs = 30.0 * 1000.0;
/** EWMA weight of the newest iteration sample. */
constexpr double kIterEwmaAlpha = 0.05;
} // namespace

RequestRecord makeRecord(const LiveRequest &r); // metrics.cc

double
nominalServiceRate(const EngineConfig &config)
{
    const model::CostModel cost(config.model, config.gpu,
                                config.tpDegree, config.cost);
    const sim::SimTime e2e = cost.isolatedE2e(
        model::kMediumInputTokens, /*outputTokens=*/128, /*rank=*/0,
        /*adapterBytes=*/0, /*includeLoad=*/false);
    CHM_CHECK(e2e > 0, "cost model produced a non-positive latency");
    return 1.0 / sim::toSeconds(e2e);
}

std::vector<EngineConfig>
fleetEngines(const EngineConfig &base,
             const std::vector<model::GpuSpec> &gpus)
{
    std::vector<EngineConfig> engines;
    engines.reserve(gpus.size());
    for (const auto &gpu : gpus) {
        EngineConfig cfg = base;
        cfg.gpu = gpu;
        engines.push_back(std::move(cfg));
    }
    return engines;
}

ServingEngine::ServingEngine(sim::Simulator &simulator, EngineConfig config,
                             const model::AdapterPool *pool,
                             std::unique_ptr<Scheduler> scheduler,
                             predict::OutputPredictor *predictor)
    : sim_(simulator), config_(std::move(config)), pool_(pool),
      cost_(config_.model, config_.gpu, config_.tpDegree, config_.cost),
      scheduler_(std::move(scheduler)), predictor_(predictor),
      ewmaIterUs_(kInitIterUs)
{
    CHM_CHECK(scheduler_ != nullptr, "engine needs a scheduler");
    CHM_CHECK(predictor_ != nullptr, "engine needs a length predictor");
    const std::int64_t capacity =
        static_cast<std::int64_t>(config_.tpDegree) * config_.gpu.memBytes;
    const std::int64_t workspace =
        static_cast<std::int64_t>(config_.tpDegree) * config_.workspacePerGpu;
    mem_ = std::make_unique<gpu::GpuMemory>(
        capacity, config_.model.weightsBytes(), workspace);
    kv_ = std::make_unique<gpu::KvCache>(
        *mem_, config_.model.kvBytesPerToken(), config_.kvPageTokens);
    link_ = std::make_unique<gpu::PcieLink>(
        sim_, [this](std::int64_t bytes) {
            return cost_.adapterLoadTime(bytes);
        });
}

ServingEngine::~ServingEngine() = default;

void
ServingEngine::setAdapterManager(std::unique_ptr<AdapterManager> manager)
{
    CHM_CHECK(adapterMgr_ == nullptr, "adapter manager already installed");
    adapterMgr_ = std::move(manager);
    if (trace_ != nullptr)
        adapterMgr_->setTraceRecorder(trace_, tracePid_);
}

void
ServingEngine::setTraceRecorder(obs::TraceRecorder *recorder, int pid)
{
    trace_ = recorder;
    tracePid_ = pid;
    if (adapterMgr_ != nullptr)
        adapterMgr_->setTraceRecorder(recorder, pid);
}

void
ServingEngine::submit(const workload::Request &request)
{
    LiveRequest *live = requests_.allocate();
    live->req = request;
    live->arrival = request.arrival;
    live->predictedOutput = predictor_->predict(request);
    if (request.adapter != model::kNoAdapter) {
        CHM_CHECK(pool_ != nullptr, "adapter request without a pool");
        const auto &spec = pool_->spec(request.adapter);
        live->rank = spec.rank;
        live->adapterBytes = spec.bytes;
    }
    sim_.scheduleAt(request.arrival, [this, live] { onArrival(live); });
}

void
ServingEngine::submitTrace(const workload::Trace &trace)
{
    for (const auto &r : trace.requests())
        submit(r);
}

void
ServingEngine::onArrival(LiveRequest *r)
{
    CHM_CHECK(adapterMgr_ != nullptr, "no adapter manager installed");
    ++stats_.submitted;
    r->phase = RequestPhase::Waiting;
    scheduler_->enqueue(r);
    if (r->hasAdapter())
        adapterMgr_->onRequestQueued(r->req.adapter, sim_.now());
    maybeStartIteration();
}

SimTime
ServingEngine::avgIterTime() const
{
    return static_cast<SimTime>(ewmaIterUs_);
}

SimTime
ServingEngine::estimateMemoryFreeTime(std::int64_t bytes) const
{
    // Project each running request's completion from its predicted
    // remaining output, then walk completions until enough bytes free.
    std::vector<std::pair<SimTime, std::int64_t>> frees;
    frees.reserve(running_.size());
    for (const LiveRequest *r : running_) {
        const std::int64_t remaining =
            std::max<std::int64_t>(1, r->predictedOutput - r->generated);
        const SimTime when = sim_.now() + remaining * avgIterTime();
        const std::int64_t freed =
            kv_->bytesForTokens(r->req.inputTokens + r->generated) +
            r->adapterBytes;
        frees.emplace_back(when, freed);
    }
    std::sort(frees.begin(), frees.end());
    std::int64_t acc = mem_->freeBytes();
    for (const auto &[when, freed] : frees) {
        acc += freed;
        if (acc >= bytes)
            return when;
    }
    return sim::kTimeNever;
}

SimTime
ServingEngine::estimateExecTime(const LiveRequest *r) const
{
    const SimTime prefill =
        cost_.prefillTime(r->remainingPrefill()) +
        cost_.adapterPrefillTime(r->rank, r->remainingPrefill());
    const std::int64_t remaining =
        std::max<std::int64_t>(1, r->predictedOutput - r->generated);
    return prefill + remaining * avgIterTime();
}

ReserveResult
ServingEngine::tryReserve(LiveRequest *r)
{
    const int active = static_cast<int>(running_.size() +
                                        prefilling_.size());
    if (active >= config_.maxRunning)
        return ReserveResult::BatchFull;

    // KV reservation for the prompt plus the generation budget: the
    // conservative maximum for baselines, the predicted length under
    // Chameleon's prediction-driven admission.
    const std::int64_t gen_budget =
        config_.predictedReservation
            ? std::max<std::int64_t>(r->predictedOutput, 8)
            : config_.maxNewTokens;
    const std::int64_t kvTokens = r->req.inputTokens + gen_budget;
    if (!kv_->tryReserve(r->req.id, kvTokens)) {
        const std::int64_t need = kv_->bytesForTokens(kvTokens);
        adapterMgr_->tryFreeMemory(need);
        if (!kv_->tryReserve(r->req.id, kvTokens))
            return ReserveResult::NoKvMemory;
    }

    if (r->hasAdapter()) {
        SimTime ready = adapterMgr_->acquire(r->req.adapter, sim_.now());
        if (ready == sim::kTimeNever) {
            // Shrink the idle-adapter cache and retry once.
            adapterMgr_->tryFreeMemory(r->adapterBytes);
            ready = adapterMgr_->acquire(r->req.adapter, sim_.now());
        }
        if (ready == sim::kTimeNever) {
            kv_->release(r->req.id);
            return ReserveResult::NoAdapterMemory;
        }
        r->adapterReadyTime = ready;
        r->adapterStall = std::max<SimTime>(0, ready - sim_.now());
    } else {
        r->adapterReadyTime = sim_.now();
        r->adapterStall = 0;
    }
    return ReserveResult::Ok;
}

AdmissionContext
ServingEngine::makeContext()
{
    AdmissionContext ctx;
    ctx.now = sim_.now();
    ctx.prefillTokenBudget = config_.admissionTokenBudget;
    ctx.admissionSlots = config_.maxAdmissionsPerIter;
    ctx.tryReserve = [this](LiveRequest *r) { return tryReserve(r); };
    ctx.estimateMemoryFree = [this](std::int64_t bytes) {
        return estimateMemoryFreeTime(bytes);
    };
    ctx.estimateExecTime = [this](const LiveRequest *r) {
        return estimateExecTime(r);
    };
    ctx.freeBytes = [this] { return mem_->freeBytes(); };
    ctx.heldBytes = [this](const LiveRequest *r) {
        return kv_->bytesForTokens(r->req.inputTokens + r->generated + 1) +
               r->adapterBytes;
    };
    ctx.squashForBypass = [this](LiveRequest *r) {
        ++stats_.squashes;
        ++r->squashCount;
        if (trace_ != nullptr) {
            trace_->instant(tracePid_, obs::Lane::Engine, "squash",
                            sim_.now(),
                            {{"request", r->req.id},
                             {"adapter", r->req.adapter}});
        }
        squash(r);
    };
    ctx.noteBypass = [this] {
        ++stats_.bypasses;
        if (trace_ != nullptr) {
            trace_->instant(tracePid_, obs::Lane::Engine, "bypass",
                            sim_.now());
        }
    };
    return ctx;
}

void
ServingEngine::sampleMemory()
{
    const SimTime now = sim_.now();
    if (lastMemSample_ != sim::kTimeNever &&
        now - lastMemSample_ < config_.memSamplePeriod) {
        return;
    }
    lastMemSample_ = now;
    stats_.memTotalUsed.record(
        now, static_cast<double>(mem_->capacity() - mem_->freeBytes()));
    stats_.memKv.record(now, static_cast<double>(mem_->kvBytes()));
    stats_.memAdapterCache.record(
        now, static_cast<double>(adapterMgr_->cachedBytes()));
    if (trace_ != nullptr) {
        trace_->counter(tracePid_, "memory_bytes", now,
                        {{"kv", mem_->kvBytes()},
                         {"adapter_cache", adapterMgr_->cachedBytes()},
                         {"used", mem_->capacity() - mem_->freeBytes()}});
        trace_->counter(tracePid_, "requests", now,
                        {{"running", running_.size()},
                         {"prefilling", prefilling_.size()},
                         {"waiting", scheduler_->waitingCount()}});
    }
}

void
ServingEngine::maybeStartIteration()
{
    if (iterationInFlight_)
        return;
    if (running_.empty() && prefilling_.empty() && !scheduler_->hasWaiting())
        return;
    startIteration();
}

void
ServingEngine::startIteration()
{
    const SimTime now = sim_.now();
    sampleMemory();

    // Prefetch / pin refresh over the adapters of waiting requests.
    std::vector<model::AdapterId> queued_adapters;
    for (const LiveRequest *r : scheduler_->waitingSnapshot()) {
        if (r->hasAdapter())
            queued_adapters.push_back(r->req.adapter);
    }
    adapterMgr_->onSchedulingCycle(queued_adapters, now);

    // Admissions.
    AdmissionContext ctx = makeContext();
    for (LiveRequest *r : scheduler_->selectAdmissions(ctx)) {
        if (r->admitTime == sim::kTimeNever)
            r->admitTime = now;
        r->phase = RequestPhase::Prefilling;
        prefilling_.push_back(r);
        if (r->hasAdapter())
            adapterMgr_->onRequestDequeued(r->req.adapter);
    }

    // Assemble this iteration's prefill slice in admission order within
    // the chunk budget. A request whose adapter transfer is still in
    // flight is skipped: its own first token waits for the load (the
    // per-request critical-path cost of §3.2 / Fig. 14) while the rest
    // of the batch proceeds.
    std::vector<LiveRequest *> slice;
    std::vector<std::int64_t> taken;
    std::vector<std::pair<std::int64_t, int>> prefill_work;
    std::int64_t budget = config_.prefillChunkTokens;
    SimTime earliest_adapter = sim::kTimeNever;
    for (LiveRequest *r : prefilling_) {
        if (budget <= 0)
            break;
        if (r->adapterReadyTime > now) {
            if (earliest_adapter == sim::kTimeNever ||
                r->adapterReadyTime < earliest_adapter) {
                earliest_adapter = r->adapterReadyTime;
            }
            continue; // loading on this request's critical path
        }
        const std::int64_t take = std::min(r->remainingPrefill(), budget);
        if (take <= 0)
            continue;
        slice.push_back(r);
        taken.push_back(take);
        prefill_work.emplace_back(take, r->rank);
        budget -= take;
    }

    if (slice.empty() && running_.empty()) {
        if (earliest_adapter != sim::kTimeNever) {
            // Idle until the blocking transfer lands.
            sim_.scheduleAt(earliest_adapter,
                            [this] { maybeStartIteration(); });
        } else if (scheduler_->hasWaiting()) {
            // Nothing admissible right now; retry when the link drains
            // (a failed prefetch may fit) or warn on a terminal stall.
            if (link_->busy()) {
                sim_.scheduleAfter(sim::kMsec,
                                   [this] { maybeStartIteration(); });
            } else {
                CHM_WARN("engine stalled with "
                         << scheduler_->waitingCount()
                         << " waiting requests and no running work");
            }
        }
        return;
    }

    SimTime duration = 0;
    if (!prefill_work.empty())
        duration += cost_.prefillStepTime(prefill_work);
    if (!running_.empty()) {
        std::vector<model::DecodeSlot> slots;
        slots.reserve(running_.size());
        for (const LiveRequest *r : running_) {
            slots.push_back(model::DecodeSlot{
                r->req.inputTokens + r->generated, r->rank});
        }
        duration += cost_.decodeIterTime(slots);
    }
    CHM_CHECK(duration > 0, "iteration with work must take time");

    iterationInFlight_ = true;
    sim_.scheduleAfter(duration, [this, duration, slice = std::move(slice),
                                  taken = std::move(taken)]() mutable {
        finishIteration(duration, std::move(slice), std::move(taken));
    });
}

bool
ServingEngine::growKv(LiveRequest *r)
{
    const std::int64_t tokens = r->req.inputTokens + r->generated;
    if (kv_->tryReserve(r->req.id, tokens))
        return true;
    adapterMgr_->tryFreeMemory(kv_->bytesForTokens(tokens));
    return kv_->tryReserve(r->req.id, tokens);
}

void
ServingEngine::preemptForMemory()
{
    // Memory-pressure fallback: recompute-style preemption of the
    // youngest running request (vLLM semantics). Rare when admission
    // control is sane; counted so experiments can report it.
    CHM_CHECK(!running_.empty(), "preemption with empty batch");
    LiveRequest *victim = running_.back();
    ++stats_.preemptions;
    ++victim->preemptCount;
    if (trace_ != nullptr) {
        trace_->instant(tracePid_, obs::Lane::Engine, "preempt",
                        sim_.now(),
                        {{"request", victim->req.id},
                         {"generated", victim->generated}});
    }
    squash(victim);
}

void
ServingEngine::finishIteration(SimTime duration,
                               std::vector<LiveRequest *> slice,
                               std::vector<std::int64_t> taken)
{
    const SimTime now = sim_.now();
    ++stats_.iterations;
    stats_.busyTime += duration;
    stats_.decodeTokens += static_cast<std::int64_t>(running_.size());
    stats_.batchSizeAccum += static_cast<std::int64_t>(running_.size());
    for (const std::int64_t t : taken)
        stats_.prefillTokens += t;
    ewmaIterUs_ = (1.0 - kIterEwmaAlpha) * ewmaIterUs_ +
                  kIterEwmaAlpha * static_cast<double>(duration);

    // Decode step: one token per running request. Work on a snapshot so
    // requests promoted from prefill below do not decode this iteration.
    if (!running_.empty())
        stats_.tbt.add(sim::toMillis(duration));
    std::vector<LiveRequest *> still_running;
    still_running.reserve(running_.size());
    std::vector<LiveRequest *> finished;
    for (LiveRequest *r : running_) {
        ++r->generated;
        r->lastTokenTime = now;
        if (r->generated >= r->req.outputTokens) {
            finished.push_back(r);
        } else {
            still_running.push_back(r);
        }
    }
    running_ = std::move(still_running);
    for (LiveRequest *r : finished)
        finishRequest(r);

    // Grow KV for survivors; preempt under unrecoverable pressure. Each
    // preemption releases the youngest request's memory, so the loop
    // makes progress until the growth fits or the batch empties.
    for (std::size_t i = 0; i < running_.size();) {
        LiveRequest *r = running_[i];
        if (growKv(r)) {
            ++i;
            continue;
        }
        preemptForMemory();
        // Retry the same index: either r is still there (victim was the
        // youngest, behind it) or r itself was evicted and the index now
        // points at the next survivor.
    }

    // Prefill progress.
    for (std::size_t i = 0; i < slice.size(); ++i) {
        LiveRequest *r = slice[i];
        if (r->phase != RequestPhase::Prefilling)
            continue; // squashed mid-iteration by preemption
        r->prefilled += taken[i];
        CHM_CHECK(r->prefilled <= r->req.inputTokens, "prefill overshoot");
        if (!r->prefillDone())
            continue;
        // First token produced by the prefill step.
        r->firstTokenTime = now;
        r->lastTokenTime = now;
        r->generated = 1;
        prefilling_.erase(
            std::find(prefilling_.begin(), prefilling_.end(), r));
        if (r->generated >= r->req.outputTokens) {
            finishRequest(r);
        } else {
            r->phase = RequestPhase::Running;
            running_.push_back(r);
        }
    }

    scheduler_->onIterationEnd(now);
    iterationInFlight_ = false;
    maybeStartIteration();
}

void
ServingEngine::releaseResources(LiveRequest *r)
{
    kv_->release(r->req.id);
    if (r->hasAdapter() && r->adapterReadyTime != sim::kTimeNever)
        adapterMgr_->release(r->req.adapter);
}

void
ServingEngine::finishRequest(LiveRequest *r)
{
    r->phase = RequestPhase::Finished;
    r->finishTime = sim_.now();
    releaseResources(r);
    // One TTFT sample per request, from its final (non-squashed) run.
    const double ttft_s = sim::toSeconds(r->firstTokenTime - r->arrival);
    stats_.ttft.add(ttft_s);
    stats_.ttftOverTime.record(r->firstTokenTime, ttft_s);
    if (r->hasAdapter())
        stats_.loadStall.add(sim::toMillis(r->adapterStall));
    stats_.e2e.add(sim::toSeconds(r->finishTime - r->arrival));
    stats_.queueDelay.add(sim::toSeconds(r->queueDelay()));
    stats_.records.push_back(makeRecord(*r));
    ++stats_.finished;
    if (trace_ != nullptr)
        emitRequestTrace(r);
    if (onFinish_)
        onFinish_(sim_.now());
    predictor_->observe(r->req);
    scheduler_->onRequestFinished(r);
}

/**
 * Write the request's lifecycle as async spans (category "request",
 * id = request id) from its recorded timestamps: one enclosing span
 * plus queue wait -> adapter fetch -> prefill -> decode phases. Emitted
 * retrospectively at finish time, so tracing schedules nothing and the
 * simulation's event sequence is untouched.
 */
void
ServingEngine::emitRequestTrace(const LiveRequest *r)
{
    const char *cat = "request";
    const auto id = static_cast<std::int64_t>(r->req.id);
    trace_->asyncBegin(tracePid_, cat, id, "request", r->arrival,
                       {{"input", r->req.inputTokens},
                        {"output", r->req.outputTokens},
                        {"adapter", r->req.adapter},
                        {"tenant", r->req.tenant},
                        {"rank", r->rank},
                        {"squashes", r->squashCount},
                        {"preempts", r->preemptCount}});
    // Per-tenant completion lanes: one counter track per tenant, so a
    // Perfetto timeline shows each tenant's progress under a storm.
    const std::string lane =
        "tenant" + std::to_string(r->req.tenant) + "_finished";
    trace_->counter(tracePid_, lane.c_str(), r->finishTime,
                    {{"finished", ++tenantFinished_[r->req.tenant]}});
    const SimTime admit =
        r->admitTime == sim::kTimeNever ? r->arrival : r->admitTime;
    if (admit > r->arrival) {
        trace_->asyncBegin(tracePid_, cat, id, "queue_wait", r->arrival);
        trace_->asyncEnd(tracePid_, cat, id, "queue_wait", admit);
    }
    // The stall is the portion of the (final) adapter transfer this
    // request actually waited on after admission.
    SimTime prefillStart = admit;
    if (r->adapterStall > 0) {
        trace_->asyncBegin(tracePid_, cat, id, "adapter_fetch", admit,
                           {{"stall_us", r->adapterStall}});
        trace_->asyncEnd(tracePid_, cat, id, "adapter_fetch",
                         admit + r->adapterStall);
        prefillStart = admit + r->adapterStall;
    }
    if (r->firstTokenTime > prefillStart) {
        trace_->asyncBegin(tracePid_, cat, id, "prefill", prefillStart,
                           {{"tokens", r->req.inputTokens}});
        trace_->asyncEnd(tracePid_, cat, id, "prefill",
                         r->firstTokenTime);
    }
    if (r->finishTime > r->firstTokenTime) {
        trace_->asyncBegin(tracePid_, cat, id, "decode",
                           r->firstTokenTime,
                           {{"tokens", r->req.outputTokens}});
        trace_->asyncEnd(tracePid_, cat, id, "decode", r->finishTime);
    }
    trace_->asyncEnd(tracePid_, cat, id, "request", r->finishTime);
}

void
ServingEngine::squash(LiveRequest *r)
{
    CHM_CHECK(r->phase == RequestPhase::Prefilling ||
                  r->phase == RequestPhase::Running,
              "can only squash admitted requests");
    auto drop = [r](std::vector<LiveRequest *> &v) {
        auto it = std::find(v.begin(), v.end(), r);
        if (it != v.end())
            v.erase(it);
    };
    drop(prefilling_);
    drop(running_);
    releaseResources(r);
    r->phase = RequestPhase::Waiting;
    r->prefilled = 0;
    r->generated = 0;
    r->firstTokenTime = sim::kTimeNever;
    r->lastTokenTime = sim::kTimeNever;
    r->adapterReadyTime = 0;
    scheduler_->requeueFront(r);
    if (r->hasAdapter())
        adapterMgr_->onRequestQueued(r->req.adapter, sim_.now());
}

LiveRequest *
ServingEngine::findRequest(workload::RequestId id)
{
    LiveRequest *found = nullptr;
    requests_.scan([&](LiveRequest &r) {
        if (r.req.id != id)
            return true;
        found = &r;
        return false;
    });
    return found;
}

std::int64_t
ServingEngine::outstanding() const
{
    return stats_.submitted - stats_.finished;
}

void
ServingEngine::finalize()
{
    stats_.adapterHits = adapterMgr_->hits();
    stats_.adapterMisses = adapterMgr_->misses();
}

bool
operator==(const EngineConfig &a, const EngineConfig &b)
{
    return a.model == b.model && a.gpu == b.gpu &&
           a.tpDegree == b.tpDegree && a.cost == b.cost &&
           a.workspacePerGpu == b.workspacePerGpu &&
           a.admissionTokenBudget == b.admissionTokenBudget &&
           a.maxNewTokens == b.maxNewTokens &&
           a.predictedReservation == b.predictedReservation &&
           a.prefillChunkTokens == b.prefillChunkTokens &&
           a.maxAdmissionsPerIter == b.maxAdmissionsPerIter &&
           a.maxRunning == b.maxRunning &&
           a.kvPageTokens == b.kvPageTokens &&
           a.memSamplePeriod == b.memSamplePeriod;
}

} // namespace chameleon::serving
