/**
 * @file
 * Mutable per-request state tracked by a serving engine.
 */

#ifndef CHAMELEON_SERVING_LIVE_REQUEST_H
#define CHAMELEON_SERVING_LIVE_REQUEST_H

#include <cstdint>

#include "simkit/time.h"
#include "workload/request.h"

namespace chameleon::serving {

/** Lifecycle of a request inside an engine. */
enum class RequestPhase {
    Waiting,    ///< In a scheduler queue.
    Prefilling, ///< Admitted; prefill (possibly chunked) in progress.
    Running,    ///< In the decode batch.
    Finished,   ///< All output tokens emitted.
};

/** Live request state; owned by the engine, shared with the scheduler. */
struct LiveRequest
{
    workload::Request req;

    /** Scheduler-visible output-length estimate (predictor output). */
    std::int64_t predictedOutput = 0;
    /** Adapter rank resolved from the pool (0 = base only). */
    int rank = 0;
    /** Adapter transfer size resolved from the pool. */
    std::int64_t adapterBytes = 0;

    RequestPhase phase = RequestPhase::Waiting;

    /** Prefill progress in tokens (chunked prefill advances this). */
    std::int64_t prefilled = 0;
    /** Output tokens generated so far (prefill completion emits #1). */
    std::int64_t generated = 0;

    /** Time the engine accepted the request (trace arrival). */
    sim::SimTime arrival = 0;
    /** First admission out of the wait queue; kTimeNever until then. */
    sim::SimTime admitTime = sim::kTimeNever;
    /** First-token completion; defines TTFT. */
    sim::SimTime firstTokenTime = sim::kTimeNever;
    /** Completion of the last token; defines E2E latency. */
    sim::SimTime finishTime = sim::kTimeNever;
    /** Time the request's adapter became usable after admission. */
    sim::SimTime adapterReadyTime = 0;
    /** Adapter-load time spent on this request's critical path. */
    sim::SimTime adapterStall = 0;
    /** Timestamp of the most recent emitted token (TBT bookkeeping). */
    sim::SimTime lastTokenTime = sim::kTimeNever;

    /** Weighted request size assigned by the Chameleon scheduler. */
    double wrs = 0.0;
    /** Scheduler queue index (0 = smallest class); -1 when unassigned. */
    int queueIndex = -1;
    /** Scheduler quota tokens held while admitted (returned on finish). */
    std::int64_t quotaTokens = 0;

    /** Times this request was squashed by opportunistic bypass. */
    int squashCount = 0;
    /** Times this request was preempted for memory. */
    int preemptCount = 0;

    bool hasAdapter() const { return req.adapter != model::kNoAdapter; }
    std::int64_t remainingPrefill() const { return req.inputTokens - prefilled; }
    bool prefillDone() const { return prefilled >= req.inputTokens; }

    /** Queueing delay (first admission - arrival); 0 if never admitted. */
    sim::SimTime
    queueDelay() const
    {
        return admitTime == sim::kTimeNever ? 0 : admitTime - arrival;
    }
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_LIVE_REQUEST_H
