#include "serving/slora_adapter_manager.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::serving {

using model::AdapterId;
using sim::SimTime;

SLoraAdapterManager::SLoraAdapterManager(const model::AdapterPool &pool,
                                         gpu::GpuMemory &mem,
                                         gpu::PcieLink &link,
                                         bool prefetchEnabled)
    : pool_(pool), mem_(mem), link_(link), prefetchEnabled_(prefetchEnabled)
{
}

SLoraAdapterManager::Entry &
SLoraAdapterManager::entry(AdapterId id)
{
    return entries_[id];
}

const SLoraAdapterManager::Entry *
SLoraAdapterManager::find(AdapterId id) const
{
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
SLoraAdapterManager::isResident(AdapterId id) const
{
    const Entry *e = find(id);
    return e && e->state == State::Resident;
}

SimTime
SLoraAdapterManager::startLoad(AdapterId id, Entry &e, bool prefetch)
{
    CHM_CHECK(e.state == State::NotResident, "load of resident adapter");
    const auto bytes = pool_.spec(id).bytes;
    if (prefetch) {
        // Prefetching for the whole queue must not starve KV growth:
        // keep a headroom of free memory for request state, or the
        // engine deadlocks with all memory pinned by waiting adapters.
        const std::int64_t headroom = mem_.capacity() / 25;
        if (mem_.freeBytes() < bytes + headroom)
            return sim::kTimeNever;
    }
    if (!mem_.tryAllocAdapterInUse(bytes))
        return sim::kTimeNever;
    e.state = State::Loading;
    e.readyAt = link_.enqueue(bytes, [this, id] {
        auto &ent = entries_[id];
        CHM_CHECK(ent.state == State::Loading, "transfer done on non-loading");
        ent.state = State::Resident;
        maybeDiscard(id, ent);
    });
    return e.readyAt;
}

void
SLoraAdapterManager::maybeDiscard(AdapterId id, Entry &e)
{
    // Discard-on-idle: as soon as no running or queued request needs the
    // adapter, its memory is returned (conventional design, §2).
    if (e.state == State::Resident && e.runningRc == 0 && e.queuedRc == 0) {
        mem_.freeAdapterInUse(pool_.spec(id).bytes);
        e.state = State::NotResident;
    }
}

SimTime
SLoraAdapterManager::acquire(AdapterId id, SimTime now)
{
    Entry &e = entry(id);
    SimTime ready;
    switch (e.state) {
      case State::Resident:
        ready = now;
        break;
      case State::Loading:
        ready = std::max(e.readyAt, now);
        break;
      case State::NotResident:
        ready = startLoad(id, e, /*prefetch=*/false);
        if (ready == sim::kTimeNever)
            return sim::kTimeNever;
        break;
      default:
        CHM_PANIC("unreachable adapter state");
    }
    ++e.runningRc;
    return ready;
}

void
SLoraAdapterManager::release(AdapterId id)
{
    Entry &e = entry(id);
    CHM_CHECK(e.runningRc > 0, "release without acquire for adapter " << id);
    --e.runningRc;
    maybeDiscard(id, e);
}

bool
SLoraAdapterManager::canMakeResident(AdapterId id) const
{
    const Entry *e = find(id);
    if (e && e->state != State::NotResident)
        return true;
    return pool_.spec(id).bytes <= mem_.freeBytes();
}

void
SLoraAdapterManager::onRequestQueued(AdapterId id, SimTime)
{
    Entry &e = entry(id);
    ++e.queuedRc;
    // Hit/miss accounting is per arriving request: a hit means the
    // weights were already on the GPU when the request arrived.
    if (e.state == State::Resident) {
        ++hits_;
    } else {
        ++misses_;
    }
    if (prefetchEnabled_ && e.state == State::NotResident)
        startLoad(id, e, /*prefetch=*/true); // best-effort; may not fit
}

void
SLoraAdapterManager::onRequestDequeued(AdapterId id)
{
    Entry &e = entry(id);
    CHM_CHECK(e.queuedRc > 0, "dequeue without queue ref for " << id);
    --e.queuedRc;
    maybeDiscard(id, e);
}

void
SLoraAdapterManager::onSchedulingCycle(const std::vector<AdapterId> &queued,
                                       SimTime)
{
    if (!prefetchEnabled_)
        return;
    // Retry prefetches that previously failed for lack of memory.
    for (AdapterId id : queued) {
        Entry &e = entry(id);
        if (e.state == State::NotResident)
            startLoad(id, e, /*prefetch=*/true);
    }
}

bool
SLoraAdapterManager::tryFreeMemory(std::int64_t bytes)
{
    if (mem_.freeBytes() >= bytes)
        return true;
    // No idle-adapter cache to shrink, but prefetched adapters of
    // queued (not yet running) requests can be reclaimed for request
    // state — they will simply be refetched on demand later.
    for (auto &[id, e] : entries_) {
        if (mem_.freeBytes() >= bytes)
            break;
        if (e.state == State::Resident && e.runningRc == 0) {
            mem_.freeAdapterInUse(pool_.spec(id).bytes);
            e.state = State::NotResident;
        }
    }
    return mem_.freeBytes() >= bytes;
}

} // namespace chameleon::serving
