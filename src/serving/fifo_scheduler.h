/**
 * @file
 * FIFO scheduler: the S-LoRA baseline policy (§3.3).
 *
 * Requests are admitted strictly in arrival order; the first request
 * that cannot reserve resources blocks everything behind it. This is
 * the head-of-line blocking behaviour the paper characterises.
 */

#ifndef CHAMELEON_SERVING_FIFO_SCHEDULER_H
#define CHAMELEON_SERVING_FIFO_SCHEDULER_H

#include <deque>

#include "serving/scheduler.h"

namespace chameleon::serving {

/** Strict arrival-order admission. */
class FifoScheduler : public Scheduler
{
  public:
    const char *name() const override { return "fifo"; }

    void enqueue(LiveRequest *r) override { queue_.push_back(r); }
    void requeueFront(LiveRequest *r) override { queue_.push_front(r); }
    bool hasWaiting() const override { return !queue_.empty(); }
    std::size_t waitingCount() const override { return queue_.size(); }

    std::vector<LiveRequest *> selectAdmissions(
        AdmissionContext &ctx) override;

    std::vector<LiveRequest *> waitingSnapshot() const override;

  private:
    std::deque<LiveRequest *> queue_;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_FIFO_SCHEDULER_H
