#include "serving/metrics.h"

#include "serving/live_request.h"

namespace chameleon::serving {

/** Build the immutable outcome record for a finished request. */
RequestRecord
makeRecord(const LiveRequest &r)
{
    RequestRecord rec;
    rec.id = r.req.id;
    rec.arrival = r.arrival;
    rec.inputTokens = r.req.inputTokens;
    rec.outputTokens = r.req.outputTokens;
    rec.adapter = r.req.adapter;
    rec.tenant = r.req.tenant;
    rec.rank = r.rank;
    rec.ttft = r.firstTokenTime - r.arrival;
    rec.e2e = r.finishTime - r.arrival;
    rec.queueDelay = r.queueDelay();
    rec.adapterStall = r.adapterStall;
    rec.wrs = r.wrs;
    rec.queueIndex = r.queueIndex;
    rec.squashCount = r.squashCount;
    rec.preemptCount = r.preemptCount;
    return rec;
}

} // namespace chameleon::serving
