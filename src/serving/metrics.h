/**
 * @file
 * Request-level records and aggregate engine metrics.
 */

#ifndef CHAMELEON_SERVING_METRICS_H
#define CHAMELEON_SERVING_METRICS_H

#include <cstdint>
#include <vector>

#include "model/adapter.h"
#include "simkit/stats.h"
#include "simkit/time.h"
#include "simkit/timeseries.h"
#include "workload/request.h"

namespace chameleon::serving {

/** Immutable per-request outcome, written when a request finishes. */
struct RequestRecord
{
    std::int64_t id = 0;
    sim::SimTime arrival = 0;
    std::int64_t inputTokens = 0;
    std::int64_t outputTokens = 0;
    model::AdapterId adapter = model::kNoAdapter;
    workload::TenantId tenant = workload::kAnonymousTenant;
    int rank = 0;
    sim::SimTime ttft = 0;
    sim::SimTime e2e = 0;
    sim::SimTime queueDelay = 0;
    sim::SimTime adapterStall = 0;
    double wrs = 0.0;
    int queueIndex = -1;
    int squashCount = 0;
    int preemptCount = 0;
};

/** Aggregated statistics for one simulation run of an engine/cluster. */
struct EngineStats
{
    sim::PercentileTracker ttft;
    sim::PercentileTracker tbt;
    sim::PercentileTracker e2e;
    sim::PercentileTracker queueDelay;
    /** Adapter loading latency on the critical path (Fig. 14). */
    sim::PercentileTracker loadStall;

    std::int64_t submitted = 0;
    std::int64_t finished = 0;
    std::int64_t preemptions = 0;
    std::int64_t squashes = 0;
    std::int64_t bypasses = 0;
    std::int64_t iterations = 0;

    /** Adapter residency checks that hit (no transfer needed). */
    std::int64_t adapterHits = 0;
    /** Residency checks that required a host->GPU transfer. */
    std::int64_t adapterMisses = 0;

    /** GPU busy time spent inside iterations. */
    sim::SimTime busyTime = 0;
    /** Prefill tokens processed. */
    std::int64_t prefillTokens = 0;
    /** Decode tokens generated. */
    std::int64_t decodeTokens = 0;
    /** Sum of per-iteration decode batch sizes (mean = /iterations). */
    std::int64_t batchSizeAccum = 0;

    /** Windowed TTFT samples for latency-over-time figures. */
    sim::WindowedPercentiles ttftOverTime{10 * sim::kSec};
    /** Memory usage samples: (time, bytes) for each tracked region. */
    sim::TimeSeries memTotalUsed;
    sim::TimeSeries memKv;
    sim::TimeSeries memAdapterCache;

    /** Per-request outcome log (always kept; sized by trace length). */
    std::vector<RequestRecord> records;

    double
    cacheHitRate() const
    {
        const auto total = adapterHits + adapterMisses;
        return total ? static_cast<double>(adapterHits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_METRICS_H
