/**
 * @file
 * Adapter residency management interface.
 *
 * An AdapterManager decides which LoRA adapters occupy GPU memory and
 * when transfers happen. Two implementations exist:
 *  - SLoraAdapterManager (this directory): the baseline — fetch on
 *    demand, asynchronously prefetch adapters of queued requests, and
 *    discard an adapter the moment no running or queued request uses it.
 *  - chameleon::CacheManager: keeps idle adapters in a dynamically-sized
 *    cache with a cost-aware eviction policy (§4.2).
 */

#ifndef CHAMELEON_SERVING_ADAPTER_MANAGER_H
#define CHAMELEON_SERVING_ADAPTER_MANAGER_H

#include <cstdint>
#include <vector>

#include "model/adapter.h"
#include "simkit/time.h"

namespace chameleon::obs {
class TraceRecorder;
}

namespace chameleon::serving {

/**
 * Cluster-level observer of one replica's adapter residency. An
 * AdapterManager with a listener attached reports every residency
 * transition (load start/complete, eviction) and reference-count move
 * (acquire/release), keyed by the replica index given at attach time.
 * The cache fabric's ResidencyDirectory implements this to keep a
 * cluster-wide adapter -> {replica, tier, refcount, last-use} map
 * coherent without polling per-replica caches. Listeners only observe;
 * they must never call back into the reporting manager.
 */
class ResidencyEvents
{
  public:
    virtual ~ResidencyEvents() = default;

    /** A transfer started (NotResident -> Loading). */
    virtual void onLoadStart(int replica, model::AdapterId id) = 0;
    /** The transfer completed (Loading -> Resident). */
    virtual void onLoadComplete(int replica, model::AdapterId id) = 0;
    /** The adapter left device memory (-> NotResident). */
    virtual void onEvict(int replica, model::AdapterId id) = 0;
    /** A running reference was taken (admission). */
    virtual void onAcquire(int replica, model::AdapterId id,
                           sim::SimTime now) = 0;
    /** A running reference was dropped (finish or squash). */
    virtual void onRelease(int replica, model::AdapterId id) = 0;
};

/** Residency/transfer policy for LoRA adapters on one engine. */
class AdapterManager
{
  public:
    virtual ~AdapterManager() = default;

    virtual const char *name() const = 0;

    /** Usable right now (weights resident and transfer complete)? */
    virtual bool isResident(model::AdapterId id) const = 0;

    /**
     * Make the adapter resident for an admitted request and take a
     * running reference on it. Returns the time at which the adapter is
     * usable: now if resident, the transfer completion time if loading
     * or freshly fetched, or sim::kTimeNever if memory for it cannot be
     * obtained even after evicting everything idle.
     */
    virtual sim::SimTime acquire(model::AdapterId id, sim::SimTime now) = 0;

    /** Drop a running reference (request finished or was squashed). */
    virtual void release(model::AdapterId id) = 0;

    /**
     * Could acquire() succeed right now (memory-wise)? Must not commit
     * anything. Used by admission checks and bypass.
     */
    virtual bool canMakeResident(model::AdapterId id) const = 0;

    /** A request targeting this adapter entered the wait queues. */
    virtual void onRequestQueued(model::AdapterId id, sim::SimTime now) = 0;

    /** The request left the queues (admitted or dropped). */
    virtual void onRequestDequeued(model::AdapterId id) = 0;

    /**
     * Periodic hook run each scheduling cycle with the adapters of all
     * waiting requests; the baseline retries prefetches here, Chameleon
     * refreshes queued-adapter pinning.
     */
    virtual void onSchedulingCycle(
        const std::vector<model::AdapterId> &queuedAdapters,
        sim::SimTime now) = 0;

    /**
     * Release idle adapter memory until at least `bytes` of device
     * memory are free; true on success. The baseline has no idle
     * adapters, so it succeeds only if memory is already free.
     */
    virtual bool tryFreeMemory(std::int64_t bytes) = 0;

    /**
     * Attach the span recorder under which this manager's engine
     * records (`pid` is the engine's trace process). Default: ignore —
     * the baseline manager emits no events; observation never alters
     * behaviour either way.
     */
    virtual void setTraceRecorder(obs::TraceRecorder *recorder, int pid)
    {
        (void)recorder;
        (void)pid;
    }

    /**
     * Attach the cluster residency listener; `replica` is the engine
     * index this manager reports as. Default: ignore — the baseline
     * manager keeps nothing idle worth tracking, and an unattached
     * manager behaves identically either way. Attach before the first
     * request; there is no replay of pre-attach contents.
     */
    virtual void setResidencyListener(ResidencyEvents *listener,
                                      int replica)
    {
        (void)listener;
        (void)replica;
    }

    /**
     * Admit adapter weights arriving over a peer (replica-to-replica)
     * link instead of the host PCIe link: reserve memory, mark the
     * adapter Loading, and flip it Resident at `readyAt` — the peer
     * transfer's completion time, modelled by the caller. Returns the
     * time the weights become usable, or sim::kTimeNever when the
     * manager declines (no memory without violating its watermark, or
     * no cache at all — the default). Never touches the host link, so
     * host pcie byte counters stay flat for peer-warmed adapters.
     */
    virtual sim::SimTime peerAdmit(model::AdapterId id,
                                   sim::SimTime readyAt, sim::SimTime now)
    {
        (void)id;
        (void)readyAt;
        (void)now;
        return sim::kTimeNever;
    }

    /** Residency checks that needed no transfer (cache/residency hits). */
    virtual std::int64_t hits() const = 0;
    /** Residency checks that triggered or waited on a transfer. */
    virtual std::int64_t misses() const = 0;
    /** Bytes currently held in the idle-adapter cache (0 for baseline). */
    virtual std::int64_t cachedBytes() const = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_ADAPTER_MANAGER_H
