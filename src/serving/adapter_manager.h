/**
 * @file
 * Adapter residency management interface.
 *
 * An AdapterManager decides which LoRA adapters occupy GPU memory and
 * when transfers happen. Two implementations exist:
 *  - SLoraAdapterManager (this directory): the baseline — fetch on
 *    demand, asynchronously prefetch adapters of queued requests, and
 *    discard an adapter the moment no running or queued request uses it.
 *  - chameleon::CacheManager: keeps idle adapters in a dynamically-sized
 *    cache with a cost-aware eviction policy (§4.2).
 */

#ifndef CHAMELEON_SERVING_ADAPTER_MANAGER_H
#define CHAMELEON_SERVING_ADAPTER_MANAGER_H

#include <cstdint>
#include <vector>

#include "model/adapter.h"
#include "simkit/time.h"

namespace chameleon::obs {
class TraceRecorder;
}

namespace chameleon::serving {

/** Residency/transfer policy for LoRA adapters on one engine. */
class AdapterManager
{
  public:
    virtual ~AdapterManager() = default;

    virtual const char *name() const = 0;

    /** Usable right now (weights resident and transfer complete)? */
    virtual bool isResident(model::AdapterId id) const = 0;

    /**
     * Make the adapter resident for an admitted request and take a
     * running reference on it. Returns the time at which the adapter is
     * usable: now if resident, the transfer completion time if loading
     * or freshly fetched, or sim::kTimeNever if memory for it cannot be
     * obtained even after evicting everything idle.
     */
    virtual sim::SimTime acquire(model::AdapterId id, sim::SimTime now) = 0;

    /** Drop a running reference (request finished or was squashed). */
    virtual void release(model::AdapterId id) = 0;

    /**
     * Could acquire() succeed right now (memory-wise)? Must not commit
     * anything. Used by admission checks and bypass.
     */
    virtual bool canMakeResident(model::AdapterId id) const = 0;

    /** A request targeting this adapter entered the wait queues. */
    virtual void onRequestQueued(model::AdapterId id, sim::SimTime now) = 0;

    /** The request left the queues (admitted or dropped). */
    virtual void onRequestDequeued(model::AdapterId id) = 0;

    /**
     * Periodic hook run each scheduling cycle with the adapters of all
     * waiting requests; the baseline retries prefetches here, Chameleon
     * refreshes queued-adapter pinning.
     */
    virtual void onSchedulingCycle(
        const std::vector<model::AdapterId> &queuedAdapters,
        sim::SimTime now) = 0;

    /**
     * Release idle adapter memory until at least `bytes` of device
     * memory are free; true on success. The baseline has no idle
     * adapters, so it succeeds only if memory is already free.
     */
    virtual bool tryFreeMemory(std::int64_t bytes) = 0;

    /**
     * Attach the span recorder under which this manager's engine
     * records (`pid` is the engine's trace process). Default: ignore —
     * the baseline manager emits no events; observation never alters
     * behaviour either way.
     */
    virtual void setTraceRecorder(obs::TraceRecorder *recorder, int pid)
    {
        (void)recorder;
        (void)pid;
    }

    /** Residency checks that needed no transfer (cache/residency hits). */
    virtual std::int64_t hits() const = 0;
    /** Residency checks that triggered or waited on a transfer. */
    virtual std::int64_t misses() const = 0;
    /** Bytes currently held in the idle-adapter cache (0 for baseline). */
    virtual std::int64_t cachedBytes() const = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_ADAPTER_MANAGER_H
