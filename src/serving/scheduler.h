/**
 * @file
 * Scheduler interface (iteration-level batch admission policy).
 *
 * On every iteration the engine asks the scheduler to move requests from
 * its wait queues into the batch. The scheduler expresses admissions by
 * calling AdmissionContext::tryReserve, which commits GPU resources
 * (KV pages + adapter residency) or reports the precise reason admission
 * is impossible — the distinction the Chameleon scheduler's opportunistic
 * bypass needs (§4.3.3).
 */

#ifndef CHAMELEON_SERVING_SCHEDULER_H
#define CHAMELEON_SERVING_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "serving/live_request.h"
#include "simkit/time.h"

namespace chameleon::serving {

/** Outcome of a reservation attempt during batch formation. */
enum class ReserveResult {
    Ok,              ///< Resources committed; request may join the batch.
    NoAdapterMemory, ///< Adapter cannot be made resident (even after
                     ///< evicting every idle cached adapter).
    NoKvMemory,      ///< KV pages unavailable.
    BatchFull,       ///< Engine per-iteration admission cap reached.
};

/** Engine-provided admission services for one scheduling cycle. */
struct AdmissionContext
{
    sim::SimTime now = 0;
    /** Prefill tokens still available this iteration. */
    std::int64_t prefillTokenBudget = 0;
    /** New-request slots still available this iteration. */
    int admissionSlots = 0;

    /** Commit resources for a request; engine-owned closure. */
    std::function<ReserveResult(LiveRequest *)> tryReserve;

    /**
     * Estimate when `bytes` of device memory will have been released by
     * currently-running requests (bypass guard, §4.3.3).
     */
    std::function<sim::SimTime(std::int64_t bytes)> estimateMemoryFree;

    /** Estimated execution time of a request (predicted length based). */
    std::function<sim::SimTime(const LiveRequest *)> estimateExecTime;

    /** Currently free device bytes. */
    std::function<std::int64_t()> freeBytes;

    /** Device bytes a running/prefilling request would free if evicted. */
    std::function<std::int64_t(const LiveRequest *)> heldBytes;

    /** Squash an admitted request for later re-execution (§4.3.3). */
    std::function<void(LiveRequest *)> squashForBypass;

    /** Record that an opportunistic bypass happened (statistics). */
    std::function<void()> noteBypass;
};

/**
 * Batch admission policy.
 *
 * The engine owns LiveRequest storage; schedulers hold non-owning
 * pointers while a request is in phase Waiting.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** A request entered the wait queues. */
    virtual void enqueue(LiveRequest *r) = 0;

    /** A squashed/preempted request re-enters at the queue front. */
    virtual void requeueFront(LiveRequest *r) = 0;

    /** Any requests waiting? */
    virtual bool hasWaiting() const = 0;

    /** Number of waiting requests. */
    virtual std::size_t waitingCount() const = 0;

    /**
     * Select and reserve admissions for this iteration. Implementations
     * call ctx.tryReserve for each candidate; requests that reserve
     * successfully must be removed from the wait queues and returned.
     */
    virtual std::vector<LiveRequest *> selectAdmissions(
        AdmissionContext &ctx) = 0;

    /** A previously admitted request finished (quota return point). */
    virtual void onRequestFinished(LiveRequest *r) { (void)r; }

    /** End-of-iteration hook (periodic reconfiguration lives here). */
    virtual void onIterationEnd(sim::SimTime now) { (void)now; }

    /** Adapters referenced by waiting requests (prefetch targets). */
    virtual std::vector<LiveRequest *> waitingSnapshot() const = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_SCHEDULER_H
