/**
 * @file
 * Slab allocator for LiveRequest state.
 *
 * An engine creates one LiveRequest per submitted request and hands
 * stable pointers to its scheduler and batches, so per-request
 * unique_ptr allocations used to dominate submit() on million-request
 * traces. The slab allocates fixed-size blocks and bump-allocates
 * within them: one heap allocation per kBlockRequests requests,
 * addresses stable for the engine's lifetime (blocks are never moved
 * or freed until destruction), iteration in allocation order for
 * lookups and stats.
 */

#ifndef CHAMELEON_SERVING_REQUEST_SLAB_H
#define CHAMELEON_SERVING_REQUEST_SLAB_H

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "serving/live_request.h"

namespace chameleon::serving {

class RequestSlab
{
  public:
    /** Requests per block: ~256 KiB blocks at sizeof(LiveRequest). */
    static constexpr std::size_t kBlockRequests = 1024;

    /** A fresh default-constructed LiveRequest; pointer stays valid
     * for the slab's lifetime. */
    LiveRequest *
    allocate()
    {
        if (used_ == kBlockRequests || blocks_.empty()) {
            blocks_.push_back(std::make_unique<Block>());
            used_ = 0;
        }
        LiveRequest *r = &(*blocks_.back())[used_++];
        *r = LiveRequest{};
        return r;
    }

    /** Requests allocated so far. */
    std::size_t
    size() const
    {
        return blocks_.empty()
                   ? 0
                   : (blocks_.size() - 1) * kBlockRequests + used_;
    }

    /** Visit every allocated request in allocation order; f returning
     * false stops the walk. */
    template <typename F>
    void
    scan(F &&f)
    {
        for (std::size_t b = 0; b < blocks_.size(); ++b) {
            const std::size_t count =
                b + 1 == blocks_.size() ? used_ : kBlockRequests;
            for (std::size_t i = 0; i < count; ++i) {
                if (!f((*blocks_[b])[i]))
                    return;
            }
        }
    }

  private:
    using Block = std::array<LiveRequest, kBlockRequests>;

    std::vector<std::unique_ptr<Block>> blocks_;
    std::size_t used_ = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_REQUEST_SLAB_H
