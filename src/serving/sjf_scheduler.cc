#include "serving/sjf_scheduler.h"

#include <algorithm>

namespace chameleon::serving {

double
SjfScheduler::effectiveSize(const LiveRequest *r, sim::SimTime now) const
{
    const double waited = sim::toSeconds(now - r->arrival);
    return static_cast<double>(r->predictedOutput) -
           agingPerSecond_ * waited;
}

std::vector<LiveRequest *>
SjfScheduler::selectAdmissions(AdmissionContext &ctx)
{
    std::vector<LiveRequest *> admitted;
    while (!queue_.empty() && ctx.admissionSlots > 0 &&
           ctx.prefillTokenBudget > 0) {
        // Pick the waiting request with the smallest effective size.
        auto best = queue_.begin();
        for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
            if (effectiveSize(*it, ctx.now) < effectiveSize(*best, ctx.now))
                best = it;
        }
        LiveRequest *r = *best;
        if (ctx.tryReserve(r) != ReserveResult::Ok)
            break; // still one logical queue: shortest job blocks
        queue_.erase(best);
        admitted.push_back(r);
        ctx.prefillTokenBudget -= r->req.inputTokens;
        --ctx.admissionSlots;
    }
    return admitted;
}

std::vector<LiveRequest *>
SjfScheduler::waitingSnapshot() const
{
    return {queue_.begin(), queue_.end()};
}

} // namespace chameleon::serving
