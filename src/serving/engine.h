/**
 * @file
 * The serving engine: iteration-level continuous batching (Fig. 1).
 *
 * One engine models one GPU (or one tensor-parallel GPU group). Its life
 * is a sequence of iterations; at each iteration boundary it
 *  1. lets the adapter manager run its scheduling-cycle hook (prefetch),
 *  2. asks the scheduler to admit waiting requests (committing KV pages
 *     and adapter residency through AdmissionContext::tryReserve),
 *  3. assembles the iteration's work: chunked prefill for admitted
 *     requests whose adapters are usable, plus one decode step for every
 *     running request,
 *  4. advances the virtual clock by the cost model's iteration time, and
 *  5. at the boundary emits tokens, finishes/grows requests, and starts
 *     the next iteration.
 *
 * A request admitted while its adapter is still in flight waits (its
 * prefill is excluded from iterations until the transfer completes);
 * that waiting is the "adapter loading on the critical path" the paper
 * measures in Figs. 2/14.
 */

#ifndef CHAMELEON_SERVING_ENGINE_H
#define CHAMELEON_SERVING_ENGINE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "gpu/gpu_memory.h"
#include "gpu/kv_cache.h"
#include "gpu/pcie_link.h"
#include "model/cost_model.h"
#include "obs/trace_recorder.h"
#include "predict/output_predictor.h"
#include "serving/adapter_manager.h"
#include "serving/metrics.h"
#include "serving/request_slab.h"
#include "serving/scheduler.h"
#include "simkit/simulator.h"
#include "workload/trace.h"

namespace chameleon::serving {

/** Static engine configuration. */
struct EngineConfig
{
    model::ModelSpec model;
    model::GpuSpec gpu;
    /** Tensor-parallel degree (GPUs fused into this engine). */
    int tpDegree = 1;
    model::CostParams cost{};
    /** Activation/scratch reserve per GPU. */
    std::int64_t workspacePerGpu = 2ll * 1024 * 1024 * 1024;
    /**
     * Prefill tokens the scheduler may admit per iteration. Admission
     * of the first request is never blocked by this (so oversized
     * prompts cannot live-lock the queue); afterwards the budget gates
     * further admissions within one iteration.
     */
    std::int64_t admissionTokenBudget = 512;
    /**
     * KV tokens reserved per request at admission on top of its prompt.
     * Baselines do not know output lengths, so like S-LoRA's
     * max_total_token_num accounting they conservatively reserve the
     * maximum generation length; this is what makes GPU memory the
     * binding admission resource under load.
     */
    std::int64_t maxNewTokens = 512;
    /**
     * Reserve input + predicted output instead of input + maxNewTokens
     * (the Chameleon scheduler's prediction-driven admission). Under-
     * predictions grow on demand and can trigger preemption.
     */
    bool predictedReservation = false;
    /**
     * Max prefill tokens executed per iteration. Admitted requests
     * normally prefill fully in their admission iteration (continuous
     * batching); the chunked-prefill baseline lowers this to spread a
     * long prompt across iterations (Sarathi [1]).
     */
    std::int64_t prefillChunkTokens = 1ll << 40;
    /** Max requests admitted per iteration. */
    int maxAdmissionsPerIter = 8;
    /** Hard cap on concurrently running requests (max batch size). */
    int maxRunning = 256;
    /** KV page granularity in tokens. */
    int kvPageTokens = 16;
    /** Sample memory series at this period. */
    sim::SimTime memSamplePeriod = sim::kSec;
};

/** Field-wise equality (spec round-trip tests). */
bool operator==(const EngineConfig &a, const EngineConfig &b);
inline bool operator!=(const EngineConfig &a, const EngineConfig &b)
{
    return !(a == b);
}

/**
 * Nominal service rate of one engine with this configuration, in
 * requests/second: the inverse of the analytic cost model's isolated
 * end-to-end latency for a reference request (the Fig. 2 "medium"
 * input, 128 output tokens, base model). A deterministic,
 * hardware-derived capacity estimate — an A100 replica rates higher
 * than an A40 one — used by the cluster to weight capacity-aware
 * routing (routing::ClusterView::serviceWeight) and reported through
 * core::RunReport::perReplicaServiceRate. Not a throughput prediction:
 * batching serves many requests concurrently; only the *ratio*
 * between replicas matters to the router.
 */
double nominalServiceRate(const EngineConfig &config);

/**
 * Expand a GPU fleet into per-replica engine configs: one copy of
 * `base` per GPU, with that GPU swapped in. The single definition of
 * fleet-override semantics, shared by SystemSpec::withFleet, the spec
 * JSON "cluster.fleet"/"cluster.replicas" parsers, the sweep "fleets"
 * axis, and chameleon_sim --fleet.
 */
std::vector<EngineConfig> fleetEngines(
    const EngineConfig &base, const std::vector<model::GpuSpec> &gpus);

/**
 * One execution engine with pluggable scheduler and adapter manager.
 */
class ServingEngine
{
  public:
    /**
     * @param simulator shared event kernel
     * @param config engine parameters
     * @param pool adapter catalogue (may be empty-pool for base-only)
     * @param scheduler admission policy (engine takes ownership)
     * @param predictor output-length estimates for the scheduler
     */
    ServingEngine(sim::Simulator &simulator, EngineConfig config,
                  const model::AdapterPool *pool,
                  std::unique_ptr<Scheduler> scheduler,
                  predict::OutputPredictor *predictor);

    ~ServingEngine();

    /**
     * Install the adapter manager. Must be called exactly once before
     * requests are submitted (split from the constructor because the
     * Chameleon cache manager needs the engine's memory/link objects).
     */
    void setAdapterManager(std::unique_ptr<AdapterManager> manager);

    /**
     * Observe request completions (the cluster's measured service
     * rates). Called synchronously inside the finishing event with the
     * completion timestamp; installing one never alters the event
     * stream. Null (the default) disables the notification.
     */
    void setCompletionListener(std::function<void(sim::SimTime)> listener)
    {
        onFinish_ = std::move(listener);
    }

    /**
     * Attach the span recorder; the engine records under trace process
     * `pid` and propagates the attachment to its adapter manager. Null
     * detaches (the default — no events, identical event streams).
     * Emission is retrospective where possible: a request's phase spans
     * (queue wait, adapter fetch, prefill, decode) are written from its
     * timestamps when it finishes, so tracing adds no simulation
     * events.
     */
    void setTraceRecorder(obs::TraceRecorder *recorder, int pid);

    /** Submit every request in the trace at its arrival time. */
    void submitTrace(const workload::Trace &trace);

    /** Submit one request (scheduled at its arrival time). */
    void submit(const workload::Request &request);

    /** Aggregated results; valid once the simulation has drained. */
    const EngineStats &stats() const { return stats_; }

    /** Finalise derived stats (hit rates, memory series flush). */
    void finalize();

    /** Outstanding (submitted - finished) requests. */
    std::int64_t outstanding() const;

    // --- accessors used by schedulers / cache manager / tests ---
    sim::Simulator &simulator() { return sim_; }
    gpu::GpuMemory &memory() { return *mem_; }
    gpu::KvCache &kvCache() { return *kv_; }
    gpu::PcieLink &pcieLink() { return *link_; }
    const model::CostModel &costModel() const { return cost_; }
    const model::AdapterPool *adapterPool() const { return pool_; }
    AdapterManager &adapterManager() { return *adapterMgr_; }
    const AdapterManager &adapterManager() const { return *adapterMgr_; }
    Scheduler &scheduler() { return *scheduler_; }
    const EngineConfig &config() const { return config_; }

    /** Recent exponentially-weighted mean decode-iteration time. */
    sim::SimTime avgIterTime() const;

    /** Estimate when `bytes` will have been freed by running requests. */
    sim::SimTime estimateMemoryFreeTime(std::int64_t bytes) const;

    /** Estimated remaining execution time of a request (predictions). */
    sim::SimTime estimateExecTime(const LiveRequest *r) const;

    /**
     * Squash a prefilling/running request: release its resources, reset
     * progress, and push it back to the front of its queue (§4.3.3).
     */
    void squash(LiveRequest *r);

    /** Live batch views (tests/benches). */
    std::size_t runningCount() const { return running_.size(); }
    std::size_t prefillingCount() const { return prefilling_.size(); }

    /** Look up live request state by id (tests); null when unknown. */
    LiveRequest *findRequest(workload::RequestId id);

  private:
    void onArrival(LiveRequest *r);
    void maybeStartIteration();
    void startIteration();
    void finishIteration(sim::SimTime duration,
                         std::vector<LiveRequest *> prefillSlice,
                         std::vector<std::int64_t> prefillTaken);
    ReserveResult tryReserve(LiveRequest *r);
    void finishRequest(LiveRequest *r);
    void emitRequestTrace(const LiveRequest *r);
    void releaseResources(LiveRequest *r);
    bool growKv(LiveRequest *r);
    void preemptForMemory();
    void sampleMemory();
    AdmissionContext makeContext();

    sim::Simulator &sim_;
    EngineConfig config_;
    const model::AdapterPool *pool_;
    model::CostModel cost_;
    std::unique_ptr<gpu::GpuMemory> mem_;
    std::unique_ptr<gpu::KvCache> kv_;
    std::unique_ptr<gpu::PcieLink> link_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<AdapterManager> adapterMgr_;
    predict::OutputPredictor *predictor_;
    std::function<void(sim::SimTime)> onFinish_;
    obs::TraceRecorder *trace_ = nullptr;
    int tracePid_ = 0;
    /** Per-tenant finished counts for the tenant counter lanes (only
     *  touched while a recorder is attached). */
    std::map<workload::TenantId, std::int64_t> tenantFinished_;

    RequestSlab requests_; // stable storage, block-allocated
    std::vector<LiveRequest *> prefilling_;
    std::vector<LiveRequest *> running_;
    bool iterationInFlight_ = false;
    double ewmaIterUs_ = 0.0;
    sim::SimTime lastMemSample_ = sim::kTimeNever;

    EngineStats stats_;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_ENGINE_H
