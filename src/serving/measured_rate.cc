#include "serving/measured_rate.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::serving {

MeasuredRate::MeasuredRate(double alpha, double nominalRps)
    : alpha_(alpha), nominalRps_(nominalRps)
{
    CHM_CHECK(alpha_ >= 0.0 && alpha_ <= 1.0,
              "measured-rate alpha must be within [0, 1]");
    CHM_CHECK(nominalRps_ > 0.0, "nominal rate must be > 0");
}

void
MeasuredRate::onCompletion(sim::SimTime now)
{
    ++completions_;
    if (alpha_ <= 0.0)
        return;
    if (completions_ == 1) {
        // First completion only arms the interval clock.
        lastCompletion_ = now;
        return;
    }
    const double dt = sim::toSeconds(now - lastCompletion_);
    lastCompletion_ = now;
    if (dt <= 0.0) {
        // Same-timestamp completions (one batch iteration finishing
        // several requests) carry no interval information.
        return;
    }
    if (ewmaIntervalSeconds_ <= 0.0) {
        // Seed the EWMA at the nominal interval so the estimate blends
        // from the static value instead of jumping to the first sample.
        ewmaIntervalSeconds_ = 1.0 / nominalRps_;
    }
    ewmaIntervalSeconds_ =
        alpha_ * dt + (1.0 - alpha_) * ewmaIntervalSeconds_;
}

double
MeasuredRate::rate() const
{
    if (alpha_ <= 0.0 || ewmaIntervalSeconds_ <= 0.0)
        return nominalRps_;
    return 1.0 / ewmaIntervalSeconds_;
}

double
MeasuredRate::rate(sim::SimTime now) const
{
    if (alpha_ <= 0.0 || ewmaIntervalSeconds_ <= 0.0)
        return nominalRps_;
    // During a stall the un-floored estimate is a lie: no completion
    // has arrived for `elapsed` seconds, so the real interval is at
    // least that long. max() leaves a healthy stream untouched
    // (elapsed < EWMA between back-to-back completions).
    const double elapsed = now > lastCompletion_
                               ? sim::toSeconds(now - lastCompletion_)
                               : 0.0;
    return 1.0 / std::max(ewmaIntervalSeconds_, elapsed);
}

} // namespace chameleon::serving
