#include "serving/fifo_scheduler.h"

namespace chameleon::serving {

std::vector<LiveRequest *>
FifoScheduler::selectAdmissions(AdmissionContext &ctx)
{
    std::vector<LiveRequest *> admitted;
    while (!queue_.empty() && ctx.admissionSlots > 0 &&
           ctx.prefillTokenBudget > 0) {
        LiveRequest *head = queue_.front();
        const ReserveResult res = ctx.tryReserve(head);
        if (res != ReserveResult::Ok)
            break; // head-of-line blocking: nothing behind may pass
        queue_.pop_front();
        admitted.push_back(head);
        ctx.prefillTokenBudget -= head->req.inputTokens;
        --ctx.admissionSlots;
    }
    return admitted;
}

std::vector<LiveRequest *>
FifoScheduler::waitingSnapshot() const
{
    return {queue_.begin(), queue_.end()};
}

} // namespace chameleon::serving
