/**
 * @file
 * Multi-engine data-parallel serving (§4.4).
 *
 * Under data parallelism Chameleon uses a two-level scheduler: a global
 * dispatcher routes each arriving request to one engine, and each engine
 * runs its local (FIFO/SJF/Chameleon) scheduler. Dispatch is delegated
 * to a pluggable routing::Router (round-robin, JSQ, power-of-two
 * choices, adapter affinity); the cluster exposes itself to the router
 * as a routing::ClusterView. Adapter caches are per engine — with
 * affinity routing they behave as one partitioned cache instead of N
 * replicated ones. Tensor parallelism, by contrast, is modeled inside a
 * single engine via EngineConfig::tpDegree.
 *
 * Replicas need not be identical: the engine factory takes the replica
 * index, so a heterogeneous fleet (mixed A40/A100 GPUs, different
 * batching knobs) builds each engine from its own configuration. The
 * cluster computes a nominal service rate per replica
 * (serving::nominalServiceRate) and reports the max-normalised ratios
 * through ClusterView::serviceWeight, which the capacity-aware routing
 * policies use to place work where the hardware can absorb it. With
 * measured rates enabled (enableMeasuredRates), each replica's weight
 * instead tracks an online EWMA of its observed completion rate
 * (serving::MeasuredRate), so the weights self-correct under
 * load-dependent batching and cache effects.
 *
 * An optional routing::Autoscaler grows and drains the active replica
 * set at simulation time. Each replica is in one of three states:
 *
 *   Active  — dispatchable; routers see exactly these replicas.
 *   Booting — provisioned by a scale-up but still loading weights
 *             (serving::ColdStartModel); counts toward the
 *             autoscaler's capacity, receives no dispatches until its
 *             boot deadline passes.
 *   Drained — scaled down; finishes its outstanding work and keeps
 *             its warm adapter cache for a later reactivation.
 *
 * New replicas are built on demand from the engine factory — or, on a
 * heterogeneous fleet with a scale-up catalogue installed
 * (setScaleUpCandidates), from the candidate engine configuration the
 * routing::ScaleUpPolicy picks. With the cold-start model disabled
 * (bootMs = 0) every scale-up activates synchronously, reproducing
 * the pre-cold-start event streams bit-for-bit.
 */

#ifndef CHAMELEON_SERVING_CLUSTER_H
#define CHAMELEON_SERVING_CLUSTER_H

#include <functional>
#include <memory>
#include <vector>

#include "routing/autoscaler.h"
#include "routing/router.h"
#include "serving/cold_start.h"
#include "serving/engine.h"
#include "serving/measured_rate.h"

namespace chameleon::fabric {
class CacheFabric;
}

namespace chameleon::serving {

/** A set of data-parallel engines behind a global dispatcher. */
class DataParallelCluster : public routing::ClusterView
{
  public:
    /**
     * Builds the engine of replica `index`. Heterogeneous fleets
     * resolve a per-replica configuration from the index (the Runner
     * passes SystemSpec::resolvedEngine(index)); homogeneous factories
     * simply ignore it.
     */
    using EngineFactory =
        std::function<std::unique_ptr<ServingEngine>(std::size_t index)>;

    /** Builds one engine from an explicit configuration (scale-up
     * catalogue; see setScaleUpCandidates). */
    using ConfigEngineFactory = std::function<std::unique_ptr<ServingEngine>(
        const EngineConfig &config)>;

    /** Lifecycle state of one replica slot. */
    enum class ReplicaState { Active, Booting, Drained };

    /** Cold-start accounting (all zero while bootMs = 0). */
    struct BootStats
    {
        /** Scale-up builds that went through a Booting phase. */
        std::int64_t boots = 0;
        /** Summed boot latency across those builds. */
        sim::SimTime totalBootTime = 0;
        /** Requests dispatched while >= 1 replica was still booting —
         * the arrivals the cluster served at reduced capacity because
         * the forecast horizon lost the race against the boot. */
        std::int64_t requestsDelayedByBoot = 0;
    };

    /**
     * @param simulator shared event kernel
     * @param engineFactory builds one fully-wired engine per replica
     *        index (kept for autoscaling scale-ups)
     * @param replicas initial engine count
     * @param router global dispatch policy (cluster takes ownership)
     */
    DataParallelCluster(sim::Simulator &simulator,
                        EngineFactory engineFactory, int replicas,
                        std::unique_ptr<routing::Router> router);

    /** Convenience: build the router from a policy name. */
    DataParallelCluster(sim::Simulator &simulator,
                        EngineFactory engineFactory, int replicas,
                        routing::RouterPolicy policy,
                        const routing::RouterConfig &config = {});

    /**
     * Enable predictor-driven autoscaling. Must be called before
     * submitTrace; evaluation events are scheduled over the trace span.
     * The initial replica count is clamped into the autoscaler bounds.
     *
     * @param referenceServiceRps nominal service rate of the
     *        *reference* replica (the spec's base engine) that
     *        config.replicaServiceRps describes; per-replica capacity
     *        factors are nominal rates over this. 0 uses replica 0's
     *        nominal rate — exact for homogeneous clusters.
     */
    void enableAutoscaler(const routing::AutoscalerConfig &config,
                          double referenceServiceRps = 0.0);

    /**
     * Install the scale-up catalogue a non-default
     * routing::ScaleUpPolicy chooses from: candidate engine
     * configurations (typically the distinct fleet configs plus the
     * base engine) and a factory that builds one. Without a catalogue
     * every policy degrades to Default (the index factory).
     */
    void setScaleUpCandidates(std::vector<EngineConfig> candidates,
                              ConfigEngineFactory factory);

    /**
     * Declare the configuration a Default-policy scale-up past the
     * fleet list builds (the spec's base engine), so the boot-aware
     * forecast horizon can price the next replica's cold start without
     * building it. Unset, the cluster falls back to replica 0's
     * configuration — exact for homogeneous fleets.
     */
    void setReferenceEngine(const EngineConfig &config);

    /**
     * Track per-replica measured completion rates with EWMA weight
     * `alpha` and blend them into serviceWeight. Call before
     * submitTrace; alpha = 0 is a no-op (nominal weights, unchanged
     * event streams).
     */
    void enableMeasuredRates(double alpha);

    /**
     * Manually resize the provisioned replica set (the autoscaler's
     * own entry point, public for tools and lifecycle tests). Grows by
     * reactivating drained replicas, then building new ones — which
     * boot first when the cold-start model is enabled; shrinks by
     * draining from the top.
     */
    void resize(std::size_t target);

    /**
     * Attach the span recorder to the whole cluster: names the trace
     * processes (pid 0 = control plane, pid i+1 = replica i), wires
     * every existing engine (and, through it, its adapter manager),
     * the router, and the autoscaler; engines built later by scale-ups
     * are wired at creation. Call before submitTrace. Null detaches
     * everything.
     */
    void setTraceRecorder(obs::TraceRecorder *recorder);

    /**
     * Attach the cluster-wide cache fabric (residency directory +
     * peer-to-peer migration). Registers every existing engine's
     * adapter manager with the fabric directory; engines built later
     * by scale-ups register at creation, and lifecycle transitions
     * (scale-up boot, drain, routable-set remap) trigger the fabric's
     * migration hooks. Call before submitTrace. The fabric outlives
     * the cluster's use of it (the Runner owns both).
     */
    void attachFabric(fabric::CacheFabric *fabric);

    /** Route every request of the trace at its arrival time. */
    void submitTrace(const workload::Trace &trace);

    // --- routing::ClusterView (the dispatchable replica set) ---
    std::size_t replicaCount() const override { return routable_.size(); }
    std::int64_t outstanding(std::size_t i) const override;
    bool adapterResident(std::size_t i,
                         model::AdapterId id) const override;
    /** Directory-backed when a cache fabric is attached (O(holders)
     * per lookup); falls back to the base-class residency scan
     * otherwise. Both return the same view indices. */
    void residentReplicas(model::AdapterId id,
                          std::vector<std::size_t> *out) const override;
    /** Service rate of dispatchable replica i over the fleet's maximum
     * nominal rate — measured when enabled, nominal otherwise; exactly
     * 1.0 everywhere on a homogeneous unmeasured cluster. */
    double serviceWeight(std::size_t i) const override;
    /** Cached weight vector for the dispatch path: rebuilt (as exactly
     * serviceWeight(i) per entry) only after the routable set, the
     * fleet, or a measured rate changes — so capacity-aware routing
     * scans stop recomputing weights per decision. */
    const std::vector<double> &serviceWeights() const override;

    /**
     * Per-replica nominal service-rate estimates (requests/s, from
     * serving::nominalServiceRate on each engine's configuration),
     * indexed like engines(). The ratios drive capacity-aware routing;
     * RunReport exposes them as perReplicaServiceRate.
     */
    const std::vector<double> &serviceRates() const { return rates_; }

    /**
     * Current service-rate estimates actually steering the routing
     * weights, indexed like engines(): the measured EWMA when
     * enableMeasuredRates is active, the nominal estimate otherwise.
     */
    std::vector<double> effectiveServiceRates() const;

    /** All engines ever created, whatever their state (for stats). */
    const std::vector<std::unique_ptr<ServingEngine>> &engines() const
    {
        return engines_;
    }

    /** Lifecycle state of replica i (indexed like engines()). */
    ReplicaState replicaState(std::size_t i) const { return states_[i]; }

    /** Provisioned replicas: active + booting (the autoscaler's view
     * of capacity; a prefix of engines()). */
    std::size_t activeReplicas() const { return provisioned_; }

    /** Replicas currently loading weights (subset of provisioned). */
    std::size_t bootingReplicas() const { return booting_; }

    const routing::Router &router() const { return *router_; }
    routing::Autoscaler *autoscaler() { return autoscaler_.get(); }

    /** Cold-start accounting (zeros while the model is disabled). */
    const BootStats &bootStats() const { return bootStats_; }

    /** Autoscaling events so far (0 when autoscaling is disabled). */
    std::int64_t scaleUps() const
    {
        return autoscaler_ ? autoscaler_->scaleUps() : 0;
    }
    std::int64_t scaleDowns() const
    {
        return autoscaler_ ? autoscaler_->scaleDowns() : 0;
    }

    /** Merge per-engine request records into one vector. */
    std::vector<RequestRecord> mergedRecords() const;

    /**
     * Merge per-engine statistics: counters are summed and the latency
     * trackers are rebuilt from every engine's samples, so percentiles
     * are over the whole cluster, not averaged per replica. The
     * time-series fields (ttftOverTime, mem* series) are NOT merged —
     * they stay empty; per-replica timelines remain available through
     * engines()[i]->stats().
     */
    EngineStats mergedStats() const;

    /** Requests finished per replica, indexed like engines(). */
    std::vector<std::int64_t> perReplicaFinished() const;

    /** Total host->GPU adapter traffic across replicas. */
    std::int64_t totalPcieBytes();
    std::int64_t totalPcieTransfers();

    /** Finalise all engines. */
    void finalize();

  private:
    void dispatch(const workload::Request &request);
    void appendEngine(std::unique_ptr<ServingEngine> engine,
                      double nominalRate);
    void wireEngineTrace(std::size_t index);
    void buildReplica();
    void buildScaleUpReplica();
    void installMeasuredRate(std::size_t index);
    void onBootComplete(std::size_t index);
    /** Recompute the dispatchable set; notifies the router if the
     * mapping changed. */
    void syncRoutable();
    void applyTarget(std::size_t target);
    routing::CapacitySignals capacitySignals() const;
    double capacityFactor(std::size_t index) const;
    /** Do the capacity signals read the measured (effective) rates?
     * True only with measured rates live AND the autoscaler configured
     * with DemandSource::Measured — Nominal keeps the static factors
     * bit-identical even while measurement steers the routing weights. */
    bool measuredSignals() const;
    /** Default-policy scale-up configuration (see setReferenceEngine). */
    const EngineConfig &referenceEngineConfig() const;
    void autoscaleTick(sim::SimTime until);

    sim::Simulator &sim_;
    EngineFactory factory_;
    obs::TraceRecorder *trace_ = nullptr;
    fabric::CacheFabric *fabric_ = nullptr;
    /** residentReplicas scratch: engine indices from the directory. */
    mutable std::vector<std::size_t> fabricHolders_;
    std::unique_ptr<routing::Router> router_;
    std::unique_ptr<routing::Autoscaler> autoscaler_;
    ColdStartModel coldStart_{0.0};
    std::vector<std::unique_ptr<ServingEngine>> engines_;
    std::vector<ReplicaState> states_;  // aligned with engines_
    std::vector<sim::SimTime> bootDeadline_; // 0 = booted at birth
    std::vector<double> rates_; // nominal rates, aligned with engines_
    std::vector<MeasuredRate> measured_; // aligned when alpha > 0
    double measuredAlpha_ = 0.0;
    double maxRate_ = 0.0;      // max of rates_ (dispatch-path cache)
    double referenceRate_ = 0.0; // capacity-factor denominator
    /** Dispatchable view: view index -> engine index. */
    std::vector<std::size_t> routable_;
    /** serviceWeight(i) cache, aligned with routable_ (see
     * serviceWeights); dirty after resizes / rate updates. With
     * measured rates live the entries are also time-dependent (the
     * staleness floor decays a stalled replica's rate), so the cache
     * additionally keys on the rebuild timestamp. */
    mutable std::vector<double> weights_;
    mutable bool weightsDirty_ = true;
    mutable sim::SimTime weightsTime_ = 0;
    /** Default-policy scale-up config for boot pricing (unset: falls
     * back to replica 0's configuration). */
    std::unique_ptr<EngineConfig> referenceEngine_;
    std::size_t provisioned_ = 0; // active + booting prefix length
    std::size_t booting_ = 0;
    BootStats bootStats_;
    // Scale-up catalogue (non-default ScaleUpPolicy).
    std::vector<EngineConfig> candidates_;
    std::vector<double> candidateRates_;
    std::size_t fastestCandidate_ = 0; // argmax of candidateRates_
    ConfigEngineFactory configFactory_;
    bool traceSubmitted_ = false;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_CLUSTER_H
