/**
 * @file
 * Multi-engine data-parallel serving (§4.4).
 *
 * Under data parallelism Chameleon uses a two-level scheduler: a global
 * dispatcher routes each arriving request to one engine, and each engine
 * runs its local (FIFO/SJF/Chameleon) scheduler. Adapter caches are
 * replicated per engine. Tensor parallelism, by contrast, is modeled
 * inside a single engine via EngineConfig::tpDegree.
 */

#ifndef CHAMELEON_SERVING_CLUSTER_H
#define CHAMELEON_SERVING_CLUSTER_H

#include <functional>
#include <memory>
#include <vector>

#include "serving/engine.h"

namespace chameleon::serving {

/** Global dispatch policy across data-parallel engines. */
enum class DispatchPolicy {
    RoundRobin,      ///< Cycle through engines.
    JoinShortestQueue, ///< Engine with the fewest outstanding requests.
};

/** A set of data-parallel engines behind a global dispatcher. */
class DataParallelCluster
{
  public:
    /**
     * @param simulator shared event kernel
     * @param engineFactory builds one fully-wired engine per replica
     * @param replicas engine count
     * @param policy dispatch policy
     */
    DataParallelCluster(
        sim::Simulator &simulator,
        const std::function<std::unique_ptr<ServingEngine>()> &engineFactory,
        int replicas, DispatchPolicy policy);

    /** Route every request of the trace at its arrival time. */
    void submitTrace(const workload::Trace &trace);

    /** Engines (for stats aggregation). */
    const std::vector<std::unique_ptr<ServingEngine>> &engines() const
    {
        return engines_;
    }

    /** Merge per-engine request records into one vector. */
    std::vector<RequestRecord> mergedRecords() const;

    /** Finalise all engines. */
    void finalize();

  private:
    ServingEngine &pick();

    sim::Simulator &sim_;
    std::vector<std::unique_ptr<ServingEngine>> engines_;
    DispatchPolicy policy_;
    std::size_t rrNext_ = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_CLUSTER_H
