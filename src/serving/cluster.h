/**
 * @file
 * Multi-engine data-parallel serving (§4.4).
 *
 * Under data parallelism Chameleon uses a two-level scheduler: a global
 * dispatcher routes each arriving request to one engine, and each engine
 * runs its local (FIFO/SJF/Chameleon) scheduler. Dispatch is delegated
 * to a pluggable routing::Router (round-robin, JSQ, power-of-two
 * choices, adapter affinity); the cluster exposes itself to the router
 * as a routing::ClusterView. Adapter caches are per engine — with
 * affinity routing they behave as one partitioned cache instead of N
 * replicated ones. Tensor parallelism, by contrast, is modeled inside a
 * single engine via EngineConfig::tpDegree.
 *
 * Replicas need not be identical: the engine factory takes the replica
 * index, so a heterogeneous fleet (mixed A40/A100 GPUs, different
 * batching knobs) builds each engine from its own configuration. The
 * cluster computes a nominal service rate per replica
 * (serving::nominalServiceRate) and reports the max-normalised ratios
 * through ClusterView::serviceWeight, which the capacity-aware routing
 * policies use to place work where the hardware can absorb it.
 *
 * An optional routing::Autoscaler grows and drains the active replica
 * set at simulation time: new replicas are built on demand from the
 * engine factory, drained replicas stop receiving dispatches but finish
 * their outstanding work (and keep their warm adapter cache for a later
 * scale-up).
 */

#ifndef CHAMELEON_SERVING_CLUSTER_H
#define CHAMELEON_SERVING_CLUSTER_H

#include <functional>
#include <memory>
#include <vector>

#include "routing/autoscaler.h"
#include "routing/router.h"
#include "serving/engine.h"

namespace chameleon::serving {

/** A set of data-parallel engines behind a global dispatcher. */
class DataParallelCluster : public routing::ClusterView
{
  public:
    /**
     * Builds the engine of replica `index`. Heterogeneous fleets
     * resolve a per-replica configuration from the index (the Runner
     * passes SystemSpec::resolvedEngine(index)); homogeneous factories
     * simply ignore it.
     */
    using EngineFactory =
        std::function<std::unique_ptr<ServingEngine>(std::size_t index)>;

    /**
     * @param simulator shared event kernel
     * @param engineFactory builds one fully-wired engine per replica
     *        index (kept for autoscaling scale-ups)
     * @param replicas initial engine count
     * @param router global dispatch policy (cluster takes ownership)
     */
    DataParallelCluster(sim::Simulator &simulator,
                        EngineFactory engineFactory, int replicas,
                        std::unique_ptr<routing::Router> router);

    /** Convenience: build the router from a policy name. */
    DataParallelCluster(sim::Simulator &simulator,
                        EngineFactory engineFactory, int replicas,
                        routing::RouterPolicy policy,
                        const routing::RouterConfig &config = {});

    /**
     * Enable predictor-driven autoscaling. Must be called before
     * submitTrace; evaluation events are scheduled over the trace span.
     * The initial replica count is clamped into the autoscaler bounds.
     */
    void enableAutoscaler(const routing::AutoscalerConfig &config);

    /** Route every request of the trace at its arrival time. */
    void submitTrace(const workload::Trace &trace);

    // --- routing::ClusterView (the active replica set) ---
    std::size_t replicaCount() const override { return active_; }
    std::int64_t outstanding(std::size_t i) const override;
    bool adapterResident(std::size_t i,
                         model::AdapterId id) const override;
    /** Nominal service rate of replica i over the fleet maximum, so
     * homogeneous clusters see exactly 1.0 everywhere. */
    double serviceWeight(std::size_t i) const override;

    /**
     * Per-replica nominal service-rate estimates (requests/s, from
     * serving::nominalServiceRate on each engine's configuration),
     * indexed like engines(). The ratios drive capacity-aware routing;
     * RunReport exposes them as perReplicaServiceRate.
     */
    const std::vector<double> &serviceRates() const { return rates_; }

    /** All engines ever created, active or drained (for stats). */
    const std::vector<std::unique_ptr<ServingEngine>> &engines() const
    {
        return engines_;
    }

    /** Currently dispatchable replicas (prefix of engines()). */
    std::size_t activeReplicas() const { return active_; }

    const routing::Router &router() const { return *router_; }
    routing::Autoscaler *autoscaler() { return autoscaler_.get(); }

    /** Autoscaling events so far (0 when autoscaling is disabled). */
    std::int64_t scaleUps() const
    {
        return autoscaler_ ? autoscaler_->scaleUps() : 0;
    }
    std::int64_t scaleDowns() const
    {
        return autoscaler_ ? autoscaler_->scaleDowns() : 0;
    }

    /** Merge per-engine request records into one vector. */
    std::vector<RequestRecord> mergedRecords() const;

    /**
     * Merge per-engine statistics: counters are summed and the latency
     * trackers are rebuilt from every engine's samples, so percentiles
     * are over the whole cluster, not averaged per replica. The
     * time-series fields (ttftOverTime, mem* series) are NOT merged —
     * they stay empty; per-replica timelines remain available through
     * engines()[i]->stats().
     */
    EngineStats mergedStats() const;

    /** Requests finished per replica, indexed like engines(). */
    std::vector<std::int64_t> perReplicaFinished() const;

    /** Total host->GPU adapter traffic across replicas. */
    std::int64_t totalPcieBytes();
    std::int64_t totalPcieTransfers();

    /** Finalise all engines. */
    void finalize();

  private:
    void dispatch(const workload::Request &request);
    void buildReplica();
    void applyTarget(std::size_t target);
    void autoscaleTick(sim::SimTime until);

    sim::Simulator &sim_;
    EngineFactory factory_;
    std::unique_ptr<routing::Router> router_;
    std::unique_ptr<routing::Autoscaler> autoscaler_;
    std::vector<std::unique_ptr<ServingEngine>> engines_;
    std::vector<double> rates_; // nominal rates, aligned with engines_
    double maxRate_ = 0.0;      // max of rates_ (dispatch-path cache)
    std::size_t active_ = 0;
    bool traceSubmitted_ = false;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_CLUSTER_H
