/**
 * @file
 * Online per-replica service-rate measurement.
 *
 * serving::nominalServiceRate is a static, hardware-derived estimate:
 * it ranks an A100 above an A40 but knows nothing about what the
 * replica is actually achieving under load — batching efficiency,
 * adapter-cache behaviour and queue composition all move the real
 * completion rate. MeasuredRate tracks that real rate online: an
 * exponentially weighted moving average over the observed
 * inter-completion intervals, seeded at the nominal rate so the
 * estimate starts sane and *blends* toward the observation as
 * completions accumulate.
 *
 * The EWMA runs on intervals, not instantaneous rates (1/dt): the
 * inverse of the smoothed interval converges to the true rate on a
 * steady stream, whereas smoothing 1/dt directly over-weights short
 * gaps (Jensen). With alpha = 0 no observation is ever admitted and
 * rate() returns the nominal seed forever — the cluster's routing
 * weights then stay bit-identical to the static estimates
 * (tests/measured_rate_test.cc pins both properties).
 */

#ifndef CHAMELEON_SERVING_MEASURED_RATE_H
#define CHAMELEON_SERVING_MEASURED_RATE_H

#include <cstdint>

#include "simkit/time.h"

namespace chameleon::serving {

/** EWMA of one replica's observed completion rate, requests/s. */
class MeasuredRate
{
  public:
    /**
     * @param alpha EWMA weight of each new interval sample in [0, 1];
     *        0 freezes the estimate at the nominal seed.
     * @param nominalRps the static estimate the EWMA starts from
     *        (serving::nominalServiceRate of the replica's config).
     */
    MeasuredRate(double alpha, double nominalRps);

    /** One request finished on this replica at `now`. */
    void onCompletion(sim::SimTime now);

    /** Current rate estimate, requests/s. */
    double rate() const;

    /**
     * Staleness-aware rate estimate, requests/s: the EWMA interval is
     * floored by the time elapsed since the last completion, so a
     * stalled replica's estimate decays toward zero instead of
     * reporting its last EWMA forever. Identical to rate() while
     * completions keep arriving faster than the smoothed interval, and
     * before the EWMA is armed (a replica idle from birth keeps its
     * nominal seed — it is idle, not degraded).
     */
    double rate(sim::SimTime now) const;

    /** Completions observed so far (the first arms the interval). */
    std::int64_t completions() const { return completions_; }

    /**
     * True once the EWMA holds at least one interval sample — i.e.
     * rate() reflects an observation rather than the nominal seed.
     * Capacity-signal consumers treat an unarmed estimate as "no
     * measurement" and keep the nominal prior.
     */
    bool armed() const { return alpha_ > 0.0 && ewmaIntervalSeconds_ > 0.0; }

  private:
    double alpha_;
    double nominalRps_;
    /** Smoothed inter-completion interval, seconds; <= 0 = no sample. */
    double ewmaIntervalSeconds_ = 0.0;
    sim::SimTime lastCompletion_ = 0;
    std::int64_t completions_ = 0;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_MEASURED_RATE_H
