#include "serving/cluster.h"

#include "simkit/check.h"

namespace chameleon::serving {

DataParallelCluster::DataParallelCluster(
    sim::Simulator &simulator,
    const std::function<std::unique_ptr<ServingEngine>()> &engineFactory,
    int replicas, DispatchPolicy policy)
    : sim_(simulator), policy_(policy)
{
    CHM_CHECK(replicas >= 1, "cluster needs at least one engine");
    for (int i = 0; i < replicas; ++i)
        engines_.push_back(engineFactory());
}

ServingEngine &
DataParallelCluster::pick()
{
    switch (policy_) {
      case DispatchPolicy::RoundRobin: {
        ServingEngine &e = *engines_[rrNext_];
        rrNext_ = (rrNext_ + 1) % engines_.size();
        return e;
      }
      case DispatchPolicy::JoinShortestQueue: {
        ServingEngine *best = engines_.front().get();
        for (const auto &e : engines_) {
            if (e->outstanding() < best->outstanding())
                best = e.get();
        }
        return *best;
      }
    }
    CHM_PANIC("unknown dispatch policy");
}

void
DataParallelCluster::submitTrace(const workload::Trace &trace)
{
    // Dispatch decisions must be made at arrival time (outstanding counts
    // change as the simulation runs), so route via scheduled events.
    for (const auto &r : trace.requests()) {
        sim_.scheduleAt(r.arrival, [this, r] {
            workload::Request copy = r;
            // Submit with arrival == now; the engine schedules onArrival
            // at that same timestamp, which fires immediately after.
            pick().submit(copy);
        });
    }
}

std::vector<RequestRecord>
DataParallelCluster::mergedRecords() const
{
    std::vector<RequestRecord> all;
    for (const auto &e : engines_) {
        const auto &rec = e->stats().records;
        all.insert(all.end(), rec.begin(), rec.end());
    }
    return all;
}

void
DataParallelCluster::finalize()
{
    for (auto &e : engines_)
        e->finalize();
}

} // namespace chameleon::serving
