#include "serving/cluster.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::serving {

DataParallelCluster::DataParallelCluster(
    sim::Simulator &simulator, EngineFactory engineFactory, int replicas,
    std::unique_ptr<routing::Router> router)
    : sim_(simulator), factory_(std::move(engineFactory)),
      router_(std::move(router))
{
    CHM_CHECK(replicas >= 1, "cluster needs at least one engine");
    CHM_CHECK(router_ != nullptr, "cluster needs a router");
    for (int i = 0; i < replicas; ++i)
        buildReplica();
    active_ = engines_.size();
    router_->onReplicaCountChanged(active_);
}

DataParallelCluster::DataParallelCluster(
    sim::Simulator &simulator, EngineFactory engineFactory, int replicas,
    routing::RouterPolicy policy, const routing::RouterConfig &config)
    : DataParallelCluster(simulator, std::move(engineFactory), replicas,
                          routing::makeRouter(policy, config))
{
}

void
DataParallelCluster::enableAutoscaler(
    const routing::AutoscalerConfig &config)
{
    CHM_CHECK(!traceSubmitted_,
              "enableAutoscaler must precede submitTrace");
    autoscaler_ = std::make_unique<routing::Autoscaler>(config);
    applyTarget(std::clamp(active_, config.minReplicas,
                           config.maxReplicas));
}

std::int64_t
DataParallelCluster::outstanding(std::size_t i) const
{
    return engines_[i]->outstanding();
}

bool
DataParallelCluster::adapterResident(std::size_t i,
                                     model::AdapterId id) const
{
    if (id == model::kNoAdapter)
        return true;
    const ServingEngine &engine = *engines_[i];
    return engine.adapterManager().isResident(id);
}

double
DataParallelCluster::serviceWeight(std::size_t i) const
{
    // Normalised over every engine ever built (not just the active
    // prefix) so a replica's weight does not change when a slower
    // drained replica leaves the active set. maxRate_ is maintained
    // by buildReplica: serviceWeight sits on the per-request dispatch
    // path, called once per replica per routing decision.
    return rates_[i] / maxRate_;
}

void
DataParallelCluster::buildReplica()
{
    engines_.push_back(factory_(engines_.size()));
    rates_.push_back(nominalServiceRate(engines_.back()->config()));
    maxRate_ = std::max(maxRate_, rates_.back());
}

void
DataParallelCluster::dispatch(const workload::Request &request)
{
    if (autoscaler_ != nullptr)
        autoscaler_->onArrival(sim_.now());
    const std::size_t pick = router_->route(request, *this);
    CHM_CHECK(pick < active_, "router returned an inactive replica");
    engines_[pick]->submit(request);
}

void
DataParallelCluster::applyTarget(std::size_t target)
{
    if (target == active_)
        return;
    if (target > active_) {
        // Reactivate drained replicas first (their adapter caches are
        // still warm), then build new engines from the factory.
        while (engines_.size() < target)
            buildReplica();
    }
    active_ = target;
    router_->onReplicaCountChanged(active_);
}

void
DataParallelCluster::autoscaleTick(sim::SimTime until)
{
    // Count all engines, not just the active prefix: a drained replica
    // keeps burning its queue, and hiding that backlog from the
    // watermark test would cascade scale-downs while the cluster is
    // still working off a burst.
    std::int64_t total = 0;
    for (const auto &engine : engines_)
        total += engine->outstanding();
    applyTarget(autoscaler_->evaluate(active_, total, sim_.now()));
    const sim::SimTime period =
        sim::fromSeconds(autoscaler_->config().evalPeriodSeconds);
    if (sim_.now() + period <= until) {
        sim_.scheduleAfter(period, [this, until] {
            autoscaleTick(until);
        });
    }
}

void
DataParallelCluster::submitTrace(const workload::Trace &trace)
{
    // A second trace would start a second autoscale tick chain and
    // double the evaluation cadence; autoscaled clusters take one.
    CHM_CHECK(autoscaler_ == nullptr || !traceSubmitted_,
              "an autoscaled cluster takes a single trace");
    traceSubmitted_ = true;
    // One fixed replica: routing is the identity, so skip the dispatch
    // indirection and submit directly. Besides saving an event per
    // request, this keeps a one-replica cluster event-for-event
    // identical to driving the engine standalone.
    if (engines_.size() == 1 && autoscaler_ == nullptr) {
        engines_.front()->submitTrace(trace);
        return;
    }
    // Dispatch decisions must be made at arrival time (outstanding
    // counts and cache residency change as the simulation runs), so
    // route via scheduled events.
    for (const auto &r : trace.requests()) {
        sim_.scheduleAt(r.arrival, [this, r] {
            // Submit with arrival == now; the engine schedules
            // onArrival at that same timestamp, which fires immediately
            // after.
            dispatch(r);
        });
    }
    if (autoscaler_ != nullptr && !trace.empty()) {
        const sim::SimTime period = sim::fromSeconds(
            autoscaler_->config().evalPeriodSeconds);
        const sim::SimTime until = trace.duration();
        sim_.scheduleAt(trace.requests().front().arrival + period,
                        [this, until] { autoscaleTick(until); });
    }
}

std::vector<RequestRecord>
DataParallelCluster::mergedRecords() const
{
    std::vector<RequestRecord> all;
    for (const auto &e : engines_) {
        const auto &rec = e->stats().records;
        all.insert(all.end(), rec.begin(), rec.end());
    }
    return all;
}

EngineStats
DataParallelCluster::mergedStats() const
{
    EngineStats out;
    for (const auto &e : engines_) {
        const EngineStats &s = e->stats();
        for (double v : s.ttft.sorted())
            out.ttft.add(v);
        for (double v : s.tbt.sorted())
            out.tbt.add(v);
        for (double v : s.e2e.sorted())
            out.e2e.add(v);
        for (double v : s.queueDelay.sorted())
            out.queueDelay.add(v);
        for (double v : s.loadStall.sorted())
            out.loadStall.add(v);
        out.submitted += s.submitted;
        out.finished += s.finished;
        out.preemptions += s.preemptions;
        out.squashes += s.squashes;
        out.bypasses += s.bypasses;
        out.iterations += s.iterations;
        out.adapterHits += s.adapterHits;
        out.adapterMisses += s.adapterMisses;
        out.busyTime += s.busyTime;
        out.prefillTokens += s.prefillTokens;
        out.decodeTokens += s.decodeTokens;
        out.batchSizeAccum += s.batchSizeAccum;
    }
    out.records = mergedRecords();
    return out;
}

std::vector<std::int64_t>
DataParallelCluster::perReplicaFinished() const
{
    std::vector<std::int64_t> out;
    out.reserve(engines_.size());
    for (const auto &e : engines_)
        out.push_back(e->stats().finished);
    return out;
}

std::int64_t
DataParallelCluster::totalPcieBytes()
{
    std::int64_t total = 0;
    for (auto &e : engines_)
        total += e->pcieLink().totalBytes();
    return total;
}

std::int64_t
DataParallelCluster::totalPcieTransfers()
{
    std::int64_t total = 0;
    for (auto &e : engines_)
        total += e->pcieLink().totalTransfers();
    return total;
}

void
DataParallelCluster::finalize()
{
    for (auto &e : engines_)
        e->finalize();
}

} // namespace chameleon::serving
