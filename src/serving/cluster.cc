#include "serving/cluster.h"

#include <algorithm>
#include <limits>

#include "fabric/cache_fabric.h"
#include "simkit/check.h"

namespace chameleon::serving {

DataParallelCluster::DataParallelCluster(
    sim::Simulator &simulator, EngineFactory engineFactory, int replicas,
    std::unique_ptr<routing::Router> router)
    : sim_(simulator), factory_(std::move(engineFactory)),
      router_(std::move(router))
{
    CHM_CHECK(replicas >= 1, "cluster needs at least one engine");
    CHM_CHECK(router_ != nullptr, "cluster needs a router");
    // Initial replicas start warm (the cluster exists before the trace
    // begins); the cold-start model applies to scale-up builds only.
    for (int i = 0; i < replicas; ++i)
        buildReplica();
    provisioned_ = engines_.size();
    for (std::size_t i = 0; i < provisioned_; ++i)
        routable_.push_back(i);
    router_->onReplicaCountChanged(provisioned_);
}

DataParallelCluster::DataParallelCluster(
    sim::Simulator &simulator, EngineFactory engineFactory, int replicas,
    routing::RouterPolicy policy, const routing::RouterConfig &config)
    : DataParallelCluster(simulator, std::move(engineFactory), replicas,
                          routing::makeRouter(policy, config))
{
}

void
DataParallelCluster::enableAutoscaler(
    const routing::AutoscalerConfig &config, double referenceServiceRps)
{
    CHM_CHECK(!traceSubmitted_,
              "enableAutoscaler must precede submitTrace");
    // Clamp into the bounds first, before the autoscaler and the
    // cold-start model are installed: replicas provisioned to satisfy
    // the configured floor are initial capacity — the cluster exists
    // before the trace begins — and must start warm exactly like the
    // constructor's builds; only simulation-time scale-ups boot.
    applyTarget(std::clamp(provisioned_, config.minReplicas,
                           config.maxReplicas));
    autoscaler_ = std::make_unique<routing::Autoscaler>(config);
    autoscaler_->setTraceRecorder(trace_);
    coldStart_ = ColdStartModel(config.bootMs);
    referenceRate_ =
        referenceServiceRps > 0.0 ? referenceServiceRps : rates_.front();
    if (config.measuredRateAlpha > 0.0)
        enableMeasuredRates(config.measuredRateAlpha);
}

void
DataParallelCluster::setScaleUpCandidates(
    std::vector<EngineConfig> candidates, ConfigEngineFactory factory)
{
    CHM_CHECK(!candidates.empty(),
              "scale-up catalogue must not be empty");
    CHM_CHECK(factory != nullptr,
              "scale-up catalogue needs a config factory");
    candidates_ = std::move(candidates);
    configFactory_ = std::move(factory);
    candidateRates_.clear();
    fastestCandidate_ = 0;
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
        candidateRates_.push_back(nominalServiceRate(candidates_[c]));
        if (candidateRates_[c] > candidateRates_[fastestCandidate_])
            fastestCandidate_ = c;
    }
}

void
DataParallelCluster::setReferenceEngine(const EngineConfig &config)
{
    referenceEngine_ = std::make_unique<EngineConfig>(config);
}

const EngineConfig &
DataParallelCluster::referenceEngineConfig() const
{
    return referenceEngine_ != nullptr ? *referenceEngine_
                                       : engines_.front()->config();
}

void
DataParallelCluster::enableMeasuredRates(double alpha)
{
    CHM_CHECK(!traceSubmitted_,
              "enableMeasuredRates must precede submitTrace");
    CHM_CHECK(alpha >= 0.0 && alpha <= 1.0,
              "measured-rate alpha must be within [0, 1]");
    if (alpha <= 0.0)
        return; // nominal weights, bit-identical streams
    measuredAlpha_ = alpha;
    weightsDirty_ = true; // weights switch to the measured stream
    measured_.clear();
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        measured_.emplace_back(alpha, rates_[i]);
        installMeasuredRate(i);
    }
}

std::int64_t
DataParallelCluster::outstanding(std::size_t i) const
{
    return engines_[routable_[i]]->outstanding();
}

bool
DataParallelCluster::adapterResident(std::size_t i,
                                     model::AdapterId id) const
{
    if (id == model::kNoAdapter)
        return true;
    const ServingEngine &engine = *engines_[routable_[i]];
    return engine.adapterManager().isResident(id);
}

void
DataParallelCluster::residentReplicas(model::AdapterId id,
                                      std::vector<std::size_t> *out) const
{
    if (fabric_ == nullptr) {
        routing::ClusterView::residentReplicas(id, out);
        return;
    }
    out->clear();
    if (id == model::kNoAdapter) {
        // No-adapter requests hit everywhere (adapterResident parity).
        for (std::size_t i = 0; i < routable_.size(); ++i)
            out->push_back(i);
        return;
    }
    // Directory answers in engine indices; translate to view indices.
    // Both sides are ascending, so one binary search per holder.
    fabric_->directory().residentReplicas(id, &fabricHolders_);
    for (std::size_t engineIndex : fabricHolders_) {
        const auto it = std::lower_bound(routable_.begin(),
                                         routable_.end(), engineIndex);
        if (it != routable_.end() && *it == engineIndex)
            out->push_back(
                static_cast<std::size_t>(it - routable_.begin()));
    }
}

double
DataParallelCluster::serviceWeight(std::size_t i) const
{
    // Normalised over every engine ever built (not just the active
    // prefix) so a replica's weight does not change when a slower
    // drained replica leaves the active set. maxRate_ is maintained
    // by buildReplica: serviceWeight sits on the per-request dispatch
    // path, called once per replica per routing decision. The measured
    // rate is staleness-floored so a stalled replica's weight decays
    // instead of keeping its last EWMA (and the dispatches) forever.
    const std::size_t engineIndex = routable_[i];
    const double rate = measuredAlpha_ > 0.0
                            ? measured_[engineIndex].rate(sim_.now())
                            : rates_[engineIndex];
    return rate / maxRate_;
}

const std::vector<double> &
DataParallelCluster::serviceWeights() const
{
    // With measured rates the entries decay with simulation time (the
    // staleness floor), so a cache built at an earlier timestamp is no
    // longer exactly serviceWeight(i); the extra time key costs the
    // unmeasured path nothing (weightsDirty_ short-circuits).
    const bool stale = measuredAlpha_ > 0.0 && weightsTime_ != sim_.now();
    if (weightsDirty_ || stale) {
        weights_.resize(routable_.size());
        for (std::size_t i = 0; i < routable_.size(); ++i)
            weights_[i] = serviceWeight(i);
        weightsDirty_ = false;
        weightsTime_ = sim_.now();
    }
    return weights_;
}

std::vector<double>
DataParallelCluster::effectiveServiceRates() const
{
    if (measuredAlpha_ <= 0.0)
        return rates_;
    std::vector<double> out;
    out.reserve(measured_.size());
    for (const auto &rate : measured_)
        out.push_back(rate.rate());
    return out;
}

void
DataParallelCluster::attachFabric(fabric::CacheFabric *fabric)
{
    CHM_CHECK(!traceSubmitted_,
              "attachFabric must precede submitTrace");
    CHM_CHECK(fabric_ == nullptr, "cluster already has a cache fabric");
    fabric_ = fabric;
    for (std::size_t i = 0; i < engines_.size(); ++i)
        fabric_->attachReplica(i, engines_[i]->adapterManager());
    if (trace_ != nullptr)
        fabric_->setTraceRecorder(trace_);
}

void
DataParallelCluster::setTraceRecorder(obs::TraceRecorder *recorder)
{
    trace_ = recorder;
    if (autoscaler_ != nullptr)
        autoscaler_->setTraceRecorder(recorder);
    if (fabric_ != nullptr)
        fabric_->setTraceRecorder(recorder);
    if (recorder == nullptr) {
        router_->setTraceRecorder(nullptr, nullptr);
        for (auto &engine : engines_)
            engine->setTraceRecorder(nullptr, 0);
        return;
    }
    recorder->processName(obs::kClusterPid, "cluster");
    recorder->threadName(obs::kClusterPid, obs::Lane::Control,
                         "control");
    router_->setTraceRecorder(recorder, &sim_);
    for (std::size_t i = 0; i < engines_.size(); ++i)
        wireEngineTrace(i);
}

/** Name replica `index`'s trace process and attach its engine. */
void
DataParallelCluster::wireEngineTrace(std::size_t index)
{
    const int pid = obs::pidForReplica(index);
    trace_->processName(pid, "replica" + std::to_string(index) + " [" +
                                 engines_[index]->config().gpu.name +
                                 "]");
    trace_->threadName(pid, obs::Lane::Engine, "engine");
    trace_->threadName(pid, obs::Lane::Requests, "requests");
    trace_->threadName(pid, obs::Lane::Cache, "adapter-cache");
    engines_[index]->setTraceRecorder(trace_, pid);
}

void
DataParallelCluster::installMeasuredRate(std::size_t index)
{
    engines_[index]->setCompletionListener(
        [this, index](sim::SimTime now) {
            measured_[index].onCompletion(now);
            weightsDirty_ = true; // the EWMA moved; recompute lazily
        });
}

void
DataParallelCluster::appendEngine(std::unique_ptr<ServingEngine> engine,
                                  double nominalRate)
{
    engines_.push_back(std::move(engine));
    rates_.push_back(nominalRate);
    maxRate_ = std::max(maxRate_, nominalRate);
    weightsDirty_ = true; // maxRate_ may have moved every weight
    states_.push_back(ReplicaState::Active);
    bootDeadline_.push_back(0);
    if (measuredAlpha_ > 0.0) {
        measured_.emplace_back(measuredAlpha_, nominalRate);
        installMeasuredRate(engines_.size() - 1);
    }
    if (trace_ != nullptr)
        wireEngineTrace(engines_.size() - 1);
    if (fabric_ != nullptr) {
        fabric_->attachReplica(engines_.size() - 1,
                               engines_.back()->adapterManager());
    }
}

void
DataParallelCluster::buildReplica()
{
    auto engine = factory_(engines_.size());
    const double rate = nominalServiceRate(engine->config());
    appendEngine(std::move(engine), rate);
}

/**
 * Build one scale-up replica. The engine comes from the index factory
 * (Default policy) or from the catalogue candidate the ScaleUpPolicy
 * picks; with the cold-start model enabled it enters Booting and only
 * becomes dispatchable at its boot deadline.
 */
void
DataParallelCluster::buildScaleUpReplica()
{
    const routing::ScaleUpPolicy policy =
        autoscaler_ != nullptr ? autoscaler_->config().scaleUpPolicy
                               : routing::ScaleUpPolicy::Default;
    if (policy == routing::ScaleUpPolicy::Default ||
        candidates_.empty()) {
        buildReplica();
    } else {
        // Forecast shortfall still uncovered, in reference-replica
        // units (<= 0 for watermark-driven scale-ups).
        double shortfall = 0.0;
        if (autoscaler_ != nullptr) {
            shortfall = autoscaler_->lastForecastDemand() -
                        capacitySignals().activeCapacityFactor;
        }
        std::size_t pick = fastestCandidate_;
        if (policy == routing::ScaleUpPolicy::Cheapest) {
            // Cheapest-that-meets-forecast; when no single candidate
            // covers the shortfall, keep the fastest and let the next
            // build cover the rest.
            const double needed = shortfall * referenceRate_;
            double bestRate = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < candidates_.size(); ++c) {
                if (candidateRates_[c] + 1e-12 >= needed &&
                    candidateRates_[c] < bestRate) {
                    bestRate = candidateRates_[c];
                    pick = c;
                }
            }
        }
        appendEngine(configFactory_(candidates_[pick]),
                     candidateRates_[pick]);
    }

    const std::size_t index = engines_.size() - 1;
    if (trace_ != nullptr) {
        trace_->instant(obs::kClusterPid, obs::Lane::Control, "scale_up",
                        sim_.now(),
                        {{"replica", index},
                         {"gpu", engines_[index]->config().gpu.name}});
    }
    if (coldStart_.enabled()) {
        const sim::SimTime boot =
            coldStart_.bootTime(engines_[index]->config());
        states_[index] = ReplicaState::Booting;
        bootDeadline_[index] = sim_.now() + boot;
        ++bootStats_.boots;
        bootStats_.totalBootTime += boot;
        if (trace_ != nullptr) {
            // The boot duration is known at schedule time, so the span
            // is a complete event up front. A drain can cancel the boot
            // mid-span; the cancellation shows as the "drain" instant.
            trace_->complete(obs::pidForReplica(index),
                             obs::Lane::Engine, "boot", sim_.now(),
                             boot);
        }
        sim_.scheduleAfter(boot,
                           [this, index] { onBootComplete(index); });
    }
    // Peer-warm the new replica while (or despite) it boots: the
    // migrations land through the calendar queue, so the cache is warm
    // by the time the boot deadline admits the replica to the ring.
    if (fabric_ != nullptr)
        fabric_->onScaleUp(index, sim_.now());
}

void
DataParallelCluster::onBootComplete(std::size_t index)
{
    // The slot may have been drained mid-boot (and possibly not yet
    // reactivated); only a still-Booting replica joins the active set.
    if (states_[index] != ReplicaState::Booting)
        return;
    states_[index] = ReplicaState::Active;
    syncRoutable();
}

void
DataParallelCluster::syncRoutable()
{
    std::vector<std::size_t> routable;
    std::size_t booting = 0;
    routable.reserve(provisioned_);
    for (std::size_t i = 0; i < provisioned_; ++i) {
        if (states_[i] == ReplicaState::Active)
            routable.push_back(i);
        else
            ++booting;
    }
    booting_ = booting;
    if (routable != routable_) {
        routable_ = std::move(routable);
        weightsDirty_ = true;
        router_->onReplicaCountChanged(routable_.size());
        // Ring remap: re-home globally hot adapters that lost their
        // last active holder to the drain/boot that changed the set.
        if (fabric_ != nullptr && !routable_.empty())
            fabric_->onRemap(routable_, sim_.now());
    }
}

double
DataParallelCluster::capacityFactor(std::size_t index) const
{
    return rates_[index] / referenceRate_;
}

bool
DataParallelCluster::measuredSignals() const
{
    return measuredAlpha_ > 0.0 && autoscaler_ != nullptr &&
           autoscaler_->config().demandSource ==
               routing::DemandSource::Measured;
}

routing::CapacitySignals
DataParallelCluster::capacitySignals() const
{
    // Capacity in reference-replica units. With DemandSource::Nominal
    // (the default) the factors are the static nominal ratios —
    // homogeneous fleets divide a rate by itself, every factor is
    // exactly 1.0 and the sum exactly the provisioned count, which
    // keeps the autoscaler's decisions bit-identical to the historical
    // scalar arithmetic.
    //
    // With DemandSource::Measured each nominal factor is scaled by the
    // replica's *health*: its measured-to-nominal ratio relative to
    // the best armed ratio in the fleet. Measured EWMA rates are
    // achieved throughput and only comparable across replicas — the
    // analytic nominal rate is a different estimator (no batching), so
    // dividing an absolute measured rate by the nominal reference
    // would inflate capacity whenever real batching beats the model
    // and stall every scale-up. Relative to the fleet's best, a
    // throttled or stalled replica reads as a fraction of its nominal
    // factor while a fleet that is merely fast everywhere stays at its
    // nominal total. Replicas without a measurement yet (unarmed EWMA)
    // keep their nominal prior; the bias of the normalisation is
    // conservative — an under-utilised replica reads as partially
    // degraded, which can only scale up earlier, never later.
    routing::CapacitySignals signals;
    const bool measured = measuredSignals();
    double bestRatio = 0.0;
    if (measured) {
        for (std::size_t i = 0; i < provisioned_; ++i) {
            if (measured_[i].armed()) {
                bestRatio = std::max(
                    bestRatio,
                    measured_[i].rate(sim_.now()) / rates_[i]);
            }
        }
    }
    // measured_ is only populated while the measured stream is live —
    // nominal mode must not touch it (it is empty with alpha = 0).
    const auto health = [&](std::size_t index, double rate) {
        if (!measured_[index].armed() || bestRatio <= 0.0)
            return 1.0;
        return std::min(1.0, rate / rates_[index] / bestRatio);
    };
    for (std::size_t i = 0; i < provisioned_; ++i) {
        signals.activeCapacityFactor +=
            capacityFactor(i) *
            (measured ? health(i, measured_[i].rate(sim_.now())) : 1.0);
    }
    if (provisioned_ < engines_.size()) {
        // Next step reactivates a drained replica of known capacity:
        // its effective rate, not its nominal one — a replica that
        // never achieved its advertised throughput will not start now.
        // The EWMA is read un-floored: a drained replica is idle by
        // design, so elapsed-time decay would say "degraded" about a
        // replica that is merely parked.
        const std::size_t next = provisioned_;
        signals.nextReplicaFactor =
            capacityFactor(next) *
            (measured ? health(next, measured_[next].rate()) : 1.0);
        // A replica drained mid-boot resumes its original deadline, so
        // the reactivation only pays the boot time still outstanding.
        if (bootDeadline_[next] > sim_.now()) {
            signals.nextReplicaBootSeconds =
                sim::toSeconds(bootDeadline_[next] - sim_.now());
        }
    } else if (autoscaler_ != nullptr && !candidates_.empty() &&
               autoscaler_->config().scaleUpPolicy !=
                   routing::ScaleUpPolicy::Default) {
        // Both catalogue policies cover a shortfall at worst at the
        // fastest candidate's pace (Cheapest falls back to it). A
        // candidate not yet built has no measurement; nominal is the
        // only estimate there is.
        signals.nextReplicaFactor =
            candidateRates_[fastestCandidate_] / referenceRate_;
        signals.nextReplicaBootSeconds = sim::toSeconds(
            coldStart_.bootTime(candidates_[fastestCandidate_]));
    } else {
        // Default policy past the fleet list builds the base engine.
        signals.nextReplicaFactor = 1.0;
        signals.nextReplicaBootSeconds = sim::toSeconds(
            coldStart_.bootTime(referenceEngineConfig()));
    }
    return signals;
}

void
DataParallelCluster::dispatch(const workload::Request &request)
{
    if (autoscaler_ != nullptr)
        autoscaler_->onArrival(sim_.now());
    if (booting_ > 0)
        ++bootStats_.requestsDelayedByBoot;
    const std::size_t pick = router_->route(request, *this);
    CHM_CHECK(pick < routable_.size(),
              "router returned an inactive replica");
    if (trace_ != nullptr) {
        trace_->instant(obs::kClusterPid, obs::Lane::Control,
                        "dispatch", sim_.now(),
                        {{"request", request.id},
                         {"adapter", request.adapter},
                         {"replica", routable_[pick]}});
    }
    engines_[routable_[pick]]->submit(request);
}

void
DataParallelCluster::applyTarget(std::size_t target)
{
    if (target == provisioned_)
        return;
    std::vector<std::size_t> drained;
    if (target > provisioned_) {
        while (provisioned_ < target) {
            if (provisioned_ < engines_.size()) {
                // Reactivate drained replicas first (their adapter
                // caches — and loaded weights — are still warm). A
                // replica drained mid-boot resumes its original boot
                // deadline instead of restarting the load.
                const std::size_t index = provisioned_;
                states_[index] = sim_.now() >= bootDeadline_[index]
                                     ? ReplicaState::Active
                                     : ReplicaState::Booting;
                if (trace_ != nullptr) {
                    trace_->instant(obs::kClusterPid,
                                    obs::Lane::Control, "reactivate",
                                    sim_.now(), {{"replica", index}});
                }
            } else {
                buildScaleUpReplica();
            }
            ++provisioned_;
        }
    } else {
        // Drain from the top of the provisioned prefix; a Booting
        // replica is cancelled (its pending boot event finds it
        // Drained and does nothing), a working replica keeps burning
        // its queue without receiving new dispatches.
        while (provisioned_ > target) {
            --provisioned_;
            states_[provisioned_] = ReplicaState::Drained;
            drained.push_back(provisioned_);
            if (trace_ != nullptr) {
                trace_->instant(obs::kClusterPid, obs::Lane::Control,
                                "drain", sim_.now(),
                                {{"replica", provisioned_}});
            }
        }
    }
    syncRoutable();
    // After the routable set settles: each drained replica pushes its
    // hot idle cache entries to the survivors (ascending index, so the
    // migration order is deterministic).
    if (fabric_ != nullptr && !drained.empty()) {
        std::sort(drained.begin(), drained.end());
        for (std::size_t index : drained)
            fabric_->onDrain(index, routable_, sim_.now());
    }
}

void
DataParallelCluster::resize(std::size_t target)
{
    CHM_CHECK(target >= 1, "cluster cannot resize below one replica");
    applyTarget(target);
}

void
DataParallelCluster::autoscaleTick(sim::SimTime until)
{
    // Count all engines, not just the active prefix: a drained replica
    // keeps burning its queue, and hiding that backlog from the
    // watermark test would cascade scale-downs while the cluster is
    // still working off a burst.
    std::int64_t total = 0;
    for (const auto &engine : engines_)
        total += engine->outstanding();
    applyTarget(autoscaler_->evaluate(provisioned_, total, sim_.now(),
                                      capacitySignals()));
    const sim::SimTime period =
        sim::fromSeconds(autoscaler_->config().evalPeriodSeconds);
    if (sim_.now() + period <= until) {
        sim_.scheduleAfter(period, [this, until] {
            autoscaleTick(until);
        });
    }
}

void
DataParallelCluster::submitTrace(const workload::Trace &trace)
{
    // A second trace would start a second autoscale tick chain and
    // double the evaluation cadence; autoscaled clusters take one.
    CHM_CHECK(autoscaler_ == nullptr || !traceSubmitted_,
              "an autoscaled cluster takes a single trace");
    traceSubmitted_ = true;
    // One fixed replica: routing is the identity, so skip the dispatch
    // indirection and submit directly. Besides saving an event per
    // request, this keeps a one-replica cluster event-for-event
    // identical to driving the engine standalone.
    if (engines_.size() == 1 && autoscaler_ == nullptr) {
        engines_.front()->submitTrace(trace);
        return;
    }
    // Dispatch decisions must be made at arrival time (outstanding
    // counts and cache residency change as the simulation runs), so
    // route via scheduled events.
    for (const auto &r : trace.requests()) {
        sim_.scheduleAt(r.arrival, [this, r] {
            // Submit with arrival == now; the engine schedules
            // onArrival at that same timestamp, which fires immediately
            // after.
            dispatch(r);
        });
    }
    if (autoscaler_ != nullptr && !trace.empty()) {
        const sim::SimTime period = sim::fromSeconds(
            autoscaler_->config().evalPeriodSeconds);
        const sim::SimTime until = trace.duration();
        sim_.scheduleAt(trace.requests().front().arrival + period,
                        [this, until] { autoscaleTick(until); });
    }
}

std::vector<RequestRecord>
DataParallelCluster::mergedRecords() const
{
    std::vector<RequestRecord> all;
    for (const auto &e : engines_) {
        const auto &rec = e->stats().records;
        all.insert(all.end(), rec.begin(), rec.end());
    }
    return all;
}

EngineStats
DataParallelCluster::mergedStats() const
{
    EngineStats out;
    for (const auto &e : engines_) {
        const EngineStats &s = e->stats();
        for (double v : s.ttft.sorted())
            out.ttft.add(v);
        for (double v : s.tbt.sorted())
            out.tbt.add(v);
        for (double v : s.e2e.sorted())
            out.e2e.add(v);
        for (double v : s.queueDelay.sorted())
            out.queueDelay.add(v);
        for (double v : s.loadStall.sorted())
            out.loadStall.add(v);
        out.submitted += s.submitted;
        out.finished += s.finished;
        out.preemptions += s.preemptions;
        out.squashes += s.squashes;
        out.bypasses += s.bypasses;
        out.iterations += s.iterations;
        out.adapterHits += s.adapterHits;
        out.adapterMisses += s.adapterMisses;
        out.busyTime += s.busyTime;
        out.prefillTokens += s.prefillTokens;
        out.decodeTokens += s.decodeTokens;
        out.batchSizeAccum += s.batchSizeAccum;
    }
    out.records = mergedRecords();
    return out;
}

std::vector<std::int64_t>
DataParallelCluster::perReplicaFinished() const
{
    std::vector<std::int64_t> out;
    out.reserve(engines_.size());
    for (const auto &e : engines_)
        out.push_back(e->stats().finished);
    return out;
}

std::int64_t
DataParallelCluster::totalPcieBytes()
{
    std::int64_t total = 0;
    for (auto &e : engines_)
        total += e->pcieLink().totalBytes();
    return total;
}

std::int64_t
DataParallelCluster::totalPcieTransfers()
{
    std::int64_t total = 0;
    for (auto &e : engines_)
        total += e->pcieLink().totalTransfers();
    return total;
}

void
DataParallelCluster::finalize()
{
    for (auto &e : engines_)
        e->finalize();
}

} // namespace chameleon::serving
