/**
 * @file
 * Replica cold-start model: what a scale-up actually costs.
 *
 * Before this model, an autoscaler scale-up instantiated a fresh
 * engine that began serving in the same event — free capacity, which
 * made every forecast horizon trivially beatable. In reality a new
 * replica must read the base-model weights from host memory over the
 * PCIe/host-read path and pay a process/runtime boot constant before
 * it can serve its first token.
 *
 * The model derives the weight-load term from the engine's own
 * analytic cost model (model::CostModel::adapterLoadTime applied to
 * the full weights byte count — the same per-transfer setup, link
 * bandwidth and tensor-parallel synchronisation charged for adapter
 * fetches, §3.2) and adds the configurable boot constant
 * (routing::AutoscalerConfig::bootMs). A booting replica sits in the
 * cluster's `Booting` state: it counts toward provisioned capacity
 * (so the autoscaler does not double-scale) but receives no
 * dispatches until its boot deadline passes.
 *
 * bootMs = 0 disables the model entirely: scale-ups activate
 * synchronously in the scale-up event, reproducing the pre-cold-start
 * event streams bit-for-bit (tests/golden_trace_test.cc).
 */

#ifndef CHAMELEON_SERVING_COLD_START_H
#define CHAMELEON_SERVING_COLD_START_H

#include "serving/engine.h"
#include "simkit/time.h"

namespace chameleon::serving {

/** Boot-latency model for newly built replicas. */
class ColdStartModel
{
  public:
    /** @param bootMs boot constant, milliseconds; 0 disables. */
    explicit ColdStartModel(double bootMs = 0.0);

    /** Is the cold-start model active (bootMs > 0)? */
    bool enabled() const { return bootMs_ > 0.0; }

    /**
     * Boot latency of a replica built with `config`: weight-load time
     * over the PCIe/host-read path plus the boot constant. Exactly 0
     * when the model is disabled.
     */
    sim::SimTime bootTime(const EngineConfig &config) const;

    /** The weight-load term alone (0 when disabled), for reporting. */
    sim::SimTime weightLoadTime(const EngineConfig &config) const;

  private:
    double bootMs_;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_COLD_START_H
