#include "serving/cold_start.h"

#include "model/cost_model.h"
#include "simkit/check.h"

namespace chameleon::serving {

ColdStartModel::ColdStartModel(double bootMs) : bootMs_(bootMs)
{
    CHM_CHECK(bootMs_ >= 0.0, "bootMs must be >= 0 (0 disables)");
}

sim::SimTime
ColdStartModel::weightLoadTime(const EngineConfig &config) const
{
    if (!enabled())
        return 0;
    const model::CostModel cost(config.model, config.gpu,
                                config.tpDegree, config.cost);
    return cost.adapterLoadTime(config.model.weightsBytes());
}

sim::SimTime
ColdStartModel::bootTime(const EngineConfig &config) const
{
    if (!enabled())
        return 0;
    return weightLoadTime(config) + sim::fromMillis(bootMs_);
}

} // namespace chameleon::serving
