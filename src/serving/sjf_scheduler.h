/**
 * @file
 * Speculative shortest-job-first scheduler (the uServe policy [46]).
 *
 * Orders waiting requests by predicted output length and admits the
 * shortest first. An optional aging term bounds starvation: a request's
 * effective size shrinks as it waits. The paper runs SJF without
 * preemption, as do we (§3.3, §6).
 */

#ifndef CHAMELEON_SERVING_SJF_SCHEDULER_H
#define CHAMELEON_SERVING_SJF_SCHEDULER_H

#include <list>

#include "serving/scheduler.h"

namespace chameleon::serving {

/** Predicted-shortest-first admission. */
class SjfScheduler : public Scheduler
{
  public:
    /**
     * @param agingPerSecond tokens subtracted from a request's effective
     *        size per second of waiting (0 disables aging)
     */
    explicit SjfScheduler(double agingPerSecond = 0.0)
        : agingPerSecond_(agingPerSecond)
    {
    }

    const char *name() const override { return "sjf"; }

    void enqueue(LiveRequest *r) override { queue_.push_back(r); }
    void requeueFront(LiveRequest *r) override { queue_.push_front(r); }
    bool hasWaiting() const override { return !queue_.empty(); }
    std::size_t waitingCount() const override { return queue_.size(); }

    std::vector<LiveRequest *> selectAdmissions(
        AdmissionContext &ctx) override;

    std::vector<LiveRequest *> waitingSnapshot() const override;

  private:
    double effectiveSize(const LiveRequest *r, sim::SimTime now) const;

    double agingPerSecond_;
    std::list<LiveRequest *> queue_;
};

} // namespace chameleon::serving

#endif // CHAMELEON_SERVING_SJF_SCHEDULER_H
