#include "serving/slo.h"

#include "simkit/check.h"

namespace chameleon::serving {

using sim::SimTime;

namespace {

SimTime
isolatedE2eFor(std::int64_t input, std::int64_t output, model::AdapterId id,
               const model::CostModel &cost, const model::AdapterPool *pool)
{
    int rank = 0;
    std::int64_t bytes = 0;
    if (id != model::kNoAdapter) {
        CHM_CHECK(pool != nullptr, "adapter request without pool");
        rank = pool->spec(id).rank;
        bytes = pool->spec(id).bytes;
    }
    return cost.isolatedE2e(input, output, rank, bytes,
                            /*includeLoad=*/rank > 0);
}

} // namespace

SimTime
meanIsolatedE2e(const workload::Trace &trace, const model::CostModel &cost,
                const model::AdapterPool *pool)
{
    CHM_CHECK(!trace.empty(), "trace must be non-empty");
    double total_s = 0.0;
    for (const auto &r : trace.requests()) {
        total_s += sim::toSeconds(isolatedE2eFor(
            r.inputTokens, r.outputTokens, r.adapter, cost, pool));
    }
    return sim::fromSeconds(total_s /
                            static_cast<double>(trace.size()));
}

SimTime
computeSlo(const workload::Trace &trace, const model::CostModel &cost,
           const model::AdapterPool *pool, double multiplier)
{
    return static_cast<SimTime>(
        multiplier *
        static_cast<double>(meanIsolatedE2e(trace, cost, pool)));
}

sim::PercentileTracker
slowdowns(const std::vector<RequestRecord> &records,
          const model::CostModel &cost, const model::AdapterPool *pool)
{
    sim::PercentileTracker out;
    for (const auto &rec : records) {
        const SimTime iso = isolatedE2eFor(rec.inputTokens, rec.outputTokens,
                                           rec.adapter, cost, pool);
        CHM_CHECK(iso > 0, "isolated latency must be positive");
        out.add(static_cast<double>(rec.e2e) / static_cast<double>(iso));
    }
    return out;
}

double
throughputKnee(const std::vector<std::pair<double, double>> &rpsToP99,
               double sloSeconds)
{
    CHM_CHECK(!rpsToP99.empty(), "need at least one sweep point");
    double lastGoodRps = 0.0;
    double lastGoodP99 = 0.0;
    bool any_good = false;
    for (const auto &[rps, p99] : rpsToP99) {
        if (p99 <= sloSeconds) {
            lastGoodRps = rps;
            lastGoodP99 = p99;
            any_good = true;
        } else if (any_good) {
            // Interpolate between the last compliant point and this one.
            const double frac =
                (sloSeconds - lastGoodP99) / (p99 - lastGoodP99);
            return lastGoodRps + frac * (rps - lastGoodRps);
        } else {
            return rps; // violates from the very first point
        }
    }
    return lastGoodRps; // compliant across the entire sweep
}

} // namespace chameleon::serving
