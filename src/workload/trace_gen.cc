#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "simkit/check.h"
#include "simkit/distributions.h"

namespace chameleon::workload {

using model::AdapterId;
using sim::Rng;

double
LengthDist::approxMean() const
{
    return median * std::exp(0.5 * sigma * sigma);
}

TraceGenConfig
splitwiseLike()
{
    // Azure conversation trace scaled down to testbed memory, as the
    // paper does (§3.2): heavy-tailed lengths with medians well below
    // the clamp so a small fraction of requests dominates memory/time.
    TraceGenConfig cfg;
    cfg.input = LengthDist{64.0, 0.9, 4, 768};
    cfg.output = LengthDist{48.0, 0.85, 2, 512};
    cfg.burstMultiplier = 2.5;
    return cfg;
}

TraceGenConfig
wildchatLike()
{
    TraceGenConfig cfg;
    cfg.input = LengthDist{40.0, 0.8, 4, 512};
    cfg.output = LengthDist{32.0, 0.75, 2, 320};
    cfg.burstMultiplier = 2.5;
    return cfg;
}

TraceGenConfig
lmsysLike()
{
    TraceGenConfig cfg;
    cfg.input = LengthDist{32.0, 0.85, 4, 512};
    cfg.output = LengthDist{36.0, 0.7, 2, 320};
    cfg.burstMultiplier = 2.5;
    return cfg;
}

TraceGenerator::TraceGenerator(TraceGenConfig config,
                               const model::AdapterPool *pool)
    : config_(std::move(config)), pool_(pool)
{
    if (config_.numAdapters > 0) {
        CHM_CHECK(pool_ != nullptr, "adapter workload needs a pool");
        CHM_CHECK(pool_->size() >= config_.numAdapters,
                  "pool smaller than requested adapter count");
        // Group adapter ids by rank so rank popularity and within-rank
        // popularity can be drawn independently (§5.1).
        std::map<int, std::vector<AdapterId>> byRank;
        for (int id = 0; id < config_.numAdapters; ++id)
            byRank[pool_->spec(id).rank].push_back(id);
        for (auto &[rank, ids] : byRank)
            rankBuckets_.push_back(std::move(ids));
        const double rank_alpha =
            config_.rankPopularity == Popularity::PowerLaw
                ? config_.powerLawAlpha : 0.0;
        const double adapter_alpha =
            config_.adapterPopularity == Popularity::PowerLaw
                ? config_.powerLawAlpha : 0.0;
        rankSampler_ = std::make_unique<sim::PowerLawSampler>(
            rankBuckets_.size(), rank_alpha);
        for (const auto &ids : rankBuckets_)
            withinSamplers_.emplace_back(ids.size(), adapter_alpha);
    }
}

std::int64_t
TraceGenerator::sampleLength(const LengthDist &dist, Rng &rng) const
{
    const double mu = std::log(dist.median);
    const double x = sim::sampleLognormal(rng, mu, dist.sigma);
    const auto tokens = static_cast<std::int64_t>(std::llround(x));
    return std::clamp(tokens, dist.minTokens, dist.maxTokens);
}

AdapterId
TraceGenerator::sampleAdapter(Rng &rng) const
{
    if (rankBuckets_.empty())
        return model::kNoAdapter;
    const auto bucket = rankSampler_->sample(rng);
    const auto &ids = rankBuckets_[bucket];
    return ids[withinSamplers_[bucket].sample(rng)];
}

std::vector<double>
TraceGenerator::normalisedShares() const
{
    const auto n = static_cast<std::size_t>(config_.numTenants);
    std::vector<double> shares = config_.tenantShares;
    if (shares.empty())
        shares.assign(n, 1.0);
    CHM_CHECK(shares.size() == n,
              "tenant_shares must be empty or have one entry per tenant");
    double total = 0.0;
    for (const double s : shares) {
        CHM_CHECK(s > 0.0, "tenant shares must be positive");
        total += s;
    }
    for (double &s : shares)
        s /= total;
    return shares;
}

/**
 * One tenant's arrival process: the same modulated-Poisson loop as the
 * single-tenant path, at `shareRps`, plus the noisy-neighbour storm
 * window when this tenant is the storm tenant.
 */
std::vector<Request>
TraceGenerator::generateTenant(TenantId tenant, double shareRps,
                               Rng root) const
{
    Rng arrivalRng = root.split();
    Rng lengthRng = root.split();
    Rng adapterRng = root.split();

    const bool storming = tenant == config_.stormTenant &&
                          config_.stormMultiplier > 1.0 &&
                          config_.stormEndSeconds > config_.stormStartSeconds;
    std::vector<Request> reqs;
    const sim::SimTime horizon = sim::fromSeconds(config_.durationSeconds);
    sim::SimTime t = 0;
    double base_rate = shareRps;
    if (config_.burstMultiplier > 1.0 && config_.burstPeriodSeconds > 0) {
        const double p = config_.burstPeriodSeconds;
        const double d =
            std::min(config_.burstDurationSeconds, config_.burstPeriodSeconds);
        const double m = config_.burstMultiplier;
        base_rate = shareRps * p / ((p - d) + d * m);
    }
    while (true) {
        double rate = base_rate;
        const double now_s = sim::toSeconds(t);
        if (config_.burstMultiplier > 1.0 && config_.burstPeriodSeconds > 0) {
            const double phase =
                now_s - std::floor(now_s / config_.burstPeriodSeconds) *
                            config_.burstPeriodSeconds;
            if (phase < config_.burstDurationSeconds)
                rate *= config_.burstMultiplier;
        }
        for (const auto &b : config_.bursts) {
            if (now_s >= b.startSeconds && now_s < b.endSeconds)
                rate *= b.rateMultiplier;
        }
        if (storming && now_s >= config_.stormStartSeconds &&
            now_s < config_.stormEndSeconds)
            rate *= config_.stormMultiplier;
        const double gap_s = sim::sampleExponential(arrivalRng, rate);
        t += sim::fromSeconds(gap_s);
        if (t > horizon)
            break;
        Request r;
        r.arrival = t;
        r.inputTokens = sampleLength(config_.input, lengthRng);
        r.outputTokens = sampleLength(config_.output, lengthRng);
        r.adapter = sampleAdapter(adapterRng);
        if (config_.tenantAdapterSkew && r.adapter != model::kNoAdapter &&
            config_.numTenants > 1) {
            // Rotate each tenant's draws through a different slice of
            // the adapter space: per-tenant skew, unchanged marginal.
            const int span = config_.numAdapters;
            const int shift = tenant * (span / config_.numTenants);
            r.adapter = (r.adapter + shift) % span;
        }
        r.tenant = tenant;
        reqs.push_back(r);
    }
    return reqs;
}

Trace
TraceGenerator::generate()
{
    if (config_.numTenants <= 1) {
        // Pre-tenancy code path, byte-identical draws: the seed-root rng
        // is handed straight to generateTenant, whose three splits are
        // exactly the arrival/length/adapter streams the old loop drew —
        // golden traces and every existing preset stay unchanged.
        std::vector<Request> reqs = generateTenant(
            kAnonymousTenant, config_.rps, Rng(config_.seed));
        RequestId next_id = 0;
        for (auto &r : reqs)
            r.id = next_id++;
        return Trace(std::move(reqs));
    }

    const std::vector<double> shares = normalisedShares();
    Rng rng(config_.seed);
    std::vector<Request> merged;
    for (int tenant = 0; tenant < config_.numTenants; ++tenant) {
        std::vector<Request> part =
            generateTenant(tenant, config_.rps * shares[tenant], rng.split());
        merged.insert(merged.end(), part.begin(), part.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Request &a, const Request &b) {
                         if (a.arrival != b.arrival)
                             return a.arrival < b.arrival;
                         return a.tenant < b.tenant;
                     });
    RequestId next_id = 0;
    for (auto &r : merged)
        r.id = next_id++;
    return Trace(std::move(merged));
}

} // namespace chameleon::workload
