#include "workload/transforms.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "simkit/check.h"

namespace chameleon::workload {

namespace {

std::int64_t
scaleTokens(std::int64_t tokens, double factor)
{
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               static_cast<double>(tokens) * factor)));
}

double
percentileOf(std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        (p / 100.0) * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

} // namespace

Trace
scaleLengths(const Trace &trace, double factor)
{
    CHM_CHECK(factor > 0.0, "length scale factor must be positive");
    std::vector<Request> out = trace.requests();
    for (auto &r : out) {
        r.inputTokens = scaleTokens(r.inputTokens, factor);
        r.outputTokens = scaleTokens(r.outputTokens, factor);
    }
    return Trace(std::move(out));
}

Trace
scaleArrivals(const Trace &trace, double factor)
{
    CHM_CHECK(factor > 0.0, "arrival scale factor must be positive");
    std::vector<Request> out = trace.requests();
    for (auto &r : out) {
        r.arrival = static_cast<sim::SimTime>(
            std::llround(static_cast<double>(r.arrival) * factor));
    }
    return Trace(std::move(out));
}

Trace
sliceTime(const Trace &trace, double fromSeconds, double toSeconds)
{
    CHM_CHECK(toSeconds > fromSeconds, "empty slice window");
    const auto from = sim::fromSeconds(fromSeconds);
    const auto to = sim::fromSeconds(toSeconds);
    std::vector<Request> out;
    for (const auto &r : trace.requests()) {
        if (r.arrival >= from && r.arrival < to) {
            Request shifted = r;
            shifted.arrival -= from;
            out.push_back(shifted);
        }
    }
    // Re-number so ids stay unique and dense.
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].id = static_cast<RequestId>(i);
    return Trace(std::move(out));
}

Trace
concat(const Trace &a, const Trace &b)
{
    std::vector<Request> out = a.requests();
    const sim::SimTime offset = a.duration();
    for (const auto &r : b.requests()) {
        Request shifted = r;
        shifted.arrival += offset;
        out.push_back(shifted);
    }
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].id = static_cast<RequestId>(i);
    return Trace(std::move(out));
}

WorkloadSummary
summarize(const Trace &trace)
{
    WorkloadSummary s;
    s.requests = trace.size();
    s.meanRps = trace.meanRps();
    if (trace.empty())
        return s;

    std::vector<double> inputs, outputs;
    inputs.reserve(trace.size());
    outputs.reserve(trace.size());
    double in_sum = 0.0, out_sum = 0.0;
    for (const auto &r : trace.requests()) {
        inputs.push_back(static_cast<double>(r.inputTokens));
        outputs.push_back(static_cast<double>(r.outputTokens));
        in_sum += static_cast<double>(r.inputTokens);
        out_sum += static_cast<double>(r.outputTokens);
        if (r.adapter != model::kNoAdapter)
            ++s.adapterCounts[r.adapter];
    }
    const auto n = static_cast<double>(trace.size());
    s.meanInput = in_sum / n;
    s.meanOutput = out_sum / n;
    s.p50Input = percentileOf(inputs, 50.0);
    s.p99Input = percentileOf(inputs, 99.0);
    s.p50Output = percentileOf(outputs, 50.0);
    s.p99Output = percentileOf(outputs, 99.0);
    s.distinctAdapters = s.adapterCounts.size();

    if (!s.adapterCounts.empty()) {
        std::vector<std::int64_t> counts;
        std::int64_t total = 0;
        for (const auto &[id, c] : s.adapterCounts) {
            counts.push_back(c);
            total += c;
        }
        std::sort(counts.rbegin(), counts.rend());
        const std::size_t top =
            std::max<std::size_t>(1, counts.size() / 10);
        std::int64_t top_sum = 0;
        for (std::size_t i = 0; i < top; ++i)
            top_sum += counts[i];
        s.top10PercentShare =
            static_cast<double>(top_sum) / static_cast<double>(total);
    }
    return s;
}

} // namespace chameleon::workload
