#include "workload/trace.h"

#include <fstream>
#include <sstream>

#include "simkit/check.h"

namespace chameleon::workload {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests))
{
    for (std::size_t i = 1; i < requests_.size(); ++i) {
        CHM_CHECK(requests_[i].arrival >= requests_[i - 1].arrival,
                  "trace must be arrival-ordered");
    }
}

sim::SimTime
Trace::duration() const
{
    return requests_.empty() ? 0 : requests_.back().arrival;
}

double
Trace::meanRps() const
{
    if (requests_.size() < 2 || duration() == 0)
        return 0.0;
    return static_cast<double>(requests_.size()) / sim::toSeconds(duration());
}

void
Trace::append(const Request &r)
{
    CHM_CHECK(requests_.empty() || r.arrival >= requests_.back().arrival,
              "trace must be arrival-ordered");
    requests_.push_back(r);
}

void
Trace::saveCsv(const std::string &path) const
{
    std::ofstream out(path);
    CHM_CHECK(out.good(), "cannot open " << path << " for writing");
    out << "id,arrival_us,input_tokens,output_tokens,adapter,tenant\n";
    for (const auto &r : requests_) {
        out << r.id << ',' << r.arrival << ',' << r.inputTokens << ','
            << r.outputTokens << ',' << r.adapter << ',' << r.tenant << '\n';
    }
}

Trace
Trace::loadCsv(const std::string &path)
{
    std::ifstream in(path);
    CHM_CHECK(in.good(), "cannot open " << path << " for reading");
    std::string line;
    std::getline(in, line); // header
    std::vector<Request> reqs;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ss(line);
        Request r;
        char comma;
        ss >> r.id >> comma >> r.arrival >> comma >> r.inputTokens >> comma >>
            r.outputTokens >> comma >> r.adapter;
        CHM_CHECK(!ss.fail(), "malformed trace line: " << line);
        // Optional trailing tenant column; pre-tenancy traces omit it.
        if (!(ss >> comma >> r.tenant))
            r.tenant = kAnonymousTenant;
        reqs.push_back(r);
    }
    return Trace(std::move(reqs));
}

} // namespace chameleon::workload
