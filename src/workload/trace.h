/**
 * @file
 * Request trace container with CSV persistence.
 */

#ifndef CHAMELEON_WORKLOAD_TRACE_H
#define CHAMELEON_WORKLOAD_TRACE_H

#include <string>
#include <vector>

#include "workload/request.h"

namespace chameleon::workload {

/** An arrival-ordered sequence of requests. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<Request> requests);

    const std::vector<Request> &requests() const { return requests_; }
    std::size_t size() const { return requests_.size(); }
    bool empty() const { return requests_.empty(); }
    const Request &operator[](std::size_t i) const { return requests_[i]; }

    /** Trace duration (last arrival). */
    sim::SimTime duration() const;

    /** Mean offered load in requests per second. */
    double meanRps() const;

    /** Append a request; must not violate arrival ordering. */
    void append(const Request &r);

    /** Write as CSV: id,arrival_us,input,output,adapter,tenant. */
    void saveCsv(const std::string &path) const;

    /** Parse the CSV format written by saveCsv. */
    static Trace loadCsv(const std::string &path);

  private:
    std::vector<Request> requests_;
};

} // namespace chameleon::workload

#endif // CHAMELEON_WORKLOAD_TRACE_H
