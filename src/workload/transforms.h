/**
 * @file
 * Trace transformations and workload summaries.
 *
 * The paper scales production traces to fit testbed memory (§3.2) and
 * slices/concatenates them for its studies; these utilities implement
 * those operations plus a summary report used by analysis tooling.
 */

#ifndef CHAMELEON_WORKLOAD_TRANSFORMS_H
#define CHAMELEON_WORKLOAD_TRANSFORMS_H

#include <cstdint>
#include <map>

#include "model/adapter.h"
#include "workload/trace.h"

namespace chameleon::workload {

/**
 * Scale input/output token lengths by a constant factor (rounded,
 * floored at 1 token) — the paper's §3.2 memory-fitting transform.
 */
Trace scaleLengths(const Trace &trace, double factor);

/**
 * Scale arrival times by a constant factor (< 1 compresses the trace
 * and raises the offered load; > 1 stretches it).
 */
Trace scaleArrivals(const Trace &trace, double factor);

/** Keep only the requests arriving in [fromSeconds, toSeconds). */
Trace sliceTime(const Trace &trace, double fromSeconds, double toSeconds);

/** Concatenate b after a, shifting b's arrivals past a's end. */
Trace concat(const Trace &a, const Trace &b);

/** Aggregate workload statistics. */
struct WorkloadSummary
{
    std::size_t requests = 0;
    double meanRps = 0.0;
    double meanInput = 0.0;
    double p50Input = 0.0;
    double p99Input = 0.0;
    double meanOutput = 0.0;
    double p50Output = 0.0;
    double p99Output = 0.0;
    /** Distinct adapters referenced. */
    std::size_t distinctAdapters = 0;
    /** Requests per adapter id (popularity). */
    std::map<model::AdapterId, std::int64_t> adapterCounts;
    /** Share of traffic captured by the top 10% of adapters. */
    double top10PercentShare = 0.0;
};

/** Compute the summary of a trace. */
WorkloadSummary summarize(const Trace &trace);

} // namespace chameleon::workload

#endif // CHAMELEON_WORKLOAD_TRANSFORMS_H
