/**
 * @file
 * Immutable inference request record.
 *
 * A request is what the frontend of Fig. 1 receives: arrival time, prompt
 * length, (ground-truth) output length, and the adapter it targets. The
 * output length is carried in the trace for simulation purposes but is
 * hidden from schedulers, which must use the predictor (§4.1).
 */

#ifndef CHAMELEON_WORKLOAD_REQUEST_H
#define CHAMELEON_WORKLOAD_REQUEST_H

#include <cstdint>

#include "model/adapter.h"
#include "simkit/time.h"

namespace chameleon::workload {

/** Unique request identifier. */
using RequestId = std::int64_t;

/**
 * Tenant identifier. Tenant 0 is the anonymous default every request
 * carries unless a trace or generator says otherwise, so single-tenant
 * workloads behave exactly as before the tenancy layer existed.
 */
using TenantId = std::int32_t;

/** The anonymous tenant assigned when no tenancy config is present. */
inline constexpr TenantId kAnonymousTenant = 0;

/** One inference request as recorded in a trace. */
struct Request
{
    RequestId id = 0;
    /** Arrival at the serving frontend. */
    sim::SimTime arrival = 0;
    /** Prompt length in tokens (known on arrival). */
    std::int64_t inputTokens = 0;
    /** Ground-truth output length (unknown to the scheduler). */
    std::int64_t outputTokens = 0;
    /** Target adapter, or model::kNoAdapter for base-only requests. */
    model::AdapterId adapter = model::kNoAdapter;
    /** Owning tenant (0 = anonymous single-tenant default). */
    TenantId tenant = kAnonymousTenant;
};

} // namespace chameleon::workload

#endif // CHAMELEON_WORKLOAD_REQUEST_H
