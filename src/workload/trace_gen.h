/**
 * @file
 * Synthetic trace generation.
 *
 * Builds traces with the statistical properties of the paper's workloads
 * (§5.1): Poisson inter-arrival times, heavy-tailed (lognormal) input and
 * output lengths scaled to the testbed, and adapter assignment with a
 * configurable rank-popularity distribution across the five paper ranks
 * and a power-law adapter-popularity distribution within a rank. Presets
 * approximate the Azure/Splitwise conversation trace and the shorter
 * WildChat-1M / LMSYS-Chat-1M datasets (§5.4.4).
 */

#ifndef CHAMELEON_WORKLOAD_TRACE_GEN_H
#define CHAMELEON_WORKLOAD_TRACE_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "model/adapter.h"
#include "simkit/distributions.h"
#include "simkit/rng.h"
#include "workload/trace.h"

namespace chameleon::workload {

/** Popularity shapes used in §5.4.2 (U-U / U-P / P-P). */
enum class Popularity { Uniform, PowerLaw };

/** Lognormal length distribution with clamping. */
struct LengthDist
{
    /** Median length in tokens (exp of the log-space mean). */
    double median = 48.0;
    /** Log-space standard deviation (tail heaviness). */
    double sigma = 1.0;
    std::int64_t minTokens = 4;
    std::int64_t maxTokens = 2000;

    /** Mean of the clamped distribution (analytic, pre-clamp approx). */
    double approxMean() const;
};

/** A temporary load burst: the arrival rate is multiplied inside it. */
struct Burst
{
    double startSeconds = 0.0;
    double endSeconds = 0.0;
    double rateMultiplier = 1.0;
};

/** Full generator configuration. */
struct TraceGenConfig
{
    /** Poisson arrival rate, requests per second. */
    double rps = 8.0;
    /** Trace length in seconds. */
    double durationSeconds = 300.0;
    LengthDist input{};
    LengthDist output{};
    /** Number of distinct adapters (0 disables adapters entirely). */
    int numAdapters = 100;
    /** Popularity of the five rank classes. */
    Popularity rankPopularity = Popularity::Uniform;
    /** Popularity of adapters within a rank class. */
    Popularity adapterPopularity = Popularity::PowerLaw;
    /** Power-law exponent when a popularity knob is PowerLaw. */
    double powerLawAlpha = 1.2;
    /** Optional load bursts. */
    std::vector<Burst> bursts{};
    /**
     * Periodic burstiness (LLM arrivals come in bursts, §3.1): every
     * burstPeriodSeconds, the rate is multiplied by burstMultiplier for
     * burstDurationSeconds. Base and burst rates are normalised so the
     * mean load stays at `rps`. burstMultiplier = 1 disables this.
     */
    double burstMultiplier = 1.0;
    double burstPeriodSeconds = 60.0;
    double burstDurationSeconds = 8.0;
    /** RNG seed; same seed + config -> identical trace. */
    std::uint64_t seed = 42;
    /**
     * Multi-tenant generation. With numTenants <= 1 the generator takes
     * the exact pre-tenancy code path (every request gets tenant 0).
     * With more, each tenant runs an independent arrival process at
     * rps * share and the per-tenant streams are merged by arrival.
     */
    int numTenants = 1;
    /** Per-tenant fraction of `rps`; empty = equal shares (normalised). */
    std::vector<double> tenantShares{};
    /**
     * Noisy-neighbour storm: tenant `stormTenant` runs at
     * stormMultiplier x its share inside [stormStartSeconds,
     * stormEndSeconds). stormTenant < 0 or multiplier <= 1 disables it.
     */
    int stormTenant = -1;
    double stormMultiplier = 1.0;
    double stormStartSeconds = 0.0;
    double stormEndSeconds = 0.0;
    /**
     * When true each tenant favours a different slice of the adapter
     * space (its sampled adapter id is rotated by tenant index), giving
     * per-tenant popularity skew without changing the marginal mix.
     */
    bool tenantAdapterSkew = false;
};

/** Splitwise-like conversation workload (testbed-scaled lengths). */
TraceGenConfig splitwiseLike();
/** WildChat-1M-like workload: shorter inputs and outputs (§5.4.4). */
TraceGenConfig wildchatLike();
/** LMSYS-Chat-1M-like workload: short inputs, short outputs (§5.4.4). */
TraceGenConfig lmsysLike();

/** Generates traces and assigns adapters per the configuration. */
class TraceGenerator
{
  public:
    TraceGenerator(TraceGenConfig config, const model::AdapterPool *pool);

    /** Generate a full trace. */
    Trace generate();

    const TraceGenConfig &config() const { return config_; }

  private:
    std::int64_t sampleLength(const LengthDist &dist, sim::Rng &rng) const;
    model::AdapterId sampleAdapter(sim::Rng &rng) const;
    std::vector<Request> generateTenant(TenantId tenant, double shareRps,
                                        sim::Rng root) const;
    std::vector<double> normalisedShares() const;

    TraceGenConfig config_;
    const model::AdapterPool *pool_;
    std::vector<std::vector<model::AdapterId>> rankBuckets_;
    std::unique_ptr<sim::PowerLawSampler> rankSampler_;
    std::vector<sim::PowerLawSampler> withinSamplers_;
};

} // namespace chameleon::workload

#endif // CHAMELEON_WORKLOAD_TRACE_GEN_H
