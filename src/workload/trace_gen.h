/**
 * @file
 * Synthetic trace generation.
 *
 * Builds traces with the statistical properties of the paper's workloads
 * (§5.1): Poisson inter-arrival times, heavy-tailed (lognormal) input and
 * output lengths scaled to the testbed, and adapter assignment with a
 * configurable rank-popularity distribution across the five paper ranks
 * and a power-law adapter-popularity distribution within a rank. Presets
 * approximate the Azure/Splitwise conversation trace and the shorter
 * WildChat-1M / LMSYS-Chat-1M datasets (§5.4.4).
 */

#ifndef CHAMELEON_WORKLOAD_TRACE_GEN_H
#define CHAMELEON_WORKLOAD_TRACE_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "model/adapter.h"
#include "simkit/distributions.h"
#include "simkit/rng.h"
#include "workload/trace.h"

namespace chameleon::workload {

/** Popularity shapes used in §5.4.2 (U-U / U-P / P-P). */
enum class Popularity { Uniform, PowerLaw };

/** Lognormal length distribution with clamping. */
struct LengthDist
{
    /** Median length in tokens (exp of the log-space mean). */
    double median = 48.0;
    /** Log-space standard deviation (tail heaviness). */
    double sigma = 1.0;
    std::int64_t minTokens = 4;
    std::int64_t maxTokens = 2000;

    /** Mean of the clamped distribution (analytic, pre-clamp approx). */
    double approxMean() const;
};

/** A temporary load burst: the arrival rate is multiplied inside it. */
struct Burst
{
    double startSeconds = 0.0;
    double endSeconds = 0.0;
    double rateMultiplier = 1.0;
};

/** Full generator configuration. */
struct TraceGenConfig
{
    /** Poisson arrival rate, requests per second. */
    double rps = 8.0;
    /** Trace length in seconds. */
    double durationSeconds = 300.0;
    LengthDist input{};
    LengthDist output{};
    /** Number of distinct adapters (0 disables adapters entirely). */
    int numAdapters = 100;
    /** Popularity of the five rank classes. */
    Popularity rankPopularity = Popularity::Uniform;
    /** Popularity of adapters within a rank class. */
    Popularity adapterPopularity = Popularity::PowerLaw;
    /** Power-law exponent when a popularity knob is PowerLaw. */
    double powerLawAlpha = 1.2;
    /** Optional load bursts. */
    std::vector<Burst> bursts{};
    /**
     * Periodic burstiness (LLM arrivals come in bursts, §3.1): every
     * burstPeriodSeconds, the rate is multiplied by burstMultiplier for
     * burstDurationSeconds. Base and burst rates are normalised so the
     * mean load stays at `rps`. burstMultiplier = 1 disables this.
     */
    double burstMultiplier = 1.0;
    double burstPeriodSeconds = 60.0;
    double burstDurationSeconds = 8.0;
    /** RNG seed; same seed + config -> identical trace. */
    std::uint64_t seed = 42;
};

/** Splitwise-like conversation workload (testbed-scaled lengths). */
TraceGenConfig splitwiseLike();
/** WildChat-1M-like workload: shorter inputs and outputs (§5.4.4). */
TraceGenConfig wildchatLike();
/** LMSYS-Chat-1M-like workload: short inputs, short outputs (§5.4.4). */
TraceGenConfig lmsysLike();

/** Generates traces and assigns adapters per the configuration. */
class TraceGenerator
{
  public:
    TraceGenerator(TraceGenConfig config, const model::AdapterPool *pool);

    /** Generate a full trace. */
    Trace generate();

    const TraceGenConfig &config() const { return config_; }

  private:
    std::int64_t sampleLength(const LengthDist &dist, sim::Rng &rng) const;
    model::AdapterId sampleAdapter(sim::Rng &rng) const;

    TraceGenConfig config_;
    const model::AdapterPool *pool_;
    std::vector<std::vector<model::AdapterId>> rankBuckets_;
    std::unique_ptr<sim::PowerLawSampler> rankSampler_;
    std::vector<sim::PowerLawSampler> withinSamplers_;
};

} // namespace chameleon::workload

#endif // CHAMELEON_WORKLOAD_TRACE_GEN_H
