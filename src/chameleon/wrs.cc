#include "chameleon/wrs.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::core {

namespace {
/** Normalisation floors: typical medium request (§3.1). */
constexpr double kMinMaxInput = 256.0;
constexpr double kMinMaxOutput = 256.0;
} // namespace

WrsCalculator::WrsCalculator(const model::AdapterPool *pool, WrsForm form,
                             double a, double b)
    : pool_(pool), form_(form), a_(a), b_(b), maxInput_(kMinMaxInput),
      maxOutput_(kMinMaxOutput)
{
    CHM_CHECK(a >= 0 && b >= 0, "weights must be non-negative");
}

double
WrsCalculator::compute(std::int64_t inputTokens,
                       std::int64_t predictedOutput,
                       std::int64_t adapterBytes)
{
    maxInput_ = std::max(maxInput_, static_cast<double>(inputTokens));
    maxOutput_ = std::max(maxOutput_, static_cast<double>(predictedOutput));
    const double in_n = static_cast<double>(inputTokens) / maxInput_;
    const double out_n = static_cast<double>(predictedOutput) / maxOutput_;

    double ad_n = 1.0;
    if (pool_ && pool_->maxBytes() > 0) {
        // Base-only requests get the smallest adapter's share so the
        // multiplicative form stays well defined.
        const double bytes = adapterBytes > 0
                                 ? static_cast<double>(adapterBytes)
                                 : static_cast<double>(pool_->maxBytes()) /
                                       16.0;
        ad_n = bytes / static_cast<double>(pool_->maxBytes());
    }

    switch (form_) {
      case WrsForm::Degree2:
        return (a_ * in_n + b_ * out_n) * ad_n;
      case WrsForm::Degree1:
        // Equal-altitude linear blend; adapter gets the residual weight.
        return a_ * in_n + b_ * out_n + 0.5 * ad_n;
      case WrsForm::OutputOnly:
        return out_n;
    }
    CHM_PANIC("unknown WRS form");
}

const char *
wrsFormName(WrsForm form)
{
    switch (form) {
      case WrsForm::Degree2: return "degree2";
      case WrsForm::Degree1: return "degree1";
      case WrsForm::OutputOnly: return "output-only";
    }
    return "?";
}

bool
wrsFormByName(const std::string &name, WrsForm *out)
{
    if (name == "degree2")
        *out = WrsForm::Degree2;
    else if (name == "degree1")
        *out = WrsForm::Degree1;
    else if (name == "output-only")
        *out = WrsForm::OutputOnly;
    else
        return false;
    return true;
}

} // namespace chameleon::core
