/**
 * @file
 * Weighted Request Size (§4.3.1).
 *
 * WRS estimates a request's total execution cost from its known input
 * size, predicted output size, and adapter size:
 *
 *   WRS = (A * In/MaxIn + B * Out/MaxOut) * AdapterSize/MaxAdapterSize
 *
 * with A=0.4 and B=0.6 from the paper's sensitivity studies. The paper
 * reports this degree-2 polynomial outperforms a linear (degree-1)
 * combination by up to 10%; both are implemented for the ablation, along
 * with the OutputOnly variant used in the §5.4.1 predictor study.
 */

#ifndef CHAMELEON_CHAMELEON_WRS_H
#define CHAMELEON_CHAMELEON_WRS_H

#include <cstdint>
#include <string>

#include "model/adapter.h"

namespace chameleon::core {

/** WRS formula variants. */
enum class WrsForm {
    Degree2,    ///< The paper's formula (length term times adapter term).
    Degree1,    ///< Linear combination of all three factors (ablation).
    OutputOnly, ///< Predicted output only (the uServe-style knob, §5.4.1).
};

/** Canonical name ("degree2" | "degree1" | "output-only"). */
const char *wrsFormName(WrsForm form);
/** Parse a form name; returns false on unknown names. */
bool wrsFormByName(const std::string &name, WrsForm *out);

/** Computes WRS values with running normalisation maxima. */
class WrsCalculator
{
  public:
    /**
     * @param pool adapter catalogue (nullable for base-only workloads)
     * @param form formula variant
     * @param a input weight (paper: 0.4)
     * @param b output weight (paper: 0.6)
     */
    explicit WrsCalculator(const model::AdapterPool *pool,
                           WrsForm form = WrsForm::Degree2, double a = 0.4,
                           double b = 0.6);

    /**
     * WRS of a request. Maintains running maxima of observed input and
     * output sizes for normalisation (floored so early requests do not
     * destabilise the scale).
     */
    double compute(std::int64_t inputTokens, std::int64_t predictedOutput,
                   std::int64_t adapterBytes);

    WrsForm form() const { return form_; }

  private:
    const model::AdapterPool *pool_;
    WrsForm form_;
    double a_;
    double b_;
    double maxInput_;
    double maxOutput_;
};

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_WRS_H
