/**
 * @file
 * One-dimensional K-means for queue sizing (§4.3.4).
 *
 * Chameleon clusters the recent WRS distribution for K = 1..Kmax,
 * computes the within-cluster sum of squares (WCSS), and derives queue
 * cutoffs as midpoints between consecutive centroids.
 *
 * Note on K selection: the paper says to "pick the K that yields minimal
 * WCSS", but WCSS is monotonically non-increasing in K, which would
 * always select Kmax. We implement both the literal rule and an elbow
 * criterion (smallest K whose marginal WCSS improvement falls below a
 * threshold); the elbow is the default. The deviation is recorded in
 * DESIGN.md.
 */

#ifndef CHAMELEON_CHAMELEON_KMEANS_H
#define CHAMELEON_CHAMELEON_KMEANS_H

#include <vector>

namespace chameleon::core {

/** Result of one K-means run. */
struct KMeansResult
{
    std::vector<double> centroids; ///< Sorted ascending.
    double wcss = 0.0;
};

/**
 * Lloyd's algorithm in one dimension with quantile initialisation
 * (deterministic).
 */
KMeansResult kmeans1d(const std::vector<double> &data, int k,
                      int maxIters = 64);

/** K-selection rules. */
enum class KSelection {
    Elbow,          ///< Smallest K with marginal improvement < threshold.
    LiteralMinWcss, ///< Paper-literal: minimal WCSS (effectively Kmax).
};

/**
 * Choose K in [1, kMax] and return the chosen clustering.
 *
 * @param elbowThreshold relative WCSS improvement below which adding a
 *        cluster is not considered worthwhile (elbow rule only)
 */
KMeansResult chooseClusters(const std::vector<double> &data, int kMax,
                            KSelection selection = KSelection::Elbow,
                            double elbowThreshold = 0.10);

/** Queue cutoffs: midpoints of consecutive centroids (size K-1). */
std::vector<double> centroidCutoffs(const std::vector<double> &centroids);

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_KMEANS_H
