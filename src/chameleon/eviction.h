/**
 * @file
 * Adapter-cache eviction policies (§4.2.2, §5.3.3).
 *
 * All policies rank idle cached adapters and evict the least valuable.
 * The Chameleon policy scores each adapter as
 *     Score = F * Frequency + R * Recency + S * Size
 * with profiled weights F=0.45, R=0.10, S=0.45; the adapter with the
 * lowest score is evicted first, so small, cold, infrequently-used
 * adapters go before large popular ones (misses on large adapters are
 * costlier to repair). FairShare uses equal weights; LRU uses recency
 * only; GDSF is the web-caching baseline of Cherkasova [5] discussed in
 * §5.3.3.
 */

#ifndef CHAMELEON_CHAMELEON_EVICTION_H
#define CHAMELEON_CHAMELEON_EVICTION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/adapter.h"
#include "simkit/time.h"

namespace chameleon::core {

/** Snapshot of one evictable (idle) cached adapter. */
struct EvictionCandidate
{
    model::AdapterId id = model::kNoAdapter;
    int rank = 0;
    std::int64_t bytes = 0;
    /** Last access time. */
    sim::SimTime lastUsed = 0;
    /** Decayed use frequency (uses per recent window). */
    double frequency = 0.0;
    /** Reload cost on a future miss, milliseconds. */
    double loadCostMs = 0.0;
    /** Referenced by a queued (not yet running) request. */
    bool queuedPinned = false;
};

/** Ranking policy over eviction candidates. */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Index of the victim within `candidates` (must be non-empty).
     * Stateful policies (GDSF) may update internal aging state.
     */
    virtual std::size_t pickVictim(
        const std::vector<EvictionCandidate> &candidates,
        sim::SimTime now) = 0;
};

/** Weighted compound score (the paper's policy). */
class ChameleonEviction : public EvictionPolicy
{
  public:
    /** Weights from the paper's offline profiling (§4.2.2). */
    explicit ChameleonEviction(double f = 0.45, double r = 0.10,
                               double s = 0.45);

    const char *name() const override { return "chameleon"; }
    std::size_t pickVictim(const std::vector<EvictionCandidate> &candidates,
                           sim::SimTime now) override;

    /** Score of one candidate given batch-wide normalisers. */
    double score(const EvictionCandidate &c, double maxFreq,
                 sim::SimTime minLast, sim::SimTime maxLast,
                 std::int64_t maxBytes) const;

  private:
    double f_;
    double r_;
    double s_;
};

/** Equal-weight variant (Ch-FairShare in Fig. 17). */
class FairShareEviction : public ChameleonEviction
{
  public:
    FairShareEviction() : ChameleonEviction(1.0 / 3, 1.0 / 3, 1.0 / 3) {}
    const char *name() const override { return "fairshare"; }
};

/** Least-recently-used (Ch-LRU in Fig. 17). */
class LruEviction : public EvictionPolicy
{
  public:
    const char *name() const override { return "lru"; }
    std::size_t pickVictim(const std::vector<EvictionCandidate> &candidates,
                           sim::SimTime now) override;
};

/** Greedy-Dual-Size-Frequency web-cache policy (§5.3.3). */
class GdsfEviction : public EvictionPolicy
{
  public:
    const char *name() const override { return "gdsf"; }
    std::size_t pickVictim(const std::vector<EvictionCandidate> &candidates,
                           sim::SimTime now) override;

  private:
    /** Aging term: rises to the evicted key's H value. */
    double aging_ = 0.0;
};

/** Least-frequently-used (frequency only; recency/size ignored). */
class LfuEviction : public EvictionPolicy
{
  public:
    const char *name() const override { return "lfu"; }
    std::size_t pickVictim(const std::vector<EvictionCandidate> &candidates,
                           sim::SimTime now) override;
};

/** Seeded random eviction: the sanity floor any policy should beat. */
class RandomEviction : public EvictionPolicy
{
  public:
    explicit RandomEviction(std::uint64_t seed = 1);

    const char *name() const override { return "random"; }
    std::size_t pickVictim(const std::vector<EvictionCandidate> &candidates,
                           sim::SimTime now) override;

  private:
    std::uint64_t state_;
};

/**
 * Factory by name: "chameleon", "fairshare", "lru", "gdsf", "lfu",
 * "random".
 */
std::unique_ptr<EvictionPolicy> makeEvictionPolicy(const std::string &name);

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_EVICTION_H
