#include "chameleon/cache_manager.h"

#include <algorithm>
#include <cmath>

#include "obs/trace_recorder.h"
#include "simkit/check.h"

namespace chameleon::core {

using model::AdapterId;
using sim::SimTime;

CacheManager::CacheManager(const model::AdapterPool &pool,
                           gpu::GpuMemory &mem, gpu::PcieLink &link,
                           const model::CostModel &cost, CacheConfig config)
    : pool_(pool), mem_(mem), link_(link), cost_(cost),
      config_(std::move(config)),
      policy_(makeEvictionPolicy(config_.evictionPolicy)),
      loadPredictor_(120.0)
{
    if (config_.minFreeBytes < 0)
        config_.minFreeBytes = mem_.capacity() / 25; // auto: 4% headroom
}

CacheManager::Entry &
CacheManager::entry(AdapterId id)
{
    return entries_[id];
}

const CacheManager::Entry *
CacheManager::find(AdapterId id) const
{
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

void
CacheManager::notifyLoadStart(AdapterId id)
{
    if (residency_ != nullptr)
        residency_->onLoadStart(replicaIndex_, id);
}

void
CacheManager::notifyLoadComplete(AdapterId id)
{
    if (residency_ != nullptr)
        residency_->onLoadComplete(replicaIndex_, id);
}

void
CacheManager::notifyEvict(AdapterId id)
{
    if (residency_ != nullptr)
        residency_->onEvict(replicaIndex_, id);
}

void
CacheManager::notifyAcquire(AdapterId id, SimTime now)
{
    if (residency_ != nullptr)
        residency_->onAcquire(replicaIndex_, id, now);
}

void
CacheManager::notifyRelease(AdapterId id)
{
    if (residency_ != nullptr)
        residency_->onRelease(replicaIndex_, id);
}

double
CacheManager::decayedFrequency(const Entry &e, SimTime now) const
{
    const double dt = sim::toSeconds(now - e.lastFreqTouch);
    return e.frequency * std::exp(-dt / config_.frequencyTauSeconds);
}

void
CacheManager::touch(Entry &e, SimTime now)
{
    e.frequency = decayedFrequency(e, now) + 1.0;
    e.lastFreqTouch = now;
    e.lastUsed = now;
}

bool
CacheManager::isResident(AdapterId id) const
{
    const Entry *e = find(id);
    return e && e->state == State::Resident;
}

std::int64_t
CacheManager::cachedBytes() const
{
    return mem_.adapterCacheBytes();
}

std::size_t
CacheManager::cachedCount() const
{
    std::size_t n = 0;
    for (const auto &[id, e] : entries_) {
        if (e.state == State::Resident && e.runningRc == 0)
            ++n;
    }
    return n;
}

std::vector<EvictionCandidate>
CacheManager::collectCandidates(bool includePinned, SimTime now) const
{
    std::vector<EvictionCandidate> out;
    for (const auto &[id, e] : entries_) {
        if (e.state != State::Resident || e.runningRc != 0)
            continue; // in use or absent: never evictable (§4.2.2)
        const bool pinned = e.queuedRc > 0;
        if (pinned && !includePinned)
            continue;
        const auto &spec = pool_.spec(id);
        EvictionCandidate c;
        c.id = id;
        c.rank = spec.rank;
        c.bytes = spec.bytes;
        c.lastUsed = e.lastUsed;
        c.frequency = decayedFrequency(e, now);
        c.loadCostMs = sim::toMillis(cost_.adapterLoadTime(spec.bytes));
        c.queuedPinned = pinned;
        out.push_back(c);
    }
    return out;
}

std::int64_t
CacheManager::evictableBytes(bool includePinned) const
{
    std::int64_t total = 0;
    for (const auto &[id, e] : entries_) {
        if (e.state != State::Resident || e.runningRc != 0)
            continue;
        if (e.queuedRc > 0 && !includePinned)
            continue;
        total += pool_.spec(id).bytes;
    }
    return total;
}

bool
CacheManager::evictUntilFree(std::int64_t bytes, bool includePinned,
                             SimTime now)
{
    // Feasibility first: do not destroy cache contents for a target
    // that cannot be reached anyway.
    if (mem_.freeBytes() + evictableBytes(includePinned) < bytes)
        return false;
    while (mem_.freeBytes() < bytes) {
        auto candidates = collectCandidates(includePinned, now);
        if (candidates.empty())
            return false;
        const std::size_t victim = policy_->pickVictim(candidates, now);
        const AdapterId vid = candidates[victim].id;
        Entry &ve = entries_[vid];
        CHM_CHECK(ve.state == State::Resident && ve.runningRc == 0,
                  "evicting a non-idle adapter");
        mem_.freeAdapterCache(pool_.spec(vid).bytes);
        ve.state = State::NotResident;
        ++evictions_;
        notifyEvict(vid);
        if (trace_ != nullptr) {
            trace_->instant(tracePid_, obs::Lane::Cache, "evict", now,
                            {{"adapter", vid},
                             {"bytes", pool_.spec(vid).bytes}});
        }
    }
    return true;
}

bool
CacheManager::tryFreeMemory(std::int64_t bytes)
{
    if (mem_.freeBytes() >= bytes)
        return true;
    const auto before = evictions_;
    // Shrink past the request by the watermark so that subsequent KV
    // page allocations do not trigger an eviction each (churn guard);
    // success only requires the requested bytes, though. Unpinned idle
    // adapters go first; the adapters of queued requests are sacrificed
    // only when memory constraints make it necessary.
    evictUntilFree(bytes + config_.minFreeBytes, /*includePinned=*/false,
                   lastNow_);
    if (mem_.freeBytes() >= bytes) {
        kvShrinkEvictions_ += evictions_ - before;
        return true;
    }
    const bool ok = evictUntilFree(bytes, /*includePinned=*/true, lastNow_);
    kvShrinkEvictions_ += evictions_ - before;
    return ok;
}

SimTime
CacheManager::startLoad(AdapterId id, Entry &e, LoadKind kind, SimTime now)
{
    CHM_CHECK(e.state == State::NotResident, "load of resident adapter");
    const auto bytes = pool_.spec(id).bytes;
    const auto evictions_before = evictions_;
    switch (kind) {
      case LoadKind::Demand:
        // Admission may shrink the cache to make room.
        if (mem_.freeBytes() < bytes &&
            !evictUntilFree(bytes, false, now) &&
            !evictUntilFree(bytes, true, now)) {
            return sim::kTimeNever;
        }
        break;
      case LoadKind::QueuedPrefetch:
        // Adapters of waiting requests are near-term request state: the
        // cache yields unpinned entries to them (§4.2.1 "store all the
        // necessary state for incoming requests"). Pinned entries are
        // never displaced, and the free watermark stays untouched so
        // prefetching cannot starve KV growth into eviction churn.
        if (mem_.freeBytes() < bytes + config_.minFreeBytes &&
            !evictUntilFree(bytes + config_.minFreeBytes,
                            /*includePinned=*/false, now)) {
            return sim::kTimeNever;
        }
        break;
      case LoadKind::PredictivePrefetch:
        // Speculation must not interfere: keep the watermark free.
        if (mem_.freeBytes() < bytes + config_.minFreeBytes)
            return sim::kTimeNever;
        break;
    }
    const bool ok = mem_.tryAllocAdapterInUse(bytes);
    CHM_CHECK(ok, "allocation must succeed after eviction");
    switch (kind) {
      case LoadKind::Demand:
        ++demandLoads_;
        demandEvictions_ += evictions_ - evictions_before;
        break;
      case LoadKind::QueuedPrefetch:
        ++queuedLoads_;
        prefetchEvictions_ += evictions_ - evictions_before;
        break;
      case LoadKind::PredictivePrefetch:
        ++predictiveLoads_;
        break;
    }
    if (trace_ != nullptr) {
        const char *event = kind == LoadKind::Demand ? "demand_load"
                            : kind == LoadKind::QueuedPrefetch
                                ? "queued_prefetch"
                                : "predictive_prefetch";
        trace_->instant(tracePid_, obs::Lane::Cache, event, now,
                        {{"adapter", id}, {"bytes", bytes}});
    }
    e.state = State::Loading;
    e.prefetched = kind != LoadKind::Demand;
    notifyLoadStart(id);
    e.readyAt = link_.enqueue(bytes, [this, id] {
        auto &ent = entries_[id];
        CHM_CHECK(ent.state == State::Loading, "transfer done, not loading");
        ent.state = State::Resident;
        if (ent.runningRc == 0) {
            // Landed as a prefetch: it sits in the cache until claimed.
            mem_.moveInUseToCache(pool_.spec(id).bytes);
        }
        notifyLoadComplete(id);
    });
    return e.readyAt;
}

SimTime
CacheManager::peerAdmit(AdapterId id, SimTime readyAt, SimTime now)
{
    lastNow_ = now;
    Entry &e = entry(id);
    if (e.state != State::NotResident) {
        // Already usable or inbound over the host link; nothing to
        // admit (the fabric treats this as a decline and reserves no
        // peer bandwidth).
        return sim::kTimeNever;
    }
    const auto bytes = pool_.spec(id).bytes;
    // A peer-warmed adapter is speculation, exactly like a predictive
    // prefetch: it may displace unpinned idle cache entries but must
    // leave the interference watermark free (§4.2.1) so migration can
    // never starve KV growth.
    if (mem_.freeBytes() < bytes + config_.minFreeBytes &&
        !evictUntilFree(bytes + config_.minFreeBytes,
                        /*includePinned=*/false, now)) {
        return sim::kTimeNever;
    }
    const bool ok = mem_.tryAllocAdapterInUse(bytes);
    CHM_CHECK(ok, "allocation must succeed after eviction");
    ++peerLoads_;
    if (trace_ != nullptr) {
        trace_->instant(tracePid_, obs::Lane::Cache, "peer_load", now,
                        {{"adapter", id}, {"bytes", bytes}});
    }
    e.state = State::Loading;
    e.prefetched = true;
    e.readyAt = std::max(readyAt, now);
    notifyLoadStart(id);
    // The weights ride a peer link modelled by the fabric, not the
    // host PcieLink: schedule the Resident flip directly, so host PCIe
    // counters stay flat for migrated adapters.
    link_.simulator().scheduleAt(e.readyAt, [this, id] {
        auto &ent = entries_[id];
        CHM_CHECK(ent.state == State::Loading,
                  "peer transfer done, not loading");
        ent.state = State::Resident;
        if (ent.runningRc == 0) {
            // Landed unclaimed: it sits in the cache until acquired.
            mem_.moveInUseToCache(pool_.spec(id).bytes);
        }
        notifyLoadComplete(id);
    });
    return e.readyAt;
}

SimTime
CacheManager::acquire(AdapterId id, SimTime now)
{
    lastNow_ = now;
    Entry &e = entry(id);
    SimTime ready;
    switch (e.state) {
      case State::Resident:
        if (e.runningRc == 0)
            mem_.moveCacheToInUse(pool_.spec(id).bytes);
        ready = now;
        break;
      case State::Loading:
        ready = std::max(e.readyAt, now);
        break;
      case State::NotResident:
        ready = startLoad(id, e, LoadKind::Demand, now);
        if (ready == sim::kTimeNever)
            return sim::kTimeNever;
        break;
      default:
        CHM_PANIC("unreachable adapter state");
    }
    ++e.runningRc;
    e.prefetched = false;
    touch(e, now);
    notifyAcquire(id, now);
    return ready;
}

void
CacheManager::release(AdapterId id)
{
    Entry &e = entry(id);
    CHM_CHECK(e.runningRc > 0, "release without acquire for " << id);
    --e.runningRc;
    notifyRelease(id);
    if (e.runningRc == 0 && e.state == State::Resident) {
        if (e.queuedRc > 0 || mem_.freeBytes() >= config_.minFreeBytes) {
            // Contrary to the baseline: retain the adapter in the cache.
            // Adapters still referenced by queued requests are always
            // kept - discarding them would force an immediate refetch.
            mem_.moveInUseToCache(pool_.spec(id).bytes);
        } else {
            // Under memory pressure caching an unreferenced adapter
            // would immediately interfere with KV growth; hand the
            // memory back instead (§4.2.1).
            mem_.freeAdapterInUse(pool_.spec(id).bytes);
            e.state = State::NotResident;
            notifyEvict(id);
        }
    }
}

bool
CacheManager::canMakeResident(AdapterId id) const
{
    const Entry *e = find(id);
    if (e && e->state != State::NotResident)
        return true;
    const auto bytes = pool_.spec(id).bytes;
    return bytes <= mem_.freeBytes() + evictableBytes(/*includePinned=*/true);
}

void
CacheManager::onRequestQueued(AdapterId id, SimTime now)
{
    lastNow_ = now;
    Entry &e = entry(id);
    ++e.queuedRc;
    loadPredictor_.recordArrival(id, now);
    // Hit/miss accounting is per arriving request: a hit means the
    // weights were already resident (in use or cached) at arrival.
    if (e.state == State::Resident) {
        ++hits_;
    } else {
        ++misses_;
    }
    if (config_.queuedPrefetch && e.state == State::NotResident)
        startLoad(id, e, LoadKind::QueuedPrefetch, now);
}

void
CacheManager::onRequestDequeued(AdapterId id)
{
    Entry &e = entry(id);
    CHM_CHECK(e.queuedRc > 0, "dequeue without queue ref for " << id);
    --e.queuedRc;
}

void
CacheManager::onSchedulingCycle(const std::vector<AdapterId> &queued,
                                SimTime now)
{
    lastNow_ = now;
    if (config_.queuedPrefetch) {
        for (AdapterId id : queued) {
            Entry &e = entry(id);
            if (e.state == State::NotResident)
                startLoad(id, e, LoadKind::QueuedPrefetch, now);
        }
    }
    if (config_.predictivePrefetch) {
        for (AdapterId id :
             loadPredictor_.hottest(now, config_.predictiveTopK)) {
            Entry &e = entry(id);
            if (e.state == State::NotResident)
                startLoad(id, e, LoadKind::PredictivePrefetch, now);
        }
    }
}

} // namespace chameleon::core
