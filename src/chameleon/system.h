/**
 * @file
 * Top-level facade: build and run complete serving systems.
 *
 * Wires a ServingEngine with the scheduler/adapter-manager combination
 * of each system evaluated in the paper, runs a trace through it, and
 * returns the aggregate statistics. This is the entry point used by the
 * examples and by every benchmark binary.
 */

#ifndef CHAMELEON_CHAMELEON_SYSTEM_H
#define CHAMELEON_CHAMELEON_SYSTEM_H

#include <memory>
#include <string>

#include "chameleon/cache_manager.h"
#include "chameleon/mlq_scheduler.h"
#include "predict/output_predictor.h"
#include "routing/autoscaler.h"
#include "routing/router.h"
#include "serving/cluster.h"
#include "serving/engine.h"
#include "simkit/simulator.h"
#include "workload/trace.h"

namespace chameleon::core {

/** The systems compared in the paper's evaluation. */
enum class SystemKind {
    SLora,              ///< FIFO + fetch-on-demand/prefetch/discard [49].
    SLoraSjf,           ///< S-LoRA with the uServe SJF scheduler [46].
    SLoraChunked,       ///< S-LoRA with chunked prefill (Sarathi [1]).
    ChameleonNoCache,   ///< Chameleon scheduler, baseline adapter mgmt.
    ChameleonNoSched,   ///< Chameleon cache, FIFO scheduling.
    Chameleon,          ///< Full system (§4).
    ChameleonLru,       ///< Full system, LRU eviction (Fig. 17).
    ChameleonFairShare, ///< Full system, equal-weight eviction (Fig. 17).
    ChameleonGdsf,      ///< Full system, GDSF eviction (§5.3.3).
    ChameleonPrefetch,  ///< Full system + predictive prefetch (Fig. 18).
    ChameleonStatic,    ///< Static queues/quotas variant (Fig. 22).
    ChameleonOutputOnly,///< WRS = predicted output only (Fig. 19).
    ChameleonDegree1,   ///< Degree-1 WRS polynomial (§4.3.1 ablation).
};

/** Human-readable system name. */
const char *systemName(SystemKind kind);

/**
 * Cluster-level deployment: data-parallel replica count, global
 * dispatch policy, and optional predictor-driven autoscaling. Every
 * SystemKind can run multi-replica — each replica gets the full
 * scheduler/adapter-manager wiring of its kind.
 */
struct ClusterConfig
{
    /** Data-parallel replicas (1 = single engine). */
    int replicas = 1;
    routing::RouterPolicy router =
        routing::RouterPolicy::JoinShortestQueue;
    routing::RouterConfig routerConfig{};
    /** Scale the active replica set at simulation time. */
    bool autoscale = false;
    routing::AutoscalerConfig autoscaler{};
};

/** Configuration shared by all system kinds. */
struct SystemConfig
{
    serving::EngineConfig engine;
    ClusterConfig cluster{};
    /** Output-length predictor: "bert" (accuracy knob) or "history". */
    std::string predictor = "bert";
    /** Output-length predictor accuracy (paper's predictor: ~0.8). */
    double predictorAccuracy = 0.8;
    std::uint64_t predictorSeed = 0xC0FFEE;
    /** SLO used by the Chameleon quota assignment, seconds. */
    double sloSeconds = 5.0;
    /** Chunk size for the chunked-prefill baseline. */
    std::int64_t chunkedPrefillTokens = 64;
    /** Scheduler refresh period (§4.3.4). */
    sim::SimTime refreshPeriod = 300 * sim::kSec;
    /** Predictive-prefetch width for ChameleonPrefetch. */
    std::size_t prefetchTopK = 8;
    /** Opportunistic bypass toggle (§4.3.3 ablation). */
    bool mlqBypass = true;
};

/** Aggregate outcome of one run. */
struct RunResult
{
    serving::EngineStats stats;
    /** PCIe link statistics. */
    std::int64_t pcieBytes = 0;
    std::int64_t pcieTransfers = 0;
    double pcieUtilisation = 0.0;
    double pcieMeanBytesPerSec = 0.0;
    double pcieMaxBytesPerSec = 0.0;
    std::vector<sim::TimePoint> pcieRateSeries;
    /** Cache statistics (0 for baseline adapter management). */
    std::int64_t cacheEvictions = 0;
    double cacheHitRate = 0.0;
    /** Final queue count of the MLQ scheduler (0 for FIFO/SJF). */
    int mlqQueues = 0;
};

/** A fully wired single-engine serving system. */
class System
{
  public:
    /**
     * @param kind which system to build
     * @param config shared configuration
     * @param pool adapter catalogue (nullable for base-only workloads)
     */
    System(SystemKind kind, SystemConfig config,
           const model::AdapterPool *pool);
    ~System();

    sim::Simulator &simulator() { return sim_; }
    serving::ServingEngine &engine() { return *engine_; }
    SystemKind kind() const { return kind_; }

    /**
     * Run a trace to completion (with a drain window after the last
     * arrival) and collect results.
     */
    RunResult run(const workload::Trace &trace,
                  sim::SimTime drainWindow = 3600 * sim::kSec);

  private:
    SystemKind kind_;
    SystemConfig config_;
    const model::AdapterPool *pool_;
    sim::Simulator sim_;
    std::unique_ptr<predict::OutputPredictor> predictor_;
    std::unique_ptr<serving::ServingEngine> engine_;
    MlqScheduler *mlq_ = nullptr; // borrowed view when kind uses MLQ
};

/** One-shot convenience wrapper. */
RunResult runSystem(SystemKind kind, const SystemConfig &config,
                    const model::AdapterPool *pool,
                    const workload::Trace &trace);

/** Aggregate outcome of one cluster run. */
struct ClusterRunResult
{
    /**
     * Cluster-wide statistics (trackers rebuilt over all replicas).
     * Time-series fields are empty — see
     * DataParallelCluster::mergedStats.
     */
    serving::EngineStats stats;
    /** Host->GPU adapter traffic summed over replicas. */
    std::int64_t pcieBytes = 0;
    std::int64_t pcieTransfers = 0;
    double cacheHitRate = 0.0;
    std::int64_t cacheEvictions = 0;
    /** Requests finished per replica (drained replicas included). */
    std::vector<std::int64_t> perReplicaFinished;
    /** Replicas ever built and active count at the end of the run. */
    std::size_t peakReplicas = 0;
    std::size_t finalActiveReplicas = 0;
    /** Autoscaling events applied. */
    std::int64_t scaleUps = 0;
    std::int64_t scaleDowns = 0;
};

/**
 * A fully wired multi-replica serving system: SystemConfig::cluster
 * replicas of the given kind behind a routing::Router, with optional
 * autoscaling. The single-engine System above is the replicas == 1
 * special case kept for the existing benchmarks.
 */
class ClusterSystem
{
  public:
    ClusterSystem(SystemKind kind, SystemConfig config,
                  const model::AdapterPool *pool);
    ~ClusterSystem();

    sim::Simulator &simulator() { return sim_; }
    serving::DataParallelCluster &cluster() { return *cluster_; }
    SystemKind kind() const { return kind_; }

    /** Run a trace to completion and collect cluster-wide results. */
    ClusterRunResult run(const workload::Trace &trace,
                         sim::SimTime drainWindow = 3600 * sim::kSec);

  private:
    SystemKind kind_;
    SystemConfig config_;
    const model::AdapterPool *pool_;
    sim::Simulator sim_;
    std::unique_ptr<predict::OutputPredictor> predictor_;
    std::unique_ptr<serving::DataParallelCluster> cluster_;
};

/** One-shot convenience wrapper for cluster runs. */
ClusterRunResult runClusterSystem(SystemKind kind,
                                  const SystemConfig &config,
                                  const model::AdapterPool *pool,
                                  const workload::Trace &trace);

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_SYSTEM_H
