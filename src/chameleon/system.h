/**
 * @file
 * Top-level facade: build and run complete serving systems.
 *
 * A system is described declaratively by a core::SystemSpec (policy
 * axes: scheduler x adapter management x eviction x prediction x
 * deployment — see system_spec.h) and resolved by name through the
 * SystemRegistry (system_registry.h). The Runner wires the spec into a
 * DataParallelCluster of fully configured engines (replicas = 1 is a
 * one-replica cluster), runs a trace through it, and returns one
 * unified RunReport. This is the entry point used by the examples and
 * by every benchmark binary.
 */

#ifndef CHAMELEON_CHAMELEON_SYSTEM_H
#define CHAMELEON_CHAMELEON_SYSTEM_H

#include <functional>
#include <memory>
#include <string>

#include "chameleon/cache_manager.h"
#include "chameleon/mlq_scheduler.h"
#include "chameleon/system_registry.h"
#include "chameleon/system_spec.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "predict/output_predictor.h"
#include "routing/autoscaler.h"
#include "routing/router.h"
#include "serving/cluster.h"
#include "serving/engine.h"
#include "simkit/simulator.h"
#include "workload/trace.h"

namespace chameleon::core {

/**
 * Aggregate outcome of one run — single-engine and cluster runs share
 * this one report. Per-link fields (utilisation, rate series) and the
 * in-engine time series are only populated for single-replica runs;
 * cluster-wide percentiles are rebuilt over all replicas' samples.
 */
/**
 * Per-tenant outcome slice of one run, computed from the finished
 * request records (post-simulation — the accounting can never perturb
 * event streams). SLO attainment is the fraction of finished requests
 * whose TTFT met the resolved per-tenant SLO; -1 when the SLO is
 * disabled (Runner::setSloMultiplier(0)).
 */
struct TenantReport
{
    workload::TenantId tenant = 0;
    std::int64_t finished = 0;
    double p50TtftSeconds = 0.0;
    double p99TtftSeconds = 0.0;
    double p50E2eSeconds = 0.0;
    double p99E2eSeconds = 0.0;
    /** Observed E2E / isolated E2E over this tenant's requests. */
    double meanSlowdown = 0.0;
    double p99Slowdown = 0.0;
    /** Resolved TTFT SLO for this tenant, seconds (0 = disabled). */
    double sloSeconds = 0.0;
    /** Fraction of requests with TTFT <= sloSeconds; -1 = disabled. */
    double sloAttainment = -1.0;
};

struct RunReport
{
    serving::EngineStats stats;

    /**
     * Per-tenant slices ordered by tenant id (one entry per tenant with
     * at least one finished request; anonymous runs get a single
     * tenant-0 entry).
     */
    std::vector<TenantReport> tenants;
    /**
     * Jain's fairness index over per-tenant weighted service — finished
     * requests per unit scheduler weight, the served-IOs-per-weight
     * convention of fairness-scheduler suites: 1.0 when every tenant
     * receives service proportional to its weight, approaching 1/n when
     * one tenant captures it all. 1.0 for empty runs. A raw-slowdown
     * index would invert the ranking: FIFO equalises queueing *delay*
     * across tenants (equal misery), while a fair scheduler deliberately
     * concentrates delay on the over-demanding tenant; service per
     * weight is the quantity WFQ/DRR actually equalise. Under a storm
     * the contrast shows while the backlog is live (bounded drain
     * window); a fully drained run converges to the trace's demand mix
     * for every scheduler.
     */
    double fairnessIndex = 1.0;
    /** Global TTFT SLO used for attainment, seconds (0 = disabled). */
    double sloSeconds = 0.0;
    /** The multiplier the SLO was derived with (0 = disabled). */
    double sloMultiplier = 0.0;
    /** Overall SLO attainment across all requests; -1 = disabled. */
    double sloAttainment = -1.0;

    /** Host->GPU adapter traffic summed over replicas. */
    std::int64_t pcieBytes = 0;
    std::int64_t pcieTransfers = 0;
    /** Per-link rates — single-replica runs only (0/empty otherwise). */
    double pcieUtilisation = 0.0;
    double pcieMeanBytesPerSec = 0.0;
    double pcieMaxBytesPerSec = 0.0;
    std::vector<sim::TimePoint> pcieRateSeries;

    /** Cache statistics (0 for baseline adapter management). */
    std::int64_t cacheEvictions = 0;
    double cacheHitRate = 0.0;

    /** Max MLQ queue count across replicas (0 for FIFO/SJF). */
    int mlqQueues = 0;

    /** Requests finished per replica (drained replicas included). */
    std::vector<std::int64_t> perReplicaFinished;
    /**
     * Nominal service-rate estimate per replica (requests/s, from
     * serving::nominalServiceRate on each replica's resolved engine
     * config), indexed like perReplicaFinished. Homogeneous fleets
     * report one value repeated; the ratios are what capacity-aware
     * routing weighted the placement by.
     */
    std::vector<double> perReplicaServiceRate;
    /**
     * Service rates the routing weights actually used at the end of
     * the run: the measured EWMA (serving::MeasuredRate) when
     * cluster.autoscaler.measuredRateAlpha > 0, a copy of
     * perReplicaServiceRate otherwise.
     */
    std::vector<double> perReplicaEffectiveRate;
    /** Replicas ever built and active count at the end of the run. */
    std::size_t peakReplicas = 0;
    std::size_t finalActiveReplicas = 0;
    /** Autoscaling events applied. */
    std::int64_t scaleUps = 0;
    std::int64_t scaleDowns = 0;
    // --- cold-start accounting (zero while autoscaler.bootMs = 0) ---
    /** Scale-up builds that paid a boot (weight-load + constant). */
    std::int64_t bootEvents = 0;
    /** Summed boot latency across those builds, seconds. */
    double totalBootSeconds = 0.0;
    /** Requests dispatched while >= 1 replica was still booting. */
    std::int64_t requestsDelayedByBoot = 0;

    // --- cache fabric (all zero / false when no fabric was built) ---
    /** A cache fabric (directory + migration) was wired into the run. */
    bool fabricEnabled = false;
    /** Peer migrations started (declined admits excluded). */
    std::int64_t fabricMigrations = 0;
    /** Adapter bytes moved over peer links. */
    std::int64_t fabricPeerBytes = 0;
    std::int64_t fabricPeerTransfers = 0;

    /**
     * Hierarchical metrics snapshot (obs::MetricsRegistry populated by
     * core::fillRunMetrics): per-replica request/engine/cache counters
     * and latency histograms under "replica<i>.*", cluster-wide
     * aggregates under "cluster.*". Always populated by Runner::run;
     * dump() is the --metrics-out document.
     */
    sim::JsonValue metrics;

    /**
     * FNV-1a 64 hash of the run's canonical event stream
     * (canonicalEventStream): the whole per-replica finished-record
     * sequence plus the scaling counters, in the golden-trace suite's
     * exact format. Two runs with equal hashes dispatched the same
     * requests to the same replicas with the same timings — the
     * sweep's per-cell determinism fingerprint and the currency of
     * `chameleon_sweep --baseline`.
     */
    std::uint64_t eventHash = 0;
};

/**
 * A fully wired serving system built from a SystemSpec: spec.cluster
 * replicas, each with the spec's scheduler/adapter-manager/predictor
 * wiring, behind a routing::Router with optional autoscaling. The spec
 * is validated on construction; contradictions fail fast with every
 * actionable message.
 */
class Runner
{
  public:
    /**
     * @param spec system description (validated here)
     * @param pool adapter catalogue (nullable for base-only workloads)
     */
    Runner(SystemSpec spec, const model::AdapterPool *pool);
    ~Runner();

    sim::Simulator &simulator() { return sim_; }
    serving::DataParallelCluster &cluster() { return *cluster_; }
    /** First-replica view (the engine of a single-replica run). */
    serving::ServingEngine &engine()
    {
        return *cluster_->engines().front();
    }
    const SystemSpec &spec() const { return spec_; }

    /**
     * Attach a span recorder to the whole system (engines, router,
     * autoscaler, caches — see DataParallelCluster::setTraceRecorder).
     * Call before run(); the caller owns the recorder and exports it
     * (TraceRecorder::writeJson) after the run. Detached (the default)
     * the run's event streams are bit-identical to an untraced run.
     */
    void setTraceRecorder(obs::TraceRecorder *recorder)
    {
        cluster_->setTraceRecorder(recorder);
    }

    /**
     * Scale the TTFT SLO used for attainment reporting (the paper's
     * default is 5x the mean isolated latency, §5.1); 0 disables SLO
     * accounting (attainments report -1). Call before run().
     */
    void setSloMultiplier(double multiplier) { sloMultiplier_ = multiplier; }
    double sloMultiplier() const { return sloMultiplier_; }

    /**
     * Run a trace to completion (with a drain window after the last
     * arrival) and collect results.
     */
    RunReport run(const workload::Trace &trace,
                  sim::SimTime drainWindow = 3600 * sim::kSec);

    /** The cache fabric, or nullptr when spec().fabricEnabled() is
     * false (non-fabric runs never construct one). */
    fabric::CacheFabric *cacheFabric() { return fabric_.get(); }

  private:
    SystemSpec spec_;
    const model::AdapterPool *pool_;
    sim::Simulator sim_;
    std::unique_ptr<predict::OutputPredictor> predictor_;
    /** Declared before cluster_: engines detach from the directory
     * only at destruction-order convenience — the cluster (and its
     * engines) must go first, so fabric_ outlives it. */
    std::unique_ptr<fabric::CacheFabric> fabric_;
    std::unique_ptr<serving::DataParallelCluster> cluster_;
    double sloMultiplier_ = 5.0;
};

/**
 * Populate `registry` with the end-of-run metrics of a finalised
 * cluster + report: per-replica counters and latency histograms under
 * "replica<i>.*" (requests, engine, cache, pcie, latency groups) and
 * cluster-wide aggregates under "cluster.*". Reads authoritative
 * end-of-run stats only — it never samples during the simulation, so
 * metrics can never perturb event streams. Runner::run calls this to
 * fill RunReport::metrics; tools and tests may call it on their own
 * registry for richer exports.
 */
void fillRunMetrics(obs::MetricsRegistry &registry,
                    const serving::DataParallelCluster &cluster,
                    const RunReport &report);

/** FNV-1a 64-bit hash (offset basis 0xcbf29ce484222325). */
std::uint64_t fnv1a64(const std::string &text);

/**
 * Canonical event-stream CSV of a finished run: a summary line of the
 * scaling counters, then one line per finished request in per-replica
 * finish order (replica index first) carrying every routing- and
 * scheduling-visible field; doubles are serialised by bit pattern.
 * Anything routing, scheduling, or autoscaling can influence is in
 * here — a single moved dispatch or extra scale event changes the
 * text. This is the exact format the golden-trace pins hash (the suite
 * calls this function), so RunReport::eventHash values are comparable
 * across tests, sweeps, and baselines.
 */
std::string canonicalEventStream(
    const serving::DataParallelCluster &cluster,
    const RunReport &report);

/** One-shot convenience wrapper. */
RunReport runSpec(const SystemSpec &spec, const model::AdapterPool *pool,
                  const workload::Trace &trace);

/**
 * One-shot run of a registry system name ("chameleon",
 * "slora+gdsf+cache", ...). `configure` is applied to the resolved
 * spec before running (set hardware, predictor, cluster there).
 */
RunReport runSystem(const std::string &name,
                    const std::function<void(SystemSpec &)> &configure,
                    const model::AdapterPool *pool,
                    const workload::Trace &trace);

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_SYSTEM_H
