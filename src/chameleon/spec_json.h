/**
 * @file
 * SystemSpec <-> JSON: reproducible, file-backed system descriptions.
 *
 * specToJson prints a complete SystemSpec — every policy axis, every
 * engine knob, the full ClusterSpec — as pretty JSON; specFromJson
 * parses it back onto the documented defaults. The pair is
 * round-trip-stable: parse(print(spec)) == spec under
 * SystemSpec::operator==, asserted by tests/spec_json_test.cc.
 *
 * Parsing is strict and partial at once: any key may be omitted (its
 * default survives — `{}` is the paper testbed's full Chameleon), but
 * an unknown or mistyped key fails with a message naming the offending
 * key path ("scheduler.polcy", "cluster.replicas expects an integer
 * count or an array of per-replica engine overrides").
 *
 * Heterogeneous fleets: "cluster.replicas" also accepts an ordered
 * array — one engine-override object (or GPU-preset string) per
 * replica, applied onto the top-level "engine" — and "cluster.fleet"
 * accepts a GPU-mix preset like "a100x2+a40x2"
 * (model::tryFleetByName). Printing always emits the fully resolved
 * per-replica engines, so the round trip stays bit-identical.
 * Parsed specs are also run through SystemSpec::validate(), so a
 * config that names a contradiction fails with the same actionable
 * messages the Runner would emit.
 *
 * chameleon_sim exposes this as --config file.json / --dump-config;
 * the sweep subsystem (src/sweep/) reuses the engine/predictor section
 * parsers for its per-cell templates.
 */

#ifndef CHAMELEON_CHAMELEON_SPEC_JSON_H
#define CHAMELEON_CHAMELEON_SPEC_JSON_H

#include <optional>
#include <string>

#include "chameleon/system_spec.h"
#include "simkit/json.h"

namespace chameleon::core {

/** Serialise the full spec (all axes and knobs) as a JSON document. */
std::string specToJson(const SystemSpec &spec);

/** As specToJson, but as a document model (for embedding/inspection). */
sim::JsonValue specToJsonValue(const SystemSpec &spec);

/**
 * Parse a spec from JSON text. Missing keys keep their defaults
 * (hardware defaults to the paper testbed: Llama-7B on an A40);
 * unknown/mistyped keys and validate() contradictions return
 * std::nullopt with an error naming the offending key.
 */
std::optional<SystemSpec> specFromJson(const std::string &text,
                                       std::string *error = nullptr);

/** As specFromJson, from an already parsed document. */
std::optional<SystemSpec> specFromJsonValue(const sim::JsonValue &root,
                                            std::string *error = nullptr);

/**
 * Apply an "engine" JSON object onto *out (missing keys keep existing
 * values). `path` prefixes error key paths. Accepts the string
 * shorthands "model": "llama-7b" and "gpu": "a40" | "a100" |
 * "a100-<GiB>" as well as the full field-by-field objects.
 */
bool engineFromJson(const sim::JsonValue &obj, const std::string &path,
                    serving::EngineConfig *out, std::string *error);

/** Apply a "predictor" JSON object onto *out; as engineFromJson. */
bool predictorFromJson(const sim::JsonValue &obj, const std::string &path,
                       PredictorSpec *out, std::string *error);

/** Apply an "autoscaler" JSON object onto *out; as engineFromJson.
 * Shared by the spec parser and the sweep "autoscaler" template. */
bool autoscalerFromJson(const sim::JsonValue &obj, const std::string &path,
                        routing::AutoscalerConfig *out,
                        std::string *error);

/** Apply a "fabric" JSON object onto *out; as engineFromJson. Unknown
 * migration/topology names fail listing the valid options. Shared by
 * the spec parser and the sweep "fabric" template. */
bool fabricFromJson(const sim::JsonValue &obj, const std::string &path,
                    FabricSpec *out, std::string *error);

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_SPEC_JSON_H
