/**
 * @file
 * The Chameleon Scheduler: non-preemptive adapter-aware multi-level
 * queues (§4.3).
 *
 * Requests are classified by Weighted Request Size into K queues whose
 * count and cutoffs come from K-means clustering of the recent WRS
 * distribution (refreshed every Trefresh). Each queue holds a standing
 * token quota assigned with the M/M/1 model of §4.3.5; admitted
 * requests borrow quota tokens (input + predicted output + adapter
 * share) and return them on completion. Batch formation follows
 * Algorithm 1: every queue admits within its available quota
 * (small-request queues first — the express lane), then spare tokens
 * from drained queues are redistributed. Opportunistic bypass (§4.3.3)
 * lets a younger same-queue request with a resident/fitting adapter
 * pass a request blocked on adapter memory, guarded by wait/execution
 * estimates and repaired by squashing when the guess proves wrong.
 */

#ifndef CHAMELEON_CHAMELEON_MLQ_SCHEDULER_H
#define CHAMELEON_CHAMELEON_MLQ_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "chameleon/kmeans.h"
#include "chameleon/wrs.h"
#include "serving/scheduler.h"

namespace chameleon::core {

/** Scheduler configuration (paper defaults). */
struct MlqConfig
{
    /** WRS formula and weights (§4.3.1). */
    WrsForm wrsForm = WrsForm::Degree2;
    double wrsA = 0.4;
    double wrsB = 0.6;
    /** Max queue count (paper: 4). */
    int kMax = 4;
    /** Reconfiguration period (paper: 5 minutes). */
    sim::SimTime refreshPeriod = 300 * sim::kSec;
    /** K selection rule (see kmeans.h for the literal-vs-elbow note). */
    KSelection kSelection = KSelection::Elbow;
    double elbowThreshold = 0.10;
    /** Per-queue SLO used in quota assignment, seconds. */
    double sloSeconds = 5.0;
    /** Engine token pool (input+output+adapter tokens of all requests). */
    std::int64_t totalTokens = 0;
    /** KV bytes per token: converts adapter bytes into token units. */
    std::int64_t kvBytesPerToken = 1;
    /** Enable opportunistic bypass (§4.3.3). */
    bool bypassEnabled = true;
    /** Static variant for Fig. 22: fixed 4 equal queues, equal quotas. */
    bool dynamic = true;
    /** Samples required before the first reconfiguration. */
    std::size_t warmupSamples = 200;
    /** WRS sample window capacity for clustering. */
    std::size_t sampleWindow = 4096;
};

/** Multi-level-queue scheduler with quotas, clustering, and bypass. */
class MlqScheduler : public serving::Scheduler
{
  public:
    MlqScheduler(MlqConfig config, const model::AdapterPool *pool);

    const char *name() const override { return "chameleon-mlq"; }

    void enqueue(serving::LiveRequest *r) override;
    void requeueFront(serving::LiveRequest *r) override;
    bool hasWaiting() const override;
    std::size_t waitingCount() const override;
    std::vector<serving::LiveRequest *> selectAdmissions(
        serving::AdmissionContext &ctx) override;
    void onRequestFinished(serving::LiveRequest *r) override;
    void onIterationEnd(sim::SimTime now) override;
    std::vector<serving::LiveRequest *> waitingSnapshot() const override;

    /** Current queue count. */
    int queueCount() const { return static_cast<int>(lanes_.size()); }
    /** Current cutoffs (size queueCount-1). */
    const std::vector<double> &cutoffs() const { return cutoffs_; }
    /** Current per-queue quotas in tokens. */
    std::vector<std::int64_t> quotas() const;
    /** Reconfigurations performed so far. */
    int reconfigurations() const { return reconfigs_; }

  private:
    struct Lane
    {
        std::deque<serving::LiveRequest *> queue;
        std::int64_t quota = 0;
        std::int64_t held = 0;
        // Refresh-window accounting for quota assignment.
        std::int64_t arrivalsInWindow = 0;
        double serviceSecondsSum = 0.0;
        std::int64_t servicesInWindow = 0;
        double maxTokensSeen = 1.0;
    };

    struct PendingBypass
    {
        serving::LiveRequest *blocked;  // R1
        serving::LiveRequest *bypasser; // R2
    };

    /** Token cost of a request (§4.3: input + output + adapter share). */
    std::int64_t tokenCost(const serving::LiveRequest *r) const;
    /** Lane index for a WRS value under current cutoffs. */
    std::size_t classify(double wrs) const;
    /** Admit from one lane within a token allowance (Alg. 1 put_batch). */
    std::int64_t putBatch(Lane &lane, std::size_t laneIdx,
                          std::int64_t allowance,
                          serving::AdmissionContext &ctx,
                          std::vector<serving::LiveRequest *> &admitted);
    /** Try to bypass the blocked lane head with a younger request. */
    bool tryBypass(Lane &lane, serving::LiveRequest *blocked,
                   std::int64_t allowance, serving::AdmissionContext &ctx,
                   std::vector<serving::LiveRequest *> &admitted,
                   std::int64_t &consumed);
    /** Check pending bypasses for squash conditions (§4.3.3). */
    void checkSquashes(serving::AdmissionContext &ctx);
    /** Recompute K, cutoffs, and quotas from the recent WRS window. */
    void reconfigure(sim::SimTime now);
    /** Rebuild lane membership after cutoffs changed. */
    void redistributeWaiting(std::vector<serving::LiveRequest *> waiting);
    void addWrsSample(double wrs, std::int64_t tokens);

    /** Recent request observation for clustering and quota sizing. */
    struct WrsSample
    {
        double wrs = 0.0;
        std::int64_t tokens = 0;
    };

    /** Recent completion observation for service-time estimation. */
    struct ServiceSample
    {
        double wrs = 0.0;
        double seconds = 0.0;
    };

    MlqConfig config_;
    WrsCalculator wrs_;
    std::vector<Lane> lanes_;
    std::vector<double> cutoffs_;
    std::vector<WrsSample> samples_; // ring buffer of recent arrivals
    std::size_t sampleNext_ = 0;
    std::vector<ServiceSample> services_; // ring buffer of completions
    std::size_t serviceNext_ = 0;
    std::unordered_set<serving::LiveRequest *> admitted_;
    std::vector<PendingBypass> pendingBypasses_;
    sim::SimTime lastRefresh_ = 0;
    bool bootstrapped_ = false;
    int reconfigs_ = 0;
};

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_MLQ_SCHEDULER_H
