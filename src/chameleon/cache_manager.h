/**
 * @file
 * The Chameleon Adapter Cache and its Cache Manager (§4.2).
 *
 * A transparent, adaptive, interference-free software cache for LoRA
 * adapters in otherwise-idle GPU memory:
 *  - adapters whose reference count drops to zero are *retained* in the
 *    cache instead of discarded;
 *  - the cache is dynamically sized: whenever request state (KV pages,
 *    activations, missing adapters) needs memory, the manager shrinks
 *    the cache by evicting idle adapters with a cost-aware policy;
 *  - adapters of queued requests are pinned (evicted only under real
 *    memory pressure);
 *  - per-adapter metadata (rank/size, last-used time, decayed use
 *    frequency, reference count) feeds the eviction score;
 *  - optionally, a histogram-based future-load predictor prefetches
 *    adapters for requests that have not arrived yet (§4.2.3; off by
 *    default, as in the paper).
 */

#ifndef CHAMELEON_CHAMELEON_CACHE_MANAGER_H
#define CHAMELEON_CHAMELEON_CACHE_MANAGER_H

#include <memory>
#include <unordered_map>

#include "chameleon/eviction.h"
#include "gpu/gpu_memory.h"
#include "gpu/pcie_link.h"
#include "model/cost_model.h"
#include "predict/load_predictor.h"
#include "serving/adapter_manager.h"
#include "simkit/simulator.h"

namespace chameleon::core {

/** Cache manager configuration. */
struct CacheConfig
{
    /** Eviction policy name: chameleon / fairshare / lru / gdsf. */
    std::string evictionPolicy = "chameleon";
    /** Prefetch adapters of waiting (queued) requests. */
    bool queuedPrefetch = true;
    /** Histogram-based predictive prefetch (§4.2.3; off by default). */
    bool predictivePrefetch = false;
    /** Predictive prefetch width (adapters per cycle). */
    std::size_t predictiveTopK = 8;
    /** Frequency decay time constant, seconds. */
    double frequencyTauSeconds = 60.0;
    /**
     * Interference-free watermark (§4.2.1): the cache neither fills via
     * prefetch nor retains a released adapter unless at least this many
     * bytes stay free for incoming request state, and KV-driven shrinks
     * overshoot down to it. Prevents the cache from thrashing against
     * KV-cache growth under memory pressure. Negative = auto (4% of
     * device capacity).
     */
    std::int64_t minFreeBytes = -1;
};

/** AdapterManager implementation with the Chameleon cache. */
class CacheManager : public serving::AdapterManager
{
  public:
    CacheManager(const model::AdapterPool &pool, gpu::GpuMemory &mem,
                 gpu::PcieLink &link, const model::CostModel &cost,
                 CacheConfig config = CacheConfig{});

    const char *name() const override { return "chameleon-cache"; }

    bool isResident(model::AdapterId id) const override;
    sim::SimTime acquire(model::AdapterId id, sim::SimTime now) override;
    void release(model::AdapterId id) override;
    bool canMakeResident(model::AdapterId id) const override;
    void onRequestQueued(model::AdapterId id, sim::SimTime now) override;
    void onRequestDequeued(model::AdapterId id) override;
    void onSchedulingCycle(const std::vector<model::AdapterId> &queued,
                           sim::SimTime now) override;
    bool tryFreeMemory(std::int64_t bytes) override;

    /** Report every residency transition to the cluster directory. */
    void setResidencyListener(serving::ResidencyEvents *listener,
                              int replica) override
    {
        residency_ = listener;
        replicaIndex_ = replica;
    }

    /**
     * Accept adapter weights over a peer link (cache-fabric
     * migration): reserve memory like a predictive prefetch — only
     * with the interference watermark intact, evicting unpinned idle
     * entries at most — and flip the adapter Resident at `readyAt`
     * through the simulator, bypassing the host PCIe link entirely.
     * Returns the usable time, or sim::kTimeNever when declined.
     */
    sim::SimTime peerAdmit(model::AdapterId id, sim::SimTime readyAt,
                           sim::SimTime now) override;

    std::int64_t hits() const override { return hits_; }
    std::int64_t misses() const override { return misses_; }
    std::int64_t cachedBytes() const override;

    /** Record evictions and transfer starts on the Cache lane. */
    void setTraceRecorder(obs::TraceRecorder *recorder, int pid) override
    {
        trace_ = recorder;
        tracePid_ = pid;
    }

    /** Cached (idle, evictable) adapter count. */
    std::size_t cachedCount() const;
    /** Total evictions performed. */
    std::int64_t evictions() const { return evictions_; }
    /** Evictions triggered by KV/memory shrink requests. */
    std::int64_t kvShrinkEvictions() const { return kvShrinkEvictions_; }
    /** Evictions triggered by demand adapter loads. */
    std::int64_t demandEvictions() const { return demandEvictions_; }
    /** Evictions triggered by queued prefetches. */
    std::int64_t prefetchEvictions() const { return prefetchEvictions_; }
    /** Transfers started, by kind. */
    std::int64_t demandLoads() const { return demandLoads_; }
    std::int64_t queuedLoads() const { return queuedLoads_; }
    std::int64_t predictiveLoads() const { return predictiveLoads_; }
    /** Peer-link admits accepted (cache-fabric migrations landed). */
    std::int64_t peerLoads() const { return peerLoads_; }
    const EvictionPolicy &policy() const { return *policy_; }

  private:
    enum class State { NotResident, Loading, Resident };

    struct Entry
    {
        State state = State::NotResident;
        int runningRc = 0;
        int queuedRc = 0;
        sim::SimTime readyAt = 0;
        sim::SimTime lastUsed = 0;
        sim::SimTime lastFreqTouch = 0;
        double frequency = 0.0;
        /** Transfer was started by prefetch and is still unclaimed. */
        bool prefetched = false;
    };

    /** What triggered a transfer; governs how aggressive it may be. */
    enum class LoadKind {
        Demand,             ///< Admission: may evict idle adapters.
        QueuedPrefetch,     ///< Waiting request: free memory only.
        PredictivePrefetch, ///< Speculation: leaves the watermark free.
    };

    Entry &entry(model::AdapterId id);
    const Entry *find(model::AdapterId id) const;
    // Residency-listener notifications (no-ops while unattached; the
    // listener observes only, so attachment never alters behaviour).
    void notifyLoadStart(model::AdapterId id);
    void notifyLoadComplete(model::AdapterId id);
    void notifyEvict(model::AdapterId id);
    void notifyAcquire(model::AdapterId id, sim::SimTime now);
    void notifyRelease(model::AdapterId id);
    void touch(Entry &e, sim::SimTime now);
    double decayedFrequency(const Entry &e, sim::SimTime now) const;
    sim::SimTime startLoad(model::AdapterId id, Entry &e, LoadKind kind,
                           sim::SimTime now);
    /** Evict idle adapters (optionally pinned ones too) by policy. */
    bool evictUntilFree(std::int64_t bytes, bool includePinned,
                        sim::SimTime now);
    std::vector<EvictionCandidate> collectCandidates(bool includePinned,
                                                     sim::SimTime now) const;
    std::int64_t evictableBytes(bool includePinned) const;

    const model::AdapterPool &pool_;
    gpu::GpuMemory &mem_;
    gpu::PcieLink &link_;
    const model::CostModel &cost_;
    CacheConfig config_;
    std::unique_ptr<EvictionPolicy> policy_;
    predict::HistogramLoadPredictor loadPredictor_;
    std::unordered_map<model::AdapterId, Entry> entries_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t evictions_ = 0;
    std::int64_t kvShrinkEvictions_ = 0;
    std::int64_t demandEvictions_ = 0;
    std::int64_t prefetchEvictions_ = 0;
    std::int64_t demandLoads_ = 0;
    std::int64_t queuedLoads_ = 0;
    std::int64_t predictiveLoads_ = 0;
    std::int64_t peerLoads_ = 0;
    /** Most recent simulation time observed (tryFreeMemory has no now). */
    sim::SimTime lastNow_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
    int tracePid_ = 0;
    serving::ResidencyEvents *residency_ = nullptr;
    int replicaIndex_ = 0;
};

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_CACHE_MANAGER_H
