#include "chameleon/kmeans.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"

namespace chameleon::core {

KMeansResult
kmeans1d(const std::vector<double> &data, int k, int maxIters)
{
    CHM_CHECK(!data.empty(), "k-means needs data");
    CHM_CHECK(k >= 1, "k must be at least 1");

    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();

    // Quantile initialisation: deterministic and well-spread.
    std::vector<double> centroids;
    centroids.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
        const std::size_t idx = std::min(
            n - 1, static_cast<std::size_t>((2.0 * i + 1) /
                                            (2.0 * k) * static_cast<double>(n)));
        centroids.push_back(sorted[idx]);
    }
    std::sort(centroids.begin(), centroids.end());

    std::vector<int> assign(n, 0);
    for (int iter = 0; iter < maxIters; ++iter) {
        bool changed = false;
        // Assignment: nearest centroid (data sorted, centroids sorted,
        // but a simple scan per point is plenty fast at our sizes).
        for (std::size_t i = 0; i < n; ++i) {
            int best = 0;
            double best_d = std::abs(sorted[i] - centroids[0]);
            for (int c = 1; c < k; ++c) {
                const double d = std::abs(sorted[i] - centroids[
                    static_cast<std::size_t>(c)]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        // Update step.
        std::vector<double> sum(static_cast<std::size_t>(k), 0.0);
        std::vector<std::size_t> count(static_cast<std::size_t>(k), 0);
        for (std::size_t i = 0; i < n; ++i) {
            sum[static_cast<std::size_t>(assign[i])] += sorted[i];
            ++count[static_cast<std::size_t>(assign[i])];
        }
        for (int c = 0; c < k; ++c) {
            const auto cc = static_cast<std::size_t>(c);
            if (count[cc] > 0)
                centroids[cc] = sum[cc] / static_cast<double>(count[cc]);
        }
        std::sort(centroids.begin(), centroids.end());
    }

    KMeansResult result;
    result.centroids = centroids;
    for (std::size_t i = 0; i < n; ++i) {
        const double d =
            sorted[i] - centroids[static_cast<std::size_t>(assign[i])];
        result.wcss += d * d;
    }
    return result;
}

KMeansResult
chooseClusters(const std::vector<double> &data, int kMax,
               KSelection selection, double elbowThreshold)
{
    CHM_CHECK(kMax >= 1, "kMax must be at least 1");
    std::vector<KMeansResult> results;
    results.reserve(static_cast<std::size_t>(kMax));
    for (int k = 1; k <= kMax; ++k)
        results.push_back(kmeans1d(data, k));

    if (selection == KSelection::LiteralMinWcss) {
        // WCSS is non-increasing in K; ties broken toward smaller K.
        std::size_t best = 0;
        for (std::size_t i = 1; i < results.size(); ++i) {
            if (results[i].wcss < results[best].wcss)
                best = i;
        }
        return results[best];
    }

    // Elbow: stop at the first K whose improvement over K-1 is small.
    // Improvements are measured relative to the total dispersion (the
    // K=1 WCSS) so that near-zero residuals at well-separated K do not
    // look like large relative gains.
    const double total = results[0].wcss;
    std::size_t chosen = results.size() - 1;
    if (total <= 0.0)
        return results[0]; // all samples identical
    for (std::size_t i = 1; i < results.size(); ++i) {
        const double improvement =
            (results[i - 1].wcss - results[i].wcss) / total;
        if (improvement < elbowThreshold) {
            chosen = i - 1;
            break;
        }
    }
    return results[chosen];
}

std::vector<double>
centroidCutoffs(const std::vector<double> &centroids)
{
    std::vector<double> cutoffs;
    for (std::size_t i = 0; i + 1 < centroids.size(); ++i)
        cutoffs.push_back(0.5 * (centroids[i] + centroids[i + 1]));
    return cutoffs;
}

} // namespace chameleon::core
