#include "chameleon/system_registry.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "simkit/check.h"

namespace chameleon::core {

namespace {

/** "prefetch16" -> ("prefetch", 16); no digits -> value = -1. */
bool
splitNumericSuffix(const std::string &token, const std::string &stem,
                   long long *value)
{
    if (token.compare(0, stem.size(), stem) != 0)
        return false;
    const std::string digits = token.substr(stem.size());
    if (digits.empty()) {
        *value = -1;
        return true;
    }
    if (!std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c); }))
        return false;
    *value = std::strtoll(digits.c_str(), nullptr, 10);
    return true;
}

} // namespace

SystemRegistry::SystemRegistry()
{
    add("slora", presets::slora(),
        "S-LoRA baseline: FIFO + fetch-on-demand/prefetch/discard [49]");
    add("slora-sjf", presets::sloraSjf(),
        "S-LoRA with the uServe shortest-job-first scheduler [46]");
    add("slora-chunked", presets::sloraChunked(),
        "S-LoRA with chunked prefill (Sarathi [1])");
    add("chameleon-nocache", presets::chameleonNoCache(),
        "Chameleon scheduler over baseline adapter management");
    add("chameleon-nosched", presets::chameleonNoSched(),
        "Chameleon adapter cache under FIFO scheduling");
    add("chameleon", presets::chameleon(),
        "the full system: MLQ scheduler + adapter cache (§4)");
    add("chameleon-lru", presets::chameleonLru(),
        "full system with LRU eviction (Fig. 17)");
    add("chameleon-fairshare", presets::chameleonFairShare(),
        "full system with equal-weight eviction (Fig. 17)");
    add("chameleon-gdsf", presets::chameleonGdsf(),
        "full system with GDSF eviction (§5.3.3)");
    add("chameleon-prefetch", presets::chameleonPrefetch(),
        "full system + histogram-based predictive prefetch (Fig. 18)");
    add("chameleon-static", presets::chameleonStatic(),
        "static queues and quotas variant (Fig. 22)");
    add("chameleon-output-only", presets::chameleonOutputOnly(),
        "WRS = predicted output length only (Fig. 19)");
    add("chameleon-degree1", presets::chameleonDegree1(),
        "degree-1 WRS polynomial (§4.3.1 ablation)");
}

SystemRegistry &
SystemRegistry::global()
{
    static SystemRegistry registry;
    return registry;
}

void
SystemRegistry::add(const std::string &name, SystemSpec spec,
                    std::string description)
{
    CHM_CHECK(!name.empty(), "registry names cannot be empty");
    spec.name = name;
    entries_[name] = Entry{std::move(spec), std::move(description)};
}

bool
SystemRegistry::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

bool
SystemRegistry::applyModifier(SystemSpec &spec, const std::string &token,
                              std::string *error)
{
    long long value = 0;
    // Eviction axis (implies the chameleon cache stays required;
    // validate() rejects the combination on a cacheless base).
    if (token == "lru") {
        spec.adapters.eviction = EvictionKind::Lru;
    } else if (token == "fairshare" || token == "fair-share") {
        spec.adapters.eviction = EvictionKind::FairShare;
    } else if (token == "gdsf") {
        spec.adapters.eviction = EvictionKind::Gdsf;
    } else if (token == "paper") {
        spec.adapters.eviction = EvictionKind::Paper;
    // Scheduler axis.
    } else if (token == "fifo") {
        spec.scheduler.policy = SchedulerPolicy::Fifo;
    } else if (token == "sjf") {
        spec.scheduler.policy = SchedulerPolicy::Sjf;
    } else if (token == "mlq") {
        spec.scheduler.policy = SchedulerPolicy::Mlq;
    } else if (token == "wfq") {
        spec.scheduler.policy = SchedulerPolicy::Wfq;
    } else if (token == "drr") {
        spec.scheduler.policy = SchedulerPolicy::Drr;
    // Adapter-management axis.
    } else if (token == "cache") {
        spec.adapters.policy = AdapterPolicy::ChameleonCache;
    } else if (token == "ondemand" || token == "on-demand") {
        spec.adapters.policy = AdapterPolicy::OnDemand;
    // Knobs.
    } else if (token == "noprefetch") {
        spec.adapters.predictivePrefetch = false;
        spec.adapters.prefetchTopK = 0;
    } else if (splitNumericSuffix(token, "prefetch", &value)) {
        spec.adapters.predictivePrefetch = true;
        spec.adapters.prefetchTopK =
            value < 0 ? 8 : static_cast<std::size_t>(value);
    } else if (token == "bypass") {
        spec.scheduler.bypass = true;
    } else if (token == "nobypass") {
        spec.scheduler.bypass = false;
    } else if (token == "static") {
        spec.scheduler.dynamicQueues = false;
    } else if (token == "dynamic") {
        spec.scheduler.dynamicQueues = true;
    } else if (token == "history") {
        spec.predictor.kind = "history";
    } else if (token == "bert") {
        spec.predictor.kind = "bert";
    } else if (splitNumericSuffix(token, "chunked", &value)) {
        spec.chunkedPrefill = true;
        if (value >= 0)
            spec.chunkTokens = value;
    } else {
        if (error != nullptr) {
            std::ostringstream os;
            os << "unknown system modifier '+" << token << "'; known: ";
            const auto mods = modifierHelp();
            for (std::size_t i = 0; i < mods.size(); ++i)
                os << (i ? ", " : "") << mods[i];
            *error = os.str();
        }
        return false;
    }
    return true;
}

std::optional<SystemSpec>
SystemRegistry::find(const std::string &name, std::string *error) const
{
    const auto exact = entries_.find(name);
    if (exact != entries_.end())
        return exact->second.spec;

    const auto plus = name.find('+');
    const std::string baseName =
        plus == std::string::npos ? name : name.substr(0, plus);
    const auto base = entries_.find(baseName);
    if (base == entries_.end()) {
        if (error != nullptr) {
            std::ostringstream os;
            os << "unknown system '" << baseName
               << "'; try --list-systems for the registered names "
               << "(compose variants as base+modifier, e.g. "
               << "\"chameleon+gdsf+prefetch\")";
            *error = os.str();
        }
        return std::nullopt;
    }
    SystemSpec spec = base->second.spec;
    if (plus != std::string::npos) {
        std::string rest = name.substr(plus + 1);
        while (true) {
            const auto next = rest.find('+');
            const std::string token = rest.substr(0, next);
            // An empty token means a stray '+' (trailing, leading, or
            // doubled) — reject rather than silently running the base.
            if (token.empty()) {
                if (error != nullptr)
                    *error = "empty modifier in '" + name + "'";
                return std::nullopt;
            }
            if (!applyModifier(spec, token, error))
                return std::nullopt;
            if (next == std::string::npos)
                break;
            rest = rest.substr(next + 1);
        }
    }
    spec.name = name;
    return spec;
}

SystemSpec
SystemRegistry::lookup(const std::string &name) const
{
    std::string error;
    auto spec = find(name, &error);
    if (!spec.has_value())
        CHM_FATAL(error);
    return *spec;
}

std::vector<std::string>
SystemRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

const std::string &
SystemRegistry::description(const std::string &name) const
{
    static const std::string empty;
    const auto it = entries_.find(name);
    return it == entries_.end() ? empty : it->second.description;
}

std::vector<std::string>
SystemRegistry::modifierHelp()
{
    return {"lru",     "fairshare", "gdsf",       "paper",
            "fifo",    "sjf",       "mlq",        "wfq",
            "drr",     "cache",     "ondemand",   "prefetch[K]",
            "noprefetch", "bypass", "nobypass",   "static",
            "dynamic", "history",   "bert",       "chunked[N]"};
}

} // namespace chameleon::core
