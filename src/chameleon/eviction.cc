#include "chameleon/eviction.h"

#include <algorithm>

#include "simkit/check.h"
#include "simkit/rng.h"

namespace chameleon::core {

ChameleonEviction::ChameleonEviction(double f, double r, double s)
    : f_(f), r_(r), s_(s)
{
    CHM_CHECK(f >= 0 && r >= 0 && s >= 0, "weights must be non-negative");
}

double
ChameleonEviction::score(const EvictionCandidate &c, double maxFreq,
                         sim::SimTime minLast, sim::SimTime maxLast,
                         std::int64_t maxBytes) const
{
    const double freq_n = maxFreq > 0 ? c.frequency / maxFreq : 0.0;
    const double span = static_cast<double>(maxLast - minLast);
    const double rec_n =
        span > 0 ? static_cast<double>(c.lastUsed - minLast) / span : 1.0;
    const double size_n =
        maxBytes > 0 ? static_cast<double>(c.bytes) /
                           static_cast<double>(maxBytes)
                     : 0.0;
    return f_ * freq_n + r_ * rec_n + s_ * size_n;
}

std::size_t
ChameleonEviction::pickVictim(
    const std::vector<EvictionCandidate> &candidates, sim::SimTime)
{
    CHM_CHECK(!candidates.empty(), "no eviction candidates");
    double max_freq = 0.0;
    sim::SimTime min_last = candidates.front().lastUsed;
    sim::SimTime max_last = candidates.front().lastUsed;
    std::int64_t max_bytes = 0;
    for (const auto &c : candidates) {
        max_freq = std::max(max_freq, c.frequency);
        min_last = std::min(min_last, c.lastUsed);
        max_last = std::max(max_last, c.lastUsed);
        max_bytes = std::max(max_bytes, c.bytes);
    }
    std::size_t best = 0;
    double best_score = score(candidates[0], max_freq, min_last, max_last,
                              max_bytes);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double s =
            score(candidates[i], max_freq, min_last, max_last, max_bytes);
        if (s < best_score) {
            best_score = s;
            best = i;
        }
    }
    return best;
}

std::size_t
LruEviction::pickVictim(const std::vector<EvictionCandidate> &candidates,
                        sim::SimTime)
{
    CHM_CHECK(!candidates.empty(), "no eviction candidates");
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].lastUsed < candidates[best].lastUsed)
            best = i;
    }
    return best;
}

std::size_t
GdsfEviction::pickVictim(const std::vector<EvictionCandidate> &candidates,
                         sim::SimTime)
{
    CHM_CHECK(!candidates.empty(), "no eviction candidates");
    // H = L + Frequency * Cost / Size; evict min H and age L up to it.
    std::int64_t max_bytes = 1;
    for (const auto &c : candidates)
        max_bytes = std::max(max_bytes, c.bytes);
    auto h_value = [&](const EvictionCandidate &c) {
        const double size_n =
            static_cast<double>(c.bytes) / static_cast<double>(max_bytes);
        return aging_ + c.frequency * (c.loadCostMs / 100.0) /
                            std::max(size_n, 1e-9);
    };
    std::size_t best = 0;
    double best_h = h_value(candidates[0]);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double h = h_value(candidates[i]);
        if (h < best_h) {
            best_h = h;
            best = i;
        }
    }
    aging_ = best_h;
    return best;
}

std::size_t
LfuEviction::pickVictim(const std::vector<EvictionCandidate> &candidates,
                        sim::SimTime)
{
    CHM_CHECK(!candidates.empty(), "no eviction candidates");
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].frequency < candidates[best].frequency)
            best = i;
    }
    return best;
}

RandomEviction::RandomEviction(std::uint64_t seed) : state_(seed | 1)
{
}

std::size_t
RandomEviction::pickVictim(const std::vector<EvictionCandidate> &candidates,
                           sim::SimTime)
{
    CHM_CHECK(!candidates.empty(), "no eviction candidates");
    // SplitMix64 step: deterministic per seed, independent of sim state.
    const std::uint64_t z = sim::mix64(state_);
    state_ += 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(z % candidates.size());
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(const std::string &name)
{
    if (name == "chameleon")
        return std::make_unique<ChameleonEviction>();
    if (name == "fairshare")
        return std::make_unique<FairShareEviction>();
    if (name == "lru")
        return std::make_unique<LruEviction>();
    if (name == "gdsf")
        return std::make_unique<GdsfEviction>();
    if (name == "lfu")
        return std::make_unique<LfuEviction>();
    if (name == "random")
        return std::make_unique<RandomEviction>();
    CHM_FATAL("unknown eviction policy: " << name);
}

} // namespace chameleon::core
