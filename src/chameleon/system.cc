#include "chameleon/system.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include <map>

#include "fabric/cache_fabric.h"
#include "predict/history_predictor.h"
#include "routing/slo_admission.h"
#include "predict/length_predictor.h"
#include "serving/fifo_scheduler.h"
#include "serving/sjf_scheduler.h"
#include "serving/slo.h"
#include "serving/slora_adapter_manager.h"
#include "simkit/check.h"
#include "tenancy/drr_scheduler.h"
#include "tenancy/tenant_table.h"
#include "tenancy/wfq_scheduler.h"

namespace chameleon::core {

using serving::EngineConfig;
using serving::ServingEngine;

namespace {

/**
 * Placeholder pool for base-only workloads: no request references an
 * adapter, so the manager never performs a lookup against it.
 */
const model::AdapterPool &
placeholderPool()
{
    static const model::AdapterPool pool(model::llama7B(),
                                         std::vector<int>{8});
    return pool;
}

/** Tenant weights/SLO scales from the spec's tenancy axis. */
tenancy::TenantTable
buildTenantTable(const TenancySpec &spec)
{
    tenancy::TenantTable table(spec.tenants);
    for (std::size_t i = 0; i < spec.weights.size(); ++i)
        table.setWeight(static_cast<tenancy::TenantId>(i), spec.weights[i]);
    for (std::size_t i = 0; i < spec.sloMultipliers.size(); ++i)
        table.setSloMultiplier(static_cast<tenancy::TenantId>(i),
                               spec.sloMultipliers[i]);
    return table;
}

std::unique_ptr<predict::OutputPredictor>
buildPredictor(const PredictorSpec &spec)
{
    if (spec.kind == "history")
        return std::make_unique<predict::HistoryLengthPredictor>();
    CHM_CHECK(spec.kind == "bert", "unknown predictor: " << spec.kind);
    return std::make_unique<predict::LengthPredictor>(spec.accuracy,
                                                      spec.seed);
}

/**
 * Build one fully wired engine (scheduler + adapter manager) from the
 * spec's policy axes, on the given simulator. Every replica of the
 * Runner's cluster is built here; `replica` selects the resolved
 * per-replica engine config (heterogeneous fleets differ per index,
 * homogeneous specs resolve every index to spec.engine).
 */
std::unique_ptr<ServingEngine>
buildEngine(const SystemSpec &spec, std::size_t replica,
            const model::AdapterPool *pool, sim::Simulator &simulator,
            predict::OutputPredictor *predictor)
{
    const bool mlq = spec.scheduler.policy == SchedulerPolicy::Mlq;

    EngineConfig ecfg = spec.resolvedEngine(replica);
    switch (spec.reservation) {
      case ReservationPolicy::Auto:
        ecfg.predictedReservation = mlq;
        break;
      case ReservationPolicy::MaxTokens:
        ecfg.predictedReservation = false;
        break;
      case ReservationPolicy::Predicted:
        ecfg.predictedReservation = true;
        break;
    }
    if (spec.chunkedPrefill) {
        ecfg.prefillChunkTokens =
            std::max<std::int64_t>(spec.chunkTokens, 1);
    }

    // Scheduler axis.
    std::unique_ptr<serving::Scheduler> scheduler;
    switch (spec.scheduler.policy) {
      case SchedulerPolicy::Fifo:
        scheduler = std::make_unique<serving::FifoScheduler>();
        break;
      case SchedulerPolicy::Sjf:
        scheduler = std::make_unique<serving::SjfScheduler>(
            spec.scheduler.sjfAgingPerSecond);
        break;
      case SchedulerPolicy::Mlq: {
        MlqConfig mcfg;
        mcfg.sloSeconds = spec.scheduler.sloSeconds;
        mcfg.refreshPeriod = spec.scheduler.refreshPeriod;
        mcfg.kvBytesPerToken = ecfg.model.kvBytesPerToken();
        const std::int64_t pool_bytes =
            static_cast<std::int64_t>(ecfg.tpDegree) * ecfg.gpu.memBytes -
            ecfg.model.weightsBytes() -
            static_cast<std::int64_t>(ecfg.tpDegree) * ecfg.workspacePerGpu;
        CHM_CHECK(pool_bytes > 0, "model does not leave room for requests");
        mcfg.totalTokens = pool_bytes / mcfg.kvBytesPerToken;
        mcfg.bypassEnabled = spec.scheduler.bypass;
        mcfg.dynamic = spec.scheduler.dynamicQueues;
        mcfg.wrsForm = spec.scheduler.wrsForm;
        scheduler = std::make_unique<MlqScheduler>(mcfg, pool);
        break;
      }
      case SchedulerPolicy::Wfq:
        scheduler = std::make_unique<tenancy::WfqScheduler>(
            buildTenantTable(spec.tenancy));
        break;
      case SchedulerPolicy::Drr:
        scheduler = std::make_unique<tenancy::DrrScheduler>(
            buildTenantTable(spec.tenancy), spec.tenancy.drrQuantumTokens);
        break;
    }

    auto engine = std::make_unique<ServingEngine>(
        simulator, ecfg, pool, std::move(scheduler), predictor);

    // Adapter-management axis (needs the engine's memory/link objects).
    std::unique_ptr<serving::AdapterManager> mgr;
    if (pool == nullptr ||
        spec.adapters.policy != AdapterPolicy::ChameleonCache) {
        // Base-only workloads still need a manager object; the baseline
        // one degenerates gracefully when no adapters are referenced.
        const bool prefetch =
            spec.adapters.policy != AdapterPolicy::OnDemand;
        mgr = std::make_unique<serving::SLoraAdapterManager>(
            pool ? *pool : placeholderPool(), engine->memory(),
            engine->pcieLink(), prefetch);
    } else {
        CacheConfig ccfg;
        ccfg.evictionPolicy = evictionPolicyName(spec.adapters.eviction);
        ccfg.predictivePrefetch = spec.adapters.predictivePrefetch;
        if (spec.adapters.predictivePrefetch)
            ccfg.predictiveTopK = spec.adapters.prefetchTopK;
        mgr = std::make_unique<CacheManager>(
            *pool, engine->memory(), engine->pcieLink(),
            engine->costModel(), ccfg);
    }
    engine->setAdapterManager(std::move(mgr));
    return engine;
}

/**
 * Run the trace span, then drain remaining events; the event graph is
 * finite, so the drain window only bounds the clock when the system
 * ends up idle-stalled.
 */
void
drainSimulation(sim::Simulator &simulator, const workload::Trace &trace,
                sim::SimTime drainWindow)
{
    simulator.runUntil(trace.duration());
    std::int64_t guard = 1ll << 40;
    while (simulator.pendingEvents() > 0 && guard-- > 0 &&
           simulator.now() < trace.duration() + drainWindow) {
        simulator.runUntil(simulator.now() + sim::kSec);
        if (simulator.pendingEvents() == 0)
            break;
    }
}

} // namespace

Runner::Runner(SystemSpec spec, const model::AdapterPool *pool)
    : spec_(std::move(spec)), pool_(pool)
{
    const auto errors = spec_.validate();
    if (!errors.empty()) {
        std::ostringstream os;
        os << "invalid SystemSpec '" << spec_.name << "':";
        for (const auto &e : errors)
            os << "\n  - " << e;
        CHM_FATAL(os.str());
    }
    // One predictor shared by all replicas (it is a per-request oracle,
    // not per-engine state).
    predictor_ = buildPredictor(spec_.predictor);
    const ClusterSpec &ccfg = spec_.cluster;
    std::unique_ptr<routing::Router> router =
        routing::makeRouter(ccfg.router, ccfg.routerConfig);
    if (ccfg.routerConfig.sloAdmission) {
        // SLO-critical tenants (multiplier < 1.0) bypass the base
        // policy for the fastest effective-rate replica; with the
        // default multiplier table the decorator never intercepts.
        router = std::make_unique<routing::SloAdmissionRouter>(
            std::move(router), spec_.tenancy.sloMultipliers);
    }
    cluster_ = std::make_unique<serving::DataParallelCluster>(
        sim_,
        [this](std::size_t replica) {
            return buildEngine(spec_, replica, pool_, sim_,
                               predictor_.get());
        },
        ccfg.replicas, std::move(router));
    if (ccfg.autoscale) {
        // replicaServiceRps rates the spec's base engine; per-replica
        // capacity factors divide each replica's nominal rate by it.
        cluster_->enableAutoscaler(
            ccfg.autoscaler, serving::nominalServiceRate(spec_.engine));
        // Default-policy scale-ups past the fleet list build the base
        // engine; pricing its boot for the boot-aware horizon needs
        // the config without building a replica.
        cluster_->setReferenceEngine(spec_.engine);
        if (ccfg.autoscaler.scaleUpPolicy !=
            routing::ScaleUpPolicy::Default) {
            // Catalogue for the hetero-aware scale-up policy: the
            // distinct per-replica fleet configs plus the base engine.
            std::vector<serving::EngineConfig> candidates;
            candidates.push_back(spec_.engine);
            for (const auto &engine : spec_.cluster.replicaEngines) {
                bool known = false;
                for (const auto &candidate : candidates)
                    known = known || candidate == engine;
                if (!known)
                    candidates.push_back(engine);
            }
            cluster_->setScaleUpCandidates(
                std::move(candidates),
                [this](const serving::EngineConfig &config) {
                    SystemSpec custom = spec_;
                    custom.engine = config;
                    custom.cluster.replicaEngines.clear();
                    return buildEngine(custom, 0, pool_, sim_,
                                       predictor_.get());
                });
        }
    }
    if (spec_.fabricEnabled()) {
        // Built only when the run needs it (migration on, or the
        // directory-backed router): non-fabric runs never construct a
        // fabric, so their event streams match the pre-fabric ones
        // byte-for-byte.
        fabric::FabricConfig fcfg;
        fcfg.migration = spec_.fabric.migration;
        fcfg.topology = spec_.fabric.topology;
        fcfg.topK = spec_.fabric.topK;
        fabric_ = std::make_unique<fabric::CacheFabric>(
            sim_, pool_ ? *pool_ : placeholderPool(), fcfg);
        cluster_->attachFabric(fabric_.get());
    }
}

Runner::~Runner() = default;

RunReport
Runner::run(const workload::Trace &trace, sim::SimTime drainWindow)
{
    cluster_->submitTrace(trace);
    drainSimulation(sim_, trace, drainWindow);
    cluster_->finalize();

    RunReport report;
    const auto &engines = cluster_->engines();
    if (engines.size() == 1) {
        // Keep the engine's full stats object (windowed TTFT and memory
        // time series) and the per-link rates — merging would drop them.
        report.stats = engines.front()->stats();
        const auto &link = engines.front()->pcieLink();
        report.pcieUtilisation = link.utilisation();
        report.pcieMeanBytesPerSec = link.bandwidthSeries().meanRate();
        report.pcieMaxBytesPerSec = link.bandwidthSeries().maxRate();
        report.pcieRateSeries = link.bandwidthSeries().ratePerSecond();
    } else {
        report.stats = cluster_->mergedStats();
    }
    report.pcieBytes = cluster_->totalPcieBytes();
    report.pcieTransfers = cluster_->totalPcieTransfers();
    report.cacheHitRate = report.stats.cacheHitRate();
    for (const auto &engine : engines) {
        if (auto *cache = dynamic_cast<CacheManager *>(
                &engine->adapterManager())) {
            report.cacheEvictions += cache->evictions();
        }
        if (auto *mlq =
                dynamic_cast<MlqScheduler *>(&engine->scheduler())) {
            report.mlqQueues = std::max(report.mlqQueues,
                                        mlq->queueCount());
        }
    }
    report.perReplicaFinished = cluster_->perReplicaFinished();
    report.perReplicaServiceRate = cluster_->serviceRates();
    report.perReplicaEffectiveRate = cluster_->effectiveServiceRates();
    report.peakReplicas = engines.size();
    report.finalActiveReplicas = cluster_->activeReplicas();
    report.scaleUps = cluster_->scaleUps();
    report.scaleDowns = cluster_->scaleDowns();
    const auto &boot = cluster_->bootStats();
    report.bootEvents = boot.boots;
    report.totalBootSeconds = sim::toSeconds(boot.totalBootTime);
    report.requestsDelayedByBoot = boot.requestsDelayedByBoot;
    if (fabric_ != nullptr) {
        report.fabricEnabled = true;
        report.fabricMigrations = fabric_->migrations();
        report.fabricPeerBytes = fabric_->peerBytes();
        report.fabricPeerTransfers = fabric_->peerTransfers();
    }

    // --- per-tenant accounting (post-simulation: pure record reads) ---
    const model::CostModel cost(spec_.engine.model, spec_.engine.gpu,
                                spec_.engine.tpDegree, spec_.engine.cost);
    if (sloMultiplier_ > 0.0 && !trace.empty()) {
        report.sloMultiplier = sloMultiplier_;
        report.sloSeconds = sim::toSeconds(
            serving::computeSlo(trace, cost, pool_, sloMultiplier_));
    }
    std::map<workload::TenantId, std::vector<serving::RequestRecord>>
        byTenant;
    for (const auto &rec : report.stats.records)
        byTenant[rec.tenant].push_back(rec);
    std::vector<double> weightedService;
    std::int64_t metOverall = 0;
    for (const auto &[tenant, records] : byTenant) {
        TenantReport tr;
        tr.tenant = tenant;
        tr.finished = static_cast<std::int64_t>(records.size());
        sim::PercentileTracker ttft;
        sim::PercentileTracker e2e;
        for (const auto &rec : records) {
            ttft.add(sim::toSeconds(rec.ttft));
            e2e.add(sim::toSeconds(rec.e2e));
        }
        tr.p50TtftSeconds = ttft.p50();
        tr.p99TtftSeconds = ttft.p99();
        tr.p50E2eSeconds = e2e.p50();
        tr.p99E2eSeconds = e2e.p99();
        const auto slowdown = serving::slowdowns(records, cost, pool_);
        tr.meanSlowdown = slowdown.mean();
        tr.p99Slowdown = slowdown.p99();
        if (report.sloSeconds > 0.0) {
            tr.sloSeconds = report.sloSeconds *
                            spec_.tenancy.sloMultiplierFor(tenant);
            std::int64_t met = 0;
            for (const auto &rec : records) {
                if (sim::toSeconds(rec.ttft) <= tr.sloSeconds)
                    ++met;
            }
            metOverall += met;
            tr.sloAttainment = static_cast<double>(met) /
                               static_cast<double>(records.size());
        }
        // Service per unit weight, not slowdown: FIFO equalises delay
        // (equal misery scores a perfect raw-slowdown index) while a
        // fair scheduler concentrates delay on the over-demanding
        // tenant; what WFQ/DRR equalise is weighted service.
        weightedService.push_back(static_cast<double>(tr.finished) /
                                  spec_.tenancy.weightFor(tenant));
        report.tenants.push_back(tr);
    }
    report.fairnessIndex = tenancy::jainIndex(weightedService);
    if (report.sloSeconds > 0.0 && report.stats.finished > 0) {
        report.sloAttainment = static_cast<double>(metOverall) /
                               static_cast<double>(report.stats.finished);
    }

    obs::MetricsRegistry registry;
    fillRunMetrics(registry, *cluster_, report);
    report.metrics = registry.snapshot();
    report.eventHash = fnv1a64(canonicalEventStream(*cluster_, report));
    return report;
}

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

/** Doubles by bit pattern: exact, locale- and printf-independent. */
std::uint64_t
doubleBits(double value)
{
    std::uint64_t out;
    static_assert(sizeof(out) == sizeof(value), "double is 64-bit");
    std::memcpy(&out, &value, sizeof(out));
    return out;
}

} // namespace

std::string
canonicalEventStream(const serving::DataParallelCluster &cluster,
                     const RunReport &report)
{
    std::ostringstream os;
    os << "finished=" << report.stats.finished
       << " scale_ups=" << report.scaleUps
       << " scale_downs=" << report.scaleDowns
       << " peak=" << report.peakReplicas
       << " final_active=" << report.finalActiveReplicas << '\n';
    const auto &engines = cluster.engines();
    for (std::size_t i = 0; i < engines.size(); ++i) {
        for (const auto &r : engines[i]->stats().records) {
            os << i << ',' << r.id << ',' << r.arrival << ','
               << r.inputTokens << ',' << r.outputTokens << ','
               << r.adapter << ',' << r.rank << ',' << r.ttft << ','
               << r.e2e << ',' << r.queueDelay << ',' << r.adapterStall
               << ',' << doubleBits(r.wrs) << ',' << r.queueIndex << ','
               << r.squashCount << ',' << r.preemptCount << '\n';
        }
    }
    return os.str();
}

namespace {

/** Feed every sample of a PercentileTracker into a histogram. */
void
fillHistogram(obs::Histogram &histogram,
              const sim::PercentileTracker &tracker)
{
    for (const double v : tracker.sorted())
        histogram.add(v);
}

} // namespace

void
fillRunMetrics(obs::MetricsRegistry &registry,
               const serving::DataParallelCluster &cluster,
               const RunReport &report)
{
    const auto &engines = cluster.engines();
    for (std::size_t i = 0; i < engines.size(); ++i) {
        const std::string prefix = "replica" + std::to_string(i) + ".";
        const serving::EngineStats &s = engines[i]->stats();
        auto count = [&](const char *name, std::int64_t value) {
            registry.counter(prefix + name).inc(value);
        };
        count("requests.submitted", s.submitted);
        count("requests.finished", s.finished);
        count("requests.preemptions", s.preemptions);
        count("requests.squashes", s.squashes);
        count("requests.bypasses", s.bypasses);
        count("engine.iterations", s.iterations);
        count("engine.prefill_tokens", s.prefillTokens);
        count("engine.decode_tokens", s.decodeTokens);
        registry.gauge(prefix + "engine.busy_seconds")
            .set(sim::toSeconds(s.busyTime));
        registry.gauge(prefix + "engine.mean_batch_size")
            .set(s.iterations
                     ? static_cast<double>(s.batchSizeAccum) /
                           static_cast<double>(s.iterations)
                     : 0.0);
        if (i < report.perReplicaServiceRate.size()) {
            registry.gauge(prefix + "engine.service_rate_rps")
                .set(report.perReplicaServiceRate[i]);
        }
        count("cache.hits", s.adapterHits);
        count("cache.misses", s.adapterMisses);
        registry.gauge(prefix + "cache.hit_rate").set(s.cacheHitRate());
        if (const auto *cache = dynamic_cast<const CacheManager *>(
                &engines[i]->adapterManager())) {
            count("cache.evictions", cache->evictions());
            count("cache.demand_loads", cache->demandLoads());
            count("cache.queued_loads", cache->queuedLoads());
            count("cache.predictive_loads", cache->predictiveLoads());
            count("cache.peer_loads", cache->peerLoads());
        }
        count("pcie.bytes", engines[i]->pcieLink().totalBytes());
        count("pcie.transfers", engines[i]->pcieLink().totalTransfers());
        fillHistogram(registry.histogram(prefix + "latency.ttft_s"),
                      s.ttft);
        fillHistogram(registry.histogram(prefix + "latency.e2e_s"),
                      s.e2e);
        fillHistogram(
            registry.histogram(prefix + "latency.queue_delay_s"),
            s.queueDelay);
        fillHistogram(
            registry.histogram(prefix + "latency.load_stall_ms"),
            s.loadStall);
    }

    const serving::EngineStats &total = report.stats;
    registry.counter("cluster.requests.submitted").inc(total.submitted);
    registry.counter("cluster.requests.finished").inc(total.finished);
    registry.counter("cluster.requests.preemptions")
        .inc(total.preemptions);
    registry.counter("cluster.requests.squashes").inc(total.squashes);
    registry.counter("cluster.requests.bypasses").inc(total.bypasses);
    registry.gauge("cluster.cache.hit_rate").set(report.cacheHitRate);
    registry.counter("cluster.cache.evictions")
        .inc(report.cacheEvictions);
    registry.counter("cluster.pcie.bytes").inc(report.pcieBytes);
    registry.counter("cluster.pcie.transfers").inc(report.pcieTransfers);
    registry.counter("cluster.scaling.scale_ups").inc(report.scaleUps);
    registry.counter("cluster.scaling.scale_downs")
        .inc(report.scaleDowns);
    registry.counter("cluster.scaling.boots").inc(report.bootEvents);
    registry.gauge("cluster.scaling.boot_seconds")
        .set(report.totalBootSeconds);
    registry.counter("cluster.scaling.requests_delayed_by_boot")
        .inc(report.requestsDelayedByBoot);
    registry.counter("cluster.replicas.peak")
        .inc(static_cast<std::int64_t>(report.peakReplicas));
    registry.counter("cluster.replicas.final_active")
        .inc(static_cast<std::int64_t>(report.finalActiveReplicas));
    if (report.fabricEnabled) {
        registry.counter("fabric.migrations")
            .inc(report.fabricMigrations);
        registry.counter("fabric.peer_bytes").inc(report.fabricPeerBytes);
        registry.counter("fabric.peer_transfers")
            .inc(report.fabricPeerTransfers);
    }
    fillHistogram(registry.histogram("cluster.latency.ttft_s"),
                  total.ttft);
    fillHistogram(registry.histogram("cluster.latency.e2e_s"),
                  total.e2e);
    fillHistogram(registry.histogram("cluster.latency.queue_delay_s"),
                  total.queueDelay);

    // Tenancy groups: one "tenant.<id>.*" slice per tenant with
    // finished requests, plus the fleet-wide fairness index.
    registry.gauge("cluster.fairness.jain_index")
        .set(report.fairnessIndex);
    if (report.sloAttainment >= 0.0) {
        registry.gauge("cluster.slo.seconds").set(report.sloSeconds);
        registry.gauge("cluster.slo.attainment")
            .set(report.sloAttainment);
    }
    for (const auto &t : report.tenants) {
        const std::string prefix =
            "tenant." + std::to_string(t.tenant) + ".";
        registry.counter(prefix + "requests.finished").inc(t.finished);
        registry.gauge(prefix + "latency.p50_ttft_s")
            .set(t.p50TtftSeconds);
        registry.gauge(prefix + "latency.p99_ttft_s")
            .set(t.p99TtftSeconds);
        registry.gauge(prefix + "latency.p50_e2e_s").set(t.p50E2eSeconds);
        registry.gauge(prefix + "latency.p99_e2e_s").set(t.p99E2eSeconds);
        registry.gauge(prefix + "slowdown.mean").set(t.meanSlowdown);
        registry.gauge(prefix + "slowdown.p99").set(t.p99Slowdown);
        if (t.sloAttainment >= 0.0) {
            registry.gauge(prefix + "slo.seconds").set(t.sloSeconds);
            registry.gauge(prefix + "slo.attainment")
                .set(t.sloAttainment);
        }
    }
}

RunReport
runSpec(const SystemSpec &spec, const model::AdapterPool *pool,
        const workload::Trace &trace)
{
    Runner runner(spec, pool);
    return runner.run(trace);
}

RunReport
runSystem(const std::string &name,
          const std::function<void(SystemSpec &)> &configure,
          const model::AdapterPool *pool, const workload::Trace &trace)
{
    SystemSpec spec = SystemRegistry::global().lookup(name);
    if (configure)
        configure(spec);
    return runSpec(spec, pool, trace);
}

} // namespace chameleon::core
