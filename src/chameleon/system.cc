#include "chameleon/system.h"

#include <algorithm>

#include "predict/history_predictor.h"
#include "predict/length_predictor.h"
#include "serving/fifo_scheduler.h"
#include "serving/sjf_scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "simkit/check.h"

namespace chameleon::core {

using serving::EngineConfig;
using serving::ServingEngine;

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SLora: return "S-LoRA";
      case SystemKind::SLoraSjf: return "S-LoRA+SJF";
      case SystemKind::SLoraChunked: return "S-LoRA+ChunkPrefill";
      case SystemKind::ChameleonNoCache: return "ChameleonNoCache";
      case SystemKind::ChameleonNoSched: return "ChameleonNoSched";
      case SystemKind::Chameleon: return "Chameleon";
      case SystemKind::ChameleonLru: return "Chameleon-LRU";
      case SystemKind::ChameleonFairShare: return "Chameleon-FairShare";
      case SystemKind::ChameleonGdsf: return "Chameleon-GDSF";
      case SystemKind::ChameleonPrefetch: return "Chameleon+Prefetch";
      case SystemKind::ChameleonStatic: return "Chameleon-Static";
      case SystemKind::ChameleonOutputOnly: return "Chameleon-OutputOnly";
      case SystemKind::ChameleonDegree1: return "Chameleon-Degree1";
    }
    return "?";
}

namespace {

bool
usesMlq(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SLora:
      case SystemKind::SLoraSjf:
      case SystemKind::SLoraChunked:
      case SystemKind::ChameleonNoSched:
        return false;
      default:
        return true;
    }
}

bool
usesCache(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SLora:
      case SystemKind::SLoraSjf:
      case SystemKind::SLoraChunked:
      case SystemKind::ChameleonNoCache:
        return false;
      default:
        return true;
    }
}

std::string
evictionPolicyFor(SystemKind kind)
{
    switch (kind) {
      case SystemKind::ChameleonLru: return "lru";
      case SystemKind::ChameleonFairShare: return "fairshare";
      case SystemKind::ChameleonGdsf: return "gdsf";
      default: return "chameleon";
    }
}

/**
 * Placeholder pool for base-only workloads: no request references an
 * adapter, so the manager never performs a lookup against it.
 */
const model::AdapterPool &
placeholderPool()
{
    static const model::AdapterPool pool(model::llama7B(),
                                         std::vector<int>{8});
    return pool;
}

std::unique_ptr<predict::OutputPredictor>
buildPredictor(const SystemConfig &config)
{
    if (config.predictor == "history")
        return std::make_unique<predict::HistoryLengthPredictor>();
    CHM_CHECK(config.predictor == "bert",
              "unknown predictor: " << config.predictor);
    return std::make_unique<predict::LengthPredictor>(
        config.predictorAccuracy, config.predictorSeed);
}

/**
 * Build one fully wired engine of `kind` (scheduler + adapter manager)
 * on the given simulator. Shared by the single-engine System and every
 * replica of a ClusterSystem. `mlqOut`, when non-null, receives the
 * borrowed MLQ scheduler pointer for kinds that use it.
 */
std::unique_ptr<ServingEngine>
buildEngine(SystemKind kind, const SystemConfig &config,
            const model::AdapterPool *pool, sim::Simulator &simulator,
            predict::OutputPredictor *predictor, MlqScheduler **mlqOut)
{
    EngineConfig ecfg = config.engine;
    ecfg.predictedReservation = usesMlq(kind);
    if (kind == SystemKind::SLoraChunked) {
        ecfg.prefillChunkTokens =
            std::max<std::int64_t>(config.chunkedPrefillTokens, 1);
    }

    // Scheduler.
    std::unique_ptr<serving::Scheduler> scheduler;
    if (!usesMlq(kind)) {
        if (kind == SystemKind::SLoraSjf)
            scheduler = std::make_unique<serving::SjfScheduler>();
        else
            scheduler = std::make_unique<serving::FifoScheduler>();
    } else {
        MlqConfig mcfg;
        mcfg.sloSeconds = config.sloSeconds;
        mcfg.refreshPeriod = config.refreshPeriod;
        mcfg.kvBytesPerToken = ecfg.model.kvBytesPerToken();
        const std::int64_t pool_bytes =
            static_cast<std::int64_t>(ecfg.tpDegree) * ecfg.gpu.memBytes -
            ecfg.model.weightsBytes() -
            static_cast<std::int64_t>(ecfg.tpDegree) * ecfg.workspacePerGpu;
        CHM_CHECK(pool_bytes > 0, "model does not leave room for requests");
        mcfg.totalTokens = pool_bytes / mcfg.kvBytesPerToken;
        mcfg.bypassEnabled = config.mlqBypass;
        if (kind == SystemKind::ChameleonStatic)
            mcfg.dynamic = false;
        if (kind == SystemKind::ChameleonOutputOnly)
            mcfg.wrsForm = WrsForm::OutputOnly;
        if (kind == SystemKind::ChameleonDegree1)
            mcfg.wrsForm = WrsForm::Degree1;
        auto mlq = std::make_unique<MlqScheduler>(mcfg, pool);
        if (mlqOut != nullptr)
            *mlqOut = mlq.get();
        scheduler = std::move(mlq);
    }

    auto engine = std::make_unique<ServingEngine>(
        simulator, ecfg, pool, std::move(scheduler), predictor);

    // Adapter manager (needs the engine's memory and link objects).
    std::unique_ptr<serving::AdapterManager> mgr;
    if (pool == nullptr || !usesCache(kind)) {
        // Base-only workloads still need a manager object; the baseline
        // one degenerates gracefully when no adapters are referenced.
        mgr = std::make_unique<serving::SLoraAdapterManager>(
            pool ? *pool : placeholderPool(), engine->memory(),
            engine->pcieLink(), /*prefetchEnabled=*/true);
    } else {
        CacheConfig ccfg;
        ccfg.evictionPolicy = evictionPolicyFor(kind);
        ccfg.predictivePrefetch = kind == SystemKind::ChameleonPrefetch;
        ccfg.predictiveTopK = config.prefetchTopK;
        mgr = std::make_unique<CacheManager>(
            *pool, engine->memory(), engine->pcieLink(),
            engine->costModel(), ccfg);
    }
    engine->setAdapterManager(std::move(mgr));
    return engine;
}

} // namespace

System::System(SystemKind kind, SystemConfig config,
               const model::AdapterPool *pool)
    : kind_(kind), config_(std::move(config)), pool_(pool)
{
    predictor_ = buildPredictor(config_);
    engine_ = buildEngine(kind, config_, pool_, sim_, predictor_.get(),
                          &mlq_);
}

System::~System() = default;

namespace {

/**
 * Run the trace span, then drain remaining events; the event graph is
 * finite, so the drain window only bounds the clock when the system
 * ends up idle-stalled.
 */
void
drainSimulation(sim::Simulator &simulator, const workload::Trace &trace,
                sim::SimTime drainWindow)
{
    simulator.runUntil(trace.duration());
    std::int64_t guard = 1ll << 40;
    while (simulator.pendingEvents() > 0 && guard-- > 0 &&
           simulator.now() < trace.duration() + drainWindow) {
        simulator.runUntil(simulator.now() + sim::kSec);
        if (simulator.pendingEvents() == 0)
            break;
    }
}

} // namespace

RunResult
System::run(const workload::Trace &trace, sim::SimTime drainWindow)
{
    engine_->submitTrace(trace);
    drainSimulation(sim_, trace, drainWindow);
    engine_->finalize();

    RunResult result;
    result.stats = engine_->stats();
    const auto &link = engine_->pcieLink();
    result.pcieBytes = link.totalBytes();
    result.pcieTransfers = link.totalTransfers();
    result.pcieUtilisation = link.utilisation();
    result.pcieMeanBytesPerSec = link.bandwidthSeries().meanRate();
    result.pcieMaxBytesPerSec = link.bandwidthSeries().maxRate();
    result.pcieRateSeries = link.bandwidthSeries().ratePerSecond();
    result.cacheHitRate = result.stats.cacheHitRate();
    if (auto *cache =
            dynamic_cast<CacheManager *>(&engine_->adapterManager())) {
        result.cacheEvictions = cache->evictions();
    }
    if (mlq_ != nullptr)
        result.mlqQueues = mlq_->queueCount();
    return result;
}

RunResult
runSystem(SystemKind kind, const SystemConfig &config,
          const model::AdapterPool *pool, const workload::Trace &trace)
{
    System system(kind, config, pool);
    return system.run(trace);
}

ClusterSystem::ClusterSystem(SystemKind kind, SystemConfig config,
                             const model::AdapterPool *pool)
    : kind_(kind), config_(std::move(config)), pool_(pool)
{
    const ClusterConfig &ccfg = config_.cluster;
    CHM_CHECK(ccfg.replicas >= 1, "cluster needs at least one replica");
    // One predictor shared by all replicas (it is a per-request oracle,
    // not per-engine state).
    predictor_ = buildPredictor(config_);
    cluster_ = std::make_unique<serving::DataParallelCluster>(
        sim_,
        [this] {
            return buildEngine(kind_, config_, pool_, sim_,
                               predictor_.get(), nullptr);
        },
        ccfg.replicas, routing::makeRouter(ccfg.router, ccfg.routerConfig));
    if (ccfg.autoscale)
        cluster_->enableAutoscaler(ccfg.autoscaler);
}

ClusterSystem::~ClusterSystem() = default;

ClusterRunResult
ClusterSystem::run(const workload::Trace &trace, sim::SimTime drainWindow)
{
    cluster_->submitTrace(trace);
    drainSimulation(sim_, trace, drainWindow);
    cluster_->finalize();

    ClusterRunResult result;
    result.stats = cluster_->mergedStats();
    result.pcieBytes = cluster_->totalPcieBytes();
    result.pcieTransfers = cluster_->totalPcieTransfers();
    result.cacheHitRate = result.stats.cacheHitRate();
    for (const auto &engine : cluster_->engines()) {
        if (auto *cache = dynamic_cast<CacheManager *>(
                &engine->adapterManager())) {
            result.cacheEvictions += cache->evictions();
        }
    }
    result.perReplicaFinished = cluster_->perReplicaFinished();
    result.peakReplicas = cluster_->engines().size();
    result.finalActiveReplicas = cluster_->activeReplicas();
    result.scaleUps = cluster_->scaleUps();
    result.scaleDowns = cluster_->scaleDowns();
    return result;
}

ClusterRunResult
runClusterSystem(SystemKind kind, const SystemConfig &config,
                 const model::AdapterPool *pool,
                 const workload::Trace &trace)
{
    ClusterSystem system(kind, config, pool);
    return system.run(trace);
}

} // namespace chameleon::core
