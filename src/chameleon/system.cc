#include "chameleon/system.h"

#include <algorithm>

#include "predict/history_predictor.h"
#include "predict/length_predictor.h"
#include "serving/fifo_scheduler.h"
#include "serving/sjf_scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "simkit/check.h"

namespace chameleon::core {

using serving::EngineConfig;
using serving::ServingEngine;

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SLora: return "S-LoRA";
      case SystemKind::SLoraSjf: return "S-LoRA+SJF";
      case SystemKind::SLoraChunked: return "S-LoRA+ChunkPrefill";
      case SystemKind::ChameleonNoCache: return "ChameleonNoCache";
      case SystemKind::ChameleonNoSched: return "ChameleonNoSched";
      case SystemKind::Chameleon: return "Chameleon";
      case SystemKind::ChameleonLru: return "Chameleon-LRU";
      case SystemKind::ChameleonFairShare: return "Chameleon-FairShare";
      case SystemKind::ChameleonGdsf: return "Chameleon-GDSF";
      case SystemKind::ChameleonPrefetch: return "Chameleon+Prefetch";
      case SystemKind::ChameleonStatic: return "Chameleon-Static";
      case SystemKind::ChameleonOutputOnly: return "Chameleon-OutputOnly";
      case SystemKind::ChameleonDegree1: return "Chameleon-Degree1";
    }
    return "?";
}

namespace {

bool
usesMlq(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SLora:
      case SystemKind::SLoraSjf:
      case SystemKind::SLoraChunked:
      case SystemKind::ChameleonNoSched:
        return false;
      default:
        return true;
    }
}

bool
usesCache(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SLora:
      case SystemKind::SLoraSjf:
      case SystemKind::SLoraChunked:
      case SystemKind::ChameleonNoCache:
        return false;
      default:
        return true;
    }
}

std::string
evictionPolicyFor(SystemKind kind)
{
    switch (kind) {
      case SystemKind::ChameleonLru: return "lru";
      case SystemKind::ChameleonFairShare: return "fairshare";
      case SystemKind::ChameleonGdsf: return "gdsf";
      default: return "chameleon";
    }
}

/**
 * Placeholder pool for base-only workloads: no request references an
 * adapter, so the manager never performs a lookup against it.
 */
const model::AdapterPool &
placeholderPool()
{
    static const model::AdapterPool pool(model::llama7B(),
                                         std::vector<int>{8});
    return pool;
}

} // namespace

System::System(SystemKind kind, SystemConfig config,
               const model::AdapterPool *pool)
    : kind_(kind), config_(std::move(config)), pool_(pool)
{
    EngineConfig ecfg = config_.engine;
    ecfg.predictedReservation = usesMlq(kind);
    if (kind == SystemKind::SLoraChunked) {
        ecfg.prefillChunkTokens =
            std::max<std::int64_t>(config_.chunkedPrefillTokens, 1);
    }

    if (config_.predictor == "history") {
        predictor_ = std::make_unique<predict::HistoryLengthPredictor>();
    } else {
        CHM_CHECK(config_.predictor == "bert",
                  "unknown predictor: " << config_.predictor);
        predictor_ = std::make_unique<predict::LengthPredictor>(
            config_.predictorAccuracy, config_.predictorSeed);
    }

    // Scheduler.
    std::unique_ptr<serving::Scheduler> scheduler;
    if (!usesMlq(kind)) {
        if (kind == SystemKind::SLoraSjf)
            scheduler = std::make_unique<serving::SjfScheduler>();
        else
            scheduler = std::make_unique<serving::FifoScheduler>();
    } else {
        MlqConfig mcfg;
        mcfg.sloSeconds = config_.sloSeconds;
        mcfg.refreshPeriod = config_.refreshPeriod;
        mcfg.kvBytesPerToken = ecfg.model.kvBytesPerToken();
        const std::int64_t pool_bytes =
            static_cast<std::int64_t>(ecfg.tpDegree) * ecfg.gpu.memBytes -
            ecfg.model.weightsBytes() -
            static_cast<std::int64_t>(ecfg.tpDegree) * ecfg.workspacePerGpu;
        CHM_CHECK(pool_bytes > 0, "model does not leave room for requests");
        mcfg.totalTokens = pool_bytes / mcfg.kvBytesPerToken;
        mcfg.bypassEnabled = config_.mlqBypass;
        if (kind == SystemKind::ChameleonStatic)
            mcfg.dynamic = false;
        if (kind == SystemKind::ChameleonOutputOnly)
            mcfg.wrsForm = WrsForm::OutputOnly;
        if (kind == SystemKind::ChameleonDegree1)
            mcfg.wrsForm = WrsForm::Degree1;
        auto mlq = std::make_unique<MlqScheduler>(mcfg, pool_);
        mlq_ = mlq.get();
        scheduler = std::move(mlq);
    }

    engine_ = std::make_unique<ServingEngine>(
        sim_, ecfg, pool_, std::move(scheduler), predictor_.get());

    // Adapter manager (needs the engine's memory and link objects).
    std::unique_ptr<serving::AdapterManager> mgr;
    if (pool_ == nullptr || !usesCache(kind)) {
        // Base-only workloads still need a manager object; the baseline
        // one degenerates gracefully when no adapters are referenced.
        mgr = std::make_unique<serving::SLoraAdapterManager>(
            pool_ ? *pool_ : placeholderPool(), engine_->memory(),
            engine_->pcieLink(), /*prefetchEnabled=*/true);
    } else {
        CacheConfig ccfg;
        ccfg.evictionPolicy = evictionPolicyFor(kind);
        ccfg.predictivePrefetch = kind == SystemKind::ChameleonPrefetch;
        ccfg.predictiveTopK = config_.prefetchTopK;
        mgr = std::make_unique<CacheManager>(
            *pool_, engine_->memory(), engine_->pcieLink(),
            engine_->costModel(), ccfg);
    }
    engine_->setAdapterManager(std::move(mgr));
}

System::~System() = default;

RunResult
System::run(const workload::Trace &trace, sim::SimTime drainWindow)
{
    engine_->submitTrace(trace);
    // Drain everything; the engine's event graph is finite. The drain
    // window only bounds the clock when the engine ends up idle-stalled.
    sim_.runUntil(trace.duration());
    std::int64_t guard = 1ll << 40;
    while (sim_.pendingEvents() > 0 && guard-- > 0 &&
           sim_.now() < trace.duration() + drainWindow) {
        sim_.runUntil(sim_.now() + sim::kSec);
        if (sim_.pendingEvents() == 0)
            break;
    }
    engine_->finalize();

    RunResult result;
    result.stats = engine_->stats();
    const auto &link = engine_->pcieLink();
    result.pcieBytes = link.totalBytes();
    result.pcieTransfers = link.totalTransfers();
    result.pcieUtilisation = link.utilisation();
    result.pcieMeanBytesPerSec = link.bandwidthSeries().meanRate();
    result.pcieMaxBytesPerSec = link.bandwidthSeries().maxRate();
    result.pcieRateSeries = link.bandwidthSeries().ratePerSecond();
    result.cacheHitRate = result.stats.cacheHitRate();
    if (auto *cache =
            dynamic_cast<CacheManager *>(&engine_->adapterManager())) {
        result.cacheEvictions = cache->evictions();
    }
    if (mlq_ != nullptr)
        result.mlqQueues = mlq_->queueCount();
    return result;
}

RunResult
runSystem(SystemKind kind, const SystemConfig &config,
          const model::AdapterPool *pool, const workload::Trace &trace)
{
    System system(kind, config, pool);
    return system.run(trace);
}

} // namespace chameleon::core
