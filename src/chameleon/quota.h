/**
 * @file
 * Queueing-theory quota assignment (§4.3.5).
 *
 * Each queue is modeled as an M/M/1 server. With S the maximum request
 * size in tokens for the queue, Tok its token quota, D the expected
 * processing duration of one request, and lambda the arrival rate, the
 * service rate is mu = Tok / (S * D) and the sojourn time is
 * T = 1 / (mu - lambda). Meeting T <= SLO requires
 *
 *     Tok_min >= S * D * (1/SLO + lambda).
 *
 * Each queue receives its Tok_min and the remaining tokens are split
 * proportionally to those minima. If the minima oversubscribe the total
 * the assignment degrades gracefully by proportional scaling.
 */

#ifndef CHAMELEON_CHAMELEON_QUOTA_H
#define CHAMELEON_CHAMELEON_QUOTA_H

#include <cstdint>
#include <vector>

namespace chameleon::core {

/** Measured load statistics of one queue over the last window. */
struct QueueLoadStats
{
    /** Max request size in tokens admitted to this queue (S). */
    double maxTokens = 1.0;
    /** Mean processing duration of a request, seconds (D). */
    double meanServiceSeconds = 0.1;
    /** Arrival rate, requests/second (lambda). */
    double arrivalRate = 0.0;
};

/**
 * Per-queue token quotas.
 *
 * @param stats one entry per queue
 * @param sloSeconds the latency SLO each queue must meet
 * @param totalTokens the engine's total token pool
 */
std::vector<std::int64_t> assignQuotas(
    const std::vector<QueueLoadStats> &stats, double sloSeconds,
    std::int64_t totalTokens);

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_QUOTA_H
