#include "chameleon/mlq_scheduler.h"

#include <algorithm>

#include "chameleon/quota.h"
#include "simkit/check.h"

namespace chameleon::core {

using serving::AdmissionContext;
using serving::LiveRequest;
using serving::ReserveResult;

MlqScheduler::MlqScheduler(MlqConfig config, const model::AdapterPool *pool)
    : config_(std::move(config)),
      wrs_(pool, config_.wrsForm, config_.wrsA, config_.wrsB)
{
    CHM_CHECK(config_.totalTokens > 0, "MLQ needs a token pool size");
    CHM_CHECK(config_.kMax >= 1, "kMax must be at least 1");
    // Bootstrap: a single queue owning the whole pool until enough WRS
    // samples exist to cluster.
    lanes_.resize(1);
    lanes_[0].quota = config_.totalTokens;
}

std::int64_t
MlqScheduler::tokenCost(const LiveRequest *r) const
{
    const std::int64_t adapter_tokens =
        r->adapterBytes / std::max<std::int64_t>(config_.kvBytesPerToken, 1);
    return r->req.inputTokens + r->predictedOutput + adapter_tokens;
}

std::size_t
MlqScheduler::classify(double wrs) const
{
    std::size_t lane = 0;
    while (lane < cutoffs_.size() && wrs >= cutoffs_[lane])
        ++lane;
    return lane;
}

void
MlqScheduler::addWrsSample(double wrs, std::int64_t tokens)
{
    if (samples_.size() < config_.sampleWindow) {
        samples_.push_back(WrsSample{wrs, tokens});
    } else {
        samples_[sampleNext_] = WrsSample{wrs, tokens};
        sampleNext_ = (sampleNext_ + 1) % config_.sampleWindow;
    }
}

void
MlqScheduler::enqueue(LiveRequest *r)
{
    r->wrs = wrs_.compute(r->req.inputTokens, r->predictedOutput,
                          r->adapterBytes);
    addWrsSample(r->wrs, tokenCost(r));
    const std::size_t lane = classify(r->wrs);
    r->queueIndex = static_cast<int>(lane);
    lanes_[lane].queue.push_back(r);
    ++lanes_[lane].arrivalsInWindow;
    lanes_[lane].maxTokensSeen = std::max(
        lanes_[lane].maxTokensSeen, static_cast<double>(tokenCost(r)));
}

void
MlqScheduler::requeueFront(LiveRequest *r)
{
    // Re-entry after squash/preemption: quota tokens were returned by the
    // engine path only on finish, so return them here if held.
    if (admitted_.erase(r) > 0) {
        auto &lane = lanes_[static_cast<std::size_t>(
            std::min<int>(r->queueIndex,
                          static_cast<int>(lanes_.size()) - 1))];
        lane.held -= r->quotaTokens;
        r->quotaTokens = 0;
    }
    const std::size_t lane = classify(r->wrs);
    r->queueIndex = static_cast<int>(lane);
    lanes_[lane].queue.push_front(r);
}

bool
MlqScheduler::hasWaiting() const
{
    for (const auto &lane : lanes_) {
        if (!lane.queue.empty())
            return true;
    }
    return false;
}

std::size_t
MlqScheduler::waitingCount() const
{
    std::size_t n = 0;
    for (const auto &lane : lanes_)
        n += lane.queue.size();
    return n;
}

std::vector<LiveRequest *>
MlqScheduler::waitingSnapshot() const
{
    std::vector<LiveRequest *> out;
    for (const auto &lane : lanes_)
        out.insert(out.end(), lane.queue.begin(), lane.queue.end());
    return out;
}

bool
MlqScheduler::tryBypass(Lane &lane, LiveRequest *blocked,
                        std::int64_t allowance, AdmissionContext &ctx,
                        std::vector<LiveRequest *> &admitted,
                        std::int64_t &consumed)
{
    // Find a younger request in the same queue whose admission is
    // possible right now (adapter resident or small enough).
    for (auto it = lane.queue.begin(); it != lane.queue.end(); ++it) {
        LiveRequest *r2 = *it;
        if (r2 == blocked)
            continue;
        const std::int64_t needed = tokenCost(r2);
        if (needed > allowance || ctx.admissionSlots <= 0 ||
            ctx.prefillTokenBudget <= 0) {
            continue;
        }
        // Guard: bypass only when the blocked request's memory will take
        // longer to appear than the bypasser's execution (§4.3.3).
        const sim::SimTime mem_free =
            ctx.estimateMemoryFree(blocked->adapterBytes);
        const sim::SimTime r2_exec = ctx.estimateExecTime(r2);
        if (mem_free != sim::kTimeNever && mem_free - ctx.now <= r2_exec)
            continue;
        if (ctx.tryReserve(r2) != ReserveResult::Ok)
            continue;
        lane.queue.erase(it);
        admitted.push_back(r2);
        admitted_.insert(r2);
        r2->quotaTokens = needed;
        lane.held += needed;
        consumed += needed;
        ctx.prefillTokenBudget -= r2->req.inputTokens;
        --ctx.admissionSlots;
        ctx.noteBypass();
        pendingBypasses_.push_back(PendingBypass{blocked, r2});
        return true;
    }
    return false;
}

std::int64_t
MlqScheduler::putBatch(Lane &lane, std::size_t laneIdx,
                       std::int64_t allowance, AdmissionContext &ctx,
                       std::vector<LiveRequest *> &admitted)
{
    (void)laneIdx;
    std::int64_t consumed = 0;
    while (!lane.queue.empty()) {
        LiveRequest *head = lane.queue.front();
        const std::int64_t needed = tokenCost(head);
        if (needed > allowance - consumed)
            break; // quota exhausted for this lane (Alg. 1)
        if (ctx.admissionSlots <= 0 || ctx.prefillTokenBudget <= 0)
            break; // iteration-level admission caps
        const ReserveResult res = ctx.tryReserve(head);
        if (res == ReserveResult::Ok) {
            lane.queue.pop_front();
            admitted.push_back(head);
            admitted_.insert(head);
            head->quotaTokens = needed;
            lane.held += needed;
            consumed += needed;
            ctx.prefillTokenBudget -= head->req.inputTokens;
            --ctx.admissionSlots;
            continue;
        }
        if (res == ReserveResult::NoAdapterMemory && config_.bypassEnabled) {
            tryBypass(lane, head, allowance - consumed, ctx, admitted,
                      consumed);
        }
        break; // head still blocked; preserve order within the lane
    }
    return consumed;
}

std::vector<LiveRequest *>
MlqScheduler::selectAdmissions(AdmissionContext &ctx)
{
    checkSquashes(ctx);

    std::vector<LiveRequest *> admitted;
    std::int64_t leftover = 0;

    // Phase 1: every queue admits within its own available quota,
    // small-request lanes first. Drained queues donate their spare.
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        Lane &lane = lanes_[i];
        const std::int64_t avail = std::max<std::int64_t>(
            0, lane.quota - lane.held);
        const std::int64_t consumed =
            putBatch(lane, i, avail, ctx, admitted);
        if (lane.queue.empty())
            leftover += avail - consumed;
    }

    // Phase 2: redistribute spare tokens, small lanes first.
    for (std::size_t i = 0; i < lanes_.size() && leftover > 0; ++i) {
        Lane &lane = lanes_[i];
        // putBatch records the holdings on the lane; the borrowed spare
        // tokens flow back to their home lanes when the requests finish.
        leftover -= putBatch(lane, i, leftover, ctx, admitted);
    }

    return admitted;
}

void
MlqScheduler::checkSquashes(AdmissionContext &ctx)
{
    auto it = pendingBypasses_.begin();
    while (it != pendingBypasses_.end()) {
        LiveRequest *r1 = it->blocked;
        LiveRequest *r2 = it->bypasser;
        const bool r1_moved = r1->phase != serving::RequestPhase::Waiting;
        const bool r2_done = r2->phase == serving::RequestPhase::Finished ||
                             r2->phase == serving::RequestPhase::Waiting;
        if (r1_moved || r2_done) {
            it = pendingBypasses_.erase(it);
            continue;
        }
        // Paper rule: if enough free memory (counting R2's holdings)
        // exists to run R1 before R2 finished, the prediction was wrong;
        // squash R2 for later re-execution.
        const std::int64_t r1_needs = r1->adapterBytes;
        if (ctx.freeBytes() + ctx.heldBytes(r2) >= r1_needs &&
            ctx.freeBytes() < r1_needs) {
            ctx.squashForBypass(r2);
            it = pendingBypasses_.erase(it);
            continue;
        }
        ++it;
    }
}

void
MlqScheduler::onRequestFinished(LiveRequest *r)
{
    if (admitted_.erase(r) == 0)
        return;
    const auto lane_idx = static_cast<std::size_t>(std::clamp<int>(
        r->queueIndex, 0, static_cast<int>(lanes_.size()) - 1));
    Lane &lane = lanes_[lane_idx];
    lane.held -= r->quotaTokens;
    r->quotaTokens = 0;
    // Service-duration statistics for quota assignment: processing time
    // excludes queueing (admission to completion).
    if (r->admitTime != sim::kTimeNever) {
        const ServiceSample sample{
            r->wrs, sim::toSeconds(r->finishTime - r->admitTime)};
        if (services_.size() < config_.sampleWindow) {
            services_.push_back(sample);
        } else {
            services_[serviceNext_] = sample;
            serviceNext_ = (serviceNext_ + 1) % config_.sampleWindow;
        }
        lane.serviceSecondsSum += sample.seconds;
        ++lane.servicesInWindow;
    }
}

void
MlqScheduler::redistributeWaiting(std::vector<LiveRequest *> waiting)
{
    std::sort(waiting.begin(), waiting.end(),
              [](const LiveRequest *a, const LiveRequest *b) {
                  return a->arrival < b->arrival;
              });
    for (auto &lane : lanes_)
        lane.queue.clear();
    for (LiveRequest *r : waiting) {
        const std::size_t lane = classify(r->wrs);
        r->queueIndex = static_cast<int>(lane);
        lanes_[lane].queue.push_back(r);
    }
    // Rebuild holdings of in-flight requests under the new lane map.
    for (auto &lane : lanes_)
        lane.held = 0;
    for (LiveRequest *r : admitted_) {
        const std::size_t lane = classify(r->wrs);
        r->queueIndex = static_cast<int>(lane);
        lanes_[lane].held += r->quotaTokens;
    }
}

void
MlqScheduler::reconfigure(sim::SimTime now)
{
    std::vector<double> wrs_values;
    wrs_values.reserve(samples_.size());
    for (const auto &s : samples_)
        wrs_values.push_back(s.wrs);

    const KMeansResult clusters =
        chooseClusters(wrs_values, config_.kMax, config_.kSelection,
                       config_.elbowThreshold);

    // Window duration for arrival rates: time since the last refresh.
    const double window_s =
        std::max(1.0, sim::toSeconds(now - lastRefresh_));

    std::vector<double> new_cutoffs;
    if (config_.dynamic) {
        new_cutoffs = centroidCutoffs(clusters.centroids);
    } else {
        // Static variant (Fig. 22): kMax equal WRS ranges over the
        // observed span, fixed after the first configuration.
        const auto [mn, mx] =
            std::minmax_element(wrs_values.begin(), wrs_values.end());
        for (int i = 1; i < config_.kMax; ++i) {
            new_cutoffs.push_back(*mn + (*mx - *mn) * i /
                                  static_cast<double>(config_.kMax));
        }
    }
    cutoffs_ = new_cutoffs;
    const std::size_t n_lanes = new_cutoffs.size() + 1;

    // Per-lane load statistics from the recent observation windows,
    // classified under the *new* cutoffs.
    std::vector<QueueLoadStats> stats(n_lanes);
    std::vector<std::int64_t> lane_arrivals(n_lanes, 0);
    std::vector<double> lane_max_tokens(n_lanes, 1.0);
    for (const auto &s : samples_) {
        const std::size_t lane = classify(s.wrs);
        ++lane_arrivals[lane];
        lane_max_tokens[lane] = std::max(
            lane_max_tokens[lane], static_cast<double>(s.tokens));
    }
    std::vector<double> lane_service_sum(n_lanes, 0.0);
    std::vector<std::int64_t> lane_service_cnt(n_lanes, 0);
    double global_service_sum = 0.0;
    std::int64_t global_service_cnt = 0;
    for (const auto &s : services_) {
        const std::size_t lane = classify(s.wrs);
        lane_service_sum[lane] += s.seconds;
        ++lane_service_cnt[lane];
        global_service_sum += s.seconds;
        ++global_service_cnt;
    }
    const double global_mean_service =
        global_service_cnt > 0
            ? global_service_sum / static_cast<double>(global_service_cnt)
            : 0.1;
    for (std::size_t i = 0; i < n_lanes; ++i) {
        stats[i].maxTokens = lane_max_tokens[i];
        stats[i].meanServiceSeconds =
            lane_service_cnt[i] > 0
                ? lane_service_sum[i] /
                      static_cast<double>(lane_service_cnt[i])
                : global_mean_service;
        stats[i].arrivalRate =
            static_cast<double>(lane_arrivals[i]) / window_s;
    }

    std::vector<std::int64_t> quotas;
    if (config_.dynamic) {
        quotas = assignQuotas(stats, config_.sloSeconds,
                              config_.totalTokens);
    } else {
        quotas.assign(n_lanes, config_.totalTokens /
                                   static_cast<std::int64_t>(n_lanes));
    }
    // Every lane must be able to admit its largest request, or it could
    // deadlock behind an unattainable quota.
    for (std::size_t i = 0; i < n_lanes; ++i) {
        quotas[i] = std::max(
            quotas[i], static_cast<std::int64_t>(lane_max_tokens[i]) + 1);
    }

    std::vector<LiveRequest *> waiting = waitingSnapshot();
    lanes_.assign(n_lanes, Lane{});
    for (std::size_t i = 0; i < lanes_.size(); ++i)
        lanes_[i].quota = quotas[i];
    redistributeWaiting(std::move(waiting));
    lastRefresh_ = now;
    ++reconfigs_;
}

void
MlqScheduler::onIterationEnd(sim::SimTime now)
{
    if (!bootstrapped_) {
        if (samples_.size() >= config_.warmupSamples) {
            reconfigure(now);
            bootstrapped_ = true;
        }
        return;
    }
    if (config_.dynamic && now - lastRefresh_ >= config_.refreshPeriod)
        reconfigure(now);
}

std::vector<std::int64_t>
MlqScheduler::quotas() const
{
    std::vector<std::int64_t> out;
    out.reserve(lanes_.size());
    for (const auto &lane : lanes_)
        out.push_back(lane.quota);
    return out;
}

} // namespace chameleon::core
