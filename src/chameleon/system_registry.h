/**
 * @file
 * String-keyed registry of system specs.
 *
 * Maps names to SystemSpecs so tools, benches, and tests select systems
 * by string instead of by enum. The global registry is pre-populated
 * with the paper's 13 preset systems; user code can register custom
 * specs. Lookup also understands a composition grammar:
 *
 *   base[+modifier...]
 *
 * where `base` is any registered name and each modifier adjusts one
 * policy axis: an eviction score (lru | fairshare | gdsf | paper), a
 * scheduler (fifo | sjf | mlq), an adapter policy (cache | ondemand),
 * prefetch[K] | noprefetch, bypass | nobypass, static | dynamic,
 * history | bert, chunked[N]. So "chameleon+gdsf+prefetch" is the full
 * system with GDSF eviction and predictive prefetch — no enum edit
 * required.
 */

#ifndef CHAMELEON_CHAMELEON_SYSTEM_REGISTRY_H
#define CHAMELEON_CHAMELEON_SYSTEM_REGISTRY_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chameleon/system_spec.h"

namespace chameleon::core {

/** Name -> SystemSpec catalogue with composition grammar. */
class SystemRegistry
{
  public:
    /** Starts with the paper's preset systems registered. */
    SystemRegistry();

    /** The process-wide registry used by tools and benches. */
    static SystemRegistry &global();

    /** Register (or replace) a spec under `name`. */
    void add(const std::string &name, SystemSpec spec,
             std::string description = "");

    /** Exact-name membership (no grammar). */
    bool has(const std::string &name) const;

    /**
     * Resolve a name, applying the composition grammar when the exact
     * name is not registered. Returns std::nullopt and fills `error`
     * (when non-null) with an actionable message on failure.
     */
    std::optional<SystemSpec> find(const std::string &name,
                                   std::string *error = nullptr) const;

    /** Like find(), but fails hard with the error message. */
    SystemSpec lookup(const std::string &name) const;

    /** Registered names, sorted (composition grammar not expanded). */
    std::vector<std::string> names() const;

    /** One-line description of a registered name ("" if none). */
    const std::string &description(const std::string &name) const;

    /** Modifier tokens accepted by the grammar, for help text. */
    static std::vector<std::string> modifierHelp();

  private:
    struct Entry
    {
        SystemSpec spec;
        std::string description;
    };

    static bool applyModifier(SystemSpec &spec, const std::string &token,
                              std::string *error);

    std::map<std::string, Entry> entries_;
};

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_SYSTEM_REGISTRY_H
