#include "chameleon/quota.h"

#include <algorithm>
#include <cmath>

#include "simkit/check.h"

namespace chameleon::core {

std::vector<std::int64_t>
assignQuotas(const std::vector<QueueLoadStats> &stats, double sloSeconds,
             std::int64_t totalTokens)
{
    CHM_CHECK(!stats.empty(), "quota assignment needs queues");
    CHM_CHECK(sloSeconds > 0, "SLO must be positive");
    CHM_CHECK(totalTokens > 0, "token pool must be positive");

    std::vector<double> minima;
    minima.reserve(stats.size());
    double min_sum = 0.0;
    for (const auto &q : stats) {
        const double tok_min = std::max(
            1.0, q.maxTokens * q.meanServiceSeconds *
                     (1.0 / sloSeconds + q.arrivalRate));
        minima.push_back(tok_min);
        min_sum += tok_min;
    }

    const auto total = static_cast<double>(totalTokens);
    std::vector<std::int64_t> quotas(stats.size(), 0);
    if (min_sum >= total) {
        // Oversubscribed: scale minima down proportionally.
        for (std::size_t i = 0; i < stats.size(); ++i) {
            quotas[i] = static_cast<std::int64_t>(
                std::floor(minima[i] / min_sum * total));
        }
    } else {
        // Minima plus surplus split proportionally to the minima
        // ("initial weights" in §4.3.5).
        const double surplus = total - min_sum;
        for (std::size_t i = 0; i < stats.size(); ++i) {
            quotas[i] = static_cast<std::int64_t>(std::floor(
                minima[i] + surplus * (minima[i] / min_sum)));
        }
    }
    for (auto &q : quotas)
        q = std::max<std::int64_t>(q, 1);
    return quotas;
}

} // namespace chameleon::core
