#include "chameleon/spec_json.h"

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/time.h"

namespace chameleon::core {

using sim::JsonValue;

namespace {

// ---------------------------------------------------------------------
// Printing.
// ---------------------------------------------------------------------

JsonValue
modelToJson(const model::ModelSpec &m)
{
    JsonValue o = JsonValue::makeObject();
    o.set("name", JsonValue::makeString(m.name));
    o.set("layers", JsonValue::makeInt(m.layers));
    o.set("hidden", JsonValue::makeInt(m.hidden));
    o.set("kv_hidden", JsonValue::makeInt(m.kvHidden));
    o.set("params", JsonValue::makeNumber(m.params));
    return o;
}

JsonValue
gpuToJson(const model::GpuSpec &g)
{
    JsonValue o = JsonValue::makeObject();
    o.set("name", JsonValue::makeString(g.name));
    o.set("fp16_flops", JsonValue::makeNumber(g.fp16Flops));
    o.set("mem_bandwidth", JsonValue::makeNumber(g.memBandwidth));
    o.set("mem_bytes", JsonValue::makeInt(g.memBytes));
    o.set("pcie_bandwidth", JsonValue::makeNumber(g.pcieBandwidth));
    o.set("pcie_setup_seconds", JsonValue::makeNumber(g.pcieSetupSeconds));
    return o;
}

JsonValue
costToJson(const model::CostParams &c)
{
    JsonValue o = JsonValue::makeObject();
    o.set("compute_util", JsonValue::makeNumber(c.computeUtil));
    o.set("mem_util", JsonValue::makeNumber(c.memUtil));
    o.set("prefill_fixed_ms", JsonValue::makeNumber(c.prefillFixedMs));
    o.set("mbgmm_fixed_ms", JsonValue::makeNumber(c.mbgmmFixedMs));
    o.set("lora_ineff", JsonValue::makeNumber(c.loraIneff));
    o.set("decode_fixed_ms", JsonValue::makeNumber(c.decodeFixedMs));
    o.set("decode_req_us", JsonValue::makeNumber(c.decodeReqUs));
    o.set("mbgmv_fixed_ms", JsonValue::makeNumber(c.mbgmvFixedMs));
    o.set("decode_rank_us", JsonValue::makeNumber(c.decodeRankUs));
    o.set("tp_sync_ms", JsonValue::makeNumber(c.tpSyncMs));
    o.set("tp_eff_loss_per_log2",
          JsonValue::makeNumber(c.tpEffLossPerLog2));
    return o;
}

JsonValue
engineToJson(const serving::EngineConfig &e)
{
    JsonValue o = JsonValue::makeObject();
    o.set("model", modelToJson(e.model));
    o.set("gpu", gpuToJson(e.gpu));
    o.set("tp_degree", JsonValue::makeInt(e.tpDegree));
    o.set("cost", costToJson(e.cost));
    o.set("workspace_per_gpu", JsonValue::makeInt(e.workspacePerGpu));
    o.set("admission_token_budget",
          JsonValue::makeInt(e.admissionTokenBudget));
    o.set("max_new_tokens", JsonValue::makeInt(e.maxNewTokens));
    // Derived from `reservation` by the Runner; kept for completeness.
    o.set("predicted_reservation",
          JsonValue::makeBool(e.predictedReservation));
    o.set("prefill_chunk_tokens",
          JsonValue::makeInt(e.prefillChunkTokens));
    o.set("max_admissions_per_iter",
          JsonValue::makeInt(e.maxAdmissionsPerIter));
    o.set("max_running", JsonValue::makeInt(e.maxRunning));
    o.set("kv_page_tokens", JsonValue::makeInt(e.kvPageTokens));
    o.set("mem_sample_period_s",
          JsonValue::makeNumber(sim::toSeconds(e.memSamplePeriod)));
    return o;
}

JsonValue
schedulerToJson(const SchedulerSpec &s)
{
    JsonValue o = JsonValue::makeObject();
    o.set("policy", JsonValue::makeString(schedulerPolicyName(s.policy)));
    o.set("sjf_aging_per_second",
          JsonValue::makeNumber(s.sjfAgingPerSecond));
    o.set("slo_seconds", JsonValue::makeNumber(s.sloSeconds));
    o.set("refresh_period_s",
          JsonValue::makeNumber(sim::toSeconds(s.refreshPeriod)));
    o.set("bypass", JsonValue::makeBool(s.bypass));
    o.set("dynamic_queues", JsonValue::makeBool(s.dynamicQueues));
    o.set("wrs_form", JsonValue::makeString(wrsFormName(s.wrsForm)));
    return o;
}

JsonValue
adaptersToJson(const AdapterSpec &a)
{
    JsonValue o = JsonValue::makeObject();
    o.set("policy", JsonValue::makeString(adapterPolicyName(a.policy)));
    o.set("eviction",
          JsonValue::makeString(evictionPolicyName(a.eviction)));
    o.set("predictive_prefetch",
          JsonValue::makeBool(a.predictivePrefetch));
    o.set("prefetch_top_k",
          JsonValue::makeInt(static_cast<std::int64_t>(a.prefetchTopK)));
    return o;
}

JsonValue
predictorToJson(const PredictorSpec &p)
{
    JsonValue o = JsonValue::makeObject();
    o.set("kind", JsonValue::makeString(p.kind));
    o.set("accuracy", JsonValue::makeNumber(p.accuracy));
    o.set("seed", JsonValue::makeUint64(p.seed));
    return o;
}

JsonValue
clusterToJson(const ClusterSpec &c)
{
    JsonValue o = JsonValue::makeObject();
    if (c.replicaEngines.empty()) {
        o.set("replicas", JsonValue::makeInt(c.replicas));
    } else {
        // Heterogeneous fleet: "replicas" becomes the ordered list of
        // fully resolved per-replica engines. Printing every field
        // (rather than a diff against "engine") keeps the round trip
        // exact whatever base the overrides were applied onto.
        JsonValue list = JsonValue::makeArray();
        for (const auto &engine : c.replicaEngines)
            list.push(engineToJson(engine));
        o.set("replicas", std::move(list));
    }
    o.set("router",
          JsonValue::makeString(routing::routerPolicyName(c.router)));
    JsonValue rc = JsonValue::makeObject();
    rc.set("seed", JsonValue::makeUint64(c.routerConfig.seed));
    rc.set("virtual_nodes",
           JsonValue::makeInt(c.routerConfig.virtualNodes));
    rc.set("spill_load_factor",
           JsonValue::makeNumber(c.routerConfig.spillLoadFactor));
    rc.set("spill_margin", JsonValue::makeInt(c.routerConfig.spillMargin));
    rc.set("slo_admission",
           JsonValue::makeBool(c.routerConfig.sloAdmission));
    o.set("router_config", std::move(rc));
    o.set("autoscale", JsonValue::makeBool(c.autoscale));
    JsonValue as = JsonValue::makeObject();
    as.set("min_replicas",
           JsonValue::makeInt(
               static_cast<std::int64_t>(c.autoscaler.minReplicas)));
    as.set("max_replicas",
           JsonValue::makeInt(
               static_cast<std::int64_t>(c.autoscaler.maxReplicas)));
    as.set("eval_period_s",
           JsonValue::makeNumber(c.autoscaler.evalPeriodSeconds));
    as.set("high_watermark",
           JsonValue::makeNumber(c.autoscaler.highWatermark));
    as.set("low_watermark",
           JsonValue::makeNumber(c.autoscaler.lowWatermark));
    as.set("forecast_horizon_s",
           JsonValue::makeNumber(c.autoscaler.forecastHorizonSeconds));
    as.set("forecast_window_s",
           JsonValue::makeNumber(c.autoscaler.forecastWindowSeconds));
    as.set("replica_service_rps",
           JsonValue::makeNumber(c.autoscaler.replicaServiceRps));
    as.set("up_cooldown_periods",
           JsonValue::makeInt(c.autoscaler.upCooldownPeriods));
    as.set("down_cooldown_periods",
           JsonValue::makeInt(c.autoscaler.downCooldownPeriods));
    as.set("boot_ms", JsonValue::makeNumber(c.autoscaler.bootMs));
    as.set("scale_up_policy",
           JsonValue::makeString(routing::scaleUpPolicyName(
               c.autoscaler.scaleUpPolicy)));
    as.set("measured_rate_alpha",
           JsonValue::makeNumber(c.autoscaler.measuredRateAlpha));
    as.set("demand_source",
           JsonValue::makeString(
               routing::demandSourceName(c.autoscaler.demandSource)));
    as.set("boot_aware_horizon",
           JsonValue::makeBool(c.autoscaler.bootAwareHorizon));
    o.set("autoscaler", std::move(as));
    return o;
}

JsonValue
fabricToJson(const FabricSpec &f)
{
    JsonValue o = JsonValue::makeObject();
    o.set("migration",
          JsonValue::makeString(
              fabric::migrationPolicyName(f.migration)));
    o.set("topology",
          JsonValue::makeString(fabric::topologyName(f.topology)));
    o.set("top_k",
          JsonValue::makeInt(static_cast<std::int64_t>(f.topK)));
    return o;
}

JsonValue
tenancyToJson(const TenancySpec &t)
{
    JsonValue o = JsonValue::makeObject();
    o.set("tenants", JsonValue::makeInt(t.tenants));
    JsonValue weights = JsonValue::makeArray();
    for (const double w : t.weights)
        weights.push(JsonValue::makeNumber(w));
    o.set("weights", std::move(weights));
    JsonValue slos = JsonValue::makeArray();
    for (const double m : t.sloMultipliers)
        slos.push(JsonValue::makeNumber(m));
    o.set("slo_multipliers", std::move(slos));
    o.set("drr_quantum_tokens", JsonValue::makeInt(t.drrQuantumTokens));
    return o;
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/** Number of seconds -> SimTime, via a JsonObjectReader key. */
bool
getSeconds(sim::JsonObjectReader &r, const std::string &key,
           sim::SimTime *out)
{
    double seconds = sim::toSeconds(*out);
    if (!r.getDouble(key, &seconds))
        return false;
    *out = sim::fromSeconds(seconds);
    return true;
}

bool
modelFromJson(const JsonValue &v, const std::string &path,
              model::ModelSpec *out, std::string *error)
{
    if (v.isString()) {
        const std::string &name = v.asString();
        if (!model::tryModelByName(name, out)) {
            if (error != nullptr)
                *error = "\"" + path + "\" unknown model preset \"" +
                         name + "\"; known: " +
                         model::modelPresetNames() +
                         " (or a full model object)";
            return false;
        }
        return true;
    }
    sim::JsonObjectReader r(v, path, error);
    r.getString("name", &out->name);
    r.getInt("layers", &out->layers);
    r.getInt("hidden", &out->hidden);
    r.getInt("kv_hidden", &out->kvHidden);
    r.getDouble("params", &out->params);
    return r.finish();
}

bool
gpuFromJson(const JsonValue &v, const std::string &path,
            model::GpuSpec *out, std::string *error)
{
    if (v.isString()) {
        const std::string &name = v.asString();
        if (!model::tryGpuByName(name, out)) {
            if (error != nullptr)
                *error = "\"" + path + "\" unknown gpu preset \"" +
                         name + "\"; known: " +
                         model::gpuPresetNames() +
                         " (or a full gpu object)";
            return false;
        }
        return true;
    }
    sim::JsonObjectReader r(v, path, error);
    r.getString("name", &out->name);
    r.getDouble("fp16_flops", &out->fp16Flops);
    r.getDouble("mem_bandwidth", &out->memBandwidth);
    r.getInt64("mem_bytes", &out->memBytes);
    r.getDouble("pcie_bandwidth", &out->pcieBandwidth);
    r.getDouble("pcie_setup_seconds", &out->pcieSetupSeconds);
    return r.finish();
}

bool
costFromJson(const JsonValue &v, const std::string &path,
             model::CostParams *out, std::string *error)
{
    sim::JsonObjectReader r(v, path, error);
    r.getDouble("compute_util", &out->computeUtil);
    r.getDouble("mem_util", &out->memUtil);
    r.getDouble("prefill_fixed_ms", &out->prefillFixedMs);
    r.getDouble("mbgmm_fixed_ms", &out->mbgmmFixedMs);
    r.getDouble("lora_ineff", &out->loraIneff);
    r.getDouble("decode_fixed_ms", &out->decodeFixedMs);
    r.getDouble("decode_req_us", &out->decodeReqUs);
    r.getDouble("mbgmv_fixed_ms", &out->mbgmvFixedMs);
    r.getDouble("decode_rank_us", &out->decodeRankUs);
    r.getDouble("tp_sync_ms", &out->tpSyncMs);
    r.getDouble("tp_eff_loss_per_log2", &out->tpEffLossPerLog2);
    return r.finish();
}

bool
schedulerFromJson(const JsonValue &v, const std::string &path,
                  SchedulerSpec *out, std::string *error)
{
    sim::JsonObjectReader r(v, path, error);
    r.getEnum("policy", &out->policy, schedulerPolicyByName,
              "fifo, sjf, mlq, wfq, drr");
    r.getDouble("sjf_aging_per_second", &out->sjfAgingPerSecond);
    r.getDouble("slo_seconds", &out->sloSeconds);
    getSeconds(r, "refresh_period_s", &out->refreshPeriod);
    r.getBool("bypass", &out->bypass);
    r.getBool("dynamic_queues", &out->dynamicQueues);
    r.getEnum("wrs_form", &out->wrsForm, wrsFormByName,
              "degree2, degree1, output-only");
    return r.finish();
}

bool
adaptersFromJson(const JsonValue &v, const std::string &path,
                 AdapterSpec *out, std::string *error)
{
    sim::JsonObjectReader r(v, path, error);
    r.getEnum("policy", &out->policy, adapterPolicyByName,
              "on-demand, slora, chameleon-cache");
    r.getEnum("eviction", &out->eviction, evictionPolicyByName,
              "chameleon, lru, fairshare, gdsf");
    r.getBool("predictive_prefetch", &out->predictivePrefetch);
    r.getSize("prefetch_top_k", &out->prefetchTopK);
    return r.finish();
}

/** An array of numbers; empty allowed (= "use the defaults"). */
bool
numberList(sim::JsonObjectReader &r, const std::string &key,
           std::vector<double> *out)
{
    const JsonValue *v = r.child(key);
    if (v == nullptr)
        return r.ok();
    if (!v->isArray())
        return r.fail(key, "expects an array of numbers");
    out->clear();
    for (const auto &item : v->items()) {
        if (!item.isNumber())
            return r.fail(key, "expects an array of numbers");
        out->push_back(item.asNumber());
    }
    return true;
}

bool
tenancyFromJson(const JsonValue &v, const std::string &path,
                TenancySpec *out, std::string *error)
{
    sim::JsonObjectReader r(v, path, error);
    r.getInt("tenants", &out->tenants);
    if (!numberList(r, "weights", &out->weights))
        return false;
    if (!numberList(r, "slo_multipliers", &out->sloMultipliers))
        return false;
    r.getInt64("drr_quantum_tokens", &out->drrQuantumTokens);
    return r.finish();
}

bool
clusterFromJson(const JsonValue &v, const std::string &path,
                const serving::EngineConfig &baseEngine, ClusterSpec *out,
                std::string *error)
{
    sim::JsonObjectReader r(v, path, error);
    // "replicas" is polymorphic: an integer count (homogeneous fleet,
    // every replica from the top-level "engine") or an ordered array
    // of per-replica engine overrides applied onto that base engine.
    // "fleet" is a shorthand for the array form: a GPU-mix preset like
    // "a100x2+a40x2" expands to one base-engine replica per GPU.
    const JsonValue *replicas = r.child("replicas");
    const JsonValue *fleet = r.child("fleet");
    if (replicas != nullptr && fleet != nullptr) {
        return r.fail("fleet",
                      "conflicts with \"" + path +
                          ".replicas\"; the fleet preset already "
                          "defines the replica count and GPU mix");
    }
    if (replicas != nullptr) {
        if (replicas->isArray()) {
            if (replicas->items().empty()) {
                return r.fail("replicas",
                              "must not be an empty array; use an "
                              "integer count for a homogeneous fleet");
            }
            out->replicaEngines.clear();
            for (std::size_t i = 0; i < replicas->items().size(); ++i) {
                const JsonValue &entry = replicas->items()[i];
                std::ostringstream entryPath;
                entryPath << path << ".replicas[" << i << "]";
                serving::EngineConfig cfg = baseEngine;
                if (entry.isString()) {
                    // Bare string = GPU-preset shorthand.
                    if (!model::tryGpuByName(entry.asString(),
                                             &cfg.gpu)) {
                        if (error != nullptr)
                            *error = "\"" + entryPath.str() +
                                     "\" unknown gpu preset \"" +
                                     entry.asString() + "\"; known: " +
                                     model::gpuPresetNames() +
                                     " (or an engine-override object)";
                        return false;
                    }
                } else if (!engineFromJson(entry, entryPath.str(), &cfg,
                                           error)) {
                    return false;
                }
                out->replicaEngines.push_back(std::move(cfg));
            }
            out->replicas =
                static_cast<int>(out->replicaEngines.size());
        } else if (replicas->isNumber() && replicas->isIntegral() &&
                   !replicas->isUnsignedIntegral() &&
                   replicas->asInt() >=
                       std::numeric_limits<int>::min() &&
                   replicas->asInt() <=
                       std::numeric_limits<int>::max()) {
            out->replicas = static_cast<int>(replicas->asInt());
        } else {
            return r.fail("replicas",
                          "expects an integer count or an array of "
                          "per-replica engine overrides");
        }
    }
    if (fleet != nullptr) {
        if (!fleet->isString()) {
            return r.fail("fleet", "expects a fleet-preset string: " +
                                       model::fleetGrammarHelp());
        }
        std::vector<model::GpuSpec> gpus;
        if (!model::tryFleetByName(fleet->asString(), &gpus)) {
            return r.fail("fleet", "unknown fleet preset \"" +
                                       fleet->asString() +
                                       "\"; expected " +
                                       model::fleetGrammarHelp());
        }
        out->replicaEngines = serving::fleetEngines(baseEngine, gpus);
        out->replicas = static_cast<int>(out->replicaEngines.size());
    }
    r.getEnum("router", &out->router, routing::routerPolicyByName,
              routing::routerPolicyNames());
    if (const JsonValue *rc = r.child("router_config")) {
        sim::JsonObjectReader rr(*rc, path + ".router_config", error);
        rr.getUint64("seed", &out->routerConfig.seed);
        rr.getInt("virtual_nodes", &out->routerConfig.virtualNodes);
        rr.getDouble("spill_load_factor",
                     &out->routerConfig.spillLoadFactor);
        rr.getInt64("spill_margin", &out->routerConfig.spillMargin);
        rr.getBool("slo_admission", &out->routerConfig.sloAdmission);
        if (!rr.finish())
            return false;
    }
    r.getBool("autoscale", &out->autoscale);
    if (const JsonValue *as = r.child("autoscaler")) {
        if (!autoscalerFromJson(*as, path + ".autoscaler",
                                &out->autoscaler, error))
            return false;
    }
    return r.finish();
}

} // namespace

JsonValue
specToJsonValue(const SystemSpec &spec)
{
    JsonValue root = JsonValue::makeObject();
    root.set("name", JsonValue::makeString(spec.name));
    root.set("engine", engineToJson(spec.engine));
    root.set("scheduler", schedulerToJson(spec.scheduler));
    root.set("adapters", adaptersToJson(spec.adapters));
    root.set("predictor", predictorToJson(spec.predictor));
    root.set("cluster", clusterToJson(spec.cluster));
    root.set("tenancy", tenancyToJson(spec.tenancy));
    root.set("fabric", fabricToJson(spec.fabric));
    root.set("reservation",
             JsonValue::makeString(reservationPolicyName(spec.reservation)));
    root.set("chunked_prefill", JsonValue::makeBool(spec.chunkedPrefill));
    root.set("chunk_tokens", JsonValue::makeInt(spec.chunkTokens));
    return root;
}

std::string
specToJson(const SystemSpec &spec)
{
    return specToJsonValue(spec).dump();
}

bool
engineFromJson(const JsonValue &obj, const std::string &path,
               serving::EngineConfig *out, std::string *error)
{
    sim::JsonObjectReader r(obj, path, error);
    if (const JsonValue *m = r.child("model")) {
        if (!modelFromJson(*m, path + ".model", &out->model, error))
            return false;
    }
    if (const JsonValue *g = r.child("gpu")) {
        if (!gpuFromJson(*g, path + ".gpu", &out->gpu, error))
            return false;
    }
    r.getInt("tp_degree", &out->tpDegree);
    if (const JsonValue *c = r.child("cost")) {
        if (!costFromJson(*c, path + ".cost", &out->cost, error))
            return false;
    }
    r.getInt64("workspace_per_gpu", &out->workspacePerGpu);
    r.getInt64("admission_token_budget", &out->admissionTokenBudget);
    r.getInt64("max_new_tokens", &out->maxNewTokens);
    r.getBool("predicted_reservation", &out->predictedReservation);
    r.getInt64("prefill_chunk_tokens", &out->prefillChunkTokens);
    r.getInt("max_admissions_per_iter", &out->maxAdmissionsPerIter);
    r.getInt("max_running", &out->maxRunning);
    r.getInt("kv_page_tokens", &out->kvPageTokens);
    getSeconds(r, "mem_sample_period_s", &out->memSamplePeriod);
    return r.finish();
}

bool
predictorFromJson(const JsonValue &obj, const std::string &path,
                  PredictorSpec *out, std::string *error)
{
    sim::JsonObjectReader r(obj, path, error);
    r.getString("kind", &out->kind);
    r.getDouble("accuracy", &out->accuracy);
    r.getUint64("seed", &out->seed);
    return r.finish();
}

bool
fabricFromJson(const JsonValue &obj, const std::string &path,
               FabricSpec *out, std::string *error)
{
    sim::JsonObjectReader r(obj, path, error);
    r.getEnum("migration", &out->migration,
              fabric::migrationPolicyByName,
              fabric::migrationPolicyNames());
    r.getEnum("topology", &out->topology, fabric::topologyByName,
              fabric::topologyNames());
    r.getSize("top_k", &out->topK);
    return r.finish();
}

bool
autoscalerFromJson(const JsonValue &obj, const std::string &path,
                   routing::AutoscalerConfig *out, std::string *error)
{
    sim::JsonObjectReader r(obj, path, error);
    r.getSize("min_replicas", &out->minReplicas);
    r.getSize("max_replicas", &out->maxReplicas);
    r.getDouble("eval_period_s", &out->evalPeriodSeconds);
    r.getDouble("high_watermark", &out->highWatermark);
    r.getDouble("low_watermark", &out->lowWatermark);
    r.getDouble("forecast_horizon_s", &out->forecastHorizonSeconds);
    r.getDouble("forecast_window_s", &out->forecastWindowSeconds);
    r.getDouble("replica_service_rps", &out->replicaServiceRps);
    r.getInt("up_cooldown_periods", &out->upCooldownPeriods);
    r.getInt("down_cooldown_periods", &out->downCooldownPeriods);
    r.getDouble("boot_ms", &out->bootMs);
    r.getEnum("scale_up_policy", &out->scaleUpPolicy,
              routing::scaleUpPolicyByName, routing::scaleUpPolicyNames());
    r.getDouble("measured_rate_alpha", &out->measuredRateAlpha);
    r.getEnum("demand_source", &out->demandSource,
              routing::demandSourceByName, routing::demandSourceNames());
    r.getBool("boot_aware_horizon", &out->bootAwareHorizon);
    return r.finish();
}

namespace {

/** Uniform "spec json: " prefix on whatever a nested reader wrote. */
std::optional<SystemSpec>
specParseFailure(std::string *error)
{
    if (error != nullptr && error->rfind("spec json:", 0) != 0)
        *error = "spec json: " + *error;
    return std::nullopt;
}

} // namespace

std::optional<SystemSpec>
specFromJsonValue(const JsonValue &root, std::string *error)
{
    SystemSpec spec;
    // The documented parse base: the paper testbed's hardware under the
    // default (full Chameleon) axes, so `{}` is a runnable config.
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();

    sim::JsonObjectReader r(root, "", error);
    r.getString("name", &spec.name);
    if (const JsonValue *e = r.child("engine")) {
        if (!engineFromJson(*e, "engine", &spec.engine, error))
            return specParseFailure(error);
    }
    if (const JsonValue *s = r.child("scheduler")) {
        if (!schedulerFromJson(*s, "scheduler", &spec.scheduler, error))
            return specParseFailure(error);
    }
    if (const JsonValue *a = r.child("adapters")) {
        if (!adaptersFromJson(*a, "adapters", &spec.adapters, error))
            return specParseFailure(error);
    }
    if (const JsonValue *p = r.child("predictor")) {
        if (!predictorFromJson(*p, "predictor", &spec.predictor, error))
            return specParseFailure(error);
    }
    // Parsed after "engine" on purpose: per-replica overrides in
    // "cluster.replicas"/"cluster.fleet" apply onto the parsed base
    // engine, wherever the keys appeared in the document.
    if (const JsonValue *c = r.child("cluster")) {
        if (!clusterFromJson(*c, "cluster", spec.engine, &spec.cluster,
                             error))
            return specParseFailure(error);
    }
    if (const JsonValue *t = r.child("tenancy")) {
        if (!tenancyFromJson(*t, "tenancy", &spec.tenancy, error))
            return specParseFailure(error);
    }
    if (const JsonValue *f = r.child("fabric")) {
        if (!fabricFromJson(*f, "fabric", &spec.fabric, error))
            return specParseFailure(error);
    }
    r.getEnum("reservation", &spec.reservation, reservationPolicyByName,
              "auto, max-tokens, predicted");
    r.getBool("chunked_prefill", &spec.chunkedPrefill);
    r.getInt64("chunk_tokens", &spec.chunkTokens);
    if (!r.finish())
        return specParseFailure(error);

    const auto problems = spec.validate();
    if (!problems.empty()) {
        if (error != nullptr) {
            std::ostringstream os;
            os << "spec json: \"" << spec.name
               << "\" parses but fails validation:";
            for (const auto &p : problems)
                os << "\n  - " << p;
            *error = os.str();
        }
        return std::nullopt;
    }
    return spec;
}

std::optional<SystemSpec>
specFromJson(const std::string &text, std::string *error)
{
    std::string parseError;
    auto doc = sim::parseJson(text, &parseError);
    if (!doc.has_value()) {
        if (error != nullptr)
            *error = "spec json: " + parseError;
        return std::nullopt;
    }
    return specFromJsonValue(*doc, error);
}

} // namespace chameleon::core
