#include "chameleon/system_spec.h"

#include <sstream>

namespace chameleon::core {

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Fifo: return "fifo";
      case SchedulerPolicy::Sjf: return "sjf";
      case SchedulerPolicy::Mlq: return "mlq";
      case SchedulerPolicy::Wfq: return "wfq";
      case SchedulerPolicy::Drr: return "drr";
    }
    return "?";
}

const char *
adapterPolicyName(AdapterPolicy policy)
{
    switch (policy) {
      case AdapterPolicy::OnDemand: return "on-demand";
      case AdapterPolicy::SLora: return "slora";
      case AdapterPolicy::ChameleonCache: return "chameleon-cache";
    }
    return "?";
}

const char *
evictionPolicyName(EvictionKind policy)
{
    switch (policy) {
      case EvictionKind::Paper: return "chameleon";
      case EvictionKind::Lru: return "lru";
      case EvictionKind::FairShare: return "fairshare";
      case EvictionKind::Gdsf: return "gdsf";
    }
    return "?";
}

const char *
reservationPolicyName(ReservationPolicy policy)
{
    switch (policy) {
      case ReservationPolicy::Auto: return "auto";
      case ReservationPolicy::MaxTokens: return "max-tokens";
      case ReservationPolicy::Predicted: return "predicted";
    }
    return "?";
}

bool
schedulerPolicyByName(const std::string &name, SchedulerPolicy *out)
{
    if (name == "fifo")
        *out = SchedulerPolicy::Fifo;
    else if (name == "sjf")
        *out = SchedulerPolicy::Sjf;
    else if (name == "mlq")
        *out = SchedulerPolicy::Mlq;
    else if (name == "wfq")
        *out = SchedulerPolicy::Wfq;
    else if (name == "drr")
        *out = SchedulerPolicy::Drr;
    else
        return false;
    return true;
}

bool
adapterPolicyByName(const std::string &name, AdapterPolicy *out)
{
    if (name == "on-demand")
        *out = AdapterPolicy::OnDemand;
    else if (name == "slora")
        *out = AdapterPolicy::SLora;
    else if (name == "chameleon-cache")
        *out = AdapterPolicy::ChameleonCache;
    else
        return false;
    return true;
}

bool
evictionPolicyByName(const std::string &name, EvictionKind *out)
{
    if (name == "chameleon")
        *out = EvictionKind::Paper;
    else if (name == "lru")
        *out = EvictionKind::Lru;
    else if (name == "fairshare")
        *out = EvictionKind::FairShare;
    else if (name == "gdsf")
        *out = EvictionKind::Gdsf;
    else
        return false;
    return true;
}

bool
reservationPolicyByName(const std::string &name, ReservationPolicy *out)
{
    if (name == "auto")
        *out = ReservationPolicy::Auto;
    else if (name == "max-tokens")
        *out = ReservationPolicy::MaxTokens;
    else if (name == "predicted")
        *out = ReservationPolicy::Predicted;
    else
        return false;
    return true;
}

const std::vector<EvictionKind> &
allEvictionPolicies()
{
    static const std::vector<EvictionKind> all{
        EvictionKind::Paper, EvictionKind::Lru,
        EvictionKind::FairShare, EvictionKind::Gdsf};
    return all;
}

double
TenancySpec::weightFor(int tenant) const
{
    if (tenant < 0 || tenant >= static_cast<int>(weights.size()))
        return 1.0;
    return weights[static_cast<std::size_t>(tenant)];
}

double
TenancySpec::sloMultiplierFor(int tenant) const
{
    if (tenant < 0 || tenant >= static_cast<int>(sloMultipliers.size()))
        return 1.0;
    return sloMultipliers[static_cast<std::size_t>(tenant)];
}

SystemSpec &
SystemSpec::named(std::string n)
{
    name = std::move(n);
    return *this;
}

SystemSpec &
SystemSpec::withScheduler(SchedulerPolicy p)
{
    scheduler.policy = p;
    return *this;
}

SystemSpec &
SystemSpec::withEviction(EvictionKind e)
{
    adapters.policy = AdapterPolicy::ChameleonCache;
    adapters.eviction = e;
    return *this;
}

SystemSpec &
SystemSpec::withPrefetch(std::size_t topK)
{
    adapters.predictivePrefetch = true;
    adapters.prefetchTopK = topK;
    return *this;
}

SystemSpec &
SystemSpec::withReplicas(int replicas, routing::RouterPolicy router)
{
    cluster.replicas = replicas;
    cluster.router = router;
    return *this;
}

SystemSpec &
SystemSpec::withFleet(const std::vector<model::GpuSpec> &gpus,
                      routing::RouterPolicy router)
{
    cluster.replicas = static_cast<int>(gpus.size());
    cluster.router = router;
    cluster.replicaEngines = serving::fleetEngines(engine, gpus);
    return *this;
}

const serving::EngineConfig &
SystemSpec::resolvedEngine(std::size_t replica) const
{
    if (replica < cluster.replicaEngines.size())
        return cluster.replicaEngines[replica];
    return engine;
}

std::vector<std::string>
SystemSpec::validate() const
{
    std::vector<std::string> errors;
    auto err = [&errors](const std::ostringstream &os) {
        errors.push_back(os.str());
    };

    if (cluster.replicas < 1) {
        std::ostringstream os;
        os << "cluster.replicas must be >= 1 (got " << cluster.replicas
           << "); replicas = 1 means a single engine";
        err(os);
    }
    if (!cluster.replicaEngines.empty() &&
        static_cast<int>(cluster.replicaEngines.size()) !=
            cluster.replicas) {
        std::ostringstream os;
        os << "cluster.replicaEngines has "
           << cluster.replicaEngines.size() << " per-replica overrides "
           << "but cluster.replicas = " << cluster.replicas
           << "; give exactly one override per replica (or clear the "
           << "list for a homogeneous fleet)";
        err(os);
    }
    for (std::size_t i = 0; i < cluster.replicaEngines.size(); ++i) {
        if (cluster.replicaEngines[i].tpDegree < 1) {
            std::ostringstream os;
            os << "cluster.replicaEngines[" << i
               << "].tpDegree must be >= 1 (got "
               << cluster.replicaEngines[i].tpDegree << ")";
            err(os);
        }
    }
    if (engine.tpDegree < 1) {
        std::ostringstream os;
        os << "engine.tpDegree must be >= 1 (got " << engine.tpDegree
           << ")";
        err(os);
    }
    if (chunkedPrefill && chunkTokens <= 0) {
        std::ostringstream os;
        os << "chunked prefill enabled with non-positive chunk size ("
           << chunkTokens << "); set chunkTokens > 0 or disable "
           << "chunkedPrefill";
        err(os);
    }
    if (adapters.predictivePrefetch && adapters.prefetchTopK == 0) {
        std::ostringstream os;
        os << "predictive prefetch enabled with prefetchTopK = 0; set "
           << "adapters.prefetchTopK (paper uses 8)";
        err(os);
    }
    if (!adapters.predictivePrefetch && adapters.prefetchTopK > 0) {
        std::ostringstream os;
        os << "adapters.prefetchTopK = " << adapters.prefetchTopK
           << " without prefetch enabled; set "
           << "adapters.predictivePrefetch = true (or clear prefetchTopK)";
        err(os);
    }
    if (adapters.predictivePrefetch &&
        adapters.policy != AdapterPolicy::ChameleonCache) {
        std::ostringstream os;
        os << "predictive prefetch requires the chameleon cache; set "
           << "adapters.policy = AdapterPolicy::ChameleonCache (got "
           << adapterPolicyName(adapters.policy) << ")";
        err(os);
    }
    if (adapters.eviction != EvictionKind::Paper &&
        adapters.policy != AdapterPolicy::ChameleonCache) {
        std::ostringstream os;
        os << "eviction policy '" << evictionPolicyName(adapters.eviction)
           << "' requires the chameleon cache; set adapters.policy = "
           << "AdapterPolicy::ChameleonCache (got "
           << adapterPolicyName(adapters.policy) << ")";
        err(os);
    }
    if (predictor.kind != "bert" && predictor.kind != "history") {
        std::ostringstream os;
        os << "unknown predictor kind '" << predictor.kind
           << "'; use \"bert\" or \"history\"";
        err(os);
    }
    if (predictor.accuracy < 0.0 || predictor.accuracy > 1.0) {
        std::ostringstream os;
        os << "predictor.accuracy must be within [0, 1] (got "
           << predictor.accuracy << ")";
        err(os);
    }
    if (scheduler.policy == SchedulerPolicy::Mlq &&
        scheduler.sloSeconds <= 0.0) {
        std::ostringstream os;
        os << "MLQ quota assignment needs scheduler.sloSeconds > 0 (got "
           << scheduler.sloSeconds << ")";
        err(os);
    }
    if (tenancy.tenants < 1) {
        std::ostringstream os;
        os << "tenancy.tenants must be >= 1 (got " << tenancy.tenants
           << "); 1 means the anonymous single-tenant default";
        err(os);
    }
    if (!tenancy.weights.empty() &&
        static_cast<int>(tenancy.weights.size()) != tenancy.tenants) {
        std::ostringstream os;
        os << "tenancy.weights has " << tenancy.weights.size()
           << " entries but tenancy.tenants = " << tenancy.tenants
           << "; give one weight per tenant (or clear the list for "
           << "equal weights)";
        err(os);
    }
    for (std::size_t i = 0; i < tenancy.weights.size(); ++i) {
        if (tenancy.weights[i] <= 0.0) {
            std::ostringstream os;
            os << "tenancy.weights[" << i << "] must be > 0 (got "
               << tenancy.weights[i] << ")";
            err(os);
        }
    }
    if (!tenancy.sloMultipliers.empty() &&
        static_cast<int>(tenancy.sloMultipliers.size()) !=
            tenancy.tenants) {
        std::ostringstream os;
        os << "tenancy.sloMultipliers has " << tenancy.sloMultipliers.size()
           << " entries but tenancy.tenants = " << tenancy.tenants
           << "; give one multiplier per tenant (or clear the list)";
        err(os);
    }
    for (std::size_t i = 0; i < tenancy.sloMultipliers.size(); ++i) {
        if (tenancy.sloMultipliers[i] <= 0.0) {
            std::ostringstream os;
            os << "tenancy.sloMultipliers[" << i << "] must be > 0 (got "
               << tenancy.sloMultipliers[i] << ")";
            err(os);
        }
    }
    if (tenancy.drrQuantumTokens <= 0) {
        std::ostringstream os;
        os << "tenancy.drrQuantumTokens must be > 0 (got "
           << tenancy.drrQuantumTokens << "); it is the per-round DRR "
           << "credit in prefill tokens";
        err(os);
    }
    if (fabricEnabled() &&
        adapters.policy != AdapterPolicy::ChameleonCache) {
        std::ostringstream os;
        os << "the cache fabric (migration '"
           << fabric::migrationPolicyName(fabric.migration)
           << "', router '" << routing::routerPolicyName(cluster.router)
           << "') needs residency callbacks only the chameleon cache "
           << "reports; set adapters.policy = "
           << "AdapterPolicy::ChameleonCache (got "
           << adapterPolicyName(adapters.policy) << ")";
        err(os);
    }
    if (fabric.topK < 1) {
        std::ostringstream os;
        os << "fabric.topK must be >= 1 (got " << fabric.topK
           << "); it is the hot-adapter window per migration trigger";
        err(os);
    }
    if (cluster.autoscale) {
        if (cluster.autoscaler.minReplicas < 1) {
            errors.push_back(
                "autoscaler.minReplicas must be >= 1; a cluster cannot "
                "drain to zero replicas");
        }
        if (cluster.autoscaler.maxReplicas <
            cluster.autoscaler.minReplicas) {
            std::ostringstream os;
            os << "autoscaler.maxReplicas ("
               << cluster.autoscaler.maxReplicas
               << ") must be >= minReplicas ("
               << cluster.autoscaler.minReplicas << ")";
            err(os);
        }
        if (cluster.autoscaler.bootMs < 0.0) {
            std::ostringstream os;
            os << "autoscaler.bootMs must be >= 0 (got "
               << cluster.autoscaler.bootMs
               << "); 0 disables the cold-start model";
            err(os);
        }
        if (cluster.autoscaler.measuredRateAlpha < 0.0 ||
            cluster.autoscaler.measuredRateAlpha > 1.0) {
            std::ostringstream os;
            os << "autoscaler.measuredRateAlpha must be within [0, 1] "
               << "(got " << cluster.autoscaler.measuredRateAlpha
               << "); 0 keeps the static nominal routing weights";
            err(os);
        }
        if (cluster.autoscaler.demandSource ==
                routing::DemandSource::Measured &&
            cluster.autoscaler.measuredRateAlpha <= 0.0) {
            std::ostringstream os;
            os << "autoscaler.demandSource 'measured' needs "
               << "measuredRateAlpha > 0 — without the per-replica "
               << "EWMAs the capacity signals silently degrade to the "
               << "nominal rates; set measured_rate_alpha (or keep "
               << "demand_source 'nominal')";
            err(os);
        }
    }
    return errors;
}

bool
operator==(const PredictorSpec &a, const PredictorSpec &b)
{
    return a.kind == b.kind && a.accuracy == b.accuracy &&
           a.seed == b.seed;
}

bool
operator==(const SchedulerSpec &a, const SchedulerSpec &b)
{
    return a.policy == b.policy &&
           a.sjfAgingPerSecond == b.sjfAgingPerSecond &&
           a.sloSeconds == b.sloSeconds &&
           a.refreshPeriod == b.refreshPeriod && a.bypass == b.bypass &&
           a.dynamicQueues == b.dynamicQueues && a.wrsForm == b.wrsForm;
}

bool
operator==(const AdapterSpec &a, const AdapterSpec &b)
{
    return a.policy == b.policy && a.eviction == b.eviction &&
           a.predictivePrefetch == b.predictivePrefetch &&
           a.prefetchTopK == b.prefetchTopK;
}

bool
operator==(const ClusterSpec &a, const ClusterSpec &b)
{
    return a.replicas == b.replicas &&
           a.replicaEngines == b.replicaEngines &&
           a.router == b.router && a.routerConfig == b.routerConfig &&
           a.autoscale == b.autoscale && a.autoscaler == b.autoscaler;
}

bool
operator==(const TenancySpec &a, const TenancySpec &b)
{
    return a.tenants == b.tenants && a.weights == b.weights &&
           a.sloMultipliers == b.sloMultipliers &&
           a.drrQuantumTokens == b.drrQuantumTokens;
}

bool
operator==(const FabricSpec &a, const FabricSpec &b)
{
    return a.migration == b.migration && a.topology == b.topology &&
           a.topK == b.topK;
}

bool
operator==(const SystemSpec &a, const SystemSpec &b)
{
    return a.name == b.name && a.engine == b.engine &&
           a.scheduler == b.scheduler && a.adapters == b.adapters &&
           a.predictor == b.predictor && a.cluster == b.cluster &&
           a.tenancy == b.tenancy && a.fabric == b.fabric &&
           a.reservation == b.reservation &&
           a.chunkedPrefill == b.chunkedPrefill &&
           a.chunkTokens == b.chunkTokens;
}

namespace presets {

namespace {

/** Common base: engine/predictor at defaults, axes set per preset. */
SystemSpec
base(const char *name)
{
    SystemSpec spec;
    spec.name = name;
    return spec;
}

} // namespace

SystemSpec
slora()
{
    SystemSpec spec = base("slora");
    spec.scheduler.policy = SchedulerPolicy::Fifo;
    spec.adapters.policy = AdapterPolicy::SLora;
    return spec;
}

SystemSpec
sloraSjf()
{
    SystemSpec spec = slora();
    spec.name = "slora-sjf";
    spec.scheduler.policy = SchedulerPolicy::Sjf;
    return spec;
}

SystemSpec
sloraChunked()
{
    SystemSpec spec = slora();
    spec.name = "slora-chunked";
    spec.chunkedPrefill = true;
    spec.chunkTokens = 64;
    return spec;
}

SystemSpec
chameleonNoCache()
{
    SystemSpec spec = base("chameleon-nocache");
    spec.scheduler.policy = SchedulerPolicy::Mlq;
    spec.adapters.policy = AdapterPolicy::SLora;
    return spec;
}

SystemSpec
chameleonNoSched()
{
    SystemSpec spec = base("chameleon-nosched");
    spec.scheduler.policy = SchedulerPolicy::Fifo;
    spec.adapters.policy = AdapterPolicy::ChameleonCache;
    return spec;
}

SystemSpec
chameleon()
{
    SystemSpec spec = base("chameleon");
    spec.scheduler.policy = SchedulerPolicy::Mlq;
    spec.adapters.policy = AdapterPolicy::ChameleonCache;
    return spec;
}

SystemSpec
chameleonLru()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-lru";
    spec.adapters.eviction = EvictionKind::Lru;
    return spec;
}

SystemSpec
chameleonFairShare()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-fairshare";
    spec.adapters.eviction = EvictionKind::FairShare;
    return spec;
}

SystemSpec
chameleonGdsf()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-gdsf";
    spec.adapters.eviction = EvictionKind::Gdsf;
    return spec;
}

SystemSpec
chameleonPrefetch()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-prefetch";
    spec.adapters.predictivePrefetch = true;
    spec.adapters.prefetchTopK = 8;
    return spec;
}

SystemSpec
chameleonStatic()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-static";
    spec.scheduler.dynamicQueues = false;
    return spec;
}

SystemSpec
chameleonOutputOnly()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-output-only";
    spec.scheduler.wrsForm = WrsForm::OutputOnly;
    return spec;
}

SystemSpec
chameleonDegree1()
{
    SystemSpec spec = chameleon();
    spec.name = "chameleon-degree1";
    spec.scheduler.wrsForm = WrsForm::Degree1;
    return spec;
}

} // namespace presets

} // namespace chameleon::core
