/**
 * @file
 * Declarative system descriptions: the SystemSpec policy axes.
 *
 * A serving system is a point in a small policy space — scheduler x
 * adapter management x eviction x prediction x a few knobs (prefetch,
 * bypass, reservation, chunking) x deployment (replicas, routing,
 * autoscaling). SystemSpec names each axis explicitly so any
 * combination can be described, validated, and run through the Runner,
 * instead of being one variant of a closed enum. The paper's 13
 * evaluated systems are preset specs (presets::chameleon() etc.),
 * registered by name in the SystemRegistry (system_registry.h).
 */

#ifndef CHAMELEON_CHAMELEON_SYSTEM_SPEC_H
#define CHAMELEON_CHAMELEON_SYSTEM_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "chameleon/wrs.h"
#include "fabric/cache_fabric.h"
#include "routing/autoscaler.h"
#include "routing/router.h"
#include "serving/engine.h"
#include "simkit/time.h"

namespace chameleon::core {

/** Admission-order policy of each engine's local scheduler. */
enum class SchedulerPolicy {
    Fifo, ///< Arrival order (S-LoRA's scheduler).
    Sjf,  ///< Predicted-shortest-first (uServe [46]).
    Mlq,  ///< Chameleon multi-level queues with quotas (§4.3).
    Wfq,  ///< Weighted fair queueing across tenants (tenancy layer).
    Drr,  ///< Deficit round robin across tenants (tenancy layer).
};

/** How adapters are moved to / kept in GPU memory. */
enum class AdapterPolicy {
    OnDemand,       ///< Fetch on demand, discard on idle, no prefetch.
    SLora,          ///< On-demand + async prefetch for queued requests.
    ChameleonCache, ///< Transparent idle-memory adapter cache (§4.2).
};

/** Eviction score of the Chameleon cache (§4.2.2, Fig. 17). */
enum class EvictionKind {
    Paper,     ///< The tuned compound score (the paper's policy).
    Lru,       ///< Least-recently-used.
    FairShare, ///< Equal-weight (rank-normalised) score.
    Gdsf,      ///< Greedy-Dual-Size-Frequency web-caching score.
};

/** KV reservation accounting at admission time. */
enum class ReservationPolicy {
    Auto,      ///< Predicted iff the scheduler is Mlq (paper wiring).
    MaxTokens, ///< Conservative input + maxNewTokens (S-LoRA style).
    Predicted, ///< Input + predicted output (Chameleon admission).
};

const char *schedulerPolicyName(SchedulerPolicy policy);
const char *adapterPolicyName(AdapterPolicy policy);
const char *evictionPolicyName(EvictionKind policy);
const char *reservationPolicyName(ReservationPolicy policy);

/** Parse canonical policy names; return false on unknown names. */
bool schedulerPolicyByName(const std::string &name, SchedulerPolicy *out);
bool adapterPolicyByName(const std::string &name, AdapterPolicy *out);
bool evictionPolicyByName(const std::string &name, EvictionKind *out);
bool reservationPolicyByName(const std::string &name,
                             ReservationPolicy *out);

/** All eviction policies, for registry/bench enumeration. */
const std::vector<EvictionKind> &allEvictionPolicies();

/** Output-length predictor axis. */
struct PredictorSpec
{
    /** "bert" (accuracy-knob proxy) or "history" (online EWMA). */
    std::string kind = "bert";
    /** Accuracy of the bert proxy (paper's predictor: ~0.8). */
    double accuracy = 0.8;
    std::uint64_t seed = 0xC0FFEE;
};

/** Scheduler axis: policy plus the knobs presets vary. */
struct SchedulerSpec
{
    SchedulerPolicy policy = SchedulerPolicy::Mlq;
    /** SJF anti-starvation aging (tokens/second; 0 disables). */
    double sjfAgingPerSecond = 0.0;
    // --- MLQ knobs (§4.3); ignored by Fifo/Sjf ---
    /** Per-queue SLO used in quota assignment, seconds. */
    double sloSeconds = 5.0;
    /** Queue/quota reconfiguration period (§4.3.4). */
    sim::SimTime refreshPeriod = 300 * sim::kSec;
    /** Opportunistic bypass (§4.3.3). */
    bool bypass = true;
    /** Dynamic queue count/cutoffs/quotas; false = Fig. 22 static. */
    bool dynamicQueues = true;
    /** WRS formula (§4.3.1). */
    WrsForm wrsForm = WrsForm::Degree2;
};

/** Adapter-management axis. */
struct AdapterSpec
{
    AdapterPolicy policy = AdapterPolicy::ChameleonCache;
    /** Cache eviction score; requires ChameleonCache. */
    EvictionKind eviction = EvictionKind::Paper;
    /** Histogram-based predictive prefetch (§4.2.3). */
    bool predictivePrefetch = false;
    /** Prefetch width (adapters per cycle); 0 = unset. */
    std::size_t prefetchTopK = 0;
};

/**
 * Tenancy axis: who shares the system and on what terms. With the
 * default (1 tenant, no overrides) the axis is inert: every request
 * carries the anonymous tenant 0 and all schedulers behave exactly as
 * before the tenancy layer existed. The WFQ/DRR scheduler policies and
 * the per-tenant report/metrics groups read their weights and SLO
 * scales from here.
 */
struct TenancySpec
{
    /** Declared tenant count (trace generation + reporting hint). */
    int tenants = 1;
    /** Per-tenant scheduler weights; empty = all 1.0. */
    std::vector<double> weights;
    /** Per-tenant scale on the global TTFT SLO; empty = all 1.0. */
    std::vector<double> sloMultipliers;
    /** DRR quantum in prefill tokens (scaled by the tenant weight). */
    std::int64_t drrQuantumTokens = 512;

    /** Weight for `tenant`, defaulting to 1.0 beyond the table. */
    double weightFor(int tenant) const;
    /** SLO scale for `tenant`, defaulting to 1.0 beyond the table. */
    double sloMultiplierFor(int tenant) const;
};

/** Deployment axis: data-parallel replicas behind a global router. */
struct ClusterSpec
{
    /** Data-parallel replicas (1 = single engine). */
    int replicas = 1;
    /**
     * Per-replica engine overrides for heterogeneous fleets, in
     * replica order. Empty (the default) stamps every replica from
     * SystemSpec::engine; non-empty must have exactly `replicas`
     * entries (validate() enforces it) and replica i is built from
     * entry i. Autoscale scale-ups beyond the list fall back to
     * SystemSpec::engine. Populate by hand, via
     * SystemSpec::withFleet(), or from spec JSON ("cluster.replicas"
     * as an array of engine overrides, or the "cluster.fleet"
     * shorthand — see src/chameleon/README.md).
     */
    std::vector<serving::EngineConfig> replicaEngines;
    routing::RouterPolicy router =
        routing::RouterPolicy::JoinShortestQueue;
    routing::RouterConfig routerConfig{};
    /** Scale the active replica set at simulation time. */
    bool autoscale = false;
    routing::AutoscalerConfig autoscaler{};
};

/**
 * Cache-fabric axis: cluster-wide residency directory + peer-to-peer
 * adapter migration (src/fabric/). Off by default — with migration
 * off and no directory-backed router the Runner never constructs a
 * fabric, so pre-fabric event streams are preserved byte-for-byte.
 */
struct FabricSpec
{
    /** Which cluster reshapes trigger peer migration. */
    fabric::MigrationPolicy migration = fabric::MigrationPolicy::Off;
    /** Peer-link preset migrations travel over. */
    fabric::TopologyKind topology = fabric::TopologyKind::PciePeer;
    /** Hot adapters considered per migration trigger. */
    std::size_t topK = 4;

    /** Does this axis alone require a fabric? */
    bool enabled() const
    {
        return migration != fabric::MigrationPolicy::Off;
    }
};

/**
 * A complete, declarative description of one serving system. Every
 * axis is independent: any eviction policy under any scheduler, any
 * combination cluster-deployed. Build one from scratch, from a preset
 * (presets::chameleon()), or by name through the SystemRegistry
 * ("chameleon+gdsf+prefetch").
 */
struct SystemSpec
{
    /** Display/registry name; composed lookups carry their grammar. */
    std::string name = "custom";

    /** Hardware + base model (the engine axis is shared wiring). */
    serving::EngineConfig engine{};

    SchedulerSpec scheduler{};
    AdapterSpec adapters{};
    PredictorSpec predictor{};
    ClusterSpec cluster{};
    TenancySpec tenancy{};
    FabricSpec fabric{};

    ReservationPolicy reservation = ReservationPolicy::Auto;

    /** Chunked prefill (Sarathi [1]); tokens per chunk when enabled. */
    bool chunkedPrefill = false;
    std::int64_t chunkTokens = 64;

    // --- fluent helpers for composing variants ---
    SystemSpec &named(std::string n);
    SystemSpec &withScheduler(SchedulerPolicy p);
    SystemSpec &withEviction(EvictionKind e);
    SystemSpec &withPrefetch(std::size_t topK = 8);
    SystemSpec &withReplicas(int replicas,
                             routing::RouterPolicy router =
                                 routing::RouterPolicy::JoinShortestQueue);
    /**
     * Deploy a heterogeneous fleet: one replica per GPU in `gpus`,
     * each built from the current `engine` with that GPU swapped in
     * (set engine.model and shared knobs first). Sets
     * cluster.replicas and cluster.replicaEngines; pairs with
     * model::tryFleetByName for "a100x2+a40x2"-style presets.
     */
    SystemSpec &withFleet(const std::vector<model::GpuSpec> &gpus,
                          routing::RouterPolicy router =
                              routing::RouterPolicy::JoinShortestQueue);

    /**
     * The engine configuration replica `replica` is built from:
     * cluster.replicaEngines[replica] when the fleet is heterogeneous
     * (falling back to `engine` for autoscaled replicas beyond the
     * list), `engine` otherwise.
     */
    const serving::EngineConfig &resolvedEngine(std::size_t replica) const;

    /**
     * Does the run need a cache fabric? True when migration is on or
     * the router needs the residency directory (affinity-dir).
     */
    bool fabricEnabled() const
    {
        return fabric.enabled() ||
               cluster.router ==
                   routing::RouterPolicy::AdapterAffinityDirectory;
    }

    /**
     * Check the spec for contradictions. Returns one actionable message
     * per problem (empty = valid). Runner construction runs this and
     * fails fast with the joined messages.
     */
    std::vector<std::string> validate() const;
};

/**
 * Field-wise equality over every axis and knob (name included), so
 * JSON round-trip tests can assert spec equivalence directly instead
 * of comparing re-printed strings.
 */
bool operator==(const PredictorSpec &a, const PredictorSpec &b);
bool operator==(const SchedulerSpec &a, const SchedulerSpec &b);
bool operator==(const AdapterSpec &a, const AdapterSpec &b);
bool operator==(const ClusterSpec &a, const ClusterSpec &b);
bool operator==(const TenancySpec &a, const TenancySpec &b);
bool operator==(const FabricSpec &a, const FabricSpec &b);
bool operator==(const SystemSpec &a, const SystemSpec &b);
inline bool operator!=(const PredictorSpec &a, const PredictorSpec &b)
{
    return !(a == b);
}
inline bool operator!=(const SchedulerSpec &a, const SchedulerSpec &b)
{
    return !(a == b);
}
inline bool operator!=(const AdapterSpec &a, const AdapterSpec &b)
{
    return !(a == b);
}
inline bool operator!=(const ClusterSpec &a, const ClusterSpec &b)
{
    return !(a == b);
}
inline bool operator!=(const TenancySpec &a, const TenancySpec &b)
{
    return !(a == b);
}
inline bool operator!=(const FabricSpec &a, const FabricSpec &b)
{
    return !(a == b);
}
inline bool operator!=(const SystemSpec &a, const SystemSpec &b)
{
    return !(a == b);
}

/**
 * The paper's evaluated systems as preset specs (§5.1). Each returns a
 * fresh SystemSpec with engine/predictor left at defaults — callers
 * set hardware (spec.engine.model/gpu) before running. These replace
 * the closed SystemKind enum; the registry exposes them by name.
 */
namespace presets {

SystemSpec slora();              ///< FIFO + fetch/prefetch/discard [49].
SystemSpec sloraSjf();           ///< S-LoRA with the uServe SJF [46].
SystemSpec sloraChunked();       ///< S-LoRA with chunked prefill [1].
SystemSpec chameleonNoCache();   ///< Chameleon scheduler, S-LoRA adapters.
SystemSpec chameleonNoSched();   ///< Chameleon cache, FIFO scheduling.
SystemSpec chameleon();          ///< Full system (§4).
SystemSpec chameleonLru();       ///< Full system, LRU eviction.
SystemSpec chameleonFairShare(); ///< Full system, equal-weight eviction.
SystemSpec chameleonGdsf();      ///< Full system, GDSF eviction (§5.3.3).
SystemSpec chameleonPrefetch();  ///< Full system + predictive prefetch.
SystemSpec chameleonStatic();    ///< Static queues/quotas (Fig. 22).
SystemSpec chameleonOutputOnly();///< WRS = predicted output (Fig. 19).
SystemSpec chameleonDegree1();   ///< Degree-1 WRS (§4.3.1 ablation).

} // namespace presets

} // namespace chameleon::core

#endif // CHAMELEON_CHAMELEON_SYSTEM_SPEC_H
