/**
 * @file
 * Sim-time span tracing to Chrome trace-event JSON (Perfetto).
 *
 * A TraceRecorder collects begin/end spans, complete (X) events,
 * instants, counter samples, and async spans in simulation time and
 * renders them as the Chrome trace-event format [1], which loads
 * directly in Perfetto (ui.perfetto.dev) or chrome://tracing. SimTime
 * is already microseconds — exactly the `ts` unit the format wants —
 * so no conversion happens anywhere.
 *
 * Process/thread mapping ("pid = replica, tid = component"):
 *   pid 0            the cluster control plane (dispatch, autoscaler)
 *   pid i+1          replica i
 *   tid (Lane)       a component lane inside one process: Engine,
 *                    Requests, Cache, Control
 * Metadata events name each process and lane so the UI shows
 * "replica0 [A100-48]" instead of raw numbers.
 *
 * Attachment IS the on/off switch: components hold a plain
 * `TraceRecorder *` that is null by default, and every emission site
 * is guarded by one pointer compare — with no recorder attached the
 * simulation executes the identical event sequence (the golden-trace
 * suite pins this). Events append in emission order, which is
 * deterministic for a fixed seed, so two same-seed runs serialise to
 * byte-identical JSON.
 *
 * [1] "Trace Event Format",
 *     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
 */

#ifndef CHAMELEON_OBS_TRACE_RECORDER_H
#define CHAMELEON_OBS_TRACE_RECORDER_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "simkit/json.h"
#include "simkit/time.h"

namespace chameleon::obs {

/** The cluster control plane records under this pid. */
constexpr int kClusterPid = 0;

/** Trace pid of replica `index` (engines are 1-based in the trace). */
constexpr int
pidForReplica(std::size_t index)
{
    return static_cast<int>(index) + 1;
}

/** Component lanes within one trace process (tid values). */
enum class Lane : int {
    Engine = 0,   ///< Iterations, squash/preempt, memory counters.
    Requests = 1, ///< Per-request async phase spans.
    Cache = 2,    ///< Adapter cache loads/evictions.
    Control = 3,  ///< Dispatch and autoscaling decisions.
};

/** One key/value annotation attached to a trace event. */
struct TraceArg
{
    enum class Kind { Int, Double, String };

    TraceArg(const char *key, std::int64_t value)
        : key(key), kind(Kind::Int), i(value)
    {
    }
    TraceArg(const char *key, int value)
        : TraceArg(key, static_cast<std::int64_t>(value))
    {
    }
    TraceArg(const char *key, std::size_t value)
        : TraceArg(key, static_cast<std::int64_t>(value))
    {
    }
    TraceArg(const char *key, double value)
        : key(key), kind(Kind::Double), d(value)
    {
    }
    TraceArg(const char *key, std::string value)
        : key(key), kind(Kind::String), s(std::move(value))
    {
    }

    std::string key;
    Kind kind;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
};

/**
 * Append-only recorder of sim-time trace events. Not thread-safe (the
 * simulator is single-threaded); cheap enough to leave attached for a
 * whole run. All timestamps are explicit so retrospective emission
 * (e.g. a request's phase spans written at finish time) is natural.
 */
class TraceRecorder
{
  public:
    using Args = std::initializer_list<TraceArg>;

    /** Name a trace process (emitted as an M metadata event). */
    void processName(int pid, const std::string &name);
    /** Name one lane of a process. */
    void threadName(int pid, Lane lane, const std::string &name);

    /** Synchronous span: begin() must nest properly with end(). */
    void begin(int pid, Lane lane, const char *name, sim::SimTime ts,
               Args args = {});
    void end(int pid, Lane lane, sim::SimTime ts);

    /** Complete event: a span whose duration is known at emission. */
    void complete(int pid, Lane lane, const char *name, sim::SimTime ts,
                  sim::SimTime dur, Args args = {});

    /** Zero-duration marker. */
    void instant(int pid, Lane lane, const char *name, sim::SimTime ts,
                 Args args = {});

    /** Counter sample: each arg becomes one series on the track. */
    void counter(int pid, const char *name, sim::SimTime ts, Args values);

    /** Async span, matched by (category, id) across emissions. */
    void asyncBegin(int pid, const char *category, std::int64_t id,
                    const char *name, sim::SimTime ts, Args args = {});
    void asyncEnd(int pid, const char *category, std::int64_t id,
                  const char *name, sim::SimTime ts);

    /** Recorded events so far (metadata excluded). */
    std::size_t size() const { return events_.size(); }

    /**
     * The trace as a JSON document: {"traceEvents": [...]} with the
     * metadata events first. Deterministic: same events in the same
     * order render byte-identically (obs_test pins this).
     */
    sim::JsonValue toJsonValue() const;
    std::string toJson() const;

    /** Write the JSON document; fails hard when the path won't open. */
    void writeJson(const std::string &path) const;

  private:
    struct Event
    {
        char phase = 'i';
        int pid = 0;
        int tid = 0;
        std::string name;
        std::string category;
        bool hasId = false;
        std::int64_t id = 0;
        sim::SimTime ts = 0;
        sim::SimTime dur = -1; // < 0: no "dur" member
        std::vector<TraceArg> args;
    };

    void push(Event event) { events_.push_back(std::move(event)); }

    std::vector<Event> meta_;
    std::vector<Event> events_;
};

} // namespace chameleon::obs

#endif // CHAMELEON_OBS_TRACE_RECORDER_H
