/**
 * @file
 * Hierarchical metrics: counters, gauges, histograms by dotted name.
 *
 * A MetricsRegistry holds named instruments — `replica0.cache.hits`,
 * `cluster.scale_ups`, `replica1.latency.ttft_s` — and snapshots them
 * into one nested JSON object (simkit/json) whose structure follows
 * the dots: `replica0.cache.hits` becomes
 * {"replica0": {"cache": {"hits": N}}}. Storage is a sorted map, so
 * snapshots are deterministic and instrument references stay valid for
 * the registry's lifetime (hot paths can cache the pointer instead of
 * re-resolving the name).
 *
 * Histograms keep exact count/sum/min/max and a log2-bucketed
 * distribution from which approximate p50/p90/p99 are derived (each
 * quantile reports the upper bound of the bucket that crosses it —
 * within 2x of the true value). RunReport's PercentileTrackers remain
 * the exact source for headline latency numbers; the registry trades a
 * little precision for bounded memory and a uniform export shape.
 */

#ifndef CHAMELEON_OBS_METRICS_REGISTRY_H
#define CHAMELEON_OBS_METRICS_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>

#include "simkit/json.h"

namespace chameleon::obs {

/** Monotonic integer count. */
class Counter
{
  public:
    void inc(std::int64_t delta = 1) { value_ += delta; }
    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/** Last-written floating-point value. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Distribution summary: exact count/sum/min/max plus log2 buckets for
 * approximate quantiles. Negative and zero observations land in the
 * lowest bucket (latencies and sizes are non-negative in practice).
 */
class Histogram
{
  public:
    void add(double value);

    std::int64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    /** Approximate quantile in [0, 1]; see file comment for error. */
    double quantile(double q) const;

    /** {count, sum, mean, min, max, p50, p90, p99}. */
    sim::JsonValue toJson() const;

  private:
    // Buckets cover (2^(i-kBucketBias-1), 2^(i-kBucketBias)]; bucket 0
    // additionally absorbs everything <= 2^-kBucketBias.
    static constexpr int kBucketBias = 32;
    static constexpr int kBucketCount = 96;

    std::int64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::int64_t buckets_[kBucketCount] = {};
};

/**
 * Named instruments with hierarchical JSON export. Names are dotted
 * paths of [A-Za-z0-9_-] segments; a name must not be both a leaf and
 * a prefix of another name (snapshot() fails hard on the conflict).
 */
class MetricsRegistry
{
  public:
    /** Get or create; the reference stays valid for the registry. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Lookup without creating; nullptr when absent (tests). */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /**
     * All instruments as one nested JSON object, dotted names expanded
     * into the hierarchy, keys in sorted order (deterministic dumps).
     */
    sim::JsonValue snapshot() const;
    /** snapshot().dump(). */
    std::string toJson() const;
    /** Write toJson() to `path`; fails hard when it won't open. */
    void writeJson(const std::string &path) const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace chameleon::obs

#endif // CHAMELEON_OBS_METRICS_REGISTRY_H
