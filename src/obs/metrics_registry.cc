#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "simkit/check.h"

namespace chameleon::obs {

namespace {

/** Upper bucket bound: 2^(index - bias). */
double
bucketUpperBound(int index, int bias)
{
    return std::ldexp(1.0, index - bias);
}

} // namespace

void
Histogram::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;

    int index = 0;
    if (value > 0.0) {
        int exp = 0;
        const double mantissa = std::frexp(value, &exp);
        // frexp: value = mantissa * 2^exp, mantissa in [0.5, 1); the
        // smallest power-of-two upper bound is 2^(exp-1) when value
        // sits exactly on it, 2^exp otherwise.
        const int pow2 = mantissa == 0.5 ? exp - 1 : exp;
        index = std::clamp(pow2 + kBucketBias, 0, kBucketCount - 1);
    }
    ++buckets_[index];
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::int64_t target = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::int64_t cumulative = 0;
    for (int i = 0; i < kBucketCount; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target) {
            const double upper = bucketUpperBound(i, kBucketBias);
            return std::clamp(upper, min_, max_);
        }
    }
    return max_;
}

sim::JsonValue
Histogram::toJson() const
{
    sim::JsonValue object = sim::JsonValue::makeObject();
    object.set("count", sim::JsonValue::makeInt(count_));
    object.set("sum", sim::JsonValue::makeNumber(sum_));
    object.set("mean", sim::JsonValue::makeNumber(mean()));
    object.set("min", sim::JsonValue::makeNumber(min_));
    object.set("max", sim::JsonValue::makeNumber(max_));
    object.set("p50", sim::JsonValue::makeNumber(quantile(0.50)));
    object.set("p90", sim::JsonValue::makeNumber(quantile(0.90)));
    object.set("p99", sim::JsonValue::makeNumber(quantile(0.99)));
    return object;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

namespace {

struct MetricLeaf
{
    std::string name;
    sim::JsonValue value;
};

/** Segment of `name` starting at `from`; advances `from` past the dot. */
std::string
nextSegment(const std::string &name, std::size_t &from)
{
    const std::size_t dot = name.find('.', from);
    if (dot == std::string::npos) {
        std::string segment = name.substr(from);
        from = name.size();
        return segment;
    }
    std::string segment = name.substr(from, dot - from);
    from = dot + 1;
    return segment;
}

/**
 * Expand the sorted leaves [first, last) into one object, consuming
 * name characters from `depth`. The input is sorted by full name, so
 * leaves sharing a segment are contiguous.
 */
sim::JsonValue
buildTree(const std::vector<MetricLeaf> &leaves, std::size_t first,
          std::size_t last, std::size_t depth)
{
    sim::JsonValue object = sim::JsonValue::makeObject();
    std::size_t i = first;
    while (i < last) {
        std::size_t from = depth;
        const std::string segment = nextSegment(leaves[i].name, from);
        CHM_CHECK(!segment.empty(),
                  "empty segment in metric name '" << leaves[i].name
                                                   << "'");
        // The run of leaves sharing this segment at this depth.
        std::size_t j = i + 1;
        while (j < last &&
               leaves[j].name.compare(depth, segment.size(), segment) ==
                   0 &&
               (leaves[j].name.size() == depth + segment.size() ||
                leaves[j].name[depth + segment.size()] == '.')) {
            ++j;
        }
        const bool isLeaf = from >= leaves[i].name.size();
        if (isLeaf) {
            CHM_CHECK(j == i + 1,
                      "metric name '" << leaves[i].name
                                      << "' is both a value and a "
                                         "prefix of another metric");
            object.set(segment, leaves[i].value);
        } else {
            object.set(segment, buildTree(leaves, i, j, from));
        }
        i = j;
    }
    return object;
}

} // namespace

sim::JsonValue
MetricsRegistry::snapshot() const
{
    std::vector<MetricLeaf> leaves;
    leaves.reserve(size());
    for (const auto &[name, c] : counters_) {
        leaves.push_back(
            MetricLeaf{name, sim::JsonValue::makeInt(c.value())});
    }
    for (const auto &[name, g] : gauges_) {
        leaves.push_back(
            MetricLeaf{name, sim::JsonValue::makeNumber(g.value())});
    }
    for (const auto &[name, h] : histograms_)
        leaves.push_back(MetricLeaf{name, h.toJson()});
    std::sort(leaves.begin(), leaves.end(),
              [](const MetricLeaf &a, const MetricLeaf &b) {
                  return a.name < b.name;
              });
    for (std::size_t i = 1; i < leaves.size(); ++i) {
        CHM_CHECK(leaves[i - 1].name != leaves[i].name,
                  "metric name '" << leaves[i].name
                                  << "' registered as two instrument "
                                     "kinds");
    }
    return buildTree(leaves, 0, leaves.size(), 0);
}

std::string
MetricsRegistry::toJson() const
{
    return snapshot().dump();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    CHM_CHECK(f != nullptr, "cannot open metrics output " << path);
    const std::string text = toJson();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace chameleon::obs
