#include "obs/trace_recorder.h"

#include <cstdio>
#include <utility>

#include "simkit/check.h"

namespace chameleon::obs {

namespace {

sim::JsonValue
argsToJson(const std::vector<TraceArg> &args)
{
    sim::JsonValue object = sim::JsonValue::makeObject();
    for (const TraceArg &arg : args) {
        switch (arg.kind) {
          case TraceArg::Kind::Int:
            object.set(arg.key, sim::JsonValue::makeInt(arg.i));
            break;
          case TraceArg::Kind::Double:
            object.set(arg.key, sim::JsonValue::makeNumber(arg.d));
            break;
          case TraceArg::Kind::String:
            object.set(arg.key, sim::JsonValue::makeString(arg.s));
            break;
        }
    }
    return object;
}

} // namespace

void
TraceRecorder::processName(int pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.pid = pid;
    e.name = "process_name";
    e.args.emplace_back("name", name);
    meta_.push_back(std::move(e));
}

void
TraceRecorder::threadName(int pid, Lane lane, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.pid = pid;
    e.tid = static_cast<int>(lane);
    e.name = "thread_name";
    e.args.emplace_back("name", name);
    meta_.push_back(std::move(e));
}

void
TraceRecorder::begin(int pid, Lane lane, const char *name, sim::SimTime ts,
                     Args args)
{
    Event e;
    e.phase = 'B';
    e.pid = pid;
    e.tid = static_cast<int>(lane);
    e.name = name;
    e.ts = ts;
    e.args.assign(args.begin(), args.end());
    push(std::move(e));
}

void
TraceRecorder::end(int pid, Lane lane, sim::SimTime ts)
{
    Event e;
    e.phase = 'E';
    e.pid = pid;
    e.tid = static_cast<int>(lane);
    e.ts = ts;
    push(std::move(e));
}

void
TraceRecorder::complete(int pid, Lane lane, const char *name,
                        sim::SimTime ts, sim::SimTime dur, Args args)
{
    CHM_CHECK(dur >= 0, "complete event with negative duration");
    Event e;
    e.phase = 'X';
    e.pid = pid;
    e.tid = static_cast<int>(lane);
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    e.args.assign(args.begin(), args.end());
    push(std::move(e));
}

void
TraceRecorder::instant(int pid, Lane lane, const char *name,
                       sim::SimTime ts, Args args)
{
    Event e;
    e.phase = 'i';
    e.pid = pid;
    e.tid = static_cast<int>(lane);
    e.name = name;
    e.ts = ts;
    e.args.assign(args.begin(), args.end());
    push(std::move(e));
}

void
TraceRecorder::counter(int pid, const char *name, sim::SimTime ts,
                       Args values)
{
    Event e;
    e.phase = 'C';
    e.pid = pid;
    e.name = name;
    e.ts = ts;
    e.args.assign(values.begin(), values.end());
    push(std::move(e));
}

void
TraceRecorder::asyncBegin(int pid, const char *category, std::int64_t id,
                          const char *name, sim::SimTime ts, Args args)
{
    Event e;
    e.phase = 'b';
    e.pid = pid;
    e.tid = static_cast<int>(Lane::Requests);
    e.name = name;
    e.category = category;
    e.hasId = true;
    e.id = id;
    e.ts = ts;
    e.args.assign(args.begin(), args.end());
    push(std::move(e));
}

void
TraceRecorder::asyncEnd(int pid, const char *category, std::int64_t id,
                        const char *name, sim::SimTime ts)
{
    Event e;
    e.phase = 'e';
    e.pid = pid;
    e.tid = static_cast<int>(Lane::Requests);
    e.name = name;
    e.category = category;
    e.hasId = true;
    e.id = id;
    e.ts = ts;
    push(std::move(e));
}

sim::JsonValue
TraceRecorder::toJsonValue() const
{
    sim::JsonValue events = sim::JsonValue::makeArray();
    auto render = [&events](const Event &e) {
        sim::JsonValue object = sim::JsonValue::makeObject();
        if (!e.name.empty())
            object.set("name", sim::JsonValue::makeString(e.name));
        if (!e.category.empty())
            object.set("cat", sim::JsonValue::makeString(e.category));
        object.set("ph", sim::JsonValue::makeString(
                             std::string(1, e.phase)));
        if (e.phase != 'M')
            object.set("ts", sim::JsonValue::makeInt(e.ts));
        if (e.dur >= 0)
            object.set("dur", sim::JsonValue::makeInt(e.dur));
        object.set("pid", sim::JsonValue::makeInt(e.pid));
        object.set("tid", sim::JsonValue::makeInt(e.tid));
        if (e.hasId)
            object.set("id", sim::JsonValue::makeInt(e.id));
        if (!e.args.empty())
            object.set("args", argsToJson(e.args));
        events.push(std::move(object));
    };
    for (const Event &e : meta_)
        render(e);
    for (const Event &e : events_)
        render(e);

    sim::JsonValue root = sim::JsonValue::makeObject();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", sim::JsonValue::makeString("ms"));
    return root;
}

std::string
TraceRecorder::toJson() const
{
    return toJsonValue().dump();
}

void
TraceRecorder::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    CHM_CHECK(f != nullptr, "cannot open trace output " << path);
    const std::string text = toJson();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace chameleon::obs
