/**
 * @file
 * GPU->GPU peer transfer link model.
 *
 * Generalises PcieLink to device-to-device copies: a point-to-point
 * FIFO link with a fixed bandwidth and a per-transfer setup latency
 * (NVLink mesh hop or P2P over the PCIe switch). Unlike the host link,
 * peer transfers are one-shot reservations — the caller computes the
 * completion time here and schedules its own completion event — so the
 * link carries no callback machinery, just the queueing model and the
 * traffic counters the fabric reports as `fabric.peer_*`.
 */

#ifndef CHAMELEON_GPU_PEER_LINK_H
#define CHAMELEON_GPU_PEER_LINK_H

#include <cstdint>

#include "simkit/simulator.h"
#include "simkit/time.h"

namespace chameleon::gpu {

/** FIFO reservation queue over a fixed-bandwidth peer link. */
class PeerLink
{
  public:
    /**
     * @param simulator event kernel (supplies the clock)
     * @param bytesPerSecond effective link bandwidth
     * @param latency fixed per-transfer setup cost
     */
    PeerLink(sim::Simulator &simulator, double bytesPerSecond,
             sim::SimTime latency);

    /** Completion time of a transfer submitted now (exact: FIFO). */
    sim::SimTime earliestCompletion(std::int64_t bytes) const;

    /**
     * Reserve the link for one transfer; returns its completion time
     * (equal to what earliestCompletion predicted at the same instant).
     */
    sim::SimTime reserve(std::int64_t bytes);

    /** Total bytes ever reserved. */
    std::int64_t totalBytes() const { return totalBytes_; }
    /** Total transfers ever reserved. */
    std::int64_t totalTransfers() const { return totalTransfers_; }

  private:
    sim::SimTime serviceTime(std::int64_t bytes) const;

    sim::Simulator &sim_;
    double bytesPerSecond_;
    sim::SimTime latency_;
    sim::SimTime busyUntil_ = 0;
    std::int64_t totalBytes_ = 0;
    std::int64_t totalTransfers_ = 0;
};

} // namespace chameleon::gpu

#endif // CHAMELEON_GPU_PEER_LINK_H
