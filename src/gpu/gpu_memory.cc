#include "gpu/gpu_memory.h"

namespace chameleon::gpu {

GpuMemory::GpuMemory(std::int64_t capacity, std::int64_t weights,
                     std::int64_t workspace)
    : capacity_(capacity), weights_(weights), workspace_(workspace)
{
    CHM_CHECK(capacity > 0, "GPU capacity must be positive");
    CHM_CHECK(weights >= 0 && workspace >= 0, "negative static reserve");
    CHM_CHECK(weights + workspace <= capacity,
              "model does not fit: weights=" << weights << " workspace="
              << workspace << " capacity=" << capacity);
}

std::int64_t
GpuMemory::freeBytes() const
{
    const std::int64_t used =
        weights_ + workspace_ + kv_ + adapterInUse_ + adapterCache_;
    CHM_CHECK(used <= capacity_, "memory accounting overflow");
    return capacity_ - used;
}

bool
GpuMemory::tryAllocKv(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0, "negative KV allocation");
    if (bytes > freeBytes())
        return false;
    kv_ += bytes;
    return true;
}

void
GpuMemory::freeKv(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0 && bytes <= kv_, "KV free underflow");
    kv_ -= bytes;
}

bool
GpuMemory::tryAllocAdapterInUse(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0, "negative adapter allocation");
    if (bytes > freeBytes())
        return false;
    adapterInUse_ += bytes;
    return true;
}

void
GpuMemory::freeAdapterInUse(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0 && bytes <= adapterInUse_,
              "adapter in-use free underflow");
    adapterInUse_ -= bytes;
}

void
GpuMemory::moveInUseToCache(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0 && bytes <= adapterInUse_,
              "in-use -> cache move underflow");
    adapterInUse_ -= bytes;
    adapterCache_ += bytes;
}

void
GpuMemory::moveCacheToInUse(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0 && bytes <= adapterCache_,
              "cache -> in-use move underflow");
    adapterCache_ -= bytes;
    adapterInUse_ += bytes;
}

bool
GpuMemory::tryAllocAdapterCache(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0, "negative cache allocation");
    if (bytes > freeBytes())
        return false;
    adapterCache_ += bytes;
    return true;
}

void
GpuMemory::freeAdapterCache(std::int64_t bytes)
{
    CHM_CHECK(bytes >= 0 && bytes <= adapterCache_,
              "adapter cache free underflow");
    adapterCache_ -= bytes;
}

} // namespace chameleon::gpu
