/**
 * @file
 * Host->GPU PCIe link model.
 *
 * Transfers are serviced one at a time in FIFO order at the link's
 * effective bandwidth (DMA engines serialise bulk copies); each transfer
 * pays a fixed setup cost. Queueing behind earlier transfers is what
 * creates the contention the paper measures in Fig. 4 and the up-to-30 ms
 * critical-path loading latencies of Fig. 14.
 */

#ifndef CHAMELEON_GPU_PCIE_LINK_H
#define CHAMELEON_GPU_PCIE_LINK_H

#include <cstdint>
#include <deque>
#include <functional>

#include "simkit/simulator.h"
#include "simkit/time.h"
#include "simkit/timeseries.h"

namespace chameleon::gpu {

/** FIFO transfer queue over a fixed-bandwidth host link. */
class PcieLink
{
  public:
    /**
     * @param simulator event kernel
     * @param serviceTimeFn maps transfer bytes to service time (the cost
     *        model's adapterLoadTime, including setup and TP sync)
     */
    PcieLink(sim::Simulator &simulator,
             std::function<sim::SimTime(std::int64_t)> serviceTimeFn);

    /**
     * Enqueue a transfer; onDone fires when it completes. Returns the
     * predicted completion time (exact, since the queue is FIFO and
     * non-preemptive).
     */
    sim::SimTime enqueue(std::int64_t bytes, std::function<void()> onDone);

    /** Earliest time a transfer submitted now would complete. */
    sim::SimTime earliestCompletion(std::int64_t bytes) const;

    /** True while any transfer is queued or in flight. */
    bool busy() const { return busyUntil_ > sim_.now(); }

    /** Total bytes ever enqueued. */
    std::int64_t totalBytes() const { return totalBytes_; }
    /** Total transfers ever enqueued. */
    std::int64_t totalTransfers() const { return totalTransfers_; }

    /** Bytes-per-window series for bandwidth plots (1 s windows). */
    const sim::WindowedSum &bandwidthSeries() const { return bwSeries_; }

    /** Fraction of elapsed time the link was busy (utilisation). */
    double utilisation() const;

    /** The event kernel transfers are scheduled on (peer-admit path). */
    sim::Simulator &simulator() const { return sim_; }

  private:
    sim::Simulator &sim_;
    std::function<sim::SimTime(std::int64_t)> serviceTimeFn_;
    sim::SimTime busyUntil_ = 0;
    std::int64_t totalBytes_ = 0;
    std::int64_t totalTransfers_ = 0;
    sim::SimTime busyAccum_ = 0;
    sim::WindowedSum bwSeries_;
};

} // namespace chameleon::gpu

#endif // CHAMELEON_GPU_PCIE_LINK_H
