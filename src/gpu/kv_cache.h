/**
 * @file
 * Paged KV-cache allocator.
 *
 * Models a vLLM/S-LoRA style paged KV pool: per-request token state is
 * stored in fixed-size pages, so allocations round up to page granularity
 * and the pool suffers bounded internal fragmentation. Backed by the
 * GpuMemory accounting so KV growth competes with the adapter cache for
 * idle memory, which is exactly the interaction §4.2.1 manages.
 */

#ifndef CHAMELEON_GPU_KV_CACHE_H
#define CHAMELEON_GPU_KV_CACHE_H

#include <cstdint>
#include <unordered_map>

#include "gpu/gpu_memory.h"

namespace chameleon::gpu {

/** Per-request paged KV allocation state. */
class KvCache
{
  public:
    /**
     * @param mem backing memory accountant
     * @param bytesPerToken KV bytes per cached token (model dependent)
     * @param pageTokens tokens per page (vLLM default granularity 16)
     */
    KvCache(GpuMemory &mem, std::int64_t bytesPerToken, int pageTokens = 16);

    /** Bytes a reservation of the given token count would occupy. */
    std::int64_t bytesForTokens(std::int64_t tokens) const;

    /**
     * Reserve pages for a request's token count; false if memory is
     * unavailable. Re-reserving with a larger count grows the
     * reservation (used as decode emits tokens).
     */
    bool tryReserve(std::int64_t requestId, std::int64_t tokens);

    /** Release a request's pages. */
    void release(std::int64_t requestId);

    /** Tokens currently reserved for a request (0 if none). */
    std::int64_t reservedTokens(std::int64_t requestId) const;

    /** Total bytes held by this pool. */
    std::int64_t totalBytes() const { return totalBytes_; }

    /** Bytes lost to page-rounding across live reservations. */
    std::int64_t fragmentationBytes() const;

    int pageTokens() const { return pageTokens_; }
    std::int64_t bytesPerToken() const { return bytesPerToken_; }

  private:
    struct Reservation
    {
        std::int64_t tokens = 0;
        std::int64_t bytes = 0;
    };

    GpuMemory &mem_;
    std::int64_t bytesPerToken_;
    int pageTokens_;
    std::int64_t totalBytes_ = 0;
    std::unordered_map<std::int64_t, Reservation> reservations_;
};

} // namespace chameleon::gpu

#endif // CHAMELEON_GPU_KV_CACHE_H
