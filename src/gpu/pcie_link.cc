#include "gpu/pcie_link.h"

#include <utility>

#include "simkit/check.h"

namespace chameleon::gpu {

using sim::SimTime;

PcieLink::PcieLink(sim::Simulator &simulator,
                   std::function<sim::SimTime(std::int64_t)> serviceTimeFn)
    : sim_(simulator), serviceTimeFn_(std::move(serviceTimeFn)),
      bwSeries_(sim::kSec)
{
}

SimTime
PcieLink::earliestCompletion(std::int64_t bytes) const
{
    const SimTime start = std::max(busyUntil_, sim_.now());
    return start + serviceTimeFn_(bytes);
}

SimTime
PcieLink::enqueue(std::int64_t bytes, std::function<void()> onDone)
{
    CHM_CHECK(bytes > 0, "transfer must move at least one byte");
    const SimTime start = std::max(busyUntil_, sim_.now());
    const SimTime service = serviceTimeFn_(bytes);
    const SimTime done = start + service;
    busyAccum_ += service;
    busyUntil_ = done;
    totalBytes_ += bytes;
    ++totalTransfers_;
    bwSeries_.record(sim_.now(), static_cast<double>(bytes));
    sim_.scheduleAt(done, std::move(onDone));
    return done;
}

double
PcieLink::utilisation() const
{
    const SimTime elapsed = std::max<SimTime>(sim_.now(), 1);
    const SimTime busy = std::min(busyAccum_, elapsed);
    return static_cast<double>(busy) / static_cast<double>(elapsed);
}

} // namespace chameleon::gpu
