#include "gpu/kv_cache.h"

namespace chameleon::gpu {

KvCache::KvCache(GpuMemory &mem, std::int64_t bytesPerToken, int pageTokens)
    : mem_(mem), bytesPerToken_(bytesPerToken), pageTokens_(pageTokens)
{
    CHM_CHECK(bytesPerToken > 0, "bytesPerToken must be positive");
    CHM_CHECK(pageTokens > 0, "pageTokens must be positive");
}

std::int64_t
KvCache::bytesForTokens(std::int64_t tokens) const
{
    CHM_CHECK(tokens >= 0, "negative token reservation");
    const std::int64_t pages = (tokens + pageTokens_ - 1) / pageTokens_;
    return pages * pageTokens_ * bytesPerToken_;
}

bool
KvCache::tryReserve(std::int64_t requestId, std::int64_t tokens)
{
    const std::int64_t want = bytesForTokens(tokens);
    auto it = reservations_.find(requestId);
    const std::int64_t have = it == reservations_.end() ? 0 : it->second.bytes;
    if (want <= have) {
        // Page already covers the new tokens; just record the count.
        if (it != reservations_.end())
            it->second.tokens = std::max(it->second.tokens, tokens);
        return true;
    }
    if (!mem_.tryAllocKv(want - have))
        return false;
    totalBytes_ += want - have;
    auto &res = reservations_[requestId];
    res.tokens = tokens;
    res.bytes = want;
    return true;
}

void
KvCache::release(std::int64_t requestId)
{
    auto it = reservations_.find(requestId);
    if (it == reservations_.end())
        return;
    mem_.freeKv(it->second.bytes);
    totalBytes_ -= it->second.bytes;
    reservations_.erase(it);
}

std::int64_t
KvCache::reservedTokens(std::int64_t requestId) const
{
    auto it = reservations_.find(requestId);
    return it == reservations_.end() ? 0 : it->second.tokens;
}

std::int64_t
KvCache::fragmentationBytes() const
{
    std::int64_t frag = 0;
    for (const auto &[id, res] : reservations_)
        frag += res.bytes - res.tokens * bytesPerToken_;
    return frag;
}

} // namespace chameleon::gpu
