/**
 * @file
 * GPU memory accounting.
 *
 * Tracks the memory regions of Fig. 1/6 of the paper: base-model weights
 * (static), activation workspace (static reserve), KV-cache pages, LoRA
 * adapters in use by running/queued requests, and the Chameleon adapter
 * cache occupying otherwise-idle memory. The invariant maintained is
 *     weights + workspace + kv + adaptersInUse + adapterCache + free
 *         == capacity
 * with every term non-negative.
 */

#ifndef CHAMELEON_GPU_GPU_MEMORY_H
#define CHAMELEON_GPU_GPU_MEMORY_H

#include <cstdint>

#include "simkit/check.h"

namespace chameleon::gpu {

/** Byte-level accounting of one engine's device memory. */
class GpuMemory
{
  public:
    /**
     * @param capacity total device bytes
     * @param weights resident base-model bytes (per-GPU shard under TP)
     * @param workspace activation/scratch reserve
     */
    GpuMemory(std::int64_t capacity, std::int64_t weights,
              std::int64_t workspace);

    std::int64_t capacity() const { return capacity_; }
    std::int64_t weightsBytes() const { return weights_; }
    std::int64_t workspaceBytes() const { return workspace_; }
    std::int64_t kvBytes() const { return kv_; }
    std::int64_t adapterInUseBytes() const { return adapterInUse_; }
    std::int64_t adapterCacheBytes() const { return adapterCache_; }

    /** Unallocated bytes. */
    std::int64_t freeBytes() const;

    /**
     * Idle memory in the paper's sense (§3.2): bytes neither pinned by
     * weights/workspace nor used by request state; the adapter cache
     * plus free memory.
     */
    std::int64_t idleBytes() const { return freeBytes() + adapterCache_; }

    /** Try to allocate KV bytes; false without side effects if no room. */
    bool tryAllocKv(std::int64_t bytes);
    /** Release KV bytes. */
    void freeKv(std::int64_t bytes);

    /** Account an adapter becoming active (loaded for running requests). */
    bool tryAllocAdapterInUse(std::int64_t bytes);
    void freeAdapterInUse(std::int64_t bytes);

    /** Move bytes between the in-use and cache adapter accounts. */
    void moveInUseToCache(std::int64_t bytes);
    void moveCacheToInUse(std::int64_t bytes);

    /** Grow/shrink the adapter cache account against free memory. */
    bool tryAllocAdapterCache(std::int64_t bytes);
    void freeAdapterCache(std::int64_t bytes);

  private:
    std::int64_t capacity_;
    std::int64_t weights_;
    std::int64_t workspace_;
    std::int64_t kv_ = 0;
    std::int64_t adapterInUse_ = 0;
    std::int64_t adapterCache_ = 0;
};

} // namespace chameleon::gpu

#endif // CHAMELEON_GPU_GPU_MEMORY_H
