#include "gpu/peer_link.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::gpu {

PeerLink::PeerLink(sim::Simulator &simulator, double bytesPerSecond,
                   sim::SimTime latency)
    : sim_(simulator), bytesPerSecond_(bytesPerSecond), latency_(latency)
{
    CHM_CHECK(bytesPerSecond_ > 0.0,
              "peer link bandwidth must be positive");
    CHM_CHECK(latency_ >= 0, "peer link latency must be >= 0");
}

sim::SimTime
PeerLink::serviceTime(std::int64_t bytes) const
{
    return latency_ + sim::fromSeconds(static_cast<double>(bytes) /
                                       bytesPerSecond_);
}

sim::SimTime
PeerLink::earliestCompletion(std::int64_t bytes) const
{
    return std::max(busyUntil_, sim_.now()) + serviceTime(bytes);
}

sim::SimTime
PeerLink::reserve(std::int64_t bytes)
{
    CHM_CHECK(bytes > 0, "peer transfer must carry bytes");
    busyUntil_ = earliestCompletion(bytes);
    totalBytes_ += bytes;
    ++totalTransfers_;
    return busyUntil_;
}

} // namespace chameleon::gpu
