/**
 * @file
 * Tenant descriptors and fairness metrics.
 *
 * The tenancy layer gives requests an owner: a tenant with a scheduler
 * weight, an offered-load share, and an SLO multiplier. TenantTable is
 * the lookup the fair schedulers and the reporting layer share; ids
 * beyond the configured table resolve to neutral defaults so partially
 * configured (or wholly anonymous) workloads keep working.
 */

#ifndef CHAMELEON_TENANCY_TENANT_TABLE_H
#define CHAMELEON_TENANCY_TENANT_TABLE_H

#include <vector>

#include "workload/request.h"

namespace chameleon::tenancy {

using workload::TenantId;

/** Static per-tenant configuration. */
struct TenantInfo
{
    /** Scheduler weight (WFQ service share, DRR quantum scale). */
    double weight = 1.0;
    /** Fraction of the offered load this tenant contributes (0 = n/a). */
    double rpsShare = 0.0;
    /** Per-tenant scale on the global TTFT SLO. */
    double sloMultiplier = 1.0;
};

/**
 * Lookup table of tenant descriptors, indexed by TenantId.
 *
 * Out-of-range ids (including every id of an unconfigured run) resolve
 * to weight 1.0 / SLO multiplier 1.0, so schedulers never need to guard
 * against tenants the config did not declare.
 */
class TenantTable
{
  public:
    /** Empty table: every tenant anonymous and equally weighted. */
    TenantTable() = default;

    /** `tenants` entries with default (neutral) descriptors. */
    explicit TenantTable(int tenants);

    void setWeight(TenantId tenant, double weight);
    void setRpsShare(TenantId tenant, double share);
    void setSloMultiplier(TenantId tenant, double multiplier);

    /** Scheduler weight; 1.0 for ids outside the table. */
    double weight(TenantId tenant) const;
    /** Offered-load share; 0.0 for ids outside the table. */
    double rpsShare(TenantId tenant) const;
    /** SLO scale; 1.0 for ids outside the table. */
    double sloMultiplier(TenantId tenant) const;

    int size() const { return static_cast<int>(rows_.size()); }

  private:
    TenantInfo &rowFor(TenantId tenant);
    std::vector<TenantInfo> rows_;
};

/**
 * Jain's fairness index over per-tenant allocations:
 * J = (sum x)^2 / (n * sum x^2), in (0, 1]; 1 iff all x equal.
 * Empty input (or all-zero allocations) reports 1.0 — nothing is unfair
 * about a run with nothing to share.
 */
double jainIndex(const std::vector<double> &allocations);

} // namespace chameleon::tenancy

#endif // CHAMELEON_TENANCY_TENANT_TABLE_H
