/**
 * @file
 * Weighted fair queueing over per-tenant wait queues.
 *
 * Start-time fair queueing (SFQ) variant: each request gets a virtual
 * start tag S = max(V, F_t) and advances its tenant's finish tag to
 * F_t = S + L / w_t, where L is the scheduler-visible service length
 * (prompt tokens + predicted output tokens) and w_t the tenant weight.
 * Admission always picks the waiting head with the smallest start tag;
 * the system virtual time V tracks the largest start tag admitted so
 * far, so an idle tenant re-enters at the current virtual time instead
 * of burning banked credit — the property that isolates victims from a
 * noisy neighbour.
 *
 * With a single tenant (any weight) the start tags are monotone in
 * arrival order, so admission degenerates to exactly FifoScheduler —
 * including head-of-line blocking on the first failed reservation.
 */

#ifndef CHAMELEON_TENANCY_WFQ_SCHEDULER_H
#define CHAMELEON_TENANCY_WFQ_SCHEDULER_H

#include <cstddef>
#include <deque>
#include <map>
#include <utility>

#include "serving/scheduler.h"
#include "tenancy/tenant_table.h"

namespace chameleon::tenancy {

/** Weighted fair queueing admission across tenants. */
class WfqScheduler : public serving::Scheduler
{
  public:
    explicit WfqScheduler(TenantTable table = {});

    const char *name() const override { return "wfq"; }

    void enqueue(serving::LiveRequest *r) override;
    void requeueFront(serving::LiveRequest *r) override;
    bool hasWaiting() const override { return waiting_ > 0; }
    std::size_t waitingCount() const override { return waiting_; }

    std::vector<serving::LiveRequest *> selectAdmissions(
        serving::AdmissionContext &ctx) override;

    void onRequestFinished(serving::LiveRequest *r) override;

    std::vector<serving::LiveRequest *> waitingSnapshot() const override;

    /** Current system virtual time (for tests). */
    double virtualTime() const { return virtualTime_; }

  private:
    struct Entry
    {
        serving::LiveRequest *req = nullptr;
        double startTag = 0.0;
    };

    struct Queue
    {
        std::deque<Entry> entries;
        /** Finish tag of the last request tagged for this tenant. */
        double lastFinishTag = 0.0;
    };

    static double serviceLength(const serving::LiveRequest *r);

    TenantTable table_;
    /** Ordered map: deterministic tenant iteration (lowest id wins ties). */
    std::map<TenantId, Queue> queues_;
    /** Tags survive admission so a squashed request requeues unchanged. */
    std::map<serving::LiveRequest *, double> startTags_;
    double virtualTime_ = 0.0;
    std::size_t waiting_ = 0;
};

} // namespace chameleon::tenancy

#endif // CHAMELEON_TENANCY_WFQ_SCHEDULER_H
