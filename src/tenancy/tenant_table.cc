#include "tenancy/tenant_table.h"

#include "simkit/check.h"

namespace chameleon::tenancy {

TenantTable::TenantTable(int tenants)
{
    CHM_CHECK(tenants >= 0, "tenant count must be non-negative");
    rows_.resize(static_cast<std::size_t>(tenants));
}

TenantInfo &
TenantTable::rowFor(TenantId tenant)
{
    CHM_CHECK(tenant >= 0, "tenant ids are non-negative");
    if (tenant >= size())
        rows_.resize(static_cast<std::size_t>(tenant) + 1);
    return rows_[static_cast<std::size_t>(tenant)];
}

void
TenantTable::setWeight(TenantId tenant, double weight)
{
    CHM_CHECK(weight > 0.0, "tenant weight must be positive");
    rowFor(tenant).weight = weight;
}

void
TenantTable::setRpsShare(TenantId tenant, double share)
{
    CHM_CHECK(share >= 0.0, "tenant rps share must be non-negative");
    rowFor(tenant).rpsShare = share;
}

void
TenantTable::setSloMultiplier(TenantId tenant, double multiplier)
{
    CHM_CHECK(multiplier > 0.0, "tenant SLO multiplier must be positive");
    rowFor(tenant).sloMultiplier = multiplier;
}

double
TenantTable::weight(TenantId tenant) const
{
    if (tenant < 0 || tenant >= size())
        return 1.0;
    return rows_[static_cast<std::size_t>(tenant)].weight;
}

double
TenantTable::rpsShare(TenantId tenant) const
{
    if (tenant < 0 || tenant >= size())
        return 0.0;
    return rows_[static_cast<std::size_t>(tenant)].rpsShare;
}

double
TenantTable::sloMultiplier(TenantId tenant) const
{
    if (tenant < 0 || tenant >= size())
        return 1.0;
    return rows_[static_cast<std::size_t>(tenant)].sloMultiplier;
}

double
jainIndex(const std::vector<double> &allocations)
{
    if (allocations.empty())
        return 1.0;
    double sum = 0.0;
    double sumSq = 0.0;
    for (const double x : allocations) {
        CHM_CHECK(x >= 0.0, "Jain's index needs non-negative allocations");
        sum += x;
        sumSq += x * x;
    }
    if (sumSq == 0.0)
        return 1.0;
    const double n = static_cast<double>(allocations.size());
    return (sum * sum) / (n * sumSq);
}

} // namespace chameleon::tenancy
