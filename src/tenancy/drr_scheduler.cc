#include "tenancy/drr_scheduler.h"

#include <cmath>

#include "simkit/check.h"

namespace chameleon::tenancy {

using serving::AdmissionContext;
using serving::LiveRequest;
using serving::ReserveResult;

DrrScheduler::DrrScheduler(TenantTable table, std::int64_t quantumTokens)
    : table_(std::move(table)), quantumTokens_(quantumTokens)
{
    CHM_CHECK(quantumTokens_ > 0, "DRR quantum must be positive");
}

void
DrrScheduler::activate(TenantId tenant, Queue &q)
{
    if (q.active)
        return;
    q.active = true;
    ring_.push_back(tenant);
}

void
DrrScheduler::enqueue(LiveRequest *r)
{
    Queue &q = queues_[r->req.tenant];
    q.entries.push_back(r);
    activate(r->req.tenant, q);
    ++waiting_;
}

void
DrrScheduler::requeueFront(LiveRequest *r)
{
    Queue &q = queues_[r->req.tenant];
    q.entries.push_front(r);
    activate(r->req.tenant, q);
    ++waiting_;
}

std::vector<LiveRequest *>
DrrScheduler::selectAdmissions(AdmissionContext &ctx)
{
    std::vector<LiveRequest *> admitted;
    // One DRR round per engine iteration: every active tenant is visited
    // at most once, banks quantum * weight, and admits what its deficit
    // covers. A failed reservation ends the whole selection (resources
    // are exhausted for this iteration) without charging the head.
    std::size_t visits = ring_.size();
    bool blocked = false;
    while (!blocked && visits-- > 0 && !ring_.empty() &&
           ctx.admissionSlots > 0 && ctx.prefillTokenBudget > 0) {
        const TenantId tenant = ring_.front();
        ring_.pop_front();
        Queue &q = queues_[tenant];
        const auto quantum = static_cast<std::int64_t>(
            std::llround(quantumTokens_ * table_.weight(tenant)));
        q.deficit += quantum > 0 ? quantum : 1;
        while (!q.entries.empty() && ctx.admissionSlots > 0 &&
               ctx.prefillTokenBudget > 0) {
            LiveRequest *head = q.entries.front();
            const std::int64_t cost = head->req.inputTokens;
            if (q.deficit < cost)
                break; // not enough credit this round
            if (ctx.tryReserve(head) != ReserveResult::Ok) {
                blocked = true;
                break;
            }
            q.deficit -= cost;
            q.entries.pop_front();
            --waiting_;
            admitted.push_back(head);
            ctx.prefillTokenBudget -= head->req.inputTokens;
            --ctx.admissionSlots;
        }
        if (q.entries.empty()) {
            // Drained tenants forfeit leftover credit and leave the ring.
            q.deficit = 0;
            q.active = false;
        } else {
            ring_.push_back(tenant);
        }
    }
    return admitted;
}

std::vector<LiveRequest *>
DrrScheduler::waitingSnapshot() const
{
    std::vector<LiveRequest *> out;
    out.reserve(waiting_);
    for (const auto &[tenant, q] : queues_) {
        (void)tenant;
        for (LiveRequest *r : q.entries)
            out.push_back(r);
    }
    return out;
}

std::vector<std::pair<TenantId, std::int64_t>>
DrrScheduler::deficits() const
{
    std::vector<std::pair<TenantId, std::int64_t>> out;
    out.reserve(queues_.size());
    for (const auto &[tenant, q] : queues_)
        out.emplace_back(tenant, q.deficit);
    return out;
}

} // namespace chameleon::tenancy
