/**
 * @file
 * Deficit round robin over per-tenant wait queues.
 *
 * Classic DRR (Shreedhar & Varghese): active tenants sit in a
 * round-robin ring; each visit banks quantum * weight prefill tokens of
 * deficit, and the tenant admits waiting heads while its deficit covers
 * the head's prompt tokens. A tenant whose queue drains leaves the ring
 * and forfeits its deficit, so idle tenants cannot bank credit — the
 * same noisy-neighbour isolation property WFQ provides, at O(1) per
 * admission instead of a queue scan.
 *
 * Deficit counters are only ever decremented when they cover the cost
 * being charged, so they are non-negative by construction (see the
 * property test in tests/tenancy_sched_test.cc).
 */

#ifndef CHAMELEON_TENANCY_DRR_SCHEDULER_H
#define CHAMELEON_TENANCY_DRR_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "serving/scheduler.h"
#include "tenancy/tenant_table.h"

namespace chameleon::tenancy {

/** Deficit-round-robin admission across tenants. */
class DrrScheduler : public serving::Scheduler
{
  public:
    explicit DrrScheduler(TenantTable table = {},
                          std::int64_t quantumTokens = 512);

    const char *name() const override { return "drr"; }

    void enqueue(serving::LiveRequest *r) override;
    void requeueFront(serving::LiveRequest *r) override;
    bool hasWaiting() const override { return waiting_ > 0; }
    std::size_t waitingCount() const override { return waiting_; }

    std::vector<serving::LiveRequest *> selectAdmissions(
        serving::AdmissionContext &ctx) override;

    std::vector<serving::LiveRequest *> waitingSnapshot() const override;

    /** Per-tenant deficit counters, for the non-negativity invariant. */
    std::vector<std::pair<TenantId, std::int64_t>> deficits() const;

  private:
    struct Queue
    {
        std::deque<serving::LiveRequest *> entries;
        std::int64_t deficit = 0;
        bool active = false;
    };

    void activate(TenantId tenant, Queue &q);

    TenantTable table_;
    std::int64_t quantumTokens_;
    std::map<TenantId, Queue> queues_;
    /** Round-robin ring of tenants with waiting requests. */
    std::deque<TenantId> ring_;
    std::size_t waiting_ = 0;
};

} // namespace chameleon::tenancy

#endif // CHAMELEON_TENANCY_DRR_SCHEDULER_H
