#include "tenancy/wfq_scheduler.h"

#include <algorithm>

#include "simkit/check.h"

namespace chameleon::tenancy {

using serving::AdmissionContext;
using serving::LiveRequest;
using serving::ReserveResult;

WfqScheduler::WfqScheduler(TenantTable table) : table_(std::move(table)) {}

double
WfqScheduler::serviceLength(const LiveRequest *r)
{
    // Scheduler-visible work: prompt tokens plus the *predicted* output
    // length — ground truth stays hidden, as everywhere else (§4.1).
    return static_cast<double>(r->req.inputTokens + r->predictedOutput);
}

void
WfqScheduler::enqueue(LiveRequest *r)
{
    Queue &q = queues_[r->req.tenant];
    const double start = std::max(virtualTime_, q.lastFinishTag);
    q.lastFinishTag =
        start + serviceLength(r) / table_.weight(r->req.tenant);
    startTags_[r] = start;
    q.entries.push_back(Entry{r, start});
    ++waiting_;
}

void
WfqScheduler::requeueFront(LiveRequest *r)
{
    // A squashed request keeps its original start tag: it already paid
    // for its slot in virtual time, so it re-enters at the queue front
    // ahead of anything tagged later.
    const auto it = startTags_.find(r);
    CHM_CHECK(it != startTags_.end(), "requeueFront for unknown request");
    queues_[r->req.tenant].entries.push_front(Entry{r, it->second});
    ++waiting_;
}

std::vector<LiveRequest *>
WfqScheduler::selectAdmissions(AdmissionContext &ctx)
{
    std::vector<LiveRequest *> admitted;
    while (waiting_ > 0 && ctx.admissionSlots > 0 &&
           ctx.prefillTokenBudget > 0) {
        // Pick the non-empty tenant queue whose head carries the
        // smallest start tag; map order breaks ties by lowest tenant id.
        Queue *best = nullptr;
        for (auto &[tenant, q] : queues_) {
            (void)tenant;
            if (q.entries.empty())
                continue;
            if (best == nullptr ||
                q.entries.front().startTag < best->entries.front().startTag)
                best = &q;
        }
        if (best == nullptr)
            break;
        LiveRequest *head = best->entries.front().req;
        const ReserveResult res = ctx.tryReserve(head);
        if (res != ReserveResult::Ok)
            break; // head-of-line blocking, as in FIFO
        virtualTime_ = std::max(virtualTime_, best->entries.front().startTag);
        best->entries.pop_front();
        --waiting_;
        admitted.push_back(head);
        ctx.prefillTokenBudget -= head->req.inputTokens;
        --ctx.admissionSlots;
    }
    return admitted;
}

void
WfqScheduler::onRequestFinished(LiveRequest *r)
{
    startTags_.erase(r);
}

std::vector<LiveRequest *>
WfqScheduler::waitingSnapshot() const
{
    std::vector<LiveRequest *> out;
    out.reserve(waiting_);
    for (const auto &[tenant, q] : queues_) {
        (void)tenant;
        for (const Entry &e : q.entries)
            out.push_back(e.req);
    }
    return out;
}

} // namespace chameleon::tenancy
