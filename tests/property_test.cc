/**
 * @file
 * Property-based tests: system-wide invariants checked across random
 * seeds and registered systems via parameterised suites.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/slo.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

struct RunOutput
{
    core::RunReport result;
    workload::Trace trace;
    model::CostModel cost{model::llama7B(), model::a40()};
};

core::SystemSpec
testbedSpec(const std::string &system)
{
    auto spec = core::SystemRegistry::global().lookup(system);
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    return spec;
}

RunOutput
runSeeded(const std::string &system, std::uint64_t seed, double rps = 8.0)
{
    static model::AdapterPool pool(model::llama7B(), 50);
    auto wl = workload::splitwiseLike();
    wl.rps = rps;
    wl.durationSeconds = 45.0;
    wl.numAdapters = 50;
    wl.seed = seed;
    workload::TraceGenerator gen(wl, &pool);
    RunOutput out;
    out.trace = gen.generate();
    out.result = core::runSpec(testbedSpec(system), &pool, out.trace);
    return out;
}

model::AdapterPool &
sharedPool()
{
    static model::AdapterPool pool(model::llama7B(), 50);
    return pool;
}

} // namespace

/** (system, seed) grid. */
class SystemInvariants
    : public ::testing::TestWithParam<std::tuple<const char *,
                                                 std::uint64_t>>
{
};

TEST_P(SystemInvariants, ConservationAndSanity)
{
    const auto [system, seed] = GetParam();
    const auto out = runSeeded(system, seed);
    const auto &s = out.result.stats;

    // Every submitted request finishes once the trace drains.
    EXPECT_EQ(s.finished, static_cast<std::int64_t>(out.trace.size()));
    EXPECT_EQ(s.records.size(), out.trace.size());

    // Latency ordering invariants per request.
    for (const auto &rec : s.records) {
        EXPECT_GE(rec.ttft, 0);
        EXPECT_GE(rec.e2e, rec.ttft);
        EXPECT_GE(rec.queueDelay, 0);
        EXPECT_LE(rec.queueDelay, rec.ttft);
        // TTFT can never beat the pure compute lower bound.
        const auto lower = out.cost.prefillTime(rec.inputTokens);
        EXPECT_GE(rec.ttft, lower)
            << "request " << rec.id << " beat physics";
    }

    // Hit + miss counts cover every adapter-carrying arrival at least
    // once (squash re-queues may add more).
    std::int64_t adapter_reqs = 0;
    for (const auto &r : out.trace.requests())
        adapter_reqs += r.adapter != model::kNoAdapter ? 1 : 0;
    EXPECT_GE(s.adapterHits + s.adapterMisses, adapter_reqs);

    // The slowdown of every request is at least ~1 (cannot beat
    // run-alone by more than model rounding).
    const auto sd = serving::slowdowns(s.records, out.cost, &sharedPool());
    EXPECT_GE(sd.percentile(0.0), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    SystemsBySeeds, SystemInvariants,
    ::testing::Combine(
        ::testing::Values("slora", "slora-sjf", "slora-chunked",
                          "chameleon-nocache", "chameleon-nosched",
                          "chameleon", "chameleon-gdsf",
                          "chameleon-static",
                          // composed-grammar points of the policy space
                          "chameleon+lru+prefetch", "slora+cache"),
        ::testing::Values(1u, 2u, 3u)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

/** Load monotonicity: higher offered load never lowers tail latency
 *  by much (allowing small non-monotonic noise). */
class LoadMonotonicity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LoadMonotonicity, P99GrowsWithLoad)
{
    const auto lo = runSeeded(GetParam(), 11, 6.0);
    const auto hi = runSeeded(GetParam(), 11, 11.0);
    EXPECT_GT(hi.result.stats.ttft.p99(),
              0.8 * lo.result.stats.ttft.p99());
    EXPECT_GT(hi.result.stats.e2e.p99(), lo.result.stats.e2e.p99());
}

INSTANTIATE_TEST_SUITE_P(Systems, LoadMonotonicity,
                         ::testing::Values("slora", "chameleon"));

/** Predictor-accuracy property: Chameleon's P99 TTFT with a perfect
 *  predictor is no worse than with a broken one (within noise). */
TEST(PredictorProperty, BetterAccuracyNeverMuchWorse)
{
    model::AdapterPool pool(model::llama7B(), 50);
    auto wl = workload::splitwiseLike();
    wl.rps = 9.0;
    wl.durationSeconds = 60.0;
    wl.numAdapters = 50;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    auto spec = testbedSpec("chameleon");
    spec.predictor.accuracy = 1.0;
    const auto perfect = core::runSpec(spec, &pool, trace);
    spec.predictor.accuracy = 0.3;
    const auto broken = core::runSpec(spec, &pool, trace);
    EXPECT_LE(perfect.stats.ttft.p99(),
              1.25 * broken.stats.ttft.p99());
}

/** Cache property: the Chameleon cache never transfers more bytes than
 *  the cacheless baseline on the same trace. */
TEST(CacheProperty, NeverMoreTrafficThanBaseline)
{
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        const auto base = runSeeded("slora", seed);
        const auto cham = runSeeded("chameleon", seed);
        EXPECT_LE(cham.result.pcieBytes, base.result.pcieBytes)
            << "seed " << seed;
        EXPECT_GE(cham.result.cacheHitRate, base.result.cacheHitRate - 0.02)
            << "seed " << seed;
    }
}

/** Determinism across systems, including composed ones. */
TEST(DeterminismProperty, IdenticalRunsIdenticalResults)
{
    for (const char *system :
         {"slora", "chameleon", "chameleon-prefetch",
          "chameleon+gdsf+prefetch"}) {
        const auto a = runSeeded(system, 9);
        const auto b = runSeeded(system, 9);
        EXPECT_EQ(a.result.stats.ttft.sorted(), b.result.stats.ttft.sorted());
        EXPECT_EQ(a.result.pcieBytes, b.result.pcieBytes);
        EXPECT_EQ(a.result.stats.iterations, b.result.stats.iterations);
    }
}
