/**
 * @file
 * Property-based tests: system-wide invariants checked across random
 * seeds and system kinds via parameterised suites.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/slo.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

struct RunOutput
{
    core::RunResult result;
    workload::Trace trace;
    model::CostModel cost{model::llama7B(), model::a40()};
};

RunOutput
runSeeded(core::SystemKind kind, std::uint64_t seed, double rps = 8.0)
{
    static model::AdapterPool pool(model::llama7B(), 50);
    core::SystemConfig cfg;
    cfg.engine.model = model::llama7B();
    cfg.engine.gpu = model::a40();
    auto wl = workload::splitwiseLike();
    wl.rps = rps;
    wl.durationSeconds = 45.0;
    wl.numAdapters = 50;
    wl.seed = seed;
    workload::TraceGenerator gen(wl, &pool);
    RunOutput out;
    out.trace = gen.generate();
    out.result = core::runSystem(kind, cfg, &pool, out.trace);
    return out;
}

model::AdapterPool &
sharedPool()
{
    static model::AdapterPool pool(model::llama7B(), 50);
    return pool;
}

} // namespace

/** (kind, seed) grid. */
class SystemInvariants
    : public ::testing::TestWithParam<std::tuple<core::SystemKind,
                                                 std::uint64_t>>
{
};

TEST_P(SystemInvariants, ConservationAndSanity)
{
    const auto [kind, seed] = GetParam();
    const auto out = runSeeded(kind, seed);
    const auto &s = out.result.stats;

    // Every submitted request finishes once the trace drains.
    EXPECT_EQ(s.finished, static_cast<std::int64_t>(out.trace.size()));
    EXPECT_EQ(s.records.size(), out.trace.size());

    // Latency ordering invariants per request.
    for (const auto &rec : s.records) {
        EXPECT_GE(rec.ttft, 0);
        EXPECT_GE(rec.e2e, rec.ttft);
        EXPECT_GE(rec.queueDelay, 0);
        EXPECT_LE(rec.queueDelay, rec.ttft);
        // TTFT can never beat the pure compute lower bound.
        const auto lower = out.cost.prefillTime(rec.inputTokens);
        EXPECT_GE(rec.ttft, lower)
            << "request " << rec.id << " beat physics";
    }

    // Hit + miss counts cover every adapter-carrying arrival at least
    // once (squash re-queues may add more).
    std::int64_t adapter_reqs = 0;
    for (const auto &r : out.trace.requests())
        adapter_reqs += r.adapter != model::kNoAdapter ? 1 : 0;
    EXPECT_GE(s.adapterHits + s.adapterMisses, adapter_reqs);

    // The slowdown of every request is at least ~1 (cannot beat
    // run-alone by more than model rounding).
    const auto sd = serving::slowdowns(s.records, out.cost, &sharedPool());
    EXPECT_GE(sd.percentile(0.0), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    KindsBySeeds, SystemInvariants,
    ::testing::Combine(
        ::testing::Values(core::SystemKind::SLora,
                          core::SystemKind::SLoraSjf,
                          core::SystemKind::SLoraChunked,
                          core::SystemKind::ChameleonNoCache,
                          core::SystemKind::ChameleonNoSched,
                          core::SystemKind::Chameleon,
                          core::SystemKind::ChameleonGdsf,
                          core::SystemKind::ChameleonStatic),
        ::testing::Values(1u, 2u, 3u)),
    [](const auto &info) {
        std::string name = core::systemName(std::get<0>(info.param));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

/** Load monotonicity: higher offered load never lowers tail latency
 *  by much (allowing small non-monotonic noise). */
class LoadMonotonicity : public ::testing::TestWithParam<core::SystemKind>
{
};

TEST_P(LoadMonotonicity, P99GrowsWithLoad)
{
    const auto lo = runSeeded(GetParam(), 11, 6.0);
    const auto hi = runSeeded(GetParam(), 11, 11.0);
    EXPECT_GT(hi.result.stats.ttft.p99(),
              0.8 * lo.result.stats.ttft.p99());
    EXPECT_GT(hi.result.stats.e2e.p99(), lo.result.stats.e2e.p99());
}

INSTANTIATE_TEST_SUITE_P(Kinds, LoadMonotonicity,
                         ::testing::Values(core::SystemKind::SLora,
                                           core::SystemKind::Chameleon));

/** Predictor-accuracy property: Chameleon's P99 TTFT with a perfect
 *  predictor is no worse than with a broken one (within noise). */
TEST(PredictorProperty, BetterAccuracyNeverMuchWorse)
{
    model::AdapterPool pool(model::llama7B(), 50);
    core::SystemConfig cfg;
    cfg.engine.model = model::llama7B();
    cfg.engine.gpu = model::a40();
    auto wl = workload::splitwiseLike();
    wl.rps = 9.0;
    wl.durationSeconds = 60.0;
    wl.numAdapters = 50;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    cfg.predictorAccuracy = 1.0;
    const auto perfect =
        core::runSystem(core::SystemKind::Chameleon, cfg, &pool, trace);
    cfg.predictorAccuracy = 0.3;
    const auto broken =
        core::runSystem(core::SystemKind::Chameleon, cfg, &pool, trace);
    EXPECT_LE(perfect.stats.ttft.p99(),
              1.25 * broken.stats.ttft.p99());
}

/** Cache property: the Chameleon cache never transfers more bytes than
 *  the cacheless baseline on the same trace. */
TEST(CacheProperty, NeverMoreTrafficThanBaseline)
{
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        const auto base = runSeeded(core::SystemKind::SLora, seed);
        const auto cham = runSeeded(core::SystemKind::Chameleon, seed);
        EXPECT_LE(cham.result.pcieBytes, base.result.pcieBytes)
            << "seed " << seed;
        EXPECT_GE(cham.result.cacheHitRate, base.result.cacheHitRate - 0.02)
            << "seed " << seed;
    }
}

/** Determinism across all kinds. */
TEST(DeterminismProperty, IdenticalRunsIdenticalResults)
{
    for (const auto kind :
         {core::SystemKind::SLora, core::SystemKind::Chameleon,
          core::SystemKind::ChameleonPrefetch}) {
        const auto a = runSeeded(kind, 9);
        const auto b = runSeeded(kind, 9);
        EXPECT_EQ(a.result.stats.ttft.sorted(), b.result.stats.ttft.sorted());
        EXPECT_EQ(a.result.pcieBytes, b.result.pcieBytes);
        EXPECT_EQ(a.result.stats.iterations, b.result.stats.iterations);
    }
}
