/**
 * @file
 * Unit tests for the S-LoRA baseline adapter manager: fetch-on-demand,
 * async prefetch for queued requests, and discard-on-idle.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_memory.h"
#include "gpu/pcie_link.h"
#include "model/adapter.h"
#include "model/llm.h"
#include "serving/slora_adapter_manager.h"
#include "simkit/simulator.h"

using namespace chameleon;

namespace {

struct Fixture
{
    sim::Simulator simulator;
    model::AdapterPool pool{model::llama7B(), 10};
    gpu::GpuMemory mem{48ll << 30, 0, 0};
    gpu::PcieLink link{simulator, [](std::int64_t bytes) {
                           return sim::fromMillis(
                               static_cast<double>(bytes) / 1e7); // 10 GB/s
                       }};
    serving::SLoraAdapterManager mgr{pool, mem, link};
};

} // namespace

TEST(SLoraManager, AcquireLoadsAndBecomesResident)
{
    Fixture f;
    EXPECT_FALSE(f.mgr.isResident(0));
    const auto ready = f.mgr.acquire(0, f.simulator.now());
    EXPECT_GT(ready, 0);
    EXPECT_GT(f.mem.adapterInUseBytes(), 0);
    f.simulator.run();
    EXPECT_TRUE(f.mgr.isResident(0));
}

TEST(SLoraManager, DiscardOnIdle)
{
    Fixture f;
    f.mgr.acquire(0, 0);
    f.simulator.run();
    ASSERT_TRUE(f.mgr.isResident(0));
    f.mgr.release(0);
    // No running or queued reference: memory returned immediately.
    EXPECT_FALSE(f.mgr.isResident(0));
    EXPECT_EQ(f.mem.adapterInUseBytes(), 0);
    EXPECT_EQ(f.mgr.cachedBytes(), 0);
}

TEST(SLoraManager, SharedAdapterSurvivesUntilLastRelease)
{
    Fixture f;
    f.mgr.acquire(3, 0);
    f.mgr.acquire(3, 0);
    f.simulator.run();
    f.mgr.release(3);
    EXPECT_TRUE(f.mgr.isResident(3)); // still one user
    f.mgr.release(3);
    EXPECT_FALSE(f.mgr.isResident(3));
}

TEST(SLoraManager, QueuedReferencePinsAdapter)
{
    Fixture f;
    f.mgr.onRequestQueued(5, 0); // prefetch starts
    f.simulator.run();
    EXPECT_TRUE(f.mgr.isResident(5));
    f.mgr.onRequestDequeued(5);
    EXPECT_FALSE(f.mgr.isResident(5)); // nothing references it anymore
}

TEST(SLoraManager, PrefetchOverlapsWithQueueing)
{
    Fixture f;
    f.mgr.onRequestQueued(2, 0);
    f.simulator.run(); // transfer completes while request waits
    const auto ready = f.mgr.acquire(2, f.simulator.now());
    EXPECT_EQ(ready, f.simulator.now()); // no load on the critical path
    f.mgr.onRequestDequeued(2);
}

TEST(SLoraManager, HitMissAccountingAtArrival)
{
    Fixture f;
    f.mgr.onRequestQueued(1, 0); // miss: not resident at arrival
    f.simulator.run();
    f.mgr.onRequestQueued(1, f.simulator.now()); // hit: prefetched earlier
    EXPECT_EQ(f.mgr.misses(), 1);
    EXPECT_EQ(f.mgr.hits(), 1);
    f.mgr.onRequestDequeued(1);
    f.mgr.onRequestDequeued(1);
}

TEST(SLoraManager, AcquireFailsWhenMemoryExhausted)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 10);
    // Room for almost nothing: rank-8 adapter is ~16.8 MB.
    gpu::GpuMemory mem(8ll << 20, 0, 0);
    gpu::PcieLink link(simulator,
                       [](std::int64_t) { return sim::fromMillis(1.0); });
    serving::SLoraAdapterManager mgr(pool, mem, link);
    EXPECT_EQ(mgr.acquire(0, 0), sim::kTimeNever);
    EXPECT_FALSE(mgr.canMakeResident(0));
    EXPECT_FALSE(mgr.tryFreeMemory(16ll << 20)); // nothing to evict
}

TEST(SLoraManager, SchedulingCycleRetriesFailedPrefetch)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 10);
    gpu::GpuMemory mem(20ll << 20, 0, 0); // fits one rank-8 adapter
    gpu::PcieLink link(simulator,
                       [](std::int64_t) { return sim::fromMillis(1.0); });
    serving::SLoraAdapterManager mgr(pool, mem, link);
    ASSERT_NE(mgr.acquire(0, 0), sim::kTimeNever); // occupies memory
    mgr.onRequestQueued(1, 0);                     // prefetch fails: full
    simulator.run();
    EXPECT_FALSE(mgr.isResident(1));
    mgr.release(0); // frees memory
    mgr.onSchedulingCycle({1}, simulator.now());
    simulator.run();
    EXPECT_TRUE(mgr.isResident(1)); // retry succeeded
}
