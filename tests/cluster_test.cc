/**
 * @file
 * Tests for multi-GPU serving: tensor-parallel engines and the
 * data-parallel cluster with its two-level scheduler (§4.4).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "chameleon/system.h"
#include "routing/autoscaler.h"
#include "routing/router.h"
#include "predict/length_predictor.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/cluster.h"
#include "serving/fifo_scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

core::SystemSpec
specFor(const std::string &system, const model::ModelSpec &model,
        const model::GpuSpec &gpu, int tpDegree = 1)
{
    auto spec = core::SystemRegistry::global().lookup(system);
    spec.engine.model = model;
    spec.engine.gpu = gpu;
    spec.engine.tpDegree = tpDegree;
    return spec;
}

} // namespace

TEST(TensorParallel, EngineAggregatesGpuMemory)
{
    model::AdapterPool pool(model::llama70B(), 10);
    core::Runner runner(
        specFor("chameleon", model::llama70B(), model::a100(80), 4),
        &pool);
    EXPECT_EQ(runner.engine().memory().capacity(),
              4ll * 80 * 1024 * 1024 * 1024);
}

TEST(TensorParallel, HigherTpShortensPrefillIterations)
{
    model::AdapterPool pool(model::llama70B(), 10);
    auto wl = workload::splitwiseLike();
    wl.rps = 2.0;
    wl.durationSeconds = 20.0;
    wl.numAdapters = 10;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    auto run_tp = [&](int tp) {
        return core::runSpec(
            specFor("slora", model::llama70B(), model::a100(80), tp),
            &pool, trace);
    };
    // Llama-70B does not fit a single 80 GiB GPU: compare TP2 vs TP4.
    const auto tp2 = run_tp(2);
    const auto tp4 = run_tp(4);
    EXPECT_EQ(tp2.stats.finished, tp4.stats.finished);
    // More GPUs -> faster decode iterations.
    EXPECT_LT(tp4.stats.tbt.p50(), tp2.stats.tbt.p50());
}

namespace {

std::unique_ptr<serving::ServingEngine>
makeEngine(sim::Simulator &simulator, const model::AdapterPool &pool,
           predict::LengthPredictor &predictor)
{
    serving::EngineConfig cfg;
    cfg.model = model::llama7B();
    cfg.gpu = model::a40();
    auto engine = std::make_unique<serving::ServingEngine>(
        simulator, cfg, &pool, std::make_unique<serving::FifoScheduler>(),
        &predictor);
    engine->setAdapterManager(
        std::make_unique<serving::SLoraAdapterManager>(
            pool, engine->memory(), engine->pcieLink()));
    return engine;
}

} // namespace

TEST(DataParallel, SpreadsLoadAcrossEngines)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        4,
        routing::RouterPolicy::JoinShortestQueue);

    auto wl = workload::splitwiseLike();
    wl.rps = 12.0;
    wl.durationSeconds = 30.0;
    wl.numAdapters = 20;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    cluster.submitTrace(trace);
    simulator.run();
    cluster.finalize();

    std::int64_t total = 0;
    for (const auto &engine : cluster.engines()) {
        const auto finished = engine->stats().finished;
        EXPECT_GT(finished, 0);
        // JSQ keeps the shares roughly balanced.
        EXPECT_LT(finished,
                  static_cast<std::int64_t>(trace.size()) / 2);
        total += finished;
    }
    EXPECT_EQ(total, static_cast<std::int64_t>(trace.size()));
    EXPECT_EQ(cluster.mergedRecords().size(), trace.size());
}

TEST(DataParallel, RoundRobinAlternates)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        2,
        routing::RouterPolicy::RoundRobin);
    workload::Trace trace;
    for (int i = 0; i < 10; ++i) {
        trace.append(workload::Request{i, sim::fromSeconds(0.1 * i), 16, 4,
                                       static_cast<model::AdapterId>(i % 20)});
    }
    cluster.submitTrace(trace);
    simulator.run();
    cluster.finalize();
    EXPECT_EQ(cluster.engines()[0]->stats().finished, 5);
    EXPECT_EQ(cluster.engines()[1]->stats().finished, 5);
}

TEST(DataParallel, AffinityPartitionsAdaptersAcrossReplicas)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 40);
    predict::LengthPredictor predictor(1.0);
    routing::RouterConfig rcfg;
    rcfg.spillMargin = 1 << 20; // no spillover: pure hashing
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        4,
        routing::RouterPolicy::AdapterAffinity, rcfg);

    auto wl = workload::splitwiseLike();
    wl.rps = 8.0;
    wl.durationSeconds = 40.0;
    wl.numAdapters = 40;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    cluster.submitTrace(trace);
    simulator.run();
    cluster.finalize();

    // Without spillover every adapter is served by exactly one replica.
    std::map<model::AdapterId, std::set<std::size_t>> replicasOf;
    for (std::size_t i = 0; i < cluster.engines().size(); ++i) {
        for (const auto &rec : cluster.engines()[i]->stats().records) {
            if (rec.adapter != model::kNoAdapter)
                replicasOf[rec.adapter].insert(i);
        }
    }
    EXPECT_GT(replicasOf.size(), 0u);
    for (const auto &[adapter, replicas] : replicasOf)
        EXPECT_EQ(replicas.size(), 1u) << "adapter " << adapter;
    EXPECT_EQ(cluster.mergedRecords().size(), trace.size());
    EXPECT_EQ(cluster.mergedStats().finished,
              static_cast<std::int64_t>(trace.size()));
}

TEST(DataParallel, AffinityRoutingReducesAdapterPcieTraffic)
{
    // Chameleon replicas via the core facade: identical skewed trace,
    // affinity vs round-robin dispatch.
    model::AdapterPool pool(model::llama7B(), 100);
    auto spec = specFor("chameleon", model::llama7B(), model::a40());
    spec.cluster.replicas = 4;

    auto wl = workload::splitwiseLike();
    wl.rps = 24.0;
    wl.durationSeconds = 60.0;
    wl.numAdapters = 100;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    spec.cluster.router = routing::RouterPolicy::RoundRobin;
    const auto rr = core::runSpec(spec, &pool, trace);
    spec.cluster.router = routing::RouterPolicy::AdapterAffinity;
    const auto affinity = core::runSpec(spec, &pool, trace);

    EXPECT_EQ(rr.stats.finished, affinity.stats.finished);
    EXPECT_LT(affinity.pcieTransfers, rr.pcieTransfers);
    EXPECT_GT(affinity.cacheHitRate, rr.cacheHitRate);
}

TEST(Heterogeneous, ExplicitHomogeneousOverridesMatchTheImplicitFleet)
{
    // Filling cluster.replicaEngines with copies of the base engine
    // must be indistinguishable from leaving it empty — the resolved
    // per-replica configs are identical, so the whole simulation is.
    model::AdapterPool pool(model::llama7B(), 40);
    auto spec = specFor("chameleon", model::llama7B(), model::a40());
    spec.cluster.replicas = 3;
    spec.cluster.router = routing::RouterPolicy::AdapterAffinityCacheAware;

    auto wl = workload::splitwiseLike();
    wl.rps = 18.0;
    wl.durationSeconds = 40.0;
    wl.numAdapters = 40;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    const auto implicit = core::runSpec(spec, &pool, trace);
    spec.cluster.replicaEngines = {spec.engine, spec.engine, spec.engine};
    const auto explicitFleet = core::runSpec(spec, &pool, trace);

    EXPECT_EQ(implicit.stats.ttft.sorted(),
              explicitFleet.stats.ttft.sorted());
    EXPECT_EQ(implicit.pcieBytes, explicitFleet.pcieBytes);
    EXPECT_EQ(implicit.perReplicaFinished,
              explicitFleet.perReplicaFinished);
    EXPECT_EQ(implicit.perReplicaServiceRate,
              explicitFleet.perReplicaServiceRate);
}

TEST(Heterogeneous, ReplicasBuildFromTheirOwnEngineConfigs)
{
    model::AdapterPool pool(model::llama7B(), 20);
    auto spec = specFor("chameleon", model::llama7B(), model::a40());
    spec.cluster.replicas = 2;
    serving::EngineConfig fast = spec.engine;
    fast.gpu = model::a100(80);
    spec.cluster.replicaEngines = {fast, spec.engine};

    core::Runner runner(spec, &pool);
    const auto &engines = runner.cluster().engines();
    ASSERT_EQ(engines.size(), 2u);
    EXPECT_EQ(engines[0]->config().gpu.name, "a100-80g");
    EXPECT_EQ(engines[1]->config().gpu.name, "a40-48g");
    // More memory on the A100 replica: capacity reflects its GPU.
    EXPECT_GT(engines[0]->memory().capacity(),
              engines[1]->memory().capacity());
    // The nominal service rates order the replicas by hardware, and
    // the cluster's routing weights are the max-normalised ratios.
    const auto &rates = runner.cluster().serviceRates();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_GT(rates[0], rates[1]);
    EXPECT_DOUBLE_EQ(runner.cluster().serviceWeight(0), 1.0);
    EXPECT_GT(runner.cluster().serviceWeight(1), 0.0);
    EXPECT_LT(runner.cluster().serviceWeight(1), 1.0);
}

TEST(Heterogeneous, CapacityAwareRoutingFollowsTheFastReplicas)
{
    model::AdapterPool pool(model::llama7B(), 50);
    auto spec = specFor("chameleon", model::llama7B(), model::a40());
    spec.cluster.replicas = 2;
    spec.cluster.router = routing::RouterPolicy::JoinShortestQueue;
    serving::EngineConfig fast = spec.engine;
    fast.gpu = model::a100(48);
    spec.cluster.replicaEngines = {fast, spec.engine};

    auto wl = workload::splitwiseLike();
    wl.rps = 14.0;
    wl.durationSeconds = 60.0;
    wl.numAdapters = 50;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    const auto report = core::runSpec(spec, &pool, trace);
    EXPECT_EQ(report.stats.finished,
              static_cast<std::int64_t>(trace.size()));
    ASSERT_EQ(report.perReplicaFinished.size(), 2u);
    ASSERT_EQ(report.perReplicaServiceRate.size(), 2u);
    EXPECT_GT(report.perReplicaServiceRate[0],
              report.perReplicaServiceRate[1]);
    // Weighted JSQ sends the larger share to the faster replica.
    EXPECT_GT(report.perReplicaFinished[0], report.perReplicaFinished[1]);
}

TEST(DataParallel, DrainedReplicaFinishesInFlightWorkWithoutNewDispatches)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        2,
        routing::RouterPolicy::RoundRobin);

    auto wl = workload::splitwiseLike();
    wl.rps = 10.0;
    wl.durationSeconds = 40.0;
    wl.numAdapters = 20;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    cluster.submitTrace(trace);

    // Let both replicas accumulate in-flight work, then drain one.
    simulator.runUntil(10 * sim::kSec);
    ASSERT_GT(cluster.engines()[1]->outstanding(), 0);
    cluster.resize(1);
    EXPECT_EQ(cluster.activeReplicas(), 1u);
    EXPECT_EQ(cluster.replicaState(1),
              serving::DataParallelCluster::ReplicaState::Drained);

    simulator.run();
    cluster.finalize();
    // Nothing in flight was dropped...
    EXPECT_EQ(cluster.mergedStats().finished,
              static_cast<std::int64_t>(trace.size()));
    EXPECT_GT(cluster.engines()[1]->stats().finished, 0);
    // ...and the drained replica received no dispatch after the drain.
    for (const auto &record : cluster.engines()[1]->stats().records)
        EXPECT_LE(record.arrival, 10 * sim::kSec);
}

TEST(DataParallel, ScaleUpBootsBeforeServingAndResumesAfterMidBootDrain)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        1,
        routing::RouterPolicy::JoinShortestQueue);

    // Inert watermarks: the test drives scaling through resize() so
    // every transition happens at a chosen instant.
    routing::AutoscalerConfig acfg;
    acfg.minReplicas = 1;
    acfg.maxReplicas = 4;
    acfg.lowWatermark = 0.0;
    acfg.highWatermark = 1e18;
    acfg.bootMs = 60000.0; // + weight-load: deadline in (60 s, 75 s)
    cluster.enableAutoscaler(acfg);

    auto wl = workload::splitwiseLike();
    wl.rps = 6.0;
    wl.durationSeconds = 30.0;
    wl.numAdapters = 20;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    cluster.submitTrace(trace);

    using State = serving::DataParallelCluster::ReplicaState;
    simulator.runUntil(5 * sim::kSec);
    cluster.resize(2);
    // The new replica is provisioned but not dispatchable: it boots.
    EXPECT_EQ(cluster.activeReplicas(), 2u);
    EXPECT_EQ(cluster.bootingReplicas(), 1u);
    EXPECT_EQ(cluster.replicaCount(), 1u);
    EXPECT_EQ(cluster.replicaState(1), State::Booting);
    EXPECT_EQ(cluster.bootStats().boots, 1);
    EXPECT_GT(cluster.bootStats().totalBootTime, 60 * sim::kSec);

    // Drain it mid-boot...
    simulator.runUntil(10 * sim::kSec);
    cluster.resize(1);
    EXPECT_EQ(cluster.replicaState(1), State::Drained);
    // ...and reactivate before the deadline: the boot resumes (no
    // second boot is paid) instead of restarting.
    simulator.runUntil(20 * sim::kSec);
    cluster.resize(2);
    EXPECT_EQ(cluster.replicaState(1), State::Booting);
    EXPECT_EQ(cluster.bootStats().boots, 1);

    // Requests dispatched while it boots are counted as delayed.
    simulator.runUntil(30 * sim::kSec);
    EXPECT_GT(cluster.bootStats().requestsDelayedByBoot, 0);

    // At the deadline it joins the dispatchable set.
    simulator.runUntil(90 * sim::kSec);
    EXPECT_EQ(cluster.replicaState(1), State::Active);
    EXPECT_EQ(cluster.bootingReplicas(), 0u);
    EXPECT_EQ(cluster.replicaCount(), 2u);

    // A later reactivation after the weights are loaded is instant.
    cluster.resize(1);
    cluster.resize(2);
    EXPECT_EQ(cluster.replicaState(1), State::Active);
    EXPECT_EQ(cluster.bootStats().boots, 1);

    simulator.run();
    cluster.finalize();
    EXPECT_EQ(cluster.mergedStats().finished,
              static_cast<std::int64_t>(trace.size()));
}

TEST(DataParallel, MinReplicaClampProvisionsWarmInitialCapacity)
{
    // enableAutoscaler's clamp up to minReplicas is initial capacity
    // (the cluster exists before the trace begins): those builds must
    // not boot even with the cold-start model enabled — only
    // simulation-time scale-ups pay it.
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        1,
        routing::RouterPolicy::JoinShortestQueue);

    routing::AutoscalerConfig acfg;
    acfg.minReplicas = 3;
    acfg.maxReplicas = 4;
    acfg.bootMs = 60000.0;
    cluster.enableAutoscaler(acfg);
    EXPECT_EQ(cluster.activeReplicas(), 3u);
    EXPECT_EQ(cluster.replicaCount(), 3u); // dispatchable immediately
    EXPECT_EQ(cluster.bootingReplicas(), 0u);
    EXPECT_EQ(cluster.bootStats().boots, 0);
}

TEST(ColdStart, BootTimeIsWeightLoadPlusConstantAndZeroWhenDisabled)
{
    serving::EngineConfig cfg;
    cfg.model = model::llama7B();
    cfg.gpu = model::a40();

    const serving::ColdStartModel disabled(0.0);
    EXPECT_FALSE(disabled.enabled());
    EXPECT_EQ(disabled.bootTime(cfg), 0);

    const serving::ColdStartModel enabled(5000.0);
    EXPECT_TRUE(enabled.enabled());
    // Weight load dominates: ~13 GB over a ~10.5 GB/s link is over a
    // second on top of the 5 s constant.
    EXPECT_GT(enabled.bootTime(cfg), sim::fromMillis(6000.0));
    EXPECT_EQ(enabled.bootTime(cfg),
              enabled.weightLoadTime(cfg) + sim::fromMillis(5000.0));

    // A bigger model boots slower on the same link.
    serving::EngineConfig big = cfg;
    big.model = model::llama13B();
    EXPECT_GT(enabled.bootTime(big), enabled.bootTime(cfg));
}

TEST(Heterogeneous, FastestScaleUpPolicyInstantiatesTheFastCandidate)
{
    // Mixed fleet {A100, A40}; a bursty overload forces scale-ups.
    model::AdapterPool pool(model::llama7B(), 30);
    auto spec = specFor("chameleon", model::llama7B(), model::a40());
    spec.cluster.replicas = 2;
    serving::EngineConfig fast = spec.engine;
    fast.gpu = model::a100(48);
    spec.cluster.replicaEngines = {fast, spec.engine};
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.minReplicas = 2;
    spec.cluster.autoscaler.maxReplicas = 6;
    spec.cluster.autoscaler.replicaServiceRps = 6.0;
    spec.cluster.autoscaler.scaleUpPolicy =
        routing::ScaleUpPolicy::Fastest;

    auto wl = workload::splitwiseLike();
    wl.rps = 10.0;
    wl.durationSeconds = 90.0;
    wl.numAdapters = 30;
    wl.bursts.push_back(workload::Burst{10.0, 60.0, 4.0});
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    core::Runner runner(spec, &pool);
    const auto report = runner.run(trace);
    EXPECT_EQ(report.stats.finished,
              static_cast<std::int64_t>(trace.size()));
    ASSERT_GT(report.scaleUps, 0);
    const auto &engines = runner.cluster().engines();
    ASSERT_GT(engines.size(), 2u);
    // Every replica the policy instantiated is the fast candidate (the
    // default policy would have built base-engine A40s here).
    for (std::size_t i = 2; i < engines.size(); ++i)
        EXPECT_EQ(engines[i]->config().gpu.name, "a100-48g") << i;
}

TEST(Heterogeneous, MeasuredRatesBlendIntoTheRoutingWeights)
{
    model::AdapterPool pool(model::llama7B(), 30);
    auto spec = specFor("chameleon", model::llama7B(), model::a40());
    spec.cluster.replicas = 2;
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.minReplicas = 2;
    spec.cluster.autoscaler.maxReplicas = 2;
    spec.cluster.autoscaler.measuredRateAlpha = 0.2;

    auto wl = workload::splitwiseLike();
    wl.rps = 12.0;
    wl.durationSeconds = 60.0;
    wl.numAdapters = 30;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    core::Runner runner(spec, &pool);
    const auto report = runner.run(trace);
    EXPECT_EQ(report.stats.finished,
              static_cast<std::int64_t>(trace.size()));
    ASSERT_EQ(report.perReplicaEffectiveRate.size(), 2u);
    // The measured estimates moved off the static nominal values (a
    // batching engine completes far more than one isolated request per
    // isolated-E2E interval), and the cluster view reflects them.
    EXPECT_NE(report.perReplicaEffectiveRate,
              report.perReplicaServiceRate);
    EXPECT_GT(report.perReplicaEffectiveRate[0],
              report.perReplicaServiceRate[0]);
}

TEST(DataParallel, AutoscalerGrowsAndDrainsTheCluster)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&](std::size_t) {
            return makeEngine(simulator, pool, predictor);
        },
        1,
        routing::RouterPolicy::JoinShortestQueue);

    routing::AutoscalerConfig acfg;
    acfg.minReplicas = 1;
    acfg.maxReplicas = 4;
    acfg.evalPeriodSeconds = 5.0;
    acfg.replicaServiceRps = 8.0;
    acfg.downCooldownPeriods = 2;
    cluster.enableAutoscaler(acfg);

    // 30 s burst at 4x the sustainable single-replica rate, then quiet.
    auto wl = workload::splitwiseLike();
    wl.rps = 8.0;
    wl.durationSeconds = 120.0;
    wl.numAdapters = 20;
    wl.bursts.push_back(workload::Burst{10.0, 40.0, 4.0});
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    cluster.submitTrace(trace);
    simulator.run();
    cluster.finalize();

    // The burst forces scale-ups; the quiet tail drains some again.
    EXPECT_GT(cluster.scaleUps(), 0);
    EXPECT_GT(cluster.engines().size(), 1u);
    EXPECT_LE(cluster.engines().size(), 4u);
    EXPECT_GT(cluster.scaleDowns(), 0);
    EXPECT_LT(cluster.activeReplicas(), cluster.engines().size());
    EXPECT_EQ(cluster.mergedStats().finished,
              static_cast<std::int64_t>(trace.size()));
}

namespace {

/** p99 TTFT (seconds) over requests arriving at/after `fromSeconds`. */
double
p99TtftAfter(const serving::DataParallelCluster &cluster,
             double fromSeconds)
{
    std::vector<double> ttfts;
    const sim::SimTime cutoff = sim::fromSeconds(fromSeconds);
    for (const auto &rec : cluster.mergedRecords()) {
        if (rec.arrival >= cutoff)
            ttfts.push_back(sim::toSeconds(rec.ttft));
    }
    EXPECT_FALSE(ttfts.empty());
    std::sort(ttfts.begin(), ttfts.end());
    return ttfts[static_cast<std::size_t>(
        0.99 * static_cast<double>(ttfts.size() - 1))];
}

} // namespace

TEST(ClosedLoop, MeasuredDemandScalesUpADegradedFleet)
{
    // Two replicas with identical spec sheets, but one is throttled so
    // its real throughput is a fraction of nominalServiceRate. The
    // watermark is parked out of reach: any scale-up must come from the
    // demand signal. Nominal capacity signals count two healthy
    // replicas and never scale; measured signals see the degradation
    // and grow the fleet.
    model::AdapterPool pool(model::llama7B(), 30);
    const auto runWith = [&](routing::DemandSource source) {
        auto spec = specFor("chameleon", model::llama7B(), model::a40());
        spec.cluster.replicas = 2;
        spec.cluster.router = routing::RouterPolicy::JoinShortestQueue;
        serving::EngineConfig degraded = spec.engine;
        degraded.maxRunning = 2;
        degraded.maxAdmissionsPerIter = 1;
        degraded.admissionTokenBudget = 128;
        spec.cluster.replicaEngines = {spec.engine, degraded};
        spec.cluster.autoscale = true;
        spec.cluster.autoscaler.minReplicas = 2;
        spec.cluster.autoscaler.maxReplicas = 4;
        spec.cluster.autoscaler.replicaServiceRps = 8.0;
        spec.cluster.autoscaler.highWatermark = 1e6; // demand only
        spec.cluster.autoscaler.measuredRateAlpha = 0.3;
        spec.cluster.autoscaler.demandSource = source;

        // A metronome trace — 10 rps at exactly 100 ms spacing — so the
        // forecast slope is zero and the demand signal alone decides.
        std::vector<workload::Request> trace;
        for (int i = 0; i < 600; ++i) {
            workload::Request request;
            request.id = static_cast<workload::RequestId>(i);
            request.arrival = (i + 1) * (sim::kSec / 10);
            request.inputTokens = 64;
            request.outputTokens = 48;
            request.adapter = static_cast<model::AdapterId>(i % 30);
            trace.push_back(request);
        }
        core::Runner runner(spec, &pool);
        return runner.run(workload::Trace(std::move(trace)));
    };
    const auto nominal = runWith(routing::DemandSource::Nominal);
    const auto measured = runWith(routing::DemandSource::Measured);
    // Steady 10 rps over 8 rps/replica: demand 2 == nominal capacity 2,
    // so the open loop sits still while the backlog belies it.
    EXPECT_EQ(nominal.peakReplicas, 2u);
    EXPECT_EQ(nominal.scaleUps, 0);
    // The closed loop discounts the throttled replica and scales.
    EXPECT_GT(measured.scaleUps, 0);
    EXPECT_GT(measured.peakReplicas, 2u);
}

TEST(ClosedLoop, BootAwareHorizonCutsThePostStepTail)
{
    // A fig28-shaped load step against a slow-booting fleet: the
    // static-horizon scaler orders replicas that land a full boot too
    // late, the boot-aware one looks `bootSeconds` ahead and has them
    // warm when the step arrives in force.
    model::AdapterPool pool(model::llama7B(), 30);
    auto wl = workload::splitwiseLike();
    wl.rps = 6.0;
    wl.durationSeconds = 140.0;
    wl.numAdapters = 30;
    wl.bursts.push_back(workload::Burst{40.0, 100.0, 4.0});
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    const auto p99With = [&](bool bootAware) {
        auto spec = specFor("chameleon", model::llama7B(), model::a40());
        spec.cluster.replicas = 1;
        spec.cluster.autoscale = true;
        spec.cluster.autoscaler.minReplicas = 1;
        spec.cluster.autoscaler.maxReplicas = 6;
        spec.cluster.autoscaler.replicaServiceRps = 8.0;
        spec.cluster.autoscaler.highWatermark = 1e6; // demand only
        spec.cluster.autoscaler.forecastWindowSeconds = 20.0;
        spec.cluster.autoscaler.downCooldownPeriods = 4;
        spec.cluster.autoscaler.bootMs = 30000.0;
        spec.cluster.autoscaler.bootAwareHorizon = bootAware;
        core::Runner runner(spec, &pool);
        const auto report = runner.run(trace);
        EXPECT_GT(report.scaleUps, 0) << "bootAware=" << bootAware;
        return p99TtftAfter(runner.cluster(), 40.0);
    };
    const double staticP99 = p99With(false);
    const double bootAwareP99 = p99With(true);
    EXPECT_LT(bootAwareP99, staticP99);
}
