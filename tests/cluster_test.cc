/**
 * @file
 * Tests for multi-GPU serving: tensor-parallel engines and the
 * data-parallel cluster with its two-level scheduler (§4.4).
 */

#include <gtest/gtest.h>

#include "chameleon/system.h"
#include "predict/length_predictor.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/cluster.h"
#include "serving/fifo_scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "workload/trace_gen.h"

using namespace chameleon;

TEST(TensorParallel, EngineAggregatesGpuMemory)
{
    core::SystemConfig cfg;
    cfg.engine.model = model::llama70B();
    cfg.engine.gpu = model::a100(80);
    cfg.engine.tpDegree = 4;
    model::AdapterPool pool(model::llama70B(), 10);
    core::System system(core::SystemKind::Chameleon, cfg, &pool);
    EXPECT_EQ(system.engine().memory().capacity(),
              4ll * 80 * 1024 * 1024 * 1024);
}

TEST(TensorParallel, HigherTpShortensPrefillIterations)
{
    model::AdapterPool pool(model::llama70B(), 10);
    auto wl = workload::splitwiseLike();
    wl.rps = 2.0;
    wl.durationSeconds = 20.0;
    wl.numAdapters = 10;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();

    auto run_tp = [&](int tp) {
        core::SystemConfig cfg;
        cfg.engine.model = model::llama70B();
        cfg.engine.gpu = model::a100(80);
        cfg.engine.tpDegree = tp;
        return core::runSystem(core::SystemKind::SLora, cfg, &pool, trace);
    };
    // Llama-70B does not fit a single 80 GiB GPU: compare TP2 vs TP4.
    const auto tp2 = run_tp(2);
    const auto tp4 = run_tp(4);
    EXPECT_EQ(tp2.stats.finished, tp4.stats.finished);
    // More GPUs -> faster decode iterations.
    EXPECT_LT(tp4.stats.tbt.p50(), tp2.stats.tbt.p50());
}

namespace {

std::unique_ptr<serving::ServingEngine>
makeEngine(sim::Simulator &simulator, const model::AdapterPool &pool,
           predict::LengthPredictor &predictor)
{
    serving::EngineConfig cfg;
    cfg.model = model::llama7B();
    cfg.gpu = model::a40();
    auto engine = std::make_unique<serving::ServingEngine>(
        simulator, cfg, &pool, std::make_unique<serving::FifoScheduler>(),
        &predictor);
    engine->setAdapterManager(
        std::make_unique<serving::SLoraAdapterManager>(
            pool, engine->memory(), engine->pcieLink()));
    return engine;
}

} // namespace

TEST(DataParallel, SpreadsLoadAcrossEngines)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&] { return makeEngine(simulator, pool, predictor); }, 4,
        serving::DispatchPolicy::JoinShortestQueue);

    auto wl = workload::splitwiseLike();
    wl.rps = 12.0;
    wl.durationSeconds = 30.0;
    wl.numAdapters = 20;
    workload::TraceGenerator gen(wl, &pool);
    const auto trace = gen.generate();
    cluster.submitTrace(trace);
    simulator.run();
    cluster.finalize();

    std::int64_t total = 0;
    for (const auto &engine : cluster.engines()) {
        const auto finished = engine->stats().finished;
        EXPECT_GT(finished, 0);
        // JSQ keeps the shares roughly balanced.
        EXPECT_LT(finished,
                  static_cast<std::int64_t>(trace.size()) / 2);
        total += finished;
    }
    EXPECT_EQ(total, static_cast<std::int64_t>(trace.size()));
    EXPECT_EQ(cluster.mergedRecords().size(), trace.size());
}

TEST(DataParallel, RoundRobinAlternates)
{
    sim::Simulator simulator;
    model::AdapterPool pool(model::llama7B(), 20);
    predict::LengthPredictor predictor(1.0);
    serving::DataParallelCluster cluster(
        simulator,
        [&] { return makeEngine(simulator, pool, predictor); }, 2,
        serving::DispatchPolicy::RoundRobin);
    workload::Trace trace;
    for (int i = 0; i < 10; ++i) {
        trace.append(workload::Request{i, sim::fromSeconds(0.1 * i), 16, 4,
                                       static_cast<model::AdapterId>(i % 20)});
    }
    cluster.submitTrace(trace);
    simulator.run();
    cluster.finalize();
    EXPECT_EQ(cluster.engines()[0]->stats().finished, 5);
    EXPECT_EQ(cluster.engines()[1]->stats().finished, 5);
}
