/**
 * @file
 * Integration tests for the serving engine: continuous batching, TTFT/
 * TBT accounting, adapter-load stalls, KV reservation, and squashing.
 */

#include <gtest/gtest.h>

#include "simkit/distributions.h"
#include "simkit/rng.h"
#include "test_util.h"
#include "workload/trace.h"

using namespace chameleon;
using testutil::BaselineEngine;

namespace {

workload::Request
mkReq(std::int64_t id, sim::SimTime arrival, std::int64_t in,
      std::int64_t out, model::AdapterId adapter = model::kNoAdapter)
{
    return workload::Request{id, arrival, in, out, adapter};
}

} // namespace

TEST(Engine, SingleBaseRequestMatchesIsolatedCost)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 142, 1));
    f.simulator.run();
    const auto &stats = f.engine->stats();
    ASSERT_EQ(stats.finished, 1);
    // TTFT should match the cost model's isolated prefill time closely
    // (one iteration, no queueing, no adapter).
    const auto expected =
        f.engine->costModel().isolatedTtft(142, 0, 0, false);
    EXPECT_NEAR(stats.ttft.p50(), sim::toSeconds(expected),
                0.05 * sim::toSeconds(expected));
}

TEST(Engine, SingleAdapterRequestPaysLoadOnCriticalPath)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 142, 1, 0)); // adapter 0 (rank 8)
    f.simulator.run();
    const auto &stats = f.engine->stats();
    ASSERT_EQ(stats.finished, 1);
    const auto &rec = stats.records.front();
    EXPECT_GT(rec.adapterStall, 0); // transfer was on the critical path
    const auto isolated = f.engine->costModel().isolatedTtft(
        142, f.pool.spec(0).rank, f.pool.spec(0).bytes, true);
    EXPECT_NEAR(static_cast<double>(rec.ttft),
                static_cast<double>(isolated),
                0.10 * static_cast<double>(isolated));
}

TEST(Engine, EmitsAllTokensAndFrees)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 16, 20, 2));
    f.simulator.run();
    const auto &stats = f.engine->stats();
    ASSERT_EQ(stats.finished, 1);
    EXPECT_EQ(stats.records.front().outputTokens, 20);
    // All resources returned.
    EXPECT_EQ(f.engine->memory().kvBytes(), 0);
    EXPECT_EQ(f.engine->memory().adapterInUseBytes(), 0);
    EXPECT_EQ(f.engine->runningCount(), 0u);
    EXPECT_EQ(f.engine->outstanding(), 0);
}

TEST(Engine, TbtTracksDecodeIterations)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 16, 50));
    f.simulator.run();
    const auto &stats = f.engine->stats();
    // Single-request decode iteration on A40 is ~25 ms.
    EXPECT_NEAR(stats.tbt.p50(), 25.5, 4.0);
    EXPECT_GE(stats.iterations, 50);
}

TEST(Engine, ContinuousBatchingOverlapsRequests)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 16, 200));
    f.engine->submit(mkReq(2, sim::fromSeconds(0.5), 16, 20));
    f.simulator.run();
    const auto &stats = f.engine->stats();
    ASSERT_EQ(stats.finished, 2);
    // Request 2 finishes long before request 1 (iteration-level
    // scheduling admits and retires mid-flight).
    const auto &r1 = stats.records.back();
    const auto &r2 = stats.records.front();
    EXPECT_EQ(r2.id, 2);
    EXPECT_LT(r2.arrival + r2.e2e, r1.arrival + r1.e2e);
}

TEST(Engine, SharedAdapterLoadsOnce)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 16, 50, 3));
    f.engine->submit(mkReq(2, sim::fromMillis(100.0), 16, 50, 3));
    f.simulator.run();
    EXPECT_EQ(f.engine->pcieLink().totalTransfers(), 1);
    EXPECT_EQ(f.engine->stats().finished, 2);
}

TEST(Engine, KvReservationIsConservativeForBaselines)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 16, 2));
    // Drive exactly one iteration so the request is admitted.
    f.simulator.runUntil(sim::fromMillis(1.0));
    const auto reserved = f.engine->kvCache().reservedTokens(1);
    EXPECT_GE(reserved, 16 + f.engine->config().maxNewTokens);
}

TEST(Engine, PredictedReservationUsesPredictor)
{
    auto cfg = BaselineEngine::defaultConfig();
    cfg.predictedReservation = true;
    BaselineEngine f(cfg);
    f.engine->submit(mkReq(1, 0, 16, 40)); // perfect predictor
    f.simulator.runUntil(sim::fromMillis(1.0));
    const auto reserved = f.engine->kvCache().reservedTokens(1);
    EXPECT_LT(reserved, 16 + cfg.maxNewTokens);
    EXPECT_GE(reserved, 16 + 40 - 16); // bucket midpoint may undershoot
    f.simulator.run();
    EXPECT_EQ(f.engine->stats().finished, 1);
}

TEST(Engine, ChunkedPrefillSpreadsLongPrompts)
{
    auto cfg = BaselineEngine::defaultConfig();
    cfg.prefillChunkTokens = 64;
    BaselineEngine chunked(cfg);
    chunked.engine->submit(mkReq(1, 0, 512, 1));
    chunked.simulator.run();

    BaselineEngine whole;
    whole.engine->submit(mkReq(1, 0, 512, 1));
    whole.simulator.run();

    // Chunked prefill needs several iterations for one prompt and a
    // slightly higher TTFT (per-iteration overheads), cf. §3.3.
    EXPECT_GE(chunked.engine->stats().iterations, 8);
    EXPECT_EQ(whole.engine->stats().iterations, 1);
    EXPECT_GT(chunked.engine->stats().ttft.p50(),
              whole.engine->stats().ttft.p50());
}

TEST(Engine, SquashResetsProgressAndRequeues)
{
    BaselineEngine f;
    f.engine->submit(mkReq(1, 0, 16, 100, 1));
    f.simulator.runUntil(sim::fromSeconds(1.0)); // mid-decode
    ASSERT_EQ(f.engine->runningCount(), 1u);
    serving::LiveRequest *victim = f.engine->findRequest(1);
    ASSERT_NE(victim, nullptr);
    const auto generated_before = victim->generated;
    EXPECT_GT(generated_before, 0);

    f.engine->squash(victim);
    EXPECT_EQ(victim->phase, serving::RequestPhase::Waiting);
    EXPECT_EQ(victim->generated, 0);
    EXPECT_EQ(victim->prefilled, 0);
    EXPECT_TRUE(f.engine->scheduler().hasWaiting());
    EXPECT_EQ(f.engine->memory().kvBytes(), 0);

    // The squashed request re-executes to completion.
    f.simulator.run();
    EXPECT_EQ(f.engine->stats().finished, 1);
    EXPECT_EQ(f.engine->stats().records.front().outputTokens, 100);
}

TEST(Engine, DrainsCleanlyUnderLoad)
{
    BaselineEngine f;
    sim::Rng rng(9);
    sim::SimTime t = 0;
    for (int i = 0; i < 200; ++i) {
        t += sim::fromSeconds(sim::sampleExponential(rng, 10.0));
        const auto in = 8 + static_cast<std::int64_t>(rng.nextBelow(200));
        const auto out = 1 + static_cast<std::int64_t>(rng.nextBelow(100));
        const auto adapter =
            static_cast<model::AdapterId>(rng.nextBelow(10));
        f.engine->submit(mkReq(i, t, in, out, adapter));
    }
    f.simulator.run();
    const auto &stats = f.engine->stats();
    EXPECT_EQ(stats.finished, 200);
    EXPECT_EQ(f.engine->memory().kvBytes(), 0);
    EXPECT_EQ(f.engine->memory().adapterInUseBytes(), 0);
    EXPECT_EQ(f.engine->kvCache().totalBytes(), 0);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto run_once = [] {
        BaselineEngine f;
        sim::Rng rng(4);
        sim::SimTime t = 0;
        for (int i = 0; i < 100; ++i) {
            t += sim::fromSeconds(sim::sampleExponential(rng, 8.0));
            f.engine->submit(mkReq(i, t,
                                   8 + static_cast<std::int64_t>(
                                           rng.nextBelow(100)),
                                   1 + static_cast<std::int64_t>(
                                           rng.nextBelow(50)),
                                   static_cast<model::AdapterId>(
                                       rng.nextBelow(10))));
        }
        f.simulator.run();
        return f.engine->stats().e2e.sorted();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, MemorySamplesRecorded)
{
    BaselineEngine f;
    for (int i = 0; i < 20; ++i)
        f.engine->submit(mkReq(i, sim::fromSeconds(i), 64, 40, i % 10));
    f.simulator.run();
    EXPECT_FALSE(f.engine->stats().memTotalUsed.empty());
    EXPECT_FALSE(f.engine->stats().memKv.empty());
}
