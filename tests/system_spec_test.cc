/**
 * @file
 * Tests for the SystemSpec / SystemRegistry / Runner redesign:
 *  - preset equivalence: every legacy SystemKind wiring, rebuilt by
 *    hand exactly as the old monolithic switch did, produces
 *    bit-identical seeded stats to the new SystemSpec path;
 *  - registry round-trip (name -> spec -> name) and the composition
 *    grammar;
 *  - SystemSpec::validate() rejections with actionable messages.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "chameleon/cache_manager.h"
#include "chameleon/mlq_scheduler.h"
#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "predict/length_predictor.h"
#include "serving/fifo_scheduler.h"
#include "serving/sjf_scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

const std::vector<std::string> &
legacyKinds()
{
    static const std::vector<std::string> kinds{
        "slora",
        "slora-sjf",
        "slora-chunked",
        "chameleon-nocache",
        "chameleon-nosched",
        "chameleon",
        "chameleon-lru",
        "chameleon-fairshare",
        "chameleon-gdsf",
        "chameleon-prefetch",
        "chameleon-static",
        "chameleon-output-only",
        "chameleon-degree1",
    };
    return kinds;
}

bool
legacyUsesMlq(const std::string &kind)
{
    return kind != "slora" && kind != "slora-sjf" &&
           kind != "slora-chunked" && kind != "chameleon-nosched";
}

bool
legacyUsesCache(const std::string &kind)
{
    return kind != "slora" && kind != "slora-sjf" &&
           kind != "slora-chunked" && kind != "chameleon-nocache";
}

/**
 * The old System wiring, transliterated from the deleted SystemKind
 * switch in system.cc: FIFO/SJF vs MLQ, S-LoRA manager vs cache, the
 * per-kind eviction/WRS/static/prefetch tweaks, submitTrace directly
 * on the engine. This is the reference the new path must match bit
 * for bit.
 */
struct LegacySystem
{
    sim::Simulator sim;
    predict::LengthPredictor predictor{0.8, 0xC0FFEE};
    std::unique_ptr<serving::ServingEngine> engine;
    core::MlqScheduler *mlq = nullptr;

    LegacySystem(const std::string &kind, const model::AdapterPool &pool)
    {
        serving::EngineConfig ecfg;
        ecfg.model = model::llama7B();
        ecfg.gpu = model::a40();
        ecfg.predictedReservation = legacyUsesMlq(kind);
        if (kind == "slora-chunked")
            ecfg.prefillChunkTokens = 64;

        std::unique_ptr<serving::Scheduler> scheduler;
        if (!legacyUsesMlq(kind)) {
            if (kind == "slora-sjf")
                scheduler = std::make_unique<serving::SjfScheduler>();
            else
                scheduler = std::make_unique<serving::FifoScheduler>();
        } else {
            core::MlqConfig mcfg;
            mcfg.sloSeconds = 5.0;
            mcfg.refreshPeriod = 300 * sim::kSec;
            mcfg.kvBytesPerToken = ecfg.model.kvBytesPerToken();
            const std::int64_t pool_bytes =
                ecfg.gpu.memBytes - ecfg.model.weightsBytes() -
                ecfg.workspacePerGpu;
            mcfg.totalTokens = pool_bytes / mcfg.kvBytesPerToken;
            if (kind == "chameleon-static")
                mcfg.dynamic = false;
            if (kind == "chameleon-output-only")
                mcfg.wrsForm = core::WrsForm::OutputOnly;
            if (kind == "chameleon-degree1")
                mcfg.wrsForm = core::WrsForm::Degree1;
            auto owned =
                std::make_unique<core::MlqScheduler>(mcfg, &pool);
            mlq = owned.get();
            scheduler = std::move(owned);
        }

        engine = std::make_unique<serving::ServingEngine>(
            sim, ecfg, &pool, std::move(scheduler), &predictor);

        if (!legacyUsesCache(kind)) {
            engine->setAdapterManager(
                std::make_unique<serving::SLoraAdapterManager>(
                    pool, engine->memory(), engine->pcieLink(),
                    /*prefetchEnabled=*/true));
        } else {
            core::CacheConfig ccfg;
            if (kind == "chameleon-lru")
                ccfg.evictionPolicy = "lru";
            else if (kind == "chameleon-fairshare")
                ccfg.evictionPolicy = "fairshare";
            else if (kind == "chameleon-gdsf")
                ccfg.evictionPolicy = "gdsf";
            ccfg.predictivePrefetch = kind == "chameleon-prefetch";
            ccfg.predictiveTopK = 8;
            engine->setAdapterManager(std::make_unique<core::CacheManager>(
                pool, engine->memory(), engine->pcieLink(),
                engine->costModel(), ccfg));
        }
    }

    core::RunReport run(const workload::Trace &trace)
    {
        engine->submitTrace(trace);
        sim.run();
        engine->finalize();
        core::RunReport report;
        report.stats = engine->stats();
        report.pcieBytes = engine->pcieLink().totalBytes();
        report.pcieTransfers = engine->pcieLink().totalTransfers();
        report.cacheHitRate = report.stats.cacheHitRate();
        if (auto *cache = dynamic_cast<core::CacheManager *>(
                &engine->adapterManager()))
            report.cacheEvictions = cache->evictions();
        if (mlq != nullptr)
            report.mlqQueues = mlq->queueCount();
        return report;
    }
};

workload::Trace
seededTrace(const model::AdapterPool &pool, std::uint64_t seed)
{
    auto wl = workload::splitwiseLike();
    wl.rps = 8.0;
    wl.durationSeconds = 45.0;
    wl.numAdapters = 50;
    wl.seed = seed;
    workload::TraceGenerator gen(wl, &pool);
    return gen.generate();
}

model::AdapterPool &
testPool()
{
    static model::AdapterPool pool(model::llama7B(), 50);
    return pool;
}

core::SystemSpec
testbedSpec(const std::string &system)
{
    auto spec = core::SystemRegistry::global().lookup(system);
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    return spec;
}

} // namespace

// ---------------------------------------------------------------------
// Preset equivalence: legacy wiring vs the SystemSpec path.
// ---------------------------------------------------------------------

class PresetEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PresetEquivalence, LegacyWiringBitIdentical)
{
    const auto &kind = GetParam();
    const auto trace = seededTrace(testPool(), 42);

    LegacySystem legacy(kind, testPool());
    const auto expect = legacy.run(trace);
    const auto got =
        core::runSpec(testbedSpec(kind), &testPool(), trace);

    EXPECT_EQ(got.stats.finished, expect.stats.finished);
    EXPECT_EQ(got.stats.ttft.sorted(), expect.stats.ttft.sorted());
    EXPECT_EQ(got.stats.tbt.sorted(), expect.stats.tbt.sorted());
    EXPECT_EQ(got.stats.e2e.sorted(), expect.stats.e2e.sorted());
    EXPECT_EQ(got.stats.iterations, expect.stats.iterations);
    EXPECT_EQ(got.stats.preemptions, expect.stats.preemptions);
    EXPECT_EQ(got.stats.squashes, expect.stats.squashes);
    EXPECT_EQ(got.stats.bypasses, expect.stats.bypasses);
    EXPECT_EQ(got.stats.prefillTokens, expect.stats.prefillTokens);
    EXPECT_EQ(got.stats.decodeTokens, expect.stats.decodeTokens);
    EXPECT_EQ(got.pcieBytes, expect.pcieBytes);
    EXPECT_EQ(got.pcieTransfers, expect.pcieTransfers);
    EXPECT_EQ(got.cacheEvictions, expect.cacheEvictions);
    EXPECT_EQ(got.mlqQueues, expect.mlqQueues);
}

INSTANTIATE_TEST_SUITE_P(AllLegacyKinds, PresetEquivalence,
                         ::testing::ValuesIn(legacyKinds()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return name;
                         });

// ---------------------------------------------------------------------
// Registry: round-trip, presets, grammar, custom registration.
// ---------------------------------------------------------------------

TEST(SystemRegistry, AllLegacyKindsAreRegistered)
{
    const auto &registry = core::SystemRegistry::global();
    for (const auto &kind : legacyKinds()) {
        EXPECT_TRUE(registry.has(kind)) << kind;
        EXPECT_FALSE(registry.description(kind).empty()) << kind;
    }
    EXPECT_GE(registry.names().size(), legacyKinds().size());
}

TEST(SystemRegistry, NameSpecNameRoundTrip)
{
    const auto &registry = core::SystemRegistry::global();
    for (const auto &name : registry.names()) {
        const auto spec = registry.lookup(name);
        EXPECT_EQ(spec.name, name);
    }
    // Composed lookups carry their full grammar as the name.
    EXPECT_EQ(registry.lookup("chameleon+gdsf+prefetch").name,
              "chameleon+gdsf+prefetch");
}

TEST(SystemRegistry, PresetFunctionsMatchRegistryEntries)
{
    const auto &registry = core::SystemRegistry::global();
    const std::vector<std::pair<std::string, core::SystemSpec>> presets{
        {"slora", core::presets::slora()},
        {"slora-sjf", core::presets::sloraSjf()},
        {"slora-chunked", core::presets::sloraChunked()},
        {"chameleon-nocache", core::presets::chameleonNoCache()},
        {"chameleon-nosched", core::presets::chameleonNoSched()},
        {"chameleon", core::presets::chameleon()},
        {"chameleon-lru", core::presets::chameleonLru()},
        {"chameleon-fairshare", core::presets::chameleonFairShare()},
        {"chameleon-gdsf", core::presets::chameleonGdsf()},
        {"chameleon-prefetch", core::presets::chameleonPrefetch()},
        {"chameleon-static", core::presets::chameleonStatic()},
        {"chameleon-output-only", core::presets::chameleonOutputOnly()},
        {"chameleon-degree1", core::presets::chameleonDegree1()},
    };
    for (const auto &[name, preset] : presets) {
        const auto spec = registry.lookup(name);
        EXPECT_EQ(spec.name, preset.name) << name;
        EXPECT_EQ(spec.scheduler.policy, preset.scheduler.policy) << name;
        EXPECT_EQ(spec.scheduler.wrsForm, preset.scheduler.wrsForm)
            << name;
        EXPECT_EQ(spec.scheduler.dynamicQueues,
                  preset.scheduler.dynamicQueues)
            << name;
        EXPECT_EQ(spec.adapters.policy, preset.adapters.policy) << name;
        EXPECT_EQ(spec.adapters.eviction, preset.adapters.eviction)
            << name;
        EXPECT_EQ(spec.adapters.predictivePrefetch,
                  preset.adapters.predictivePrefetch)
            << name;
        EXPECT_EQ(spec.chunkedPrefill, preset.chunkedPrefill) << name;
    }
}

TEST(SystemRegistry, GrammarComposesAxes)
{
    const auto &registry = core::SystemRegistry::global();

    const auto composed = registry.lookup("chameleon+gdsf+prefetch");
    EXPECT_EQ(composed.adapters.eviction, core::EvictionKind::Gdsf);
    EXPECT_TRUE(composed.adapters.predictivePrefetch);
    EXPECT_EQ(composed.adapters.prefetchTopK, 8u);

    const auto wide = registry.lookup("chameleon+prefetch16");
    EXPECT_EQ(wide.adapters.prefetchTopK, 16u);

    const auto sjf = registry.lookup("slora+sjf+cache");
    EXPECT_EQ(sjf.scheduler.policy, core::SchedulerPolicy::Sjf);
    EXPECT_EQ(sjf.adapters.policy, core::AdapterPolicy::ChameleonCache);

    const auto chunked = registry.lookup("slora+chunked128");
    EXPECT_TRUE(chunked.chunkedPrefill);
    EXPECT_EQ(chunked.chunkTokens, 128);

    const auto history = registry.lookup("chameleon+history");
    EXPECT_EQ(history.predictor.kind, "history");
}

TEST(SystemRegistry, UnknownNamesFailWithActionableErrors)
{
    const auto &registry = core::SystemRegistry::global();

    std::string error;
    EXPECT_FALSE(registry.find("no-such-system", &error).has_value());
    EXPECT_NE(error.find("unknown system"), std::string::npos);
    EXPECT_NE(error.find("--list-systems"), std::string::npos);

    error.clear();
    EXPECT_FALSE(registry.find("chameleon+frobnicate", &error).has_value());
    EXPECT_NE(error.find("unknown system modifier"), std::string::npos);
    EXPECT_NE(error.find("gdsf"), std::string::npos); // lists known mods

    // Stray '+' (trailing or doubled) is a malformed name, not a
    // silent run of the base system.
    for (const char *malformed :
         {"chameleon+", "chameleon++gdsf", "chameleon+gdsf+"}) {
        error.clear();
        EXPECT_FALSE(registry.find(malformed, &error).has_value())
            << malformed;
        EXPECT_NE(error.find("empty modifier"), std::string::npos)
            << malformed;
    }
}

TEST(SystemRegistry, CustomRegistrationIsLookedUpAndListed)
{
    core::SystemRegistry registry; // fresh instance, presets included
    auto spec = registry.lookup("chameleon")
                    .withEviction(core::EvictionKind::Lru)
                    .withPrefetch(4);
    registry.add("my-system", spec, "custom test system");
    EXPECT_TRUE(registry.has("my-system"));
    const auto found = registry.lookup("my-system");
    EXPECT_EQ(found.name, "my-system"); // add() stamps the key
    EXPECT_EQ(found.adapters.eviction, core::EvictionKind::Lru);
    EXPECT_EQ(found.adapters.prefetchTopK, 4u);
    const auto names = registry.names();
    EXPECT_NE(std::find(names.begin(), names.end(), "my-system"),
              names.end());
    // Custom names compose like built-ins.
    EXPECT_EQ(registry.lookup("my-system+gdsf").adapters.eviction,
              core::EvictionKind::Gdsf);
}

// ---------------------------------------------------------------------
// SystemSpec::validate() rejections.
// ---------------------------------------------------------------------

namespace {

bool
hasErrorContaining(const core::SystemSpec &spec, const std::string &text)
{
    for (const auto &error : spec.validate()) {
        if (error.find(text) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(SpecValidation, PresetsAndGrammarSpecsAreValid)
{
    const auto &registry = core::SystemRegistry::global();
    for (const auto &name : registry.names())
        EXPECT_TRUE(registry.lookup(name).validate().empty()) << name;
    EXPECT_TRUE(registry.lookup("chameleon+gdsf+prefetch")
                    .validate()
                    .empty());
}

TEST(SpecValidation, RejectsNonPositiveReplicas)
{
    auto spec = core::presets::chameleon();
    spec.cluster.replicas = 0;
    EXPECT_TRUE(hasErrorContaining(spec, "cluster.replicas"));
    spec.cluster.replicas = -3;
    EXPECT_TRUE(hasErrorContaining(spec, "cluster.replicas"));
}

TEST(SpecValidation, RejectsNonPositiveChunkSize)
{
    auto spec = core::presets::sloraChunked();
    spec.chunkTokens = 0;
    EXPECT_TRUE(hasErrorContaining(spec, "non-positive chunk size"));
    spec.chunkTokens = -64;
    EXPECT_TRUE(hasErrorContaining(spec, "non-positive chunk size"));
}

TEST(SpecValidation, RejectsPrefetchTopKWithoutPrefetch)
{
    auto spec = core::presets::chameleon();
    spec.adapters.prefetchTopK = 8; // but predictivePrefetch is false
    EXPECT_TRUE(hasErrorContaining(spec, "without prefetch enabled"));

    auto zero = core::presets::chameleonPrefetch();
    zero.adapters.prefetchTopK = 0;
    EXPECT_TRUE(hasErrorContaining(zero, "prefetchTopK"));
}

TEST(SpecValidation, RejectsEvictionWithoutCache)
{
    auto spec = core::presets::slora();
    spec.adapters.eviction = core::EvictionKind::Gdsf;
    EXPECT_TRUE(hasErrorContaining(spec, "requires the chameleon cache"));
    // The same spec with the cache enabled is fine.
    spec.adapters.policy = core::AdapterPolicy::ChameleonCache;
    EXPECT_TRUE(spec.validate().empty());
}

TEST(SpecValidation, RejectsBadPredictor)
{
    auto spec = core::presets::chameleon();
    spec.predictor.kind = "crystal-ball";
    EXPECT_TRUE(hasErrorContaining(spec, "unknown predictor kind"));
    spec.predictor.kind = "bert";
    spec.predictor.accuracy = 1.5;
    EXPECT_TRUE(hasErrorContaining(spec, "accuracy"));
}

TEST(SpecValidation, RejectsBadAutoscalerBounds)
{
    auto spec = core::presets::chameleon();
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.minReplicas = 4;
    spec.cluster.autoscaler.maxReplicas = 2;
    EXPECT_TRUE(hasErrorContaining(spec, "maxReplicas"));
}

TEST(SpecValidation, RejectsMeasuredDemandWithoutMeasurement)
{
    // demand_source=measured promises the autoscaler live rates; with
    // measured_rate_alpha left at zero no MeasuredRate instances exist
    // and the capacity signals would silently stay nominal. The error
    // names the knob that unlocks it.
    auto spec = core::presets::chameleon();
    spec.cluster.replicas = 2;
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.demandSource =
        routing::DemandSource::Measured;
    EXPECT_TRUE(hasErrorContaining(spec, "measured_rate_alpha"));
    spec.cluster.autoscaler.measuredRateAlpha = 0.3;
    EXPECT_TRUE(spec.validate().empty());
}

TEST(SpecValidation, CollectsEveryProblemAtOnce)
{
    auto spec = core::presets::chameleon();
    spec.cluster.replicas = 0;
    spec.predictor.kind = "nope";
    spec.adapters.prefetchTopK = 4;
    EXPECT_GE(spec.validate().size(), 3u);
}
