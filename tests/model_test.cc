/**
 * @file
 * Unit tests for LLM/adapter descriptors and the cost-model calibration.
 *
 * The key tests here pin the cost model to the paper's own Figure 2
 * measurements: with a 142-token medium input on Llama-7B/A40, the TTFT
 * for adapter ranks 8/16/32/64/128 must land within 5% of the published
 * 74/78/88/107/144 ms, with loading around 17.5% of TTFT at rank 128.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "model/adapter.h"
#include "model/cost_model.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/time.h"

namespace model = chameleon::model;
namespace sim = chameleon::sim;

// ----------------------------------------------------------------- llm

TEST(ModelSpec, WeightBytesAreFp16)
{
    EXPECT_EQ(model::llama7B().weightsBytes(),
              static_cast<std::int64_t>(6.74e9 * 2));
}

TEST(ModelSpec, KvBytesPerTokenLlama7B)
{
    // 2 (K,V) * 32 layers * 4096 * 2 bytes = 512 KiB per token.
    EXPECT_EQ(model::llama7B().kvBytesPerToken(), 512ll * 1024);
}

TEST(ModelSpec, GqaShrinksKv)
{
    // Llama-70B uses GQA: 2 * 80 * 1024 * 2 = 320 KiB per token.
    EXPECT_EQ(model::llama70B().kvBytesPerToken(), 320ll * 1024);
    EXPECT_LT(model::llama70B().kvBytesPerToken() /
                  model::llama70B().layers,
              model::llama7B().kvBytesPerToken() / model::llama7B().layers);
}

TEST(ModelSpec, PresetLookup)
{
    EXPECT_EQ(model::modelByName("llama-13b").layers, 40);
    EXPECT_EQ(model::modelByName("llama-30b").hidden, 6656);
}

// ------------------------------------------------------------- adapters

TEST(Adapter, Rank32Llama7BIs64MiB)
{
    // §3.2: "a rank 32 adapter for Llama-7B is 64 MB".
    const auto bytes = model::adapterBytes(model::llama7B(), 32);
    EXPECT_EQ(bytes, 64ll * 1024 * 1024);
}

TEST(Adapter, Rank32Llama70BIs256MiB)
{
    // §3.2: "its size grows to 256 MB for Llama-70B".
    const auto bytes = model::adapterBytes(model::llama70B(), 32);
    EXPECT_NEAR(static_cast<double>(bytes), 256.0 * 1024 * 1024,
                0.03 * 256 * 1024 * 1024);
}

TEST(Adapter, BytesLinearInRank)
{
    const auto m = model::llama7B();
    EXPECT_EQ(model::adapterBytes(m, 16) * 8, model::adapterBytes(m, 128));
}

TEST(AdapterPool, EqualRankShares)
{
    model::AdapterPool pool(model::llama7B(), 100);
    std::map<int, int> counts;
    for (const auto &spec : pool.specs())
        ++counts[spec.rank];
    ASSERT_EQ(counts.size(), 5u);
    for (const auto &[rank, count] : counts)
        EXPECT_EQ(count, 20);
    EXPECT_EQ(pool.maxRank(), 128);
    EXPECT_EQ(pool.maxBytes(), model::adapterBytes(model::llama7B(), 128));
}

TEST(AdapterPool, ExplicitRanks)
{
    model::AdapterPool pool(model::llama7B(), std::vector<int>{8, 128});
    EXPECT_EQ(pool.size(), 2);
    EXPECT_EQ(pool.spec(0).rank, 8);
    EXPECT_EQ(pool.spec(1).rank, 128);
}

// ------------------------------------------------------------ gpu specs

TEST(GpuSpec, Presets)
{
    EXPECT_EQ(model::a40().memBytes, 48ll * 1024 * 1024 * 1024);
    EXPECT_EQ(model::a100(24).memBytes, 24ll * 1024 * 1024 * 1024);
    EXPECT_GT(model::a100(80).fp16Flops, model::a40().fp16Flops);
}

// ------------------------------------------------- cost model: Figure 2

class CostModelFig2 : public ::testing::TestWithParam<std::pair<int, double>>
{
  protected:
    model::CostModel cost_{model::llama7B(), model::a40()};
};

TEST_P(CostModelFig2, TtftMatchesPaper)
{
    const auto [rank, paper_ms] = GetParam();
    const auto bytes = model::adapterBytes(model::llama7B(), rank);
    const auto ttft =
        cost_.isolatedTtft(model::kMediumInputTokens, rank, bytes, /*includeLoad=*/true);
    EXPECT_NEAR(sim::toMillis(ttft), paper_ms, 0.05 * paper_ms)
        << "rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRanks, CostModelFig2,
    ::testing::Values(std::pair{8, 74.0}, std::pair{16, 78.0},
                      std::pair{32, 88.0}, std::pair{64, 107.0},
                      std::pair{128, 144.0}));

TEST(CostModel, LoadingShareAtRank128)
{
    // Fig. 2: ~17.5% of the rank-128 TTFT is adapter loading.
    model::CostModel cost(model::llama7B(), model::a40());
    const auto bytes = model::adapterBytes(model::llama7B(), 128);
    const auto ttft = cost.isolatedTtft(model::kMediumInputTokens, 128, bytes, true);
    const auto load = cost.adapterLoadTime(bytes);
    const double share = static_cast<double>(load) /
                         static_cast<double>(ttft);
    EXPECT_NEAR(share, 0.175, 0.03);
}

TEST(CostModel, AdapterShareGrowsWithRank)
{
    // Fig. 2: adapter overheads (load + exec) reach ~60% at rank 128.
    model::CostModel cost(model::llama7B(), model::a40());
    double prev_share = 0.0;
    for (int rank : model::paperRanks()) {
        const auto bytes = model::adapterBytes(model::llama7B(), rank);
        const auto ttft = cost.isolatedTtft(model::kMediumInputTokens, rank, bytes, true);
        const auto base = cost.isolatedTtft(model::kMediumInputTokens, 0, 0, false);
        const double share = 1.0 - static_cast<double>(base) /
                                       static_cast<double>(ttft);
        EXPECT_GT(share, prev_share);
        prev_share = share;
    }
    EXPECT_NEAR(prev_share, 0.60, 0.06);
}

// ------------------------------------------------- cost model: Figure 3

TEST(CostModel, TtftLinearInInputAndRankGapWidens)
{
    model::CostModel cost(model::llama7B(), model::a40());
    // TTFT grows with input size for every rank; the gap between rank
    // 128 and rank 8 widens as inputs grow (Fig. 3).
    double prev_gap = 0.0;
    for (std::int64_t input : {250, 500, 1000, 2000}) {
        const auto t8 = cost.isolatedTtft(input, 8, 0, false);
        const auto t128 = cost.isolatedTtft(input, 128, 0, false);
        EXPECT_GT(t128, t8);
        const double gap = static_cast<double>(t128 - t8);
        EXPECT_GT(gap, prev_gap);
        prev_gap = gap;
    }
}

// ----------------------------------------------------- decode iteration

TEST(CostModel, DecodeIsWeightReadBound)
{
    model::CostModel cost(model::llama7B(), model::a40());
    const auto t1 = cost.decodeIterTime({{128, 0}});
    // Single-request decode on A40 ~ weights / (bw * util) ~ 24 ms.
    EXPECT_NEAR(sim::toMillis(t1), 25.5, 3.0);
}

TEST(CostModel, DecodeGrowsWithBatchAndKv)
{
    model::CostModel cost(model::llama7B(), model::a40());
    std::vector<model::DecodeSlot> small(8, {128, 32});
    std::vector<model::DecodeSlot> large(128, {128, 32});
    std::vector<model::DecodeSlot> large_kv(128, {1024, 32});
    EXPECT_LT(cost.decodeIterTime(small), cost.decodeIterTime(large));
    EXPECT_LT(cost.decodeIterTime(large), cost.decodeIterTime(large_kv));
}

TEST(CostModel, EmptyBatchTakesNoTime)
{
    model::CostModel cost(model::llama7B(), model::a40());
    EXPECT_EQ(cost.decodeIterTime({}), 0);
}

// ------------------------------------------------------ tensor parallel

TEST(CostModel, TpSpeedsComputeButTaxesLoads)
{
    model::CostModel tp1(model::llama70B(), model::a100(80), 1);
    model::CostModel tp4(model::llama70B(), model::a100(80), 4);
    EXPECT_LT(tp4.prefillTime(512), tp1.prefillTime(512));
    const auto bytes = model::adapterBytes(model::llama70B(), 32);
    EXPECT_GT(tp4.adapterLoadTime(bytes), tp1.adapterLoadTime(bytes));
}

TEST(CostModel, Fig5LoadingFractionRisesWithTpAndRank)
{
    // Fig. 5 shape: the adapter-loading share of TTFT grows with both
    // the TP degree and the adapter rank.
    double prev_tp_share = 0.0;
    for (int tp : {2, 4, 8}) {
        model::CostModel cost(model::llama70B(), model::a100(80), tp);
        const auto bytes = model::adapterBytes(model::llama70B(), 32);
        const auto ttft = cost.isolatedTtft(model::kMediumInputTokens, 32, bytes, true);
        const double share =
            static_cast<double>(cost.adapterLoadTime(bytes)) /
            static_cast<double>(ttft);
        EXPECT_GT(share, prev_tp_share) << "tp " << tp;
        prev_tp_share = share;
    }
    model::CostModel tp4(model::llama70B(), model::a100(80), 4);
    double prev_rank_share = 0.0;
    for (int rank : model::paperRanks()) {
        const auto bytes = model::adapterBytes(model::llama70B(), rank);
        const auto ttft = tp4.isolatedTtft(model::kMediumInputTokens, rank, bytes, true);
        const double share =
            static_cast<double>(tp4.adapterLoadTime(bytes)) /
            static_cast<double>(ttft);
        EXPECT_GT(share, prev_rank_share) << "rank " << rank;
        prev_rank_share = share;
    }
}

// -------------------------------------------------------- isolated E2E

TEST(CostModel, IsolatedE2eAccumulatesDecodes)
{
    model::CostModel cost(model::llama7B(), model::a40());
    const auto one = cost.isolatedE2e(model::kMediumInputTokens, 1, 0, 0, false);
    const auto ten = cost.isolatedE2e(model::kMediumInputTokens, 10, 0, 0, false);
    EXPECT_EQ(one, cost.isolatedTtft(model::kMediumInputTokens, 0, 0, false));
    // Nine extra decode iterations at ~25 ms each.
    EXPECT_NEAR(sim::toMillis(ten - one), 9 * 25.5, 9 * 4.0);
}

TEST(CostModel, RejectsNonPowerOfTwoTp)
{
    EXPECT_DEATH(model::CostModel(model::llama7B(), model::a40(), 3),
                 "power of two");
}

// ------------------------------------------------- batched prefill step

TEST(CostModel, BatchedPrefillPaysMbgmmFixedOnce)
{
    model::CostModel cost(model::llama7B(), model::a40());
    // Two adapter-bearing prompts prefilled in one iteration share the
    // gathered MBGMM launch cost; separately they would pay it twice.
    const auto together = cost.prefillStepTime({{128, 32}, {128, 64}});
    const auto separate = cost.prefillStepTime({{128, 32}}) +
                          cost.prefillStepTime({{128, 64}});
    const auto fixed = sim::fromMillis(cost.params().mbgmmFixedMs) +
                       sim::fromMillis(cost.params().prefillFixedMs);
    EXPECT_NEAR(static_cast<double>(separate - together),
                static_cast<double>(fixed), 2.0); // usec rounding
}

TEST(CostModel, BaseOnlyPrefillStepSkipsAdapterCosts)
{
    model::CostModel cost(model::llama7B(), model::a40());
    const auto base = cost.prefillStepTime({{256, 0}});
    EXPECT_EQ(base, sim::fromMillis(cost.params().prefillFixedMs) +
                        cost.prefillTime(256));
}

TEST(CostModel, EffectiveRatesScaleWithTp)
{
    model::CostModel tp1(model::llama7B(), model::a100(80), 1);
    model::CostModel tp2(model::llama7B(), model::a100(80), 2);
    // Doubling the group size less than doubles effective rates
    // (parallel-efficiency loss), but they must grow.
    EXPECT_GT(tp2.effectiveFlops(), tp1.effectiveFlops());
    EXPECT_LT(tp2.effectiveFlops(), 2.0 * tp1.effectiveFlops());
    EXPECT_GT(tp2.effectiveMemBandwidth(), tp1.effectiveMemBandwidth());
}
