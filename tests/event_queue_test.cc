/**
 * @file
 * Property tests for the calendar event queue against a
 * std::priority_queue reference model, EventFn small-buffer
 * semantics, and the Simulator's cancellation / id-recycling
 * contract on top of both.
 *
 * The queue's promise is exact: pops come out in (time, seq) order —
 * a stable FIFO tie-break at equal timestamps — no matter how pushes
 * straddle the near ring, the far overflow, bucket rollovers, or
 * cursor jumps. Every test here drives the calendar queue and the
 * old priority_queue comparator side by side and demands identical
 * streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "simkit/event_fn.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "simkit/simulator.h"
#include "simkit/time.h"

namespace sim = chameleon::sim;

namespace {

/** The pre-calendar-queue implementation, as a reference model. */
using ReferenceQueue =
    std::priority_queue<sim::EventKey, std::vector<sim::EventKey>,
                        sim::EventAfter>;

/**
 * Push the same keys into both queues, then drain both and require
 * identical (time, seq, id) streams.
 */
void
expectSameDrain(const std::vector<sim::EventKey> &keys)
{
    sim::CalendarQueue calendar;
    ReferenceQueue reference;
    for (const auto &key : keys) {
        calendar.push(key);
        reference.push(key);
    }
    ASSERT_EQ(calendar.size(), keys.size());
    while (!reference.empty()) {
        ASSERT_FALSE(calendar.empty());
        const sim::EventKey &got = calendar.top();
        const sim::EventKey &want = reference.top();
        ASSERT_EQ(got.time, want.time);
        ASSERT_EQ(got.seq, want.seq);
        ASSERT_EQ(got.id, want.id);
        calendar.pop();
        reference.pop();
    }
    EXPECT_TRUE(calendar.empty());
    EXPECT_EQ(calendar.size(), 0u);
}

} // namespace

// ------------------------------------------------- ordering properties

TEST(CalendarQueue, PopsInTimeOrderWithinTheNearWindow)
{
    // All within one ~2.1 s ring window, pushed shuffled.
    sim::Rng rng(11);
    std::vector<sim::EventKey> keys;
    for (std::uint64_t seq = 0; seq < 5000; ++seq) {
        keys.push_back({static_cast<sim::SimTime>(rng.nextBelow(
                            2 * sim::kSec)),
                        seq, seq});
    }
    expectSameDrain(keys);
}

TEST(CalendarQueue, FifoTieBreakAtEqualTimestamps)
{
    // Many events at the same instant must pop in schedule order.
    sim::CalendarQueue queue;
    for (std::uint64_t seq = 0; seq < 1000; ++seq)
        queue.push({7 * sim::kMsec, seq, 1000 - seq});
    for (std::uint64_t seq = 0; seq < 1000; ++seq) {
        ASSERT_EQ(queue.top().seq, seq);
        ASSERT_EQ(queue.top().id, 1000 - seq);
        queue.pop();
    }
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, BucketRolloverAcrossTheRingBoundary)
{
    // Times straddling several full ring windows (~2.1 s each), with
    // clusters exactly on bucket-width boundaries so rollover edges
    // are exercised, not just interiors.
    std::vector<sim::EventKey> keys;
    std::uint64_t seq = 0;
    for (sim::SimTime base = 0; base <= 10 * sim::kSec;
         base += 1 << 10) { // one bucket width
        keys.push_back({base, seq, seq});
        ++seq;
        keys.push_back({base + 1, seq, seq});
        ++seq;
    }
    // Shuffle deterministically so pushes are not already sorted.
    sim::Rng rng(5);
    for (std::size_t i = keys.size(); i > 1; --i)
        std::swap(keys[i - 1], keys[rng.nextBelow(i)]);
    expectSameDrain(keys);
}

TEST(CalendarQueue, MonotoneFarAppendsLikeATraceArrivalStream)
{
    // Trace arrivals: nondecreasing times, hours past the ring
    // window — the O(1) sorted-deque far path.
    std::vector<sim::EventKey> keys;
    sim::Rng rng(17);
    sim::SimTime t = 0;
    for (std::uint64_t seq = 0; seq < 4000; ++seq) {
        t += static_cast<sim::SimTime>(rng.nextBelow(3 * sim::kSec));
        keys.push_back({t, seq, seq});
    }
    expectSameDrain(keys);
}

TEST(CalendarQueue, OutOfOrderFarPushesTakeTheHeapPath)
{
    // Far-future pushes in descending time order: every push after
    // the first is out of order relative to the sorted deque's tail,
    // so they all land in the far heap — and must still interleave
    // correctly with monotone far events and near events.
    std::vector<sim::EventKey> keys;
    std::uint64_t seq = 0;
    for (sim::SimTime t = 100 * sim::kSec; t >= 10 * sim::kSec;
         t -= sim::kSec) {
        keys.push_back({t, seq, seq});
        ++seq;
    }
    for (sim::SimTime t = 9 * sim::kSec; t <= 101 * sim::kSec;
         t += 2 * sim::kSec) {
        keys.push_back({t, seq, seq});
        ++seq;
    }
    keys.push_back({5 * sim::kMsec, seq, seq}); // near, pops first
    expectSameDrain(keys);
}

TEST(CalendarQueue, CursorJumpsOverAnEmptyRing)
{
    // Two lone events an hour apart: after the first pops, the ring
    // is empty and the cursor must jump straight to the far event's
    // bucket instead of walking ~3.4M empty buckets.
    sim::CalendarQueue queue;
    queue.push({sim::kMsec, 0, 0});
    queue.push({3600 * sim::kSec, 1, 1});
    EXPECT_EQ(queue.top().seq, 0u);
    queue.pop();
    EXPECT_EQ(queue.top().seq, 1u);
    EXPECT_EQ(queue.top().time, 3600 * sim::kSec);
    queue.pop();
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, PushBehindAnAdvancedCursorStaysOrdered)
{
    // top() on a lone far event jumps the cursor to its bucket. A
    // later push at an earlier (still legal) time lands behind the
    // cursor and must clamp into the current bucket, not get lost.
    sim::CalendarQueue queue;
    queue.push({10 * sim::kSec, 0, 0});
    EXPECT_EQ(queue.top().time, 10 * sim::kSec);
    queue.push({5 * sim::kSec, 1, 1});
    EXPECT_EQ(queue.top().time, 5 * sim::kSec);
    queue.pop();
    EXPECT_EQ(queue.top().time, 10 * sim::kSec);
    queue.pop();
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, RandomInterleavingsMatchTheReferenceModel)
{
    // Mixed push/pop interleavings across near, monotone-far, and
    // out-of-order-far horizons, several seeds. Pushes respect the
    // kernel's contract: time >= the last popped time.
    for (std::uint64_t round = 0; round < 8; ++round) {
        sim::Rng rng(1000 + round);
        sim::CalendarQueue calendar;
        ReferenceQueue reference;
        sim::SimTime lastPopped = 0;
        std::uint64_t seq = 0;
        for (int op = 0; op < 20000; ++op) {
            const bool push =
                reference.empty() || rng.nextBelow(100) < 55;
            if (push) {
                sim::SimTime t = lastPopped;
                switch (rng.nextBelow(3)) {
                case 0: // near: within the ring window
                    t += static_cast<sim::SimTime>(
                        rng.nextBelow(2 * sim::kSec));
                    break;
                case 1: // far, loosely increasing
                    t += static_cast<sim::SimTime>(
                        3 * sim::kSec + rng.nextBelow(30 * sim::kSec));
                    break;
                default: // far, scattered (out-of-order arrivals)
                    t += static_cast<sim::SimTime>(
                        3 * sim::kSec + rng.nextBelow(600 * sim::kSec));
                    break;
                }
                const sim::EventKey key{t, seq, seq};
                ++seq;
                calendar.push(key);
                reference.push(key);
            } else {
                ASSERT_FALSE(calendar.empty());
                const sim::EventKey &got = calendar.top();
                const sim::EventKey &want = reference.top();
                ASSERT_EQ(got.time, want.time) << "round " << round;
                ASSERT_EQ(got.seq, want.seq) << "round " << round;
                lastPopped = want.time;
                calendar.pop();
                reference.pop();
            }
        }
        while (!reference.empty()) {
            ASSERT_EQ(calendar.top().seq, reference.top().seq);
            calendar.pop();
            reference.pop();
        }
        EXPECT_TRUE(calendar.empty());
    }
}

// --------------------------------------------------------------- EventFn

namespace {

/** Counts live instances to catch double-destroy / leak in EventFn. */
struct InstanceCounter
{
    static int live;
    int *hits;
    explicit InstanceCounter(int *h) : hits(h) { ++live; }
    InstanceCounter(const InstanceCounter &o) noexcept : hits(o.hits)
    {
        ++live;
    }
    InstanceCounter(InstanceCounter &&o) noexcept : hits(o.hits)
    {
        ++live;
    }
    ~InstanceCounter() { --live; }
    void operator()() const { ++*hits; }
};

int InstanceCounter::live = 0;

} // namespace

TEST(EventFn, SmallCapturesStayInline)
{
    int hits = 0;
    sim::EventFn fn([&hits] { ++hits; });
    EXPECT_TRUE(fn.inlined());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(EventFn, CapturesUpToTheBudgetStayInline)
{
    // A closure that fills the 64-byte budget exactly (56 bytes of
    // payload + one captured reference) must not touch the heap.
    struct
    {
        std::uint64_t words[7];
    } payload{};
    payload.words[6] = 42;
    std::uint64_t seen = 0;
    sim::EventFn fn([payload, &seen] { seen = payload.words[6]; });
    EXPECT_TRUE(fn.inlined());
    fn();
    EXPECT_EQ(seen, 42u);
}

TEST(EventFn, OversizedCapturesFallBackToTheHeap)
{
    struct
    {
        std::uint64_t words[9]; // 72 bytes > kInlineBytes
    } payload{};
    payload.words[8] = 7;
    std::uint64_t seen = 0;
    sim::EventFn fn([payload, &seen] { seen = payload.words[8]; });
    EXPECT_FALSE(fn.inlined());
    fn();
    EXPECT_EQ(seen, 7u);
}

TEST(EventFn, MoveTransfersTheCallableAndEmptiesTheSource)
{
    int hits = 0;
    sim::EventFn a([&hits] { ++hits; });
    sim::EventFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: moved-from is empty
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    sim::EventFn c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
    c = nullptr;
    EXPECT_FALSE(static_cast<bool>(c));
}

TEST(EventFn, MoveOnlyCapturesAreSupported)
{
    auto owned = std::make_unique<int>(9);
    int seen = 0;
    sim::EventFn fn([owned = std::move(owned), &seen] { seen = *owned; });
    sim::EventFn moved(std::move(fn));
    moved();
    EXPECT_EQ(seen, 9);
}

TEST(EventFn, DestroysTheCaptureExactlyOnce)
{
    int hits = 0;
    ASSERT_EQ(InstanceCounter::live, 0);
    {
        sim::EventFn fn{InstanceCounter(&hits)};
        EXPECT_EQ(InstanceCounter::live, 1);
        sim::EventFn moved(std::move(fn));
        EXPECT_EQ(InstanceCounter::live, 1);
        moved();
        EXPECT_EQ(hits, 1);
    }
    EXPECT_EQ(InstanceCounter::live, 0);
}

// --------------------------------------------- simulator on top of both

TEST(SimulatorQueue, CancellationSkipsWithoutDisturbingOrder)
{
    sim::Simulator s;
    std::vector<int> fired;
    s.scheduleAt(1 * sim::kMsec, [&] { fired.push_back(1); });
    const sim::EventId dropped =
        s.scheduleAt(2 * sim::kMsec, [&] { fired.push_back(2); });
    s.scheduleAt(3 * sim::kMsec, [&] { fired.push_back(3); });
    EXPECT_EQ(s.pendingEvents(), 3u);
    EXPECT_TRUE(s.cancel(dropped));
    EXPECT_FALSE(s.cancel(dropped)) << "second cancel must be a no-op";
    EXPECT_EQ(s.pendingEvents(), 2u);
    s.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
    EXPECT_EQ(s.eventsDispatched(), 2u)
        << "a cancelled event is skipped, not dispatched";
    EXPECT_FALSE(s.cancel(dropped)) << "cancel after drain is a no-op";
}

TEST(SimulatorQueue, CancelledIdsAreNotAliasedByNewEvents)
{
    // Cancel, then immediately schedule more events. If the slot were
    // recycled at cancel time, the stale queue entry would fire the
    // new event early; the kernel recycles only when the stale entry
    // is skipped at dispatch.
    sim::Simulator s;
    std::vector<int> fired;
    const sim::EventId dropped =
        s.scheduleAt(5 * sim::kMsec, [&] { fired.push_back(-1); });
    EXPECT_TRUE(s.cancel(dropped));
    for (int i = 0; i < 4; ++i) {
        s.scheduleAt((6 + i) * sim::kMsec,
                     [&fired, i] { fired.push_back(i); });
    }
    s.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorQueue, SchedulingAtNowDuringDispatchFiresInTurn)
{
    sim::Simulator s;
    std::vector<int> fired;
    s.scheduleAt(sim::kMsec, [&] {
        fired.push_back(0);
        s.scheduleAt(s.now(), [&] { fired.push_back(2); });
        s.scheduleAt(s.now(), [&] { fired.push_back(3); });
    });
    s.scheduleAt(sim::kMsec, [&] { fired.push_back(1); });
    s.run();
    // Same-timestamp events fire in schedule order, including ones
    // scheduled mid-dispatch at the current instant.
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorQueue, RandomScheduleStormMatchesSortOrder)
{
    // 50k events at random times over an hour (near window, far
    // window, rollovers, recycled ids after pops) — the fire order
    // must equal the stable sort by (time, schedule order).
    sim::Simulator s;
    sim::Rng rng(99);
    struct Expected
    {
        sim::SimTime time;
        std::uint64_t seq;
    };
    std::vector<Expected> expected;
    std::vector<std::uint64_t> fired;
    for (std::uint64_t seq = 0; seq < 50000; ++seq) {
        const auto t = static_cast<sim::SimTime>(
            rng.nextBelow(3600 * sim::kSec));
        expected.push_back({t, seq});
        s.scheduleAt(t, [&fired, seq] { fired.push_back(seq); });
    }
    std::sort(expected.begin(), expected.end(),
              [](const Expected &a, const Expected &b) {
                  return a.time != b.time ? a.time < b.time
                                          : a.seq < b.seq;
              });
    s.run();
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(fired[i], expected[i].seq) << "position " << i;
    EXPECT_EQ(s.now(), expected.back().time);
}

TEST(SimulatorQueueDeathTest, SchedulePastReportsBothClocksInSeconds)
{
    sim::Simulator s;
    s.scheduleAt(2 * sim::kSec, [] {});
    s.runUntil(2 * sim::kSec + 500 * sim::kMsec);
    EXPECT_EQ(s.now(), 2 * sim::kSec + 500 * sim::kMsec);
    // The message must carry both raw microseconds and human-readable
    // seconds for each clock.
    EXPECT_DEATH(
        s.scheduleAt(sim::kSec, [] {}),
        "cannot schedule in the past: t=1000000 \\(1 s\\) "
        "now=2500000 \\(2\\.5 s\\)");
}
