/**
 * @file
 * Tests for SystemSpec <-> JSON serialisation (spec_json.h):
 *  - round-trip stability: print -> parse -> operator== for every
 *    registry name, composed grammar specs, and randomly generated
 *    valid specs (property test);
 *  - partial configs: missing keys keep defaults, `{}` is the paper
 *    testbed's full Chameleon;
 *  - strict rejection: unknown keys, type mismatches, bad enum values,
 *    and validate() contradictions all name the offending key;
 *  - SystemSpec::operator== distinguishes every axis.
 */

#include <gtest/gtest.h>

#include <string>

#include "chameleon/spec_json.h"
#include "chameleon/system_registry.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/rng.h"

using namespace chameleon;

namespace {

core::SystemSpec
roundTrip(const core::SystemSpec &spec)
{
    std::string error;
    const auto parsed = core::specFromJson(core::specToJson(spec), &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    return parsed.value_or(core::SystemSpec{});
}

/** A random *valid* spec: contradictory knob pairs are kept coherent. */
core::SystemSpec
randomSpec(sim::Rng &rng)
{
    core::SystemSpec spec;
    spec.name = "random-" + std::to_string(rng.nextBelow(1u << 20));

    switch (rng.nextBelow(4)) {
      case 0: spec.engine.model = model::llama7B(); break;
      case 1: spec.engine.model = model::llama13B(); break;
      case 2: spec.engine.model = model::llama30B(); break;
      default: spec.engine.model = model::llama70B(); break;
    }
    spec.engine.gpu = rng.nextBelow(2) ? model::a40()
                                       : model::a100(rng.nextBelow(2)
                                                         ? 48
                                                         : 80);
    spec.engine.tpDegree = 1 + static_cast<int>(rng.nextBelow(4));
    spec.engine.workspacePerGpu =
        (1ll + static_cast<std::int64_t>(rng.nextBelow(8))) << 30;
    spec.engine.maxNewTokens = 128 + static_cast<std::int64_t>(
                                         rng.nextBelow(1024));
    spec.engine.cost.loraIneff = 10.0 + rng.nextDouble() * 50.0;
    spec.engine.cost.tpSyncMs = rng.nextDouble() * 20.0;

    const core::SchedulerPolicy schedulers[] = {
        core::SchedulerPolicy::Fifo, core::SchedulerPolicy::Sjf,
        core::SchedulerPolicy::Mlq};
    spec.scheduler.policy = schedulers[rng.nextBelow(3)];
    spec.scheduler.sjfAgingPerSecond = rng.nextDouble() * 100.0;
    spec.scheduler.sloSeconds = 1.0 + rng.nextDouble() * 9.0;
    spec.scheduler.refreshPeriod =
        static_cast<sim::SimTime>(60 + rng.nextBelow(600)) * sim::kSec;
    spec.scheduler.bypass = rng.nextBelow(2) != 0;
    spec.scheduler.dynamicQueues = rng.nextBelow(2) != 0;
    const core::WrsForm forms[] = {core::WrsForm::Degree2,
                                   core::WrsForm::Degree1,
                                   core::WrsForm::OutputOnly};
    spec.scheduler.wrsForm = forms[rng.nextBelow(3)];

    if (rng.nextBelow(2)) {
        spec.adapters.policy = core::AdapterPolicy::ChameleonCache;
        const auto &evictions = core::allEvictionPolicies();
        spec.adapters.eviction = evictions[rng.nextBelow(
            evictions.size())];
        if (rng.nextBelow(2)) {
            spec.adapters.predictivePrefetch = true;
            spec.adapters.prefetchTopK = 1 + rng.nextBelow(16);
        }
    } else {
        spec.adapters.policy = rng.nextBelow(2)
                                   ? core::AdapterPolicy::SLora
                                   : core::AdapterPolicy::OnDemand;
    }

    spec.predictor.kind = rng.nextBelow(2) ? "bert" : "history";
    spec.predictor.accuracy = rng.nextDouble();
    spec.predictor.seed = rng();

    spec.cluster.replicas = 1 + static_cast<int>(rng.nextBelow(6));
    // Heterogeneous dimension: a third of the specs deploy a mixed
    // fleet with per-replica engine overrides.
    if (rng.nextBelow(3) == 0) {
        for (int i = 0; i < spec.cluster.replicas; ++i) {
            serving::EngineConfig cfg = spec.engine;
            cfg.gpu = rng.nextBelow(2)
                          ? model::a40()
                          : model::a100(rng.nextBelow(2) ? 48 : 80);
            cfg.maxRunning = 64 + static_cast<int>(rng.nextBelow(256));
            cfg.cost.tpSyncMs = rng.nextDouble() * 20.0;
            spec.cluster.replicaEngines.push_back(std::move(cfg));
        }
    }
    const routing::RouterPolicy routers[] = {
        routing::RouterPolicy::RoundRobin,
        routing::RouterPolicy::JoinShortestQueue,
        routing::RouterPolicy::PowerOfTwoChoices,
        routing::RouterPolicy::AdapterAffinity,
        routing::RouterPolicy::AdapterAffinityCacheAware};
    spec.cluster.router = routers[rng.nextBelow(5)];
    spec.cluster.routerConfig.seed = rng();
    spec.cluster.routerConfig.virtualNodes =
        16 + static_cast<int>(rng.nextBelow(128));
    spec.cluster.routerConfig.spillLoadFactor =
        0.5 + rng.nextDouble() * 2.0;
    if (rng.nextBelow(2)) {
        spec.cluster.autoscale = true;
        spec.cluster.autoscaler.minReplicas = 1 + rng.nextBelow(3);
        spec.cluster.autoscaler.maxReplicas =
            spec.cluster.autoscaler.minReplicas + rng.nextBelow(6);
        spec.cluster.autoscaler.replicaServiceRps =
            rng.nextDouble() * 20.0;
        spec.cluster.autoscaler.bootMs = rng.nextDouble() * 30000.0;
        const routing::ScaleUpPolicy policies[] = {
            routing::ScaleUpPolicy::Default,
            routing::ScaleUpPolicy::Cheapest,
            routing::ScaleUpPolicy::Fastest};
        spec.cluster.autoscaler.scaleUpPolicy =
            policies[rng.nextBelow(3)];
        spec.cluster.autoscaler.measuredRateAlpha = rng.nextDouble();
    }

    const core::ReservationPolicy reservations[] = {
        core::ReservationPolicy::Auto, core::ReservationPolicy::MaxTokens,
        core::ReservationPolicy::Predicted};
    spec.reservation = reservations[rng.nextBelow(3)];
    if (rng.nextBelow(2)) {
        spec.chunkedPrefill = true;
        spec.chunkTokens = 16 + static_cast<std::int64_t>(
                                    rng.nextBelow(512));
    }
    return spec;
}

std::string
parseError(const std::string &text)
{
    std::string error;
    const auto parsed = core::specFromJson(text, &error);
    EXPECT_FALSE(parsed.has_value()) << text;
    return error;
}

} // namespace

// ---------------------------------------------------------------------
// Round-trip stability.
// ---------------------------------------------------------------------

TEST(SpecJson, RoundTripsEveryRegistryName)
{
    const auto &registry = core::SystemRegistry::global();
    for (const auto &name : registry.names()) {
        auto spec = registry.lookup(name);
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
        EXPECT_EQ(roundTrip(spec), spec) << name;
    }
}

TEST(SpecJson, RoundTripsComposedGrammarSpecs)
{
    const auto &registry = core::SystemRegistry::global();
    for (const char *name :
         {"chameleon+gdsf+prefetch", "slora+sjf+cache",
          "chameleon+history+nobypass+static", "slora+chunked128"}) {
        auto spec = registry.lookup(name);
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
        EXPECT_EQ(roundTrip(spec), spec) << name;
    }
}

TEST(SpecJson, RoundTripsRandomValidSpecs)
{
    sim::Rng rng(0xDECAF);
    for (int i = 0; i < 100; ++i) {
        const auto spec = randomSpec(rng);
        ASSERT_TRUE(spec.validate().empty())
            << "generator produced an invalid spec at iteration " << i;
        const auto back = roundTrip(spec);
        EXPECT_EQ(back, spec) << "iteration " << i << "\n"
                              << core::specToJson(spec);
    }
}

TEST(SpecJson, ClusterDeploymentSurvivesRoundTrip)
{
    auto spec = core::presets::chameleonGdsf();
    spec.engine.model = model::llama13B();
    spec.engine.gpu = model::a100(80);
    spec.cluster.replicas = 4;
    spec.cluster.router = routing::RouterPolicy::AdapterAffinity;
    spec.cluster.routerConfig.seed = 0xFEEDFACECAFEBEEFull;
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.minReplicas = 2;
    spec.cluster.autoscaler.maxReplicas = 6;
    spec.cluster.autoscaler.replicaServiceRps = 8.5;
    ASSERT_TRUE(spec.validate().empty());
    EXPECT_EQ(roundTrip(spec), spec);
}

TEST(SpecJson, AutoscalerRealismKnobsSurviveRoundTrip)
{
    auto spec = core::presets::chameleon();
    spec.cluster.replicas = 2;
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.replicaServiceRps = 8.5;
    spec.cluster.autoscaler.bootMs = 12500.0;
    spec.cluster.autoscaler.scaleUpPolicy =
        routing::ScaleUpPolicy::Cheapest;
    spec.cluster.autoscaler.measuredRateAlpha = 0.25;
    ASSERT_TRUE(spec.validate().empty());
    EXPECT_EQ(roundTrip(spec), spec);
    // Textual stability (the --dump-config | --config - contract).
    const auto text = core::specToJson(spec);
    const auto parsed = core::specFromJson(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(core::specToJson(*parsed), text);
    // The keys parse from hand-written JSON too, not only from dumps.
    const auto fromText = core::specFromJson(
        R"({"cluster": {"replicas": 2, "autoscale": true, "autoscaler":)"
        R"( {"boot_ms": 4000, "scale_up_policy": "fastest",)"
        R"(  "measured_rate_alpha": 0.5}}})");
    ASSERT_TRUE(fromText.has_value());
    EXPECT_EQ(fromText->cluster.autoscaler.bootMs, 4000.0);
    EXPECT_EQ(fromText->cluster.autoscaler.scaleUpPolicy,
              routing::ScaleUpPolicy::Fastest);
    EXPECT_EQ(fromText->cluster.autoscaler.measuredRateAlpha, 0.5);
}

TEST(SpecJson, RejectsMalformedAutoscalerRealismKnobs)
{
    // Unknown enum value: the error names the path and the options.
    const auto policy = parseError(
        R"({"cluster": {"autoscaler": {"scale_up_policy": "warp"}}})");
    EXPECT_NE(policy.find("cluster.autoscaler.scale_up_policy"),
              std::string::npos)
        << policy;
    EXPECT_NE(policy.find("cheapest"), std::string::npos) << policy;
    // Type mismatch on boot_ms.
    const auto boot = parseError(
        R"({"cluster": {"autoscaler": {"boot_ms": "soon"}}})");
    EXPECT_NE(boot.find("cluster.autoscaler.boot_ms"),
              std::string::npos)
        << boot;
    // Out-of-domain values parse but fail validation, naming the knob.
    const auto negativeBoot = parseError(
        R"({"cluster": {"replicas": 2, "autoscale": true,)"
        R"( "autoscaler": {"boot_ms": -1}}})");
    EXPECT_NE(negativeBoot.find("bootMs"), std::string::npos)
        << negativeBoot;
    const auto alpha = parseError(
        R"({"cluster": {"replicas": 2, "autoscale": true,)"
        R"( "autoscaler": {"measured_rate_alpha": 1.5}}})");
    EXPECT_NE(alpha.find("measuredRateAlpha"), std::string::npos)
        << alpha;
}

TEST(SpecJson, ClosedLoopKnobsSurviveRoundTrip)
{
    // The PR-10 control-plane trio: demand_source, boot_aware_horizon
    // and slo_admission all round-trip with every knob switched on.
    auto spec = core::presets::chameleon();
    spec.cluster.replicas = 2;
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.measuredRateAlpha = 0.3;
    spec.cluster.autoscaler.demandSource =
        routing::DemandSource::Measured;
    spec.cluster.autoscaler.bootAwareHorizon = true;
    spec.cluster.routerConfig.sloAdmission = true;
    ASSERT_TRUE(spec.validate().empty());
    EXPECT_EQ(roundTrip(spec), spec);
    const auto text = core::specToJson(spec);
    EXPECT_NE(text.find("\"demand_source\": \"measured\""),
              std::string::npos);
    EXPECT_NE(text.find("\"boot_aware_horizon\": true"),
              std::string::npos);
    EXPECT_NE(text.find("\"slo_admission\": true"), std::string::npos);
    // Textual stability (the --dump-config | --config - contract).
    const auto parsed = core::specFromJson(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(core::specToJson(*parsed), text);
    // Hand-written JSON parses too, not only dumps.
    const auto fromText = core::specFromJson(
        R"({"cluster": {"replicas": 2, "autoscale": true,)"
        R"( "router_config": {"slo_admission": true}, "autoscaler":)"
        R"( {"measured_rate_alpha": 0.2, "demand_source": "measured",)"
        R"(  "boot_aware_horizon": true}}})");
    ASSERT_TRUE(fromText.has_value());
    EXPECT_EQ(fromText->cluster.autoscaler.demandSource,
              routing::DemandSource::Measured);
    EXPECT_TRUE(fromText->cluster.autoscaler.bootAwareHorizon);
    EXPECT_TRUE(fromText->cluster.routerConfig.sloAdmission);
}

TEST(SpecJson, RejectsUnknownDemandSourceListingTheOptions)
{
    const auto error = parseError(
        R"({"cluster": {"autoscaler": {"demand_source": "psychic"}}})");
    EXPECT_NE(error.find("cluster.autoscaler.demand_source"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("nominal"), std::string::npos) << error;
    EXPECT_NE(error.find("measured"), std::string::npos) << error;
    // And measured-without-measurement fails spec validation with the
    // knob that unlocks it.
    const auto unmeasured = parseError(
        R"({"cluster": {"replicas": 2, "autoscale": true,)"
        R"( "autoscaler": {"demand_source": "measured"}}})");
    EXPECT_NE(unmeasured.find("measured_rate_alpha"), std::string::npos)
        << unmeasured;
}

TEST(SpecJson, HeteroFleetRoundTripsBitIdentically)
{
    auto spec = core::presets::chameleon();
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    spec.cluster.replicas = 3;
    spec.cluster.router = routing::RouterPolicy::PowerOfTwoChoices;
    serving::EngineConfig fast = spec.engine;
    fast.gpu = model::a100(48);
    serving::EngineConfig slow = spec.engine;
    slow.maxRunning = 128;
    spec.cluster.replicaEngines = {fast, fast, slow};
    ASSERT_TRUE(spec.validate().empty());
    EXPECT_EQ(roundTrip(spec), spec);
    // The textual form is stable too: print -> parse -> print is
    // byte-identical (the --dump-config | --config - contract).
    const auto text = core::specToJson(spec);
    const auto parsed = core::specFromJson(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(core::specToJson(*parsed), text);
}

// ---------------------------------------------------------------------
// Partial configs apply onto defaults.
// ---------------------------------------------------------------------

TEST(SpecJson, EmptyObjectIsTheDefaultTestbedSpec)
{
    std::string error;
    const auto parsed = core::specFromJson("{}", &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    core::SystemSpec expected;
    expected.engine.model = model::llama7B();
    expected.engine.gpu = model::a40();
    EXPECT_EQ(*parsed, expected);
}

TEST(SpecJson, PartialConfigKeepsUnmentionedDefaults)
{
    const auto parsed = core::specFromJson(
        R"({"name": "mine", "scheduler": {"policy": "fifo"},)"
        R"( "adapters": {"eviction": "gdsf"}})");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->name, "mine");
    EXPECT_EQ(parsed->scheduler.policy, core::SchedulerPolicy::Fifo);
    EXPECT_EQ(parsed->adapters.eviction, core::EvictionKind::Gdsf);
    // Untouched axes keep their defaults.
    EXPECT_EQ(parsed->adapters.policy,
              core::AdapterPolicy::ChameleonCache);
    EXPECT_EQ(parsed->cluster.replicas, 1);
    EXPECT_EQ(parsed->scheduler.sloSeconds, 5.0);
}

TEST(SpecJson, AcceptsModelAndGpuShorthands)
{
    const auto parsed = core::specFromJson(
        R"({"engine": {"model": "llama-13b", "gpu": "a100-48"}})");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->engine.model, model::llama13B());
    EXPECT_EQ(parsed->engine.gpu, model::a100(48));
}

TEST(SpecJson, ClusterReplicaOverridesApplyOntoTheBaseEngine)
{
    // "cluster.replicas" as an array: each entry (engine-override
    // object or GPU-preset string) applies onto the parsed base
    // engine, wherever the keys appear in the document.
    const auto parsed = core::specFromJson(
        R"({"cluster": {"replicas":)"
        R"( ["a100-48", {"gpu": "a100", "max_running": 64}]},)"
        R"( "engine": {"model": "llama-13b"}})");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cluster.replicas, 2);
    ASSERT_EQ(parsed->cluster.replicaEngines.size(), 2u);
    EXPECT_EQ(parsed->cluster.replicaEngines[0].gpu, model::a100(48));
    // Base-engine fields survive under the override...
    EXPECT_EQ(parsed->cluster.replicaEngines[0].model,
              model::llama13B());
    EXPECT_EQ(parsed->cluster.replicaEngines[1].model,
              model::llama13B());
    // ...and any EngineConfig knob can differ per replica.
    EXPECT_EQ(parsed->cluster.replicaEngines[1].gpu, model::a100(80));
    EXPECT_EQ(parsed->cluster.replicaEngines[1].maxRunning, 64);
}

TEST(SpecJson, FleetShorthandExpandsToPerReplicaEngines)
{
    const auto parsed = core::specFromJson(
        R"({"cluster": {"fleet": "a100x2+a40x1"}})");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cluster.replicas, 3);
    ASSERT_EQ(parsed->cluster.replicaEngines.size(), 3u);
    EXPECT_EQ(parsed->cluster.replicaEngines[0].gpu, model::a100(80));
    EXPECT_EQ(parsed->cluster.replicaEngines[1].gpu, model::a100(80));
    EXPECT_EQ(parsed->cluster.replicaEngines[2].gpu, model::a40());
    // The fleet is parse-time sugar: it dumps as the resolved
    // per-replica array and round-trips from there.
    EXPECT_EQ(roundTrip(*parsed), *parsed);
}

TEST(SpecJson, AcceptsLineCommentsInConfigs)
{
    const auto parsed = core::specFromJson(
        "{\n"
        "  // the GPU mix, one term per replica kind\n"
        "  \"cluster\": {\"fleet\": \"a40x2\"} // two A40s\n"
        "}\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cluster.replicas, 2);
}

// ---------------------------------------------------------------------
// Strict rejection with offending-key messages.
// ---------------------------------------------------------------------

TEST(SpecJson, RejectsUnknownKeysNamingThePath)
{
    const auto error =
        parseError(R"({"scheduler": {"polcy": "mlq"}})");
    EXPECT_NE(error.find("scheduler.polcy"), std::string::npos) << error;
    EXPECT_NE(error.find("not a recognised key"), std::string::npos)
        << error;

    const auto top = parseError(R"({"schedulr": {}})");
    EXPECT_NE(top.find("schedulr"), std::string::npos) << top;
}

TEST(SpecJson, RejectsTypeMismatchesNamingThePath)
{
    const auto error =
        parseError(R"({"cluster": {"replicas": "four"}})");
    EXPECT_NE(error.find("cluster.replicas"), std::string::npos) << error;
    EXPECT_NE(error.find("integer"), std::string::npos) << error;

    const auto nested = parseError(
        R"({"cluster": {"autoscaler": {"min_replicas": -1}}})");
    EXPECT_NE(nested.find("cluster.autoscaler.min_replicas"),
              std::string::npos)
        << nested;
}

TEST(SpecJson, RejectsOutOfRangeIntegers)
{
    // A value that would wrap in a 32-bit field must not silently run
    // as a different configuration.
    const auto wide =
        parseError(R"({"engine": {"tp_degree": 4294967297}})");
    EXPECT_NE(wide.find("engine.tp_degree"), std::string::npos) << wide;
    EXPECT_NE(wide.find("out of range"), std::string::npos) << wide;

    const auto negative = parseError(R"({"predictor": {"seed": -1}})");
    EXPECT_NE(negative.find("predictor.seed"), std::string::npos)
        << negative;
    EXPECT_NE(negative.find("non-negative"), std::string::npos)
        << negative;

    // uint64 max is a valid seed and round-trips...
    const auto max = core::specFromJson(
        R"({"predictor": {"seed": 18446744073709551615}})");
    ASSERT_TRUE(max.has_value());
    EXPECT_EQ(max->predictor.seed, 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(roundTrip(*max), *max);
    // ...but 2^64 is out of any 64-bit range.
    const auto huge = parseError(
        R"({"predictor": {"seed": 18446744073709551616}})");
    EXPECT_NE(huge.find("64-bit range"), std::string::npos) << huge;
    // And an unsigned-only value cannot feed a signed field.
    const auto signedField = parseError(
        R"({"chunk_tokens": 18446744073709551615})");
    EXPECT_NE(signedField.find("chunk_tokens"), std::string::npos)
        << signedField;
}

TEST(SpecJson, RejectsUnknownEnumValuesListingKnownOnes)
{
    const auto error =
        parseError(R"({"adapters": {"eviction": "mru"}})");
    EXPECT_NE(error.find("adapters.eviction"), std::string::npos) << error;
    EXPECT_NE(error.find("gdsf"), std::string::npos) << error;

    const auto model_error =
        parseError(R"({"engine": {"model": "gpt-5"}})");
    EXPECT_NE(model_error.find("engine.model"), std::string::npos)
        << model_error;
    EXPECT_NE(model_error.find("llama-7b"), std::string::npos)
        << model_error;
}

TEST(SpecJson, RejectsSyntaxErrorsWithLineInfo)
{
    const auto error = parseError("{\"name\": }");
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(SpecJson, RejectsBadFleetAndReplicaOverrides)
{
    // Unknown fleet presets name the key and teach the grammar.
    const auto fleet = parseError(R"({"cluster": {"fleet": "h100x8"}})");
    EXPECT_NE(fleet.find("cluster.fleet"), std::string::npos) << fleet;
    EXPECT_NE(fleet.find("<gpu>x<count>"), std::string::npos) << fleet;
    EXPECT_NE(fleet.find("a100"), std::string::npos) << fleet;

    // A fleet beside an explicit replicas key would define the count
    // twice; one of them would silently lose.
    const auto both = parseError(
        R"({"cluster": {"fleet": "a40x2", "replicas": 2}})");
    EXPECT_NE(both.find("conflicts"), std::string::npos) << both;

    // Array entries carry their index in the error path.
    const auto gpu = parseError(
        R"({"cluster": {"replicas": ["a40", "b200"]}})");
    EXPECT_NE(gpu.find("cluster.replicas[1]"), std::string::npos) << gpu;
    EXPECT_NE(gpu.find("a100"), std::string::npos) << gpu;
    const auto key = parseError(
        R"({"cluster": {"replicas": [{"gpuz": "a40"}]}})");
    EXPECT_NE(key.find("cluster.replicas[0].gpuz"), std::string::npos)
        << key;

    // An empty list is neither a count nor a fleet.
    const auto empty = parseError(R"({"cluster": {"replicas": []}})");
    EXPECT_NE(empty.find("empty array"), std::string::npos) << empty;

    // And the count form still rejects non-integers.
    const auto type = parseError(R"({"cluster": {"replicas": 1.5}})");
    EXPECT_NE(type.find("integer count or an array"), std::string::npos)
        << type;
}

TEST(SpecValidate, ReplicaOverridesMustMatchTheReplicaCount)
{
    auto spec = core::presets::chameleon();
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    spec.cluster.replicas = 3;
    spec.cluster.replicaEngines = {spec.engine, spec.engine};
    const auto errors = spec.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("replicaEngines"), std::string::npos)
        << errors[0];
    EXPECT_NE(errors[0].find("one override per replica"),
              std::string::npos)
        << errors[0];

    // Per-replica contradictions are named with their index.
    spec.cluster.replicaEngines.push_back(spec.engine);
    spec.cluster.replicaEngines[1].tpDegree = 0;
    const auto tpErrors = spec.validate();
    ASSERT_EQ(tpErrors.size(), 1u);
    EXPECT_NE(tpErrors[0].find("replicaEngines[1].tpDegree"),
              std::string::npos)
        << tpErrors[0];
}

TEST(SpecJson, RejectsValidationContradictions)
{
    // Parses fine, but GDSF eviction without the cache is contradictory;
    // the validate() message comes through the JSON error channel.
    const auto error = parseError(
        R"({"adapters": {"policy": "slora", "eviction": "gdsf"}})");
    EXPECT_NE(error.find("requires the chameleon cache"),
              std::string::npos)
        << error;
}

// ---------------------------------------------------------------------
// operator== (the round-trip assertions depend on it being exact).
// ---------------------------------------------------------------------

TEST(SpecEquality, DistinguishesEveryAxis)
{
    const auto base = [] {
        auto spec = core::presets::chameleon();
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
        return spec;
    };

    EXPECT_EQ(base(), base());

    auto named = base();
    named.name = "other";
    EXPECT_NE(named, base());

    auto scheduler = base();
    scheduler.scheduler.policy = core::SchedulerPolicy::Fifo;
    EXPECT_NE(scheduler, base());

    auto eviction = base();
    eviction.adapters.eviction = core::EvictionKind::Lru;
    EXPECT_NE(eviction, base());

    auto predictor = base();
    predictor.predictor.accuracy = 0.6;
    EXPECT_NE(predictor, base());

    auto engine = base();
    engine.engine.workspacePerGpu += 1;
    EXPECT_NE(engine, base());

    auto cluster = base();
    cluster.cluster.replicas = 2;
    EXPECT_NE(cluster, base());

    auto hetero = base();
    hetero.cluster.replicaEngines = {hetero.engine};
    EXPECT_NE(hetero, base());

    auto router = base();
    router.cluster.routerConfig.seed += 1;
    EXPECT_NE(router, base());

    auto autoscaler = base();
    autoscaler.cluster.autoscaler.highWatermark += 1.0;
    EXPECT_NE(autoscaler, base());

    auto reservation = base();
    reservation.reservation = core::ReservationPolicy::Predicted;
    EXPECT_NE(reservation, base());

    auto chunked = base();
    chunked.chunkTokens += 1;
    EXPECT_NE(chunked, base());
}
