/**
 * @file
 * End-to-end integration tests over the Runner facade: every registered
 * system runs a common trace to completion; cross-system invariants
 * from the paper's evaluation hold directionally.
 */

#include <gtest/gtest.h>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "serving/slo.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

struct Env
{
    model::AdapterPool pool{model::llama7B(), 50};
    workload::Trace trace;

    explicit Env(double rps = 8.0, double seconds = 60.0)
    {
        auto wl = workload::splitwiseLike();
        wl.rps = rps;
        wl.durationSeconds = seconds;
        wl.numAdapters = 50;
        workload::TraceGenerator gen(wl, &pool);
        trace = gen.generate();
    }

    /** Registry spec stamped with the test hardware. */
    core::SystemSpec spec(const std::string &system) const
    {
        auto spec = core::SystemRegistry::global().lookup(system);
        spec.engine.model = model::llama7B();
        spec.engine.gpu = model::a40();
        return spec;
    }

    core::RunReport run(const std::string &system) const
    {
        return core::runSpec(spec(system), &pool, trace);
    }
};

std::string
testName(const std::string &system)
{
    std::string name = system;
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

} // namespace

class SystemNameTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SystemNameTest, RunsTraceToCompletion)
{
    Env env(6.0, 40.0);
    const auto result = env.run(GetParam());
    EXPECT_EQ(result.stats.finished,
              static_cast<std::int64_t>(env.trace.size()));
    EXPECT_GT(result.stats.ttft.p50(), 0.0);
    EXPECT_GT(result.stats.e2e.p99(), result.stats.ttft.p99());
    // Every finished request produced a record.
    EXPECT_EQ(result.stats.records.size(), env.trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, SystemNameTest,
    ::testing::Values("slora", "slora-sjf", "slora-chunked",
                      "chameleon-nocache", "chameleon-nosched",
                      "chameleon", "chameleon-lru",
                      "chameleon-fairshare", "chameleon-gdsf",
                      "chameleon-prefetch", "chameleon-static",
                      "chameleon-output-only", "chameleon-degree1"),
    [](const auto &info) { return testName(info.param); });

/** Composed (grammar) systems run end-to-end like presets. */
class ComposedSystemTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ComposedSystemTest, RunsTraceToCompletion)
{
    Env env(6.0, 40.0);
    const auto result = env.run(GetParam());
    EXPECT_EQ(result.stats.finished,
              static_cast<std::int64_t>(env.trace.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ComposedSystemTest,
    ::testing::Values("chameleon+gdsf+prefetch", "slora+cache",
                      "chameleon+sjf", "chameleon+history",
                      "slora+chunked128+sjf"),
    [](const auto &info) { return testName(info.param); });

TEST(SystemIntegration, DeterministicResults)
{
    Env env(6.0, 30.0);
    const auto a = env.run("chameleon");
    const auto b = env.run("chameleon");
    EXPECT_EQ(a.stats.ttft.sorted(), b.stats.ttft.sorted());
    EXPECT_EQ(a.pcieBytes, b.pcieBytes);
}

TEST(SystemIntegration, CacheRaisesHitRateAndCutsPcieTraffic)
{
    Env env(8.0, 60.0);
    const auto base = env.run("slora");
    const auto cham = env.run("chameleon");
    EXPECT_GT(cham.cacheHitRate, base.cacheHitRate + 0.15);
    EXPECT_LT(cham.pcieBytes, base.pcieBytes);
}

TEST(SystemIntegration, CacheCutsCriticalPathLoading)
{
    // Fig. 14: most Chameleon requests hit the cache and pay zero
    // loading latency; the baseline pays more, more often.
    Env env(8.0, 60.0);
    const auto base = env.run("slora");
    const auto cham = env.run("chameleon");
    EXPECT_LE(cham.stats.loadStall.mean(), base.stats.loadStall.mean());
}

TEST(SystemIntegration, ChameleonImprovesTailAtHighLoad)
{
    Env env(10.0, 90.0);
    const auto base = env.run("slora");
    const auto cham = env.run("chameleon");
    EXPECT_LT(cham.stats.ttft.p99(), base.stats.ttft.p99());
    EXPECT_LT(cham.stats.ttft.p50(), base.stats.ttft.p50());
}

TEST(SystemIntegration, MlqFormsMultipleQueues)
{
    Env env(8.0, 60.0);
    const auto result = env.run("chameleon");
    EXPECT_GE(result.mlqQueues, 2);
}

TEST(SystemIntegration, SquashRateStaysBounded)
{
    // §4.3.3: at most ~5% of requests get squashed.
    Env env(10.0, 90.0);
    const auto cham = env.run("chameleon");
    EXPECT_LE(static_cast<double>(cham.stats.squashes),
              0.05 * static_cast<double>(cham.stats.finished) + 1.0);
}

TEST(SystemIntegration, BaseOnlyWorkloadRuns)
{
    auto wl = workload::splitwiseLike();
    wl.rps = 5.0;
    wl.durationSeconds = 30.0;
    wl.numAdapters = 0;
    workload::TraceGenerator gen(wl, nullptr);
    const auto trace = gen.generate();
    auto spec = core::SystemRegistry::global().lookup("slora");
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    const auto result = core::runSpec(spec, nullptr, trace);
    EXPECT_EQ(result.stats.finished,
              static_cast<std::int64_t>(trace.size()));
    EXPECT_EQ(result.pcieBytes, 0);
}

TEST(SystemIntegration, SloAndSlowdownHelpers)
{
    Env env(6.0, 40.0);
    model::CostModel cost(model::llama7B(), model::a40());
    const auto slo = serving::computeSlo(env.trace, cost, &env.pool);
    EXPECT_GT(sim::toSeconds(slo), 1.0);
    const auto result = env.run("chameleon");
    auto sd = serving::slowdowns(result.stats.records, cost, &env.pool);
    EXPECT_GE(sd.percentile(1.0), 0.9); // can't beat run-alone by much
    EXPECT_GE(sd.p99(), sd.p50());
}

TEST(Throughput, KneeFinderInterpolates)
{
    const std::vector<std::pair<double, double>> sweep{
        {6.0, 1.0}, {8.0, 2.0}, {10.0, 6.0}, {12.0, 20.0}};
    // SLO of 4 s sits between 8 RPS (2 s) and 10 RPS (6 s).
    EXPECT_NEAR(serving::throughputKnee(sweep, 4.0), 9.0, 1e-9);
    // SLO below the first point: that load is already a violation.
    EXPECT_DOUBLE_EQ(serving::throughputKnee(sweep, 0.5), 6.0);
    // SLO above everything: compliant at the top of the sweep.
    EXPECT_DOUBLE_EQ(serving::throughputKnee(sweep, 100.0), 12.0);
}

TEST(SystemIntegration, HistoryPredictorVariantRuns)
{
    Env env(8.0, 60.0);
    auto spec = env.spec("chameleon");
    spec.predictor.kind = "history";
    const auto result = core::runSpec(spec, &env.pool, env.trace);
    EXPECT_EQ(result.stats.finished,
              static_cast<std::int64_t>(env.trace.size()));
    // Online predictions are rougher than the oracle's: under-
    // predictions may cost preemptions, but the run must stay sane.
    EXPECT_LE(result.stats.preemptions, result.stats.finished / 10);
}

TEST(SystemIntegration, BypassDisabledStillCompletes)
{
    Env env(9.0, 60.0);
    auto spec = env.spec("chameleon");
    spec.scheduler.bypass = false;
    const auto result = core::runSpec(spec, &env.pool, env.trace);
    EXPECT_EQ(result.stats.finished,
              static_cast<std::int64_t>(env.trace.size()));
    EXPECT_EQ(result.stats.bypasses, 0);
    EXPECT_EQ(result.stats.squashes, 0);
}

TEST(SystemIntegration, UtilisationAccountingConsistent)
{
    Env env(8.0, 60.0);
    const auto result = env.run("chameleon");
    const auto &s = result.stats;
    EXPECT_GT(s.busyTime, 0);
    EXPECT_GT(s.iterations, 0);
    // Every request's input tokens were prefilled exactly once (no
    // squashes in this run), and one decode token per generated token
    // beyond the first.
    std::int64_t expect_prefill = 0;
    std::int64_t expect_decode = 0;
    for (const auto &r : env.trace.requests()) {
        expect_prefill += r.inputTokens;
        expect_decode += r.outputTokens - 1;
    }
    if (s.squashes == 0 && s.preemptions == 0) {
        EXPECT_EQ(s.prefillTokens, expect_prefill);
        EXPECT_EQ(s.decodeTokens, expect_decode);
    }
}
