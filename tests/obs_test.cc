/**
 * @file
 * Observability tests (obs/trace_recorder.h, obs/metrics_registry.h):
 *  - recorder output is valid Chrome trace-event JSON (parses with
 *    simkit/json, has the expected envelope and event fields);
 *  - span nesting is well-formed: sync B/E balance per (pid, tid) and
 *    async b/e pairs match by (category, id, name) with end >= begin —
 *    checked on a hand-built recorder and on a real cluster run;
 *  - determinism: two same-seed runs produce byte-identical trace
 *    JSON and metrics snapshots;
 *  - observation neutrality: attaching a recorder leaves the canonical
 *    per-request record stream bit-identical to an untraced run (the
 *    golden-trace contract);
 *  - MetricsRegistry: hierarchical snapshot nesting, dump -> parse ->
 *    dump round-trip, histogram stats, RunReport::metrics consistency.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "chameleon/system.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "simkit/json.h"
#include "workload/trace_gen.h"

using namespace chameleon;

namespace {

constexpr std::uint64_t kSeed = 1234;

/** Small clustered autoscaled hetero scenario (golden-suite shaped). */
core::SystemSpec
smallClusterSpec()
{
    auto spec = core::SystemRegistry::global().lookup("chameleon");
    spec.engine.model = model::llama7B();
    spec.engine.gpu = model::a40();
    spec.cluster.router = routing::RouterPolicy::AdapterAffinity;
    spec.cluster.routerConfig.seed = kSeed;
    spec.predictor.seed = kSeed;
    spec.cluster.replicas = 2;
    serving::EngineConfig fast = spec.engine;
    fast.gpu = model::a100(48);
    spec.cluster.replicaEngines = {fast, spec.engine};
    spec.cluster.autoscale = true;
    spec.cluster.autoscaler.minReplicas = 1;
    spec.cluster.autoscaler.maxReplicas = 4;
    spec.cluster.autoscaler.evalPeriodSeconds = 5.0;
    spec.cluster.autoscaler.replicaServiceRps = 6.0;
    spec.cluster.autoscaler.downCooldownPeriods = 2;
    return spec;
}

workload::Trace
smallTrace(const model::AdapterPool &pool)
{
    auto wl = workload::splitwiseLike();
    wl.rps = 10.0;
    wl.durationSeconds = 30.0;
    wl.numAdapters = 40;
    wl.seed = kSeed;
    wl.bursts.push_back(workload::Burst{10.0, 20.0, 3.0});
    workload::TraceGenerator gen(wl, &pool);
    return gen.generate();
}

/** Per-request record stream, the golden-suite canonical form. */
std::string
recordStream(const core::Runner &runner)
{
    std::ostringstream os;
    const auto &engines =
        const_cast<core::Runner &>(runner).cluster().engines();
    for (std::size_t i = 0; i < engines.size(); ++i) {
        for (const auto &r : engines[i]->stats().records) {
            os << i << ',' << r.id << ',' << r.arrival << ',' << r.ttft
               << ',' << r.e2e << ',' << r.queueDelay << ','
               << r.adapterStall << ',' << r.squashCount << ','
               << r.preemptCount << '\n';
        }
    }
    return os.str();
}

struct TracedRun
{
    std::string traceJson;
    std::string metricsJson;
    std::string records;
    core::RunReport report;
};

TracedRun
runTraced(bool attachRecorder)
{
    model::AdapterPool pool(model::llama7B(), 40);
    const auto trace = smallTrace(pool);
    core::Runner runner(smallClusterSpec(), &pool);
    obs::TraceRecorder recorder;
    if (attachRecorder)
        runner.setTraceRecorder(&recorder);
    TracedRun out;
    out.report = runner.run(trace);
    out.traceJson = recorder.toJson();
    out.metricsJson = out.report.metrics.dump();
    out.records = recordStream(runner);
    return out;
}

/**
 * Well-formedness over a parsed trace document: sync B/E stacks
 * balance per (pid, tid), async b/e events pair up by (category, id,
 * name) in order with end.ts >= begin.ts, and every event carries the
 * envelope fields Perfetto needs.
 */
void
checkWellFormed(const sim::JsonValue &doc)
{
    const auto *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::map<std::pair<std::int64_t, std::int64_t>, int> syncDepth;
    std::map<std::tuple<std::string, std::int64_t, std::string>, int>
        asyncOpen;
    for (const auto &e : events->items()) {
        ASSERT_TRUE(e.isObject());
        const auto *ph = e.find("ph");
        const auto *pid = e.find("pid");
        const auto *tid = e.find("tid");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(pid, nullptr);
        ASSERT_NE(tid, nullptr);
        const std::string phase = ph->asString();
        if (phase == "M")
            continue; // metadata carries no ts
        const auto *ts = e.find("ts");
        ASSERT_NE(ts, nullptr) << "phase " << phase << " without ts";
        EXPECT_GE(ts->asInt(), 0);
        const auto key = std::make_pair(pid->asInt(), tid->asInt());
        if (phase == "B") {
            ++syncDepth[key];
        } else if (phase == "E") {
            EXPECT_GT(syncDepth[key], 0) << "E without matching B";
            --syncDepth[key];
        } else if (phase == "X") {
            const auto *dur = e.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_GE(dur->asInt(), 0);
        } else if (phase == "b" || phase == "e") {
            const auto *cat = e.find("cat");
            const auto *id = e.find("id");
            const auto *name = e.find("name");
            ASSERT_NE(cat, nullptr);
            ASSERT_NE(id, nullptr);
            ASSERT_NE(name, nullptr);
            const auto akey = std::make_tuple(
                cat->asString(), id->asInt(), name->asString());
            if (phase == "b") {
                ++asyncOpen[akey];
            } else {
                EXPECT_GT(asyncOpen[akey], 0)
                    << "async end without begin: " << name->asString()
                    << " id " << id->asInt();
                --asyncOpen[akey];
            }
        } else {
            EXPECT_TRUE(phase == "i" || phase == "C")
                << "unexpected phase " << phase;
        }
    }
    for (const auto &[key, depth] : syncDepth)
        EXPECT_EQ(depth, 0) << "unbalanced B/E on pid " << key.first;
    for (const auto &[key, open] : asyncOpen)
        EXPECT_EQ(open, 0)
            << "unclosed async span " << std::get<2>(key);
}

sim::JsonValue
parseOrDie(const std::string &text)
{
    std::string error;
    auto doc = sim::parseJson(text, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return doc.value_or(sim::JsonValue{});
}

} // namespace

TEST(TraceRecorder, HandBuiltDocumentParsesAndNests)
{
    obs::TraceRecorder rec;
    rec.processName(obs::kClusterPid, "cluster");
    rec.processName(obs::pidForReplica(0), "replica0");
    rec.threadName(obs::pidForReplica(0), obs::Lane::Engine, "engine");
    rec.begin(obs::pidForReplica(0), obs::Lane::Engine, "iteration", 10,
              {{"batch", 4}});
    rec.instant(obs::pidForReplica(0), obs::Lane::Engine, "preempt", 15,
                {{"request", 7}});
    rec.end(obs::pidForReplica(0), obs::Lane::Engine, 20);
    rec.complete(obs::pidForReplica(0), obs::Lane::Engine, "boot", 0, 30);
    rec.counter(obs::pidForReplica(0), "memory_bytes", 25,
                {{"kv", 1024}, {"used", 2048}});
    rec.asyncBegin(obs::pidForReplica(0), "request", 7, "request", 5,
                   {{"input", 128}});
    rec.asyncBegin(obs::pidForReplica(0), "request", 7, "prefill", 12);
    rec.asyncEnd(obs::pidForReplica(0), "request", 7, "prefill", 18);
    rec.asyncEnd(obs::pidForReplica(0), "request", 7, "request", 40);
    EXPECT_EQ(rec.size(), 9u); // meta events not counted

    const auto doc = parseOrDie(rec.toJson());
    const auto *unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->asString(), "ms");
    checkWellFormed(doc);

    // Metadata first, then events in emission order.
    const auto &events = doc.find("traceEvents")->items();
    ASSERT_EQ(events.size(), 12u);
    EXPECT_EQ(events[0].find("ph")->asString(), "M");
    EXPECT_EQ(events[3].find("name")->asString(), "iteration");
    EXPECT_EQ(events[3].find("args")->find("batch")->asInt(), 4);
}

TEST(TraceRecorder, RealRunProducesWellFormedTrace)
{
    const auto run = runTraced(true);
    const auto doc = parseOrDie(run.traceJson);
    checkWellFormed(doc);

    // The instrumented event families all fire on this scenario.
    const auto &events = doc.find("traceEvents")->items();
    std::map<std::string, int> names;
    for (const auto &e : events)
        if (const auto *n = e.find("name"))
            ++names[n->asString()];
    EXPECT_GT(names["dispatch"], 0);
    EXPECT_GT(names["autoscale_eval"], 0);
    EXPECT_GT(names["request"], 0);
    EXPECT_GT(names["prefill"], 0);
    EXPECT_GT(names["decode"], 0);
    EXPECT_GT(names["memory_bytes"], 0);
    EXPECT_EQ(names["request"],
              2 * static_cast<int>(run.report.stats.finished));
}

TEST(TraceRecorder, SameSeedRunsAreByteIdentical)
{
    const auto a = runTraced(true);
    const auto b = runTraced(true);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.metricsJson, b.metricsJson);
}

TEST(TraceRecorder, AttachingRecorderDoesNotPerturbTheRun)
{
    const auto untraced = runTraced(false);
    const auto traced = runTraced(true);
    EXPECT_EQ(untraced.records, traced.records);
    EXPECT_EQ(untraced.report.stats.finished,
              traced.report.stats.finished);
    EXPECT_EQ(untraced.report.scaleUps, traced.report.scaleUps);
    EXPECT_EQ(untraced.metricsJson, traced.metricsJson);
}

TEST(MetricsRegistry, SnapshotNestsDottedNames)
{
    obs::MetricsRegistry reg;
    reg.counter("replica0.cache.hits").inc(3);
    reg.counter("replica0.cache.misses").inc(1);
    reg.gauge("replica0.cache.hit_rate").set(0.75);
    reg.counter("cluster.requests.finished").inc(42);

    const auto snap = reg.snapshot();
    const auto *cache = snap.find("replica0")->find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("hits")->asInt(), 3);
    EXPECT_EQ(cache->find("misses")->asInt(), 1);
    EXPECT_DOUBLE_EQ(cache->find("hit_rate")->asNumber(), 0.75);
    EXPECT_EQ(snap.find("cluster")->find("requests")->find("finished")
                  ->asInt(),
              42);
}

TEST(MetricsRegistry, SnapshotRoundTripsThroughParse)
{
    obs::MetricsRegistry reg;
    reg.counter("a.b.c").inc(7);
    reg.gauge("a.b.g").set(1.5);
    auto &h = reg.histogram("a.h");
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));

    const std::string dumped = reg.snapshot().dump();
    const auto parsed = parseOrDie(dumped);
    EXPECT_EQ(parsed.dump(), dumped);
}

TEST(MetricsRegistry, HistogramStats)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
    // Log2 buckets: quantiles are approximate, within one power of two.
    EXPECT_GE(h.quantile(0.5), 250.0);
    EXPECT_LE(h.quantile(0.5), 1000.0);
    EXPECT_GE(h.quantile(0.99), 500.0);
    EXPECT_LE(h.quantile(0.99), 1000.0);
}

TEST(MetricsRegistry, RunReportMetricsMatchTheStats)
{
    const auto run = runTraced(false);
    const auto &m = run.report.metrics;
    const auto *cluster = m.find("cluster");
    ASSERT_NE(cluster, nullptr);
    EXPECT_EQ(cluster->find("requests")->find("finished")->asInt(),
              run.report.stats.finished);
    EXPECT_EQ(cluster->find("replicas")->find("peak")->asInt(),
              static_cast<std::int64_t>(run.report.peakReplicas));
    // Per-replica finished counts agree with the report's vector.
    for (std::size_t i = 0; i < run.report.perReplicaFinished.size();
         ++i) {
        const auto *replica =
            m.find("replica" + std::to_string(i));
        ASSERT_NE(replica, nullptr);
        EXPECT_EQ(replica->find("requests")->find("finished")->asInt(),
                  run.report.perReplicaFinished[i]);
    }
}
