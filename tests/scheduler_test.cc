/**
 * @file
 * Unit tests for the FIFO and SJF admission policies.
 */

#include <gtest/gtest.h>

#include "serving/fifo_scheduler.h"
#include "serving/sjf_scheduler.h"
#include "test_util.h"

using namespace chameleon;
using testutil::FakeAdmission;
using testutil::liveRequest;

TEST(FifoScheduler, AdmitsInArrivalOrder)
{
    serving::FifoScheduler sched;
    auto a = liveRequest(1, 10, 10);
    auto b = liveRequest(2, 10, 10);
    auto c = liveRequest(3, 10, 10);
    sched.enqueue(&a);
    sched.enqueue(&b);
    sched.enqueue(&c);
    FakeAdmission fake;
    const auto admitted = sched.selectAdmissions(fake.ctx);
    ASSERT_EQ(admitted.size(), 3u);
    EXPECT_EQ(admitted[0], &a);
    EXPECT_EQ(admitted[1], &b);
    EXPECT_EQ(admitted[2], &c);
    EXPECT_FALSE(sched.hasWaiting());
}

TEST(FifoScheduler, HeadOfLineBlocks)
{
    serving::FifoScheduler sched;
    auto big = liveRequest(1, 10, 10);
    auto small = liveRequest(2, 10, 10);
    sched.enqueue(&big);
    sched.enqueue(&small);
    FakeAdmission fake;
    fake.refuse = &big; // the head cannot reserve resources
    const auto admitted = sched.selectAdmissions(fake.ctx);
    // Nothing behind the blocked head may pass.
    EXPECT_TRUE(admitted.empty());
    EXPECT_EQ(sched.waitingCount(), 2u);
}

TEST(FifoScheduler, RespectsAdmissionSlots)
{
    serving::FifoScheduler sched;
    auto a = liveRequest(1, 10, 10);
    auto b = liveRequest(2, 10, 10);
    sched.enqueue(&a);
    sched.enqueue(&b);
    FakeAdmission fake;
    fake.ctx.admissionSlots = 1;
    EXPECT_EQ(sched.selectAdmissions(fake.ctx).size(), 1u);
    EXPECT_EQ(sched.waitingCount(), 1u);
}

TEST(FifoScheduler, PrefillBudgetGatesButNeverBlocksFirst)
{
    serving::FifoScheduler sched;
    auto huge = liveRequest(1, 5000, 10);
    auto next = liveRequest(2, 10, 10);
    sched.enqueue(&huge);
    sched.enqueue(&next);
    FakeAdmission fake;
    fake.ctx.prefillTokenBudget = 256;
    const auto admitted = sched.selectAdmissions(fake.ctx);
    // The oversized head is admitted (no live-lock), then the budget is
    // exhausted for this iteration.
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0], &huge);
}

TEST(FifoScheduler, RequeueFrontRestoresPosition)
{
    serving::FifoScheduler sched;
    auto a = liveRequest(1, 10, 10);
    auto b = liveRequest(2, 10, 10);
    sched.enqueue(&b);
    sched.requeueFront(&a);
    FakeAdmission fake;
    const auto admitted = sched.selectAdmissions(fake.ctx);
    ASSERT_EQ(admitted.size(), 2u);
    EXPECT_EQ(admitted[0], &a);
}

TEST(SjfScheduler, ShortestPredictedFirst)
{
    serving::SjfScheduler sched;
    auto longr = liveRequest(1, 10, 500);
    auto shortr = liveRequest(2, 10, 5);
    auto medr = liveRequest(3, 10, 50);
    sched.enqueue(&longr);
    sched.enqueue(&shortr);
    sched.enqueue(&medr);
    FakeAdmission fake;
    const auto admitted = sched.selectAdmissions(fake.ctx);
    ASSERT_EQ(admitted.size(), 3u);
    EXPECT_EQ(admitted[0], &shortr);
    EXPECT_EQ(admitted[1], &medr);
    EXPECT_EQ(admitted[2], &longr);
}

TEST(SjfScheduler, LongRequestsStarveWhileShortsArrive)
{
    serving::SjfScheduler sched;
    auto longr = liveRequest(1, 10, 500);
    sched.enqueue(&longr);
    auto shorts = std::vector<serving::LiveRequest>{};
    for (int i = 0; i < 4; ++i)
        shorts.push_back(liveRequest(10 + i, 10, 5));
    for (auto &s : shorts)
        sched.enqueue(&s);
    FakeAdmission fake;
    fake.ctx.admissionSlots = 4;
    const auto admitted = sched.selectAdmissions(fake.ctx);
    ASSERT_EQ(admitted.size(), 4u);
    for (const auto *r : admitted)
        EXPECT_NE(r, &longr); // all four shorts pass the long request
    EXPECT_EQ(sched.waitingCount(), 1u);
}

TEST(SjfScheduler, AgingEventuallyPromotesLongRequests)
{
    serving::SjfScheduler sched(/*agingPerSecond=*/10.0);
    auto longr = liveRequest(1, 10, 100);
    longr.arrival = 0;
    auto shortr = liveRequest(2, 10, 5);
    shortr.arrival = sim::fromSeconds(60.0);
    sched.enqueue(&longr);
    sched.enqueue(&shortr);
    FakeAdmission fake;
    fake.ctx.now = sim::fromSeconds(60.0);
    fake.ctx.admissionSlots = 1;
    // After 60 s of waiting the long request's effective size is
    // 100 - 600 < 5, so it goes first.
    const auto admitted = sched.selectAdmissions(fake.ctx);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0], &longr);
}
