/**
 * @file
 * Property tests for serving::MeasuredRate — the online EWMA of a
 * replica's observed completion rate that blends into the cluster's
 * routing weights (ClusterView::serviceWeight).
 */

#include <gtest/gtest.h>

#include "serving/measured_rate.h"
#include "simkit/rng.h"
#include "simkit/time.h"

using namespace chameleon;

TEST(MeasuredRate, StartsAtTheNominalRate)
{
    serving::MeasuredRate rate(0.2, 4.0);
    EXPECT_DOUBLE_EQ(rate.rate(), 4.0);
    // The first completion only arms the interval clock.
    rate.onCompletion(sim::kSec);
    EXPECT_DOUBLE_EQ(rate.rate(), 4.0);
}

TEST(MeasuredRate, ConvergesToTheTrueRateOnASteadyStream)
{
    // Nominal says 2 req/s; the replica actually completes 10 req/s.
    serving::MeasuredRate rate(0.2, 2.0);
    sim::SimTime t = 0;
    for (int i = 0; i < 500; ++i)
        rate.onCompletion(t += sim::kSec / 10);
    EXPECT_NEAR(rate.rate(), 10.0, 1e-6);

    // And back down when the replica slows to 1 req/s.
    for (int i = 0; i < 500; ++i)
        rate.onCompletion(t += sim::kSec);
    EXPECT_NEAR(rate.rate(), 1.0, 1e-6);
}

TEST(MeasuredRate, BlendsFromNominalTowardTheObservation)
{
    // After a handful of fast completions the estimate sits strictly
    // between the nominal rate and the true rate: it blends, it does
    // not jump.
    serving::MeasuredRate rate(0.1, 2.0);
    sim::SimTime t = 0;
    for (int i = 0; i < 5; ++i)
        rate.onCompletion(t += sim::kSec / 10);
    EXPECT_GT(rate.rate(), 2.0);
    EXPECT_LT(rate.rate(), 10.0);
}

TEST(MeasuredRate, AlphaZeroDegradesExactlyToTheNominalRate)
{
    serving::MeasuredRate rate(0.0, 3.5);
    sim::SimTime t = 0;
    for (int i = 0; i < 1000; ++i)
        rate.onCompletion(t += sim::kSec / 20);
    // Not approximately — exactly the static estimate, which is what
    // keeps routing weights (and event streams) bit-identical when
    // measurement is disabled.
    EXPECT_EQ(rate.rate(), 3.5);
    EXPECT_EQ(rate.completions(), 1000);
}

TEST(MeasuredRate, SameStreamSameEstimate)
{
    // Seed-deterministic: two instances fed the identical (seeded
    // pseudo-random) completion stream report bit-identical rates at
    // every step.
    serving::MeasuredRate a(0.3, 5.0);
    serving::MeasuredRate b(0.3, 5.0);
    sim::Rng rng(0xFEED);
    sim::SimTime t = 0;
    for (int i = 0; i < 300; ++i) {
        t += static_cast<sim::SimTime>(rng.nextBelow(sim::kSec)) + 1;
        a.onCompletion(t);
        b.onCompletion(t);
        ASSERT_EQ(a.rate(), b.rate());
    }
    EXPECT_GT(a.rate(), 0.0);
}

TEST(MeasuredRate, SameTimestampCompletionsCarryNoInterval)
{
    // A batch iteration finishing several requests at one timestamp
    // must not drive the interval (and hence the rate) to infinity.
    serving::MeasuredRate rate(0.5, 2.0);
    rate.onCompletion(sim::kSec);
    rate.onCompletion(2 * sim::kSec);
    const double before = rate.rate();
    rate.onCompletion(2 * sim::kSec);
    rate.onCompletion(2 * sim::kSec);
    EXPECT_EQ(rate.rate(), before);
}
