/**
 * @file
 * Property tests for serving::MeasuredRate — the online EWMA of a
 * replica's observed completion rate that blends into the cluster's
 * routing weights (ClusterView::serviceWeight).
 */

#include <gtest/gtest.h>

#include "serving/measured_rate.h"
#include "simkit/rng.h"
#include "simkit/time.h"

using namespace chameleon;

TEST(MeasuredRate, StartsAtTheNominalRate)
{
    serving::MeasuredRate rate(0.2, 4.0);
    EXPECT_DOUBLE_EQ(rate.rate(), 4.0);
    // The first completion only arms the interval clock.
    rate.onCompletion(sim::kSec);
    EXPECT_DOUBLE_EQ(rate.rate(), 4.0);
}

TEST(MeasuredRate, ConvergesToTheTrueRateOnASteadyStream)
{
    // Nominal says 2 req/s; the replica actually completes 10 req/s.
    serving::MeasuredRate rate(0.2, 2.0);
    sim::SimTime t = 0;
    for (int i = 0; i < 500; ++i)
        rate.onCompletion(t += sim::kSec / 10);
    EXPECT_NEAR(rate.rate(), 10.0, 1e-6);

    // And back down when the replica slows to 1 req/s.
    for (int i = 0; i < 500; ++i)
        rate.onCompletion(t += sim::kSec);
    EXPECT_NEAR(rate.rate(), 1.0, 1e-6);
}

TEST(MeasuredRate, BlendsFromNominalTowardTheObservation)
{
    // After a handful of fast completions the estimate sits strictly
    // between the nominal rate and the true rate: it blends, it does
    // not jump.
    serving::MeasuredRate rate(0.1, 2.0);
    sim::SimTime t = 0;
    for (int i = 0; i < 5; ++i)
        rate.onCompletion(t += sim::kSec / 10);
    EXPECT_GT(rate.rate(), 2.0);
    EXPECT_LT(rate.rate(), 10.0);
}

TEST(MeasuredRate, AlphaZeroDegradesExactlyToTheNominalRate)
{
    serving::MeasuredRate rate(0.0, 3.5);
    sim::SimTime t = 0;
    for (int i = 0; i < 1000; ++i)
        rate.onCompletion(t += sim::kSec / 20);
    // Not approximately — exactly the static estimate, which is what
    // keeps routing weights (and event streams) bit-identical when
    // measurement is disabled.
    EXPECT_EQ(rate.rate(), 3.5);
    EXPECT_EQ(rate.completions(), 1000);
}

TEST(MeasuredRate, SameStreamSameEstimate)
{
    // Seed-deterministic: two instances fed the identical (seeded
    // pseudo-random) completion stream report bit-identical rates at
    // every step.
    serving::MeasuredRate a(0.3, 5.0);
    serving::MeasuredRate b(0.3, 5.0);
    sim::Rng rng(0xFEED);
    sim::SimTime t = 0;
    for (int i = 0; i < 300; ++i) {
        t += static_cast<sim::SimTime>(rng.nextBelow(sim::kSec)) + 1;
        a.onCompletion(t);
        b.onCompletion(t);
        ASSERT_EQ(a.rate(), b.rate());
    }
    EXPECT_GT(a.rate(), 0.0);
}

TEST(MeasuredRate, SameTimestampCompletionsCarryNoInterval)
{
    // A batch iteration finishing several requests at one timestamp
    // must not drive the interval (and hence the rate) to infinity.
    serving::MeasuredRate rate(0.5, 2.0);
    rate.onCompletion(sim::kSec);
    rate.onCompletion(2 * sim::kSec);
    const double before = rate.rate();
    rate.onCompletion(2 * sim::kSec);
    rate.onCompletion(2 * sim::kSec);
    EXPECT_EQ(rate.rate(), before);
}

TEST(MeasuredRate, FlooredRateMatchesOnAHealthyStream)
{
    // While completions keep arriving faster than the smoothed
    // interval, the staleness floor never engages: rate(now) == rate().
    serving::MeasuredRate rate(0.2, 2.0);
    sim::SimTime t = 0;
    for (int i = 0; i < 200; ++i) {
        rate.onCompletion(t += sim::kSec / 10);
        ASSERT_EQ(rate.rate(t), rate.rate());
        // Probing part-way into the expected next interval still reads
        // the EWMA — elapsed has not yet exceeded it.
        ASSERT_EQ(rate.rate(t + sim::kSec / 20), rate.rate());
    }
}

TEST(MeasuredRate, FlooredRateDecaysMonotonicallyDuringAStall)
{
    // A replica that was measuring ~10 req/s, then stops completing:
    // the un-floored estimate keeps reporting the last EWMA forever,
    // while the floored one decays as 1/elapsed — after 10 s of
    // silence the real interval is provably >= 10 s.
    serving::MeasuredRate rate(0.2, 2.0);
    sim::SimTime t = 0;
    for (int i = 0; i < 500; ++i)
        rate.onCompletion(t += sim::kSec / 10);
    EXPECT_NEAR(rate.rate(), 10.0, 1e-6);
    double previous = rate.rate(t);
    for (int seconds = 1; seconds <= 20; ++seconds) {
        const double stalled = rate.rate(t + seconds * sim::kSec);
        ASSERT_LE(stalled, previous) << "at +" << seconds << "s";
        previous = stalled;
    }
    EXPECT_NEAR(rate.rate(t + 10 * sim::kSec), 0.1, 1e-6);
    // The stall leaves the EWMA itself untouched.
    EXPECT_NEAR(rate.rate(), 10.0, 1e-6);
}

TEST(MeasuredRate, FlooredRateKeepsTheSeedUntilArmed)
{
    // Before the EWMA holds a sample there is nothing to floor: an
    // idle-from-birth replica is idle, not degraded, and keeps its
    // nominal seed no matter how much time passes.
    serving::MeasuredRate rate(0.3, 4.0);
    EXPECT_FALSE(rate.armed());
    EXPECT_DOUBLE_EQ(rate.rate(3600 * sim::kSec), 4.0);
    rate.onCompletion(sim::kSec); // arms the clock, still no sample
    EXPECT_FALSE(rate.armed());
    EXPECT_DOUBLE_EQ(rate.rate(3600 * sim::kSec), 4.0);
    rate.onCompletion(2 * sim::kSec); // first interval sample
    EXPECT_TRUE(rate.armed());
    EXPECT_LT(rate.rate(3600 * sim::kSec), rate.rate());
}

TEST(MeasuredRate, AlphaZeroFloorsNothingEither)
{
    // Measurement disabled: the floored overload is the same constant
    // nominal estimate as rate(), bit for bit.
    serving::MeasuredRate rate(0.0, 3.5);
    sim::SimTime t = 0;
    for (int i = 0; i < 100; ++i)
        rate.onCompletion(t += sim::kSec);
    EXPECT_FALSE(rate.armed());
    EXPECT_EQ(rate.rate(t + 3600 * sim::kSec), 3.5);
    EXPECT_EQ(rate.rate(t + 3600 * sim::kSec), rate.rate());
}
