/**
 * @file
 * Cache-fabric test layer: the residency directory churned against a
 * brute-force reference model, peer-to-peer migration behaviour, the
 * preset registries' rejection paths, and sweep thread-stress with
 * migration enabled.
 *
 * The tentpole invariant: the ResidencyDirectory — fed only by the
 * cache managers' residency callbacks — never disagrees with the
 * per-replica cache contents it mirrors, under arbitrary interleavings
 * of acquire/release/shrink/peer-admit/evict churn.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "chameleon/cache_manager.h"
#include "chameleon/spec_json.h"
#include "fabric/cache_fabric.h"
#include "model/cost_model.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/simulator.h"
#include "sweep/sweep_runner.h"

using namespace chameleon;

namespace {

/** A small cluster of real cache managers over one simulator, wired
 * into one directory exactly as DataParallelCluster wires them. */
struct ClusterFixture
{
    static constexpr int kReplicas = 3;
    static constexpr int kAdapters = 12;

    sim::Simulator simulator;
    model::AdapterPool pool{model::llama7B(), kAdapters};
    model::CostModel cost{model::llama7B(), model::a40()};
    fabric::ResidencyDirectory directory;
    std::vector<std::unique_ptr<gpu::GpuMemory>> mems;
    std::vector<std::unique_ptr<gpu::PcieLink>> links;
    std::vector<std::unique_ptr<core::CacheManager>> mgrs;

    explicit ClusterFixture(std::int64_t capacity = 120ll << 20)
    {
        for (int r = 0; r < kReplicas; ++r) {
            mems.push_back(
                std::make_unique<gpu::GpuMemory>(capacity, 0, 0));
            links.push_back(std::make_unique<gpu::PcieLink>(
                simulator, [this](std::int64_t bytes) {
                    return cost.adapterLoadTime(bytes);
                }));
            mgrs.push_back(std::make_unique<core::CacheManager>(
                pool, *mems[r], *links[r], cost));
            mgrs[r]->setResidencyListener(&directory, r);
        }
    }
};

} // namespace

/**
 * Randomised churn: acquire/release/KV-shrink/peer-admit across three
 * replicas, checking after every quiescent point that the directory
 * agrees with each cache manager (the brute-force reference model) on
 * residency, holdings, and entry counts — and that no refcount ever
 * goes negative.
 */
TEST(FabricDirectory, ChurnNeverDisagreesWithCaches)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        // Tight capacity: ~7 rank-8 adapters fit, so demand loads and
        // KV shrinks evict constantly.
        ClusterFixture f;
        std::mt19937_64 rng(seed);
        // refs[r][a] mirrors the running refcounts we are allowed to
        // release (the reference model's in-use set).
        int refs[ClusterFixture::kReplicas][ClusterFixture::kAdapters] =
            {};

        for (int step = 0; step < 400; ++step) {
            const int r = static_cast<int>(
                rng() % ClusterFixture::kReplicas);
            const int a = static_cast<int>(
                rng() % ClusterFixture::kAdapters);
            const auto now = f.simulator.now();
            switch (rng() % 5) {
              case 0:
              case 1:
                // A declined acquire (memory pressure, nothing
                // evictable) takes no reference.
                if (f.mgrs[r]->acquire(a, now) != sim::kTimeNever)
                    ++refs[r][a];
                break;
              case 2:
                if (refs[r][a] > 0) {
                    f.mgrs[r]->release(a);
                    --refs[r][a];
                }
                break;
              case 3:
                f.mgrs[r]->tryFreeMemory(
                    static_cast<std::int64_t>(rng() % (30ll << 20)));
                break;
              default:
                // Peer-admit as the fabric would: weights arrive over
                // a peer link a little later.
                f.mgrs[r]->peerAdmit(a, now + 500, now);
                break;
            }
            // Drain to quiescence so Loading entries settle, then
            // compare the directory against the ground truth.
            f.simulator.run();
            std::size_t totalHeld = 0;
            for (int replica = 0; replica < ClusterFixture::kReplicas;
                 ++replica) {
                std::size_t held = 0;
                for (model::AdapterId id = 0;
                     id < ClusterFixture::kAdapters; ++id) {
                    const bool cacheSays =
                        f.mgrs[replica]->isResident(id);
                    ASSERT_EQ(f.directory.isResident(
                                  id, static_cast<std::size_t>(replica)),
                              cacheSays)
                        << "seed " << seed << " step " << step
                        << ": directory disagrees with replica "
                        << replica << " about adapter " << id;
                    const auto *h = f.directory.holding(
                        id, static_cast<std::size_t>(replica));
                    if (h != nullptr) {
                        ++held;
                        ASSERT_GE(h->refcount, 0);
                        ASSERT_EQ(h->refcount, refs[replica][id])
                            << "seed " << seed << " step " << step;
                    } else {
                        ASSERT_EQ(refs[replica][id], 0);
                    }
                }
                ASSERT_EQ(f.directory.replicaEntryCount(
                              static_cast<std::size_t>(replica)),
                          held);
                totalHeld += held;
            }
            ASSERT_EQ(f.directory.totalEntries(), totalHeld);
        }
    }
}

/** residentReplicas returns ascending engine indices, Resident only. */
TEST(FabricDirectory, ResidentReplicasAscendingAndTierAware)
{
    fabric::ResidencyDirectory dir;
    for (int replica : {2, 0, 1}) {
        dir.onLoadStart(replica, 7);
        dir.onLoadComplete(replica, 7);
    }
    dir.onLoadStart(3, 7); // still Loading: must not be listed
    std::vector<std::size_t> out;
    dir.residentReplicas(7, &out);
    EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_TRUE(dir.holds(7, 3));
    EXPECT_FALSE(dir.isResident(7, 3));
}

/** Heat order: uses desc, then last-use desc, then id asc. */
TEST(FabricDirectory, HottestIsDeterministic)
{
    fabric::ResidencyDirectory dir;
    for (model::AdapterId id : {1, 2, 3}) {
        dir.onLoadStart(0, id);
        dir.onLoadComplete(0, id);
    }
    dir.onAcquire(0, 2, 10);
    dir.onRelease(0, 2);
    dir.onAcquire(0, 2, 20);
    dir.onRelease(0, 2);
    dir.onAcquire(0, 1, 30);
    dir.onRelease(0, 1);
    dir.onAcquire(0, 3, 30);
    dir.onRelease(0, 3);
    // 2 has two uses; 1 and 3 tie on uses and last-use -> id ascending.
    EXPECT_EQ(dir.hottest(3),
              (std::vector<model::AdapterId>{2, 1, 3}));
    EXPECT_EQ(dir.hottestIdleOn(0, 2),
              (std::vector<model::AdapterId>{2, 1}));
}

/** Double release is a bookkeeping bug, caught at the directory. */
TEST(FabricDirectoryDeathTest, DoubleReleaseAborts)
{
    fabric::ResidencyDirectory dir;
    dir.onLoadStart(0, 5);
    dir.onLoadComplete(0, 5);
    dir.onAcquire(0, 5, 10);
    dir.onRelease(0, 5);
    EXPECT_DEATH(dir.onRelease(0, 5), "release without acquire");
}

/** Scale-up warming: the new replica pulls the hot set over the peer
 * topology — no host PCIe transfer is started on the destination. */
TEST(CacheFabric, ScaleUpWarmsFromPeersNotHost)
{
    ClusterFixture f(2ll << 30);
    fabric::FabricConfig cfg;
    cfg.migration = fabric::MigrationPolicy::All;
    cfg.topK = 2;
    fabric::CacheFabric fab(f.simulator, f.pool, cfg);
    for (int r = 0; r < ClusterFixture::kReplicas; ++r)
        fab.attachReplica(static_cast<std::size_t>(r), *f.mgrs[r]);

    // Warm replica 0: adapters 4 and 5 become the global hot set.
    for (model::AdapterId id : {4, 5}) {
        for (int uses = 0; uses < 3; ++uses) {
            f.mgrs[0]->acquire(id, f.simulator.now());
            f.simulator.run();
            f.mgrs[0]->release(id);
        }
    }
    const auto hostTransfersBefore = f.links[1]->totalTransfers();
    fab.onScaleUp(1, f.simulator.now());
    f.simulator.run();

    EXPECT_TRUE(f.mgrs[1]->isResident(4));
    EXPECT_TRUE(f.mgrs[1]->isResident(5));
    EXPECT_EQ(f.mgrs[1]->peerLoads(), 2);
    EXPECT_EQ(f.links[1]->totalTransfers(), hostTransfersBefore);
    EXPECT_EQ(fab.migrations(), 2);
    EXPECT_GT(fab.peerBytes(), 0);
    // attachReplica re-pointed the residency feed at the fabric's own
    // directory; it saw the peer loads land like any other load.
    EXPECT_TRUE(fab.directory().isResident(4, 1));
    EXPECT_TRUE(fab.directory().isResident(5, 1));
}

/** Drain pushes the drained replica's hot idle entries to survivors. */
TEST(CacheFabric, DrainEvacuatesHotIdleEntries)
{
    ClusterFixture f(2ll << 30);
    fabric::FabricConfig cfg;
    cfg.migration = fabric::MigrationPolicy::Drain;
    cfg.topK = 2;
    fabric::CacheFabric fab(f.simulator, f.pool, cfg);
    for (int r = 0; r < ClusterFixture::kReplicas; ++r)
        fab.attachReplica(static_cast<std::size_t>(r), *f.mgrs[r]);

    for (model::AdapterId id : {8, 9}) {
        f.mgrs[2]->acquire(id, f.simulator.now());
        f.simulator.run();
        f.mgrs[2]->release(id);
    }
    fab.onDrain(2, {0, 1}, f.simulator.now());
    f.simulator.run();
    EXPECT_EQ(fab.migrations(), 2);
    for (model::AdapterId id : {8, 9}) {
        EXPECT_TRUE(fab.directory().isResident(id, 0) ||
                    fab.directory().isResident(id, 1))
            << "adapter " << id << " lost on drain";
    }
}

/** NvLink beats PCIe peer links on the same transfer. */
TEST(TransferTopology, PresetBandwidthOrdering)
{
    sim::Simulator simA, simB;
    fabric::TransferTopology pcie(simA, fabric::TopologyKind::PciePeer);
    fabric::TransferTopology nvlink(simB, fabric::TopologyKind::NvLink);
    const std::int64_t bytes = 100ll << 20;
    EXPECT_LT(nvlink.earliestCompletion(0, 1, bytes),
              pcie.earliestCompletion(0, 1, bytes));
    // Reservations serialise FIFO per ordered pair.
    const auto first = pcie.transfer(0, 1, bytes);
    const auto second = pcie.transfer(0, 1, bytes);
    EXPECT_GT(second, first);
    EXPECT_EQ(pcie.peerTransfers(), 2);
    EXPECT_EQ(pcie.peerBytes(), 2 * bytes);
}

// --- rejection paths: every preset name fails with the known list ---

TEST(FabricSpecRejection, UnknownMigrationInSpecJson)
{
    std::string error;
    const auto spec = core::specFromJson(
        R"({"fabric": {"migration": "sideways"}})", &error);
    EXPECT_FALSE(spec.has_value());
    EXPECT_NE(error.find("fabric.migration"), std::string::npos) << error;
    EXPECT_NE(error.find("scale-up"), std::string::npos) << error;
    EXPECT_NE(error.find("all"), std::string::npos) << error;
}

TEST(FabricSpecRejection, UnknownTopologyInSpecJson)
{
    std::string error;
    const auto spec = core::specFromJson(
        R"({"fabric": {"topology": "token-ring"}})", &error);
    EXPECT_FALSE(spec.has_value());
    EXPECT_NE(error.find("fabric.topology"), std::string::npos) << error;
    EXPECT_NE(error.find("nvlink"), std::string::npos) << error;
}

TEST(FabricSpecRejection, FabricNeedsChameleonCache)
{
    std::string error;
    const auto spec = core::specFromJson(
        R"({"adapters": {"policy": "slora"},
            "fabric": {"migration": "all"},
            "cluster": {"replicas": 2}})",
        &error);
    EXPECT_FALSE(spec.has_value());
    EXPECT_NE(error.find("fabric"), std::string::npos) << error;
}

TEST(FabricSpecRejection, UnknownMigrationInSweepAxis)
{
    sweep::SweepSpec spec;
    spec.systems = {"chameleon"};
    spec.migrations = {"sideways"};
    std::string error;
    EXPECT_FALSE(sweep::expandSweep(spec, &error).has_value());
    EXPECT_NE(error.find("unknown policy \"sideways\""),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("scale-up"), std::string::npos) << error;
}

TEST(FabricSpecRejection, UnknownTopologyInSweepAxis)
{
    sweep::SweepSpec spec;
    spec.systems = {"chameleon"};
    spec.topologies = {"token-ring"};
    std::string error;
    EXPECT_FALSE(sweep::expandSweep(spec, &error).has_value());
    EXPECT_NE(error.find("unknown topology \"token-ring\""),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("pcie"), std::string::npos) << error;
}

TEST(FabricSpecRejection, NamesRoundTripThroughRegistries)
{
    for (const auto policy :
         {fabric::MigrationPolicy::Off, fabric::MigrationPolicy::ScaleUp,
          fabric::MigrationPolicy::Drain, fabric::MigrationPolicy::Remap,
          fabric::MigrationPolicy::All}) {
        fabric::MigrationPolicy parsed;
        ASSERT_TRUE(fabric::migrationPolicyByName(
            fabric::migrationPolicyName(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    for (const auto kind : {fabric::TopologyKind::PciePeer,
                            fabric::TopologyKind::NvLink}) {
        fabric::TopologyKind parsed;
        ASSERT_TRUE(
            fabric::topologyByName(fabric::topologyName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
}

/**
 * Thread-stress: the same migration-enabled sweep grid at 1, 2, and 8
 * worker threads produces identical per-cell event hashes — migrations
 * order through each cell's own calendar queue, never across threads.
 */
TEST(FabricSweep, MigrationCellsThreadCountInvariant)
{
    auto makeSpec = [](int threads) {
        sweep::SweepSpec spec;
        spec.name = "fabric_stress";
        spec.systems = {"chameleon"};
        spec.loads = {10.0};
        spec.replicas = {2};
        spec.routers = {"affinity-dir", "affinity-cache"};
        spec.autoscale = {true};
        spec.autoscaler.minReplicas = 1;
        spec.autoscaler.maxReplicas = 4;
        spec.autoscaler.evalPeriodSeconds = 5.0;
        spec.autoscaler.replicaServiceRps = 6.0;
        spec.migrations = {"all"};
        spec.workload.durationSeconds = 30.0;
        spec.workload.adapters = 24;
        spec.seed = 99;
        spec.threads = threads;
        return spec;
    };
    std::vector<std::uint64_t> reference;
    for (int threads : {1, 2, 8}) {
        sweep::SweepRunner runner(makeSpec(threads));
        const auto results = runner.run();
        ASSERT_EQ(results.size(), 2u);
        std::vector<std::uint64_t> hashes;
        std::int64_t migrations = 0;
        for (const auto &result : results) {
            hashes.push_back(result.report.eventHash);
            migrations += result.report.fabricMigrations;
            EXPECT_TRUE(result.report.fabricEnabled);
        }
        EXPECT_GT(migrations, 0)
            << "stress grid never migrated; the test is vacuous";
        if (reference.empty())
            reference = hashes;
        else
            EXPECT_EQ(hashes, reference)
                << "event hashes changed at " << threads << " threads";
    }
}
