/**
 * @file
 * Shared helpers for serving/chameleon tests: tiny engine builders,
 * fake admission contexts, and request factories.
 */

#ifndef CHAMELEON_TESTS_TEST_UTIL_H
#define CHAMELEON_TESTS_TEST_UTIL_H

#include <memory>
#include <vector>

#include "chameleon/system.h"
#include "model/adapter.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "predict/length_predictor.h"
#include "serving/engine.h"
#include "serving/fifo_scheduler.h"
#include "serving/live_request.h"
#include "serving/scheduler.h"
#include "serving/slora_adapter_manager.h"
#include "simkit/simulator.h"
#include "workload/request.h"

namespace chameleon::testutil {

/** A LiveRequest suitable for standalone scheduler tests. */
inline serving::LiveRequest
liveRequest(std::int64_t id, std::int64_t input, std::int64_t predicted,
            model::AdapterId adapter = model::kNoAdapter,
            std::int64_t adapterBytes = 0, int rank = 0)
{
    serving::LiveRequest r;
    r.req.id = id;
    r.req.inputTokens = input;
    r.req.outputTokens = predicted;
    r.req.adapter = adapter;
    r.predictedOutput = predicted;
    r.adapterBytes = adapterBytes;
    r.rank = rank;
    return r;
}

/** Admission context that accepts everything (or a scripted subset). */
struct FakeAdmission
{
    serving::AdmissionContext ctx;
    std::vector<serving::LiveRequest *> reserved;
    /** Requests that must be refused and with which result. */
    serving::LiveRequest *refuse = nullptr;
    serving::ReserveResult refuseWith = serving::ReserveResult::NoKvMemory;

    FakeAdmission()
    {
        ctx.now = 0;
        ctx.prefillTokenBudget = 1 << 20;
        ctx.admissionSlots = 1 << 20;
        ctx.tryReserve = [this](serving::LiveRequest *r) {
            if (r == refuse)
                return refuseWith;
            reserved.push_back(r);
            return serving::ReserveResult::Ok;
        };
        ctx.estimateMemoryFree = [](std::int64_t) {
            return chameleon::sim::kTimeNever;
        };
        ctx.estimateExecTime = [](const serving::LiveRequest *) {
            return chameleon::sim::fromSeconds(1.0);
        };
        ctx.freeBytes = [] { return std::int64_t{1} << 40; };
        ctx.heldBytes = [](const serving::LiveRequest *) {
            return std::int64_t{0};
        };
        ctx.squashForBypass = [](serving::LiveRequest *) {};
        ctx.noteBypass = [] {};
    }
};

/** A fully wired engine with FIFO scheduling and baseline adapters. */
struct BaselineEngine
{
    sim::Simulator simulator;
    model::AdapterPool pool{model::llama7B(), 10};
    predict::LengthPredictor predictor{1.0}; // perfect predictions
    std::unique_ptr<serving::ServingEngine> engine;

    explicit BaselineEngine(serving::EngineConfig cfg = defaultConfig())
    {
        engine = std::make_unique<serving::ServingEngine>(
            simulator, cfg, &pool,
            std::make_unique<serving::FifoScheduler>(), &predictor);
        engine->setAdapterManager(
            std::make_unique<serving::SLoraAdapterManager>(
                pool, engine->memory(), engine->pcieLink()));
    }

    static serving::EngineConfig
    defaultConfig()
    {
        serving::EngineConfig cfg;
        cfg.model = model::llama7B();
        cfg.gpu = model::a40();
        return cfg;
    }
};

} // namespace chameleon::testutil

#endif // CHAMELEON_TESTS_TEST_UTIL_H
