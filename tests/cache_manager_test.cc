/**
 * @file
 * Unit tests for the Chameleon Adapter Cache / Cache Manager (§4.2).
 */

#include <gtest/gtest.h>

#include "chameleon/cache_manager.h"
#include "model/cost_model.h"
#include "model/gpu_spec.h"
#include "model/llm.h"
#include "simkit/simulator.h"

using namespace chameleon;

namespace {

struct Fixture
{
    sim::Simulator simulator;
    model::AdapterPool pool{model::llama7B(), 10};
    model::CostModel cost{model::llama7B(), model::a40()};
    gpu::GpuMemory mem;
    gpu::PcieLink link;
    core::CacheManager mgr;

    explicit Fixture(std::int64_t capacity = 48ll << 30,
                     core::CacheConfig cfg = core::CacheConfig{})
        : mem(capacity, 0, 0),
          link(simulator,
               [this](std::int64_t bytes) {
                   return cost.adapterLoadTime(bytes);
               }),
          mgr(pool, mem, link, cost, cfg)
    {
    }
};

} // namespace

TEST(CacheManager, RetainsIdleAdapterInCache)
{
    Fixture f;
    f.mgr.acquire(0, 0);
    f.simulator.run();
    f.mgr.release(0);
    // Contrary to the baseline, the adapter stays resident as cache.
    EXPECT_TRUE(f.mgr.isResident(0));
    EXPECT_EQ(f.mem.adapterInUseBytes(), 0);
    EXPECT_EQ(f.mgr.cachedBytes(), f.pool.spec(0).bytes);
    EXPECT_EQ(f.mgr.cachedCount(), 1u);
}

TEST(CacheManager, ReacquireFromCacheIsInstant)
{
    Fixture f;
    f.mgr.acquire(0, 0);
    f.simulator.run();
    f.mgr.release(0);
    const auto now = f.simulator.now();
    EXPECT_EQ(f.mgr.acquire(0, now), now); // no transfer
    EXPECT_EQ(f.link.totalTransfers(), 1);
    EXPECT_EQ(f.mgr.cachedBytes(), 0); // moved back to in-use
}

TEST(CacheManager, DynamicDownsizingFreesMemoryOnDemand)
{
    // Capacity fits two rank-8 adapters (16.8 MB each) only.
    Fixture f(40ll << 20);
    f.mgr.acquire(0, 0);
    f.mgr.acquire(1, 0);
    f.simulator.run();
    f.mgr.release(0);
    f.mgr.release(1);
    EXPECT_EQ(f.mgr.cachedCount(), 2u);
    // A KV demand arrives: the cache must shrink.
    EXPECT_TRUE(f.mgr.tryFreeMemory(20ll << 20));
    EXPECT_LE(f.mgr.cachedCount(), 1u);
    EXPECT_GE(f.mem.freeBytes(), 20ll << 20);
}

TEST(CacheManager, EvictionFollowsPolicyOrder)
{
    Fixture f(200ll << 20);
    // Touch adapter 1 (rank 8) many times; adapter 0 once.
    f.mgr.acquire(0, 0);
    f.simulator.run();
    f.mgr.release(0);
    for (int i = 0; i < 5; ++i) {
        f.mgr.acquire(1, f.simulator.now());
        f.simulator.run();
        f.mgr.release(1);
    }
    // Force a one-adapter eviction (the watermark overshoot still fits
    // within a single rank-8 eviction).
    ASSERT_TRUE(f.mgr.tryFreeMemory(f.mem.freeBytes() + (5ll << 20)));
    EXPECT_FALSE(f.mgr.isResident(0)); // cold one evicted
    EXPECT_TRUE(f.mgr.isResident(1));  // popular one kept
    EXPECT_EQ(f.mgr.evictions(), 1);
}

TEST(CacheManager, NeverEvictsInUseAdapters)
{
    Fixture f(40ll << 20);
    f.mgr.acquire(0, 0); // in use, ~16.8 MB
    f.simulator.run();
    // Nothing idle to evict: cannot free more than what is left.
    EXPECT_FALSE(f.mgr.tryFreeMemory(30ll << 20));
    EXPECT_TRUE(f.mgr.isResident(0));
}

TEST(CacheManager, QueuedPinnedEvictedOnlyUnderPressure)
{
    Fixture f(40ll << 20);
    f.mgr.acquire(0, 0);
    f.mgr.acquire(1, 0);
    f.simulator.run();
    f.mgr.release(0);
    f.mgr.release(1);
    f.mgr.onRequestQueued(1, f.simulator.now()); // pin adapter 1
    // Freeing a little: the unpinned adapter 0 goes first.
    ASSERT_TRUE(f.mgr.tryFreeMemory(f.mem.freeBytes() + (10ll << 20)));
    EXPECT_FALSE(f.mgr.isResident(0));
    EXPECT_TRUE(f.mgr.isResident(1));
    // Freeing beyond that forces the pinned one out too.
    ASSERT_TRUE(f.mgr.tryFreeMemory(f.mem.freeBytes() + (10ll << 20)));
    EXPECT_FALSE(f.mgr.isResident(1));
}

TEST(CacheManager, QueuedPrefetchWarmsCache)
{
    Fixture f;
    f.mgr.onRequestQueued(4, 0); // starts prefetch
    f.simulator.run();
    EXPECT_TRUE(f.mgr.isResident(4));
    // Landed as cache (no running reference yet).
    EXPECT_EQ(f.mgr.cachedBytes(), f.pool.spec(4).bytes);
    const auto now = f.simulator.now();
    EXPECT_EQ(f.mgr.acquire(4, now), now);
    f.mgr.onRequestDequeued(4);
}

TEST(CacheManager, InfeasiblePrefetchLeavesCacheIntact)
{
    Fixture f(40ll << 20);
    f.mgr.acquire(0, 0);
    f.mgr.acquire(1, 0);
    f.simulator.run();
    f.mgr.release(0);
    f.mgr.release(1); // cache now full (two rank-8 adapters)
    const auto evictions_before = f.mgr.evictions();
    // Rank-128 (268 MB) cannot fit the 40 MB device at all: the manager
    // must not pointlessly destroy the cache trying.
    f.mgr.onRequestQueued(9, f.simulator.now());
    f.simulator.run();
    EXPECT_EQ(f.mgr.evictions(), evictions_before);
    EXPECT_FALSE(f.mgr.isResident(9));
    EXPECT_TRUE(f.mgr.isResident(0));
    EXPECT_TRUE(f.mgr.isResident(1));
    f.mgr.onRequestDequeued(9);
}

TEST(CacheManager, QueuedPrefetchEvictsUnpinnedButNotPinned)
{
    Fixture f(60ll << 20);
    // Fill the cache with three rank-8 adapters (16.8 MB each).
    for (model::AdapterId id : {0, 1}) {
        f.mgr.acquire(id, 0);
        f.simulator.run();
        f.mgr.release(id);
    }
    f.mgr.onRequestQueued(1, f.simulator.now()); // pin adapter 1
    // Prefetch for a queued rank-16 request (33.6 MB): free is ~26 MB,
    // so the unpinned adapter 0 must yield; the pinned 1 must survive.
    f.mgr.onRequestQueued(2, f.simulator.now());
    f.simulator.run();
    EXPECT_TRUE(f.mgr.isResident(2));
    EXPECT_TRUE(f.mgr.isResident(1));
    EXPECT_FALSE(f.mgr.isResident(0));
    f.mgr.onRequestDequeued(1);
    f.mgr.onRequestDequeued(2);
}

TEST(CacheManager, DemandLoadEvictsWhenNeeded)
{
    Fixture f(40ll << 20);
    f.mgr.acquire(0, 0);
    f.simulator.run();
    f.mgr.release(0); // cached 16.8 MB, free ~23 MB
    // Demand-acquire adapter 2 (rank 16, needs 33.6 MB): fits after
    // evicting the cached adapter. Adapter 9 (rank 128, 268 MB): never.
    EXPECT_NE(f.mgr.acquire(2, f.simulator.now()), sim::kTimeNever);
    EXPECT_EQ(f.mgr.acquire(9, f.simulator.now()), sim::kTimeNever);
}

TEST(CacheManager, HitMissAccounting)
{
    Fixture f;
    f.mgr.onRequestQueued(0, 0); // miss
    f.simulator.run();
    f.mgr.onRequestQueued(0, f.simulator.now()); // hit (prefetched)
    f.mgr.onRequestDequeued(0);
    f.mgr.onRequestDequeued(0);
    EXPECT_EQ(f.mgr.misses(), 1);
    EXPECT_EQ(f.mgr.hits(), 1);
}

TEST(CacheManager, PredictivePrefetchWarmsHotAdapters)
{
    core::CacheConfig cfg;
    cfg.predictivePrefetch = true;
    cfg.predictiveTopK = 2;
    Fixture f(48ll << 30, cfg);
    // Build history: adapter 3 is hot.
    for (int i = 0; i < 5; ++i) {
        f.mgr.onRequestQueued(3, sim::fromSeconds(i));
        f.mgr.onRequestDequeued(3);
    }
    // Evict everything, then run a scheduling cycle with an empty queue:
    // the predictor should re-warm adapter 3.
    f.mgr.tryFreeMemory(f.mem.freeBytes() + f.pool.spec(3).bytes);
    EXPECT_FALSE(f.mgr.isResident(3));
    f.mgr.onSchedulingCycle({}, sim::fromSeconds(6));
    f.simulator.run();
    EXPECT_TRUE(f.mgr.isResident(3));
}

TEST(CacheManager, CanMakeResidentCountsEvictable)
{
    Fixture f(300ll << 20);
    f.mgr.acquire(8, 0); // rank 128, ~268 MB
    f.simulator.run();
    f.mgr.release(8);
    // Another rank-128 fits only if the cached one is evictable.
    EXPECT_TRUE(f.mgr.canMakeResident(9));
    // While in use it is not evictable.
    f.mgr.acquire(8, f.simulator.now());
    EXPECT_FALSE(f.mgr.canMakeResident(9));
}
