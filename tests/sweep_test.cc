/**
 * @file
 * Tests for the sweep subsystem (sweep_spec.h / sweep_runner.h):
 *  - JSON loading: defaults, strict unknown-key rejection, grid
 *    grammar errors naming the offending token;
 *  - expansion: cross-product order and size, trace sharing across
 *    systems at a load, per-load seed derivation, rps_per_replica;
 *  - determinism: the same sweep JSON + seed produces a byte-identical
 *    BenchJson document on repeated runs and at any thread count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "simkit/json.h"
#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

using namespace chameleon;

namespace {

const char *kSmallSweep = R"({
  "name": "small",
  "systems": ["slora", "chameleon"],
  "loads": [4.0, 5.0],
  "workload": {"preset": "splitwise", "duration_s": 20, "adapters": 16},
  "seed": 7
})";

sweep::SweepSpec
parseSweep(const std::string &text)
{
    std::string error;
    const auto spec = sweep::sweepFromJson(text, &error);
    EXPECT_TRUE(spec.has_value()) << error;
    return spec.value_or(sweep::SweepSpec{});
}

std::string
sweepError(const std::string &text)
{
    std::string error;
    const auto spec = sweep::sweepFromJson(text, &error);
    EXPECT_FALSE(spec.has_value());
    return error;
}

} // namespace

// ---------------------------------------------------------------------
// JSON loading.
// ---------------------------------------------------------------------

TEST(SweepJson, LoadsWithDefaults)
{
    const auto spec = parseSweep(kSmallSweep);
    EXPECT_EQ(spec.name, "small");
    EXPECT_EQ(spec.systems.size(), 2u);
    EXPECT_EQ(spec.loads.size(), 2u);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.threads, 1);
    EXPECT_EQ(spec.workload.adapters, 16);
    EXPECT_EQ(spec.outputPath(), "BENCH_small.json");
    // The hardware template defaults to the paper testbed.
    EXPECT_EQ(spec.engine.model.name, "llama-7b");
}

TEST(SweepJson, RejectsUnknownKeysNamingThem)
{
    const auto error =
        sweepError(R"({"systems": ["slora"], "workloadz": {}})");
    EXPECT_NE(error.find("workloadz"), std::string::npos) << error;

    const auto nested = sweepError(
        R"({"systems": ["slora"], "workload": {"durations": 5}})");
    EXPECT_NE(nested.find("workload.durations"), std::string::npos)
        << nested;
}

TEST(SweepJson, RejectsEmptySweeps)
{
    const auto error = sweepError(R"({"name": "empty"})");
    EXPECT_NE(error.find("nothing to run"), std::string::npos) << error;
}

TEST(SweepJson, RejectsExplicitlyEmptyAxisArrays)
{
    // An empty axis silently replaced by a default would run a grid
    // the author never wrote; "systems": [] stays legal (grid-only).
    for (const char *axis : {"loads", "replicas", "routers", "autoscale"}) {
        const auto error = sweepError(
            std::string(R"({"systems": ["slora"], ")") + axis +
            R"(": []})");
        EXPECT_NE(error.find(axis), std::string::npos) << error;
        EXPECT_NE(error.find("empty array"), std::string::npos) << error;
    }
    EXPECT_EQ(parseSweep(R"({"systems": [],
                             "grid": {"base": "chameleon"}})")
                  .gridBase,
              "chameleon");
}

TEST(SweepJson, RejectsBadWorkloadPreset)
{
    const auto error = sweepError(
        R"({"systems": ["slora"], "workload": {"preset": "azure"}})");
    EXPECT_NE(error.find("workload.preset"), std::string::npos) << error;
    EXPECT_NE(error.find("splitwise"), std::string::npos) << error;
}

TEST(SweepJson, AutoscaleAxisAndTemplateLoadAndExpand)
{
    const auto spec = parseSweep(R"({
      "systems": ["chameleon"],
      "loads": [6.0],
      "replicas": [2],
      "autoscale": [false, true],
      "autoscaler": {"min_replicas": 2, "max_replicas": 6,
                     "replica_service_rps": 8.5, "boot_ms": 4000,
                     "scale_up_policy": "fastest",
                     "measured_rate_alpha": 0.3}
    })");
    ASSERT_EQ(spec.autoscale.size(), 2u);
    EXPECT_EQ(spec.autoscaler.maxReplicas, 6u);
    EXPECT_EQ(spec.autoscaler.bootMs, 4000.0);
    EXPECT_EQ(spec.autoscaler.scaleUpPolicy,
              routing::ScaleUpPolicy::Fastest);

    std::string error;
    const auto cells = sweep::expandSweep(spec, &error);
    ASSERT_TRUE(cells.has_value()) << error;
    ASSERT_EQ(cells->size(), 2u);
    // Off-cell: a fixed cluster untouched by the autoscaler template.
    EXPECT_FALSE((*cells)[0].autoscale);
    EXPECT_FALSE((*cells)[0].spec.cluster.autoscale);
    // On-cell: autoscaling with the template stamped in.
    EXPECT_TRUE((*cells)[1].autoscale);
    EXPECT_TRUE((*cells)[1].spec.cluster.autoscale);
    EXPECT_EQ((*cells)[1].spec.cluster.autoscaler, spec.autoscaler);
    // Both cells share the trace: identical arrivals, on/off compared.
    EXPECT_EQ((*cells)[0].traceIndex, (*cells)[1].traceIndex);
}

TEST(SweepJson, AutoscaleAxisRejectsNonBooleans)
{
    const auto error = sweepError(
        R"({"systems": ["slora"], "autoscale": [1, 0]})");
    EXPECT_NE(error.find("autoscale"), std::string::npos) << error;
    EXPECT_NE(error.find("boolean"), std::string::npos) << error;
}

TEST(SweepExpand, InvalidAutoscalerTemplateNamesTheCell)
{
    auto spec = parseSweep(R"({
      "systems": ["chameleon"],
      "autoscale": [true],
      "autoscaler": {"min_replicas": 4, "max_replicas": 2}
    })");
    std::string error;
    EXPECT_FALSE(sweep::expandSweep(spec, &error).has_value());
    EXPECT_NE(error.find("autoscale"), std::string::npos) << error;
    EXPECT_NE(error.find("maxReplicas"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Expansion.
// ---------------------------------------------------------------------

TEST(SweepExpand, GridCrossProductOrderAndSize)
{
    const auto spec = parseSweep(R"({
      "systems": ["slora"],
      "grid": {"base": "chameleon",
               "axes": [["paper", "lru"], ["bypass", "nobypass"]]},
      "loads": [4.0, 6.0]
    })");
    std::string error;
    const auto cells = sweep::expandSweep(spec, &error);
    ASSERT_TRUE(cells.has_value()) << error;
    // (1 explicit + 2x2 grid) systems x 2 loads.
    ASSERT_EQ(cells->size(), 10u);
    EXPECT_EQ((*cells)[0].system, "slora");
    EXPECT_EQ((*cells)[0].rps, 4.0);
    EXPECT_EQ((*cells)[1].rps, 6.0);
    EXPECT_EQ((*cells)[2].system, "chameleon+paper+bypass");
    EXPECT_EQ((*cells)[4].system, "chameleon+paper+nobypass");
    EXPECT_EQ((*cells)[8].system, "chameleon+lru+nobypass");
    // The composed spec really carries the modifier.
    EXPECT_FALSE((*cells)[8].spec.scheduler.bypass);
    EXPECT_EQ((*cells)[8].spec.adapters.eviction,
              core::EvictionKind::Lru);
}

TEST(SweepExpand, SharesTracesAcrossSystemsAtALoad)
{
    const auto spec = parseSweep(kSmallSweep);
    const auto cells = sweep::expandSweep(spec);
    ASSERT_TRUE(cells.has_value());
    ASSERT_EQ(cells->size(), 4u);
    // slora@4 and chameleon@4 share trace 0; @5 share trace 1.
    EXPECT_EQ((*cells)[0].traceIndex, (*cells)[2].traceIndex);
    EXPECT_EQ((*cells)[1].traceIndex, (*cells)[3].traceIndex);
    EXPECT_NE((*cells)[0].traceIndex, (*cells)[1].traceIndex);
    // Per-load seed derivation: seed + load index.
    EXPECT_EQ((*cells)[0].traceSeed, 7u);
    EXPECT_EQ((*cells)[1].traceSeed, 8u);
}

TEST(SweepExpand, RpsPerReplicaScalesTheLoadAxis)
{
    const auto spec = parseSweep(R"({
      "systems": ["chameleon"],
      "loads": [4.0],
      "rps_per_replica": true,
      "replicas": [1, 2],
      "routers": ["affinity"]
    })");
    const auto cells = sweep::expandSweep(spec);
    ASSERT_TRUE(cells.has_value());
    ASSERT_EQ(cells->size(), 2u);
    EXPECT_EQ((*cells)[0].rps, 4.0);
    EXPECT_EQ((*cells)[1].rps, 8.0);
    EXPECT_NE((*cells)[0].traceIndex, (*cells)[1].traceIndex);
    EXPECT_EQ((*cells)[1].spec.cluster.replicas, 2);
    EXPECT_EQ((*cells)[1].spec.cluster.router,
              routing::RouterPolicy::AdapterAffinity);
}

TEST(SweepExpand, FleetAxisDeploysHeterogeneousCells)
{
    const auto spec = parseSweep(R"({
      "systems": ["chameleon"],
      "fleets": ["a40x2", "a100x1+a40x1"],
      "routers": ["jsq", "p2c"]
    })");
    std::string error;
    const auto cells = sweep::expandSweep(spec, &error);
    ASSERT_TRUE(cells.has_value()) << error;
    ASSERT_EQ(cells->size(), 4u);
    // The fleet axis sits where replicas would (routers innermost).
    EXPECT_EQ((*cells)[0].fleet, "a40x2");
    EXPECT_EQ((*cells)[0].router, "jsq");
    EXPECT_EQ((*cells)[1].router, "p2c");
    EXPECT_EQ((*cells)[2].fleet, "a100x1+a40x1");
    // Each cell's replica count and per-replica engines come from its
    // fleet preset, applied onto the sweep's engine template.
    EXPECT_EQ((*cells)[0].replicaCount, 2);
    ASSERT_EQ((*cells)[0].spec.cluster.replicaEngines.size(), 2u);
    EXPECT_EQ((*cells)[0].spec.cluster.replicaEngines[0].gpu.name,
              "a40-48g");
    EXPECT_EQ((*cells)[2].replicaCount, 2);
    EXPECT_EQ((*cells)[2].spec.cluster.replicaEngines[0].gpu.name,
              "a100-80g");
    EXPECT_EQ((*cells)[2].spec.cluster.replicaEngines[1].gpu.name,
              "a40-48g");
    EXPECT_EQ((*cells)[2].spec.cluster.replicaEngines[0].model.name,
              spec.engine.model.name);
    ASSERT_TRUE((*cells)[2].spec.validate().empty());
}

TEST(SweepJson, RejectsFleetsBesideReplicas)
{
    const auto error = sweepError(R"({
      "systems": ["chameleon"],
      "fleets": ["a40x2"], "replicas": [2]
    })");
    EXPECT_NE(error.find("fleets"), std::string::npos) << error;
    EXPECT_NE(error.find("conflicts"), std::string::npos) << error;
}

TEST(SweepExpand, UnknownFleetFailsTeachingTheGrammar)
{
    const auto spec = parseSweep(R"({
      "systems": ["chameleon"], "fleets": ["h100x8"]
    })");
    std::string error;
    const auto cells = sweep::expandSweep(spec, &error);
    EXPECT_FALSE(cells.has_value());
    EXPECT_NE(error.find("h100x8"), std::string::npos) << error;
    EXPECT_NE(error.find("<gpu>x<count>"), std::string::npos) << error;
    EXPECT_NE(error.find("a100"), std::string::npos) << error;
}

TEST(SweepExpand, UnknownModifierTokenFailsWithGrammarMessage)
{
    const auto spec = parseSweep(R"({
      "grid": {"base": "chameleon", "axes": [["frobnicate"]]}
    })");
    std::string error;
    const auto cells = sweep::expandSweep(spec, &error);
    EXPECT_FALSE(cells.has_value());
    EXPECT_NE(error.find("chameleon+frobnicate"), std::string::npos)
        << error;
    EXPECT_NE(error.find("unknown system modifier"), std::string::npos)
        << error;
}

TEST(SweepExpand, UnknownRouterFailsWithKnownList)
{
    const auto spec = parseSweep(R"({
      "systems": ["chameleon"], "routers": ["hash-ring"]
    })");
    std::string error;
    const auto cells = sweep::expandSweep(spec, &error);
    EXPECT_FALSE(cells.has_value());
    EXPECT_NE(error.find("hash-ring"), std::string::npos) << error;
    EXPECT_NE(error.find("affinity"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------

TEST(SweepRunner, SameJsonAndSeedProducesIdenticalBenchJson)
{
    const auto spec = parseSweep(kSmallSweep);
    sweep::SweepRunner first(spec);
    sweep::SweepRunner second(spec);
    const auto a = first.runToBenchJson().toString();
    const auto b = second.runToBenchJson().toString();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(SweepRunner, ThreadCountDoesNotChangeTheDocument)
{
    auto spec = parseSweep(kSmallSweep);
    spec.threads = 1;
    sweep::SweepRunner serial(spec);
    spec.threads = 4;
    sweep::SweepRunner threaded(spec);
    EXPECT_EQ(serial.runToBenchJson().toString(),
              threaded.runToBenchJson().toString());
}

TEST(SweepRunner, ThreadStressAt100kRequestsKeepsHashesAndBytes)
{
    // Determinism at scale: ~113k simulated requests across 8 cells,
    // run with 1, 2, and 8 worker threads. The consolidated BenchJson
    // must be byte-identical and every cell's event_hash — the FNV
    // fingerprint of its full canonical event stream — must match,
    // i.e. thread scheduling cannot leak into any simulation.
    auto spec = parseSweep(R"({
      "name": "stress",
      "systems": ["slora", "chameleon"],
      "loads": [30.0, 40.0],
      "replicas": [2, 4],
      "workload": {"preset": "splitwise", "duration_s": 400,
                   "adapters": 32},
      "seed": 21
    })");

    std::vector<std::string> documents;
    for (const int threads : {1, 2, 8}) {
        spec.threads = threads;
        documents.push_back(
            sweep::SweepRunner(spec).runToBenchJson().toString());
    }
    EXPECT_EQ(documents[0], documents[1]);
    EXPECT_EQ(documents[0], documents[2]);

    // Byte equality already implies hash equality; now check the
    // hashes themselves are present, well-formed, and that the grid
    // really ran at the promised scale.
    const auto doc = sim::parseJson(documents[0]);
    ASSERT_TRUE(doc.has_value());
    const sim::JsonValue *rows = doc->find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->items().size(), 8u);
    std::int64_t submitted = 0;
    for (const auto &row : rows->items()) {
        const sim::JsonValue *hash = row.find("event_hash");
        ASSERT_NE(hash, nullptr);
        const std::string &text = hash->asString();
        ASSERT_EQ(text.size(), 18u) << text;
        EXPECT_EQ(text.substr(0, 2), "0x") << text;
        EXPECT_NE(text, "0x0000000000000000")
            << "a zero hash means the stream was never hashed";
        submitted += static_cast<std::int64_t>(
            row.find("submitted")->asNumber());
    }
    EXPECT_GE(submitted, 100000) << "grid shrank below 100k-request "
                                    "scale; enlarge the stress sweep";
}

TEST(SweepRunner, RunsEveryCellOverTheSharedTrace)
{
    const auto spec = parseSweep(kSmallSweep);
    sweep::SweepRunner runner(spec);
    const auto results = runner.run();
    ASSERT_EQ(results.size(), 4u);
    std::set<std::string> systems;
    for (const auto &result : results) {
        systems.insert(result.cell.system);
        // Everything submitted on these short traces finishes.
        EXPECT_GT(result.report.stats.submitted, 0);
        EXPECT_EQ(result.report.stats.finished,
                  result.report.stats.submitted);
    }
    EXPECT_EQ(systems.size(), 2u);
    // Identical arrivals at a load: submitted counts match per trace.
    EXPECT_EQ(results[0].report.stats.submitted,
              results[2].report.stats.submitted);
    EXPECT_EQ(results[1].report.stats.submitted,
              results[3].report.stats.submitted);
}
