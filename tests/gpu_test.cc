/**
 * @file
 * Unit tests for the GPU device models: memory accounting, the paged KV
 * cache, and the PCIe link.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_memory.h"
#include "gpu/kv_cache.h"
#include "gpu/pcie_link.h"
#include "simkit/simulator.h"
#include "simkit/time.h"

namespace gpu = chameleon::gpu;
namespace sim = chameleon::sim;

namespace {
constexpr std::int64_t kGiB = 1024ll * 1024 * 1024;
}

// ------------------------------------------------------------ GpuMemory

TEST(GpuMemory, InvariantHolds)
{
    gpu::GpuMemory mem(48 * kGiB, 14 * kGiB, 2 * kGiB);
    EXPECT_EQ(mem.freeBytes(), 32 * kGiB);
    ASSERT_TRUE(mem.tryAllocKv(10 * kGiB));
    ASSERT_TRUE(mem.tryAllocAdapterInUse(4 * kGiB));
    ASSERT_TRUE(mem.tryAllocAdapterCache(8 * kGiB));
    EXPECT_EQ(mem.freeBytes(), 10 * kGiB);
    EXPECT_EQ(mem.idleBytes(), 18 * kGiB); // free + cache
    mem.freeKv(10 * kGiB);
    mem.freeAdapterInUse(4 * kGiB);
    mem.freeAdapterCache(8 * kGiB);
    EXPECT_EQ(mem.freeBytes(), 32 * kGiB);
}

TEST(GpuMemory, AllocFailsWithoutRoomAndHasNoSideEffects)
{
    gpu::GpuMemory mem(10 * kGiB, 4 * kGiB, 2 * kGiB);
    EXPECT_FALSE(mem.tryAllocKv(5 * kGiB));
    EXPECT_EQ(mem.kvBytes(), 0);
    EXPECT_TRUE(mem.tryAllocKv(4 * kGiB));
    EXPECT_FALSE(mem.tryAllocAdapterCache(1));
}

TEST(GpuMemory, CacheInUseTransfers)
{
    gpu::GpuMemory mem(10 * kGiB, 0, 0);
    ASSERT_TRUE(mem.tryAllocAdapterInUse(2 * kGiB));
    mem.moveInUseToCache(2 * kGiB);
    EXPECT_EQ(mem.adapterInUseBytes(), 0);
    EXPECT_EQ(mem.adapterCacheBytes(), 2 * kGiB);
    mem.moveCacheToInUse(2 * kGiB);
    EXPECT_EQ(mem.adapterInUseBytes(), 2 * kGiB);
    EXPECT_EQ(mem.adapterCacheBytes(), 0);
    // Moves never change the free total.
    EXPECT_EQ(mem.freeBytes(), 8 * kGiB);
}

TEST(GpuMemory, ModelMustFit)
{
    EXPECT_DEATH(gpu::GpuMemory(1 * kGiB, 2 * kGiB, 0), "does not fit");
}

// -------------------------------------------------------------- KvCache

TEST(KvCache, PageRounding)
{
    gpu::GpuMemory mem(1 * kGiB, 0, 0);
    gpu::KvCache kv(mem, 1024, 16);
    EXPECT_EQ(kv.bytesForTokens(1), 16 * 1024);
    EXPECT_EQ(kv.bytesForTokens(16), 16 * 1024);
    EXPECT_EQ(kv.bytesForTokens(17), 32 * 1024);
    EXPECT_EQ(kv.bytesForTokens(0), 0);
}

TEST(KvCache, GrowWithinPageIsFree)
{
    gpu::GpuMemory mem(1 * kGiB, 0, 0);
    gpu::KvCache kv(mem, 1024, 16);
    ASSERT_TRUE(kv.tryReserve(1, 10));
    const auto bytes_before = mem.kvBytes();
    ASSERT_TRUE(kv.tryReserve(1, 16)); // same page
    EXPECT_EQ(mem.kvBytes(), bytes_before);
    ASSERT_TRUE(kv.tryReserve(1, 17)); // new page
    EXPECT_GT(mem.kvBytes(), bytes_before);
    EXPECT_EQ(kv.reservedTokens(1), 17);
}

TEST(KvCache, ReleaseReturnsAllPages)
{
    gpu::GpuMemory mem(1 * kGiB, 0, 0);
    gpu::KvCache kv(mem, 1024, 16);
    ASSERT_TRUE(kv.tryReserve(7, 100));
    kv.release(7);
    EXPECT_EQ(mem.kvBytes(), 0);
    EXPECT_EQ(kv.reservedTokens(7), 0);
    kv.release(7); // double release is a no-op
}

TEST(KvCache, FailureLeavesReservationIntact)
{
    gpu::GpuMemory mem(64 * 1024, 0, 0);
    gpu::KvCache kv(mem, 1024, 16);
    ASSERT_TRUE(kv.tryReserve(1, 32));        // 32 KiB
    EXPECT_FALSE(kv.tryReserve(1, 128));      // would need 128 KiB
    EXPECT_EQ(kv.reservedTokens(1), 32);
    EXPECT_EQ(kv.totalBytes(), 32 * 1024);
}

TEST(KvCache, FragmentationAccounting)
{
    gpu::GpuMemory mem(1 * kGiB, 0, 0);
    gpu::KvCache kv(mem, 1024, 16);
    ASSERT_TRUE(kv.tryReserve(1, 1)); // 15 tokens of slack
    EXPECT_EQ(kv.fragmentationBytes(), 15 * 1024);
}

// ------------------------------------------------------------- PcieLink

TEST(PcieLink, FifoQueueing)
{
    sim::Simulator s;
    gpu::PcieLink link(s, [](std::int64_t bytes) {
        return sim::fromMillis(static_cast<double>(bytes) / 1e6); // 1 GB/s
    });
    std::vector<int> done;
    link.enqueue(10'000'000, [&] { done.push_back(1); }); // 10 ms
    link.enqueue(5'000'000, [&] { done.push_back(2); });  // +5 ms
    EXPECT_TRUE(link.busy());
    s.run();
    EXPECT_EQ(done, (std::vector<int>{1, 2}));
    EXPECT_EQ(s.now(), sim::fromMillis(15.0));
    EXPECT_EQ(link.totalBytes(), 15'000'000);
    EXPECT_EQ(link.totalTransfers(), 2);
}

TEST(PcieLink, EarliestCompletionAccountsForBacklog)
{
    sim::Simulator s;
    gpu::PcieLink link(s, [](std::int64_t bytes) {
        return sim::fromMillis(static_cast<double>(bytes) / 1e6);
    });
    const auto t1 = link.enqueue(10'000'000, [] {});
    EXPECT_EQ(t1, sim::fromMillis(10.0));
    EXPECT_EQ(link.earliestCompletion(5'000'000), sim::fromMillis(15.0));
}

TEST(PcieLink, UtilisationFractionOfElapsed)
{
    sim::Simulator s;
    gpu::PcieLink link(s, [](std::int64_t) { return sim::fromMillis(10.0); });
    link.enqueue(1, [] {});
    s.run();
    s.runUntil(sim::fromMillis(40.0));
    EXPECT_NEAR(link.utilisation(), 0.25, 1e-9);
}
